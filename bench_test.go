// Package repro_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (§6), plus
// ablation benchmarks for the design decisions DESIGN.md calls out. Each
// benchmark reports domain metrics (reports, confirmed bugs, category
// counts) alongside time, so `go test -bench=. -benchmem` regenerates the
// paper's numbers; cmd/ridbench prints the same data as formatted tables.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/baseline/cpyrule"
	"repro/internal/core"
	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/pycgen"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symexec"
)

// mustProgram builds one program from generated files.
func mustProgram(b *testing.B, files map[string]string) *ir.Program {
	b.Helper()
	prog, err := experiments.BuildProgram(files)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func mustSource(b *testing.B, src string) *ir.Program {
	b.Helper()
	prog, err := lower.SourceString("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// ---------------------------------------------------------------------------
// Figures 1/2, 8, 9, 10 — the paper's example analyses.

const figure2Src = `
extern int pm_runtime_get_sync(struct device *d);
extern void inc_pmcount(struct device *d);

int reg_read(struct device *d, int reg) {
    if (d) {
        int ret;
        ret = random();
        if (ret >= 0)
            return ret;
    }
    return -1;
}

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`

const incSpec = `
summary inc_pmcount(d) {
  entry { cons: [d] != null; changes: [d].pm += 1; return: ; }
  entry { cons: [d] == null; changes: ; return: ; }
}
`

func BenchmarkFigure2Foo(b *testing.B) {
	prog := mustSource(b, figure2Src)
	specs := spec.LinuxDPM()
	specs.Merge(spec.MustParse("inc", incSpec))
	b.ReportAllocs()
	var reports int
	for i := 0; i < b.N; i++ {
		res := core.Analyze(context.Background(), prog, specs, core.Options{})
		reports = len(res.Reports)
	}
	if reports != 1 {
		b.Fatalf("figure 2 IPP count = %d, want 1", reports)
	}
	b.ReportMetric(float64(reports), "reports")
}

func benchPattern(b *testing.B, mix kernelgen.Mix, wantReports int) {
	c := kernelgen.Generate(kernelgen.Config{Seed: 1, Mix: mix})
	prog := mustProgram(b, c.Files)
	b.ReportAllocs()
	var reports int
	for i := 0; i < b.N; i++ {
		res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
		reports = 0
		for _, r := range res.Reports {
			if _, labeled := c.Truth[r.Fn]; labeled {
				reports++
			}
		}
	}
	if reports != wantReports {
		b.Fatalf("pattern reports = %d, want %d", reports, wantReports)
	}
	b.ReportMetric(float64(reports), "reports")
}

func BenchmarkFigure8Pattern(b *testing.B) {
	benchPattern(b, kernelgen.Mix{BugGetErrReturn: 10}, 10)
}

func BenchmarkFigure9Pattern(b *testing.B) {
	benchPattern(b, kernelgen.Mix{BugWrapperErrPath: 10}, 10)
}

func BenchmarkFigure10Missed(b *testing.B) {
	// Figure 10's bug class is real but outside RID's reach: zero reports.
	benchPattern(b, kernelgen.Mix{BugIRQStyle: 10}, 0)
}

// ---------------------------------------------------------------------------
// Table 1 — function classification.

func BenchmarkTable1Classification(b *testing.B) {
	cfg := experiments.DefaultTable1()
	c := kernelgen.Generate(kernelgen.Config{
		Seed: cfg.Seed, Mix: kernelgen.PaperMix(),
		SimpleHelpers: cfg.Helpers, ComplexHelpers: cfg.Complex, OtherFuncs: cfg.Other,
	})
	prog := mustProgram(b, c.Files)
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
	}
	cl := res.Classification
	b.ReportMetric(float64(cl.NumRefcount), "cat1")
	b.ReportMetric(float64(cl.NumAffectingAnalyzed), "cat2-analyzed")
	b.ReportMetric(float64(cl.NumAffectingUnanalyzed), "cat2-skipped")
	b.ReportMetric(float64(cl.NumOther), "cat3")
}

// ---------------------------------------------------------------------------
// Table 2 — RID vs the Cpychecker-style escape rule.

func BenchmarkTable2PythonC(b *testing.B) {
	type mod struct {
		prog  *ir.Program
		truth map[string]pycgen.Class
	}
	var mods []mod
	for _, cfg := range pycgen.PaperConfigs() {
		m := pycgen.Generate(cfg)
		mods = append(mods, mod{mustProgram(b, m.Files), m.Truth})
	}
	specs := spec.PythonC()
	b.ReportAllocs()
	b.ResetTimer()
	var common, ridOnly, cpyOnly int
	for i := 0; i < b.N; i++ {
		common, ridOnly, cpyOnly = 0, 0, 0
		for _, m := range mods {
			res := core.Analyze(context.Background(), m.prog, specs, core.Options{})
			rid := map[string]bool{}
			for _, r := range res.Reports {
				rid[r.Fn] = true
			}
			cpy := map[string]bool{}
			for _, r := range cpyrule.New(specs, cpyrule.Config{}).Check(m.prog) {
				cpy[r.Fn] = true
			}
			for fn, cls := range m.truth {
				if cls == pycgen.ClassCorrect {
					continue
				}
				switch {
				case rid[fn] && cpy[fn]:
					common++
				case rid[fn]:
					ridOnly++
				case cpy[fn]:
					cpyOnly++
				}
			}
		}
	}
	if common != 86 || ridOnly != 114 || cpyOnly != 16 {
		b.Fatalf("Table 2 = %d/%d/%d, want 86/114/16", common, ridOnly, cpyOnly)
	}
	b.ReportMetric(float64(common), "common")
	b.ReportMetric(float64(ridOnly), "rid-only")
	b.ReportMetric(float64(cpyOnly), "cpy-only")
}

// ---------------------------------------------------------------------------
// §6.2 — DPM bug reports vs confirmed bugs.

func BenchmarkSection62DPMBugs(b *testing.B) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 317, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 100,
	})
	prog := mustProgram(b, c.Files)
	b.ReportAllocs()
	b.ResetTimer()
	var reports, confirmed int
	for i := 0; i < b.N; i++ {
		res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
		reports = len(res.Reports)
		confirmed = 0
		hit := map[string]bool{}
		for _, r := range res.Reports {
			hit[r.Fn] = true
		}
		for fn, info := range c.Truth {
			if info.Real && hit[fn] {
				confirmed++
			}
		}
	}
	b.ReportMetric(float64(reports), "reports")
	b.ReportMetric(float64(confirmed), "confirmed")
}

// ---------------------------------------------------------------------------
// §6.3 — pm_runtime_get misuse census.

func BenchmarkSection63GetMisuse(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.MisuseResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Misuse(context.Background(), 317, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.HandledSites != 96 || r.MissingPut != 67 || r.RIDDetected != 40 {
		b.Fatalf("§6.3 = %d/%d/%d, want 96/67/40", r.HandledSites, r.MissingPut, r.RIDDetected)
	}
	b.ReportMetric(float64(r.HandledSites), "sites")
	b.ReportMetric(float64(r.MissingPut), "missing-put")
	b.ReportMetric(float64(r.RIDDetected), "rid-detected")
}

// ---------------------------------------------------------------------------
// §6.5 — performance scaling and SCC-parallel analysis.

func benchScale(b *testing.B, scale, workers int) {
	m := kernelgen.PaperMix()
	c := kernelgen.Generate(kernelgen.Config{
		Seed: int64(100 + scale),
		Mix: kernelgen.Mix{
			CorrectBalanced: m.CorrectBalanced * scale, CorrectErrHandled: m.CorrectErrHandled * scale,
			CorrectWrapperUse: m.CorrectWrapperUse * scale, CorrectHeld: m.CorrectHeld * scale,
			BugGetErrReturn: m.BugGetErrReturn * scale, BugWrapperErrPath: m.BugWrapperErrPath * scale,
			BugWrapperMisuse: m.BugWrapperMisuse * scale, BugDoublePut: m.BugDoublePut * scale,
			BugIRQStyle: m.BugIRQStyle * scale, BugAsymmetricErr: m.BugAsymmetricErr * scale,
			BugLoopErrPath: m.BugLoopErrPath * scale, CorrectLoop: m.CorrectLoop * scale,
			CorrectSwitch:  m.CorrectSwitch * scale,
			BugDeepWrapper: m.BugDeepWrapper * scale,
			FPBitmask:      m.FPBitmask * scale,
		},
		SimpleHelpers: 10 * scale, ComplexHelpers: 8 * scale, OtherFuncs: 200 * scale,
	})
	prog := mustProgram(b, c.Files)
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{Workers: workers})
	}
	b.ReportMetric(float64(res.Stats.FuncsTotal), "functions")
	b.ReportMetric(float64(res.Stats.FuncsAnalyzed), "analyzed")
	// Throughput: Step I paths enumerated per wall-clock second. The path
	// count is fixed per corpus (scheduling never changes it — see the
	// determinism tests), so this is the honest cross-workers comparison.
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(res.Stats.PathsEnumerated)*float64(b.N)/sec, "paths/sec")
	}
}

func BenchmarkSection65Scaling(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		b.Run(sizeName(scale), func(b *testing.B) { benchScale(b, scale, 1) })
	}
}

func BenchmarkSection65Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(workersName(workers), func(b *testing.B) { benchScale(b, 2, workers) })
	}
}

func sizeName(scale int) string { return "scale" + itoa(scale) }
func workersName(w int) string  { return "workers" + itoa(w) }
func itoa(n int) string         { return string(rune('0' + n)) }

// ---------------------------------------------------------------------------
// Ablations.

// ablationProgram is a mid-size corpus shared by the ablation benchmarks.
func ablationProgram(b *testing.B) (*ir.Program, *kernelgen.Corpus) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 9, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 50,
	})
	return mustProgram(b, c.Files), c
}

// BenchmarkAblationNoPruning disables the Algorithm-1 line-6 feasibility
// check when forking on callee entries: more dead sub-cases survive to
// finalization.
func BenchmarkAblationNoPruning(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, pruning := range []bool{true, false} {
		name := "prune-on"
		if !pruning {
			name = "prune-off"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Exec: symexec.Config{
				MaxPaths: 100, MaxSubcases: 10, NoPrune: !pruning,
			}}
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationKeepLocals disables the local-condition projection of
// §3.3.3. Entries keep conditions on locals, which makes path pairs
// spuriously distinguishable: the IPP count collapses, demonstrating that
// the projection is what makes entries caller-comparable.
func BenchmarkAblationKeepLocals(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, keep := range []bool{false, true} {
		name := "project-locals"
		if keep {
			name = "keep-locals"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Exec: symexec.Config{
				MaxPaths: 100, MaxSubcases: 10, KeepLocalConds: keep,
			}}
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationCat2Limit sweeps the §5.2 category-2 complexity gate.
func BenchmarkAblationCat2Limit(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, limit := range []int{1, 3, 8} {
		b.Run("conds"+itoa(limit), func(b *testing.B) {
			b.ReportAllocs()
			var analyzed int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{MaxCat2Conds: limit})
				analyzed = res.Stats.FuncsAnalyzed
			}
			b.ReportMetric(float64(analyzed), "analyzed")
		})
	}
}

// BenchmarkAblationBudgets sweeps the path and sub-case budgets of §6.1
// (the paper uses 100 and 10).
func BenchmarkAblationBudgets(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, budget := range []struct {
		paths, subs int
		name        string
	}{
		{10, 2, "paths10-subs2"},
		{100, 10, "paths100-subs10"},
		{1000, 50, "paths1000-subs50"},
	} {
		b.Run(budget.name, func(b *testing.B) {
			opts := core.Options{Exec: symexec.Config{
				MaxPaths: budget.paths, MaxSubcases: budget.subs,
			}}
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationSolverCache toggles constraint-satisfiability
// memoization.
func BenchmarkAblationSolverCache(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, noCache := range []bool{false, true} {
		name := "cache-on"
		if noCache {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{NoCache: noCache})
			}
		})
	}
}

// BenchmarkAblationInterning toggles expression hash-consing: with it off,
// every constructor allocates a fresh node, equality falls back to
// canonical-key strings, and solver cache keys are full-text joins.
func BenchmarkAblationInterning(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, interning := range []bool{true, false} {
		name := "interning-on"
		if !interning {
			name = "interning-off"
		}
		b.Run(name, func(b *testing.B) {
			prev := sym.SetInterning(interning)
			defer sym.SetInterning(prev)
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationBucketing toggles Step III's changes-signature
// bucketing and the syntactic contradiction pre-filter: with it off, every
// kept pair goes through the SameChanges map comparison and the solver.
func BenchmarkAblationBucketing(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, noBucketing := range []bool{false, true} {
		name := "bucketing-on"
		if noBucketing {
			name = "bucketing-off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{NoBucketing: noBucketing})
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationPathWorkers sweeps the §7 future-work feature: parallel
// per-path symbolic execution inside each function.
func BenchmarkAblationPathWorkers(b *testing.B) {
	prog, _ := ablationProgram(b)
	for _, pw := range []int{1, 2, 4} {
		b.Run("pathworkers"+itoa(pw), func(b *testing.B) {
			opts := core.Options{Exec: symexec.Config{
				MaxPaths: 100, MaxSubcases: 10, PathWorkers: pw,
			}}
			b.ReportAllocs()
			var reports int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
				reports = len(res.Reports)
			}
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblationBitTests measures the paper's future-work abstraction
// extension: preserving "x & CONST" as stable terms removes the §6.4
// bit-operation false positives without losing true bugs.
func BenchmarkAblationBitTests(b *testing.B) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 9, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 50,
	})
	for _, preserve := range []bool{false, true} {
		name := "havoc-bitops"
		if preserve {
			name = "preserve-bitops"
		}
		prog, err := experiments.BuildProgramOpts(c.Files, lower.Options{PreserveBitTests: preserve})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var fps, trueBugs int
			for i := 0; i < b.N; i++ {
				res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
				fps, trueBugs = 0, 0
				hit := map[string]bool{}
				for _, r := range res.Reports {
					hit[r.Fn] = true
				}
				for fn, info := range c.Truth {
					switch {
					case info.FPExpected && hit[fn]:
						fps++
					case info.Real && hit[fn]:
						trueBugs++
					}
				}
			}
			b.ReportMetric(float64(fps), "false-positives")
			b.ReportMetric(float64(trueBugs), "true-bugs")
		})
	}
}
