// Package rid is the public API of the RID reproduction: a static analyzer
// that finds reference-count bugs by inconsistent path pair (IPP) checking,
// after Mao et al., "RID: Finding Reference Count Bugs with Inconsistent
// Path Pair Checking" (ASPLOS 2016).
//
// An inconsistent path pair is two entry-to-exit paths of one function that
// change some reference count differently yet are indistinguishable to the
// caller at runtime — the same arguments and the same return value are
// feasible on both. Either path then implies a refcount bug. RID needs only
// the specifications of the basic refcount APIs (predefined summaries); it
// derives everything else bottom-up over the call graph.
//
// Typical use:
//
//	a := rid.New(rid.LinuxDPMSpecs())
//	if err := a.AddSource("driver.c", src); err != nil { ... }
//	result, err := a.Run()
//	for _, bug := range result.Bugs { fmt.Println(bug) }
package rid

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline/cpyrule"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
)

// Specs is an opaque set of predefined refcount API specifications.
type Specs struct{ s *spec.Specs }

// LinuxDPMSpecs returns the built-in Linux Dynamic Power Management
// runtime-PM specifications (pm_runtime_get*/pm_runtime_put*).
func LinuxDPMSpecs() Specs { return Specs{spec.LinuxDPM()} }

// PythonCSpecs returns the built-in Python/C object refcount
// specifications (Py_INCREF/Py_DECREF, new/borrowed/stolen references).
func PythonCSpecs() Specs { return Specs{spec.PythonC()} }

// LockSpecs returns the built-in lock-imbalance spec pack (spin/mutex
// lock, unlock, and conditional-acquisition trylock variants).
func LockSpecs() Specs { return Specs{spec.Lock()} }

// FDSpecs returns the built-in fd-leak spec pack (open/dup/close plus
// ownership transfer on send).
func FDSpecs() Specs { return Specs{spec.FD()} }

// SpecPack resolves a built-in spec pack by name: "linux-dpm",
// "python-c", "lock", or "fd".
func SpecPack(name string) (Specs, error) {
	s, err := spec.Pack(name)
	if err != nil {
		return Specs{}, err
	}
	return Specs{s}, nil
}

// SpecPackNames lists the built-in spec packs in sorted order.
func SpecPackNames() []string { return spec.PackNames() }

// ParseSpecs parses additional specifications in the summary DSL (see
// package documentation for the format) and merges them into s. An API
// already present with a conflicting definition is an error, not a
// silent override.
func (s Specs) Parse(name, src string) (Specs, error) {
	extra, err := spec.Parse(name, src)
	if err != nil {
		return s, err
	}
	merged := spec.NewSpecs()
	if s.s != nil {
		merged.Merge(s.s)
	}
	if err := merged.MergeStrict(extra); err != nil {
		return s, fmt.Errorf("%s: %w", name, err)
	}
	return Specs{merged}, nil
}

// Options tunes the analysis. The zero value reproduces the paper's
// evaluation configuration (§6.1): at most 100 paths per function, 10
// sub-cases per path, category-2 functions analyzed only when they have at
// most 3 conditional branches, sequential scheduling.
type Options struct {
	// MaxPaths bounds path enumeration per function (default 100).
	MaxPaths int
	// MaxSubcases bounds summary entries per path (default 10).
	MaxSubcases int
	// MaxCat2Conds is the §5.2 complexity gate (default 3).
	MaxCat2Conds int
	// Workers >1 analyzes independent call-graph SCCs in parallel;
	// <0 uses GOMAXPROCS.
	Workers int
	// PreserveBitTests keeps "x & CONST" expressions as stable symbolic
	// terms instead of abstracting them to unknowns, eliminating the §6.4
	// bit-operation false positives (the paper's future-work extension).
	// Must be set before sources are added.
	PreserveBitTests bool
	// Suppress lists functions whose reports are discarded — the triage
	// mechanism for the abstraction-induced false positives of §6.4
	// (patterns guarded by data-structure contents the abstraction drops).
	Suppress []string
	// FuncTimeout bounds the wall-clock time spent on any single function.
	// A function that exceeds it keeps its partial summary plus the §5.2
	// default entry, a Diagnostic is recorded, and the run continues;
	// 0 means unlimited.
	FuncTimeout time.Duration
	// SolverMaxConstraints and SolverMaxSplits bound each satisfiability
	// query (0 selects the solver's defaults). A query over budget answers
	// SAT conservatively — degradation toward false positives, never a
	// hang — and is recorded in Diagnostics.
	SolverMaxConstraints int
	SolverMaxSplits      int
	// TraceWriter, when non-nil, receives one JSON object per completed
	// pipeline span (classify, path enumeration, symbolic execution, IPP
	// check, solver query), newline-delimited — the `rid -trace` format.
	// Tracing implies per-query solver timing.
	TraceWriter io.Writer
	// QueryTiming times each solver query individually (feeding the
	// "solver" phase histogram of Result.WriteMetrics) even without a
	// TraceWriter. Off by default: queries can be sub-microsecond, where
	// the clock reads themselves are measurable.
	QueryTiming bool
	// CacheDir, when non-empty, enables the persistent summary store (see
	// cmd/rid's -cache-dir flag): per-function analysis outcomes are
	// cached on disk keyed by content digests of each function's IR and
	// its callees, so a warm run re-analyzes only what changed. Results
	// are byte-identical to a cold run; corrupt or version-skewed entries
	// fall back to cold analysis with a "cache-invalid" Diagnostic.
	// Ignored when Provenance is set — explain always re-derives.
	CacheDir string
	// CacheURL, when non-empty alongside CacheDir, layers a fleet summary
	// store (`rid storeserve`, cmd/rid's -cache-url flag) behind the
	// local one as a read-through/write-behind warm tier. Remote failure
	// of any kind degrades to the local tier with a "cache-remote"
	// Diagnostic; results are never affected. Ignored without CacheDir.
	CacheURL string
	// SpecPacks names built-in spec packs ("lock", "fd", "linux-dpm",
	// "python-c") merged into the analyzer's specifications at Run time.
	// Conflicting API definitions across packs are a Run error.
	SpecPacks []string
	// SpecFiles lists spec DSL files loaded from disk and merged at Run
	// time, after SpecPacks, under the same conflict rule.
	SpecFiles []string
	// Provenance records, per bug, the full derivation (Bug.Provenance,
	// Result.WriteExplain/WriteExplainHTML): both CFG paths with source
	// positions, the constraint before and after the projection of
	// locals, each callee summary entry applied, and the deciding solver
	// query — then replays the witness concretely down both paths and
	// annotates the verdict (confirmed-by-replay / replay-diverged /
	// not-replayable). Off by default; the disabled path does no extra
	// work and no extra allocations.
	Provenance bool
}

// Diagnostic is one degradation event of a run: the analysis kept going
// but gave up precision or work somewhere, and this records exactly
// where. Kind is one of "path-budget", "subcase-budget", "solver-give-up",
// "timeout", "panic", "canceled" or "cache-invalid".
type Diagnostic struct {
	Function string // empty for run-level events (cancellation)
	Kind     string
	Cause    string
}

// String renders the diagnostic as one line.
func (d Diagnostic) String() string {
	fn := d.Function
	if fn == "" {
		fn = "(run)"
	}
	return fmt.Sprintf("%s: %s: %s", fn, d.Kind, d.Cause)
}

// Bug is one reported inconsistent path pair.
type Bug struct {
	Function string
	File     string
	Line     int
	Refcount string // the tracked expression, e.g. "[dev].pm" or "[l].held"
	// Resource is the declared resource kind of the tracked expression
	// ("lock", "fd", ...); empty for refcount packs.
	Resource string
	DeltaA   int
	DeltaB   int
	Evidence string // two-entry detail in the layout of the paper's Fig. 2
	// Provenance is the bug's structured derivation record, non-nil only
	// when the run had Options.Provenance set.
	Provenance *Evidence
}

// String formats the bug as a one-line diagnostic.
func (b Bug) String() string {
	return fmt.Sprintf("%s:%d: %s: inconsistent path pair on %s (%+d vs %+d)",
		b.File, b.Line, b.Function, b.Refcount, b.DeltaA, b.DeltaB)
}

// Categories mirrors Table 1 of the paper.
type Categories struct {
	RefcountChanging    int
	AffectingAnalyzed   int
	AffectingUnanalyzed int
	Other               int
}

// Result is the outcome of a run.
type Result struct {
	Bugs       Bugs
	Categories Categories
	// FuncsAnalyzed is how many functions were summarized.
	FuncsAnalyzed int
	// FuncsTotal is how many functions were defined in the sources.
	FuncsTotal int
	// PathsEnumerated counts paths across all summarized functions.
	PathsEnumerated int
	// FuncsTruncated, FuncsTimedOut and FuncsPanicked count degraded
	// functions (budget truncation, per-function timeout, recovered
	// panic); Diagnostics has the per-function detail.
	FuncsTruncated int
	FuncsTimedOut  int
	FuncsPanicked  int
	// Diagnostics records every degradation event of the run in
	// deterministic order. Empty means the analysis was exhaustive within
	// its configured budgets.
	Diagnostics []Diagnostic

	db      *summary.DB
	prog    *ir.Program
	reports []*ipp.Report
	metrics obs.Snapshot
}

// Degraded reports whether any part of the run was degraded (truncated,
// timed out, panicked, gave up a solver query, or was canceled).
func (r *Result) Degraded() bool { return len(r.Diagnostics) > 0 }

// WriteReports renders the run's reports to w in the named format: "text"
// (one line per bug, plus Figure-2-style evidence when verbose), "json"
// (one JSON object per line) or "sarif" (a SARIF 2.1.0 log for code-review
// tooling).
func (r *Result) WriteReports(w io.Writer, format string, verbose bool) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	return report.Write(w, f, r.reports, verbose)
}

// FunctionSummary renders the derived summary of the named function in the
// paper's (cons, changes, return) entry layout — the automatically
// computed contract RID checks callers against. Empty if the function was
// not summarized.
func (r *Result) FunctionSummary(fn string) string {
	if r.db == nil {
		return ""
	}
	s := r.db.Get(fn)
	if s == nil {
		return ""
	}
	return s.String()
}

// Bugs is a sortable bug list.
type Bugs []Bug

// ByFunction returns the bugs affecting the named function.
func (bs Bugs) ByFunction(fn string) Bugs {
	var out Bugs
	for _, b := range bs {
		if b.Function == fn {
			out = append(out, b)
		}
	}
	return out
}

// Functions returns the distinct reported function names, sorted.
func (bs Bugs) Functions() []string {
	set := map[string]bool{}
	for _, b := range bs {
		set[b.Function] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Analyzer accumulates sources and runs the analysis.
type Analyzer struct {
	specs Specs
	prog  *ir.Program
	opts  Options
	reg   *obs.Registry
}

// New returns an analyzer with the given API specifications.
func New(specs Specs) *Analyzer {
	return &Analyzer{specs: specs, prog: ir.NewProgram(), reg: obs.NewRegistry()}
}

// SetOptions replaces the analysis options.
func (a *Analyzer) SetOptions(o Options) { a.opts = o }

// SetSpecs replaces the API specifications. Sources already added keep
// their lowering; only the next Run is affected.
func (a *Analyzer) SetSpecs(s Specs) { a.specs = s }

// NewRequest returns a fresh analyzer for one request-scoped run: it
// shares a's specifications, options, and live metrics registry, but holds
// its own (empty) program, so many requests can load sources and run
// concurrently while their counters aggregate in one registry — the shape
// `rid serve` uses, with DebugHandler exposing the shared registry live.
// The returned analyzer's options and specs may be overridden per request
// with SetOptions/SetSpecs without affecting a.
func (a *Analyzer) NewRequest() *Analyzer {
	return &Analyzer{specs: a.specs, opts: a.opts, prog: ir.NewProgram(), reg: a.reg}
}

// NewRequestChild is NewRequest with a child metrics registry: the
// request analyzer counts into its own fresh registry, and every count
// also rolls up into a's long-lived one. The request's Result then
// carries an exact per-request metrics delta (its registry started at
// zero) while the parent keeps process-wide totals — the observability
// shape `rid serve` uses for per-request phase breakdowns and the
// /metrics endpoint at once. The rollup is lock-free; the only per-call
// cost is one extra atomic add per event.
func (a *Analyzer) NewRequestChild() *Analyzer {
	return &Analyzer{specs: a.specs, opts: a.opts, prog: ir.NewProgram(), reg: a.reg.Child()}
}

// AddSource parses and lowers one mini-C source buffer into the program
// under analysis. Multiple sources merge as with linking (§5.3); duplicate
// definitions follow last-wins, mirroring weak-symbol merging.
func (a *Analyzer) AddSource(filename, src string) error {
	f, err := parser.ParseFile(filename, src)
	if err != nil {
		return fmt.Errorf("parse %s: %w", filename, err)
	}
	lopts := lower.Options{PreserveBitTests: a.opts.PreserveBitTests}
	if err := lower.IntoOpts(a.prog, f, lopts); err != nil {
		return fmt.Errorf("lower %s: %w", filename, err)
	}
	return nil
}

// AddFile reads, parses and lowers one file from disk.
func (a *Analyzer) AddFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return a.AddSource(path, string(data))
}

// AddDir loads every *.c file under dir, recursively.
func (a *Analyzer) AddDir(dir string) error {
	return filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		return a.AddFile(path)
	})
}

// NumFunctions returns how many functions are currently loaded.
func (a *Analyzer) NumFunctions() int { return len(a.prog.Funcs) }

// FunctionCFG renders the named function's control-flow graph in Graphviz
// dot syntax (empty string if the function is not defined). Handy when
// triaging a report.
func (a *Analyzer) FunctionCFG(fn string) string {
	f := a.prog.Funcs[fn]
	if f == nil {
		return ""
	}
	return cfg.New(f).Dot()
}

// Run executes the full pipeline: classification, bottom-up summarization,
// and IPP checking. It is RunContext with no deadline.
func (a *Analyzer) Run() (*Result, error) {
	return a.RunContext(context.Background())
}

// effectiveSpecs resolves the run's specifications: the analyzer's base
// specs plus Options.SpecPacks and Options.SpecFiles, merged strictly so
// a conflicting API redefinition surfaces as a diagnostic rather than a
// silent last-wins.
func (a *Analyzer) effectiveSpecs() (*spec.Specs, error) {
	if len(a.opts.SpecPacks) == 0 && len(a.opts.SpecFiles) == 0 {
		return a.specs.s, nil
	}
	merged := spec.NewSpecs()
	if a.specs.s != nil {
		merged.Merge(a.specs.s)
	}
	for _, name := range a.opts.SpecPacks {
		p, err := spec.Pack(name)
		if err != nil {
			return nil, err
		}
		if err := merged.MergeStrict(p); err != nil {
			return nil, fmt.Errorf("spec pack %s: %w", name, err)
		}
	}
	for _, path := range a.opts.SpecFiles {
		s, err := spec.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("-spec-file %s: %w", path, err)
		}
		if err := merged.MergeStrict(s); err != nil {
			return nil, fmt.Errorf("-spec-file %s: %w", path, err)
		}
	}
	return merged, nil
}

// RunContext executes the full pipeline under a context. Cancellation (or
// a deadline) stops the run promptly at the next function or path
// boundary; the returned Result then holds the reports derived so far and
// a "canceled" Diagnostic recording how far the run got. A canceled run
// is still a valid, partial result — err is non-nil only for invalid
// input.
func (a *Analyzer) RunContext(ctx context.Context) (*Result, error) {
	if err := a.prog.Validate(); err != nil {
		return nil, fmt.Errorf("invalid program: %w", err)
	}
	specs, err := a.effectiveSpecs()
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		MaxCat2Conds: a.opts.MaxCat2Conds,
		Workers:      a.opts.Workers,
		FuncTimeout:  a.opts.FuncTimeout,
		SolverLimits: solver.Limits{
			MaxConstraints: a.opts.SolverMaxConstraints,
			MaxSplits:      a.opts.SolverMaxSplits,
		},
		Provenance: a.opts.Provenance,
		CacheDir:   a.opts.CacheDir,
		CacheURL:   a.opts.CacheURL,
	}
	// Unset fields default individually inside core (paper's §6.1 values).
	opts.Exec.MaxPaths = a.opts.MaxPaths
	opts.Exec.MaxSubcases = a.opts.MaxSubcases
	var tracer obs.Tracer
	if a.opts.TraceWriter != nil {
		tracer = obs.NewJSONLTracer(a.opts.TraceWriter)
	}
	opts.Obs = obs.New(tracer, a.reg)
	if a.opts.QueryTiming {
		opts.Obs.EnableQueryTiming()
	}
	res := core.Analyze(ctx, a.prog, specs, opts)
	if len(a.opts.Suppress) > 0 {
		drop := make(map[string]bool, len(a.opts.Suppress))
		for _, fn := range a.opts.Suppress {
			drop[fn] = true
		}
		kept := res.Reports[:0]
		for _, r := range res.Reports {
			if !drop[r.Fn] {
				kept = append(kept, r)
			}
		}
		res.Reports = kept
	}
	out := &Result{
		Categories: Categories{
			RefcountChanging:    res.Classification.NumRefcount,
			AffectingAnalyzed:   res.Classification.NumAffectingAnalyzed,
			AffectingUnanalyzed: res.Classification.NumAffectingUnanalyzed,
			Other:               res.Classification.NumOther,
		},
		FuncsAnalyzed:   res.Stats.FuncsAnalyzed,
		FuncsTotal:      res.Stats.FuncsTotal,
		PathsEnumerated: res.Stats.PathsEnumerated,
		FuncsTruncated:  res.Stats.FuncsTruncated,
		FuncsTimedOut:   res.Stats.FuncsTimedOut,
		FuncsPanicked:   res.Stats.FuncsPanicked,
		db:              res.DB,
		prog:            a.prog,
		reports:         res.Reports,
		metrics:         a.reg.Snapshot(),
	}
	for _, d := range res.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, Diagnostic{
			Function: d.Fn,
			Kind:     d.Kind.String(),
			Cause:    d.Cause,
		})
	}
	for _, r := range res.ReportsByFunction() {
		out.Bugs = append(out.Bugs, toBug(r))
	}
	return out, nil
}

// WriteMetrics renders the run's metrics — event counters (paths
// enumerated, subcases forked, solver verdicts, IPP candidates and
// reports) and per-phase wall-clock histograms (count, total, p50, p95,
// max) — in the named format ("text" or "json"); see cmd/rid's -metrics
// flag. Counter lines are deterministic for a sequential run; durations
// are wall-clock and vary.
func (r *Result) WriteMetrics(w io.Writer, format string) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	return report.WriteMetrics(w, f, r.metrics)
}

// PhaseTiming is one pipeline phase's share of a run: how many spans
// completed and their total wall-clock. The slice from PhaseTimings is
// in fixed phase order with stable names ("run", "classify",
// "enumerate", "exec", "ipp", "solver", "replay", "cacheio", "steal",
// "queue") — the names are append-only wire format, shared with -trace
// and -metrics output.
type PhaseTiming struct {
	Phase string
	Count int64
	Total time.Duration
}

// PhaseTimings returns the run's per-phase timing breakdown. For an
// analyzer made with NewRequestChild the numbers are exact for this run
// alone, whatever the worker count; for a shared-registry analyzer they
// aggregate everything the registry has seen.
func (r *Result) PhaseTimings() []PhaseTiming {
	out := make([]PhaseTiming, 0, len(r.metrics.Phases))
	for _, p := range r.metrics.Phases {
		out = append(out, PhaseTiming{Phase: p.Phase, Count: p.Count, Total: p.Total})
	}
	return out
}

// MetricValue returns the run's value for one named event counter (the
// -metrics wire names: "solver_queries", "store_hits", ...), or 0 for a
// name this build does not know. Same exactness contract as
// PhaseTimings.
func (r *Result) MetricValue(name string) int64 {
	for _, c := range r.metrics.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060"; port 0
// picks a free one) exposing /debug/pprof/ and /debug/vars — the expvar
// globals plus the analyzer's live metrics registry under "rid_metrics".
// It returns a function stopping the server and the bound address. The
// registry is live: a Run in progress is visible as it happens.
// Stopping is graceful: in-flight debug requests (a streaming profile,
// say) get a bounded grace period to finish before the server closes.
func (a *Analyzer) ServeDebug(addr string) (stop func() error, actual string, err error) {
	return obs.Serve(addr, a.reg)
}

// DebugHandler returns the /debug/... handler ServeDebug serves standalone
// (net/http/pprof, /debug/vars with the live metrics registry), for
// embedding under another server's mux — `rid serve` mounts it at /debug/.
func (a *Analyzer) DebugHandler() http.Handler { return obs.DebugMux(a.reg) }

// WritePrometheus renders the analyzer's live metrics registry in
// Prometheus text exposition format v0.0.4: one rid_<counter>_total
// family per event counter and a rid_phase_duration_seconds histogram
// labeled by phase. `rid serve` composes this into its /metrics
// endpoint below the serve-level series; it is also usable standalone
// for scraping a long-lived embedded analyzer.
func (a *Analyzer) WritePrometheus(w io.Writer) error {
	return obs.WritePrometheus(w, a.reg)
}

// LiveMetricValue reads one named event counter from the live registry
// (not a Result snapshot) — 0 for unknown names. `rid serve` uses it
// for the cheap always-on counters in /healthz.
func (a *Analyzer) LiveMetricValue(name string) int64 {
	return a.reg.CounterByName(name)
}

// WriteDiagnostics renders the run's degradation diagnostics to w in the
// named format ("text" or "json"); see cmd/rid's -diag flag.
func (r *Result) WriteDiagnostics(w io.Writer, format string) error {
	f, err := report.ParseFormat(format)
	if err != nil {
		return err
	}
	ds := make([]report.Diag, len(r.Diagnostics))
	for i, d := range r.Diagnostics {
		ds[i] = report.Diag{Function: d.Function, Kind: d.Kind, Cause: d.Cause}
	}
	return report.WriteDiags(w, f, ds)
}

func toBug(r *ipp.Report) Bug {
	return Bug{
		Function:   r.Fn,
		File:       r.Pos.File,
		Line:       r.Pos.Line,
		Refcount:   r.Refcount.Key(),
		Resource:   r.Resource,
		DeltaA:     r.DeltaA,
		DeltaB:     r.DeltaB,
		Evidence:   r.Detail(),
		Provenance: fromEvidence(r.Evidence),
	}
}

// EscapeBug is one finding of the Cpychecker-style escape-rule baseline
// (the comparison tool of the paper's Table 2): an object whose net
// refcount change does not match the references escaping the function.
type EscapeBug struct {
	Function string
	Object   string
	Kind     string // "leak" or "over-decrement"
	Net      int
	Want     int
}

// String formats the finding.
func (b EscapeBug) String() string {
	return fmt.Sprintf("%s: %s of %s (net %+d, escapes %d)", b.Function, b.Kind, b.Object, b.Net, b.Want)
}

// RunEscapeRule checks the loaded program against the escape rule of
// Cpychecker/Pungi (§2.1): in any function, the change of an object's
// refcount must equal the number of references escaping via the return
// value or reference-stealing APIs. Useful for Table-2-style side-by-side
// comparisons; RID itself does not rely on this rule.
func (a *Analyzer) RunEscapeRule() ([]EscapeBug, error) {
	if err := a.prog.Validate(); err != nil {
		return nil, fmt.Errorf("invalid program: %w", err)
	}
	var out []EscapeBug
	for _, r := range cpyrule.New(a.specs.s, cpyrule.Config{}).Check(a.prog) {
		out = append(out, EscapeBug{
			Function: r.Fn,
			Object:   r.Object,
			Kind:     r.Kind.String(),
			Net:      r.Net,
			Want:     r.Want,
		})
	}
	return out, nil
}
