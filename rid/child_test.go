package rid

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/promtext"
)

// TestNewRequestChildExactDeltas: concurrent request-scoped analyzers
// each see exactly their own run's counters, while the base analyzer's
// registry aggregates all of them.
func TestNewRequestChildExactDeltas(t *testing.T) {
	base := New(LinuxDPMSpecs())

	const reqs = 8
	var wg sync.WaitGroup
	results := make([]*Result, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := base.NewRequestChild()
			if err := a.AddSource("drv.c", buggy); err != nil {
				t.Error(err)
				return
			}
			res, err := a.RunContext(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var totalFuncs int64
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d did not finish", i)
		}
		// The corpus is one function; an exact per-request view reads 1
		// no matter how many siblings ran concurrently.
		if n := res.MetricValue("funcs_analyzed"); n != 1 {
			t.Errorf("request %d: funcs_analyzed = %d, want 1 (child registry must not see siblings)", i, n)
		}
		totalFuncs += res.MetricValue("funcs_analyzed")
		// And the phase breakdown is per-request too.
		var exec int64
		for _, p := range res.PhaseTimings() {
			if p.Phase == "exec" {
				exec = p.Count
			}
		}
		if exec != 1 {
			t.Errorf("request %d: exec phase count = %d, want 1", i, exec)
		}
	}
	// The parent aggregates every child: the live process-wide counter is
	// the sum of the per-request deltas.
	if live := base.LiveMetricValue("funcs_analyzed"); live != totalFuncs {
		t.Errorf("parent funcs_analyzed = %d, want %d (sum of request deltas)", live, totalFuncs)
	}
}

// TestAnalyzerWritePrometheus: the facade's exposition is well-formed
// and carries the aggregated registry counters.
func TestAnalyzerWritePrometheus(t *testing.T) {
	a := New(LinuxDPMSpecs())
	req := a.NewRequestChild()
	if err := req.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	if _, err := req.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("facade exposition rejected by parser: %v", err)
	}
	if v, ok := fams.Value("rid_funcs_analyzed_total", nil); !ok || v != 1 {
		t.Errorf("rid_funcs_analyzed_total = %v, %t; want 1 (child run rolled up)", v, ok)
	}
	if fams["rid_phase_duration_seconds"] == nil {
		t.Error("phase histogram family missing from facade exposition")
	}
}

// TestLiveMetricValueUnknown: unknown names read as zero, not panic.
func TestLiveMetricValueUnknown(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if v := a.LiveMetricValue("no_such_counter"); v != 0 {
		t.Errorf("unknown counter = %d, want 0", v)
	}
}
