package rid

import (
	"io"

	"repro/internal/cfg"
	"repro/internal/ipp"
	"repro/internal/report"
)

// Replay verdicts attached to Evidence.Replay when Options.Provenance is
// set: the analyzer drove its concrete interpreter down both recorded
// paths under the bug's witness assignment and compared the observed
// refcount deltas.
const (
	// ReplayConfirmed: both paths reproduced and their concrete refcount
	// deltas differed — a dynamic IPP witness backing the static claim.
	ReplayConfirmed = ipp.ReplayConfirmed
	// ReplayDiverged: both paths reproduced but the deltas agreed; the
	// static claim did not materialize on the sampled executions.
	ReplayDiverged = ipp.ReplayDiverged
	// ReplayNotReplayable: a recorded path could not be reproduced
	// within the replay budget.
	ReplayNotReplayable = ipp.ReplayNotReplayable
)

// Evidence is the recorded derivation of a Bug, captured when
// Options.Provenance is set: the two CFG paths with positions and
// constraint history, every callee summary entry applied during
// symbolic execution, the solver query that decided co-satisfiability,
// and the witness-replay verdict.
type Evidence struct {
	PathA PathEvidence
	PathB PathEvidence
	// QueryIndex is the global ordinal of the deciding solver query
	// (the solver_queries counter just after it ran); TraceSeq is the
	// trace sequence number at the same moment when tracing was on.
	// Exact for sequential runs, lower bounds under Workers>1.
	QueryIndex int64
	TraceSeq   int64
	// Replay is one of the Replay* verdicts, or "" if replay never ran.
	Replay string
	// ReplayDeltaA/B are the normalized refcount delta signatures the
	// two replayed paths produced; ReplayAttempts the interpreter runs
	// spent.
	ReplayDeltaA   string
	ReplayDeltaB   string
	ReplayAttempts int
}

// PathEvidence is one side of the pair.
type PathEvidence struct {
	// PathIndex is the Step I enumeration index of the path.
	PathIndex int
	// RawConstraint is the path constraint before locals were
	// existentially projected; Constraint the projected (caller-visible)
	// form.
	RawConstraint string
	Constraint    string
	Callees       []CalleeApplication
	Blocks        []BlockStep
}

// CalleeApplication records one callee summary entry folded into the
// path during symbolic execution.
type CalleeApplication struct {
	Callee     string
	EntryIndex int
	Constraint string // instantiated at the call site
	File       string
	Line       int
}

// BlockStep is one CFG block the path traverses.
type BlockStep struct {
	Block  int
	File   string
	Line   int
	Instrs []string
}

// fromEvidence mirrors the internal evidence record into the public
// types.
func fromEvidence(ev *ipp.Evidence) *Evidence {
	if ev == nil {
		return nil
	}
	out := &Evidence{
		PathA:      fromPathEvidence(ev.PathA),
		PathB:      fromPathEvidence(ev.PathB),
		QueryIndex: ev.Query.Index,
		TraceSeq:   ev.Query.TraceSeq,
	}
	if ev.Replay != nil {
		out.Replay = ev.Replay.Verdict
		out.ReplayDeltaA = ev.Replay.DeltaA
		out.ReplayDeltaB = ev.Replay.DeltaB
		out.ReplayAttempts = ev.Replay.Attempts
	}
	return out
}

func fromPathEvidence(pe ipp.PathEvidence) PathEvidence {
	out := PathEvidence{
		PathIndex:     pe.PathIndex,
		RawConstraint: pe.RawCons,
		Constraint:    pe.Cons,
	}
	for _, app := range pe.Callees {
		out.Callees = append(out.Callees, CalleeApplication{
			Callee:     app.Callee,
			EntryIndex: app.EntryIndex,
			Constraint: app.Cons,
			File:       app.Pos.File,
			Line:       app.Pos.Line,
		})
	}
	for _, blk := range pe.Blocks {
		out.Blocks = append(out.Blocks, BlockStep{
			Block:  blk.Index,
			File:   blk.Pos.File,
			Line:   blk.Pos.Line,
			Instrs: blk.Instrs,
		})
	}
	return out
}

// FilterFunctions returns a shallow copy of the result restricted to
// bugs in the named functions (`rid explain -fn`). Run-level fields
// (stats, diagnostics, metrics) are kept as-is.
func (r *Result) FilterFunctions(fns ...string) *Result {
	keep := make(map[string]bool, len(fns))
	for _, fn := range fns {
		keep[fn] = true
	}
	out := *r
	out.Bugs = nil
	for _, b := range r.Bugs {
		if keep[b.Function] {
			out.Bugs = append(out.Bugs, b)
		}
	}
	out.reports = nil
	for _, rep := range r.reports {
		if keep[rep.Fn] {
			out.reports = append(out.reports, rep)
		}
	}
	return &out
}

// WriteExplain renders the full provenance of every bug as text: the
// inconsistency, witness, replay verdict, deciding solver query, and,
// per path, the constraint history, applied callee entries, and CFG
// blocks with positions. Without Options.Provenance it degrades to the
// Figure-2 detail per bug.
func (r *Result) WriteExplain(w io.Writer) error {
	return report.WriteExplain(w, r.reports)
}

// WriteExplainHTML renders the same provenance as one self-contained
// HTML document, each report including a Graphviz CFG with the two
// paths overlaid (render with `dot -Tsvg`).
func (r *Result) WriteExplainHTML(w io.Writer) error {
	return report.WriteExplainHTML(w, r.reports, r.pathOverlay)
}

// pathOverlay builds the DOT overlay of a report's two recorded paths,
// or "" when the function or its evidence is unavailable.
func (r *Result) pathOverlay(rep *ipp.Report) string {
	if r.prog == nil || rep.Evidence == nil {
		return ""
	}
	f := r.prog.Funcs[rep.Fn]
	if f == nil {
		return ""
	}
	return cfg.New(f).DotPaths(evidenceBlocks(rep.Evidence.PathA), evidenceBlocks(rep.Evidence.PathB))
}

func evidenceBlocks(pe ipp.PathEvidence) []int {
	out := make([]int, len(pe.Blocks))
	for i, b := range pe.Blocks {
		out[i] = b.Index
	}
	return out
}
