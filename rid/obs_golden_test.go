package rid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// traceLine matches exactly the documented JSONL schema, including key
// order: {"seq":N,"phase":"...","fn":"...","start_us":N,"dur_us":N}.
// Consumers are told they can parse this with line-oriented tools, so the
// key order and the absence of extra fields are part of the contract.
var traceLine = regexp.MustCompile(
	`^\{"seq":(\d+),"phase":"(run|classify|enumerate|exec|ipp|solver|replay)","fn":"([^"]*)","start_us":\d+,"dur_us":\d+\}$`)

func runTraced(t *testing.T, src string) (string, *Result) {
	t.Helper()
	var buf bytes.Buffer
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", src); err != nil {
		t.Fatal(err)
	}
	a.SetOptions(Options{Workers: 1, TraceWriter: &buf})
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

// TestTraceGoldenShape pins the JSONL trace format: every line matches the
// schema, seq numbers are 1..N with no gaps, the first completed span is
// the classify phase and the last is the whole-run span, and every
// pipeline phase shows up for a function that is actually analyzed.
func TestTraceGoldenShape(t *testing.T) {
	out, _ := runTraced(t, buggy)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("trace too short (%d lines):\n%s", len(lines), out)
	}
	seen := map[string]bool{}
	for i, ln := range lines {
		m := traceLine.FindStringSubmatch(ln)
		if m == nil {
			t.Fatalf("line %d does not match the trace schema: %q", i+1, ln)
		}
		if m[1] != fmt.Sprint(i+1) {
			t.Fatalf("line %d has seq %s; want %d (strictly increasing, no gaps)", i+1, m[1], i+1)
		}
		seen[m[2]] = true
	}
	for _, phase := range []string{"run", "classify", "enumerate", "exec", "ipp", "solver"} {
		if !seen[phase] {
			t.Errorf("phase %q missing from trace:\n%s", phase, out)
		}
	}
	first := traceLine.FindStringSubmatch(lines[0])
	last := traceLine.FindStringSubmatch(lines[len(lines)-1])
	if first[2] != "classify" {
		t.Errorf("first completed span is %q, want classify", first[2])
	}
	if last[2] != "run" || last[3] != "" {
		t.Errorf("last completed span is %q fn=%q, want the run span", last[2], last[3])
	}
}

// TestTraceDeterministicAtOneWorker checks that the (phase, fn) event
// sequence — everything except wall-clock timings — is identical across
// runs at Workers=1, so traces can be diffed.
func TestTraceDeterministicAtOneWorker(t *testing.T) {
	shape := func(out string) []string {
		var evs []string
		for _, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			m := traceLine.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("bad trace line %q", ln)
			}
			evs = append(evs, m[2]+":"+m[3])
		}
		return evs
	}
	out1, _ := runTraced(t, buggy)
	out2, _ := runTraced(t, buggy)
	a, b := shape(out1), shape(out2)
	if len(a) != len(b) {
		t.Fatalf("trace length differs across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace event %d differs across runs: %q vs %q", i, a[i], b[i])
		}
	}
}

// metricNames is the complete counter set in its fixed output order; the
// text and JSON renderers both emit exactly these, in exactly this order.
var metricNames = []string{
	"funcs_analyzed", "paths_enumerated", "paths_truncated",
	"subcases_forked", "summary_entries", "solver_queries",
	"solver_cache_hits", "solver_sat", "solver_unsat", "solver_gave_up",
	"ipp_candidates", "ipp_confirmed",
	"replay_confirmed", "replay_diverged", "replay_unreplayed",
	"store_hits", "store_misses", "store_evictions",
	"tasks_executed", "tasks_stolen",
	"remote_hits", "remote_misses", "remote_errors",
	"remote_integrity_errors", "remote_puts",
}

var phaseNames = []string{"run", "classify", "enumerate", "exec", "ipp", "solver", "replay", "cacheio", "steal", "queue"}

// TestMetricsGoldenText pins the text metrics layout: one counter line per
// metric in fixed order, then one phase line per phase in fixed order,
// with coherent values for the known single-bug input.
func TestMetricsGoldenText(t *testing.T) {
	_, res := runTraced(t, buggy)
	var buf bytes.Buffer
	if err := res.WriteMetrics(&buf, "text"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if want := len(metricNames) + len(phaseNames); len(lines) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), want, buf.String())
	}
	vals := map[string]int64{}
	counterLine := regexp.MustCompile(`^counter ([a-z_]+) +(-?\d+)$`)
	for i, name := range metricNames {
		m := counterLine.FindStringSubmatch(lines[i])
		if m == nil || m[1] != name {
			t.Fatalf("counter line %d = %q, want counter %s", i, lines[i], name)
		}
		var v int64
		fmt.Sscan(m[2], &v)
		vals[name] = v
	}
	phaseLine := regexp.MustCompile(`^phase ([a-z]+) +count=\d+ total=\S+ p50=\S+ p95=\S+ max=\S+$`)
	for i, name := range phaseNames {
		ln := lines[len(metricNames)+i]
		m := phaseLine.FindStringSubmatch(ln)
		if m == nil || m[1] != name {
			t.Fatalf("phase line %d = %q, want phase %s", i, ln, name)
		}
	}
	if vals["ipp_confirmed"] != 1 {
		t.Errorf("ipp_confirmed = %d, want 1 (one bug in input)", vals["ipp_confirmed"])
	}
	if vals["funcs_analyzed"] < 1 || vals["paths_enumerated"] < 2 {
		t.Errorf("pipeline counters implausible: %v", vals)
	}
	if q := vals["solver_queries"]; q != vals["solver_cache_hits"]+vals["solver_sat"]+vals["solver_unsat"] {
		t.Errorf("query accounting broken: %v", vals)
	}
}

// TestMetricsGoldenJSON pins the JSON metrics shape: a single object with
// "counters" and "phases" arrays carrying the full fixed-name sets.
func TestMetricsGoldenJSON(t *testing.T) {
	_, res := runTraced(t, buggy)
	var buf bytes.Buffer
	if err := res.WriteMetrics(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Phases []struct {
			Phase string `json:"phase"`
			Count int64  `json:"count"`
			Total int64  `json:"total_ns"`
			P50   int64  `json:"p50_ns"`
			P95   int64  `json:"p95_ns"`
			Max   int64  `json:"max_ns"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(snap.Counters) != len(metricNames) {
		t.Fatalf("got %d counters, want %d", len(snap.Counters), len(metricNames))
	}
	for i, name := range metricNames {
		if snap.Counters[i].Name != name {
			t.Errorf("counter %d = %q, want %q", i, snap.Counters[i].Name, name)
		}
	}
	if len(snap.Phases) != len(phaseNames) {
		t.Fatalf("got %d phases, want %d", len(snap.Phases), len(phaseNames))
	}
	for i, name := range phaseNames {
		if snap.Phases[i].Phase != name {
			t.Errorf("phase %d = %q, want %q", i, snap.Phases[i].Phase, name)
		}
		// Quantiles are log2-bucket midpoints, so they can overshoot the
		// exact max by up to the midpoint of max's bucket (< 1.5x) — but
		// never by 2x, and they must be monotone; total bounds max exactly.
		if p := snap.Phases[i]; p.Count > 0 && (p.Total < p.Max || p.P50 > p.P95 || p.P95 > 2*p.Max) {
			t.Errorf("phase %s has incoherent stats: %+v", name, p)
		}
	}
}
