package rid

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const buggy = `
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int do_transfer(struct device *dev);

int drv_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`

func TestAnalyzeBuggySource(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs: %v", res.Bugs)
	}
	b := res.Bugs[0]
	if b.Function != "drv_op" || b.Refcount != "[dev].pm" {
		t.Errorf("bug: %+v", b)
	}
	if b.Evidence == "" || b.File != "drv.c" || b.Line == 0 {
		t.Errorf("evidence/position missing: %+v", b)
	}
	if res.Categories.RefcountChanging != 1 {
		t.Errorf("categories: %+v", res.Categories)
	}
}

func TestAddDirAndFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "drivers")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "a.c"), []byte(buggy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "skip.h"), []byte("garbage !!"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := New(LinuxDPMSpecs())
	if err := a.AddDir(dir); err != nil {
		t.Fatal(err)
	}
	if a.NumFunctions() != 1 {
		t.Fatalf("functions loaded: %d", a.NumFunctions())
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestParseSpecsExtension(t *testing.T) {
	specs, err := LinuxDPMSpecs().Parse("extra", `
summary my_get(dev) {
  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	a := New(specs)
	err = a.AddSource("x.c", `
int op(struct device *dev) {
    int ret;
    ret = my_get(dev);
    if (ret < 0)
        return ret;
    ret = work(dev);
    pm_runtime_put(dev);
    return ret;
}
extern int pm_runtime_put(struct device *dev);
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs: %v", res.Bugs)
	}
}

func TestParseSpecsBadInput(t *testing.T) {
	if _, err := LinuxDPMSpecs().Parse("bad", "summary ???"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestParseErrorSurfaced(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("bad.c", "int f( {"); err == nil {
		t.Fatal("expected syntax error")
	}
}

func TestBugsHelpers(t *testing.T) {
	bs := Bugs{
		{Function: "b"}, {Function: "a"}, {Function: "b"},
	}
	if got := bs.Functions(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Functions: %v", got)
	}
	if got := bs.ByFunction("b"); len(got) != 2 {
		t.Errorf("ByFunction: %v", got)
	}
}

func TestRunEscapeRule(t *testing.T) {
	a := New(PythonCSpecs())
	err := a.AddSource("m.c", `
int always_leak(PyObject *o) {
    Py_INCREF(o);
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	bugs, err := a.RunEscapeRule()
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != 1 || bugs[0].Kind != "leak" || bugs[0].Function != "always_leak" {
		t.Fatalf("bugs: %v", bugs)
	}
	// RID misses this consistent leak — the complementarity of Table 2.
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 0 {
		t.Errorf("RID should miss the consistent leak: %v", res.Bugs)
	}
}

func TestWriteReportsFormats(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "json", "sarif"} {
		var buf strings.Builder
		if err := res.WriteReports(&buf, format, true); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(buf.String(), "drv_op") {
			t.Errorf("%s output missing function name", format)
		}
	}
	if err := res.WriteReports(io.Discard, "bogus", false); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestSuppressOption(t *testing.T) {
	a := New(LinuxDPMSpecs())
	a.SetOptions(Options{Suppress: []string{"drv_op"}})
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 0 {
		t.Errorf("suppressed function still reported: %v", res.Bugs)
	}
}

func TestFunctionCFG(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	dot := a.FunctionCFG("drv_op")
	if !strings.Contains(dot, `digraph "drv_op"`) {
		t.Errorf("dot: %s", dot)
	}
	if a.FunctionCFG("nope") != "" {
		t.Error("unknown function must yield empty dot")
	}
}

func TestFunctionSummaryAccessor(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.FunctionSummary("drv_op"), "[dev].pm") {
		t.Errorf("summary: %q", res.FunctionSummary("drv_op"))
	}
	if res.FunctionSummary("nope") != "" {
		t.Error("unknown function must yield empty summary")
	}
}

func TestAddFileErrors(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddFile("/nonexistent/path.c"); err == nil {
		t.Error("missing file must error")
	}
	if err := a.AddDir("/nonexistent/dir"); err == nil {
		t.Error("missing dir must error")
	}
}

func TestPreserveBitTestsFacade(t *testing.T) {
	src := `
extern int pm_runtime_get(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int do_transfer(struct device *dev);

void fp(struct device *dev, struct opts *o) {
    if (o->flags & 2)
        pm_runtime_get(dev);
    do_transfer(dev);
    if (o->flags & 2)
        pm_runtime_put(dev);
}
`
	plain := New(LinuxDPMSpecs())
	if err := plain.AddSource("m.c", src); err != nil {
		t.Fatal(err)
	}
	res1, _ := plain.Run()
	if len(res1.Bugs) == 0 {
		t.Fatal("paper abstraction must FP on the bitmask pattern")
	}

	ext := New(LinuxDPMSpecs())
	ext.SetOptions(Options{PreserveBitTests: true})
	if err := ext.AddSource("m.c", src); err != nil {
		t.Fatal(err)
	}
	res2, _ := ext.Run()
	if len(res2.Bugs) != 0 {
		t.Errorf("PreserveBitTests must kill the FP: %v", res2.Bugs)
	}
}

// TestRunContextCanceled verifies the facade surfaces graceful
// degradation: a dead context still yields a Result, marked Degraded,
// with a run-level "canceled" diagnostic that WriteDiagnostics renders.
func TestRunContextCanceled(t *testing.T) {
	a := New(LinuxDPMSpecs())
	if err := a.AddSource("drv.c", buggy); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := a.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded() {
		t.Fatal("canceled run not marked degraded")
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Function == "" && d.Kind == "canceled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no run-level canceled diagnostic: %v", res.Diagnostics)
	}
	var buf strings.Builder
	if err := res.WriteDiagnostics(&buf, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(run): canceled") {
		t.Errorf("rendered diagnostics: %q", buf.String())
	}
	var jb strings.Builder
	if err := res.WriteDiagnostics(&jb, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"kind":"canceled"`) {
		t.Errorf("json diagnostics: %q", jb.String())
	}
}

// TestFacadeBudgetDiagnostics drives the new Options knobs end to end:
// tight path budgets through the facade produce truncation counters and
// diagnostics, while a clean default run reports Degraded() == false.
func TestFacadeBudgetDiagnostics(t *testing.T) {
	src := `
int many_paths(struct device *dev, int a, int b, int c) {
    pm_runtime_get(dev);
    if (a) do_transfer(dev);
    if (b) do_transfer(dev);
    if (c) do_transfer(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	a := New(LinuxDPMSpecs())
	a.SetOptions(Options{MaxPaths: 1})
	if err := a.AddSource("m.c", src); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FuncsTruncated != 1 || !res.Degraded() {
		t.Errorf("truncation not surfaced: truncated=%d diags=%v", res.FuncsTruncated, res.Diagnostics)
	}

	clean := New(LinuxDPMSpecs())
	if err := clean.AddSource("m.c", src); err != nil {
		t.Fatal(err)
	}
	cres, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cres.Degraded() {
		t.Errorf("default run degraded: %v", cres.Diagnostics)
	}
}
