// Incremental demonstrates the §5.4 workflow the paper proposes for
// recovering from RID's drop-one-side rule: analyze, fix a reported
// function, then *incrementally* re-check only that function and its
// transitive callers, reusing every other summary from the previous run.
//
// Run with: go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/spec"
)

const v1 = `
struct device;
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int pm_runtime_put_noidle(struct device *dev);
extern int do_transfer(struct device *dev);

int wrapper_get(struct device *dev) {
    return pm_runtime_get_sync(dev);
}

/* BUG: wrapper_get passes the unconditional +1 through; the error return
 * leaks it. */
int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int other_driver(struct device *dev) {
    pm_runtime_get_sync(dev);
    do_transfer(dev);
    pm_runtime_put(dev);
    return 0;
}
`

const v2 = `
struct device;
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int pm_runtime_put_noidle(struct device *dev);
extern int do_transfer(struct device *dev);

int wrapper_get(struct device *dev) {
    return pm_runtime_get_sync(dev);
}

/* FIXED: the error path now balances the count. */
int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int other_driver(struct device *dev) {
    pm_runtime_get_sync(dev);
    do_transfer(dev);
    pm_runtime_put(dev);
    return 0;
}
`

func main() {
	prog1, err := lower.SourceString("v1.c", v1)
	if err != nil {
		log.Fatal(err)
	}
	first := core.Analyze(context.Background(), prog1, spec.LinuxDPM(), core.Options{})
	fmt.Println("Initial analysis:")
	for _, r := range first.ReportsByFunction() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("  functions summarized: %d\n\n", first.Stats.FuncsAnalyzed)

	prog2, err := lower.SourceString("v2.c", v2)
	if err != nil {
		log.Fatal(err)
	}
	inc := core.Incremental(context.Background(), prog2, spec.LinuxDPM(), core.Options{}, first.DB, []string{"op"})
	fmt.Println("After fixing op(), incremental recheck of op and its callers:")
	if len(inc.Reports) == 0 {
		fmt.Println("  no reports — the fix holds")
	}
	for _, r := range inc.ReportsByFunction() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("  functions re-summarized: %d (wrapper_get and other_driver reused from cache)\n",
		inc.Stats.FuncsAnalyzed)
}
