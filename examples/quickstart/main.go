// Quickstart reproduces the paper's running example (Figures 1 and 2): the
// function foo() increments a device's PM count on one path and not on the
// other, while both paths return 0 — an inconsistent path pair.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/rid"
)

// figure1 is the example program of the paper, including the reg_read
// implementation shown in Figure 2. inc_pmcount is specified below via the
// summary DSL, exactly as the paper's Figure 2 presents its summary.
const figure1 = `
void inc_pmcount(struct device *d);

int reg_read(struct device *d, int reg) {
    if (d) {
        int ret;
        ret = random();   /* the asm() register read of Figure 2 */
        if (ret >= 0)
            return ret;
    }
    return -1;
}

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`

const incPMCountSpec = `
summary inc_pmcount(d) {
  entry { cons: [d] != null; changes: [d].pm += 1; return: ; }
  entry { cons: [d] == null; changes: ; return: ; }
}
`

func main() {
	specs, err := rid.LinuxDPMSpecs().Parse("inc_pmcount", incPMCountSpec)
	if err != nil {
		log.Fatal(err)
	}
	a := rid.New(specs)
	if err := a.AddSource("figure1.c", figure1); err != nil {
		log.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RID quickstart — the paper's Figure 1/2 example")
	fmt.Printf("functions analyzed: %d of %d\n\n", res.FuncsAnalyzed, res.FuncsTotal)
	if len(res.Bugs) == 0 {
		fmt.Println("no inconsistent path pairs found (unexpected!)")
		return
	}
	for _, b := range res.Bugs {
		fmt.Println(b)
		fmt.Println()
		fmt.Println(b.Evidence)
	}
	fmt.Println("The two entries share the constraint [dev] != null && [0] == 0 —")
	fmt.Println("a caller cannot tell the paths apart — yet one increments [dev].pm")
	fmt.Println("and the other does not. That pair is the IPP of Figure 2.")
}
