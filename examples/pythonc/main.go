// Pythonc runs RID and the Cpychecker-style escape-rule baseline side by
// side on a small Python/C extension module, showing the complementary
// strengths behind Table 2: RID wins on reassignment (SSA-requiring) bugs,
// the escape rule wins on consistent leaks, and both catch plain
// error-path leaks.
//
// Run with: go run ./examples/pythonc
package main

import (
	"fmt"
	"log"

	"repro/rid"
)

const module = `
extern int fill_list(PyObject *lst, PyObject *a);
extern int register_callback(PyObject *cb);

/* Both tools: the fill_list error exit returns NULL just like the
 * allocation-failure exit, but only it holds a reference. */
PyObject *make_pair(PyObject *a) {
    PyObject *lst;
    lst = PyList_New(2);
    if (lst == NULL)
        return NULL;
    if (fill_list(lst, a) < 0)
        return NULL;
    return lst;
}

/* RID only: rebinding obj hides the first object's leak from a non-SSA
 * escape checker; RID's path pairs still disagree on its refcount. */
PyObject *rebuild(PyObject *fmt) {
    PyObject *obj;
    obj = PyList_New(1);
    if (obj == NULL)
        return NULL;
    obj = Py_BuildValue(fmt);
    if (obj == NULL)
        return NULL;
    return obj;
}

/* Escape rule only: every path increments cb and nothing balances it, so
 * no inconsistent pair exists and RID is silent. */
int hold_callback(PyObject *cb) {
    Py_INCREF(cb);
    register_callback(cb);
    return 0;
}

/* Clean: the error path releases before returning. */
PyObject *make_pair_ok(PyObject *a) {
    PyObject *lst;
    lst = PyList_New(2);
    if (lst == NULL)
        return NULL;
    if (fill_list(lst, a) < 0) {
        Py_DECREF(lst);
        return NULL;
    }
    return lst;
}
`

func main() {
	a := rid.New(rid.PythonCSpecs())
	if err := a.AddSource("module.c", module); err != nil {
		log.Fatal(err)
	}

	fmt.Println("RID vs escape-rule baseline on a Python/C module")
	fmt.Println()

	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RID (inconsistent path pairs):")
	for _, b := range res.Bugs {
		fmt.Printf("  %s\n", b)
	}

	fmt.Println()
	fmt.Println("Cpychecker-style escape rule:")
	escapes, err := a.RunEscapeRule()
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range escapes {
		fmt.Printf("  %s\n", b)
	}

	fmt.Println()
	fmt.Println("make_pair: both. rebuild: RID only (non-SSA trackers lose the")
	fmt.Println("rebound object). hold_callback: escape rule only (consistent leak).")
	fmt.Println("make_pair_ok: neither. This is Table 2's mechanism in miniature.")
}
