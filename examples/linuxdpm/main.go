// Linuxdpm analyzes a small driver file containing the paper's two
// headline Linux bugs — the radeon get-on-error misuse of Figure 8 and the
// idmouse error-path leak behind the USB wrapper of Figure 9 — plus the
// Figure 10 interrupt handler RID deliberately cannot see.
//
// Run with: go run ./examples/linuxdpm
package main

import (
	"fmt"
	"log"

	"repro/rid"
)

const driver = `
struct device;
struct usb_interface { struct device dev; };
struct drm_mode_set;

extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int pm_runtime_put_sync(struct device *dev);
extern int pm_runtime_put_autosuspend(struct device *dev);
extern int drm_crtc_helper_set_config(struct drm_mode_set *set);
extern int idmouse_create_image(struct device *dev);
extern int dev_err(struct device *d);

/* Figure 8: pm_runtime_get_sync increments even when it fails; returning
 * the error without a put leaks the count. */
int radeon_crtc_set_config(struct drm_mode_set *set, struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}

/* Figure 9: the USB wrapper balances the count itself on error... */
int usb_autopm_get_interface(struct usb_interface *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}

void usb_autopm_put_interface(struct usb_interface *intf) {
    pm_runtime_put_sync(&intf->dev);
}

/* ...so idmouse_open's first error exit is fine, but the second one leaks
 * the +1 taken by a successful usb_autopm_get_interface. */
int idmouse_open(struct usb_interface *interface, struct device *dev) {
    int result;
    result = usb_autopm_get_interface(interface);
    if (result)
        goto error;
    result = idmouse_create_image(dev);
    if (result)
        goto error;
    usb_autopm_put_interface(interface);
error:
    return result;
}

/* Figure 10: a real bug RID cannot see — the leaking path returns IRQ_NONE
 * (0), the clean path IRQ_HANDLED (1), so no path pair is inconsistent. */
int arizona_irq_thread(int irq, struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        dev_err(dev);
        return 0;
    }
    pm_runtime_put(dev);
    return 1;
}
`

func main() {
	a := rid.New(rid.LinuxDPMSpecs())
	if err := a.AddSource("driver.c", driver); err != nil {
		log.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RID on the paper's Linux DPM examples (Figures 8, 9, 10)")
	fmt.Println()
	for _, b := range res.Bugs {
		fmt.Println(b)
		fmt.Println(b.Evidence)
	}
	fmt.Printf("reported functions: %v\n", res.Bugs.Functions())
	fmt.Println()
	fmt.Println("Note what is and is not here:")
	fmt.Println("  - radeon_crtc_set_config: Figure 8's API misuse — reported.")
	fmt.Println("  - idmouse_open: Figure 9's error-path leak, found through the")
	fmt.Println("    automatically derived summary of usb_autopm_get_interface — reported.")
	fmt.Println("  - usb_autopm_get_interface itself: consistent — silent.")
	fmt.Println("  - arizona_irq_thread: Figure 10's bug is real but its paths are")
	fmt.Println("    distinguishable by return value — silent (the documented miss).")
}
