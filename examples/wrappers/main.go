// Wrappers demonstrates the property §6.2 highlights as RID's key
// advantage over rule-based checkers: wrapper functions around refcount
// APIs need no annotations. RID derives each wrapper's summary bottom-up —
// including conditional behavior like "no net change when an error is
// returned" — and then checks every caller against that derived contract.
//
// Run with: go run ./examples/wrappers
package main

import (
	"fmt"
	"log"

	"repro/rid"
)

const src = `
struct device;
struct ss_iface { struct device dev; };

extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put_sync(struct device *dev);
extern int do_io(struct device *dev);

/* Conditional wrapper: +1 only when it returns success. */
int ss_get(struct ss_iface *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}

/* Transparent wrapper: passes the unconditional +1 through. */
int ss_get_direct(struct ss_iface *intf) {
    return pm_runtime_get_sync(&intf->dev);
}

void ss_put(struct ss_iface *intf) {
    pm_runtime_put_sync(&intf->dev);
}

/* Correct against ss_get's contract. */
int user_ok(struct ss_iface *intf) {
    int ret;
    ret = ss_get(intf);
    if (ret)
        return ret;
    do_io(&intf->dev);
    ss_put(intf);
    return 0;
}

/* Buggy: treats the transparent wrapper as if it were conditional. */
int user_bad(struct ss_iface *intf) {
    int ret;
    ret = ss_get_direct(intf);
    if (ret < 0)
        return ret;
    ret = do_io(&intf->dev);
    ss_put(intf);
    return ret;
}
`

func main() {
	a := rid.New(rid.LinuxDPMSpecs())
	if err := a.AddSource("wrappers.c", src); err != nil {
		log.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Automatically derived wrapper summaries (no annotations):")
	fmt.Println()
	for _, fn := range []string{"ss_get", "ss_get_direct", "ss_put"} {
		fmt.Print(res.FunctionSummary(fn))
	}
	fmt.Println()
	fmt.Println("Reports:")
	for _, b := range res.Bugs {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println()
	fmt.Println("user_ok follows ss_get's derived contract and is silent;")
	fmt.Println("user_bad assumed ss_get_direct balances on error and is reported.")
	fmt.Println("Rule-based tools need a manually maintained wrapper list for this;")
	fmt.Println("RID computes it (§2.1, §6.2).")
}
