package interp

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/spec"
)

// ReplayOutcome is the result of steering the interpreter down one
// recorded CFG path under a witness assignment.
type ReplayOutcome struct {
	// Reproduced reports that some run followed exactly the recorded
	// block sequence (and returned the witness's [0] value, when the
	// witness constrains the return).
	Reproduced bool
	// Outcome is the matching run's observable result (zero value when
	// not reproduced).
	Outcome Outcome
	// Attempts is the number of interpreter runs spent (≤ trials).
	Attempts int
}

// ReplayPath drives fn down the recorded block sequence under the
// witness assignment: arguments named in the witness (keys "[param]")
// take their witness values; the rest are drawn from the havoc range,
// re-drawn each attempt. Because extern callees execute a randomly
// chosen summary entry, steering is stochastic — up to trials seeds are
// tried (deterministically derived from seed) until one run's top-frame
// block trajectory equals blocks and, when the witness binds "[0]", the
// run returns that value. Refcount deltas of the matching run are
// measured from an empty store.
func ReplayPath(prog *ir.Program, specs *spec.Specs, fn string, witness map[string]int64, blocks []int, trials int, seed int64) (ReplayOutcome, error) {
	f := prog.Funcs[fn]
	if f == nil {
		return ReplayOutcome{}, fmt.Errorf("function %s not defined", fn)
	}
	if trials <= 0 {
		trials = 64
	}
	var ro ReplayOutcome
	for trial := 0; trial < trials; trial++ {
		ip := New(prog, specs, seed+int64(trial)*7919, Config{})
		ip.traceOn = true
		args := make([]int64, len(f.Params))
		argRng := rand.New(rand.NewSource(seed + int64(trial)*104729))
		for i, p := range f.Params {
			if v, ok := witness["["+p+"]"]; ok {
				args[i] = v
			} else {
				// Unconstrained by the witness: small positive scalars,
				// like FindWitness, so loop bounds admit an iteration.
				args[i] = 1 + argRng.Int63n(3)
			}
		}
		out, err := ip.Call(fn, args)
		if err != nil {
			return ReplayOutcome{}, err
		}
		ro.Attempts = trial + 1
		if out.Trapped || !sameBlocks(ip.trace, blocks) {
			continue
		}
		if want, ok := witness["[0]"]; ok && out.HasRet && out.Ret != want {
			continue
		}
		ro.Reproduced = true
		ro.Outcome = out
		return ro, nil
	}
	return ro, nil
}

func sameBlocks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
