package interp

import (
	"testing"

	"repro/internal/lower"
	"repro/internal/spec"
)

func load(t *testing.T, src string) *Interp {
	t.Helper()
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, spec.LinuxDPM(), 1, Config{})
}

func TestConcreteArithmeticFlow(t *testing.T) {
	ip := load(t, `
int f(int a) {
    if (a > 0)
        return 1;
    return 0;
}`)
	out, err := ip.Call("f", []int64{5})
	if err != nil || !out.HasRet || out.Ret != 1 {
		t.Fatalf("f(5) = %+v, %v", out, err)
	}
	out, _ = ip.Call("f", []int64{-2})
	if out.Ret != 0 {
		t.Fatalf("f(-2) = %+v", out)
	}
}

func TestRefcountAPIAppliesDelta(t *testing.T) {
	ip := load(t, `
void f(struct device *dev) {
    pm_runtime_get_sync(dev);
}`)
	dev := ip.NewObject()
	out, err := ip.Call("f", []int64{dev})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deltas) != 1 {
		t.Fatalf("deltas: %v", out.Deltas)
	}
	for k, v := range out.Deltas {
		if v != 1 {
			t.Errorf("delta %s = %d", k, v)
		}
	}
}

func TestBalancedGetPutNetsZero(t *testing.T) {
	ip := load(t, `
void f(struct device *dev) {
    pm_runtime_get_sync(dev);
    pm_runtime_put(dev);
}`)
	dev := ip.NewObject()
	out, err := ip.Call("f", []int64{dev})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deltas) != 0 {
		t.Errorf("balanced function leaked: %v", out.Deltas)
	}
}

func TestLoopBounded(t *testing.T) {
	ip := load(t, `
int f(int n) {
    while (1 > 0)
        n = g(n);
    return n;
}`)
	out, err := ip.Call("f", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trapped {
		t.Error("infinite loop must trap on MaxSteps")
	}
}

func TestAssumeTraps(t *testing.T) {
	ip := load(t, `
int f(struct device *dev) {
    assert(dev != NULL);
    return 1;
}`)
	out, err := ip.Call("f", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trapped {
		t.Error("failed assertion must trap")
	}
}

func TestFieldChainStable(t *testing.T) {
	ip := load(t, `
void f(struct usb_interface *intf) {
    pm_runtime_get_sync(&intf->dev);
    pm_runtime_put_sync(&intf->dev);
}`)
	intf := ip.NewObject()
	out, err := ip.Call("f", []int64{intf})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deltas) != 0 {
		t.Errorf("&intf->dev must resolve to one object: %v", out.Deltas)
	}
}

// Figure 8's bug produces a dynamic IPP witness; the fixed version does
// not. This is the differential oracle used against the corpus.
func TestDifferentialFigure8(t *testing.T) {
	src := `
int buggy(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put_autosuspend(dev);
    return ret;
}

int fixed(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
    ret = do_transfer(dev);
    pm_runtime_put_autosuspend(dev);
    return ret;
}
`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FindWitness(prog, spec.LinuxDPM(), "buggy", []bool{true}, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("no dynamic witness for Figure 8's bug")
	}
	if w.A.RetKey() != w.B.RetKey() {
		t.Errorf("witness returns differ: %s vs %s", w.A.RetKey(), w.B.RetKey())
	}
	w2, err := FindWitness(prog, spec.LinuxDPM(), "fixed", []bool{true}, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != nil {
		t.Errorf("fixed version produced a witness: %s vs %s", w2.A.Key(), w2.B.Key())
	}
}

// The Figure 10 pattern never yields a witness: the leaking path's return
// value (0) never coincides with the clean path's (1) — the dynamic
// counterpart of RID's documented false negative.
func TestDifferentialFigure10NoWitness(t *testing.T) {
	src := `
int irq_handler(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        dev_err(dev);
        return 0;
    }
    pm_runtime_put(dev);
    return 1;
}
`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FindWitness(prog, spec.LinuxDPM(), "irq_handler", []bool{true}, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("Figure 10 must have no dynamic witness, got %s vs %s", w.A.Key(), w.B.Key())
	}
}

func TestPythonCAllocationEntries(t *testing.T) {
	src := `
PyObject *make(int n) {
    PyObject *o;
    o = PyList_New(n);
    if (o == NULL)
        return NULL;
    return o;
}
`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	sawNull, sawObj := false, false
	for seed := int64(0); seed < 40; seed++ {
		ip := New(prog, spec.PythonC(), seed, Config{})
		out, err := ip.Call("make", []int64{2})
		if err != nil {
			t.Fatal(err)
		}
		if out.Ret == 0 {
			sawNull = true
			if len(out.Deltas) != 0 {
				t.Errorf("failed allocation changed a refcount: %v", out.Deltas)
			}
		} else {
			sawObj = true
			if len(out.Deltas) != 1 {
				t.Errorf("successful allocation deltas: %v", out.Deltas)
			}
		}
	}
	if !sawNull || !sawObj {
		t.Errorf("both allocation outcomes must occur (null=%t obj=%t)", sawNull, sawObj)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	src := `int f(int a) { int v = random(); if (v > a) return 1; return 0; }`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a := New(prog, spec.LinuxDPM(), 42, Config{})
	b := New(prog, spec.LinuxDPM(), 42, Config{})
	oa, _ := a.Call("f", []int64{0})
	ob, _ := b.Call("f", []int64{0})
	if oa.Key() != ob.Key() {
		t.Errorf("same seed, different outcomes: %s vs %s", oa.Key(), ob.Key())
	}
}

func TestRefcountsSnapshotAndReset(t *testing.T) {
	ip := load(t, `void f(struct device *dev) { pm_runtime_get_sync(dev); }`)
	dev := ip.NewObject()
	if _, err := ip.Call("f", []int64{dev}); err != nil {
		t.Fatal(err)
	}
	counts := ip.Refcounts()
	if len(counts) != 1 {
		t.Fatalf("counts: %v", counts)
	}
	ip.ResetCounts()
	if len(ip.Refcounts()) != 0 {
		t.Error("reset did not clear the store")
	}
}

func TestOutcomeKeys(t *testing.T) {
	o := Outcome{Ret: 3, HasRet: true, Deltas: map[string]int64{"1002.pm": 1}}
	if o.RetKey() != "3" {
		t.Errorf("RetKey: %q", o.RetKey())
	}
	if o.Key() == "" || o.Key() == (Outcome{}).Key() {
		t.Errorf("Key: %q", o.Key())
	}
	void := Outcome{}
	if void.RetKey() != "void" {
		t.Errorf("void RetKey: %q", void.RetKey())
	}
}

func TestFindWitnessUnknownFunction(t *testing.T) {
	prog, err := lower.SourceString("t.c", `int f(int a) { return a; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindWitness(prog, spec.LinuxDPM(), "missing", nil, 10, 1); err == nil {
		t.Error("unknown function must error")
	}
}
