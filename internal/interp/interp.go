// Package interp is a concrete interpreter for the abstract IR. It gives
// the repository a dynamic oracle: running a function many times with
// random inputs and observing (return value, net refcount changes) pairs
// yields *dynamic IPP witnesses* — two executions with the same arguments
// and the same return value but different refcount deltas. Witnesses
// validate the corpus ground truth and the static analysis against actual
// execution semantics (see TestDifferential* in interp_test.go and the
// kernelgen differential tests).
//
// Extern refcount APIs execute according to their predefined summaries:
// a summary entry is chosen uniformly among those whose constraints can be
// satisfied concretely, its changes are applied to the refcount store, and
// its return expression is evaluated (unconstrained returns draw from a
// small integer range so that cross-execution return collisions — the
// precondition for a witness — actually occur).
package interp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ir"
	"repro/internal/spec"
	"repro/internal/sym"
)

// Config controls one interpreter instance.
type Config struct {
	// MaxSteps bounds total instructions per call (loops!); default 10000.
	MaxSteps int
	// HavocRange r draws unknown values from [-r, r]; default 3.
	HavocRange int64
}

// Interp executes functions of one program.
type Interp struct {
	prog  *ir.Program
	specs *spec.Specs
	rng   *rand.Rand
	cfg   Config

	heap   map[int64]map[string]int64 // object id → field → value
	nextID int64
	counts map[string]int64 // refcount key → current value

	// Block trajectory of the top-level frame, recorded when traceOn is
	// set (witness replay matches it against a recorded cfg.Path).
	traceOn bool
	trace   []int
}

// New returns an interpreter; seed fixes all non-determinism.
func New(prog *ir.Program, specs *spec.Specs, seed int64, cfg Config) *Interp {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 10000
	}
	if cfg.HavocRange == 0 {
		cfg.HavocRange = 3
	}
	return &Interp{
		prog:   prog,
		specs:  specs,
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		heap:   make(map[int64]map[string]int64),
		counts: make(map[string]int64),
	}
}

// NewObject allocates a fresh heap object and returns its address (object
// addresses are positive and even so they never collide with small scalar
// values drawn from the havoc range; 0 is null).
func (ip *Interp) NewObject() int64 {
	ip.nextID++
	id := 1000 + ip.nextID*2
	ip.heap[id] = make(map[string]int64)
	return id
}

// Refcounts returns the refcount store as a sorted key→value snapshot.
func (ip *Interp) Refcounts() map[string]int64 {
	out := make(map[string]int64, len(ip.counts))
	for k, v := range ip.counts {
		out[k] = v
	}
	return out
}

// ResetCounts clears the refcount store (between trials).
func (ip *Interp) ResetCounts() { ip.counts = make(map[string]int64) }

// Outcome is the observable result of one execution.
type Outcome struct {
	Ret    int64
	HasRet bool
	// Deltas is the net refcount change per object key, with zero entries
	// removed.
	Deltas map[string]int64
	// Steps is the instruction count (for loop-bound diagnostics).
	Steps int
	// Trapped reports that MaxSteps was exceeded.
	Trapped bool
}

// Key renders the (return, deltas) pair canonically for witness grouping.
func (o Outcome) Key() string {
	keys := make([]string, 0, len(o.Deltas))
	for k := range o.Deltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "ret:"
	if o.HasRet {
		s += fmt.Sprint(o.Ret)
	} else {
		s += "void"
	}
	for _, k := range keys {
		s += fmt.Sprintf(" %s:%+d", k, o.Deltas[k])
	}
	return s
}

// RetKey groups outcomes by return value only.
func (o Outcome) RetKey() string {
	if !o.HasRet {
		return "void"
	}
	return fmt.Sprint(o.Ret)
}

// Call executes fn with the given concrete arguments and returns the
// outcome. Refcount deltas are measured relative to the store at entry.
func (ip *Interp) Call(fn string, args []int64) (Outcome, error) {
	before := ip.Refcounts()
	ret, hasRet, steps, trapped, err := ip.run(fn, args, 0)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Ret: ret, HasRet: hasRet, Steps: steps, Trapped: trapped, Deltas: map[string]int64{}}
	for k, v := range ip.counts {
		if d := v - before[k]; d != 0 {
			out.Deltas[k] = d
		}
	}
	for k, v := range before {
		if _, ok := ip.counts[k]; !ok && v != 0 {
			out.Deltas[k] = -v
		}
	}
	return out, nil
}

const maxDepth = 64

func (ip *Interp) run(fnName string, args []int64, depth int) (ret int64, hasRet bool, steps int, trapped bool, err error) {
	if depth > maxDepth {
		return 0, false, 0, true, nil
	}
	fn := ip.prog.Funcs[fnName]
	if fn == nil {
		// Extern: predefined API or havoc.
		r, has := ip.extern(fnName, args)
		return r, has, 1, false, nil
	}
	env := make(map[string]int64, len(fn.Params))
	for i, p := range fn.Params {
		if i < len(args) {
			env[p] = args[i]
		}
	}
	block := 0
	for {
		if depth == 0 && ip.traceOn {
			ip.trace = append(ip.trace, block)
		}
		blk := fn.Blocks[block]
		for _, in := range blk.Instrs {
			steps++
			if steps > ip.cfg.MaxSteps {
				return 0, false, steps, true, nil
			}
			switch in.Op {
			case ir.OpAssign:
				env[in.Dst] = ip.eval(env, in.Val)
			case ir.OpLoadField:
				env[in.Dst] = ip.loadField(ip.eval(env, in.Obj), in.Field)
			case ir.OpRandom:
				env[in.Dst] = ip.havoc()
			case ir.OpCompare:
				a, b := ip.eval(env, in.A), ip.eval(env, in.B)
				env[in.Dst] = boolToInt(in.Pred.Eval(a, b))
			case ir.OpAssume:
				if ip.eval(env, in.Cond) == 0 {
					// Assumption failed: treat as a trap (the analysis
					// ignores this path too).
					return 0, false, steps, true, nil
				}
			case ir.OpCall:
				callArgs := make([]int64, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = ip.eval(env, a)
				}
				r, has, s, tr, cerr := ip.run(in.Fn, callArgs, depth+1)
				steps += s
				if cerr != nil {
					return 0, false, steps, false, cerr
				}
				if tr {
					return 0, false, steps, true, nil
				}
				if in.Dst != "" {
					if has {
						env[in.Dst] = r
					} else {
						env[in.Dst] = ip.havoc()
					}
				}
			case ir.OpReturn:
				if in.HasVal {
					return ip.eval(env, in.Val), true, steps, false, nil
				}
				return 0, false, steps, false, nil
			case ir.OpBranch:
				block = in.Target
			case ir.OpBranchCond:
				if ip.eval(env, in.Cond) != 0 {
					block = in.True
				} else {
					block = in.False
				}
			}
			if in.IsTerminator() && in.Op != ir.OpReturn {
				break
			}
		}
	}
}

func (ip *Interp) eval(env map[string]int64, v ir.Value) int64 {
	switch v.Kind {
	case ir.ValVar:
		if x, ok := env[v.Var]; ok {
			return x
		}
		// Read before assignment: havoc once and remember.
		x := ip.havoc()
		env[v.Var] = x
		return x
	case ir.ValInt:
		return v.Int
	case ir.ValBool:
		return boolToInt(v.Bool)
	case ir.ValNull:
		return 0
	}
	return 0
}

func (ip *Interp) havoc() int64 {
	r := ip.cfg.HavocRange
	return ip.rng.Int63n(2*r+1) - r
}

// loadField reads obj.field, lazily materializing nested objects so field
// chains like intf.dev stay stable across the execution.
func (ip *Interp) loadField(obj int64, field string) int64 {
	h, ok := ip.heap[obj]
	if !ok {
		// Field access on a non-object (null or scalar): havoc.
		return ip.havoc()
	}
	if v, ok := h[field]; ok {
		return v
	}
	// Fields accessed as objects (e.g. &intf->dev) get fresh objects;
	// scalar reads will just use the address as an opaque value, which is
	// harmless because the abstraction never does arithmetic on it.
	v := ip.NewObject()
	h[field] = v
	return v
}

// extern executes an undefined callee: a predefined refcount API applies a
// concretely chosen summary entry; anything else is havoc.
func (ip *Interp) extern(fn string, args []int64) (int64, bool) {
	api := ip.specs.APIs[fn]
	if api == nil {
		return ip.havoc(), true
	}
	entries := api.Summary.Entries
	// Choose uniformly among entries whose argument constraints hold; the
	// return value is then drawn to satisfy the entry's [0] constraints.
	type cand struct {
		idx int
		ret int64
		has bool
	}
	var cands []cand
	for i, e := range entries {
		ret, has, ok := ip.concretize(e.Cons, e.Ret, api.Params, args, api.NewRef)
		if ok {
			cands = append(cands, cand{i, ret, has})
		}
	}
	if len(cands) == 0 {
		return ip.havoc(), true
	}
	c := cands[ip.rng.Intn(len(cands))]
	e := entries[c.idx]
	for _, ch := range e.Changes {
		key, ok := ip.refcountKey(ch.RC, api.Params, args, c.ret)
		if ok {
			ip.counts[key] += int64(ch.Delta)
		}
	}
	return c.ret, c.has
}

// concretize checks an entry's argument constraints against concrete args
// and picks a return value compatible with its [0] constraints. Only the
// constraint shapes the spec DSL produces are supported: comparisons of
// [param] or [0] against constants/null.
func (ip *Interp) concretize(cons sym.Set, retExpr *sym.Expr, params []string, args []int64, newRef bool) (ret int64, has bool, ok bool) {
	// Evaluate the return expression first when it is concrete.
	retFixed := false
	if retExpr != nil {
		has = true
		if v, isConst := retExpr.IsConst(); isConst {
			ret = v
			retFixed = true
		}
	}
	// Try a handful of draws for an unconstrained return.
	for attempt := 0; attempt < 16; attempt++ {
		if has && !retFixed {
			if newRef && attempt == 0 {
				// Allocation APIs usually succeed: bias the first attempt
				// toward a fresh object.
				ret = ip.NewObject()
			} else {
				ret = ip.havoc()
			}
		}
		good := true
		for _, c := range cons.Conds() {
			if c.Kind != sym.KCond {
				continue
			}
			av, aok := ip.term(c.A, params, args, ret, has)
			bv, bok := ip.term(c.B, params, args, ret, has)
			if !aok || !bok {
				continue // unsupported term: treat as satisfied
			}
			if !c.Pred.Eval(av, bv) {
				good = false
				break
			}
		}
		if good {
			return ret, has, true
		}
		if retFixed || !has {
			return 0, has, false
		}
	}
	return 0, has, false
}

func (ip *Interp) term(e *sym.Expr, params []string, args []int64, ret int64, hasRet bool) (int64, bool) {
	if v, ok := e.IsConst(); ok {
		return v, true
	}
	switch e.Kind {
	case sym.KArg:
		for i, p := range params {
			if p == e.Name && i < len(args) {
				return args[i], true
			}
		}
	case sym.KRet:
		if hasRet {
			return ret, true
		}
	}
	return 0, false
}

// refcountKey maps a change expression ([dev].pm, [0].rc) to a concrete
// store key based on the object's address.
func (ip *Interp) refcountKey(rc *sym.Expr, params []string, args []int64, ret int64) (string, bool) {
	switch rc.Kind {
	case sym.KField:
		base, ok := ip.refcountBase(rc.Base, params, args, ret)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%d.%s", base, rc.Name), true
	}
	return "", false
}

func (ip *Interp) refcountBase(e *sym.Expr, params []string, args []int64, ret int64) (int64, bool) {
	switch e.Kind {
	case sym.KArg:
		for i, p := range params {
			if p == e.Name && i < len(args) {
				return args[i], true
			}
		}
	case sym.KRet:
		return ret, true
	case sym.KField:
		base, ok := ip.refcountBase(e.Base, params, args, ret)
		if !ok {
			return 0, false
		}
		return ip.loadField(base, e.Name), true
	}
	return 0, false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Dynamic IPP witnesses

// Witness is a pair of executions with identical arguments and return
// values but different refcount deltas — the runtime counterpart of an
// inconsistent path pair.
type Witness struct {
	Fn   string
	A, B Outcome
}

// FindWitness runs fn up to trials times with fresh random seeds (same
// argument objects each trial) and reports a dynamic IPP witness if one
// occurs. ptrParams lists which parameters receive object addresses (the
// rest draw small scalars once and stay fixed across trials).
func FindWitness(prog *ir.Program, specs *spec.Specs, fn string, ptrParams []bool, trials int, seed int64) (*Witness, error) {
	f := prog.Funcs[fn]
	if f == nil {
		return nil, fmt.Errorf("function %s not defined", fn)
	}
	byRet := make(map[string]Outcome)
	for trial := 0; trial < trials; trial++ {
		ip := New(prog, specs, seed+int64(trial)*7919, Config{})
		args := make([]int64, len(f.Params))
		argRng := rand.New(rand.NewSource(seed)) // same args every trial
		for i := range args {
			if i < len(ptrParams) && ptrParams[i] {
				args[i] = ip.NewObject()
			} else {
				// Small positive scalars: loop bounds must admit at least
				// one iteration for loop-path bugs to be reachable.
				args[i] = 1 + argRng.Int63n(3)
			}
		}
		out, err := ip.Call(fn, args)
		if err != nil {
			return nil, err
		}
		if out.Trapped {
			continue
		}
		// Deltas are keyed by concrete object addresses, which differ
		// across interpreter instances; normalize by position.
		norm := normalizeDeltas(out)
		if prev, ok := byRet[out.RetKey()]; ok {
			if normalizeDeltas(prev) != norm {
				return &Witness{Fn: fn, A: prev, B: out}, nil
			}
		} else {
			byRet[out.RetKey()] = out
		}
	}
	return nil, nil
}

// DeltaSignature canonicalizes the outcome's refcount delta multiset,
// ignoring object addresses (which differ across interpreter instances):
// two outcomes with equal signatures applied the same net changes to the
// same field paths. It is the comparison FindWitness uses and the one
// witness replay uses to decide confirmed-by-replay vs replay-diverged.
func (o Outcome) DeltaSignature() string { return normalizeDeltas(o) }

// normalizeDeltas canonicalizes delta multisets ignoring object addresses.
func normalizeDeltas(o Outcome) string {
	var parts []string
	for k, v := range o.Deltas {
		// Strip the address, keep the field path and delta.
		field := k
		for i := 0; i < len(k); i++ {
			if k[i] == '.' {
				field = k[i:]
				break
			}
		}
		parts = append(parts, fmt.Sprintf("%s:%+d", field, v))
	}
	sort.Strings(parts)
	s := ""
	for _, p := range parts {
		s += p + ";"
	}
	return s
}
