package spec

// Built-in specifications transcribed from Figure 7 of the paper plus the
// surrounding DPM and Python/C APIs its evaluation relies on. The DPM
// get-side APIs increment the per-device PM count unconditionally — the
// deliberately unusual contract §6.3 highlights — while the Python/C
// allocation APIs have the two-entry success/failure shape of §5.1.

// LinuxDPMText is the DSL source for the Linux Dynamic Power Management
// runtime-PM reference count APIs.
const LinuxDPMText = `
# Linux DPM runtime power management counters (Figure 7, top).
# get-side APIs ALWAYS increment, even when they return an error code.
resource refcount {
  fields: pm;
  balance: zero;
}
summary pm_runtime_get(dev) {
  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
}
summary pm_runtime_get_sync(dev) {
  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
}
summary pm_runtime_get_noresume(dev) {
  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
}
summary pm_runtime_put(dev) {
  entry { cons: true; changes: [dev].pm -= 1; return: [0]; }
}
summary pm_runtime_put_sync(dev) {
  entry { cons: true; changes: [dev].pm -= 1; return: [0]; }
}
summary pm_runtime_put_autosuspend(dev) {
  entry { cons: true; changes: [dev].pm -= 1; return: [0]; }
}
summary pm_runtime_put_noidle(dev) {
  entry { cons: true; changes: [dev].pm -= 1; return: [0]; }
}
`

// PythonCText is the DSL source for the Python/C object refcount APIs.
const PythonCText = `
# Python/C object reference counts.
resource refcount {
  fields: rc;
  balance: zero;
}

# Basic interfaces (Figure 7, bottom).
summary Py_INCREF(o) {
  entry { cons: true; changes: [o].rc += 1; return: ; }
}
summary Py_DECREF(o) {
  entry { cons: true; changes: [o].rc -= 1; return: ; }
}
summary Py_XINCREF(o) {
  entry { cons: [o] != null; changes: [o].rc += 1; return: ; }
  entry { cons: [o] == null; changes: ; return: ; }
}
summary Py_XDECREF(o) {
  entry { cons: [o] != null; changes: [o].rc -= 1; return: ; }
  entry { cons: [o] == null; changes: ; return: ; }
}

# APIs returning a new reference: allocation can fail, hence two entries.
summary Py_BuildValue(fmt) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyList_New(len) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyDict_New() {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyTuple_New(len) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyInt_FromLong(v) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyLong_FromLong(v) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary PyString_FromString(s) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}

# APIs returning a borrowed reference: no refcount change.
summary PyList_GetItem(list, i) {
  entry { cons: true; changes: ; return: [0]; }
}
summary PyDict_GetItem(d, key) {
  entry { cons: true; changes: ; return: [0]; }
}
summary PyTuple_GetItem(t, i) {
  entry { cons: true; changes: ; return: [0]; }
}

# APIs stealing a reference to an argument: no refcount change either, but
# the reference escapes through them (attr used by the escape-rule baseline).
summary PyList_SetItem(list, i, item) {
  attr steals(item);
  entry { cons: true; changes: ; return: [0]; }
}
summary PyTuple_SetItem(t, i, item) {
  attr steals(item);
  entry { cons: true; changes: ; return: [0]; }
}

# APIs creating new references to their arguments (Figure 7: PyErr_SetObject).
summary PyErr_SetObject(type, value) {
  entry { cons: true; changes: [type].rc += 1, [value].rc += 1; return: ; }
}
summary PyList_Append(list, item) {
  entry { cons: [0] == 0; changes: [item].rc += 1; return: 0; }
  entry { cons: [0] == -1; changes: ; return: -1; }
}
summary PyDict_SetItemString(d, key, val) {
  entry { cons: [0] == 0; changes: [val].rc += 1; return: 0; }
  entry { cons: [0] == -1; changes: ; return: -1; }
}
`

// LinuxDPM returns the parsed Linux DPM specifications.
func LinuxDPM() *Specs { return MustParse("linux-dpm", LinuxDPMText) }

// PythonC returns the parsed Python/C specifications.
func PythonC() *Specs { return MustParse("python-c", PythonCText) }
