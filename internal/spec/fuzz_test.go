package spec

import "testing"

// FuzzSpecParser fuzzes the DSL loader: no panics on arbitrary input,
// and for any input that parses, the canonical printer is a fixpoint —
// Format(Parse(src)) reparses and reformats byte-identically. This is
// the property that makes Fingerprint a sound cache key.
func FuzzSpecParser(f *testing.F) {
	f.Add(LinuxDPMText)
	f.Add(PythonCText)
	f.Add(LockText)
	f.Add(FDText)
	f.Add("summary f(a, b) {\n  attr steals(b);\n  entry { cons: [0] == -4 && [a].x != null; changes: [a].x += 2, [b].y -= 1; return: [0]; }\n}\n")
	f.Add("resource lock { fields: held; balance: zero; }\n")
	f.Add("summary g() {\n  attr newref;\n  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }\n  entry { cons: [0] == null; changes: ; return: null; }\n}\n")
	f.Add("# comment\nsummary h(p) { entry { cons: 1 == 1 && 0 == 1; changes: [p].f += 1, [p].f -= 1; return: true; } }")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		p1 := s.Format()
		s2, err := Parse("fuzz-reparse", p1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput: %q\ncanonical:\n%s", err, src, p1)
		}
		p2 := s2.Format()
		if p1 != p2 {
			t.Fatalf("Format is not a fixpoint\ninput: %q\n--- first:\n%s\n--- second:\n%s", src, p1, p2)
		}
		if s.Fingerprint() != s2.Fingerprint() {
			t.Fatal("fingerprint unstable across canonical reparse")
		}
	})
}
