package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackRegistry ensures every shipped pack parses and resolves.
func TestPackRegistry(t *testing.T) {
	for _, name := range PackNames() {
		s, err := Pack(name)
		if err != nil {
			t.Fatalf("Pack(%q): %v", name, err)
		}
		if len(s.APIs) == 0 {
			t.Fatalf("pack %q has no APIs", name)
		}
		if len(s.Resources) != 1 {
			t.Fatalf("pack %q declares %d resources, want 1", name, len(s.Resources))
		}
	}
	if _, err := Pack("bogus"); err == nil || !strings.Contains(err.Error(), `unknown spec pack "bogus"`) {
		t.Fatalf("Pack(bogus) = %v", err)
	}
}

// TestFormatFixpoint pins the canonical printer contract on every shipped
// pack: Format output reparses, and reformatting the reparse is
// byte-identical (parse∘print∘parse fixpoint).
func TestFormatFixpoint(t *testing.T) {
	for _, name := range PackNames() {
		s, _ := Pack(name)
		p1 := s.Format()
		s2, err := Parse(name+"-reparse", p1)
		if err != nil {
			t.Fatalf("pack %q: canonical form does not reparse: %v\n%s", name, err, p1)
		}
		if p2 := s2.Format(); p1 != p2 {
			t.Fatalf("pack %q: Format is not a fixpoint\n--- first:\n%s\n--- second:\n%s", name, p1, p2)
		}
	}
}

// TestFingerprintDistinguishesPacks: cache keys must differ across packs
// and be stable for the same pack.
func TestFingerprintDistinguishesPacks(t *testing.T) {
	seen := make(map[string]string)
	for _, name := range PackNames() {
		s, _ := Pack(name)
		fp := s.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("packs %q and %q share fingerprint %s", prev, name, fp)
		}
		seen[fp] = name
		s2, _ := Pack(name)
		if s2.Fingerprint() != fp {
			t.Fatalf("pack %q fingerprint is not stable", name)
		}
	}
}

func TestMergeStrictConflict(t *testing.T) {
	a := MustParse("a", `summary f(x) { entry { cons: true; changes: [x].held += 1; return: ; } }`)
	b := MustParse("b", `summary f(x) { entry { cons: true; changes: [x].held -= 1; return: ; } }`)
	merged := NewSpecs()
	if err := merged.MergeStrict(a); err != nil {
		t.Fatal(err)
	}
	err := merged.MergeStrict(b)
	if err == nil || err.Error() != `conflicting definitions of API "f"` {
		t.Fatalf("want conflict diagnostic, got %v", err)
	}
	// Identical redefinition is tolerated.
	if err := merged.MergeStrict(a); err != nil {
		t.Fatalf("identical redefinition rejected: %v", err)
	}
}

func TestMergeStrictResourceUnion(t *testing.T) {
	merged := NewSpecs()
	if err := merged.MergeStrict(LinuxDPM()); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeStrict(PythonC()); err != nil {
		t.Fatalf("same-kind resources must union, got %v", err)
	}
	fk := merged.FieldKinds()
	if fk["pm"] != "refcount" || fk["rc"] != "refcount" {
		t.Fatalf("FieldKinds after union: %v", fk)
	}
	bad := MustParse("bad", `resource refcount { fields: pm; balance: saturating; }`)
	if err := merged.MergeStrict(bad); err == nil || !strings.Contains(err.Error(), "conflicting balance") {
		t.Fatalf("balance conflict not surfaced: %v", err)
	}
}

func TestFieldKinds(t *testing.T) {
	lock, _ := Pack("lock")
	if fk := lock.FieldKinds(); fk["held"] != "lock" {
		t.Fatalf("lock FieldKinds: %v", fk)
	}
	fd, _ := Pack("fd")
	if fk := fd.FieldKinds(); fk["fd"] != "fd" {
		t.Fatalf("fd FieldKinds: %v", fk)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.spec")
	src := "resource lock { fields: held; balance: zero; }\n" +
		"summary grab(l) { entry { cons: true; changes: [l].held += 1; return: ; } }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.APIs["grab"] == nil || s.Resources["lock"] == nil {
		t.Fatalf("loaded specs incomplete: %v", s.Names())
	}

	if _, err := LoadFile(filepath.Join(dir, "nope.spec")); err == nil {
		t.Fatal("missing file must error")
	}

	bad := filepath.Join(dir, "bad.spec")
	if err := os.WriteFile(bad, []byte("summary f(x) {\n  entry { cons: true; changes: [x].held += q; return: ; }\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(bad)
	want := bad + `:2: expected integer delta, found "q"`
	if err == nil || err.Error() != want {
		t.Fatalf("malformed delta: got %v, want %s", err, want)
	}
}

func TestParseResourceErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`resource { fields: x; }`, "expected resource kind name"},
		{`resource lock { fields: ==; }`, "expected field name"},
		{`resource lock { wat: 1; }`, `unknown resource field "wat"`},
		{`summary 1bad() { entry { cons: true; changes: ; return: ; } }`, "expected function name"},
		{`summary f(==) { entry { cons: true; changes: ; return: ; } }`, "expected parameter name"},
	}
	for _, c := range cases {
		if _, err := Parse("t", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want %s", c.src, err, c.want)
		}
	}
}
