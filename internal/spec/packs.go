package spec

import "fmt"

// Shipped spec packs beyond the two refcount packs: the same path-pair
// discipline applied to lock acquire/release balance and to file-handle
// lifecycles. Each pack declares its resource kind so reports carry the
// right noun and caches key on the pack content.

// LockText is the DSL source for the lock-imbalance pack: spinlocks and
// mutexes with conditional-acquisition entries. A path pair that is
// caller-indistinguishable but differs in net [l].held is a
// missing-unlock (or double-unlock) bug.
const LockText = `
# Lock-imbalance pack: acquire/release balance on [l].held.
resource lock {
  fields: held;
  balance: zero;
}

summary spin_lock(l) {
  entry { cons: true; changes: [l].held += 1; return: ; }
}
summary spin_unlock(l) {
  entry { cons: true; changes: [l].held -= 1; return: ; }
}
# Conditional acquisition: returns 1 with the lock held, 0 without.
summary spin_trylock(l) {
  entry { cons: [0] == 1; changes: [l].held += 1; return: 1; }
  entry { cons: [0] == 0; changes: ; return: 0; }
}
summary mutex_lock(l) {
  entry { cons: true; changes: [l].held += 1; return: ; }
}
summary mutex_unlock(l) {
  entry { cons: true; changes: [l].held -= 1; return: ; }
}
summary mutex_trylock(l) {
  entry { cons: [0] == 1; changes: [l].held += 1; return: 1; }
  entry { cons: [0] == 0; changes: ; return: 0; }
}
# Interruptible acquisition: 0 with the lock held, -EINTR without.
summary mutex_lock_interruptible(l) {
  entry { cons: [0] == 0; changes: [l].held += 1; return: 0; }
  entry { cons: [0] == -4; changes: ; return: -4; }
}
`

// FDText is the DSL source for the fd-leak pack: open/dup/close plus
// ownership transfer on a successful send, tracked as [f].fd.
const FDText = `
# Fd-leak pack: handle lifecycle balance on [f].fd.
resource fd {
  fields: fd;
  balance: zero;
}

# Allocation-style APIs: two entries, success holds the handle.
summary fd_open(path) {
  attr newref;
  entry { cons: [0] != null; changes: [0].fd += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary fd_dup(f) {
  attr newref;
  entry { cons: [0] != null; changes: [0].fd += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
summary fd_close(f) {
  entry { cons: true; changes: [f].fd -= 1; return: ; }
}
summary fd_get(f) {
  entry { cons: true; changes: [f].fd += 1; return: ; }
}
summary fd_put(f) {
  entry { cons: true; changes: [f].fd -= 1; return: ; }
}
# On success the descriptor's ownership transfers to the receiver: the
# caller must NOT close it again. On failure the caller still owns it.
summary fd_send(sock, f) {
  entry { cons: [0] == 0; changes: [f].fd -= 1; return: 0; }
  entry { cons: [0] == -1; changes: ; return: -1; }
}
`

// Lock returns the parsed lock-imbalance pack.
func Lock() *Specs { return MustParse("lock", LockText) }

// FD returns the parsed fd-leak pack.
func FD() *Specs { return MustParse("fd", FDText) }

// PackNames lists the built-in spec packs in sorted order.
func PackNames() []string { return []string{"fd", "linux-dpm", "lock", "python-c"} }

// Pack resolves a built-in spec pack by name.
func Pack(name string) (*Specs, error) {
	switch name {
	case "linux-dpm":
		return LinuxDPM(), nil
	case "python-c":
		return PythonC(), nil
	case "lock":
		return Lock(), nil
	case "fd":
		return FD(), nil
	}
	return nil, fmt.Errorf("unknown spec pack %q (have fd, linux-dpm, lock, python-c)", name)
}
