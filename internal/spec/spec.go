// Package spec provides predefined function summaries — the refcount API
// specifications RID requires as its only input (§5.1). Specifications are
// written in a small text DSL mirroring the paper's (cons, changes, return)
// entry layout:
//
//	summary pm_runtime_get_sync(dev) {
//	  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
//	}
//	summary PyList_New(len) {
//	  attr newref;
//	  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
//	  entry { cons: [0] == null; changes:; return: null; }
//	}
//	summary PyList_SetItem(list, i, item) {
//	  attr steals(item);
//	  entry { cons: true; changes:; return: [0]; }
//	}
//
// Attributes do not affect RID itself; they carry the reference-escape
// metadata used by the Cpychecker-style baseline (internal/baseline/cpyrule).
package spec

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/ir"
	"repro/internal/summary"
	"repro/internal/sym"
)

// API couples a predefined summary with baseline metadata.
type API struct {
	Summary *summary.Summary
	Params  []string
	Steals  []int // parameter indices whose references are stolen
	NewRef  bool  // returns a new reference (allocation-style API)
}

// Resource declares a paired-resource kind tracked by a spec pack: the
// tracked field names (the f in [x].f delta keys) and the balance
// semantics. The canonical refcount packs declare kind "refcount"; other
// kinds (lock, fd) tag their reports with the kind name.
type Resource struct {
	Kind    string   // resource kind name ("refcount", "lock", "fd", ...)
	Fields  []string // field names whose deltas track this resource
	Balance string   // balance discipline; "zero" = acquire/release must net zero
}

// Specs is a set of predefined APIs plus the resource kinds they track.
type Specs struct {
	APIs      map[string]*API
	Resources map[string]*Resource
}

// NewSpecs returns an empty specification set.
func NewSpecs() *Specs {
	return &Specs{APIs: make(map[string]*API), Resources: make(map[string]*Resource)}
}

// Merge folds other into s (other wins on conflicts).
func (s *Specs) Merge(other *Specs) {
	for k, v := range other.APIs {
		s.APIs[k] = v
	}
	for k, v := range other.Resources {
		if s.Resources == nil {
			s.Resources = make(map[string]*Resource)
		}
		if old, ok := s.Resources[k]; ok {
			s.Resources[k] = unionResource(old, v)
		} else {
			s.Resources[k] = v
		}
	}
}

// unionResource combines two declarations of the same resource kind:
// field sets union (two packs can both track kind "refcount" through
// different fields); b wins on balance.
func unionResource(a, b *Resource) *Resource {
	seen := make(map[string]bool, len(a.Fields)+len(b.Fields))
	out := &Resource{Kind: a.Kind, Balance: b.Balance}
	if out.Balance == "" {
		out.Balance = a.Balance
	}
	for _, f := range append(append([]string(nil), a.Fields...), b.Fields...) {
		if !seen[f] {
			seen[f] = true
			out.Fields = append(out.Fields, f)
		}
	}
	sortStrings(out.Fields)
	return out
}

// MergeStrict folds other into s, rejecting conflicting redefinitions:
// an API or resource defined in both with a different canonical rendering
// is an error rather than a silent last-wins. Byte-identical
// redefinitions are tolerated (the same pack loaded twice is a no-op).
func (s *Specs) MergeStrict(other *Specs) error {
	for _, k := range other.Names() {
		v := other.APIs[k]
		if old, ok := s.APIs[k]; ok && formatAPI(k, old) != formatAPI(k, v) {
			return fmt.Errorf("conflicting definitions of API %q", k)
		}
		s.APIs[k] = v
	}
	for _, k := range sortedResourceNames(other.Resources) {
		v := other.Resources[k]
		if s.Resources == nil {
			s.Resources = make(map[string]*Resource)
		}
		if old, ok := s.Resources[k]; ok {
			ab, bb := old.Balance, v.Balance
			if ab == "" {
				ab = "zero"
			}
			if bb == "" {
				bb = "zero"
			}
			if ab != bb {
				return fmt.Errorf("conflicting balance disciplines for resource %q (%s vs %s)", k, ab, bb)
			}
			s.Resources[k] = unionResource(old, v)
		} else {
			s.Resources[k] = v
		}
	}
	return nil
}

// FieldKinds maps every declared resource field name to its resource
// kind, e.g. {"pm": "refcount", "held": "lock"}. Resources are visited
// in sorted kind order so a field claimed twice resolves deterministically.
func (s *Specs) FieldKinds() map[string]string {
	if len(s.Resources) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.Resources))
	for _, k := range sortedResourceNames(s.Resources) {
		for _, f := range s.Resources[k].Fields {
			out[f] = k
		}
	}
	return out
}

func sortedResourceNames(m map[string]*Resource) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// ApplyTo installs every predefined summary into db.
func (s *Specs) ApplyTo(db *summary.DB) {
	for _, a := range s.APIs {
		db.Put(a.Summary)
	}
}

// Names returns the API names in sorted order.
func (s *Specs) Names() []string {
	out := make([]string, 0, len(s.APIs))
	for k := range s.APIs {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// MustParse parses src and panics on error; for built-in specifications.
func MustParse(name, src string) *Specs {
	s, err := Parse(name, src)
	if err != nil {
		panic(fmt.Sprintf("builtin spec %s: %v", name, err))
	}
	return s
}

// Parse parses the DSL text; name is used in error messages.
func Parse(name, src string) (*Specs, error) {
	p := &specParser{name: name, src: src}
	p.next()
	specs := NewSpecs()
	for p.tok != "" {
		switch p.tok {
		case "summary":
			api, fnName, err := p.parseSummary()
			if err != nil {
				return nil, err
			}
			specs.APIs[fnName] = api
		case "resource":
			res, err := p.parseResource()
			if err != nil {
				return nil, err
			}
			specs.Resources[res.Kind] = res
		default:
			return nil, p.errorf("expected 'summary' or 'resource', found %q", p.tok)
		}
	}
	return specs, nil
}

// ---------------------------------------------------------------------------

type specParser struct {
	name string
	src  string
	off  int
	line int
	tok  string
}

func (p *specParser) errorf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, p.line+1, fmt.Sprintf(format, args...))
}

// next advances to the next token: identifiers, numbers (with optional
// leading '-'), and the punctuation/operators of the DSL.
func (p *specParser) next() {
	src := p.src
	for p.off < len(src) {
		c := src[p.off]
		if c == '\n' {
			p.line++
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.off++
			continue
		}
		if c == '#' {
			for p.off < len(src) && src[p.off] != '\n' {
				p.off++
			}
			continue
		}
		break
	}
	if p.off >= len(src) {
		p.tok = ""
		return
	}
	start := p.off
	c := src[p.off]
	switch {
	case c == '_' || unicode.IsLetter(rune(c)):
		for p.off < len(src) && (src[p.off] == '_' || unicode.IsLetter(rune(src[p.off])) || unicode.IsDigit(rune(src[p.off]))) {
			p.off++
		}
	case unicode.IsDigit(rune(c)):
		for p.off < len(src) && unicode.IsDigit(rune(src[p.off])) {
			p.off++
		}
	case c == '-' && p.off+1 < len(src) && unicode.IsDigit(rune(src[p.off+1])):
		p.off++
		for p.off < len(src) && unicode.IsDigit(rune(src[p.off])) {
			p.off++
		}
	default:
		// Multi-char operators first.
		for _, op := range []string{"+=", "-=", "==", "!=", "<=", ">=", "&&"} {
			if strings.HasPrefix(src[p.off:], op) {
				p.off += len(op)
				p.tok = op
				return
			}
		}
		p.off++
	}
	p.tok = src[start:p.off]
}

func (p *specParser) expect(tok string) error {
	if p.tok != tok {
		return p.errorf("expected %q, found %q", tok, p.tok)
	}
	p.next()
	return nil
}

// isIdent reports whether tok is a DSL identifier (function, parameter,
// field, or resource name). Keywords and punctuation are not identifiers;
// requiring this keeps parse∘print a fixpoint under fuzzing.
func isIdent(tok string) bool {
	if tok == "" {
		return false
	}
	for i, r := range tok {
		if r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// parseResource parses a resource-kind declaration:
//
//	resource lock {
//	  fields: held;
//	  balance: zero;
//	}
func (p *specParser) parseResource() (*Resource, error) {
	p.next() // 'resource'
	if !isIdent(p.tok) {
		return nil, p.errorf("expected resource kind name, found %q", p.tok)
	}
	res := &Resource{Kind: p.tok}
	p.next()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.tok != "}" && p.tok != "" {
		field := p.tok
		p.next()
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		switch field {
		case "fields":
			for p.tok != ";" && p.tok != "" {
				if !isIdent(p.tok) {
					return nil, p.errorf("expected field name, found %q", p.tok)
				}
				res.Fields = append(res.Fields, p.tok)
				p.next()
				if p.tok == "," {
					p.next()
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "balance":
			if !isIdent(p.tok) {
				return nil, p.errorf("expected balance discipline, found %q", p.tok)
			}
			res.Balance = p.tok
			p.next()
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unknown resource field %q", field)
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return res, nil
}

func (p *specParser) parseSummary() (*API, string, error) {
	p.next() // 'summary'
	fnName := p.tok
	if !isIdent(fnName) {
		return nil, "", p.errorf("expected function name, found %q", fnName)
	}
	p.next()
	if err := p.expect("("); err != nil {
		return nil, "", err
	}
	var params []string
	for p.tok != ")" && p.tok != "" {
		if !isIdent(p.tok) {
			return nil, "", p.errorf("expected parameter name, found %q", p.tok)
		}
		params = append(params, p.tok)
		p.next()
		if p.tok == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, "", err
	}
	if err := p.expect("{"); err != nil {
		return nil, "", err
	}
	api := &API{Summary: summary.New(fnName), Params: params}
	api.Summary.Predefined = true
	api.Summary.Params = params
	for p.tok != "}" && p.tok != "" {
		switch p.tok {
		case "entry":
			e, err := p.parseEntry(params)
			if err != nil {
				return nil, "", err
			}
			api.Summary.Entries = append(api.Summary.Entries, e)
		case "attr":
			if err := p.parseAttr(api, params); err != nil {
				return nil, "", err
			}
		default:
			return nil, "", p.errorf("expected 'entry' or 'attr', found %q", p.tok)
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, "", err
	}
	if len(api.Summary.Entries) == 0 {
		return nil, "", p.errorf("summary %s has no entries", fnName)
	}
	return api, fnName, nil
}

func (p *specParser) parseAttr(api *API, params []string) error {
	p.next() // 'attr'
	switch p.tok {
	case "newref":
		api.NewRef = true
		p.next()
	case "steals":
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		for p.tok != ")" && p.tok != "" {
			idx := -1
			for i, prm := range params {
				if prm == p.tok {
					idx = i
				}
			}
			if idx < 0 {
				return p.errorf("steals: unknown parameter %q", p.tok)
			}
			api.Steals = append(api.Steals, idx)
			p.next()
			if p.tok == "," {
				p.next()
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	default:
		return p.errorf("unknown attribute %q", p.tok)
	}
	return p.expect(";")
}

func (p *specParser) parseEntry(params []string) (*summary.Entry, error) {
	p.next() // 'entry'
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	e := summary.NewEntry(sym.True(), nil)
	for p.tok != "}" && p.tok != "" {
		field := p.tok
		p.next()
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		switch field {
		case "cons":
			if err := p.parseCons(e, params); err != nil {
				return nil, err
			}
		case "changes":
			if err := p.parseChanges(e, params); err != nil {
				return nil, err
			}
		case "return":
			if p.tok != ";" {
				ret, err := p.parseTerm(params)
				if err != nil {
					return nil, err
				}
				e.Ret = ret
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unknown entry field %q", field)
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *specParser) parseCons(e *summary.Entry, params []string) error {
	if p.tok == "true" {
		p.next()
		return p.expect(";")
	}
	for {
		a, err := p.parseTerm(params)
		if err != nil {
			return err
		}
		pred, ok := map[string]ir.Pred{
			"==": ir.EQ, "!=": ir.NE, "<": ir.LT, "<=": ir.LE, ">": ir.GT, ">=": ir.GE,
		}[p.tok]
		if !ok {
			return p.errorf("expected predicate, found %q", p.tok)
		}
		p.next()
		b, err := p.parseTerm(params)
		if err != nil {
			return err
		}
		e.Cons = e.Cons.And(sym.Cond(a, pred, b))
		if p.tok == "&&" {
			p.next()
			continue
		}
		break
	}
	return p.expect(";")
}

func (p *specParser) parseChanges(e *summary.Entry, params []string) error {
	for p.tok != ";" && p.tok != "" {
		rc, err := p.parseTerm(params)
		if err != nil {
			return err
		}
		op := p.tok
		if op != "+=" && op != "-=" {
			return p.errorf("expected += or -=, found %q", op)
		}
		p.next()
		n, err := strconv.Atoi(p.tok)
		if err != nil {
			return p.errorf("expected integer delta, found %q", p.tok)
		}
		p.next()
		if op == "-=" {
			n = -n
		}
		e.AddChange(rc, n)
		if p.tok == "," {
			p.next()
		}
	}
	return p.expect(";")
}

// parseTerm parses [name], [0], null, integers, and field chains on
// bracketed terms ([dev].pm, [0].rc).
func (p *specParser) parseTerm(params []string) (*sym.Expr, error) {
	var base *sym.Expr
	switch {
	case p.tok == "[":
		p.next()
		if p.tok == "0" {
			base = sym.Ret()
		} else {
			found := false
			for _, prm := range params {
				if prm == p.tok {
					found = true
				}
			}
			if !found {
				return nil, p.errorf("unknown parameter %q in term", p.tok)
			}
			base = sym.Arg(p.tok)
		}
		p.next()
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	case p.tok == "null":
		p.next()
		return sym.Null(), nil
	case p.tok == "true":
		p.next()
		return sym.BoolConst(true), nil
	case p.tok == "false":
		p.next()
		return sym.BoolConst(false), nil
	default:
		if n, err := strconv.ParseInt(p.tok, 10, 64); err == nil {
			p.next()
			return sym.Const(n), nil
		}
		return nil, p.errorf("expected term, found %q", p.tok)
	}
	for p.tok == "." {
		p.next()
		field := p.tok
		if !isIdent(field) {
			return nil, p.errorf("expected field name after '.', found %q", field)
		}
		base = sym.Field(base, field)
		p.next()
	}
	return base, nil
}
