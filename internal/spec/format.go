package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/sym"
)

// Format renders the specification set back into DSL source in a
// canonical form: resources first, then summaries, both in sorted name
// order, with constraint conjuncts and change lists sorted by term key.
// The output reparses to an equivalent set (Parse(Format(s)) then Format
// is a fixpoint), which makes Format the basis for both Fingerprint and
// the MergeStrict conflict check.
func (s *Specs) Format() string {
	var b strings.Builder
	for _, k := range sortedResourceNames(s.Resources) {
		b.WriteString(formatResource(s.Resources[k]))
	}
	for _, k := range s.Names() {
		b.WriteString(formatAPI(k, s.APIs[k]))
	}
	return b.String()
}

// Fingerprint returns a stable content digest of the specification set,
// suitable for keying summary caches: two Specs with the same canonical
// rendering share a fingerprint regardless of load order or source file.
func (s *Specs) Fingerprint() string {
	h := sha256.Sum256([]byte(s.Format()))
	return hex.EncodeToString(h[:])
}

func formatResource(r *Resource) string {
	var b strings.Builder
	b.WriteString("resource ")
	b.WriteString(r.Kind)
	b.WriteString(" {\n  fields:")
	fields := append([]string(nil), r.Fields...)
	sort.Strings(fields)
	for i, f := range fields {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(" ")
		b.WriteString(f)
	}
	b.WriteString(";\n  balance: ")
	if r.Balance == "" {
		b.WriteString("zero")
	} else {
		b.WriteString(r.Balance)
	}
	b.WriteString(";\n}\n")
	return b.String()
}

func formatAPI(name string, a *API) string {
	var b strings.Builder
	b.WriteString("summary ")
	b.WriteString(name)
	b.WriteString("(")
	b.WriteString(strings.Join(a.Params, ", "))
	b.WriteString(") {\n")
	if a.NewRef {
		b.WriteString("  attr newref;\n")
	}
	if len(a.Steals) > 0 {
		b.WriteString("  attr steals(")
		for i, idx := range a.Steals {
			if i > 0 {
				b.WriteString(", ")
			}
			if idx >= 0 && idx < len(a.Params) {
				b.WriteString(a.Params[idx])
			}
		}
		b.WriteString(");\n")
	}
	for _, e := range a.Summary.Entries {
		b.WriteString("  entry { cons: ")
		b.WriteString(formatCons(e.Cons))
		b.WriteString("; changes:")
		for i, c := range e.SortedChanges() {
			if i > 0 {
				b.WriteString(",")
			}
			if c.Delta >= 0 {
				fmt.Fprintf(&b, " %s += %d", c.RC.Key(), c.Delta)
			} else {
				fmt.Fprintf(&b, " %s -= %d", c.RC.Key(), -c.Delta)
			}
		}
		b.WriteString("; return:")
		if e.Ret != nil {
			b.WriteString(" ")
			b.WriteString(e.Ret.Key())
		}
		b.WriteString("; }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// formatCons renders a constraint set as a DSL conjunction, conjuncts
// sorted by canonical key so the rendering is independent of parse and
// interning order.
func formatCons(cons sym.Set) string {
	conds := cons.Conds()
	if len(conds) == 0 {
		return "true"
	}
	parts := make([]string, 0, len(conds))
	for _, c := range conds {
		if c.Kind == sym.KCond {
			parts = append(parts, c.A.Key()+" "+c.Pred.String()+" "+c.B.Key())
		} else {
			// Only a decided-false constant survives in a Set; render it
			// as a contradiction the parser folds back to false.
			parts = append(parts, "0 == 1")
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " && ")
}

// LoadFile parses one spec file from disk. The path is used as the error
// position prefix.
func LoadFile(path string) (*Specs, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, string(data))
}
