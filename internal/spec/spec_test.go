package spec

import (
	"strings"
	"testing"

	"repro/internal/summary"
	"repro/internal/sym"
)

func TestParseSimpleSummary(t *testing.T) {
	s, err := Parse("t", `
summary pm_get(dev) {
  entry { cons: true; changes: [dev].pm += 1; return: [0]; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	api := s.APIs["pm_get"]
	if api == nil {
		t.Fatal("pm_get missing")
	}
	if len(api.Params) != 1 || api.Params[0] != "dev" {
		t.Errorf("params: %v", api.Params)
	}
	e := api.Summary.Entries[0]
	if e.Cons.Len() != 0 {
		t.Errorf("cons: %s", e.Cons)
	}
	if c, ok := e.Changes["[dev].pm"]; !ok || c.Delta != 1 {
		t.Errorf("changes: %v", e.Changes)
	}
	if e.Ret.Kind != sym.KRet {
		t.Errorf("ret: %s", e.Ret)
	}
	if !api.Summary.Predefined {
		t.Error("predefined flag unset")
	}
}

func TestParseMultiEntryWithConstraints(t *testing.T) {
	s, err := Parse("t", `
summary alloc(n) {
  attr newref;
  entry { cons: [0] != null; changes: [0].rc += 1; return: [0]; }
  entry { cons: [0] == null; changes: ; return: null; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	api := s.APIs["alloc"]
	if !api.NewRef {
		t.Error("newref attribute lost")
	}
	if len(api.Summary.Entries) != 2 {
		t.Fatalf("entries: %d", len(api.Summary.Entries))
	}
	e0 := api.Summary.Entries[0]
	if e0.Cons.Len() != 1 {
		t.Errorf("entry 0 cons: %s", e0.Cons)
	}
	e1 := api.Summary.Entries[1]
	if e1.Ret.Kind != sym.KNull {
		t.Errorf("entry 1 ret: %s", e1.Ret)
	}
}

func TestParseStealsAttr(t *testing.T) {
	s, err := Parse("t", `
summary set_item(list, i, item) {
  attr steals(item);
  entry { cons: true; changes: ; return: [0]; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	api := s.APIs["set_item"]
	if len(api.Steals) != 1 || api.Steals[0] != 2 {
		t.Errorf("steals: %v", api.Steals)
	}
}

func TestParseConjunction(t *testing.T) {
	s, err := Parse("t", `
summary f(a, b) {
  entry { cons: [a] > 0 && [b] <= -1 && [0] == 0; changes: ; return: 0; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	e := s.APIs["f"].Summary.Entries[0]
	if e.Cons.Len() != 3 {
		t.Errorf("cons: %s", e.Cons)
	}
}

func TestParseMultipleChanges(t *testing.T) {
	s, err := Parse("t", `
summary set_err(type, value) {
  entry { cons: true; changes: [type].rc += 1, [value].rc += 1; return: ; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	e := s.APIs["set_err"].Summary.Entries[0]
	if len(e.Changes) != 2 {
		t.Errorf("changes: %v", e.Changes)
	}
	if e.Ret != nil {
		t.Errorf("void return: %v", e.Ret)
	}
}

func TestParseComments(t *testing.T) {
	_, err := Parse("t", `
# a comment
summary f(a) {
  # another
  entry { cons: true; changes: ; return: ; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`summary f() { }`, // no entries
		`summary f(a) { entry { cons: [b] > 0; changes:; return:; } }`, // unknown param
		`summary f(a) { entry { cons: maybe; changes:; return:; } }`,   // bad cons
		`summary f(a) { attr bogus; entry { cons: true; changes:; return:; } }`,
		`summary f(a) { attr steals(x); entry { cons: true; changes:; return:; } }`,
		`summary f(a) { entry { cons: true; changes: [a].rc *= 1; return:; } }`,
		`nonsense`,
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestBuiltinsParse(t *testing.T) {
	dpm := LinuxDPM()
	if len(dpm.APIs) < 7 {
		t.Errorf("DPM APIs: %d", len(dpm.APIs))
	}
	// Figure 7: get-side always increments.
	g := dpm.APIs["pm_runtime_get_sync"]
	e := g.Summary.Entries[0]
	if e.Cons.Len() != 0 || e.Changes["[dev].pm"].Delta != 1 {
		t.Errorf("pm_runtime_get_sync: %s", e)
	}
	pyc := PythonC()
	if len(pyc.APIs) < 15 {
		t.Errorf("Python/C APIs: %d", len(pyc.APIs))
	}
	// Steal attributes recorded for the escape-rule baseline.
	if len(pyc.APIs["PyList_SetItem"].Steals) != 1 {
		t.Error("PyList_SetItem steals lost")
	}
	if !pyc.APIs["PyList_New"].NewRef {
		t.Error("PyList_New newref lost")
	}
	// Py_XDECREF is conditional on its argument.
	xd := pyc.APIs["Py_XDECREF"]
	if len(xd.Summary.Entries) != 2 {
		t.Errorf("Py_XDECREF entries: %d", len(xd.Summary.Entries))
	}
}

func TestApplyToAndMerge(t *testing.T) {
	db := summary.NewDB()
	LinuxDPM().ApplyTo(db)
	if !db.Has("pm_runtime_put_sync") {
		t.Error("ApplyTo missed an API")
	}
	s := NewSpecs()
	s.Merge(LinuxDPM())
	s.Merge(PythonC())
	if len(s.Names()) != len(LinuxDPM().APIs)+len(PythonC().APIs) {
		t.Error("merge lost APIs")
	}
	names := s.Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("bad", "summary ???")
}

func TestSummaryRendering(t *testing.T) {
	got := LinuxDPM().APIs["pm_runtime_put"].Summary.String()
	if !strings.Contains(got, "[dev].pm:-1") {
		t.Errorf("rendering: %s", got)
	}
}
