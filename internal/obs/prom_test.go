package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/promtext"
)

// TestChildRollup: counts and observations against a child land in the
// child AND every ancestor, and the child's own reading is an exact
// per-request delta (starts at zero, unaffected by sibling activity).
func TestChildRollup(t *testing.T) {
	root := NewRegistry()
	root.Count(MSolverQueries, 10) // pre-existing process history

	a := root.Child()
	b := root.Child()
	a.Count(MSolverQueries, 3)
	a.Observe(PhaseExec, 2*time.Millisecond)
	b.Count(MSolverQueries, 4)

	if got := a.Counter(MSolverQueries); got != 3 {
		t.Fatalf("child a counter = %d, want exact delta 3", got)
	}
	if got := b.Counter(MSolverQueries); got != 4 {
		t.Fatalf("child b counter = %d, want exact delta 4", got)
	}
	if got := root.Counter(MSolverQueries); got != 17 {
		t.Fatalf("root counter = %d, want 10+3+4=17", got)
	}
	if got := root.Snapshot().Phase(PhaseExec).Count; got != 1 {
		t.Fatalf("root exec span count = %d, want rollup of 1", got)
	}

	// Grandchild: rollup is transitive.
	g := a.Child()
	g.Count(MIPPConfirmed, 1)
	if a.Counter(MIPPConfirmed) != 1 || root.Counter(MIPPConfirmed) != 1 {
		t.Fatalf("grandchild rollup: a=%d root=%d, want 1/1",
			a.Counter(MIPPConfirmed), root.Counter(MIPPConfirmed))
	}
	if g.Counter(MSolverQueries) != 0 {
		t.Fatal("fresh grandchild inherited ancestor counts")
	}
}

// TestChildRollupConcurrent hammers many children concurrently and
// checks the parent total is exact — the serve-path invariant that
// per-request registries never lose process-level events.
func TestChildRollupConcurrent(t *testing.T) {
	root := NewRegistry()
	const children, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < children; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child()
			for j := 0; j < per; j++ {
				c.Count(MTasksExecuted, 1)
				c.Observe(PhaseQueue, time.Microsecond)
			}
			if c.Counter(MTasksExecuted) != per {
				t.Errorf("child delta = %d, want %d", c.Counter(MTasksExecuted), per)
			}
		}()
	}
	wg.Wait()
	if got := root.Counter(MTasksExecuted); got != children*per {
		t.Fatalf("root total = %d, want %d", got, children*per)
	}
	if got := root.Snapshot().Phase(PhaseQueue).Count; got != children*per {
		t.Fatalf("root queue spans = %d, want %d", got, children*per)
	}
}

// TestObsWith: the derived observer swaps the tracer, keeps registry and
// query timing, and stays nil-safe.
func TestObsWith(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	base := New(nil, reg)
	base.EnableQueryTiming()

	tr := NewJSONLTracer(&buf)
	derived := base.With(tr)
	sp := derived.Start(PhaseExec, "fn_a")
	sp.End()
	if derived.Registry() != reg {
		t.Fatal("With dropped the registry")
	}
	if !derived.QueryTiming() {
		t.Fatal("With dropped query timing")
	}
	if !strings.Contains(buf.String(), `"phase":"exec"`) {
		t.Fatalf("derived tracer saw no span: %q", buf.String())
	}
	if reg.Snapshot().Phase(PhaseExec).Count != 1 {
		t.Fatal("derived span did not land in registry")
	}

	if base.With(nil).Registry() != reg {
		t.Fatal("With(nil) should keep registry, drop tracer only")
	}
	var nilObs *Obs
	if nilObs.With(nil) != nil {
		t.Fatal("nil.With(nil) should stay nil")
	}
	if got := nilObs.With(tr); got == nil || got.Registry() != nil {
		t.Fatal("nil.With(tracer) should yield tracer-only observer")
	}
}

// TestWritePrometheusRoundTrip renders a live registry and feeds the
// text back through the validating parser: every counter family present
// with the right value, phase histograms cumulative with +Inf == _count.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count(MSolverQueries, 41)
	r.Count(MIPPConfirmed, 2)
	r.Observe(PhaseExec, 3*time.Millisecond)
	r.Observe(PhaseExec, 70*time.Microsecond)
	r.Observe(PhaseSolver, 900*time.Nanosecond)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition rejected by own parser: %v\n%s", err, buf.String())
	}

	for m := Metric(0); m < numMetrics; m++ {
		name := "rid_" + m.Name() + "_total"
		v, ok := fams.Value(name, nil)
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		if int64(v) != r.Counter(m) {
			t.Fatalf("%s = %v, registry has %d", name, v, r.Counter(m))
		}
	}
	if fams["rid_solver_queries_total"].Type != "counter" {
		t.Fatalf("counter family typed %q", fams["rid_solver_queries_total"].Type)
	}
	if fams["rid_phase_duration_seconds"].Type != "histogram" {
		t.Fatal("phase family not a histogram")
	}
	for p := Phase(0); p < numPhases; p++ {
		lbl := map[string]string{"phase": p.String()}
		cnt, ok := fams.Value("rid_phase_duration_seconds_count", lbl)
		if !ok {
			t.Fatalf("phase %s missing _count", p)
		}
		if int64(cnt) != r.Snapshot().Phase(p).Count {
			t.Fatalf("phase %s count = %v, want %d", p, cnt, r.Snapshot().Phase(p).Count)
		}
	}
	// A 3ms observation must be inside the le=0.004194304 (2^22 ns)
	// bucket and outside le=0.002097152 (2^21 ns).
	v22, _ := fams.Value("rid_phase_duration_seconds_bucket", map[string]string{"phase": "exec", "le": "0.004194304"})
	v21, _ := fams.Value("rid_phase_duration_seconds_bucket", map[string]string{"phase": "exec", "le": "0.002097152"})
	if v22-v21 != 1 {
		t.Fatalf("3ms span not in the 2^22ns bucket: le22=%v le21=%v\n%s", v22, v21, buf.String())
	}
}

// le label values are formatted by promtext.formatValue ('g', precision
// -1) — pin one so the bucket-lookup idiom above can't silently drift.
func TestPromBucketLabelFormat(t *testing.T) {
	var buf bytes.Buffer
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	pw := promtext.NewWriter(&buf)
	pw.Family("x_seconds", "histogram", "t")
	h.AppendProm(pw, "x_seconds")
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `le="0.004194304"`) {
		t.Fatalf("bucket label format drifted:\n%s", buf.String())
	}
}

// TestHistogramStandalone: the exported wrapper counts, sums, and
// renders a parseable sub-series with labels.
func TestHistogramStandalone(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	if h.Count() != 2 || h.Sum() != 30*time.Millisecond {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q < 5*time.Millisecond || q > 40*time.Millisecond {
		t.Fatalf("p50 = %v, want within √2 of 10–20ms", q)
	}

	var buf bytes.Buffer
	pw := promtext.NewWriter(&buf)
	pw.Family("rid_serve_queue_wait_seconds", "histogram", "time from admit to start")
	h.AppendProm(pw, "rid_serve_queue_wait_seconds", promtext.Label{Name: "route", Value: "analyze"})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	v, ok := fams.Value("rid_serve_queue_wait_seconds_count", map[string]string{"route": "analyze"})
	if !ok || v != 2 {
		t.Fatalf("count = %v, %t", v, ok)
	}
	s, _ := fams.Value("rid_serve_queue_wait_seconds_sum", map[string]string{"route": "analyze"})
	if s < 0.029 || s > 0.031 {
		t.Fatalf("sum = %v, want ≈0.03", s)
	}
}

// TestChildHooksAllocFree: the request-scoped rollup must not buy its
// exactness with allocation — Count/Observe/Span against a child are as
// free as against the root. Creating the child itself is one small
// allocation per request, which is fine; the hooks on the hot path are
// not.
func TestChildHooksAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	root := NewRegistry()
	child := root.Child()
	o := New(nil, child)
	if got := testing.AllocsPerRun(200, func() {
		child.Count(MSolverQueries, 1)
		child.Observe(PhaseSolver, time.Microsecond)
		sp := o.Start(PhaseExec, "fn")
		sp.End()
	}); got != 0 {
		t.Fatalf("child hooks allocate %v/op, want 0", got)
	}
}
