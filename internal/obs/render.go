package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// writeSnapshotJSON renders s as one JSON object with fixed field order
// (struct order), shared by /debug/vars and `rid -metrics -format json`.
func writeSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// WriteJSON renders the snapshot as a single JSON object followed by a
// newline. Durations are integer nanoseconds.
func (s Snapshot) WriteJSON(w io.Writer) error {
	return writeSnapshotJSON(w, s)
}

// WriteText renders the snapshot in a stable human-readable layout: one
// `counter <name> <value>` line per metric in fixed order, then one
// `phase <name> count=N total=... p50=... p95=... max=...` line per phase.
// The line set and ordering are deterministic — goldens can compare the
// counter lines verbatim.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-18s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, p := range s.Phases {
		if _, err := fmt.Fprintf(w, "phase %-10s count=%d total=%s p50=%s p95=%s max=%s\n",
			p.Phase, p.Count,
			p.Total.Round(time.Microsecond),
			p.P50.Round(time.Microsecond),
			p.P95.Round(time.Microsecond),
			p.Max.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	for _, wk := range s.Workers {
		if _, err := fmt.Fprintf(w, "worker %-3d tasks=%d stolen=%d busy=%s\n",
			wk.Worker, wk.Tasks, wk.Stolen, wk.Busy.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
