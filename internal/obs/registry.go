package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Metric identifies one counter in the Registry. The set replaces the
// ad-hoc fields that used to feed core.Stats: every stage increments its
// counters at the event site, atomically, so totals are exact regardless
// of worker count or when a snapshot is taken.
type Metric uint8

// The counter taxonomy. Names (see Metric.Name) are the wire format of
// `rid -metrics` and /debug/vars and are append-only.
const (
	MFuncsAnalyzed    Metric = iota // functions summarized (Step II ran)
	MPathsEnumerated                // entry-to-exit paths produced by Step I
	MPathsTruncated                 // functions whose enumeration hit MaxPaths
	MSubcasesForked                 // states forked on callee summary entries
	MSummaryEntries                 // finalized per-path summary entries
	MSolverQueries                  // satisfiability queries issued
	MSolverCacheHits                // queries answered from the shared cache
	MSolverSat                      // SAT verdicts (give-ups included)
	MSolverUnsat                    // UNSAT verdicts
	MSolverGaveUp                   // queries over budget, answered SAT
	MIPPCandidates                  // Step III pairs that reached the solver
	MIPPConfirmed                   // inconsistent path pair reports emitted
	MReplayConfirmed                // reports whose witness replay confirmed the IPP
	MReplayDiverged                 // reports whose replay contradicted the static claim
	MReplayUnreplayed               // reports whose recorded paths were not reproduced
	MStoreHits                      // functions served from the persistent summary store
	MStoreMisses                    // functions analyzed cold (absent or stale store entry)
	MStoreEvictions                 // stale store entries replaced by a fresh write
	MTasksExecuted                  // path-level scheduler tasks executed (any worker)
	MTasksStolen                    // tasks executed by a worker other than the enqueuer
	MRemoteHits                     // functions served from the fleet summary store
	MRemoteMisses                   // fleet-store lookups that found no usable entry
	MRemoteErrors                   // fleet-store operations that failed (timeout, refusal, 5xx)
	MRemoteIntegrity                // fleet-store responses rejected by validation
	MRemotePuts                     // entries shipped to the fleet store (write-behind)
	numMetrics
)

var metricNames = [numMetrics]string{
	MFuncsAnalyzed:    "funcs_analyzed",
	MPathsEnumerated:  "paths_enumerated",
	MPathsTruncated:   "paths_truncated",
	MSubcasesForked:   "subcases_forked",
	MSummaryEntries:   "summary_entries",
	MSolverQueries:    "solver_queries",
	MSolverCacheHits:  "solver_cache_hits",
	MSolverSat:        "solver_sat",
	MSolverUnsat:      "solver_unsat",
	MSolverGaveUp:     "solver_gave_up",
	MIPPCandidates:    "ipp_candidates",
	MIPPConfirmed:     "ipp_confirmed",
	MReplayConfirmed:  "replay_confirmed",
	MReplayDiverged:   "replay_diverged",
	MReplayUnreplayed: "replay_unreplayed",
	MStoreHits:        "store_hits",
	MStoreMisses:      "store_misses",
	MStoreEvictions:   "store_evictions",
	MTasksExecuted:    "tasks_executed",
	MTasksStolen:      "tasks_stolen",
	MRemoteHits:       "remote_hits",
	MRemoteMisses:     "remote_misses",
	MRemoteErrors:     "remote_errors",
	MRemoteIntegrity:  "remote_integrity_errors",
	MRemotePuts:       "remote_puts",
}

// Name returns the stable metric name used in -metrics and /debug/vars.
func (m Metric) Name() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return "metric" + itoa(int(m))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// counter is a cache-line-padded atomic, so independent counters hammered
// by different workers never share a line (the counters themselves are
// single atomics: at pipeline rates — at most a few million increments per
// second — contention on one cache line is far below measurement noise,
// and padding keeps neighbors out of the blast radius).
type counter struct {
	v atomic.Int64
	_ [56]byte
}

// histBuckets is enough log2(ns) buckets to cover ~9 minutes per span.
const histBuckets = 40

// hist is a lock-free log-scale duration histogram.
type hist struct {
	count   atomic.Int64
	sum     atomic.Int64 // total ns
	max     atomic.Int64 // ns
	buckets [histBuckets]atomic.Int64
}

func (h *hist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
	i := bits.Len64(uint64(ns)) // 0 → bucket 0, [2^(k-1), 2^k) → bucket k
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// quantile returns an estimate of the q-quantile (0 < q ≤ 1) from the log
// buckets: the geometric midpoint of the bucket holding the q-th
// observation. Exact to within a factor of √2, which is plenty for "where
// did the time go" attribution.
func (h *hist) quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i <= 1 {
				return time.Duration(i) // 0 or 1 ns
			}
			lo := int64(1) << (i - 1)
			return time.Duration(lo + lo/2) // midpoint of [2^(i-1), 2^i)
		}
	}
	return time.Duration(h.max.Load())
}

// WorkerCounters is the utilization record of one scheduler worker:
// tasks executed, tasks stolen from another worker's deque, and total
// busy time. All fields are atomics so workers update without locks; the
// struct is padded so neighboring workers never share a cache line.
type WorkerCounters struct {
	tasks  atomic.Int64
	stolen atomic.Int64
	busyNS atomic.Int64
	_      [40]byte
}

// AddTask records one executed task: stolen marks cross-worker execution,
// d is the wall-clock the task occupied the worker.
func (w *WorkerCounters) AddTask(stolen bool, d time.Duration) {
	w.tasks.Add(1)
	if stolen {
		w.stolen.Add(1)
	}
	w.busyNS.Add(int64(d))
}

// AddBusy adds non-task scheduler work (function prepare/merge/check time
// spent by the driving worker) to the busy total.
func (w *WorkerCounters) AddBusy(d time.Duration) { w.busyNS.Add(int64(d)) }

// Registry is the shared metrics store: a fixed set of padded atomic
// counters plus one duration histogram per phase, and — once a parallel
// scheduler registers — one utilization record per worker. One Registry
// serves an entire run (all SCC and path workers) and may outlive it —
// cmd/rid keeps a single registry across -separate file groups, and
// ServeDebug exposes it live.
type Registry struct {
	counters [numMetrics]counter
	phases   [numPhases]hist

	// parent, when non-nil, receives a copy of every Count and Observe —
	// the request-scoped rollup `rid serve` uses (see Child).
	parent *Registry

	workersMu sync.Mutex
	workers   []*WorkerCounters
}

// Worker returns the utilization record for worker i, growing the table
// on first use. Safe for concurrent registration; the returned pointer is
// stable for the registry's lifetime.
func (r *Registry) Worker(i int) *WorkerCounters {
	r.workersMu.Lock()
	for len(r.workers) <= i {
		r.workers = append(r.workers, &WorkerCounters{})
	}
	w := r.workers[i]
	r.workersMu.Unlock()
	return w
}

// NumWorkers returns how many workers have registered utilization records.
func (r *Registry) NumWorkers() int {
	r.workersMu.Lock()
	defer r.workersMu.Unlock()
	return len(r.workers)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Child returns a fresh registry whose every Count and Observe also
// lands in r (and transitively in r's own parent): the request-scoped
// rollup seam. A serve request runs against a child, reads its own
// counters back as an exact per-request delta — the same mechanism that
// made Stats.Solver exact under Workers>1 — while the long-lived parent
// keeps aggregating across all requests. The rollup is lock-free: one
// extra atomic add per event, no shared state beyond the counters
// themselves.
func (r *Registry) Child() *Registry { return &Registry{parent: r} }

// Count adds d to metric m, and to every ancestor registry.
func (r *Registry) Count(m Metric, d int64) {
	for q := r; q != nil; q = q.parent {
		q.counters[m].v.Add(d)
	}
}

// Counter returns the current value of metric m.
func (r *Registry) Counter(m Metric) int64 {
	return r.counters[m].v.Load()
}

// CounterByName returns the value of the named counter (the -metrics
// wire names), or 0 for an unknown name. Callers outside the obs layer
// use it to read single counters without importing the Metric taxonomy.
func (r *Registry) CounterByName(name string) int64 {
	for m := Metric(0); m < numMetrics; m++ {
		if m.Name() == name {
			return r.Counter(m)
		}
	}
	return 0
}

// Observe records one completed span duration for phase ph, in r and in
// every ancestor registry.
func (r *Registry) Observe(ph Phase, d time.Duration) {
	for q := r; q != nil; q = q.parent {
		q.phases[ph].observe(int64(d))
	}
}

// ---------------------------------------------------------------------------
// Snapshots

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// PhaseStats summarizes one phase histogram.
type PhaseStats struct {
	Phase string        `json:"phase"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Max   time.Duration `json:"max_ns"`
}

// WorkerStats is one worker's utilization reading in a snapshot.
type WorkerStats struct {
	Worker int           `json:"worker"`
	Tasks  int64         `json:"tasks"`
	Stolen int64         `json:"stolen"`
	Busy   time.Duration `json:"busy_ns"`
}

// Snapshot is a point-in-time copy of the registry, in fixed metric and
// phase order (deterministic output shape regardless of activity).
// Workers is present only when a parallel scheduler registered
// utilization records, so single-worker output is unchanged.
type Snapshot struct {
	Counters []CounterValue `json:"counters"`
	Phases   []PhaseStats   `json:"phases"`
	Workers  []WorkerStats  `json:"workers,omitempty"`
}

// Snapshot copies the registry. Concurrent-safe; the copy is not atomic
// across counters (each counter individually is).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make([]CounterValue, numMetrics),
		Phases:   make([]PhaseStats, numPhases),
	}
	for m := Metric(0); m < numMetrics; m++ {
		s.Counters[m] = CounterValue{Name: m.Name(), Value: r.Counter(m)}
	}
	for p := Phase(0); p < numPhases; p++ {
		h := &r.phases[p]
		s.Phases[p] = PhaseStats{
			Phase: p.String(),
			Count: h.count.Load(),
			Total: time.Duration(h.sum.Load()),
			P50:   h.quantile(0.50),
			P95:   h.quantile(0.95),
			Max:   time.Duration(h.max.Load()),
		}
	}
	r.workersMu.Lock()
	for i, w := range r.workers {
		s.Workers = append(s.Workers, WorkerStats{
			Worker: i,
			Tasks:  w.tasks.Load(),
			Stolen: w.stolen.Load(),
			Busy:   time.Duration(w.busyNS.Load()),
		})
	}
	r.workersMu.Unlock()
	return s
}

// Phase returns the snapshot's stats for ph.
func (s Snapshot) Phase(ph Phase) PhaseStats {
	if int(ph) < len(s.Phases) {
		return s.Phases[ph]
	}
	return PhaseStats{Phase: ph.String()}
}

// Counter returns the snapshot's value for m.
func (s Snapshot) Counter(m Metric) int64 {
	if int(m) < len(s.Counters) {
		return s.Counters[m].Value
	}
	return 0
}
