package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilObsIsInert(t *testing.T) {
	var o *Obs
	o.Count(MSolverQueries, 1) // must not panic
	sp := o.Start(PhaseExec, "f")
	sp.End()
	o.StartQuery("f").End()
	if o.QueryTiming() {
		t.Fatal("nil observer must not time queries")
	}
	if o.Registry() != nil {
		t.Fatal("nil observer has no registry")
	}
}

func TestRegistryCountersAndHistogram(t *testing.T) {
	r := NewRegistry()
	o := New(nil, r)
	o.Count(MPathsEnumerated, 7)
	o.Count(MPathsEnumerated, 3)
	if got := r.Counter(MPathsEnumerated); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, time.Millisecond} {
		r.Observe(PhaseExec, d)
	}
	s := r.Snapshot()
	ph := s.Phase(PhaseExec)
	if ph.Count != 3 {
		t.Fatalf("phase count = %d, want 3", ph.Count)
	}
	if ph.Max != time.Millisecond {
		t.Fatalf("phase max = %v, want 1ms", ph.Max)
	}
	if ph.Total != time.Millisecond+3*time.Microsecond {
		t.Fatalf("phase total = %v", ph.Total)
	}
	// p50 must land within a factor of √2 of 2µs (log-bucket estimate).
	if ph.P50 < time.Microsecond || ph.P50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈2µs", ph.P50)
	}
	if ph.P95 < 512*time.Microsecond || ph.P95 > 2*time.Millisecond {
		t.Fatalf("p95 = %v, want ≈1ms", ph.P95)
	}
}

func TestRegistryConcurrentExactness(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Count(MSolverQueries, 1)
				r.Observe(PhaseSolver, time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(MSolverQueries); got != workers*perWorker {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Snapshot().Phase(PhaseSolver).Count; got != workers*perWorker {
		t.Fatalf("concurrent histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotShapeIsStable(t *testing.T) {
	s := NewRegistry().Snapshot()
	if len(s.Counters) != int(numMetrics) || len(s.Phases) != NumPhases {
		t.Fatalf("snapshot shape %d/%d", len(s.Counters), len(s.Phases))
	}
	seen := map[string]bool{}
	for _, c := range s.Counters {
		if c.Name == "" || seen[c.Name] {
			t.Fatalf("bad counter name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestJSONLTracerSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	start := time.Unix(1738000000, 0)
	tr.Span(PhaseClassify, "", start, 3*time.Millisecond)
	tr.Span(PhaseExec, `we"ird`, start.Add(time.Second), 41*time.Microsecond)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	type span struct {
		Seq     int64  `json:"seq"`
		Phase   string `json:"phase"`
		Fn      string `json:"fn"`
		StartUS int64  `json:"start_us"`
		DurUS   int64  `json:"dur_us"`
	}
	var s0, s1 span
	if err := json.Unmarshal([]byte(lines[0]), &s0); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &s1); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if s0.Seq != 1 || s1.Seq != 2 {
		t.Fatalf("seq = %d,%d", s0.Seq, s1.Seq)
	}
	if s0.Phase != "classify" || s1.Phase != "exec" {
		t.Fatalf("phases = %q,%q", s0.Phase, s1.Phase)
	}
	if s1.Fn != `we"ird` {
		t.Fatalf("fn roundtrip = %q", s1.Fn)
	}
	if s0.StartUS != start.UnixMicro() || s0.DurUS != 3000 {
		t.Fatalf("times = %d,%d", s0.StartUS, s0.DurUS)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, fmt.Errorf("disk full")
}

func TestJSONLTracerStopsAfterError(t *testing.T) {
	fw := &failWriter{}
	tr := NewJSONLTracer(fw)
	tr.Span(PhaseExec, "a", time.Now(), 1)
	tr.Span(PhaseExec, "b", time.Now(), 1)
	if tr.Err() == nil {
		t.Fatal("want retained error")
	}
	if fw.n != 1 {
		t.Fatalf("writes after error = %d, want 1", fw.n)
	}
}

// TestHookAllocations is the alloc guard for the hot-path hooks: the nil
// observer, the counters-only observer, and the counters+histogram span
// path must all be allocation-free. (The symexec-level guard lives in
// internal/core, where a whole function analysis is measured.)
func TestHookAllocations(t *testing.T) {
	var nilObs *Obs
	if n := testing.AllocsPerRun(200, func() {
		nilObs.Count(MSolverQueries, 1)
		sp := nilObs.Start(PhaseExec, "f")
		sp.End()
		nilObs.StartQuery("f").End()
	}); n != 0 {
		t.Fatalf("nil observer hooks allocate %v/op, want 0", n)
	}
	o := New(nil, NewRegistry())
	if n := testing.AllocsPerRun(200, func() {
		o.Count(MSolverQueries, 1)
		sp := o.Start(PhaseExec, "f")
		sp.End()
	}); n != 0 {
		t.Fatalf("registry observer hooks allocate %v/op, want 0", n)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Count(MSolverQueries, 5)
	stop, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, vars)
	}
	if _, ok := decoded["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}
	var snap Snapshot
	if err := json.Unmarshal(decoded["rid_metrics"], &snap); err != nil {
		t.Fatalf("rid_metrics: %v", err)
	}
	if snap.Counter(MSolverQueries) != 5 {
		t.Fatalf("rid_metrics solver_queries = %d, want 5", snap.Counter(MSolverQueries))
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}

func TestSnapshotRenderers(t *testing.T) {
	r := NewRegistry()
	r.Count(MIPPConfirmed, 2)
	r.Observe(PhaseClassify, 5*time.Microsecond)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "counter ipp_confirmed") ||
		!strings.Contains(text.String(), "phase classify") {
		t.Fatalf("text:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter(MIPPConfirmed) != 2 {
		t.Fatalf("json roundtrip counter = %d", back.Counter(MIPPConfirmed))
	}
}
