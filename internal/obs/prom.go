// Prometheus text exposition of the metrics registry: every counter as a
// `rid_<name>_total` family and every phase histogram as one labeled
// `rid_phase_duration_seconds` series with cumulative log2-ns buckets —
// the `GET /metrics` surface of `rid serve`, rendered with the same
// hand-rolled discipline as render.go and validated by
// internal/obs/promtext.
package obs

import (
	"io"
	"math"
	"time"

	"repro/internal/obs/promtext"
)

// counterHelp is the HELP line per counter family, indexed by Metric.
var counterHelp = [numMetrics]string{
	MFuncsAnalyzed:    "functions summarized (Step II ran)",
	MPathsEnumerated:  "entry-to-exit paths produced by Step I",
	MPathsTruncated:   "functions whose enumeration hit MaxPaths",
	MSubcasesForked:   "states forked on callee summary entries",
	MSummaryEntries:   "finalized per-path summary entries",
	MSolverQueries:    "satisfiability queries issued",
	MSolverCacheHits:  "queries answered from the shared cache",
	MSolverSat:        "SAT verdicts (give-ups included)",
	MSolverUnsat:      "UNSAT verdicts",
	MSolverGaveUp:     "queries over budget, answered SAT",
	MIPPCandidates:    "Step III pairs that reached the solver",
	MIPPConfirmed:     "inconsistent path pair reports emitted",
	MReplayConfirmed:  "reports whose witness replay confirmed the IPP",
	MReplayDiverged:   "reports whose replay contradicted the static claim",
	MReplayUnreplayed: "reports whose recorded paths were not reproduced",
	MStoreHits:        "functions served from the persistent summary store",
	MStoreMisses:      "functions analyzed cold",
	MStoreEvictions:   "stale store entries replaced by a fresh write",
	MTasksExecuted:    "path-level scheduler tasks executed",
	MTasksStolen:      "tasks executed by a worker other than the enqueuer",
	MRemoteHits:       "functions served from the fleet summary store",
	MRemoteMisses:     "fleet-store lookups that found no usable entry",
	MRemoteErrors:     "fleet-store operations that failed",
	MRemoteIntegrity:  "fleet-store responses rejected by validation",
	MRemotePuts:       "entries shipped to the fleet store",
}

// promBucketBounds returns the histogram upper bounds in seconds: bucket
// k of a log2-ns hist holds durations in [2^(k-1), 2^k) ns, so 2^k ns is
// an inclusive upper bound for everything in buckets 0..k. The last
// bucket is the overflow clamp and folds into +Inf.
func promBucketBounds() []float64 {
	out := make([]float64, histBuckets-1)
	for i := range out {
		out[i] = math.Ldexp(1, i) / 1e9
	}
	return out
}

// appendHistProm emits one histogram sub-series from a live hist.
// Reads are not atomic across buckets; to keep the emitted series
// internally consistent under concurrent observes (cumulative buckets,
// +Inf == _count — what promtext validates and scrapers reject
// otherwise), the bucket counts are read once and _count is derived from
// their sum rather than read separately.
func appendHistProm(pw *promtext.Writer, name string, labels []promtext.Label, h *hist) {
	var raw [histBuckets]int64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
	}
	sumNS := h.sum.Load()
	counts := make([]int64, histBuckets-1)
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += raw[i]
		counts[i] = cum
	}
	total := cum + raw[histBuckets-1]
	pw.Histogram(name, labels, promBucketBounds(), counts, float64(sumNS)/1e9, total)
}

// AppendPrometheus appends the registry's families to an exposition in
// progress: one rid_<counter>_total family per counter in fixed order,
// then rid_phase_duration_seconds with one sub-series per phase. The
// family set and order are deterministic regardless of activity.
func AppendPrometheus(pw *promtext.Writer, r *Registry) {
	for m := Metric(0); m < numMetrics; m++ {
		name := "rid_" + m.Name() + "_total"
		pw.Family(name, "counter", counterHelp[m])
		pw.Int(name, nil, r.Counter(m))
	}
	const phName = "rid_phase_duration_seconds"
	pw.Family(phName, "histogram", "wall-clock per completed pipeline span, by phase")
	for p := Phase(0); p < numPhases; p++ {
		appendHistProm(pw, phName, []promtext.Label{{Name: "phase", Value: p.String()}}, &r.phases[p])
	}
}

// WritePrometheus renders the registry as a complete Prometheus text
// format v0.0.4 document.
func WritePrometheus(w io.Writer, r *Registry) error {
	pw := promtext.NewWriter(w)
	AppendPrometheus(pw, r)
	return pw.Flush()
}

// Histogram is a standalone lock-free log2-ns duration histogram for
// callers outside the phase taxonomy — `rid serve` keeps queue-wait and
// request-duration histograms and exposes them on /metrics next to the
// registry's phase series.
type Histogram struct{ h hist }

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Allocation-free and safe for concurrent
// use.
func (h *Histogram) Observe(d time.Duration) { h.h.observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.h.sum.Load()) }

// Quantile estimates the q-quantile (exact to within a factor of √2).
func (h *Histogram) Quantile(q float64) time.Duration { return h.h.quantile(q) }

// AppendProm emits the histogram as one Prometheus sub-series.
func (h *Histogram) AppendProm(pw *promtext.Writer, name string, labels ...promtext.Label) {
	appendHistProm(pw, name, labels, &h.h)
}
