//go:build race

package obs

// raceEnabled reports whether this test binary was built with the race
// detector: allocation-accounting tests skip under it, since the runtime
// instruments allocations the production build never makes.
const raceEnabled = true
