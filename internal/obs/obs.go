// Package obs is the observability layer of the pipeline: phase tracing
// with per-function labels, and an atomic registry of counters and
// wall-clock histograms that feeds core.Stats, `rid -metrics`, and the
// /debug/vars endpoint. It is zero-dependency (stdlib only) and sits at
// the bottom of the import graph so every stage — solver, cfg, symexec,
// ipp, core — can hook into it.
//
// The design goal is that the *absent* observer costs nothing: every hook
// is nil-safe on *Obs, spans are stack values (no allocation), and the
// default pipeline configuration (counters on, no tracer, no per-query
// timing) adds only a handful of atomic adds per function analyzed. See
// DESIGN.md ("Observability") for the span taxonomy and overhead budget.
package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Phase identifies one stage of the analysis pipeline. Span events and
// duration histograms are keyed by phase.
type Phase uint8

// The span taxonomy. PhaseRun covers a whole Analyze call; the others are
// per-function (fn label set) except PhaseClassify, which is per-run, and
// PhaseSolver, which is per-query (emitted only when query timing is on).
const (
	PhaseRun       Phase = iota // one whole Analyze call
	PhaseClassify               // §5.2 two-phase classification
	PhaseEnumerate              // Step I path enumeration
	PhaseExec                   // Step II symbolic execution
	PhaseIPP                    // Step III pairwise consistency check
	PhaseSolver                 // one satisfiability query
	PhaseReplay                 // one witness replay of a reported IPP
	PhaseCacheIO                // one persistent summary-store operation (digest/load/save)
	PhaseSteal                  // one successful steal: time spent hunting before acquiring a task
	PhaseQueue                  // one task's wait from enqueue to execution start
	numPhases
)

var phaseNames = [numPhases]string{
	PhaseRun:       "run",
	PhaseClassify:  "classify",
	PhaseEnumerate: "enumerate",
	PhaseExec:      "exec",
	PhaseIPP:       "ipp",
	PhaseSolver:    "solver",
	PhaseReplay:    "replay",
	PhaseCacheIO:   "cacheio",
	PhaseSteal:     "steal",
	PhaseQueue:     "queue",
}

// String names the phase as it appears in trace and metrics output.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase" + strconv.Itoa(int(p))
}

// NumPhases is the number of defined phases (for iteration in renderers).
const NumPhases = int(numPhases)

// Tracer receives one event per completed span. Implementations must be
// safe for concurrent use: SCC workers and path workers emit concurrently.
type Tracer interface {
	Span(ph Phase, fn string, start time.Time, dur time.Duration)
}

// Obs bundles an optional Tracer with an optional Registry. All methods
// are nil-receiver-safe, so pipeline code threads a possibly-nil *Obs and
// calls hooks unconditionally; the nil observer compiles down to a
// pointer test.
type Obs struct {
	tracer      Tracer
	reg         *Registry
	queryTiming bool
}

// New returns an observer emitting spans to t (may be nil) and counting
// into r (may be nil). A nil Obs — or New(nil, nil) — observes nothing.
func New(t Tracer, r *Registry) *Obs {
	return &Obs{tracer: t, reg: r}
}

// EnableQueryTiming turns on per-solver-query duration measurement (the
// PhaseSolver histogram and, with a tracer, per-query spans). Off by
// default: individual queries can be sub-microsecond, where even two
// time.Now calls are measurable.
func (o *Obs) EnableQueryTiming() {
	if o != nil {
		o.queryTiming = true
	}
}

// QueryTiming reports whether solver queries should be individually timed:
// explicitly enabled, or implied by an attached tracer.
func (o *Obs) QueryTiming() bool {
	return o != nil && (o.queryTiming || o.tracer != nil)
}

// Registry returns the attached registry, or nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// With returns a derived observer emitting spans to t instead of o's
// tracer, counting into the same registry with the same query-timing
// setting. It is the request-scoped tracer seam: `rid serve` attaches a
// per-request buffer tracer for tail-sampled slow-request capture
// without touching the process-wide observer. With(nil) detaches the
// tracer; a nil receiver yields a tracer-only observer.
func (o *Obs) With(t Tracer) *Obs {
	if o == nil {
		if t == nil {
			return nil
		}
		return &Obs{tracer: t}
	}
	return &Obs{tracer: t, reg: o.reg, queryTiming: o.queryTiming}
}

// Seqer is implemented by tracers that expose a strictly-increasing event
// sequence number (JSONLTracer does). Provenance capture uses it to
// cross-link solver queries in Evidence records to trace lines.
type Seqer interface {
	Seq() int64
}

// TraceSeq returns the attached tracer's current sequence number — the seq
// of the most recently emitted span — or 0 when no tracer is attached or
// the tracer does not number its events. Under concurrent workers the
// returned value is a lower bound on the seq of the next span, which is
// enough to locate the relevant window of a JSONL trace.
func (o *Obs) TraceSeq() int64 {
	if o == nil || o.tracer == nil {
		return 0
	}
	if s, ok := o.tracer.(Seqer); ok {
		return s.Seq()
	}
	return 0
}

// EnsureRegistry returns o if it already carries a registry, or a derived
// observer (same tracer and query-timing setting) backed by a fresh one.
// core calls this so Stats.Solver can always be read back from registry
// deltas, whether or not the caller asked to observe anything.
func (o *Obs) EnsureRegistry() *Obs {
	if o != nil && o.reg != nil {
		return o
	}
	n := &Obs{reg: NewRegistry()}
	if o != nil {
		n.tracer = o.tracer
		n.queryTiming = o.queryTiming
	}
	return n
}

// Count adds d to metric m. No-op without a registry.
func (o *Obs) Count(m Metric, d int64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.Count(m, d)
}

// Span is an in-flight measurement. It is a stack value: starting and
// ending a span never allocates, and the zero Span (from a nil observer)
// ends as a no-op.
type Span struct {
	o  *Obs
	ph Phase
	fn string
	t0 time.Time
}

// Start opens a span for phase ph attributed to function fn (empty for
// run-level phases). Returns the zero Span when nothing observes.
func (o *Obs) Start(ph Phase, fn string) Span {
	if o == nil || (o.tracer == nil && o.reg == nil) {
		return Span{}
	}
	return Span{o: o, ph: ph, fn: fn, t0: time.Now()}
}

// StartQuery is Start for PhaseSolver, gated on QueryTiming.
func (o *Obs) StartQuery(fn string) Span {
	if !o.QueryTiming() {
		return Span{}
	}
	return Span{o: o, ph: PhaseSolver, fn: fn, t0: time.Now()}
}

// End closes the span: the duration lands in the phase histogram and, with
// a tracer attached, one span event is emitted.
func (s Span) End() {
	if s.o == nil {
		return
	}
	d := time.Since(s.t0)
	if s.o.reg != nil {
		s.o.reg.Observe(s.ph, d)
	}
	if s.o.tracer != nil {
		s.o.tracer.Span(s.ph, s.fn, s.t0, d)
	}
}

// ---------------------------------------------------------------------------
// JSONL tracer

// JSONLTracer writes one JSON object per span, newline-delimited, with a
// fixed key order — the `rid -trace` format:
//
//	{"seq":3,"phase":"exec","fn":"drv_op","start_us":1738000000000000,"dur_us":412}
//
// seq is a global emission index (strictly increasing in file order),
// start_us the span's wall-clock start in Unix microseconds, dur_us its
// duration in microseconds. The schema is append-only: consumers must
// tolerate new keys, and existing keys never change meaning or type.
type JSONLTracer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
	buf []byte
}

// NewJSONLTracer returns a tracer writing to w. Writes are serialized; the
// first write error is retained (see Err) and later spans are dropped.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: w}
}

// Span implements Tracer.
func (t *JSONLTracer) Span(ph Phase, fn string, start time.Time, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"phase":"`...)
	b = append(b, ph.String()...)
	b = append(b, `","fn":`...)
	b = strconv.AppendQuote(b, fn)
	b = append(b, `,"start_us":`...)
	b = strconv.AppendInt(b, start.UnixMicro(), 10)
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, dur.Microseconds(), 10)
	b = append(b, '}', '\n')
	t.buf = b
	_, t.err = t.w.Write(b)
}

// Err returns the first write error encountered, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Seq returns the sequence number of the most recently emitted span (0
// before the first span). It implements Seqer for Evidence cross-linking.
func (t *JSONLTracer) Seq() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
