package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeStopIsGraceful pins the shutdown contract of Serve's stop
// function: a request in flight when stop is called — here a
// /debug/pprof/trace capture, whose handler runs for the full ?seconds=
// window before writing its body — must complete with a full 200
// response, not be cut mid-request by an abrupt close.
func TestServeStopIsGraceful(t *testing.T) {
	stop, addr, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// Raw TCP so the request is observably in flight: the handler holds
	// the response until the 1-second capture ends, and the connection is
	// "active" to the server the moment the request line is consumed.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /debug/pprof/trace?seconds=1 HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", addr)
	// Give the server time to read the request and enter the handler.
	time.Sleep(200 * time.Millisecond)
	t0 := time.Now()
	if err := stop(); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if waited := time.Since(t0); waited < 500*time.Millisecond {
		t.Fatalf("stop returned after %v, before the in-flight request drained", waited)
	}
	resp, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("in-flight request was severed by stop: %v", err)
	}
	if !strings.HasPrefix(string(resp), "HTTP/1.1 200") {
		t.Fatalf("in-flight response: %.120q", resp)
	}
	// New connections must now be refused.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("listener still accepting connections after stop")
	}
}

// TestDebugMuxMountable pins that DebugMux serves full /debug/... paths so
// an embedding server can mount it under its own routing.
func TestDebugMuxMountable(t *testing.T) {
	outer := http.NewServeMux()
	outer.Handle("/debug/", DebugMux(NewRegistry()))
	req, _ := http.NewRequest("GET", "/debug/vars", nil)
	rec := newRecorder()
	outer.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("GET /debug/vars via embedded mux: status %d", rec.status)
	}
	if !strings.Contains(rec.body.String(), "rid_metrics") {
		t.Fatalf("vars body missing rid_metrics: %s", rec.body.String())
	}
}

// recorder is a minimal ResponseWriter (avoids importing httptest here).
type recorder struct {
	status int
	header http.Header
	body   strings.Builder
}

func newRecorder() *recorder { return &recorder{status: http.StatusOK, header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
