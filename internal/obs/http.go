package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts an HTTP server on addr (e.g. "localhost:6060"; port 0 picks
// a free one) exposing the standard live-profiling surface for long
// analysis runs:
//
//	/debug/pprof/          net/http/pprof index (profile, heap, trace, ...)
//	/debug/vars            expvar globals plus "rid_metrics": the registry
//
// It returns a stop function closing the server, and the bound address
// (useful with port 0). The registry may be nil, in which case only the
// process-level vars are served. Serve never touches the default mux, so
// embedding applications keep their own handlers.
func Serve(addr string, r *Registry) (stop func() error, actual string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", varsHandler(r))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Close below returns ErrServerClosed here
	return srv.Close, ln.Addr().String(), nil
}

// varsHandler renders the expvar globals (memstats, cmdline, anything the
// process published) plus the registry snapshot under "rid_metrics", in
// the same JSON-object shape as expvar.Handler.
func varsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if r != nil {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			fmt.Fprintf(w, "%q: ", "rid_metrics")
			writeSnapshotJSON(w, r.Snapshot())
		}
		fmt.Fprintf(w, "\n}\n")
	})
}
