package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// shutdownGrace bounds how long a stop call waits for in-flight debug
// requests (a streaming /debug/pprof/profile, a trace download) to finish
// before the server is torn down hard. Profile streams self-terminate —
// their duration is client-chosen via ?seconds= — so the grace period only
// matters for a client that stalls mid-read.
const shutdownGrace = 10 * time.Second

// DebugMux returns a mux exposing the standard live-debugging surface:
//
//	/debug/pprof/          net/http/pprof index (profile, heap, trace, ...)
//	/debug/vars            expvar globals plus "rid_metrics": the registry
//
// The registry may be nil, in which case only the process-level vars are
// served. The mux is self-contained (it never touches http.DefaultServeMux)
// and is what Serve listens on; embedding servers — `rid serve` mounts it
// under /debug/ — compose it into their own routing instead.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", varsHandler(r))
	return mux
}

// Serve starts an HTTP server on addr (e.g. "localhost:6060"; port 0 picks
// a free one) exposing DebugMux for long analysis runs. It returns a stop
// function and the bound address (useful with port 0).
//
// stop shuts the server down gracefully: the listener closes immediately
// (no new connections), but in-flight requests — notably a streaming
// /debug/pprof/profile — get up to shutdownGrace to complete before being
// cut. It returns nil on a clean drain and the shutdown error otherwise.
func Serve(addr string, r *Registry) (stop func() error, actual string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln) //nolint:errcheck // Shutdown below returns ErrServerClosed here
	stop = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Grace period exhausted: sever whatever is still streaming.
			srv.Close() //nolint:errcheck // the Shutdown error is the one to report
			return err
		}
		return nil
	}
	return stop, ln.Addr().String(), nil
}

// varsHandler renders the expvar globals (memstats, cmdline, anything the
// process published) plus the registry snapshot under "rid_metrics", in
// the same JSON-object shape as expvar.Handler.
func varsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if r != nil {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			fmt.Fprintf(w, "%q: ", "rid_metrics")
			writeSnapshotJSON(w, r.Snapshot())
		}
		fmt.Fprintf(w, "\n}\n")
	})
}
