// Package promtext emits and validates the Prometheus text exposition
// format, version 0.0.4 — the `GET /metrics` wire format of `rid serve`.
// It is stdlib-only and deliberately hand-rolled, like the JSONL tracer
// and the report renderers: the format is simple, the dependency is not.
//
// The package has two halves that are each other's contract:
//
//   - Writer emits metric families (counter, gauge, histogram) with
//     escaped help text and labels, cumulative histogram buckets, and a
//     terminal +Inf bucket.
//   - Parse reads an exposition back, validating everything a scraper
//     would reject: malformed names and labels, samples without a TYPE,
//     histogram buckets that are missing +Inf or not cumulative,
//     duplicate series, non-numeric values.
//
// `rid serve -check-metrics` round-trips the server's own output through
// Parse, so the emitted format can never drift silently from what the
// parser (and any real Prometheus scraper) accepts.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// Writer emits one exposition document. Methods keep the first write
// error and turn later calls into no-ops; check Err once at the end.
type Writer struct {
	w    *bufio.Writer
	err  error
	buck []byte // scratch for bucket lines
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 16<<10)}
}

// Family begins a metric family: one # HELP and one # TYPE line. typ is
// "counter", "gauge" or "histogram".
func (p *Writer) Family(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line for name with the given labels.
func (p *Writer) Sample(name string, labels []Label, value float64) {
	if p.err != nil {
		return
	}
	if _, p.err = p.w.WriteString(name); p.err != nil {
		return
	}
	p.writeLabels(labels, "", 0)
	_, p.err = fmt.Fprintf(p.w, " %s\n", formatValue(value))
}

// Int is Sample for integer-valued series (counters, gauges).
func (p *Writer) Int(name string, labels []Label, value int64) {
	if p.err != nil {
		return
	}
	if _, p.err = p.w.WriteString(name); p.err != nil {
		return
	}
	p.writeLabels(labels, "", 0)
	_, p.err = fmt.Fprintf(p.w, " %d\n", value)
}

// Histogram emits one histogram series: cumulative _bucket lines for
// each upper bound in uppers (seconds) with the matching cumulative
// counts, a terminal +Inf bucket, then _sum (seconds) and _count.
// counts[i] is the cumulative observation count with value <= uppers[i];
// total is the overall observation count (the +Inf bucket and _count).
func (p *Writer) Histogram(name string, labels []Label, uppers []float64, counts []int64, sum float64, total int64) {
	if p.err == nil && len(uppers) != len(counts) {
		p.err = fmt.Errorf("promtext: histogram %s: %d bounds vs %d counts", name, len(uppers), len(counts))
	}
	if p.err != nil {
		return
	}
	for i, le := range uppers {
		p.w.WriteString(name)
		p.w.WriteString("_bucket")
		p.writeLabels(labels, "le", le)
		fmt.Fprintf(p.w, " %d\n", counts[i])
	}
	p.w.WriteString(name)
	p.w.WriteString("_bucket")
	p.writeLabels(labels, "le", math.Inf(1))
	fmt.Fprintf(p.w, " %d\n", total)
	p.w.WriteString(name)
	p.w.WriteString("_sum")
	p.writeLabels(labels, "", 0)
	fmt.Fprintf(p.w, " %s\n", formatValue(sum))
	p.w.WriteString(name)
	p.w.WriteString("_count")
	p.writeLabels(labels, "", 0)
	_, p.err = fmt.Fprintf(p.w, " %d\n", total)
}

// writeLabels renders {a="b",...}, appending an le label when leName is
// non-empty. No output at all when there are no labels.
func (p *Writer) writeLabels(labels []Label, leName string, le float64) {
	if len(labels) == 0 && leName == "" {
		return
	}
	p.w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			p.w.WriteByte(',')
		}
		p.w.WriteString(l.Name)
		p.w.WriteString(`="`)
		p.w.WriteString(escapeLabel(l.Value))
		p.w.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			p.w.WriteByte(',')
		}
		p.w.WriteString(leName)
		p.w.WriteString(`="`)
		p.w.WriteString(formatValue(le))
		p.w.WriteByte('"')
	}
	p.w.WriteByte('}')
}

// Flush writes any buffered output and returns the first error
// encountered over the Writer's lifetime.
func (p *Writer) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// ---------------------------------------------------------------------------
// Parser

// Sample is one parsed series sample.
type Sample struct {
	// Name is the sample's metric name as written — for histograms this
	// includes the _bucket/_sum/_count suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: every sample that belongs to one
// # TYPE declaration, in input order.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, untyped
	Help    string
	Samples []Sample
}

// Families is a parsed exposition, keyed by family name.
type Families map[string]*Family

// Value returns the value of the series with the given sample name whose
// labels exactly match want (nil matches the unlabeled series), and
// whether it exists.
func (fs Families) Value(sampleName string, want map[string]string) (float64, bool) {
	fam := fs[familyOf(sampleName)]
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != sampleName || len(s.Labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Names returns the family names in sorted order.
func (fs Families) Names() []string {
	out := make([]string, 0, len(fs))
	for n := range fs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// Parse reads one exposition document and validates it. Any condition a
// Prometheus scraper would reject is an error: unknown TYPE, a sample
// with no TYPE declaration, malformed metric or label names, duplicate
// series, unparsable values, and histograms whose buckets are missing
// +Inf, not cumulative, or inconsistent with _count.
func Parse(r io.Reader) (Families, error) {
	fams := Families{}
	seen := map[string]bool{} // duplicate-series guard: name + sorted labels
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				f := fams[name]
				if f == nil {
					f = &Family{Name: name}
					fams[name] = f
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) < 4 || !validTypes[fields[3]] {
					return nil, fmt.Errorf("line %d: invalid TYPE for %s", lineNo, name)
				}
				f := fams[name]
				if f == nil {
					f = &Family{Name: name}
					fams[name] = f
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(s.Name)
		fam := fams[famName]
		// A bare sample name that is not a histogram suffix of a declared
		// family must have its own TYPE.
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, s.Name)
		}
		if fam.Type != "histogram" && fam.Type != "summary" && s.Name != fam.Name {
			return nil, fmt.Errorf("line %d: sample %s does not belong to %s family %s", lineNo, s.Name, fam.Type, fam.Name)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
		if f.Type == "counter" {
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsNaN(s.Value) {
					return nil, fmt.Errorf("counter %s has invalid value %v", s.Name, s.Value)
				}
			}
		}
	}
	return fams, nil
}

// familyOf strips the histogram/summary sample suffixes.
func familyOf(sampleName string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(sampleName, suf) {
			return strings.TrimSuffix(sampleName, suf)
		}
	}
	return sampleName
}

// validateHistogram checks each labeled sub-series of a histogram family:
// buckets are cumulative in le order, the +Inf bucket exists and equals
// _count, and _sum/_count are present.
func validateHistogram(f *Family) error {
	type series struct {
		les     []float64
		counts  []int64
		sum     bool
		count   int64
		hasCnt  bool
		infSeen bool
		inf     int64
	}
	groups := map[string]*series{}
	get := func(labels map[string]string) *series {
		key := labelKey(labels, "le")
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			g := get(s.Labels)
			if leStr == "+Inf" {
				g.infSeen = true
				g.inf = int64(s.Value)
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, int64(s.Value))
		case strings.HasSuffix(s.Name, "_sum"):
			get(s.Labels).sum = true
		case strings.HasSuffix(s.Name, "_count"):
			g := get(s.Labels)
			g.hasCnt = true
			g.count = int64(s.Value)
		default:
			return fmt.Errorf("histogram %s: stray sample %s", f.Name, s.Name)
		}
	}
	for key, g := range groups {
		if !g.infSeen {
			return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", f.Name, key)
		}
		if !g.sum || !g.hasCnt {
			return fmt.Errorf("histogram %s{%s}: missing _sum or _count", f.Name, key)
		}
		if g.inf != g.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %d != _count %d", f.Name, key, g.inf, g.count)
		}
		last := int64(-1)
		lastLe := math.Inf(-1)
		for i, le := range g.les {
			if le <= lastLe {
				return fmt.Errorf("histogram %s{%s}: le values not increasing", f.Name, key)
			}
			if g.counts[i] < last {
				return fmt.Errorf("histogram %s{%s}: buckets not cumulative at le=%v", f.Name, key, le)
			}
			last = g.counts[i]
			lastLe = le
		}
		if last > g.inf {
			return fmt.Errorf("histogram %s{%s}: bucket count %d exceeds +Inf %d", f.Name, key, last, g.inf)
		}
	}
	return nil
}

// labelKey renders labels (minus skip) as a canonical sorted string.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

func seriesKey(s Sample) string {
	return s.Name + "{" + labelKey(s.Labels, "") + "}"
}

// parseSample parses `name{labels} value` or `name value` (an optional
// trailing timestamp is accepted and ignored).
func parseSample(line string) (Sample, error) {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validMetricName(name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", name)
	}
	s := Sample{Name: name}
	rest = strings.TrimLeft(rest, " ")
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQ := false
		esc := false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inQ = !inQ
			case c == '}' && !inQ:
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return Sample{}, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return Sample{}, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return Sample{}, fmt.Errorf("want `name[{labels}] value [ts]`, got %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return Sample{}, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `a="x",b="y"`.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value must be quoted", name)
		}
		var b strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = b.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
