package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWriterParserRoundTrip is the drift guard in miniature: everything
// the Writer can emit, Parse must accept and read back exactly.
func TestWriterParserRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Family("rid_requests_total", "counter", "requests by route and status")
	w.Int("rid_requests_total", []Label{{"route", "analyze"}, {"code", "200"}}, 7)
	w.Int("rid_requests_total", []Label{{"route", "analyze"}, {"code", "429"}}, 2)
	w.Family("rid_inflight", "gauge", "analyses running now")
	w.Int("rid_inflight", nil, 3)
	w.Family("rid_wait_seconds", "histogram", `queue wait; help with "quotes" and \backslash`)
	w.Histogram("rid_wait_seconds", []Label{{"route", "analyze"}},
		[]float64{0.001, 0.01, 0.1}, []int64{1, 4, 9}, 0.75, 10)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	fams, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse own output: %v\n%s", err, buf.String())
	}
	if got := fams.Names(); len(got) != 3 {
		t.Fatalf("families = %v, want 3", got)
	}
	if v, ok := fams.Value("rid_requests_total", map[string]string{"route": "analyze", "code": "429"}); !ok || v != 2 {
		t.Fatalf("requests_total{429} = %v, %t", v, ok)
	}
	if v, ok := fams.Value("rid_inflight", nil); !ok || v != 3 {
		t.Fatalf("inflight = %v, %t", v, ok)
	}
	if v, ok := fams.Value("rid_wait_seconds_count", map[string]string{"route": "analyze"}); !ok || v != 10 {
		t.Fatalf("wait_count = %v, %t", v, ok)
	}
	if v, ok := fams.Value("rid_wait_seconds_bucket", map[string]string{"route": "analyze", "le": "+Inf"}); !ok || v != 10 {
		t.Fatalf("+Inf bucket = %v, %t", v, ok)
	}
	if fams["rid_wait_seconds"].Type != "histogram" {
		t.Fatalf("type = %q", fams["rid_wait_seconds"].Type)
	}
}

// TestParseRejectsMalformed enumerates everything a scraper would choke
// on; each must be a parse error, not a silent accept.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"sample without type", "x_total 1\n", "no TYPE"},
		{"bad type", "# TYPE x bogus\nx 1\n", "invalid TYPE"},
		{"bad metric name", "# TYPE 9x counter\n9x 1\n", "invalid metric name"},
		{"bad value", "# TYPE x counter\nx one\n", "bad value"},
		{"duplicate series", "# TYPE x counter\nx 1\nx 2\n", "duplicate series"},
		{"duplicate labeled series", "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
		{"negative counter", "# TYPE x counter\nx -1\n", "invalid value"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"1\" 2\n", "unterminated"},
		{"bad label name", "# TYPE x counter\nx{1a=\"v\"} 2\n", "invalid label name"},
		{"unquoted label", "# TYPE x counter\nx{a=v} 2\n", "quoted"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"histogram not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "not cumulative"},
		{"histogram inf != count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n", "!= _count"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", "missing _sum"},
		{"stray sample in counter family", "# TYPE x counter\nx_extra 1\n", "no TYPE"},
		{"help without type", "# HELP x something\nx 1\n", "no TYPE"},
		{"type after samples", "# TYPE x counter\nx 1\n# TYPE x counter\n", "duplicate TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted malformed input:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseAcceptsRealWorldShape covers accepted-but-unemitted syntax:
// timestamps, free-form comments, escaped label values, untyped series.
func TestParseAcceptsRealWorldShape(t *testing.T) {
	in := `# scraped from somewhere
# TYPE go_info gauge
go_info{version="go1.22",note="line\nbreak \"q\" back\\slash"} 1 1700000000000
# TYPE x untyped
x 3.14
# TYPE inf_gauge gauge
inf_gauge +Inf
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams.Value("go_info", map[string]string{"version": "go1.22", "note": "line\nbreak \"q\" back\\slash"}); !ok || v != 1 {
		t.Fatalf("go_info = %v, %t", v, ok)
	}
	if v, _ := fams.Value("inf_gauge", nil); !math.IsInf(v, 1) {
		t.Fatalf("inf_gauge = %v", v)
	}
}

// TestValueMissing returns ok=false for absent series and label sets.
func TestValueMissing(t *testing.T) {
	fams, err := Parse(strings.NewReader("# TYPE x counter\nx{a=\"1\"} 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fams.Value("x", nil); ok {
		t.Fatal("unlabeled lookup matched a labeled series")
	}
	if _, ok := fams.Value("y", nil); ok {
		t.Fatal("lookup of absent family succeeded")
	}
}
