// Package admit is the admission-control gate shared by the long-lived
// servers (`rid serve`, `rid storeserve`): at most a configured number of
// requests run concurrently, a bounded number more wait a bounded time
// for a slot, and everything beyond that is rejected immediately — so an
// overloaded server sheds load in O(1) instead of compounding it.
//
// The gate is deliberately in front of everything expensive: a request
// the server has no capacity for costs it one channel operation and an
// atomic add.
package admit

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded means the gate declined to start the work: every inflight
// slot is busy and either the queue is full or the queue wait expired.
// HTTP servers map it to 429 + Retry-After.
var ErrOverloaded = errors.New("server overloaded")

// Gate is one admission gate. Create with New; all methods are safe for
// concurrent use.
type Gate struct {
	sem      chan struct{}
	queued   atomic.Int64
	rejected atomic.Int64
	depth    int
	wait     time.Duration
	observe  func(time.Duration) // queue-wait histogram hook; never nil
}

// New builds a gate admitting at most maxInflight concurrent requests,
// queueing up to queueDepth more for at most queueWait each. observe,
// when non-nil, receives every admitted request's queue wait (0 on the
// uncontended fast path) — the hook behind queue-wait histograms.
func New(maxInflight, queueDepth int, queueWait time.Duration, observe func(time.Duration)) *Gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if observe == nil {
		observe = func(time.Duration) {}
	}
	return &Gate{
		sem:     make(chan struct{}, maxInflight),
		depth:   queueDepth,
		wait:    queueWait,
		observe: observe,
	}
}

// Admit acquires one inflight slot, queueing for at most the configured
// wait behind at most the configured depth of other waiters. On success
// the returned release must be called exactly once when the work
// completes; wait is how long the request queued. err is ErrOverloaded
// when the gate sheds the request, or ctx.Err() if the caller gave up
// first.
func (g *Gate) Admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	select {
	case g.sem <- struct{}{}:
		g.observe(0)
		return g.release, 0, nil
	default:
	}
	if g.queued.Add(1) > int64(g.depth) {
		g.queued.Add(-1)
		g.rejected.Add(1)
		return nil, 0, ErrOverloaded
	}
	defer g.queued.Add(-1)
	t0 := time.Now()
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.sem <- struct{}{}:
		wait = time.Since(t0)
		g.observe(wait)
		return g.release, wait, nil
	case <-t.C:
		g.rejected.Add(1)
		return nil, time.Since(t0), ErrOverloaded
	case <-ctx.Done():
		return nil, time.Since(t0), ctx.Err()
	}
}

func (g *Gate) release() { <-g.sem }

// Inflight is the number of slots currently held.
func (g *Gate) Inflight() int { return len(g.sem) }

// MaxInflight is the slot capacity.
func (g *Gate) MaxInflight() int { return cap(g.sem) }

// Queued is the number of requests currently waiting for a slot.
func (g *Gate) Queued() int64 { return g.queued.Load() }

// QueueDepth is the waiting-room capacity.
func (g *Gate) QueueDepth() int { return g.depth }

// Rejected counts requests shed with ErrOverloaded since creation.
func (g *Gate) Rejected() int64 { return g.rejected.Load() }

// RetryAfter is the Retry-After hint for a shed request: the queue wait
// rounded up to whole seconds — by then either a slot freed or the
// client should back off harder.
func (g *Gate) RetryAfter() int {
	secs := int((g.wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
