package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFastPathUncontended(t *testing.T) {
	var waits []time.Duration
	g := New(2, 4, time.Second, func(d time.Duration) { waits = append(waits, d) })
	release, wait, err := g.Admit(context.Background())
	if err != nil || wait != 0 {
		t.Fatalf("Admit = (wait %v, err %v), want instant success", wait, err)
	}
	if g.Inflight() != 1 || g.MaxInflight() != 2 {
		t.Fatalf("inflight %d/%d, want 1/2", g.Inflight(), g.MaxInflight())
	}
	release()
	if g.Inflight() != 0 {
		t.Fatalf("inflight %d after release, want 0", g.Inflight())
	}
	if len(waits) != 1 || waits[0] != 0 {
		t.Fatalf("observe hook saw %v, want one zero wait", waits)
	}
}

func TestQueueOverflowRejectsImmediately(t *testing.T) {
	g := New(1, 0, time.Minute, nil)
	release, _, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Slot busy, no queue: rejection must not wait out the queueWait.
	t0 := time.Now()
	_, _, err = g.Admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if e := time.Since(t0); e > 5*time.Second {
		t.Fatalf("zero-depth rejection took %v", e)
	}
	if g.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", g.Rejected())
	}
}

func TestQueuedRequestGetsFreedSlot(t *testing.T) {
	g := New(1, 1, 5*time.Second, nil)
	release, _, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, wait, err := g.Admit(context.Background())
		if err == nil {
			if wait <= 0 {
				err = errors.New("queued admit reported zero wait")
			}
			r2()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine queue
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued Admit: %v", err)
	}
}

func TestQueueWaitExpires(t *testing.T) {
	g := New(1, 1, 30*time.Millisecond, nil)
	release, _, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, wait, err := g.Admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded after queue wait", err)
	}
	if wait < 30*time.Millisecond {
		t.Fatalf("gave up after %v, before the configured wait", wait)
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	g := New(1, 1, time.Minute, nil)
	release, _, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err = g.Admit(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A caller giving up is not server overload.
	if g.Rejected() != 0 {
		t.Fatalf("rejected = %d after context cancel, want 0", g.Rejected())
	}
}

func TestConcurrencyNeverExceedsLimit(t *testing.T) {
	const limit = 3
	g := New(limit, 100, time.Second, nil)
	var (
		mu      sync.Mutex
		cur, pk int
	)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, _, err := g.Admit(context.Background())
			if err != nil {
				return
			}
			mu.Lock()
			cur++
			if cur > pk {
				pk = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if pk > limit {
		t.Fatalf("peak concurrency %d exceeded the limit %d", pk, limit)
	}
	if g.Inflight() != 0 || g.Queued() != 0 {
		t.Fatalf("inflight %d queued %d after drain, want 0/0", g.Inflight(), g.Queued())
	}
}

func TestRetryAfterRoundsUp(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{200 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
	} {
		g := New(1, 1, tc.wait, nil)
		if got := g.RetryAfter(); got != tc.want {
			t.Errorf("RetryAfter(wait=%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
