// Package callgraph builds the static call graph of an abstract program
// and provides the orderings the analysis needs: Tarjan strongly-connected
// components, and (reverse) topological order over the SCC condensation.
// Recursion is "broken" the way the paper describes (§4.2): functions in a
// cycle are ordered deterministically within their SCC and calls to
// not-yet-summarized members are treated as unknown.
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// Graph is the call graph over defined functions. Calls to undefined
// functions (externs, predefined APIs) appear in Callees but not as nodes.
type Graph struct {
	Prog  *ir.Program
	Nodes []string            // defined functions, in definition order
	Out   map[string][]string // edges to *defined* callees only
	In    map[string][]string
	All   map[string][]string // edges including undefined callees

	sccOf  map[string]int
	sccs   [][]string // SCC id → members (deterministic order)
	sccDAG [][]int    // SCC id → successor SCC ids
}

// Build constructs the call graph for prog.
func Build(prog *ir.Program) *Graph {
	g := &Graph{
		Prog: prog,
		Out:  make(map[string][]string),
		In:   make(map[string][]string),
		All:  make(map[string][]string),
	}
	for _, name := range prog.Order {
		g.Nodes = append(g.Nodes, name)
	}
	for _, name := range g.Nodes {
		fn := prog.Funcs[name]
		callees := fn.Callees()
		g.All[name] = callees
		for _, c := range callees {
			if _, defined := prog.Funcs[c]; !defined {
				continue
			}
			g.Out[name] = append(g.Out[name], c)
			g.In[c] = append(g.In[c], name)
		}
	}
	g.tarjan()
	return g
}

// SCCs returns the strongly connected components in reverse topological
// order: every callee SCC appears before any of its callers. This is the
// summarization order of §4.2.
func (g *Graph) SCCs() [][]string { return g.sccs }

// SCCOf returns the SCC index of fn (indices follow SCCs() order).
func (g *Graph) SCCOf(fn string) int { return g.sccOf[fn] }

// SCCSuccs returns, for SCC i, the SCC indices it depends on (its callees'
// SCCs); all of them precede i in SCCs() order.
func (g *Graph) SCCSuccs(i int) []int { return g.sccDAG[i] }

// ReverseTopo returns the defined functions with callees before callers.
func (g *Graph) ReverseTopo() []string {
	var out []string
	for _, scc := range g.sccs {
		out = append(out, scc...)
	}
	return out
}

// Topo returns the defined functions with callers before callees.
func (g *Graph) Topo() []string {
	rt := g.ReverseTopo()
	out := make([]string, len(rt))
	for i, f := range rt {
		out[len(rt)-1-i] = f
	}
	return out
}

// tarjan computes SCCs iteratively (generated corpora have deep chains).
func (g *Graph) tarjan() {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	g.sccOf = make(map[string]int)
	next := 0

	type frame struct {
		node string
		ei   int
	}
	var visit func(root string)
	visit = func(root string) {
		var frames []frame
		push := func(v string) {
			index[v] = next
			low[v] = next
			next++
			stack = append(stack, v)
			onStack[v] = true
			frames = append(frames, frame{v, 0})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succs := g.Out[f.node]
			if f.ei < len(succs) {
				w := succs[f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop frame; maybe emit SCC.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.node] {
					low[p.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp) // deterministic member order
				id := len(g.sccs)
				for _, m := range comp {
					g.sccOf[m] = id
				}
				g.sccs = append(g.sccs, comp)
			}
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	// Tarjan emits SCCs in reverse topological order already.
	g.sccDAG = make([][]int, len(g.sccs))
	for i, comp := range g.sccs {
		seen := map[int]bool{i: true}
		for _, m := range comp {
			for _, c := range g.Out[m] {
				cs := g.sccOf[c]
				if !seen[cs] {
					seen[cs] = true
					g.sccDAG[i] = append(g.sccDAG[i], cs)
				}
			}
		}
		sort.Ints(g.sccDAG[i])
	}
}
