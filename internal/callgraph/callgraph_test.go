package callgraph

import (
	"testing"

	"repro/internal/lower"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog)
}

func indexOf(order []string, fn string) int {
	for i, f := range order {
		if f == fn {
			return i
		}
	}
	return -1
}

func TestChainOrder(t *testing.T) {
	g := build(t, `
int c(int x) { return x; }
int b(int x) { return c(x); }
int a(int x) { return b(x); }
`)
	rt := g.ReverseTopo()
	if !(indexOf(rt, "c") < indexOf(rt, "b") && indexOf(rt, "b") < indexOf(rt, "a")) {
		t.Errorf("reverse topo: %v", rt)
	}
	tp := g.Topo()
	if !(indexOf(tp, "a") < indexOf(tp, "b") && indexOf(tp, "b") < indexOf(tp, "c")) {
		t.Errorf("topo: %v", tp)
	}
}

func TestExternCalleesExcludedFromNodes(t *testing.T) {
	g := build(t, `
extern int ext(int x);
int a(int x) { return ext(x); }
`)
	if len(g.Nodes) != 1 {
		t.Fatalf("nodes: %v", g.Nodes)
	}
	if len(g.Out["a"]) != 0 {
		t.Errorf("defined-out edges: %v", g.Out["a"])
	}
	if len(g.All["a"]) != 1 || g.All["a"][0] != "ext" {
		t.Errorf("all edges: %v", g.All["a"])
	}
}

func TestMutualRecursionOneSCC(t *testing.T) {
	g := build(t, `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n); }
int odd(int n) { if (n == 0) return 0; return even(n); }
int top(int n) { return even(n); }
`)
	if g.SCCOf("even") != g.SCCOf("odd") {
		t.Error("mutual recursion must share an SCC")
	}
	if g.SCCOf("top") == g.SCCOf("even") {
		t.Error("top must be its own SCC")
	}
	// The recursive SCC precedes its caller in reverse topo order.
	rt := g.ReverseTopo()
	if !(indexOf(rt, "even") < indexOf(rt, "top")) {
		t.Errorf("order: %v", rt)
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `int f(int n) { if (n == 0) return 0; return f(n); }`)
	sccs := g.SCCs()
	if len(sccs) != 1 || len(sccs[0]) != 1 {
		t.Fatalf("sccs: %v", sccs)
	}
}

func TestSCCDAGDependencies(t *testing.T) {
	g := build(t, `
int leaf(int x) { return x; }
int mid(int x) { return leaf(x); }
int top(int x) { return mid(leaf(x)); }
`)
	topSCC := g.SCCOf("top")
	deps := g.SCCSuccs(topSCC)
	// top depends on mid's and leaf's SCCs; all precede it.
	if len(deps) != 2 {
		t.Fatalf("deps: %v", deps)
	}
	for _, d := range deps {
		if d >= topSCC {
			t.Errorf("dependency %d does not precede %d", d, topSCC)
		}
	}
}

func TestSCCsReverseTopoInvariant(t *testing.T) {
	g := build(t, `
int e(int x) { return x; }
int d(int x) { return e(x); }
int c(int x) { return d(x); }
int b(int x) { return c(x); }
int a(int x) { return b(x) + c(x); }
`)
	// Every SCC's dependencies have smaller indices.
	for i := range g.SCCs() {
		for _, d := range g.SCCSuccs(i) {
			if d >= i {
				t.Errorf("SCC %d depends on %d (not earlier)", i, d)
			}
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	src := `
int z(int x) { return x; }
int y(int x) { return z(x); }
int x(int x2) { return y(x2); }
`
	a := build(t, src).ReverseTopo()
	b := build(t, src).ReverseTopo()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs: %v vs %v", a, b)
		}
	}
}
