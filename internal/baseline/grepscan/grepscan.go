// Package grepscan reimplements the brute-force textual search of §6.3:
// find every call site of the pm_runtime_get* APIs that has error handling,
// and check whether the error path balances the count with a pm_runtime_put*
// call. The paper used exactly this kind of regular-expression search over
// the kernel tree to establish that ~70% of error-handled call sites miss
// the decrement, and to find bugs RID itself cannot see (Figure 10).
//
// The scanner is deliberately textual — it works on source text, not the
// IR — mirroring the methodology it reproduces.
package grepscan

import (
	"regexp"
	"strings"
)

// CallSite is one discovered get-API call with error handling.
type CallSite struct {
	File        string
	Line        int // 1-based line of the call
	EnclosingFn string
	API         string // the pm_runtime_get* function called
	ResultVar   string // variable receiving the return value
	PutOnError  bool   // a pm_runtime_put* appears on the error path
}

// Stats aggregates scan results in the shape of §6.3.
type Stats struct {
	TotalCalls     int // get-API calls seen (excluding wrappers)
	WithHandling   int // call sites whose result feeds an error check
	MissingPut     int // error-handled sites without a put on the error path
	ExcludedInFile int // calls inside excluded (wrapper) functions
}

var (
	reFuncDef = regexp.MustCompile(`^\s*(?:static\s+)?(?:\w+\s+\*?|\w+\s+)(\w+)\s*\([^;]*\)\s*\{?\s*$`)
	reGetCall = regexp.MustCompile(`(?:(\w+)\s*=\s*)?(pm_runtime_get(?:_sync|_noresume)?)\s*\(`)
	rePutCall = regexp.MustCompile(`pm_runtime_put\w*\s*\(`)
)

// Scanner scans source files.
type Scanner struct {
	// ExcludeFn reports whether a function is a wrapper to be skipped
	// (the paper excludes wrapper functions from the §6.3 count).
	ExcludeFn func(name string) bool
	// Window is how many lines after the call are searched for the error
	// check; defaults to 6.
	Window int
}

// Scan processes one file's source text and returns the error-handled get
// call sites.
func (s *Scanner) Scan(file, src string) []CallSite {
	window := s.Window
	if window == 0 {
		window = 6
	}
	lines := strings.Split(src, "\n")
	var out []CallSite
	enclosing := ""
	for i, line := range lines {
		if m := reFuncDef.FindStringSubmatch(line); m != nil && strings.Contains(line, "(") {
			// Heuristic: a definition line mentions no semicolon and ends
			// in an opening brace on this or the next line.
			if strings.HasSuffix(strings.TrimSpace(line), "{") ||
				(i+1 < len(lines) && strings.TrimSpace(lines[i+1]) == "{") {
				enclosing = m[1]
			}
		}
		m := reGetCall.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if s.ExcludeFn != nil && s.ExcludeFn(enclosing) {
			continue
		}
		resVar, api := m[1], m[2]
		cs := CallSite{File: file, Line: i + 1, EnclosingFn: enclosing, API: api, ResultVar: resVar}
		if resVar == "" {
			continue // no error handling possible without the result
		}
		// Look for "if (<res> ... )" within the window.
		errCheck := regexp.MustCompile(`if\s*\(\s*` + regexp.QuoteMeta(resVar) + `\b`)
		handled := false
		checkLine := -1
		for j := i + 1; j < len(lines) && j <= i+window; j++ {
			if errCheck.MatchString(lines[j]) {
				handled = true
				checkLine = j
				break
			}
		}
		if !handled {
			continue
		}
		// Inspect the error branch: the block (or single statement) after
		// the if, up to the matching close or the next empty-ish boundary.
		cs.PutOnError = errorBranchHasPut(lines, checkLine)
		out = append(out, cs)
	}
	return out
}

// errorBranchHasPut scans the statements controlled by the if at line idx
// for a pm_runtime_put* call.
func errorBranchHasPut(lines []string, idx int) bool {
	line := lines[idx]
	// Single-statement branch on the same line?
	if after := line[strings.Index(line, "if"):]; rePutCall.MatchString(after) {
		return true
	}
	depth := strings.Count(line, "{") - strings.Count(line, "}")
	if depth <= 0 {
		// Single-statement if: only the next line belongs to the branch.
		if idx+1 < len(lines) {
			return rePutCall.MatchString(lines[idx+1])
		}
		return false
	}
	for j := idx + 1; j < len(lines); j++ {
		if rePutCall.MatchString(lines[j]) {
			return true
		}
		depth += strings.Count(lines[j], "{") - strings.Count(lines[j], "}")
		if depth <= 0 {
			return false
		}
	}
	return false
}

// ScanAll scans a set of files and aggregates statistics.
func (s *Scanner) ScanAll(files map[string]string) ([]CallSite, Stats) {
	var sites []CallSite
	var st Stats
	// Deterministic file order.
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		src := files[n]
		st.TotalCalls += len(reGetCall.FindAllString(src, -1))
		fileSites := s.Scan(n, src)
		for _, cs := range fileSites {
			st.WithHandling++
			if !cs.PutOnError {
				st.MissingPut++
			}
		}
		sites = append(sites, fileSites...)
	}
	return sites, st
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
