package grepscan

import "testing"

func scanOne(t *testing.T, src string) ([]CallSite, Stats) {
	t.Helper()
	sc := &Scanner{}
	return sc.ScanAll(map[string]string{"a.c": src})
}

func TestBracedErrorPathWithPut(t *testing.T) {
	src := `
int f(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
    return 0;
}
`
	sites, st := scanOne(t, src)
	if st.WithHandling != 1 || st.MissingPut != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !sites[0].PutOnError || sites[0].API != "pm_runtime_get_sync" {
		t.Errorf("site: %+v", sites[0])
	}
}

func TestSingleStatementErrorReturn(t *testing.T) {
	src := `
int f(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    return 0;
}
`
	sites, st := scanOne(t, src)
	if st.WithHandling != 1 || st.MissingPut != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if sites[0].PutOnError {
		t.Error("missing put not detected")
	}
}

func TestUnhandledCallNotCounted(t *testing.T) {
	src := `
void f(struct device *dev) {
    pm_runtime_get(dev);
    pm_runtime_put(dev);
}
`
	_, st := scanOne(t, src)
	if st.WithHandling != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.TotalCalls != 1 {
		t.Errorf("total get calls: %d", st.TotalCalls)
	}
}

func TestResultIgnoredNotCounted(t *testing.T) {
	src := `
int f(struct device *dev, int mode) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (mode < 0)
        return -1;
    pm_runtime_put(dev);
    return 0;
}
`
	// The if tests mode, not ret: no error handling of the call result.
	_, st := scanOne(t, src)
	if st.WithHandling != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEnclosingFunctionTracked(t *testing.T) {
	src := `
int outer_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    return 0;
}
`
	sites, _ := scanOne(t, src)
	if len(sites) != 1 || sites[0].EnclosingFn != "outer_op" {
		t.Fatalf("sites: %+v", sites)
	}
}

func TestWrapperExclusion(t *testing.T) {
	src := `
int my_wrapper_get(struct device *dev) {
    int status;
    status = pm_runtime_get_sync(dev);
    if (status < 0)
        pm_runtime_put_sync(dev);
    return status;
}
`
	sc := &Scanner{ExcludeFn: func(fn string) bool { return fn == "my_wrapper_get" }}
	sites, st := sc.ScanAll(map[string]string{"w.c": src})
	if len(sites) != 0 || st.WithHandling != 0 {
		t.Fatalf("wrapper not excluded: %+v", st)
	}
}

func TestGotoErrorPathCountsAsMissing(t *testing.T) {
	// A textual scanner cannot follow the goto; the error branch shows no
	// put, so the site counts as missing (a known methodological limit the
	// §6.3 experiment inherits from the paper's regex census).
	src := `
int f(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        goto out;
    return 0;
out:
    pm_runtime_put(dev);
    return ret;
}
`
	_, st := scanOne(t, src)
	if st.MissingPut != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMultipleSitesOneFile(t *testing.T) {
	src := `
int a_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    return 0;
}

int b_op(struct device *dev) {
    int err;
    err = pm_runtime_get(dev);
    if (err < 0) {
        pm_runtime_put_noidle(dev);
        return err;
    }
    return 0;
}
`
	sites, st := scanOne(t, src)
	if st.WithHandling != 2 || st.MissingPut != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if sites[0].EnclosingFn != "a_op" || sites[1].EnclosingFn != "b_op" {
		t.Errorf("sites: %+v", sites)
	}
}

func TestDeterministicFileOrder(t *testing.T) {
	files := map[string]string{
		"z.c": "\nint zf(struct device *d) {\n    int r;\n    r = pm_runtime_get(d);\n    if (r < 0)\n        return r;\n    return 0;\n}\n",
		"a.c": "\nint af(struct device *d) {\n    int r;\n    r = pm_runtime_get(d);\n    if (r < 0)\n        return r;\n    return 0;\n}\n",
	}
	sc := &Scanner{}
	s1, _ := sc.ScanAll(files)
	s2, _ := sc.ScanAll(files)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("non-deterministic scan order")
		}
	}
	if s1[0].File != "a.c" {
		t.Errorf("first file: %s", s1[0].File)
	}
}

func TestWindowLimitsSearch(t *testing.T) {
	// The error check is 8 lines after the call; a window of 2 misses it,
	// the default of 6 would too, a window of 10 finds it.
	src := `
int f(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    dev_dbg(dev);
    if (ret < 0)
        return ret;
    return 0;
}
`
	narrow := &Scanner{Window: 2}
	if sites := narrow.Scan("a.c", src); len(sites) != 0 {
		t.Errorf("narrow window found %d sites", len(sites))
	}
	wide := &Scanner{Window: 10}
	if sites := wide.Scan("a.c", src); len(sites) != 1 {
		t.Errorf("wide window found %d sites", len(sites))
	}
}
