package cpyrule

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

func check(t *testing.T, src string) []*Report {
	t.Helper()
	prog, err := lower.SourceString("mod.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return New(spec.PythonC(), Config{}).Check(prog)
}

func reportsFor(rs []*Report, fn string) []*Report {
	var out []*Report
	for _, r := range rs {
		if r.Fn == fn {
			out = append(out, r)
		}
	}
	return out
}

func TestCleanAllocationReturn(t *testing.T) {
	src := `
PyObject *make(void) {
    PyObject *o;
    o = PyList_New(1);
    if (o == NULL)
        return NULL;
    return o;
}
`
	if rs := check(t, src); len(rs) != 0 {
		for _, r := range rs {
			t.Errorf("unexpected: %s", r)
		}
	}
}

func TestLeakOnErrorPath(t *testing.T) {
	src := `
int fill(PyObject *o);

PyObject *make(void) {
    PyObject *o;
    o = PyList_New(1);
    if (o == NULL)
        return NULL;
    if (fill(o) < 0)
        return NULL;
    return o;
}
`
	rs := reportsFor(check(t, src), "make")
	if len(rs) != 1 || rs[0].Kind != Leak {
		t.Fatalf("reports: %v", rs)
	}
}

func TestConsistentLeakCaught(t *testing.T) {
	// RID misses this (no inconsistent pair); the escape rule catches it.
	src := `
int always_leak(PyObject *o) {
    Py_INCREF(o);
    return 0;
}
`
	rs := reportsFor(check(t, src), "always_leak")
	if len(rs) != 1 || rs[0].Kind != Leak {
		t.Fatalf("reports: %v", rs)
	}
}

func TestOverDecrement(t *testing.T) {
	src := `
int drop_twice(PyObject *o) {
    Py_DECREF(o);
    Py_DECREF(o);
    return 0;
}
`
	rs := reportsFor(check(t, src), "drop_twice")
	if len(rs) != 1 || rs[0].Kind != OverDecre {
		t.Fatalf("reports: %v", rs)
	}
}

func TestBalancedIncDec(t *testing.T) {
	src := `
int touch(PyObject *o) {
    Py_INCREF(o);
    Py_DECREF(o);
    return 0;
}
`
	if rs := reportsFor(check(t, src), "touch"); len(rs) != 0 {
		t.Fatalf("reports: %v", rs)
	}
}

func TestStealEscapes(t *testing.T) {
	// The item's reference escapes into the list via PyList_SetItem, so
	// the +1 from the allocation is balanced by the escape.
	src := `
int put(PyObject *lst) {
    PyObject *v;
    v = PyInt_FromLong(5);
    if (v == NULL)
        return -1;
    PyList_SetItem(lst, 0, v);
    return 0;
}
`
	if rs := reportsFor(check(t, src), "put"); len(rs) != 0 {
		for _, r := range rs {
			t.Errorf("unexpected: %s", r)
		}
	}
}

func TestWrapperFalsePositive(t *testing.T) {
	// A wrapper around Py_INCREF violates the escape rule by construction —
	// the documented Cpychecker false-positive class (§2.1).
	src := `
void my_incref(PyObject *o) {
    Py_INCREF(o);
}
`
	rs := reportsFor(check(t, src), "my_incref")
	if len(rs) != 1 {
		t.Fatalf("wrapper must be flagged: %v", rs)
	}
}

func TestNonSSAReassignmentMissed(t *testing.T) {
	// The second allocation rebinds o; the non-SSA tracker gets confused
	// and misses the leak of the first object (RID-specific bug class in
	// Table 2).
	src := `
PyObject *remake(void) {
    PyObject *o;
    o = PyList_New(1);
    if (o == NULL)
        return NULL;
    o = PyList_New(2);
    if (o == NULL)
        return NULL;
    return o;
}
`
	if rs := reportsFor(check(t, src), "remake"); len(rs) != 0 {
		for _, r := range rs {
			t.Errorf("non-SSA checker should be confused, got: %s", r)
		}
	}
}

func TestBorrowedGetterUntracked(t *testing.T) {
	src := `
PyObject *peek(PyObject *lst) {
    PyObject *v;
    v = PyList_GetItem(lst, 0);
    return v;
}
`
	// Returning a borrowed reference without INCREF: flagged on the lst?
	// No: the returned value is untracked (borrowed getter), and lst
	// itself is unchanged and not returned. No reports.
	if rs := reportsFor(check(t, src), "peek"); len(rs) != 0 {
		for _, r := range rs {
			t.Errorf("unexpected: %s", r)
		}
	}
}

func TestReturnedArgumentNeedsIncref(t *testing.T) {
	src := `
PyObject *identity(PyObject *o) {
    return o;
}
PyObject *identity_ok(PyObject *o) {
    Py_INCREF(o);
    return o;
}
`
	rs := check(t, src)
	if len(reportsFor(rs, "identity")) != 1 {
		t.Errorf("returning a borrowed argument must be flagged: %v", rs)
	}
	if len(reportsFor(rs, "identity_ok")) != 0 {
		t.Errorf("incremented return is clean: %v", reportsFor(rs, "identity_ok"))
	}
}

func TestVoidPathIgnored(t *testing.T) {
	prog := ir.NewProgram()
	rs := New(spec.PythonC(), Config{}).Check(prog)
	if len(rs) != 0 {
		t.Fatal("empty program")
	}
}
