// Package cpyrule implements the Cpychecker/Pungi-style escape-rule
// checker the paper compares against (§2.1, §6.6): in any function, the net
// change to an object's refcount must equal the number of references that
// escape the function through the return value or through reference-
// stealing APIs.
//
// The checker deliberately mirrors the documented weaknesses of Cpychecker
// rather than fixing them:
//
//   - It is not SSA-based: a variable reassigned to a different tracked
//     object confuses the tracker, which then excludes both objects from
//     checking (the reason RID finds more bugs in Table 2).
//   - Wrapper functions around the basic refcount APIs violate the rule by
//     construction and are flagged (the false-positive class that needs
//     manual GCC attributes in Cpychecker).
//
// It runs on the same abstract IR as RID and uses the same predefined API
// specifications, consuming their steal/newref attributes.
package cpyrule

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/frontend/token"
	"repro/internal/ir"
	"repro/internal/spec"
)

// Kind classifies a finding.
type Kind int

// Finding kinds.
const (
	Leak      Kind = iota // net change exceeds escaping references
	OverDecre             // net change below escaping references
)

func (k Kind) String() string {
	if k == Leak {
		return "leak"
	}
	return "over-decrement"
}

// Report is one escape-rule violation.
type Report struct {
	Fn     string
	Object string // human-readable object identity ("arg a", "PyList_New@3")
	Kind   Kind
	Net    int // observed net refcount change
	Want   int // escaping references
	Pos    token.Pos
}

// Key deduplicates findings per function and object.
func (r *Report) Key() string { return r.Fn + "\x00" + r.Object }

func (r *Report) String() string {
	return fmt.Sprintf("%s: function %s: %s of %s (net %+d, escapes %d)",
		r.Pos, r.Fn, r.Kind, r.Object, r.Net, r.Want)
}

// Config bounds the per-function exploration.
type Config struct {
	MaxPaths int // default 100
}

// Checker runs the escape rule over a program.
type Checker struct {
	specs *spec.Specs
	cfg   Config
}

// New returns a checker using the given API specifications (their steal
// and newref attributes drive escape accounting).
func New(specs *spec.Specs, cfg Config) *Checker {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 100
	}
	return &Checker{specs: specs, cfg: cfg}
}

// object is an abstract tracked object.
type object struct {
	id     int
	desc   string
	isArg  bool
	netRC  int
	steals int  // references escaped into stealing APIs
	isNull bool // allocation observed to have failed on this path
}

// value is the abstract value of a variable.
type value struct {
	obj  *object // nil when not an object
	null bool
}

// env is the per-path abstract state. Non-SSA quirk: a variable already
// bound to an object that is re-bound to a *different* object marks both
// objects confused.
type env struct {
	vars      map[string]value
	objs      []*object
	confused  map[int]bool
	nextID    int
	nullTests map[string]nullTest
}

func (e *env) newObject(desc string, isArg bool) *object {
	o := &object{id: e.nextID, desc: desc, isArg: isArg}
	e.nextID++
	e.objs = append(e.objs, o)
	return o
}

// bind implements the non-SSA assignment semantics.
func (e *env) bind(name string, v value) {
	if old, ok := e.vars[name]; ok && old.obj != nil && v.obj != nil && old.obj.id != v.obj.id {
		e.confused[old.obj.id] = true
		e.confused[v.obj.id] = true
	}
	e.vars[name] = v
}

// Check analyzes every defined function and returns the deduplicated
// findings sorted by function and object.
func (c *Checker) Check(prog *ir.Program) []*Report {
	var out []*Report
	seen := make(map[string]bool)
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		for _, r := range c.checkFunc(fn) {
			if !seen[r.Key()] {
				seen[r.Key()] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Object < out[j].Object
	})
	return out
}

func (c *Checker) checkFunc(fn *ir.Func) []*Report {
	g := cfg.New(fn)
	enum := g.Enumerate(c.cfg.MaxPaths)
	var reports []*Report
	for _, p := range enum.Paths {
		reports = append(reports, c.checkPath(fn, p)...)
	}
	return reports
}

func (c *Checker) checkPath(fn *ir.Func, p cfg.Path) []*Report {
	e := &env{vars: make(map[string]value), confused: make(map[int]bool)}
	for _, prm := range fn.Params {
		o := e.newObject("arg "+prm, true)
		e.vars[prm] = value{obj: o}
	}
	var returned *object
	hasReturn := false

	blocks := p.Blocks
	for bi, b := range blocks {
		blk := fn.Blocks[b]
		next := -1
		if bi+1 < len(blocks) {
			next = blocks[bi+1]
		}
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpAssign:
				e.bind(in.Dst, c.evalVal(e, in.Val))
			case ir.OpLoadField, ir.OpRandom, ir.OpCompare:
				// Not object-producing; clear any stale binding.
				if in.Dst != "" {
					e.vars[in.Dst] = value{}
				}
				if in.Op == ir.OpCompare {
					// Remember null comparisons so branches can refine.
					e.recordNullTest(in)
				}
			case ir.OpCall:
				c.applyCall(e, in)
			case ir.OpBranchCond:
				e.refineOnBranch(in, next)
			case ir.OpReturn:
				hasReturn = true
				if in.HasVal {
					v := c.evalVal(e, in.Val)
					returned = v.obj
				}
			}
		}
	}
	if !hasReturn {
		return nil
	}

	var reports []*Report
	for _, o := range e.objs {
		if e.confused[o.id] || o.isNull {
			continue
		}
		want := o.steals
		if returned != nil && returned.id == o.id {
			want++ // one reference escapes through the return value
		}
		if o.isArg {
			// Borrowed references: the rule requires the net change to
			// cover exactly the escapes (returning a borrowed reference
			// without incrementing is the classic Cpychecker FP).
			if o.netRC == want {
				continue
			}
		} else {
			if o.netRC == want {
				continue
			}
		}
		kind := Leak
		if o.netRC < want {
			kind = OverDecre
		}
		reports = append(reports, &Report{
			Fn: fn.Name, Object: o.desc, Kind: kind,
			Net: o.netRC, Want: want, Pos: fn.Pos,
		})
	}
	return reports
}

// evalVal maps an IR operand to its abstract value.
func (c *Checker) evalVal(e *env, v ir.Value) value {
	switch v.Kind {
	case ir.ValVar:
		return e.vars[v.Var]
	case ir.ValNull:
		return value{null: true}
	}
	return value{}
}

// nullTests remembers "t = x == null"-style comparisons per destination so
// a branch on t can refine x.
type nullTest struct {
	varName string
	eqNull  bool
}

func (e *env) recordNullTest(in *ir.Instr) {
	if e.nullTests == nil {
		e.nullTests = make(map[string]nullTest)
	}
	var varSide ir.Value
	var other ir.Value
	if in.A.Kind == ir.ValVar {
		varSide, other = in.A, in.B
	} else if in.B.Kind == ir.ValVar {
		varSide, other = in.B, in.A
	} else {
		return
	}
	isNull := other.Kind == ir.ValNull || (other.Kind == ir.ValInt && other.Int == 0)
	if !isNull {
		return
	}
	switch in.Pred {
	case ir.EQ:
		e.nullTests[in.Dst] = nullTest{varName: varSide.Var, eqNull: true}
	case ir.NE:
		e.nullTests[in.Dst] = nullTest{varName: varSide.Var, eqNull: false}
	}
}

// refineOnBranch marks an allocation as failed when the path takes the
// "pointer is null" side of a null test: its optimistic +1 is undone.
func (e *env) refineOnBranch(in *ir.Instr, next int) {
	if in.Cond.Kind != ir.ValVar || next < 0 || in.True == in.False {
		return
	}
	nt, ok := e.nullTests[in.Cond.Var]
	if !ok {
		return
	}
	takenTrue := next == in.True
	isNull := nt.eqNull == takenTrue
	v, bound := e.vars[nt.varName]
	if !bound || v.obj == nil {
		return
	}
	if isNull {
		v.obj.isNull = true
	}
}

// applyCall updates the environment for one call using the API specs.
func (c *Checker) applyCall(e *env, in *ir.Instr) {
	api := c.specs.APIs[in.Fn]
	if api == nil {
		// Unknown callee: results are not objects; arguments unaffected.
		if in.Dst != "" {
			e.vars[in.Dst] = value{}
		}
		return
	}
	// Steal attributes: the reference escapes into the callee.
	for _, idx := range api.Steals {
		if idx < len(in.Args) && in.Args[idx].Kind == ir.ValVar {
			if v, ok := e.vars[in.Args[idx].Var]; ok && v.obj != nil {
				v.obj.steals++
			}
		}
	}
	// Refcount changes from the success entry (optimistic; null-branch
	// refinement undoes failed allocations).
	entry := api.Summary.Entries[0]
	for _, ch := range entry.Changes {
		rc := ch.RC
		// Only [param].rc and [0].rc shapes occur in the predefined specs.
		base := rc
		for base.Base != nil {
			base = base.Base
		}
		switch {
		case base.Key() == "[0]":
			if api.NewRef && in.Dst != "" {
				o := e.newObject(fmt.Sprintf("%s result", in.Fn), false)
				o.netRC += ch.Delta
				e.bind(in.Dst, value{obj: o})
			}
		default:
			// An argument's refcount.
			for i, prm := range api.Params {
				if "["+prm+"]" == base.Key() && i < len(in.Args) && in.Args[i].Kind == ir.ValVar {
					if v, ok := e.vars[in.Args[i].Var]; ok && v.obj != nil {
						v.obj.netRC += ch.Delta
					}
				}
			}
		}
	}
	if in.Dst != "" && !api.NewRef {
		// Borrowed-reference getters yield untracked values.
		e.vars[in.Dst] = value{}
	}
}
