// Package pungi implements a Pungi-style checker (S. Li & G. Tan, ECOOP
// 2014), the second comparison point of the paper's §2.1: the same escape
// rule as Cpychecker — an object's net refcount change must equal the
// references escaping the function — but evaluated per path on an
// SSA-style value tracking, so variable reassignment does not confuse it.
//
// The paper's §2.1 makes two claims this package makes testable:
//
//  1. "Theoretically any bug found by RID (using a weaker property) should
//     be detectable by the methods of Pungi ... if the same analysis
//     techniques (e.g. SSA form) are adopted" — on the Python/C corpora,
//     pungi's findings are a superset of RID's per-object leak findings.
//  2. "wrappers to the basic refcount APIs ... are always considered an
//     error according to the rule above" — pungi (like Cpychecker) flags
//     every wrapper, the false-positive class that motivates RID's weaker
//     property.
package pungi

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/frontend/token"
	"repro/internal/ir"
	"repro/internal/spec"
)

// Report is one escape-rule violation found on some path.
type Report struct {
	Fn     string
	Object string
	Net    int
	Want   int
	Pos    token.Pos
}

// Key deduplicates per function and object.
func (r *Report) Key() string { return r.Fn + "\x00" + r.Object }

func (r *Report) String() string {
	kind := "leak"
	if r.Net < r.Want {
		kind = "over-decrement"
	}
	return fmt.Sprintf("%s: function %s: %s of %s (net %+d, escapes %d)",
		r.Pos, r.Fn, kind, r.Object, r.Net, r.Want)
}

// Config bounds per-function exploration.
type Config struct {
	MaxPaths int // default 100
}

// Checker runs the SSA-style escape rule.
type Checker struct {
	specs *spec.Specs
	cfg   Config
}

// New returns a checker over the given API specifications.
func New(specs *spec.Specs, cfg Config) *Checker {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 100
	}
	return &Checker{specs: specs, cfg: cfg}
}

// Check analyzes every defined function.
func (c *Checker) Check(prog *ir.Program) []*Report {
	var out []*Report
	seen := make(map[string]bool)
	for _, name := range prog.Order {
		for _, r := range c.checkFunc(prog.Funcs[name]) {
			if !seen[r.Key()] {
				seen[r.Key()] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// object tracks one reference-counted value along a path.
type object struct {
	id     int
	desc   string
	isArg  bool
	net    int
	steals int
	isNull bool
}

type env struct {
	vars      map[string]*object // SSA-style: rebinding replaces cleanly
	objs      []*object
	nullTests map[string]nullTest
}

type nullTest struct {
	varName string
	eqNull  bool
}

func (c *Checker) checkFunc(fn *ir.Func) []*Report {
	g := cfg.New(fn)
	enum := g.Enumerate(c.cfg.MaxPaths)
	var out []*Report
	for _, p := range enum.Paths {
		out = append(out, c.checkPath(fn, p)...)
	}
	return out
}

func (c *Checker) checkPath(fn *ir.Func, p cfg.Path) []*Report {
	e := &env{vars: make(map[string]*object), nullTests: make(map[string]nullTest)}
	newObj := func(desc string, isArg bool) *object {
		o := &object{id: len(e.objs), desc: desc, isArg: isArg}
		e.objs = append(e.objs, o)
		return o
	}
	for _, prm := range fn.Params {
		e.vars[prm] = newObj("arg "+prm, true)
	}

	var returned *object
	hasReturn := false
	blocks := p.Blocks
	for bi, b := range blocks {
		blk := fn.Blocks[b]
		next := -1
		if bi+1 < len(blocks) {
			next = blocks[bi+1]
		}
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpAssign:
				if in.Val.Kind == ir.ValVar {
					// SSA-style rebinding: the destination simply refers to
					// the source's object from here on.
					e.vars[in.Dst] = e.vars[in.Val.Var]
				} else {
					e.vars[in.Dst] = nil
				}
			case ir.OpLoadField, ir.OpRandom:
				e.vars[in.Dst] = nil
			case ir.OpCompare:
				e.vars[in.Dst] = nil
				c.recordNullTest(e, in)
			case ir.OpCall:
				c.applyCall(e, in, newObj)
			case ir.OpBranchCond:
				c.refine(e, in, next)
			case ir.OpReturn:
				hasReturn = true
				if in.HasVal && in.Val.Kind == ir.ValVar {
					returned = e.vars[in.Val.Var]
				}
			}
		}
	}
	if !hasReturn {
		return nil
	}

	var out []*Report
	for _, o := range e.objs {
		if o.isNull {
			continue
		}
		want := o.steals
		if returned != nil && returned.id == o.id {
			want++
		}
		if o.net != want {
			out = append(out, &Report{Fn: fn.Name, Object: o.desc, Net: o.net, Want: want, Pos: fn.Pos})
		}
	}
	return out
}

func (c *Checker) recordNullTest(e *env, in *ir.Instr) {
	var varSide, other ir.Value
	if in.A.Kind == ir.ValVar {
		varSide, other = in.A, in.B
	} else if in.B.Kind == ir.ValVar {
		varSide, other = in.B, in.A
	} else {
		return
	}
	isNull := other.Kind == ir.ValNull || (other.Kind == ir.ValInt && other.Int == 0)
	if !isNull {
		return
	}
	switch in.Pred {
	case ir.EQ:
		e.nullTests[in.Dst] = nullTest{varSide.Var, true}
	case ir.NE:
		e.nullTests[in.Dst] = nullTest{varSide.Var, false}
	}
}

func (c *Checker) refine(e *env, in *ir.Instr, next int) {
	if in.Cond.Kind != ir.ValVar || next < 0 || in.True == in.False {
		return
	}
	nt, ok := e.nullTests[in.Cond.Var]
	if !ok {
		return
	}
	if isNull := nt.eqNull == (next == in.True); isNull {
		if o := e.vars[nt.varName]; o != nil {
			o.isNull = true
		}
	}
}

func (c *Checker) applyCall(e *env, in *ir.Instr, newObj func(string, bool) *object) {
	api := c.specs.APIs[in.Fn]
	if api == nil {
		if in.Dst != "" {
			e.vars[in.Dst] = nil
		}
		return
	}
	for _, idx := range api.Steals {
		if idx < len(in.Args) && in.Args[idx].Kind == ir.ValVar {
			if o := e.vars[in.Args[idx].Var]; o != nil {
				o.steals++
			}
		}
	}
	entry := api.Summary.Entries[0] // optimistic; null refinement undoes
	for _, ch := range entry.Changes {
		base := ch.RC
		for base.Base != nil {
			base = base.Base
		}
		switch {
		case base.Key() == "[0]":
			if api.NewRef && in.Dst != "" {
				o := newObj(fmt.Sprintf("%s result", in.Fn), false)
				o.net += ch.Delta
				e.vars[in.Dst] = o
			}
		default:
			for i, prm := range api.Params {
				if "["+prm+"]" == base.Key() && i < len(in.Args) && in.Args[i].Kind == ir.ValVar {
					if o := e.vars[in.Args[i].Var]; o != nil {
						o.net += ch.Delta
					}
				}
			}
		}
	}
	if in.Dst != "" && !api.NewRef {
		e.vars[in.Dst] = nil
	}
}
