package pungi

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus/pycgen"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

func check(t *testing.T, src string) []*Report {
	t.Helper()
	prog, err := lower.SourceString("m.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return New(spec.PythonC(), Config{}).Check(prog)
}

func hits(rs []*Report) map[string]bool {
	out := map[string]bool{}
	for _, r := range rs {
		out[r.Fn] = true
	}
	return out
}

func TestReassignmentBugCaught(t *testing.T) {
	// The non-SSA Cpychecker baseline misses this; Pungi's SSA tracking
	// does not (the paper's §2.1 point about SSA form).
	src := `
PyObject *remake(void) {
    PyObject *o;
    o = PyList_New(1);
    if (o == NULL)
        return NULL;
    o = PyList_New(2);
    if (o == NULL)
        return NULL;
    return o;
}
`
	rs := check(t, src)
	if !hits(rs)["remake"] {
		t.Fatalf("reassignment leak missed: %v", rs)
	}
}

func TestConsistentLeakCaught(t *testing.T) {
	src := `
int always_leak(PyObject *o) {
    Py_INCREF(o);
    return 0;
}
`
	if !hits(check(t, src))["always_leak"] {
		t.Fatal("consistent leak missed")
	}
}

func TestCleanCodeSilent(t *testing.T) {
	src := `
int fill(PyObject *o);
PyObject *make(PyObject *a) {
    PyObject *o;
    o = PyList_New(1);
    if (o == NULL)
        return NULL;
    if (fill(o) < 0) {
        Py_DECREF(o);
        return NULL;
    }
    return o;
}
`
	if rs := check(t, src); len(rs) != 0 {
		t.Fatalf("clean code flagged: %v", rs)
	}
}

func TestWrapperAlwaysFlagged(t *testing.T) {
	// §2.1: "wrappers to the basic refcount APIs ... are always considered
	// an error according to the rule above."
	src := `
void my_incref(PyObject *o) {
    Py_INCREF(o);
}
void my_decref(PyObject *o) {
    Py_DECREF(o);
}
`
	h := hits(check(t, src))
	if !h["my_incref"] || !h["my_decref"] {
		t.Fatalf("wrappers must be flagged: %v", h)
	}
}

// The §2.1 superset claim: on the Python/C corpus, the stronger
// (SSA-based) escape rule finds every bug class — common, RID-only AND
// Cpychecker-only — with the wrapper-style FPs as the price.
func TestSupersetOnPycgenCorpus(t *testing.T) {
	m := pycgen.Generate(pycgen.Config{Name: "sup", Seed: 55, Mix: pycgen.Mix{
		Common: 6, RIDOnly: 6, CpyOnly: 6, Correct: 8,
	}})
	prog := ir.NewProgram()
	for name, src := range m.Files {
		f, err := parser.ParseFile(name, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatal(err)
		}
	}
	specs := spec.PythonC()
	pungiHits := hits(New(specs, Config{}).Check(prog))
	res := core.Analyze(context.Background(), prog, specs, core.Options{})
	ridHits := map[string]bool{}
	for _, r := range res.Reports {
		ridHits[r.Fn] = true
	}

	for fn, cls := range m.Truth {
		switch cls {
		case pycgen.ClassCommon, pycgen.ClassRIDOnly, pycgen.ClassCpyOnly:
			if !pungiHits[fn] {
				t.Errorf("pungi missed %s (%s)", fn, cls)
			}
		case pycgen.ClassCorrect:
			if pungiHits[fn] {
				t.Errorf("pungi false positive on %s", fn)
			}
		}
		// Superset of RID on bug functions.
		if ridHits[fn] && !pungiHits[fn] {
			t.Errorf("RID found %s but pungi did not — violates the §2.1 claim", fn)
		}
	}
}
