// Package lower translates the mini-C AST into the abstract IR of the RID
// paper (internal/ir).
//
// The translation implements the paper's program abstraction (§4.1 and
// §5.4): relational comparisons, field loads, calls, branches and returns
// are preserved; arithmetic, bit operations, stores through pointers and
// array indexing are abstracted to random (non-deterministic) values;
// assert() becomes an assume on the path; short-circuit && and || become
// explicit control flow.
package lower

import (
	"fmt"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/parser"
	"repro/internal/frontend/token"
	"repro/internal/ir"
)

// Options tunes the abstraction.
type Options struct {
	// PreserveBitTests models "x & CONST" as a stable uninterpreted term
	// keyed by the operand and mask instead of a fresh random value. Two
	// syntactically identical bit tests then denote the same symbolic
	// value, which makes mask-guarded path pairs distinguishable and
	// eliminates the §6.4 bit-operation false positives — the extension
	// the paper sketches as future work ("SMT BitVector Theory"). Off by
	// default for fidelity with the paper's evaluation.
	PreserveBitTests bool
}

// File lowers a parsed file into a fresh program.
func File(f *ast.File) (*ir.Program, error) {
	return FileOpts(f, Options{})
}

// FileOpts lowers a parsed file with explicit abstraction options.
func FileOpts(f *ast.File, opts Options) (*ir.Program, error) {
	p := ir.NewProgram()
	if err := IntoOpts(p, f, opts); err != nil {
		return nil, err
	}
	return p, nil
}

// Into lowers a parsed file into an existing program (multi-file mode).
func Into(p *ir.Program, f *ast.File) error {
	return IntoOpts(p, f, Options{})
}

// IntoOpts lowers a parsed file into an existing program with explicit
// abstraction options.
func IntoOpts(p *ir.Program, f *ast.File, opts Options) error {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue // globals are havoc; nothing to lower
		}
		if fd.Body == nil {
			p.AddExtern(fd.Name)
			continue
		}
		fn, err := lowerFunc(fd, f.Name, opts)
		if err != nil {
			return err
		}
		p.Add(fn)
	}
	return nil
}

// SourceString parses and lowers mini-C source text; filename is used in
// positions. It is the one-call entry used by tests, examples and tools.
func SourceString(filename, src string) (*ir.Program, error) {
	return SourceStringOpts(filename, src, Options{})
}

// SourceStringOpts parses and lowers with explicit abstraction options.
func SourceStringOpts(filename, src string, opts Options) (*ir.Program, error) {
	f, err := parser.ParseFile(filename, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", filename, err)
	}
	return FileOpts(f, opts)
}

// ---------------------------------------------------------------------------

type loweringError struct {
	pos token.Pos
	msg string
}

func (e *loweringError) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.msg) }

type funcLowerer struct {
	opts    Options
	fn      *ir.Func
	cur     *ir.Block
	ntemp   int
	labels  map[string]*ir.Block
	gotos   []pendingGoto
	brk     []*ir.Block // break target stack
	cont    []*ir.Block // continue target stack
	deadCnt int
}

type pendingGoto struct {
	block *ir.Block // block whose terminator must be patched
	label string
	pos   token.Pos
}

func lowerFunc(fd *ast.FuncDecl, srcFile string, opts Options) (*ir.Func, error) {
	fn := &ir.Func{
		Name:    fd.Name,
		HasRet:  !fd.Result.IsVoid(),
		Pos:     fd.P,
		SrcFile: srcFile,
	}
	for i, prm := range fd.Params {
		name := prm.Name
		if name == "" {
			name = fmt.Sprintf("arg%d", i)
		}
		fn.Params = append(fn.Params, name)
	}
	lw := &funcLowerer{opts: opts, fn: fn, labels: make(map[string]*ir.Block)}
	lw.cur = fn.NewBlock()
	lw.stmt(fd.Body)
	lw.terminateWithReturn(fd.P)
	if err := lw.patchGotos(); err != nil {
		return nil, err
	}
	// Seal dead continuation blocks (after return/goto/break) so every
	// block satisfies the terminator invariant.
	for _, b := range fn.Blocks {
		if b.Terminator() == nil {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpReturn, HasVal: false, Pos: fd.P})
		}
	}
	// Count conditional branches for the §5.2 category-2 complexity gate.
	for _, b := range fn.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpBranchCond && t.True != t.False {
			fn.NumConds++
		}
	}
	return fn, nil
}

func (lw *funcLowerer) emit(in *ir.Instr) {
	if lw.cur.Terminator() != nil {
		// Unreachable code after return/goto: drop it.
		lw.deadCnt++
		return
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

func (lw *funcLowerer) temp() string {
	lw.ntemp++
	return fmt.Sprintf("%%t%d", lw.ntemp)
}

// jump terminates the current block with an unconditional branch if it has
// no terminator yet, then makes target the current block.
func (lw *funcLowerer) jumpTo(target *ir.Block) {
	if lw.cur.Terminator() == nil {
		lw.emit(&ir.Instr{Op: ir.OpBranch, Target: target.Index})
	}
	lw.cur = target
}

// terminateWithReturn seals the (possibly fallen-off) end of the function.
func (lw *funcLowerer) terminateWithReturn(pos token.Pos) {
	if lw.cur.Terminator() == nil {
		lw.emit(&ir.Instr{Op: ir.OpReturn, HasVal: false, Pos: pos})
	}
}

func (lw *funcLowerer) patchGotos() error {
	for _, g := range lw.gotos {
		target, ok := lw.labels[g.label]
		if !ok {
			return &loweringError{g.pos, fmt.Sprintf("goto to undefined label %q", g.label)}
		}
		t := g.block.Terminator()
		t.Target = target.Index
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (lw *funcLowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.Stmts {
			lw.stmt(inner)
		}
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		if s.Init != nil {
			lw.exprInto(s.Name, s.Init)
		}
	case *ast.ExprStmt:
		lw.exprForEffect(s.X)
	case *ast.IfStmt:
		lw.ifStmt(s)
	case *ast.WhileStmt:
		lw.whileStmt(s)
	case *ast.DoWhileStmt:
		lw.doWhileStmt(s)
	case *ast.ForStmt:
		lw.forStmt(s)
	case *ast.SwitchStmt:
		lw.switchStmt(s)
	case *ast.GotoStmt:
		if lw.cur.Terminator() == nil {
			lw.emit(&ir.Instr{Op: ir.OpBranch, Target: -1, Pos: s.P})
			lw.gotos = append(lw.gotos, pendingGoto{lw.cur, s.Label, s.P})
			lw.cur = lw.fn.NewBlock() // dead continuation
		}
	case *ast.LabeledStmt:
		target := lw.fn.NewBlock()
		lw.labels[s.Label] = target
		lw.jumpTo(target)
		lw.stmt(s.Stmt)
	case *ast.ReturnStmt:
		if lw.cur.Terminator() != nil {
			return
		}
		if s.X != nil {
			v := lw.expr(s.X)
			lw.emit(&ir.Instr{Op: ir.OpReturn, Val: v, HasVal: true, Pos: s.P})
		} else {
			lw.emit(&ir.Instr{Op: ir.OpReturn, HasVal: false, Pos: s.P})
		}
		lw.cur = lw.fn.NewBlock()
	case *ast.BreakStmt:
		if n := len(lw.brk); n > 0 && lw.cur.Terminator() == nil {
			lw.emit(&ir.Instr{Op: ir.OpBranch, Target: lw.brk[n-1].Index, Pos: s.P})
			lw.cur = lw.fn.NewBlock() // dead continuation
		}
	case *ast.ContinueStmt:
		if n := len(lw.cont); n > 0 && lw.cur.Terminator() == nil {
			lw.emit(&ir.Instr{Op: ir.OpBranch, Target: lw.cont[n-1].Index, Pos: s.P})
			lw.cur = lw.fn.NewBlock()
		}
	case *ast.AssertStmt:
		c := lw.condValue(s.X)
		lw.emit(&ir.Instr{Op: ir.OpAssume, Cond: c, Pos: s.P})
	case *ast.AsmStmt:
		// Opaque; no effect in the abstraction.
	default:
		// Unknown statement kinds are abstracted away.
	}
}

func (lw *funcLowerer) ifStmt(s *ast.IfStmt) {
	thenB := lw.fn.NewBlock()
	exitB := lw.fn.NewBlock()
	elseB := exitB
	if s.Else != nil {
		elseB = lw.fn.NewBlock()
	}
	lw.cond(s.Cond, thenB, elseB)
	lw.cur = thenB
	lw.stmt(s.Then)
	lw.jumpTo(exitB)
	if s.Else != nil {
		lw.cur = elseB
		lw.stmt(s.Else)
		lw.jumpTo(exitB)
	}
	lw.cur = exitB
}

func (lw *funcLowerer) whileStmt(s *ast.WhileStmt) {
	condB := lw.fn.NewBlock()
	bodyB := lw.fn.NewBlock()
	exitB := lw.fn.NewBlock()
	lw.jumpTo(condB)
	lw.cond(s.Cond, bodyB, exitB)
	lw.brk = append(lw.brk, exitB)
	lw.cont = append(lw.cont, condB)
	lw.cur = bodyB
	lw.stmt(s.Body)
	lw.jumpTo(condB) // back edge
	lw.brk = lw.brk[:len(lw.brk)-1]
	lw.cont = lw.cont[:len(lw.cont)-1]
	lw.cur = exitB
}

func (lw *funcLowerer) doWhileStmt(s *ast.DoWhileStmt) {
	bodyB := lw.fn.NewBlock()
	condB := lw.fn.NewBlock()
	exitB := lw.fn.NewBlock()
	lw.jumpTo(bodyB)
	lw.brk = append(lw.brk, exitB)
	lw.cont = append(lw.cont, condB)
	lw.stmt(s.Body)
	lw.jumpTo(condB)
	lw.cond(s.Cond, bodyB, exitB) // back edge on true
	lw.brk = lw.brk[:len(lw.brk)-1]
	lw.cont = lw.cont[:len(lw.cont)-1]
	lw.cur = exitB
}

func (lw *funcLowerer) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		lw.stmt(s.Init)
	}
	condB := lw.fn.NewBlock()
	bodyB := lw.fn.NewBlock()
	postB := lw.fn.NewBlock()
	exitB := lw.fn.NewBlock()
	lw.jumpTo(condB)
	if s.Cond != nil {
		lw.cond(s.Cond, bodyB, exitB)
	} else {
		lw.emit(&ir.Instr{Op: ir.OpBranch, Target: bodyB.Index})
	}
	lw.brk = append(lw.brk, exitB)
	lw.cont = append(lw.cont, postB)
	lw.cur = bodyB
	lw.stmt(s.Body)
	lw.jumpTo(postB)
	if s.Post != nil {
		lw.exprForEffect(s.Post)
	}
	lw.jumpTo(condB) // back edge
	lw.brk = lw.brk[:len(lw.brk)-1]
	lw.cont = lw.cont[:len(lw.cont)-1]
	lw.cur = exitB
}

func (lw *funcLowerer) switchStmt(s *ast.SwitchStmt) {
	tag := lw.expr(s.Tag)
	exitB := lw.fn.NewBlock()
	lw.brk = append(lw.brk, exitB)

	n := len(s.Cases)
	bodies := make([]*ir.Block, n)
	for i := range s.Cases {
		bodies[i] = lw.fn.NewBlock()
	}
	// Chain of tests; default (if any) is the final fallback.
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.IsDefault {
			defaultIdx = i
		}
	}
	fallback := exitB
	if defaultIdx >= 0 {
		fallback = bodies[defaultIdx]
	}
	for i, c := range s.Cases {
		if c.IsDefault {
			continue
		}
		v := lw.expr(c.Value)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: t, Pred: ir.EQ, A: tag, B: v, Pos: c.P})
		next := lw.fn.NewBlock()
		lw.emit(&ir.Instr{Op: ir.OpBranchCond, Cond: ir.Var(t), True: bodies[i].Index, False: next.Index, Pos: c.P})
		lw.cur = next
	}
	lw.jumpTo(fallback)
	// Case bodies with C fallthrough.
	for i, c := range s.Cases {
		lw.cur = bodies[i]
		for _, st := range c.Body {
			lw.stmt(st)
		}
		if i+1 < n {
			lw.jumpTo(bodies[i+1])
		} else {
			lw.jumpTo(exitB)
		}
	}
	lw.brk = lw.brk[:len(lw.brk)-1]
	lw.cur = exitB
}

// ---------------------------------------------------------------------------
// Conditions

// cond lowers a boolean expression as control flow into trueB / falseB.
func (lw *funcLowerer) cond(e ast.Expr, trueB, falseB *ir.Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := lw.fn.NewBlock()
			lw.cond(e.X, mid, falseB)
			lw.cur = mid
			lw.cond(e.Y, trueB, falseB)
			return
		case token.LOR:
			mid := lw.fn.NewBlock()
			lw.cond(e.X, trueB, mid)
			lw.cur = mid
			lw.cond(e.Y, trueB, falseB)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			lw.cond(e.X, falseB, trueB)
			return
		}
	}
	v := lw.condValue(e)
	lw.emit(&ir.Instr{Op: ir.OpBranchCond, Cond: v, True: trueB.Index, False: falseB.Index, Pos: e.Pos()})
}

// condValue lowers a boolean expression to a value suitable for branch or
// assume: a comparison temp when the source has a relational operator, or
// the raw value otherwise (the symbolic executor treats a non-boolean
// value v as v != 0).
func (lw *funcLowerer) condValue(e ast.Expr) ir.Value {
	if be, ok := e.(*ast.BinaryExpr); ok {
		if pred, isCmp := ir.PredFromToken(be.Op); isCmp {
			a := lw.expr(be.X)
			b := lw.expr(be.Y)
			t := lw.temp()
			lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: t, Pred: pred, A: a, B: b, Pos: be.P})
			return ir.Var(t)
		}
	}
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		// !x as a value: x == 0.
		a := lw.expr(ue.X)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: t, Pred: ir.EQ, A: a, B: ir.Int(0), Pos: ue.P})
		return ir.Var(t)
	}
	return lw.expr(e)
}

// ---------------------------------------------------------------------------
// Expressions

// exprForEffect lowers an expression whose value is discarded.
func (lw *funcLowerer) exprForEffect(e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		args := lw.args(e.Args)
		lw.emit(&ir.Instr{Op: ir.OpCall, Fn: e.Fun, Args: args, Pos: e.P})
	case *ast.AssignExpr:
		lw.assign(e)
	case *ast.IncDecExpr:
		lw.incDec(e)
	default:
		_ = lw.expr(e) // evaluate for side effects (nested calls)
	}
}

func (lw *funcLowerer) args(in []ast.Expr) []ir.Value {
	out := make([]ir.Value, len(in))
	for i, a := range in {
		out[i] = lw.expr(a)
	}
	return out
}

func (lw *funcLowerer) assign(e *ast.AssignExpr) {
	switch lhs := e.LHS.(type) {
	case *ast.Ident:
		if e.Op != token.ASSIGN {
			// x += e is arithmetic: abstracted to random (§4.1 — refcounts
			// are only changed via APIs, plain arithmetic is ignored).
			_ = lw.expr(e.RHS)
			lw.emit(&ir.Instr{Op: ir.OpRandom, Dst: lhs.Name, Pos: e.P})
			return
		}
		lw.exprInto(lhs.Name, e.RHS)
	case *ast.FieldExpr, *ast.IndexExpr, *ast.UnaryExpr:
		// Store through memory: outside the abstraction (§5.4, first
		// limitation). Evaluate both sides for call effects and drop.
		_ = lw.expr(e.LHS)
		_ = lw.expr(e.RHS)
	default:
		_ = lw.expr(e.RHS)
	}
}

func (lw *funcLowerer) incDec(e *ast.IncDecExpr) {
	if id, ok := e.X.(*ast.Ident); ok {
		lw.emit(&ir.Instr{Op: ir.OpRandom, Dst: id.Name, Pos: e.P})
	}
}

// exprInto lowers e and binds the result to the named destination,
// emitting the defining instruction directly into dst when possible.
func (lw *funcLowerer) exprInto(dst string, e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		args := lw.args(e.Args)
		lw.emit(&ir.Instr{Op: ir.OpCall, Dst: dst, Fn: e.Fun, Args: args, Pos: e.P})
	case *ast.FieldExpr:
		obj := lw.expr(e.X)
		lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: dst, Obj: obj, Field: e.Name, Pos: e.P})
	case *ast.RandomExpr:
		lw.emit(&ir.Instr{Op: ir.OpRandom, Dst: dst, Pos: e.P})
	case *ast.BinaryExpr:
		if pred, isCmp := ir.PredFromToken(e.Op); isCmp {
			a := lw.expr(e.X)
			b := lw.expr(e.Y)
			lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: dst, Pred: pred, A: a, B: b, Pos: e.P})
			return
		}
		v := lw.expr(e)
		lw.emit(&ir.Instr{Op: ir.OpAssign, Dst: dst, Val: v, Pos: e.P})
	default:
		v := lw.expr(e)
		lw.emit(&ir.Instr{Op: ir.OpAssign, Dst: dst, Val: v, Pos: e.Pos()})
	}
}

// expr lowers an expression to a Value, emitting instructions as needed.
func (lw *funcLowerer) expr(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.Ident:
		return ir.Var(e.Name)
	case *ast.IntLit:
		return ir.Int(e.Value)
	case *ast.BoolLit:
		return ir.Bool(e.Value)
	case *ast.NullLit:
		return ir.Null()
	case *ast.RandomExpr:
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpRandom, Dst: t, Pos: e.P})
		return ir.Var(t)
	case *ast.FieldExpr:
		obj := lw.expr(e.X)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: t, Obj: obj, Field: e.Name, Pos: e.P})
		return ir.Var(t)
	case *ast.CallExpr:
		args := lw.args(e.Args)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpCall, Dst: t, Fn: e.Fun, Args: args, Pos: e.P})
		return ir.Var(t)
	case *ast.UnaryExpr:
		return lw.unary(e)
	case *ast.BinaryExpr:
		return lw.binary(e)
	case *ast.AssignExpr:
		lw.assign(e)
		if id, ok := e.LHS.(*ast.Ident); ok {
			return ir.Var(id.Name)
		}
		return lw.havoc(e.P)
	case *ast.IncDecExpr:
		lw.incDec(e)
		if id, ok := e.X.(*ast.Ident); ok {
			return ir.Var(id.Name)
		}
		return lw.havoc(e.P)
	case *ast.IndexExpr:
		_ = lw.expr(e.X)
		_ = lw.expr(e.Index)
		return lw.havoc(e.P)
	case *ast.CondExpr:
		// No ternary in the grammar today; kept for completeness.
		_ = lw.expr(e.Cond)
		_ = lw.expr(e.Then)
		_ = lw.expr(e.Else)
		return lw.havoc(e.P)
	}
	return lw.havoc(e.Pos())
}

// havoc materializes an unknown value (the random generator of Figure 3).
func (lw *funcLowerer) havoc(pos token.Pos) ir.Value {
	t := lw.temp()
	lw.emit(&ir.Instr{Op: ir.OpRandom, Dst: t, Pos: pos})
	return ir.Var(t)
}

func (lw *funcLowerer) unary(e *ast.UnaryExpr) ir.Value {
	switch e.Op {
	case token.NOT:
		a := lw.expr(e.X)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: t, Pred: ir.EQ, A: a, B: ir.Int(0), Pos: e.P})
		return ir.Var(t)
	case token.MINUS:
		// Negation of a literal stays precise; otherwise havoc.
		if lit, ok := e.X.(*ast.IntLit); ok {
			return ir.Int(-lit.Value)
		}
		_ = lw.expr(e.X)
		return lw.havoc(e.P)
	case token.AMP:
		// &x->f denotes the field object itself: same symbolic identity as
		// the field load (this is how "&intf->dev" reaches DPM APIs).
		if fe, ok := e.X.(*ast.FieldExpr); ok {
			obj := lw.expr(fe.X)
			t := lw.temp()
			lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: t, Obj: obj, Field: fe.Name, Pos: e.P})
			return ir.Var(t)
		}
		_ = lw.expr(e.X)
		return lw.havoc(e.P)
	case token.STAR:
		// Pointer dereference: model as loading the distinguished "deref"
		// field so *p keeps a stable symbolic identity.
		obj := lw.expr(e.X)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: t, Obj: obj, Field: "*", Pos: e.P})
		return ir.Var(t)
	case token.TILDE:
		_ = lw.expr(e.X)
		return lw.havoc(e.P)
	}
	_ = lw.expr(e.X)
	return lw.havoc(e.P)
}

func (lw *funcLowerer) binary(e *ast.BinaryExpr) ir.Value {
	if pred, isCmp := ir.PredFromToken(e.Op); isCmp {
		a := lw.expr(e.X)
		b := lw.expr(e.Y)
		t := lw.temp()
		lw.emit(&ir.Instr{Op: ir.OpCompare, Dst: t, Pred: pred, A: a, B: b, Pos: e.P})
		return ir.Var(t)
	}
	switch e.Op {
	case token.LAND, token.LOR:
		// Value position: lower via control flow into a temp.
		t := lw.temp()
		trueB := lw.fn.NewBlock()
		falseB := lw.fn.NewBlock()
		exitB := lw.fn.NewBlock()
		lw.cond(e, trueB, falseB)
		lw.cur = trueB
		lw.emit(&ir.Instr{Op: ir.OpAssign, Dst: t, Val: ir.Bool(true), Pos: e.P})
		lw.jumpTo(exitB)
		lw.cur = falseB
		lw.emit(&ir.Instr{Op: ir.OpAssign, Dst: t, Val: ir.Bool(false), Pos: e.P})
		lw.jumpTo(exitB)
		lw.cur = exitB
		return ir.Var(t)
	}
	if lw.opts.PreserveBitTests && e.Op == token.AMP {
		// "x & CONST": model as the stable pseudo-field x.&CONST so two
		// identical bit tests denote one symbolic value (see Options).
		if lit, ok := e.Y.(*ast.IntLit); ok {
			base := lw.expr(e.X)
			t := lw.temp()
			lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: t, Obj: base, Field: fmt.Sprintf("&%d", lit.Value), Pos: e.P})
			return ir.Var(t)
		}
		if lit, ok := e.X.(*ast.IntLit); ok {
			base := lw.expr(e.Y)
			t := lw.temp()
			lw.emit(&ir.Instr{Op: ir.OpLoadField, Dst: t, Obj: base, Field: fmt.Sprintf("&%d", lit.Value), Pos: e.P})
			return ir.Var(t)
		}
	}
	// All remaining binary operators (arithmetic, bit ops, shifts) are
	// outside the abstraction: evaluate operands for effect, havoc result.
	// This is the documented false-positive source of §6.4.
	_ = lw.expr(e.X)
	_ = lw.expr(e.Y)
	return lw.havoc(e.P)
}
