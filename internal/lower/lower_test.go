package lower

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func mustLower(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := SourceString("test.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return p
}

func TestLowerFigure1Foo(t *testing.T) {
	src := `
int reg_read(struct device *d, int reg);
void inc_pmcount(struct device *d);

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`
	p := mustLower(t, src)
	foo := p.Funcs["foo"]
	if foo == nil {
		t.Fatal("foo not lowered")
	}
	if !p.Externs["reg_read"] || !p.Externs["inc_pmcount"] {
		t.Errorf("externs: %v", p.Externs)
	}
	text := foo.String()
	for _, want := range []string{"assume", "v = reg_read(dev, 84)", "inc_pmcount(dev)", "return 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in IR:\n%s", want, text)
		}
	}
	if foo.NumConds != 1 {
		t.Errorf("NumConds = %d, want 1", foo.NumConds)
	}
	if len(foo.Callees()) != 2 {
		t.Errorf("callees: %v", foo.Callees())
	}
}

func TestLowerShortCircuit(t *testing.T) {
	src := `
int f(int a, int b) {
    if (a > 0 && b < 5)
        return 1;
    return 0;
}
`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	// Two conditional branches (one per operand of &&).
	if f.NumConds != 2 {
		t.Errorf("NumConds = %d, want 2\n%s", f.NumConds, f)
	}
}

func TestLowerLoopsHaveBackEdges(t *testing.T) {
	src := `
int f(int n) {
    int i = 0;
    while (i < n)
        i = g(i);
    return i;
}
`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	// Find a back edge: an edge to a lower-or-equal indexed block that
	// dominates... here simply an edge from a later block to an earlier one.
	hasBack := false
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s <= b.Index && s != 0 {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Errorf("no back edge found:\n%s", f)
	}
}

func TestLowerArithmeticHavocs(t *testing.T) {
	src := `int f(int a, int b) { int x = a + b; return x; }`
	p := mustLower(t, src)
	text := p.Funcs["f"].String()
	if !strings.Contains(text, "random") {
		t.Errorf("a+b should lower to random:\n%s", text)
	}
}

func TestLowerBitOpsHavoc(t *testing.T) {
	src := `int f(int flags) { if (flags & 4) return 1; return 0; }`
	p := mustLower(t, src)
	text := p.Funcs["f"].String()
	if !strings.Contains(text, "random") {
		t.Errorf("flags&4 should lower to random:\n%s", text)
	}
}

func TestLowerAddressOfFieldIsFieldLoad(t *testing.T) {
	src := `
int g(struct usb_interface *intf) {
    return pm_runtime_get_sync(&intf->dev);
}
`
	p := mustLower(t, src)
	text := p.Funcs["g"].String()
	if !strings.Contains(text, "= intf.dev") {
		t.Errorf("&intf->dev should lower to a field load:\n%s", text)
	}
}

func TestLowerFieldStoreDropped(t *testing.T) {
	src := `
void f(struct device *d) {
    d->flags = 1;
}
`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAssign {
				t.Errorf("field store must not produce an assignment: %s", in)
			}
		}
	}
}

func TestLowerReturnVoid(t *testing.T) {
	src := `void f(void) { g(); }`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	last := f.Blocks[len(f.Blocks)-1]
	term := last.Terminator()
	if term.Op != ir.OpReturn || term.HasVal {
		t.Errorf("void return: %s", term)
	}
}

func TestLowerBreakContinue(t *testing.T) {
	src := `
int f(int n) {
    int i = 0;
    int r = 0;
    while (i < n) {
        i = g(i);
        if (i == 2) continue;
        if (i == 9) break;
        r = h(i);
    }
    return r;
}
`
	mustLower(t, src) // Validate() inside checks all branch targets
}

func TestLowerSwitchFallthrough(t *testing.T) {
	src := `
int f(int n) {
    int r = 0;
    switch (n) {
    case 1:
        r = g(1);
    case 2:
        r = g(2);
        break;
    default:
        r = g(3);
    }
    return r;
}
`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	if f == nil {
		t.Fatal("f missing")
	}
	// All three g calls must be reachable in the IR.
	calls := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Fn == "g" {
				calls++
			}
		}
	}
	if calls != 3 {
		t.Errorf("g calls: %d, want 3", calls)
	}
}

func TestLowerUndefinedGotoFails(t *testing.T) {
	src := `void f(void) { goto nowhere; }`
	_, err := SourceString("t.c", src)
	if err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestLowerMergePrograms(t *testing.T) {
	p1 := mustLower(t, `int a(void) { return b(); }`)
	p2 := mustLower(t, `int b(void) { return 1; }`)
	p1.Merge(p2)
	if p1.Funcs["b"] == nil {
		t.Error("merge lost b")
	}
	if p1.Externs["b"] {
		t.Error("definition should clear extern mark")
	}
}

func TestLowerCalleesDeduplicated(t *testing.T) {
	src := `void f(struct device *d) { g(d); g(d); h(d); }`
	p := mustLower(t, src)
	c := p.Funcs["f"].Callees()
	if len(c) != 2 || c[0] != "g" || c[1] != "h" {
		t.Errorf("callees: %v", c)
	}
}

func TestLowerNestedCallArgs(t *testing.T) {
	src := `int f(struct device *d) { return outer(inner(d), 3); }`
	p := mustLower(t, src)
	text := p.Funcs["f"].String()
	if !strings.Contains(text, "inner(d)") || !strings.Contains(text, "outer(") {
		t.Errorf("nested calls:\n%s", text)
	}
}

func TestLowerDoWhileBackEdge(t *testing.T) {
	src := `
int f(int n) {
    do {
        n = g(n);
    } while (n > 0);
    return n;
}
`
	p := mustLower(t, src)
	f := p.Funcs["f"]
	hasBack := false
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s < b.Index && s != 0 {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Errorf("no back edge:\n%s", f)
	}
}

func TestLowerNegativeLiteral(t *testing.T) {
	src := `int f(void) { return -1; }`
	p := mustLower(t, src)
	text := p.Funcs["f"].String()
	if !strings.Contains(text, "return -1") {
		t.Errorf("negative literal:\n%s", text)
	}
}
