package lower

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func irOf(t *testing.T, src, fn string) string {
	t.Helper()
	p := mustLower(t, src)
	f := p.Funcs[fn]
	if f == nil {
		t.Fatalf("function %s missing", fn)
	}
	return f.String()
}

func TestLowerForLoop(t *testing.T) {
	text := irOf(t, `
int f(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = g(i);
    }
    return acc;
}`, "f")
	if !strings.Contains(text, "branch") || !strings.Contains(text, "g(i)") {
		t.Errorf("for loop IR:\n%s", text)
	}
}

func TestLowerForWithoutCond(t *testing.T) {
	// for(;;) with a break.
	mustLower(t, `
int f(int n) {
    for (;;) {
        if (g(n) < 0)
            break;
    }
    return 0;
}`)
}

func TestLowerForWithDeclInit(t *testing.T) {
	mustLower(t, `
int f(int n) {
    for (int i = 0; i < n; i++)
        g(i);
    return 0;
}`)
}

func TestLowerIncDecHavocs(t *testing.T) {
	text := irOf(t, `int f(int a) { a++; --a; return a; }`, "f")
	if strings.Count(text, "= random") < 2 {
		t.Errorf("inc/dec should havoc:\n%s", text)
	}
}

func TestLowerCompoundAssignHavocs(t *testing.T) {
	text := irOf(t, `int f(int a, int b) { a += b; a -= 2; return a; }`, "f")
	if strings.Count(text, "= random") < 2 {
		t.Errorf("compound assign should havoc:\n%s", text)
	}
}

func TestLowerLogicalOrValuePosition(t *testing.T) {
	// && / || used as a value (not in an if) lowers via control flow.
	text := irOf(t, `int f(int a, int b) { int v = (a > 0) || (b > 0); return v; }`, "f")
	if !strings.Contains(text, "= true") || !strings.Contains(text, "= false") {
		t.Errorf("short-circuit value lowering:\n%s", text)
	}
}

func TestLowerNotInBranch(t *testing.T) {
	p := mustLower(t, `
int f(int a) {
    if (!(a > 0))
        return 1;
    return 0;
}`)
	// !(a>0) swaps the branch targets; still exactly one conditional.
	if p.Funcs["f"].NumConds != 1 {
		t.Errorf("NumConds: %d", p.Funcs["f"].NumConds)
	}
}

func TestLowerNotOfVariable(t *testing.T) {
	text := irOf(t, `int f(int a) { int v = !a; return v; }`, "f")
	if !strings.Contains(text, "a == 0") {
		t.Errorf("!a should lower to a == 0:\n%s", text)
	}
}

func TestLowerUnaryMinus(t *testing.T) {
	text := irOf(t, `int f(int a) { int v = -a; return v; }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("-a (non-literal) should havoc:\n%s", text)
	}
}

func TestLowerDereference(t *testing.T) {
	text := irOf(t, `int f(int *p) { int v = *p; return v; }`, "f")
	if !strings.Contains(text, "p.*") {
		t.Errorf("*p should load the deref pseudo-field:\n%s", text)
	}
}

func TestLowerAddressOfLocalHavocs(t *testing.T) {
	text := irOf(t, `int f(int a) { int v = g(&a); return v; }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("&local should havoc:\n%s", text)
	}
}

func TestLowerIndexHavocs(t *testing.T) {
	text := irOf(t, `int f(int *p, int i) { int v = p[i]; return v; }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("p[i] should havoc:\n%s", text)
	}
}

func TestLowerBitNotHavocs(t *testing.T) {
	text := irOf(t, `int f(int a) { int v = ~a; return v; }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("~a should havoc:\n%s", text)
	}
}

func TestLowerShiftHavocs(t *testing.T) {
	text := irOf(t, `int f(int a) { int v = a << 2; int w = a >> 1; return v; }`, "f")
	if strings.Count(text, "random") < 2 {
		t.Errorf("shifts should havoc:\n%s", text)
	}
}

func TestLowerAssignAsExpression(t *testing.T) {
	// if ((v = g(a)) != 0) — assignment in value position.
	p := mustLower(t, `
int f(int a) {
    int v;
    if ((v = g(a)) != 0)
        return v;
    return 0;
}`)
	text := p.Funcs["f"].String()
	if !strings.Contains(text, "v = g(a)") {
		t.Errorf("assignment expression:\n%s", text)
	}
}

func TestLowerSizeofHavocs(t *testing.T) {
	text := irOf(t, `int f(void) { int v = sizeof(struct device); return v; }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("sizeof should havoc:\n%s", text)
	}
}

func TestLowerStringArgHavocs(t *testing.T) {
	text := irOf(t, `int f(struct device *d) { return dev_err(d, "boom"); }`, "f")
	if !strings.Contains(text, "random") {
		t.Errorf("string literal arg should havoc:\n%s", text)
	}
}

func TestLowerComparisonChainPrecedence(t *testing.T) {
	// a + b < c parses as (a+b) < c; the havocked sum feeds the compare.
	text := irOf(t, `int f(int a, int b, int c) { if (a + b < c) return 1; return 0; }`, "f")
	if !strings.Contains(text, "< c") {
		t.Errorf("comparison:\n%s", text)
	}
}

func TestLowerConditionOnCallResult(t *testing.T) {
	text := irOf(t, `
int f(struct device *d) {
    if (hw_ready(d))
        return 1;
    return 0;
}`, "f")
	// Branch directly on the call result temp (symexec wraps as != 0).
	if !strings.Contains(text, "hw_ready(d)") {
		t.Errorf("call condition:\n%s", text)
	}
}

func TestLowerEmptyFunctionBody(t *testing.T) {
	p := mustLower(t, `void f(void) { }`)
	f := p.Funcs["f"]
	if f.Blocks[0].Terminator().Op != ir.OpReturn {
		t.Errorf("empty body must return:\n%s", f)
	}
}

func TestLowerSourceStringParseError(t *testing.T) {
	if _, err := SourceString("bad.c", "int f( {"); err == nil {
		t.Fatal("expected error")
	}
}
