package slice

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
)

func fn(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs[name]
	if f == nil {
		t.Fatalf("function %s not found", name)
	}
	return f
}

func refcountCalls(names ...string) func(string) bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(c string) bool { return set[c] }
}

func TestHelperFeedingErrorCheckIsInSlice(t *testing.T) {
	f := fn(t, `
int driver(struct device *dev) {
    int st;
    st = helper(dev);
    if (st < 0)
        return st;
    pm_get(dev);
    pm_put(dev);
    return 0;
}`, "driver")
	res := Compute(f, Criteria{ReturnValue: true, ArgsOfCallsTo: refcountCalls("pm_get", "pm_put")})
	if !res.CalleesInSlice["helper"] {
		t.Errorf("helper must be in the slice: %+v", res.CalleesInSlice)
	}
}

func TestUnrelatedCallNotInSlice(t *testing.T) {
	f := fn(t, `
void driver(struct device *dev) {
    log_stuff(dev);
    pm_get(dev);
    pm_put(dev);
}`, "driver")
	res := Compute(f, Criteria{ArgsOfCallsTo: refcountCalls("pm_get", "pm_put")})
	if res.CalleesInSlice["log_stuff"] {
		t.Error("log_stuff result is unused; it must not be in the slice")
	}
}

func TestReturnValueCriterion(t *testing.T) {
	f := fn(t, `
int probe(struct device *dev) {
    int v;
    v = read_status(dev);
    return v;
}`, "probe")
	res := Compute(f, Criteria{ReturnValue: true})
	if !res.CalleesInSlice["read_status"] {
		t.Error("value returned comes from read_status; it must be in the slice")
	}
	// Without the return criterion nothing seeds the slice.
	res2 := Compute(f, Criteria{})
	if len(res2.CalleesInSlice) != 0 {
		t.Errorf("no criteria, but slice has %v", res2.CalleesInSlice)
	}
}

func TestArgumentDataDependency(t *testing.T) {
	f := fn(t, `
void driver(struct device *parent) {
    struct device *dev;
    dev = child_of(parent);
    pm_get(dev);
}`, "driver")
	res := Compute(f, Criteria{ArgsOfCallsTo: refcountCalls("pm_get")})
	if !res.CalleesInSlice["child_of"] {
		t.Error("child_of produces the refcount call's argument")
	}
	if !res.Relevant["dev"] {
		t.Error("dev must be relevant")
	}
}

func TestTransitiveDataDependency(t *testing.T) {
	f := fn(t, `
int driver(struct device *dev) {
    int a;
    int b;
    a = stage1(dev);
    b = stage2(a);
    if (b < 0)
        return b;
    pm_get(dev);
    return 0;
}`, "driver")
	res := Compute(f, Criteria{ReturnValue: true, ArgsOfCallsTo: refcountCalls("pm_get")})
	if !res.CalleesInSlice["stage2"] || !res.CalleesInSlice["stage1"] {
		t.Errorf("transitive closure missing: %v", res.CalleesInSlice)
	}
}

func TestControlDependenceIncludesGuards(t *testing.T) {
	// check()'s result guards whether the refcount call is reached: the
	// guard must be in the slice even though its value never flows into
	// pm_get's arguments.
	f := fn(t, `
void driver(struct device *dev) {
    int ok;
    ok = check(dev);
    if (ok > 0) {
        pm_get(dev);
        pm_put(dev);
    }
}`, "driver")
	res := Compute(f, Criteria{ArgsOfCallsTo: refcountCalls("pm_get", "pm_put")})
	if !res.CalleesInSlice["check"] {
		t.Error("branch guard feeding control of refcount code must be in the slice")
	}
}
