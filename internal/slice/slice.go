// Package slice computes the static backward slices used by the second
// classification phase of §5.2: for a function, the slice criteria are its
// return value and every actual argument passed to refcount-changing
// callees; a callee whose result lies in the slice "may affect the behavior
// of functions with refcount changes" and is classified into category 2.
//
// The slicer is intra-procedural and conservative: data dependencies are a
// fixpoint over variable definitions, and control dependencies include
// every conditional branch from which a slice-relevant instruction is
// reachable (an over-approximation of standard control dependence that
// errs toward classifying more functions as category 2 — the safe
// direction, since category 2 only widens what gets analyzed).
package slice

import (
	"repro/internal/ir"
)

// Criteria selects the slice seeds for one function.
type Criteria struct {
	// ReturnValue seeds the slice with the returned values.
	ReturnValue bool
	// ArgsOfCallsTo reports whether arguments passed to the named callee
	// are slice seeds (the refcount-changing callees).
	ArgsOfCallsTo func(callee string) bool
}

// Result is the computed slice.
type Result struct {
	// Relevant is the set of variable names in the slice.
	Relevant map[string]bool
	// CalleesInSlice is the set of called functions whose return value is
	// used by the slice.
	CalleesInSlice map[string]bool
}

// Compute returns the backward slice of fn for the given criteria.
func Compute(fn *ir.Func, crit Criteria) Result {
	res := Result{
		Relevant:       make(map[string]bool),
		CalleesInSlice: make(map[string]bool),
	}
	addVal := func(v ir.Value) {
		if v.Kind == ir.ValVar {
			res.Relevant[v.Var] = true
		}
	}

	// Seeds.
	seedBlocks := make(map[int]bool)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpReturn:
				if crit.ReturnValue && in.HasVal {
					addVal(in.Val)
					seedBlocks[b.Index] = true
				}
			case ir.OpCall:
				if crit.ArgsOfCallsTo != nil && crit.ArgsOfCallsTo(in.Fn) {
					for _, a := range in.Args {
						addVal(a)
					}
					seedBlocks[b.Index] = true
				}
			}
		}
	}

	reach := reachesAny(fn, seedBlocks)

	// Fixpoint over data and control dependencies.
	for changed := true; changed; {
		changed = false
		grow := func(v ir.Value) {
			if v.Kind == ir.ValVar && !res.Relevant[v.Var] {
				res.Relevant[v.Var] = true
				changed = true
			}
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAssign:
					if res.Relevant[in.Dst] {
						grow(in.Val)
					}
				case ir.OpLoadField:
					if res.Relevant[in.Dst] {
						grow(in.Obj)
					}
				case ir.OpCompare:
					if res.Relevant[in.Dst] {
						grow(in.A)
						grow(in.B)
					}
				case ir.OpCall:
					if in.Dst != "" && res.Relevant[in.Dst] {
						if !res.CalleesInSlice[in.Fn] {
							res.CalleesInSlice[in.Fn] = true
							changed = true
						}
						for _, a := range in.Args {
							grow(a)
						}
					}
				case ir.OpBranchCond:
					// Control dependence: a branch that can lead to a
					// criterion-bearing block pulls its condition in.
					if in.True != in.False && (reach[in.True] || reach[in.False]) {
						if in.Cond.Kind == ir.ValVar && !res.Relevant[in.Cond.Var] {
							res.Relevant[in.Cond.Var] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return res
}

// reachesAny computes, per block, whether any block in targets is
// reachable from it (including itself).
func reachesAny(fn *ir.Func, targets map[int]bool) []bool {
	n := len(fn.Blocks)
	reach := make([]bool, n)
	// Predecessor map.
	preds := make([][]int, n)
	var two [2]int
	for _, b := range fn.Blocks {
		for _, s := range b.AppendSuccs(two[:0]) {
			preds[s] = append(preds[s], b.Index)
		}
	}
	var work []int
	for t := range targets {
		if !reach[t] {
			reach[t] = true
			work = append(work, t)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range preds[v] {
			if !reach[p] {
				reach[p] = true
				work = append(work, p)
			}
		}
	}
	return reach
}
