package cfg

import (
	"fmt"
	"strings"
)

// Dot renders the CFG in Graphviz dot syntax, one node per basic block
// with its instructions, back edges dashed. Useful when triaging a report:
//
//	dot -Tsvg foo.dot > foo.svg
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Fn.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range g.Fn.Blocks {
		if !g.Reachable(blk.Index) {
			continue
		}
		var label strings.Builder
		fmt.Fprintf(&label, "b%d:\\l", blk.Index)
		for _, in := range blk.Instrs {
			label.WriteString(escapeDot(in.String()))
			label.WriteString("\\l")
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"];\n", blk.Index, label.String())
		for _, s := range g.Succ[blk.Index] {
			attr := ""
			if g.IsBackEdge(blk.Index, s) {
				attr = " [style=dashed, label=\"back\"]"
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk.Index, s, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
