package cfg

import (
	"fmt"
	"strings"
)

// Dot renders the CFG in Graphviz dot syntax, one node per basic block
// with its instructions, back edges dashed. Useful when triaging a report:
//
//	dot -Tsvg foo.dot > foo.svg
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Fn.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range g.Fn.Blocks {
		if !g.Reachable(blk.Index) {
			continue
		}
		var label strings.Builder
		fmt.Fprintf(&label, "b%d:\\l", blk.Index)
		for _, in := range blk.Instrs {
			label.WriteString(escapeDot(in.String()))
			label.WriteString("\\l")
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"];\n", blk.Index, label.String())
		for _, s := range g.Succ[blk.Index] {
			attr := ""
			if g.IsBackEdge(blk.Index, s) {
				attr = " [style=dashed, label=\"back\"]"
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk.Index, s, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DotPaths renders the CFG like Dot, overlaying two paths (block index
// sequences, as recorded in IPP evidence): blocks only on path A are
// filled blue, only on path B salmon, on both green; the edges each path
// takes are emphasized and colored to match. The overlay is what `rid
// explain -html` embeds so a report's two paths can be read straight off
// the graph.
func (g *Graph) DotPaths(a, b []int) string {
	onA := make(map[int]bool, len(a))
	for _, i := range a {
		onA[i] = true
	}
	onB := make(map[int]bool, len(b))
	for _, i := range b {
		onB[i] = true
	}
	edgeSet := func(p []int) map[[2]int]bool {
		m := make(map[[2]int]bool, len(p))
		for i := 1; i < len(p); i++ {
			m[[2]int{p[i-1], p[i]}] = true
		}
		return m
	}
	edgeA, edgeB := edgeSet(a), edgeSet(b)

	var out strings.Builder
	fmt.Fprintf(&out, "digraph %q {\n", g.Fn.Name)
	out.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range g.Fn.Blocks {
		if !g.Reachable(blk.Index) {
			continue
		}
		var label strings.Builder
		fmt.Fprintf(&label, "b%d:\\l", blk.Index)
		for _, in := range blk.Instrs {
			label.WriteString(escapeDot(in.String()))
			label.WriteString("\\l")
		}
		style := ""
		switch {
		case onA[blk.Index] && onB[blk.Index]:
			style = ", style=filled, fillcolor=\"#d5f5d5\""
		case onA[blk.Index]:
			style = ", style=filled, fillcolor=\"#cfe2ff\""
		case onB[blk.Index]:
			style = ", style=filled, fillcolor=\"#ffd9cc\""
		}
		fmt.Fprintf(&out, "  b%d [label=\"%s\"%s];\n", blk.Index, label.String(), style)
		for _, s := range g.Succ[blk.Index] {
			e := [2]int{blk.Index, s}
			var attrs []string
			if g.IsBackEdge(blk.Index, s) {
				attrs = append(attrs, "style=dashed", `label="back"`)
			}
			switch {
			case edgeA[e] && edgeB[e]:
				attrs = append(attrs, `color="#2e8b57"`, "penwidth=2.4")
			case edgeA[e]:
				attrs = append(attrs, `color="#1f6feb"`, "penwidth=2.4")
			case edgeB[e]:
				attrs = append(attrs, `color="#d9480f"`, "penwidth=2.4")
			}
			attr := ""
			if len(attrs) > 0 {
				attr = " [" + strings.Join(attrs, ", ") + "]"
			}
			fmt.Fprintf(&out, "  b%d -> b%d%s;\n", blk.Index, s, attr)
		}
	}
	out.WriteString("}\n")
	return out.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
