// Package cfg provides control-flow-graph utilities over the abstract IR:
// successor/predecessor maps, back-edge detection, reachability, and the
// entry-to-exit path enumeration of analysis Step I (§4.2), with loops
// unrolled at most once and a configurable path budget.
package cfg

import (
	"context"

	"repro/internal/ir"
	"repro/internal/obs"
)

// Graph is the CFG view of a function.
type Graph struct {
	Fn    *ir.Func
	Succ  [][]int
	Pred  [][]int
	back  map[[2]int]bool // edges (from, to) that close a loop
	reach []bool
}

// New builds the CFG for fn.
func New(fn *ir.Func) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:   fn,
		Succ: make([][]int, n),
		Pred: make([][]int, n),
		back: make(map[[2]int]bool),
	}
	for _, b := range fn.Blocks {
		g.Succ[b.Index] = b.Succs()
		for _, s := range g.Succ[b.Index] {
			g.Pred[s] = append(g.Pred[s], b.Index)
		}
	}
	g.findBackEdges()
	g.findReachable()
	return g
}

// findBackEdges marks edges whose target is on the current DFS stack.
func (g *Graph) findBackEdges() {
	n := len(g.Succ)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	// Iterative DFS to avoid recursion limits on generated functions.
	type frame struct {
		node int
		next int
	}
	var stack []frame
	push := func(v int) {
		state[v] = 1
		stack = append(stack, frame{v, 0})
	}
	push(0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succ[f.node]) {
			s := g.Succ[f.node][f.next]
			f.next++
			switch state[s] {
			case 0:
				push(s)
			case 1:
				g.back[[2]int{f.node, s}] = true
			}
			continue
		}
		state[f.node] = 2
		stack = stack[:len(stack)-1]
	}
}

func (g *Graph) findReachable() {
	g.reach = make([]bool, len(g.Succ))
	work := []int{0}
	g.reach[0] = true
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succ[v] {
			if !g.reach[s] {
				g.reach[s] = true
				work = append(work, s)
			}
		}
	}
}

// IsBackEdge reports whether from→to closes a loop.
func (g *Graph) IsBackEdge(from, to int) bool { return g.back[[2]int{from, to}] }

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.reach[b] }

// NumReachable returns the number of reachable blocks.
func (g *Graph) NumReachable() int {
	n := 0
	for _, r := range g.reach {
		if r {
			n++
		}
	}
	return n
}

// HasLoop reports whether the function contains any back edge.
func (g *Graph) HasLoop() bool { return len(g.back) > 0 }

// Path is a sequence of block indices from the entry block to a block
// terminated by a return.
type Path struct {
	Blocks []int
}

// EnumerateResult carries the enumerated paths plus whether the budget
// truncated the enumeration (§5.2: such functions get a default summary
// entry in addition to whatever was analyzed).
type EnumerateResult struct {
	Paths     []Path
	Truncated bool
	// Canceled reports that the context expired mid-enumeration; the
	// result is the partial prefix produced so far and Truncated is set
	// (a canceled function degrades like a budget-truncated one).
	Canceled bool
}

// Enumerate lists entry-to-exit paths. Each back edge is taken at most
// once per path (the paper's "loops are unrolled at most once") and at
// most maxPaths paths are produced; maxPaths <= 0 means the default of 100
// (the paper's evaluation setting).
func (g *Graph) Enumerate(maxPaths int) EnumerateResult {
	return g.EnumerateCtx(context.Background(), maxPaths)
}

// EnumerateObs is EnumerateCtx under observation: it wraps the walk in a
// PhaseEnumerate span labeled with the function and counts the paths
// produced (plus one paths_truncated tick when the budget — not the
// context — cut the walk short).
func (g *Graph) EnumerateObs(ctx context.Context, maxPaths int, o *obs.Obs) EnumerateResult {
	sp := o.Start(obs.PhaseEnumerate, g.Fn.Name)
	res := g.EnumerateCtx(ctx, maxPaths)
	sp.End()
	o.Count(obs.MPathsEnumerated, int64(len(res.Paths)))
	if res.Truncated && !res.Canceled {
		o.Count(obs.MPathsTruncated, 1)
	}
	return res
}

// EnumerateCtx is Enumerate under a context: when ctx expires the walk
// stops promptly and the partial result is returned with Truncated and
// Canceled set, so the caller can fall back to a default summary instead
// of blocking on a pathological function.
func (g *Graph) EnumerateCtx(ctx context.Context, maxPaths int) EnumerateResult {
	if maxPaths <= 0 {
		maxPaths = 100
	}
	var res EnumerateResult
	// Polling ctx.Err() on every visited block would dominate small
	// functions; amortize to one check per checkEvery blocks.
	const checkEvery = 256
	visited := 0
	// DFS with explicit stack of (block, taken-back-edges) is awkward to
	// copy cheaply; use recursion with shared state and an on-path slice.
	var cur []int
	usedBack := make(map[[2]int]int)
	var walk func(b int)
	walk = func(b int) {
		if res.Canceled {
			return
		}
		visited++
		if visited%checkEvery == 0 && ctx.Err() != nil {
			res.Canceled = true
			res.Truncated = true
			return
		}
		if len(res.Paths) >= maxPaths {
			res.Truncated = true
			return
		}
		cur = append(cur, b)
		defer func() { cur = cur[:len(cur)-1] }()
		blk := g.Fn.Blocks[b]
		t := blk.Terminator()
		if t.Op == ir.OpReturn {
			p := Path{Blocks: make([]int, len(cur))}
			copy(p.Blocks, cur)
			res.Paths = append(res.Paths, p)
			return
		}
		for _, s := range g.Succ[b] {
			e := [2]int{b, s}
			if g.back[e] {
				if usedBack[e] >= 1 {
					continue // unroll at most once
				}
				usedBack[e]++
				walk(s)
				usedBack[e]--
			} else {
				walk(s)
			}
			if len(res.Paths) >= maxPaths {
				res.Truncated = true
				return
			}
		}
	}
	walk(0)
	return res
}

// Instrs returns the straight-line instruction sequence of the path,
// including each block's terminator (the symbolic executor interprets
// branch terminators by looking at the next block in the path).
func (p Path) Instrs(fn *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range p.Blocks {
		out = append(out, fn.Blocks[b].Instrs...)
	}
	return out
}
