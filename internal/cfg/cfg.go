// Package cfg provides control-flow-graph utilities over the abstract IR:
// successor/predecessor maps, back-edge detection, reachability, and the
// entry-to-exit path enumeration of analysis Step I (§4.2), with loops
// unrolled at most once and a configurable path budget.
package cfg

import (
	"context"

	"repro/internal/ir"
	"repro/internal/obs"
)

// Graph is the CFG view of a function.
type Graph struct {
	Fn    *ir.Func
	Succ  [][]int
	Pred  [][]int
	back  map[[2]int]bool // edges (from, to) that close a loop; nil when loop-free
	reach []uint8         // DFS state: 0 unvisited (unreachable), 2 done (reachable)
}

// New builds the CFG for fn. Successor and predecessor lists are carved
// out of two shared backing arrays sized by a counting pass, so graph
// construction costs a fixed number of allocations regardless of block
// count — this runs once per (function, path-enumeration) and showed up
// in allocation profiles when it allocated per block.
func New(fn *ir.Func) *Graph {
	n := len(fn.Blocks)
	g := &Graph{
		Fn:   fn,
		Succ: make([][]int, n),
		Pred: make([][]int, n),
	}
	// Pass 1: count edges and per-block indegrees.
	total := 0
	indeg := make([]int, n)
	for _, b := range fn.Blocks {
		k := b.NumSuccs()
		total += k
		var two [2]int
		for _, s := range b.AppendSuccs(two[:0]) {
			indeg[s]++
		}
	}
	// Pass 2: carve Succ lists out of one backing array.
	succBack := make([]int, 0, total)
	for _, b := range fn.Blocks {
		lo := len(succBack)
		succBack = b.AppendSuccs(succBack)
		g.Succ[b.Index] = succBack[lo:len(succBack):len(succBack)]
	}
	// Pass 3: carve Pred lists at their final sizes and fill.
	predBack := make([]int, total)
	off := 0
	for i := 0; i < n; i++ {
		g.Pred[i] = predBack[off : off : off+indeg[i]]
		off += indeg[i]
	}
	for _, b := range fn.Blocks {
		for _, s := range g.Succ[b.Index] {
			g.Pred[s] = append(g.Pred[s], b.Index)
		}
	}
	g.findBackEdges()
	return g
}

// findBackEdges marks edges whose target is on the current DFS stack.
// The DFS visits exactly the blocks reachable from the entry, so its
// final visitation state doubles as the reachability set — no separate
// traversal or bitmap.
func (g *Graph) findBackEdges() {
	n := len(g.Succ)
	g.reach = make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	state := g.reach
	// Iterative DFS to avoid recursion limits on generated functions.
	// Each node is pushed at most once, so the stack never exceeds n.
	type frame struct {
		node int
		next int
	}
	stack := make([]frame, 0, n)
	push := func(v int) {
		state[v] = 1
		stack = append(stack, frame{v, 0})
	}
	push(0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succ[f.node]) {
			s := g.Succ[f.node][f.next]
			f.next++
			switch state[s] {
			case 0:
				push(s)
			case 1:
				if g.back == nil {
					g.back = make(map[[2]int]bool) // most functions are loop-free
				}
				g.back[[2]int{f.node, s}] = true
			}
			continue
		}
		state[f.node] = 2
		stack = stack[:len(stack)-1]
	}
}

// IsBackEdge reports whether from→to closes a loop.
func (g *Graph) IsBackEdge(from, to int) bool { return g.back[[2]int{from, to}] }

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.reach[b] == 2 }

// NumReachable returns the number of reachable blocks.
func (g *Graph) NumReachable() int {
	n := 0
	for _, r := range g.reach {
		if r == 2 {
			n++
		}
	}
	return n
}

// HasLoop reports whether the function contains any back edge.
func (g *Graph) HasLoop() bool { return len(g.back) > 0 }

// Path is a sequence of block indices from the entry block to a block
// terminated by a return.
type Path struct {
	Blocks []int
}

// EnumerateResult carries the enumerated paths plus whether the budget
// truncated the enumeration (§5.2: such functions get a default summary
// entry in addition to whatever was analyzed).
type EnumerateResult struct {
	Paths     []Path
	Truncated bool
	// Canceled reports that the context expired mid-enumeration; the
	// result is the partial prefix produced so far and Truncated is set
	// (a canceled function degrades like a budget-truncated one).
	Canceled bool
}

// Enumerate lists entry-to-exit paths. Each back edge is taken at most
// once per path (the paper's "loops are unrolled at most once") and at
// most maxPaths paths are produced; maxPaths <= 0 means the default of 100
// (the paper's evaluation setting).
func (g *Graph) Enumerate(maxPaths int) EnumerateResult {
	return g.EnumerateCtx(context.Background(), maxPaths)
}

// EnumerateObs is EnumerateCtx under observation: it wraps the walk in a
// PhaseEnumerate span labeled with the function and counts the paths
// produced (plus one paths_truncated tick when the budget — not the
// context — cut the walk short).
func (g *Graph) EnumerateObs(ctx context.Context, maxPaths int, o *obs.Obs) EnumerateResult {
	sp := o.Start(obs.PhaseEnumerate, g.Fn.Name)
	res := g.EnumerateCtx(ctx, maxPaths)
	sp.End()
	o.Count(obs.MPathsEnumerated, int64(len(res.Paths)))
	if res.Truncated && !res.Canceled {
		o.Count(obs.MPathsTruncated, 1)
	}
	return res
}

// EnumerateCtx is Enumerate under a context: when ctx expires the walk
// stops promptly and the partial result is returned with Truncated and
// Canceled set, so the caller can fall back to a default summary instead
// of blocking on a pathological function.
func (g *Graph) EnumerateCtx(ctx context.Context, maxPaths int) EnumerateResult {
	if maxPaths <= 0 {
		maxPaths = 100
	}
	var res EnumerateResult
	// Polling ctx.Err() on every visited block would dominate small
	// functions; amortize to one check per checkEvery blocks.
	const checkEvery = 256
	visited := 0
	// DFS with explicit stack of (block, taken-back-edges) is awkward to
	// copy cheaply; use recursion with shared state and an on-path slice.
	var cur []int
	var usedBack map[[2]int]int // lazily allocated: most functions are loop-free
	if len(g.back) > 0 {
		usedBack = make(map[[2]int]int, len(g.back))
	}
	var walk func(b int)
	walk = func(b int) {
		if res.Canceled {
			return
		}
		visited++
		if visited%checkEvery == 0 && ctx.Err() != nil {
			res.Canceled = true
			res.Truncated = true
			return
		}
		if len(res.Paths) >= maxPaths {
			res.Truncated = true
			return
		}
		cur = append(cur, b)
		defer func() { cur = cur[:len(cur)-1] }()
		blk := g.Fn.Blocks[b]
		t := blk.Terminator()
		if t.Op == ir.OpReturn {
			p := Path{Blocks: make([]int, len(cur))}
			copy(p.Blocks, cur)
			res.Paths = append(res.Paths, p)
			return
		}
		for _, s := range g.Succ[b] {
			e := [2]int{b, s}
			if g.back[e] {
				if usedBack[e] >= 1 {
					continue // unroll at most once
				}
				usedBack[e]++
				walk(s)
				usedBack[e]--
			} else {
				walk(s)
			}
			if len(res.Paths) >= maxPaths {
				res.Truncated = true
				return
			}
		}
	}
	walk(0)
	return res
}

// Instrs returns the straight-line instruction sequence of the path,
// including each block's terminator (the symbolic executor interprets
// branch terminators by looking at the next block in the path).
func (p Path) Instrs(fn *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range p.Blocks {
		out = append(out, fn.Blocks[b].Instrs...)
	}
	return out
}
