package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
)

func mustCFG(t *testing.T, src, fn string) *Graph {
	t.Helper()
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs[fn]
	if f == nil {
		t.Fatalf("function %s not found", fn)
	}
	return New(f)
}

func TestStraightLine(t *testing.T) {
	g := mustCFG(t, `int f(int a) { g(a); return a; }`, "f")
	res := g.Enumerate(0)
	if len(res.Paths) != 1 || res.Truncated {
		t.Fatalf("paths: %+v", res)
	}
	if g.HasLoop() {
		t.Error("no loop expected")
	}
}

func TestDiamond(t *testing.T) {
	g := mustCFG(t, `
int f(int a) {
    int r = 0;
    if (a > 0)
        r = g(a);
    else
        r = h(a);
    return r;
}`, "f")
	res := g.Enumerate(0)
	if len(res.Paths) != 2 {
		t.Fatalf("paths: %d, want 2", len(res.Paths))
	}
	// Both paths start at the entry and end in a return block.
	for _, p := range res.Paths {
		if p.Blocks[0] != 0 {
			t.Errorf("path does not start at entry: %v", p.Blocks)
		}
		last := g.Fn.Blocks[p.Blocks[len(p.Blocks)-1]]
		if last.Terminator().Op != ir.OpReturn {
			t.Errorf("path does not end in return: %v", p.Blocks)
		}
	}
}

func TestNestedBranches(t *testing.T) {
	g := mustCFG(t, `
int f(int a, int b, int c) {
    int r = 0;
    if (a > 0) r = g(a);
    if (b > 0) r = g(b);
    if (c > 0) r = g(c);
    return r;
}`, "f")
	res := g.Enumerate(0)
	if len(res.Paths) != 8 {
		t.Fatalf("paths: %d, want 8", len(res.Paths))
	}
}

func TestLoopUnrolledOnce(t *testing.T) {
	g := mustCFG(t, `
int f(int n) {
    int i = 0;
    while (i < n)
        i = g(i);
    return i;
}`, "f")
	if !g.HasLoop() {
		t.Fatal("loop not detected")
	}
	res := g.Enumerate(0)
	// Zero iterations or one iteration: exactly two paths.
	if len(res.Paths) != 2 {
		t.Fatalf("paths: %d, want 2", len(res.Paths))
	}
	// The one-iteration path must revisit the condition block.
	longer := res.Paths[0]
	if len(res.Paths[1].Blocks) > len(longer.Blocks) {
		longer = res.Paths[1]
	}
	seen := map[int]int{}
	for _, b := range longer.Blocks {
		seen[b]++
	}
	revisited := false
	for _, n := range seen {
		if n == 2 {
			revisited = true
		}
		if n > 2 {
			t.Errorf("block visited %d times", n)
		}
	}
	if !revisited {
		t.Error("unrolled path should revisit the loop header")
	}
}

func TestNestedLoopsBounded(t *testing.T) {
	g := mustCFG(t, `
int f(int n) {
    int i = 0;
    while (i < n) {
        int j = 0;
        while (j < n)
            j = g(j);
        i = g(i);
    }
    return i;
}`, "f")
	res := g.Enumerate(0)
	if res.Truncated {
		t.Fatal("nested loops must terminate without truncation at default budget")
	}
	if len(res.Paths) < 3 {
		t.Errorf("paths: %d", len(res.Paths))
	}
}

func TestPathBudgetTruncation(t *testing.T) {
	// 12 sequential branches = 4096 paths; budget 100 truncates.
	src := `int f(int a) { int r = 0;`
	for i := 0; i < 12; i++ {
		src += `if (a > 0) r = g(a);`
	}
	src += `return r; }`
	g := mustCFG(t, src, "f")
	res := g.Enumerate(100)
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if len(res.Paths) != 100 {
		t.Errorf("paths: %d, want 100", len(res.Paths))
	}
}

func TestReachability(t *testing.T) {
	g := mustCFG(t, `
int f(int a) {
    if (a > 0)
        return 1;
    return 0;
}`, "f")
	if g.NumReachable() == 0 {
		t.Fatal("entry must be reachable")
	}
	if !g.Reachable(0) {
		t.Error("entry unreachable?")
	}
}

func TestPathInstrs(t *testing.T) {
	g := mustCFG(t, `int f(int a) { g(a); return a; }`, "f")
	res := g.Enumerate(0)
	instrs := res.Paths[0].Instrs(g.Fn)
	if len(instrs) == 0 {
		t.Fatal("no instructions")
	}
	if instrs[len(instrs)-1].Op != ir.OpReturn {
		t.Error("path must end with return")
	}
}

// Property: on randomly generated branchy functions, every enumerated path
// starts at the entry, ends at a return, follows real CFG edges, and takes
// each back edge at most once.
func TestPropertyPathsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		src := `int f(int a, int b) { int r = 0;`
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				src += `if (a > 0) r = g(a);`
			case 1:
				src += `if (b < 0) { r = g(b); } else { r = h(b); }`
			case 2:
				src += `while (r > 0) r = g(r);`
			}
		}
		src += `return r; }`
		g := mustCFG(t, src, "f")
		res := g.Enumerate(200)
		if len(res.Paths) == 0 {
			t.Fatalf("trial %d: no paths", trial)
		}
		for _, p := range res.Paths {
			if p.Blocks[0] != 0 {
				t.Fatalf("trial %d: path starts at b%d", trial, p.Blocks[0])
			}
			usedBack := map[[2]int]int{}
			for i := 0; i+1 < len(p.Blocks); i++ {
				from, to := p.Blocks[i], p.Blocks[i+1]
				found := false
				for _, s := range g.Succ[from] {
					if s == to {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: edge b%d->b%d not in CFG", trial, from, to)
				}
				if g.IsBackEdge(from, to) {
					usedBack[[2]int{from, to}]++
					if usedBack[[2]int{from, to}] > 1 {
						t.Fatalf("trial %d: back edge taken twice", trial)
					}
				}
			}
			last := g.Fn.Blocks[p.Blocks[len(p.Blocks)-1]]
			if last.Terminator().Op != ir.OpReturn {
				t.Fatalf("trial %d: path does not end at return", trial)
			}
		}
	}
}

func TestGotoLoopDetected(t *testing.T) {
	g := mustCFG(t, `
int f(int a) {
again:
    a = g(a);
    if (a > 0)
        goto again;
    return a;
}`, "f")
	if !g.HasLoop() {
		t.Fatal("goto loop not detected")
	}
	res := g.Enumerate(0)
	if len(res.Paths) != 2 {
		t.Errorf("paths: %d, want 2", len(res.Paths))
	}
}
