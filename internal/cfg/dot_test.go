package cfg

import (
	"strings"
	"testing"
)

func TestDotOutput(t *testing.T) {
	g := mustCFG(t, `
int f(int n) {
    int i = 0;
    while (i < n)
        i = g(i);
    return i;
}`, "f")
	dot := g.Dot()
	for _, want := range []string{
		`digraph "f"`,
		"->",
		"style=dashed", // the loop's back edge
		"return",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("dot output not closed")
	}
}

func TestDotSkipsUnreachable(t *testing.T) {
	g := mustCFG(t, `
int f(int a) {
    return a;
    g(a);
}`, "f")
	dot := g.Dot()
	if strings.Contains(dot, "g(a)") {
		t.Errorf("unreachable block rendered:\n%s", dot)
	}
}
