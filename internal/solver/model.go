package solver

import (
	"sort"

	"repro/internal/sym"
)

// Model searches for a concrete satisfying assignment of the conjunction,
// mapping every variable (argument, return value, field chain) to an
// integer. It is used to attach a runtime witness to IPP reports: "with
// [dev] = 2 and [0] = 0, both paths are feasible".
//
// The search is bounded: variables range over [-bound, bound] where bound
// grows with the constants in the system. Because Sat() is exact on this
// fragment and any satisfiable unit-coefficient system has a solution
// within the span of its constants plus the number of constraints, a
// satisfiable set virtually always yields a model; ok=false means the
// bounded search failed (callers fall back to printing no witness).
func (s *Solver) Model(cs sym.Set) (map[string]int64, bool) {
	if cs.HasFalse() {
		return nil, false
	}
	if !s.Sat(cs) {
		return nil, false
	}
	p := s.translate(cs)
	// Collect variables and the constant span.
	varSet := make(map[string]bool)
	var maxC int64 = 1
	consider := func(l linear) {
		for v := range l.coef {
			varSet[v] = true
		}
		if l.k > maxC {
			maxC = l.k
		}
		if -l.k > maxC {
			maxC = -l.k
		}
	}
	for _, l := range p.ineqs {
		consider(l)
	}
	for _, l := range p.diseq {
		consider(l)
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	if len(vars) > 8 {
		// Exponential search would be too slow; witnesses are a
		// best-effort nicety.
		return nil, false
	}

	bound := maxC + int64(len(p.ineqs)) + 1
	assign := make(map[string]int64, len(vars))
	if s.search(p, vars, 0, bound, assign) {
		out := make(map[string]int64, len(assign))
		for k, v := range assign {
			out[k] = v
		}
		return out, true
	}
	return nil, false
}

// search assigns vars[i:] by DFS, trying small-magnitude values first so
// witnesses read naturally (0, 1, -1, 2, ...).
func (s *Solver) search(p problem, vars []string, i int, bound int64, assign map[string]int64) bool {
	if i == len(vars) {
		return evalProblem(p, assign)
	}
	v := vars[i]
	try := func(x int64) bool {
		assign[v] = x
		if !partialOK(p, assign) {
			delete(assign, v)
			return false
		}
		if s.search(p, vars, i+1, bound, assign) {
			return true
		}
		delete(assign, v)
		return false
	}
	if try(0) {
		return true
	}
	for x := int64(1); x <= bound; x++ {
		if try(x) || try(-x) {
			return true
		}
	}
	return false
}

// partialOK rejects assignments that already violate a fully assigned
// constraint (cheap forward check).
func partialOK(p problem, assign map[string]int64) bool {
	check := func(l linear, diseq bool) bool {
		var sum int64
		for v, c := range l.coef {
			x, ok := assign[v]
			if !ok {
				return true // not fully assigned yet
			}
			sum += c * x
		}
		if diseq {
			// A ≠ B translated to Σcoef·x ≠ k (constants folded into k).
			return sum != l.k
		}
		return sum <= l.k
	}
	for _, l := range p.ineqs {
		if !check(l, false) {
			return false
		}
	}
	for _, l := range p.diseq {
		if !check(l, true) {
			return false
		}
	}
	return true
}

// evalProblem verifies a complete assignment.
func evalProblem(p problem, assign map[string]int64) bool {
	for _, l := range p.ineqs {
		var sum int64
		for v, c := range l.coef {
			sum += c * assign[v]
		}
		if sum > l.k {
			return false
		}
	}
	for _, l := range p.diseq {
		var sum int64
		for v, c := range l.coef {
			sum += c * assign[v]
		}
		// The disequality linear form is A−B with constants folded into k
		// as −const: A−B ≠ 0 ⇔ sum ≠ k... the translation stores the
		// constant displacement in k, so the violated case is sum == k.
		if sum == l.k {
			return false
		}
	}
	return true
}
