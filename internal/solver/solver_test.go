package solver

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

func set(conds ...*sym.Expr) sym.Set {
	s := sym.True()
	for _, c := range conds {
		s = s.And(c)
	}
	return s
}

func TestSatBasics(t *testing.T) {
	a := sym.Arg("a")
	b := sym.Arg("b")
	tests := []struct {
		name string
		cs   sym.Set
		want bool
	}{
		{"empty", sym.True(), true},
		{"a>0", set(sym.Cond(a, ir.GT, sym.Const(0))), true},
		{"a>0 and a<0", set(sym.Cond(a, ir.GT, sym.Const(0)), sym.Cond(a, ir.LT, sym.Const(0))), false},
		{"a>=0 and a<=0", set(sym.Cond(a, ir.GE, sym.Const(0)), sym.Cond(a, ir.LE, sym.Const(0))), true},
		{"a>0 and a<1 (integers)", set(sym.Cond(a, ir.GT, sym.Const(0)), sym.Cond(a, ir.LT, sym.Const(1))), false},
		{"a=5 and a!=5", set(sym.Cond(a, ir.EQ, sym.Const(5)), sym.Cond(a, ir.NE, sym.Const(5))), false},
		{"a!=0", set(sym.Cond(a, ir.NE, sym.Const(0))), true},
		{"a<b and b<a", set(sym.Cond(a, ir.LT, b), sym.Cond(b, ir.LT, a)), false},
		{"a<=b and b<=a", set(sym.Cond(a, ir.LE, b), sym.Cond(b, ir.LE, a)), true},
		{"transitive", set(
			sym.Cond(a, ir.LT, b),
			sym.Cond(b, ir.LT, sym.Const(3)),
			sym.Cond(a, ir.GT, sym.Const(5)),
		), false},
		{"null eq", set(sym.Cond(a, ir.EQ, sym.Null()), sym.Cond(a, ir.NE, sym.Const(0))), false},
		{"const true", set(sym.Cond(sym.Const(1), ir.LT, sym.Const(2))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New().Sat(tt.cs); got != tt.want {
				t.Errorf("Sat(%s) = %t, want %t", tt.cs, got, tt.want)
			}
		})
	}
}

func TestSatFigure2Inconsistency(t *testing.T) {
	// The two inconsistent entries of foo(): both have cons
	// [dev]≠null ∧ [0]=0; their conjunction must be satisfiable.
	dev := sym.Arg("dev")
	cons := set(
		sym.Cond(dev, ir.NE, sym.Null()),
		sym.Cond(sym.Ret(), ir.EQ, sym.Const(0)),
	)
	if !New().Sat(cons.AndSet(cons)) {
		t.Error("identical constraints must be co-satisfiable")
	}
}

func TestSatErrorCodeDisjoint(t *testing.T) {
	// Entry A: [0] >= 0; entry B: [0] = -1. Conjunction unsat, so the
	// paths are distinguishable by return value — no IPP.
	r := sym.Ret()
	a := set(sym.Cond(r, ir.GE, sym.Const(0)))
	b := set(sym.Cond(r, ir.EQ, sym.Const(-1)))
	if New().Sat(a.AndSet(b)) {
		t.Error("[0]>=0 ∧ [0]=-1 must be unsatisfiable")
	}
}

func TestSatFieldChainsAreOpaqueTerms(t *testing.T) {
	pm := sym.Field(sym.Arg("dev"), "pm")
	cs := set(
		sym.Cond(pm, ir.GE, sym.Const(0)),
		sym.Cond(pm, ir.LT, sym.Const(0)),
	)
	if New().Sat(cs) {
		t.Error("same field chain must be one variable")
	}
	// Different chains are independent.
	other := sym.Field(sym.Arg("dev"), "usage")
	cs2 := set(
		sym.Cond(pm, ir.GE, sym.Const(0)),
		sym.Cond(other, ir.LT, sym.Const(0)),
	)
	if !New().Sat(cs2) {
		t.Error("distinct field chains must be independent variables")
	}
}

func TestSatNestedBoolTerm(t *testing.T) {
	// A condition used as an opaque 0/1 term: c >= 2 is unsat.
	c := sym.Cond(sym.Arg("a"), ir.GT, sym.Const(0))
	cs := set(sym.Cond(c, ir.GE, sym.Const(2)))
	if New().Sat(cs) {
		t.Error("boolean term must be bounded to {0,1}")
	}
}

func TestSatCache(t *testing.T) {
	s := New()
	cs := set(sym.Cond(sym.Arg("a"), ir.GT, sym.Const(0)))
	s.Sat(cs)
	s.Sat(cs)
	if s.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", s.Stats().CacheHits)
	}
}

func TestSatCacheTermVsTerm(t *testing.T) {
	// Term-vs-term comparisons take the full Fourier–Motzkin path; they
	// must be memoized too.
	s := New()
	cs := set(sym.Cond(sym.Arg("a"), ir.GT, sym.Arg("b")))
	s.Sat(cs)
	s.Sat(cs)
	if s.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", s.Stats().CacheHits)
	}
}

func TestSatManyDisequalities(t *testing.T) {
	// a ∈ {0..3} with a ≠ 0, a ≠ 1, a ≠ 2, a ≠ 3: unsat, needs splits.
	a := sym.Arg("a")
	cs := set(
		sym.Cond(a, ir.GE, sym.Const(0)),
		sym.Cond(a, ir.LE, sym.Const(3)),
		sym.Cond(a, ir.NE, sym.Const(0)),
		sym.Cond(a, ir.NE, sym.Const(1)),
		sym.Cond(a, ir.NE, sym.Const(2)),
		sym.Cond(a, ir.NE, sym.Const(3)),
	)
	if New().Sat(cs) {
		t.Error("pigeonhole disequalities must be unsat")
	}
}

// ---------------------------------------------------------------------------
// Property test: cross-check against brute force over a finite domain.

// randomAtom builds a random condition over nvars variables with constants
// in [-3, 3].
func randomAtom(rng *rand.Rand, vars []*sym.Expr) *sym.Expr {
	a := vars[rng.Intn(len(vars))]
	var b *sym.Expr
	if rng.Intn(2) == 0 {
		b = sym.Const(int64(rng.Intn(7) - 3))
	} else {
		b = vars[rng.Intn(len(vars))]
	}
	preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
	return sym.Cond(a, preds[rng.Intn(len(preds))], b)
}

// bruteSat enumerates assignments over [-bound, bound]^n.
func bruteSat(conds []*sym.Expr, vars []*sym.Expr, bound int) bool {
	n := len(vars)
	assign := make(map[string]int64, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			for _, c := range conds {
				if !evalCond(c, assign) {
					return false
				}
			}
			return true
		}
		for v := -bound; v <= bound; v++ {
			assign[vars[i].Key()] = int64(v)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func evalCond(c *sym.Expr, assign map[string]int64) bool {
	a := evalTerm(c.A, assign)
	b := evalTerm(c.B, assign)
	return c.Pred.Eval(a, b)
}

func evalTerm(e *sym.Expr, assign map[string]int64) int64 {
	if v, ok := e.IsConst(); ok {
		return v
	}
	return assign[e.Key()]
}

func TestPropertySolverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20160402)) // ASPLOS'16 date
	vars := []*sym.Expr{sym.Arg("a"), sym.Arg("b"), sym.Arg("c")}
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(5)
		cs := sym.True()
		var conds []*sym.Expr
		for i := 0; i < n; i++ {
			c := randomAtom(rng, vars)
			if c.Kind != sym.KCond {
				continue // folded to a constant
			}
			cs = cs.And(c)
			conds = append(conds, c)
		}
		got := New().Sat(cs)
		// Constants are in [-3,3] and there are ≤5 unit-coefficient
		// constraints, so any satisfiable system has a witness within
		// [-9, 9] (each FM combination shifts bounds by at most the sum
		// of constants).
		want := bruteSat(conds, vars, 9)
		if got != want {
			t.Fatalf("trial %d: Sat(%s) = %t, brute force = %t", trial, cs, got, want)
		}
	}
}

func TestPropertyUnsatHasNoWitness(t *testing.T) {
	// Directed property: whenever the solver says UNSAT, brute force over a
	// wide domain must find nothing (soundness of UNSAT answers).
	rng := rand.New(rand.NewSource(99))
	vars := []*sym.Expr{sym.Arg("x"), sym.Arg("y")}
	for trial := 0; trial < 300; trial++ {
		cs := sym.True()
		var conds []*sym.Expr
		for i := 0; i < 4; i++ {
			c := randomAtom(rng, vars)
			if c.Kind != sym.KCond {
				continue
			}
			cs = cs.And(c)
			conds = append(conds, c)
		}
		if !New().Sat(cs) && bruteSat(conds, vars, 12) {
			t.Fatalf("solver UNSAT but witness exists for %s", cs)
		}
	}
}

func BenchmarkSolverTypicalEntry(b *testing.B) {
	dev := sym.Arg("dev")
	r := sym.Ret()
	cs := set(
		sym.Cond(dev, ir.NE, sym.Null()),
		sym.Cond(r, ir.GE, sym.Const(0)),
		sym.Cond(r, ir.LE, sym.Const(0)),
		sym.Cond(sym.Field(dev, "pm"), ir.GE, sym.Const(0)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		s.Sat(cs)
	}
}

func TestSplitBudgetGivesUpConservatively(t *testing.T) {
	// With only one split allowed, the pigeonhole system cannot be refuted
	// and the solver must answer SAT (the conservative direction: a wrong
	// SAT can only create a false positive, never hide an IPP).
	a := sym.Arg("a")
	cs := set(
		sym.Cond(a, ir.GE, sym.Const(0)),
		sym.Cond(a, ir.LE, sym.Const(3)),
		sym.Cond(a, ir.NE, sym.Const(0)),
		sym.Cond(a, ir.NE, sym.Const(1)),
		sym.Cond(a, ir.NE, sym.Const(2)),
		sym.Cond(a, ir.NE, sym.Const(3)),
	)
	s := NewWithLimits(Limits{MaxSplits: 1})
	if !s.Sat(cs) {
		t.Fatal("budget-limited solver must give up toward SAT")
	}
	if s.Stats().GaveUp == 0 {
		t.Error("GaveUp counter not incremented")
	}
}

// TestForkAndCacheInheritLimits pins the property the per-run budget
// plumbing relies on: every solver derived from a limited one — forked
// path workers and cache-sharing SCC workers alike — carries the same
// limits, so a per-query budget set once in core.Options governs the
// whole run.
func TestForkAndCacheInheritLimits(t *testing.T) {
	want := Limits{MaxConstraints: 17, MaxSplits: 2}
	s := NewWithLimits(want)
	if got := s.Fork().Limits(); got != want {
		t.Errorf("Fork limits = %+v, want %+v", got, want)
	}
	if got := NewWithCache(want, NewCache()).Limits(); got != want {
		t.Errorf("NewWithCache limits = %+v, want %+v", got, want)
	}
	// Zero fields normalize to the documented defaults everywhere.
	d := New().Limits()
	if d.MaxConstraints != defaultMaxConstraints || d.MaxSplits != defaultMaxSplits {
		t.Errorf("default limits: %+v", d)
	}
}

func TestDisableCache(t *testing.T) {
	s := New()
	s.DisableCache()
	cs := set(sym.Cond(sym.Arg("a"), ir.GT, sym.Const(0)))
	s.Sat(cs)
	s.Sat(cs)
	if s.Stats().CacheHits != 0 {
		t.Errorf("cache hits with cache disabled: %d", s.Stats().CacheHits)
	}
	if s.Stats().Queries != 2 {
		t.Errorf("queries: %d", s.Stats().Queries)
	}
}

func TestConstantDisequalities(t *testing.T) {
	// 3 != 3 is false; 3 != 4 is true.
	bad := set(sym.Cond(sym.Const(3), ir.NE, sym.Const(3)))
	if bad.HasFalse() {
		// Folded at construction — also acceptable.
	} else if New().Sat(bad) {
		t.Error("3 != 3 must be unsat")
	}
	good := set(sym.Cond(sym.Const(3), ir.NE, sym.Const(4)), sym.Cond(sym.Arg("a"), ir.GT, sym.Const(0)))
	if !New().Sat(good) {
		t.Error("3 != 4 ∧ a > 0 must be sat")
	}
}
