// Package solver decides satisfiability of conjunctions of linear integer
// arithmetic conditions over uninterpreted terms — the constraint language
// RID uses for path constraints and summary entries (the paper uses Z3 with
// the LIA theory; this is a from-scratch replacement covering the fragment
// RID emits).
//
// Every non-constant term (argument, return value, local, fresh symbol,
// field chain) becomes an integer variable named by its canonical key; null
// is the constant 0. Conditions translate to inequalities Σcᵢxᵢ ≤ k:
// equalities become two inequalities, strict comparisons tighten by one
// (integers), and disequalities case-split. The core decision procedure is
// Fourier–Motzkin elimination, which is exact over the integers when one of
// the paired coefficients is ±1 — true for every constraint the analysis
// generates. Non-unit pairs fall back to the real shadow, which
// over-approximates satisfiability (may report SAT for an integer-UNSAT
// system); for RID this errs toward a false positive, never a missed
// inconsistency pair.
package solver

import (
	"math"
	"sort"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sym"
)

// Limits bound the work a single query may do. Zero values select the
// defaults.
type Limits struct {
	MaxConstraints int // give up (answer SAT) beyond this many inequalities
	MaxSplits      int // max disequality case-splits per query
}

const (
	defaultMaxConstraints = 4096
	defaultMaxSplits      = 12
)

// Normalized returns the limits with zero fields replaced by the solver's
// defaults — the effective per-query bounds a Solver built from l would
// use. Callers that fingerprint a configuration (the persistent summary
// store) normalize first, so an explicit default and an unset field hash
// identically.
func (l Limits) Normalized() Limits {
	if l.MaxConstraints == 0 {
		l.MaxConstraints = defaultMaxConstraints
	}
	if l.MaxSplits == 0 {
		l.MaxSplits = defaultMaxSplits
	}
	return l
}

// Stats counts solver activity; useful in benchmarks and ablations.
type Stats struct {
	Queries   int
	CacheHits int
	Sat       int
	Unsat     int
	GaveUp    int // budget exceeded, answered SAT conservatively
}

// Add accumulates o into s (merging per-worker counters).
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.GaveUp += o.GaveUp
}

// Sub returns s − o componentwise — the delta between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Queries:   s.Queries - o.Queries,
		CacheHits: s.CacheHits - o.CacheHits,
		Sat:       s.Sat - o.Sat,
		Unsat:     s.Unsat - o.Unsat,
		GaveUp:    s.GaveUp - o.GaveUp,
	}
}

// Solver answers satisfiability queries with memoization. A Solver's
// counters are not safe for concurrent use — create one per worker — but
// the underlying Cache may be shared across workers (see Fork and
// NewWithCache).
type Solver struct {
	limits  Limits
	cache   *Cache
	stats   Stats
	obs     *obs.Obs // optional; counters land here atomically per query
	fn      string   // current function label for query spans
	noQuick bool     // skip quickSolve (differential testing only)

	// Per-query state and reusable scratch. A Solver is single-goroutine
	// (one per worker), so scratch reuse is race-free by construction; the
	// reset contract is that every public query entry point leaves the
	// scratch ready for the next query (buffers re-sliced to zero length,
	// maps cleared before use).
	curGaveUp bool           // set by gaveUp() while solving one query
	keyBuf    []byte         // cache-key construction buffer
	lhsBuf    []byte         // normalize: left-hand-side key buffer
	lhsKeys   []string       // normalize: coefficient-key sort buffer
	normSeen  map[uint64]int // normalize: lhs-key hash → index into the output
	boolVars  map[string]bool
	varSeen   map[string]bool // collectVars: dedup set
	varBuf    []string        // collectVars: result buffer
	elimLo    []linear        // eliminate: lower-bound partition
	elimHi    []linear        // eliminate: upper-bound partition
	pairs     PairBatch // scratch for Pairs (one live batch per solver)
}

// New returns a solver with default limits and a private cache.
func New() *Solver { return NewWithLimits(Limits{}) }

// NewWithLimits returns a solver with explicit limits and a private cache.
func NewWithLimits(l Limits) *Solver {
	return NewWithCache(l, NewCache())
}

// NewWithCache returns a solver with explicit limits backed by the given
// shared cache. A nil cache disables memoization. Solvers sharing a cache
// must use identical limits, so cached verdicts are interchangeable.
func NewWithCache(l Limits, c *Cache) *Solver {
	return &Solver{limits: l.Normalized(), cache: c}
}

// Fork returns a new solver sharing s's limits, cache, and observer, with
// fresh counters. Use one fork per worker goroutine; merge the counters
// back with AddStats. (The observer's registry is atomic, so forks count
// into it directly; only the local Stats need merging.)
func (s *Solver) Fork() *Solver {
	return &Solver{limits: s.limits, cache: s.cache, obs: s.obs, fn: s.fn, noQuick: s.noQuick}
}

// SetObs attaches an observer: every query increments the registry
// counters at the event site, and — when query timing is enabled — emits a
// PhaseSolver span labeled with the current function (see SetFunction).
// A nil observer detaches.
func (s *Solver) SetObs(o *obs.Obs) { s.obs = o }

// SetFunction sets the function label attributed to subsequent queries.
func (s *Solver) SetFunction(fn string) { s.fn = fn }

// Stats returns a copy of the accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// Limits returns the effective (normalized) per-query limits, so callers
// can verify that forked workers inherited the configured bounds.
func (s *Solver) Limits() Limits { return s.limits }

// AddStats merges counters from a forked worker back into s.
func (s *Solver) AddStats(o Stats) { s.stats.Add(o) }

// DisableCache turns memoization off (ablation support).
func (s *Solver) DisableCache() { s.cache = nil }

// Sat reports whether the conjunction is satisfiable over the integers.
func (s *Solver) Sat(cs sym.Set) bool {
	if s.obs.QueryTiming() {
		sp := s.obs.StartQuery(s.fn)
		v := s.sat(cs)
		sp.End()
		return v
	}
	return s.sat(cs)
}

func (s *Solver) sat(cs sym.Set) bool {
	s.stats.Queries++
	s.obs.Count(obs.MSolverQueries, 1)
	if cs.HasFalse() {
		s.stats.Unsat++
		s.obs.Count(obs.MSolverUnsat, 1)
		return false
	}
	if cs.Len() == 0 {
		s.stats.Sat++
		s.obs.Count(obs.MSolverSat, 1)
		return true
	}
	if s.cache != nil {
		s.keyBuf = cs.AppendCacheKey(s.keyBuf[:0])
		if v, gu, ok := s.cache.Get(s.keyBuf); ok {
			s.stats.CacheHits++
			s.obs.Count(obs.MSolverCacheHits, 1)
			if gu {
				// Cache-transparent give-up accounting: the stored verdict
				// was reached by giving up, so this query counts as a
				// give-up too. GaveUp thereby depends only on the query
				// stream, not on which worker populated the cache —
				// per-function give-up diagnostics stay deterministic
				// under work stealing.
				s.noteGaveUp()
			}
			return v
		}
	}
	res := s.solveTracked(cs)
	if s.cache != nil {
		s.cache.Put(s.keyBuf, res, s.curGaveUp)
	}
	if s.curGaveUp {
		s.noteGaveUp()
	}
	if res {
		s.stats.Sat++
		s.obs.Count(obs.MSolverSat, 1)
	} else {
		s.stats.Unsat++
		s.obs.Count(obs.MSolverUnsat, 1)
	}
	return res
}

// solveTracked runs solve with the per-query give-up flag reset, leaving
// s.curGaveUp reporting whether this query exceeded any budget.
func (s *Solver) solveTracked(cs sym.Set) bool {
	s.curGaveUp = false
	return s.solve(cs)
}

// gaveUp flags the in-flight query as budget-exceeded (answered SAT
// conservatively). A query counts at most once no matter how many
// sub-searches hit a limit.
func (s *Solver) gaveUp() {
	s.curGaveUp = true
}

// noteGaveUp records one gave-up query in the counters.
func (s *Solver) noteGaveUp() {
	s.stats.GaveUp++
	s.obs.Count(obs.MSolverGaveUp, 1)
}

// ---------------------------------------------------------------------------
// Translation

// linear is Σ coef[v]·v ≤ k. Zero-coefficient entries are never stored.
type linear struct {
	coef map[string]int64
	k    int64
}

func (l linear) clone() linear {
	c := make(map[string]int64, len(l.coef))
	for k, v := range l.coef {
		c[k] = v
	}
	return linear{coef: c, k: l.k}
}

// problem is a conjunction of inequalities plus pending disequalities
// (diff ≠ 0 encoded as the linear form of A−B).
type problem struct {
	ineqs []linear
	diseq []linear // each means: the linear form ≠ 0 (k holds −constant)
}

// addTerm folds expression e into l with the given sign, registering
// opaque boolean terms (nested conditions) in boolVars.
func addTerm(l *linear, e *sym.Expr, sign int64, boolVars map[string]bool) {
	if v, ok := e.IsConst(); ok {
		l.k -= sign * v // move constants to the right-hand side
		return
	}
	key := e.Key()
	if e.Kind == sym.KCond {
		boolVars[key] = true
	}
	l.coef[key] += sign
	if l.coef[key] == 0 {
		delete(l.coef, key)
	}
}

// translate converts the condition set to a problem. Conditions that the
// condition language cannot express linearly never reach here: the lowering
// already abstracted them to fresh values. The boolVars map is solver
// scratch (cleared on entry); it never escapes the call.
func (s *Solver) translate(cs sym.Set) problem {
	var p problem
	if s.boolVars == nil {
		s.boolVars = make(map[string]bool, 8)
	} else {
		clear(s.boolVars)
	}
	boolVars := s.boolVars
	for _, c := range cs.Conds() {
		if c.Kind != sym.KCond {
			// A bare term used as a truth value was coerced by AsCond, so
			// this only happens for constants; false was caught earlier.
			continue
		}
		diff := linear{coef: make(map[string]int64)}
		addTerm(&diff, c.A, 1, boolVars)
		addTerm(&diff, c.B, -1, boolVars)
		switch c.Pred {
		case ir.LE:
			p.ineqs = append(p.ineqs, diff)
		case ir.LT:
			d := diff
			d.k--
			p.ineqs = append(p.ineqs, d)
		case ir.GE:
			p.ineqs = append(p.ineqs, neg(diff))
		case ir.GT:
			d := neg(diff)
			d.k--
			p.ineqs = append(p.ineqs, d)
		case ir.EQ:
			p.ineqs = append(p.ineqs, diff, neg(diff))
		case ir.NE:
			p.diseq = append(p.diseq, diff)
		}
	}
	// Opaque boolean terms range over {0,1}.
	for v := range boolVars {
		lo := linear{coef: map[string]int64{v: -1}, k: 0} // −v ≤ 0
		hi := linear{coef: map[string]int64{v: 1}, k: 1}  // v ≤ 1
		p.ineqs = append(p.ineqs, lo, hi)
	}
	return p
}

// neg returns the inequality for −l ≤ −k−? : specifically from t ≤ k it
// builds −t ≤ −k, used to encode t ≥ k as a ≤ form.
func neg(l linear) linear {
	c := make(map[string]int64, len(l.coef))
	for k, v := range l.coef {
		c[k] = -v
	}
	return linear{coef: c, k: -l.k}
}

// ---------------------------------------------------------------------------
// Decision procedure

func (s *Solver) solve(cs sym.Set) bool {
	if !s.noQuick {
		if v, ok := s.quickSolve(cs); ok {
			return v
		}
	}
	p := s.translate(cs)
	return s.solveSplit(p.ineqs, p.diseq, 0)
}

// quickSolve decides conjunctions whose conjuncts all have the shape
// term ⋈ const (either orientation) without building the linear system:
// each distinct term is then an independent integer variable, so the
// conjunction is satisfiable iff every term's interval — after applying
// its ≠ exclusions — is non-empty. This is exact (it agrees with
// Fourier–Motzkin plus disequality splitting on this fragment) and covers
// the bulk of path-feasibility queries, which compare arguments, fields,
// and call results against constants.
//
// The second return is false when the query is out of scope: a conjunct
// compares two non-constant terms, or deciding it exactly would exceed a
// budget under which the full procedure gives up conservatively (the
// verdicts must stay identical to the slow path, give-ups included).
// quickSolve bounds: small fixed capacities keep the whole fast path on
// the stack; queries that exceed them fall through to the full procedure.
const (
	quickMaxTerms = 16
	quickMaxNE    = 16
)

func (s *Solver) quickSolve(cs sym.Set) (verdict, handled bool) {
	conds := cs.Conds()
	if len(conds)*2 > s.limits.MaxConstraints {
		return false, false // slow path may give up; let it
	}
	var (
		terms  [quickMaxTerms]*sym.Expr
		lo, hi [quickMaxTerms]int64
		neTerm [quickMaxNE]int
		neVal  [quickMaxNE]int64
	)
	nTerms, nNE := 0, 0
	for _, c := range conds {
		if c.Kind != sym.KCond {
			continue // constants; translate skips these too
		}
		term, pred := c.A, c.Pred
		k, ok := c.B.IsConst()
		if !ok {
			k, ok = c.A.IsConst()
			if !ok {
				return false, false // term-vs-term: needs elimination
			}
			term, pred = c.B, pred.Flip()
		}
		if term.ID() == 0 {
			// Uninterned terms have no cheap identity; use the full
			// procedure (only reachable with interning ablated off).
			return false, false
		}
		ti := -1
		for i := 0; i < nTerms; i++ {
			if terms[i] == term { // interned: structural equality is identity
				ti = i
				break
			}
		}
		if ti < 0 {
			if nTerms == quickMaxTerms {
				return false, false
			}
			ti = nTerms
			nTerms++
			terms[ti] = term
			lo[ti], hi[ti] = math.MinInt64, math.MaxInt64
			if term.Kind == sym.KCond {
				lo[ti], hi[ti] = 0, 1 // opaque boolean terms range over {0,1}
			}
		}
		switch pred {
		case ir.EQ:
			if k > lo[ti] {
				lo[ti] = k
			}
			if k < hi[ti] {
				hi[ti] = k
			}
		case ir.LE:
			if k < hi[ti] {
				hi[ti] = k
			}
		case ir.LT:
			if k == math.MinInt64 {
				return false, false
			}
			if k-1 < hi[ti] {
				hi[ti] = k - 1
			}
		case ir.GE:
			if k > lo[ti] {
				lo[ti] = k
			}
		case ir.GT:
			if k == math.MaxInt64 {
				return false, false
			}
			if k+1 > lo[ti] {
				lo[ti] = k + 1
			}
		case ir.NE:
			if nNE == quickMaxNE {
				return false, false
			}
			neTerm[nNE] = ti
			neVal[nNE] = k
			nNE++
		}
	}
	if nNE > s.limits.MaxSplits {
		return false, false // slow path would give up; preserve that
	}
	for ti := 0; ti < nTerms; ti++ {
		if lo[ti] > hi[ti] {
			return false, true
		}
		if lo[ti] == math.MinInt64 || hi[ti] == math.MaxInt64 {
			continue // an infinite side always escapes finite exclusions
		}
		nExcl := 0
		for j := 0; j < nNE; j++ {
			if neTerm[j] == ti {
				nExcl++
			}
		}
		if nExcl == 0 {
			continue
		}
		// uint64 subtraction is exact for any int64 pair with hi ≥ lo; the
		// +1 cannot wrap because the full-range case was handled above.
		width := uint64(hi[ti]) - uint64(lo[ti]) + 1
		if width > uint64(nExcl) {
			continue // more values than exclusions: something survives
		}
		// Tiny finite range (≤ MaxSplits values): test each one.
		sat := false
		for v := lo[ti]; ; v++ {
			excluded := false
			for j := 0; j < nNE; j++ {
				if neTerm[j] == ti && neVal[j] == v {
					excluded = true
					break
				}
			}
			if !excluded {
				sat = true
				break
			}
			if v == hi[ti] {
				break
			}
		}
		if !sat {
			return false, true
		}
	}
	return true, true
}

// solveSplit resolves disequalities by case analysis, then runs FM.
func (s *Solver) solveSplit(ineqs []linear, diseq []linear, depth int) bool {
	// Fast path: a disequality whose linear part is all-constant decides
	// itself.
	for len(diseq) > 0 {
		d := diseq[0]
		if len(d.coef) == 0 {
			// 0 ≠ k form: the original condition was A−B ≠ 0 with constant
			// difference −k... concretely "0 ≤ k is the constant"; d holds
			// A−B with constants folded into k as −(A−B)const. A−B ≠ 0 with
			// A−B constant = −d.k... the disequality is violated iff d.k == 0.
			if d.k == 0 {
				return false // constant difference of zero: A ≠ B is false
			}
			diseq = diseq[1:]
			continue
		}
		break
	}
	if len(diseq) == 0 {
		return s.fm(ineqs)
	}
	if depth >= s.limits.MaxSplits {
		// Too many splits: drop remaining disequalities (weakening the
		// system over-approximates satisfiability).
		s.gaveUp()
		return s.fm(ineqs)
	}
	d := diseq[0]
	rest := diseq[1:]
	// Case 1: d ≤ −1 (strictly negative).
	lo := d.clone()
	lo.k--
	if s.solveSplit(append(append([]linear{}, ineqs...), lo), rest, depth+1) {
		return true
	}
	// Case 2: d ≥ 1 (strictly positive): −d ≤ −1.
	hi := neg(d)
	hi.k--
	return s.solveSplit(append(append([]linear{}, ineqs...), hi), rest, depth+1)
}

// fm runs Fourier–Motzkin elimination and reports satisfiability.
func (s *Solver) fm(ineqs []linear) bool {
	work := s.normalize(ineqs)
	for {
		// Constant contradictions?
		for _, l := range work {
			if len(l.coef) == 0 && l.k < 0 {
				return false
			}
		}
		vars := s.collectVars(work)
		if len(vars) == 0 {
			return true
		}
		if len(work) > s.limits.MaxConstraints {
			s.gaveUp()
			return true
		}
		v := pickVar(work, vars)
		work = s.eliminate(work, v)
		work = s.normalize(work)
	}
}

// normalize drops tautologies, deduplicates identical left-hand sides
// keeping the tightest bound, and detects nothing else. The result is
// built in place over the input slice (every caller owns its ineqs and
// never rereads the pre-normalized contents), and the lhs-key map and
// buffers are solver scratch, cleared on entry: the map lookup converts
// the byte buffer in place, so only distinct left-hand sides materialize
// a key string. One normalize runs per elimination round, so these were
// the hottest allocations in the solve path.
func (s *Solver) normalize(ineqs []linear) []linear {
	if s.normSeen == nil {
		s.normSeen = make(map[uint64]int, 16)
	} else {
		clear(s.normSeen)
	}
	out := ineqs[:0]
	for _, l := range ineqs {
		if len(l.coef) == 0 {
			if l.k >= 0 {
				continue // 0 ≤ k: tautology
			}
			ineqs[0] = l // contradiction dominates
			return ineqs[:1]
		}
		// Deduplicate by a hash of the canonical lhs key, verified against
		// the stored constraint's coefficients. A hash collision with a
		// different lhs just skips the dedup for that constraint — keeping
		// both bounds is logically equivalent to keeping the tighter one,
		// so the verdict is unchanged, and FNV is deterministic so every
		// run agrees. The win: no per-lhs key string is ever allocated.
		s.lhsBuf = s.appendLHSKey(s.lhsBuf[:0], l)
		h := fnv1a(s.lhsBuf)
		if idx, ok := s.normSeen[h]; ok && sameLHS(l.coef, out[idx].coef) {
			if l.k < out[idx].k {
				out[idx] = l
			}
			continue
		} else if !ok {
			s.normSeen[h] = len(out)
		}
		out = append(out, l)
	}
	return out
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// sameLHS reports whether two constraints have identical left-hand sides.
func sameLHS(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// appendLHSKey appends l's canonical left-hand-side key (sorted
// variable:coefficient pairs) to b, reusing the solver's sort buffer.
func (s *Solver) appendLHSKey(b []byte, l linear) []byte {
	keys := s.lhsKeys[:0]
	for k := range l.coef {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.lhsKeys = keys
	for _, k := range keys {
		b = append(b, k...)
		b = append(b, ':')
		b = appendInt(b, l.coef[k])
		b = append(b, ';')
	}
	return b
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// collectVars lists the variables of the system, sorted. The returned
// slice and the dedup map are solver scratch: valid until the next
// collectVars call, which is always after the previous result is dead
// (one Fourier–Motzkin loop is live per solver at a time).
func (s *Solver) collectVars(ineqs []linear) []string {
	if s.varSeen == nil {
		s.varSeen = make(map[string]bool, 16)
	} else {
		clear(s.varSeen)
	}
	out := s.varBuf[:0]
	for _, l := range ineqs {
		for v := range l.coef {
			if !s.varSeen[v] {
				s.varSeen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	s.varBuf = out
	return out
}

// pickVar chooses the variable whose elimination produces the fewest new
// constraints (classic min-product heuristic), breaking ties by name for
// determinism.
func pickVar(ineqs []linear, vars []string) string {
	best := vars[0]
	bestCost := 1 << 62
	for _, v := range vars {
		var lo, hi int
		for _, l := range ineqs {
			c := l.coef[v]
			switch {
			case c > 0:
				hi++
			case c < 0:
				lo++
			}
		}
		cost := lo * hi
		if cost < bestCost {
			bestCost = cost
			best = v
		}
	}
	return best
}

// eliminate removes variable v by pairwise combination of its lower and
// upper bounds. With a unit coefficient on either side the combination is
// exact over ℤ; otherwise the real shadow is used (over-approximate).
// The survivors are compacted in place over the input (the caller owns
// it); the lower/upper partitions are solver scratch.
func (s *Solver) eliminate(ineqs []linear, v string) []linear {
	lowers, uppers := s.elimLo[:0], s.elimHi[:0]
	rest := ineqs[:0]
	for _, l := range ineqs {
		c := l.coef[v]
		switch {
		case c > 0:
			uppers = append(uppers, l) // c·v ≤ k − t
		case c < 0:
			lowers = append(lowers, l) // v ≥ (t − k)/(−c)
		default:
			rest = append(rest, l)
		}
	}
	s.elimLo, s.elimHi = lowers, uppers
	for _, up := range uppers {
		for _, lo := range lowers {
			cu := up.coef[v]  // > 0
			cl := -lo.coef[v] // > 0
			// cl·up + cu·lo eliminates v:
			// cl·(cu·v + tu) ≤ cl·ku  and  cu·(−cl·v + tl) ≤ cu·kl
			comb := linear{coef: make(map[string]int64), k: cl*up.k + cu*lo.k}
			for key, c := range up.coef {
				if key == v {
					continue
				}
				comb.coef[key] += cl * c
			}
			for key, c := range lo.coef {
				if key == v {
					continue
				}
				comb.coef[key] += cu * c
				if comb.coef[key] == 0 {
					delete(comb.coef, key)
				}
			}
			for key, c := range comb.coef {
				if c == 0 {
					delete(comb.coef, key)
				}
			}
			rest = append(rest, comb)
		}
	}
	return rest
}
