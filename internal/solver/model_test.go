package solver

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

// checkModel verifies an assignment against the original conditions.
func checkModel(t *testing.T, cs sym.Set, m map[string]int64) {
	t.Helper()
	evalTerm := func(e *sym.Expr) int64 {
		if v, ok := e.IsConst(); ok {
			return v
		}
		return m[e.Key()]
	}
	for _, c := range cs.Conds() {
		if c.Kind != sym.KCond {
			continue
		}
		// Nested boolean terms are opaque in the model; skip conditions on
		// them (they are bounded 0/1 but not directly evaluable here).
		if c.A.Kind == sym.KCond || c.B.Kind == sym.KCond {
			continue
		}
		if !c.Pred.Eval(evalTerm(c.A), evalTerm(c.B)) {
			t.Errorf("model %v violates %s", m, c)
		}
	}
}

func TestModelSimple(t *testing.T) {
	a := sym.Arg("a")
	cs := set(
		sym.Cond(a, ir.GT, sym.Const(2)),
		sym.Cond(a, ir.LT, sym.Const(5)),
	)
	s := New()
	m, ok := s.Model(cs)
	if !ok {
		t.Fatal("no model found")
	}
	checkModel(t, cs, m)
	if v := m["[a]"]; v != 3 && v != 4 {
		t.Errorf("[a] = %d", v)
	}
}

func TestModelUnsat(t *testing.T) {
	a := sym.Arg("a")
	cs := set(
		sym.Cond(a, ir.GT, sym.Const(2)),
		sym.Cond(a, ir.LT, sym.Const(2)),
	)
	if _, ok := New().Model(cs); ok {
		t.Fatal("model for unsat system")
	}
}

func TestModelDisequality(t *testing.T) {
	a := sym.Arg("a")
	cs := set(
		sym.Cond(a, ir.GE, sym.Const(0)),
		sym.Cond(a, ir.LE, sym.Const(1)),
		sym.Cond(a, ir.NE, sym.Const(0)),
	)
	m, ok := New().Model(cs)
	if !ok {
		t.Fatal("no model")
	}
	checkModel(t, cs, m)
	if m["[a]"] != 1 {
		t.Errorf("[a] = %d, want 1", m["[a]"])
	}
}

func TestModelFieldChains(t *testing.T) {
	dev := sym.Arg("dev")
	cs := set(
		sym.Cond(dev, ir.NE, sym.Null()),
		sym.Cond(sym.Ret(), ir.EQ, sym.Const(0)),
		sym.Cond(sym.Field(dev, "pm"), ir.GE, sym.Const(1)),
	)
	m, ok := New().Model(cs)
	if !ok {
		t.Fatal("no model")
	}
	checkModel(t, cs, m)
	if m["[dev]"] == 0 {
		t.Error("[dev] must be non-null")
	}
}

func TestModelPrefersSmallValues(t *testing.T) {
	cs := set(sym.Cond(sym.Arg("x"), ir.GE, sym.Const(0)))
	m, ok := New().Model(cs)
	if !ok || m["[x]"] != 0 {
		t.Errorf("model: %v", m)
	}
}

// Property: whenever Sat says satisfiable on a small random system, Model
// finds an assignment and the assignment checks out.
func TestPropertyModelMatchesSat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vars := []*sym.Expr{sym.Arg("a"), sym.Arg("b")}
	for trial := 0; trial < 300; trial++ {
		cs := sym.True()
		for i := 0; i < 4; i++ {
			c := randomAtom(rng, vars)
			if c.Kind == sym.KCond {
				cs = cs.And(c)
			}
		}
		s := New()
		if !s.Sat(cs) {
			continue
		}
		m, ok := s.Model(cs)
		if !ok {
			t.Fatalf("trial %d: sat but no model for %s", trial, cs)
		}
		checkModel(t, cs, m)
	}
}
