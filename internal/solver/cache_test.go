package solver

import (
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

func TestCacheSharedAcrossForks(t *testing.T) {
	parent := New()
	cs := set(sym.Cond(sym.Arg("a"), ir.GT, sym.Arg("b")))
	if !parent.Sat(cs) {
		t.Fatal("query should be SAT")
	}
	child := parent.Fork()
	if !child.Sat(cs) {
		t.Fatal("query should be SAT in fork")
	}
	st := child.Stats()
	if st.CacheHits != 1 {
		t.Errorf("fork missed the shared cache: %+v", st)
	}
	if st.Queries != 1 {
		t.Errorf("fork must have fresh counters, got %+v", st)
	}
	if parent.Stats().Queries != 1 {
		t.Errorf("fork polluted parent counters: %+v", parent.Stats())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Queries: 3, CacheHits: 1, Sat: 2, Unsat: 1, GaveUp: 1}
	b := Stats{Queries: 2, CacheHits: 2, Sat: 1, Unsat: 1}
	a.Add(b)
	want := Stats{Queries: 5, CacheHits: 3, Sat: 3, Unsat: 2, GaveUp: 1}
	if a != want {
		t.Errorf("got %+v, want %+v", a, want)
	}
}

func TestNewWithCacheSharesAcrossSolvers(t *testing.T) {
	cache := NewCache()
	s1 := NewWithCache(Limits{}, cache)
	s2 := NewWithCache(Limits{}, cache)
	cs := set(sym.Cond(sym.Arg("x"), ir.LE, sym.Arg("y")))
	s1.Sat(cs)
	s2.Sat(cs)
	if s2.Stats().CacheHits != 1 {
		t.Errorf("second solver missed shared cache: %+v", s2.Stats())
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestNilCacheDisablesMemoization(t *testing.T) {
	s := NewWithCache(Limits{}, nil)
	cs := set(sym.Cond(sym.Arg("x"), ir.LE, sym.Arg("y")))
	s.Sat(cs)
	s.Sat(cs)
	if s.Stats().CacheHits != 0 {
		t.Errorf("nil cache must disable memoization: %+v", s.Stats())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	parent := New()
	queries := make([]sym.Set, 40)
	for i := range queries {
		queries[i] = set(
			sym.Cond(sym.Arg("a"), ir.GE, sym.Arg("b")), // forces the full procedure
			sym.Cond(sym.Arg("a"), ir.GE, sym.Const(int64(i%7))),
			sym.Cond(sym.Arg("b"), ir.LT, sym.Const(int64(i%5))),
		)
	}
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slv := parent.Fork()
			results[w] = make([]bool, len(queries))
			for i, q := range queries {
				results[w][i] = slv.Sat(q)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range queries {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d query %d verdict diverged", w, i)
			}
		}
	}
}
