package solver

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

// FuzzSolver cross-checks the quickSolve interval fast path against the
// full Fourier–Motzkin procedure. quickSolve's contract is that whenever
// it claims a query (handled=true) its verdict is identical to the slow
// path's — give-up behavior included, which is why it defers any query the
// slow path might answer conservatively. The fuzzer builds conjunctions
// over a small term vocabulary (so terms collide and intervals interact)
// and asserts both procedures agree under several limit settings.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{0, 2, 9}, uint8(0))
	f.Add([]byte{0, 2, 9, 0, 5, 3}, uint8(1))                   // contradictory bounds on one term
	f.Add([]byte{1, 1, 0, 1, 1, 1, 1, 1, 2}, uint8(2))          // NE exclusions
	f.Add([]byte{0x80, 0, 7, 2, 3, 200, 3, 4, 128}, uint8(3))   // flipped orientation, negatives
	f.Add([]byte{5, 0, 1, 5, 1, 0, 4, 2, 1, 4, 3, 1}, uint8(0)) // bool term + Ret
	f.Add([]byte{0x40, 0, 0, 0x41, 1, 0, 0x42, 2, 0}, uint8(1)) // term-vs-term (slow path only)
	f.Fuzz(func(t *testing.T, data []byte, limitSel uint8) {
		var limits Limits
		switch limitSel % 4 {
		case 1:
			limits = Limits{MaxSplits: 1}
		case 2:
			limits = Limits{MaxSplits: 3, MaxConstraints: 8}
		case 3:
			limits = Limits{MaxConstraints: 6}
		}
		// A small vocabulary of interned terms: collisions across conjuncts
		// are what make intervals (and disequality exclusions) interact.
		terms := []*sym.Expr{
			sym.Arg("a"),
			sym.Arg("b"),
			sym.Field(sym.Arg("a"), "f"),
			sym.Fresh("w"),
			sym.Ret(),
			sym.Cond(sym.Arg("b"), ir.NE, sym.Null()), // opaque boolean term
		}
		preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
		var conds []*sym.Expr
		for i := 0; i+2 < len(data) && len(conds) < 24; i += 3 {
			tm := terms[int(data[i]&0x0f)%len(terms)]
			pred := preds[int(data[i+1])%len(preds)]
			// Small constants so bounds from different conjuncts overlap.
			k := sym.Const(int64(int8(data[i+2])) / 8)
			a, b := tm, sym.Const(k.Int)
			switch {
			case data[i]&0x40 != 0:
				// Term-vs-term conjunct: out of quickSolve's scope by
				// construction, exercises the bail-out agreement.
				b = terms[int(data[i+2])%len(terms)]
			case data[i]&0x80 != 0:
				a, b = b, a // constant on the left
			}
			conds = append(conds, sym.Cond(a, pred, b))
		}
		cs := sym.NewSet(conds)

		fast := NewWithLimits(limits)
		slow := NewWithLimits(limits)
		slow.noQuick = true
		v1 := fast.Sat(cs)
		v2 := slow.Sat(cs)
		if v1 != v2 {
			t.Fatalf("quickSolve disagrees with full procedure: quick=%v full=%v\nconds: %v",
				v1, v2, cs.Conds())
		}
		// Re-asking must be stable (second answer comes from the cache).
		if fast.Sat(cs) != v1 {
			t.Fatal("cached verdict differs from computed verdict")
		}
	})
}
