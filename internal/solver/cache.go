package solver

import "sync"

// Cache is a sharded, mutex-striped SAT/UNSAT memo table keyed by the
// canonical identity of a constraint set (sym.Set.CacheKey). A single
// Cache is safely shared by every SCC worker and path worker of an
// analysis run: results are deterministic for fixed Limits, so sharing
// only removes duplicate solves, never changes an answer.
type Cache struct {
	shards [cacheShardCount]cacheShard
}

const cacheShardCount = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

// NewCache returns an empty shared solver cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]bool)
	}
	return c
}

// shardFor hashes the key (FNV-1a) onto a stripe.
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%cacheShardCount]
}

// Get returns the memoized verdict for key, if present.
func (c *Cache) Get(key string) (verdict, ok bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	verdict, ok = s.m[key]
	s.mu.RUnlock()
	return verdict, ok
}

// Put records the verdict for key. Last writer wins; concurrent writers
// always agree because the solver is deterministic for fixed limits.
func (c *Cache) Put(key string, verdict bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.m[key] = verdict
	s.mu.Unlock()
}

// Len returns the number of memoized entries (diagnostics and tests).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
