package solver

import "sync"

// Cache is a sharded, mutex-striped SAT/UNSAT memo table keyed by the
// canonical identity of a constraint set (sym.Set.CacheKey). A single
// Cache is safely shared by every SCC worker and path worker of an
// analysis run: results are deterministic for fixed Limits, so sharing
// only removes duplicate solves, never changes an answer.
//
// Alongside the verdict, each entry records whether solving the query
// exceeded a budget (gave up). Cache hits replay that flag, so a solver's
// give-up count is a deterministic function of the queries it issued —
// independent of which worker happened to populate the cache first. That
// is what keeps per-function give-up diagnostics byte-identical at any
// Workers setting under the work-stealing scheduler.
type Cache struct {
	shards [cacheShardCount]cacheShard
}

const cacheShardCount = 64

// cache entry bits.
const (
	entrySat    uint8 = 1 << 0
	entryGaveUp uint8 = 1 << 1
)

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]uint8
}

// NewCache returns an empty shared solver cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]uint8)
	}
	return c
}

// shardFor hashes the key (FNV-1a) onto a stripe.
func (c *Cache) shardFor(key []byte) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%cacheShardCount]
}

// Get returns the memoized verdict and give-up flag for key, if present.
// The key is taken as bytes so probing with a reused buffer allocates
// nothing (the map lookup converts in place).
func (c *Cache) Get(key []byte) (verdict, gaveUp, ok bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	e, ok := s.m[string(key)]
	s.mu.RUnlock()
	return e&entrySat != 0, e&entryGaveUp != 0, ok
}

// Put records the verdict for key. Last writer wins; concurrent writers
// always agree because the solver is deterministic for fixed limits.
func (c *Cache) Put(key []byte, verdict, gaveUp bool) {
	var e uint8
	if verdict {
		e |= entrySat
	}
	if gaveUp {
		e |= entryGaveUp
	}
	s := c.shardFor(key)
	s.mu.Lock()
	s.m[string(key)] = e
	s.mu.Unlock()
}

// Len returns the number of memoized entries (diagnostics and tests).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
