package solver

import (
	"repro/internal/obs"
	"repro/internal/sym"
)

// PairBatch batches satisfiability queries of the form base ∧ other with a
// fixed base — the shape of every Step III pair check, where one candidate
// entry is compared against a run of kept entries. A batch is equivalent
// to calling Sat(base.AndSet(other)) for each pair — same verdicts, same
// counters per issued query, same shared-cache entries — but:
//
//   - the conjunction's cache key is built by merging the two sorted
//     condition lists into a reused buffer, so a shared-cache hit costs no
//     allocation and the conjunction Set is only materialized on a miss;
//   - verdicts are memoized per batch, so a repeated other-set (common
//     inside a changes-signature bucket, whose entries often share
//     constraint structure) probes the shared cache once per bucket run
//     instead of once per pair, and issues no additional query.
//
// Obtain a batch with Solver.Pairs; at most one batch per solver is live
// at a time (Pairs resets and returns the solver's scratch batch).
type PairBatch struct {
	s    *Solver
	base sym.Set
	memo map[string]bool
	buf  []byte
}

// Pairs starts a query batch with the given base constraint set. The
// returned batch borrows the solver's scratch: starting a new batch
// invalidates the previous one.
func (s *Solver) Pairs(base sym.Set) *PairBatch {
	pb := &s.pairs
	pb.s = s
	pb.base = base
	if pb.memo == nil {
		pb.memo = make(map[string]bool, 8)
	} else {
		clear(pb.memo)
	}
	return pb
}

// Sat reports whether base ∧ other is satisfiable. Verdicts and give-up
// accounting are identical to s.Sat(base.AndSet(other)); only the number
// of cache probes and allocations differ. When per-query timing is on
// (tracing), or the cache is disabled, it delegates to the plain path so
// observability output is unchanged.
func (pb *PairBatch) Sat(other sym.Set) bool {
	s := pb.s
	if s.cache == nil || s.obs.QueryTiming() {
		return s.Sat(pb.base.AndSet(other))
	}
	if pb.base.HasFalse() || other.HasFalse() {
		return s.Sat(pb.base.AndSet(other)) // preserve the early-Unsat path
	}
	buf, n, ok := sym.AppendMergedCacheKey(pb.buf[:0], pb.base, other)
	pb.buf = buf
	if !ok {
		return s.Sat(pb.base.AndSet(other)) // uninterned conditions: no fast key
	}
	if n == 0 {
		s.stats.Queries++
		s.obs.Count(obs.MSolverQueries, 1)
		s.stats.Sat++
		s.obs.Count(obs.MSolverSat, 1)
		return true
	}
	if v, ok := pb.memo[string(buf)]; ok {
		return v // repeated pair within the batch: no query issued
	}
	s.stats.Queries++
	s.obs.Count(obs.MSolverQueries, 1)
	if v, gu, ok := s.cache.Get(buf); ok {
		s.stats.CacheHits++
		s.obs.Count(obs.MSolverCacheHits, 1)
		if gu {
			s.noteGaveUp()
		}
		pb.memo[string(buf)] = v
		return v
	}
	cs := pb.base.AndSet(other)
	res := s.solveTracked(cs)
	s.cache.Put(buf, res, s.curGaveUp)
	if s.curGaveUp {
		s.noteGaveUp()
	}
	if res {
		s.stats.Sat++
		s.obs.Count(obs.MSolverSat, 1)
	} else {
		s.stats.Unsat++
		s.obs.Count(obs.MSolverUnsat, 1)
	}
	pb.memo[string(buf)] = res
	return res
}
