// Package ir defines the abstract program representation of the RID paper
// (Figure 3). Programs are lowered from the mini-C AST into this form and
// all analysis operates on it.
//
// The instruction set is deliberately small:
//
//	x = v
//	x = y.field
//	x = random
//	fn(v1, ..., vn)
//	x = fn(v1, ..., vn)
//	return v
//	x = v1 p v2
//	branch x, l1, l2
//	branch l
//
// plus one extension, "assume x", used to model assert() by constraining
// the analyzed path (the paper ignores the assertion-failure path the same
// way). Values are variables, numeral constants, booleans, or null.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/frontend/token"
)

// Pred is one of the six relational predicates preserved by the
// abstraction.
type Pred int

// Predicates.
const (
	EQ Pred = iota
	NE
	LT
	LE
	GT
	GE
)

var predNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

// String renders the predicate in C syntax.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("Pred(%d)", int(p))
}

// Negate returns the complementary predicate (¬(a<b) is a>=b, etc.).
func (p Pred) Negate() Pred {
	switch p {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return p
}

// Flip returns the predicate with operands swapped (a<b iff b>a).
func (p Pred) Flip() Pred {
	switch p {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return p // EQ, NE are symmetric
}

// Eval applies the predicate to concrete integers.
func (p Pred) Eval(a, b int64) bool {
	switch p {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// PredFromToken converts a comparison token kind to a Pred.
func PredFromToken(k token.Kind) (Pred, bool) {
	switch k {
	case token.EQ:
		return EQ, true
	case token.NE:
		return NE, true
	case token.LT:
		return LT, true
	case token.LE:
		return LE, true
	case token.GT:
		return GT, true
	case token.GE:
		return GE, true
	}
	return EQ, false
}

// ---------------------------------------------------------------------------
// Values

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	ValVar ValueKind = iota
	ValInt
	ValBool
	ValNull
)

// Value is an operand of an instruction: a variable name, a numeral, a
// boolean, or null.
type Value struct {
	Kind ValueKind
	Var  string // ValVar
	Int  int64  // ValInt
	Bool bool   // ValBool
}

// Var returns a variable value.
func Var(name string) Value { return Value{Kind: ValVar, Var: name} }

// Int returns a numeral value.
func Int(v int64) Value { return Value{Kind: ValInt, Int: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Kind: ValBool, Bool: v} }

// Null returns the null value.
func Null() Value { return Value{Kind: ValNull} }

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case ValVar:
		return v.Var
	case ValInt:
		return fmt.Sprintf("%d", v.Int)
	case ValBool:
		return fmt.Sprintf("%t", v.Bool)
	case ValNull:
		return "null"
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Instructions

// Op is the opcode of an instruction.
type Op int

// Opcodes, mirroring Figure 3 of the paper plus Assume.
const (
	OpAssign     Op = iota // Dst = Val
	OpLoadField            // Dst = Obj.Field
	OpRandom               // Dst = random
	OpCall                 // [Dst =] Fn(Args...)
	OpReturn               // return Val (Val may be absent: HasVal=false)
	OpCompare              // Dst = A Pred B
	OpBranchCond           // branch Cond, True, False
	OpBranch               // branch Target
	OpAssume               // assume Cond (assert lowering)
)

// Instr is a single abstract instruction. Fields are used according to Op;
// unused fields are zero.
type Instr struct {
	Op     Op
	Dst    string  // OpAssign, OpLoadField, OpRandom, OpCompare, OpCall ("" if call result unused)
	Val    Value   // OpAssign, OpReturn
	HasVal bool    // OpReturn: whether a value is returned
	Obj    Value   // OpLoadField: base object
	Field  string  // OpLoadField
	Fn     string  // OpCall
	Args   []Value // OpCall
	Pred   Pred    // OpCompare
	A, B   Value   // OpCompare
	Cond   Value   // OpBranchCond, OpAssume
	True   int     // OpBranchCond: target block index
	False  int     // OpBranchCond
	Target int     // OpBranch
	Pos    token.Pos
}

// String renders the instruction in the paper's syntax.
func (in *Instr) String() string {
	switch in.Op {
	case OpAssign:
		return fmt.Sprintf("%s = %s", in.Dst, in.Val)
	case OpLoadField:
		return fmt.Sprintf("%s = %s.%s", in.Dst, in.Obj, in.Field)
	case OpRandom:
		return fmt.Sprintf("%s = random", in.Dst)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		call := fmt.Sprintf("%s(%s)", in.Fn, strings.Join(args, ", "))
		if in.Dst != "" {
			return fmt.Sprintf("%s = %s", in.Dst, call)
		}
		return call
	case OpReturn:
		if in.HasVal {
			return fmt.Sprintf("return %s", in.Val)
		}
		return "return"
	case OpCompare:
		return fmt.Sprintf("%s = %s %s %s", in.Dst, in.A, in.Pred, in.B)
	case OpBranchCond:
		return fmt.Sprintf("branch %s, b%d, b%d", in.Cond, in.True, in.False)
	case OpBranch:
		return fmt.Sprintf("branch b%d", in.Target)
	case OpAssume:
		return fmt.Sprintf("assume %s", in.Cond)
	}
	return fmt.Sprintf("op(%d)", int(in.Op))
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpReturn, OpBranch, OpBranchCond:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Functions and programs

// Block is a basic block: straight-line instructions ending in a
// terminator. Branch targets are block indices within the function.
type Block struct {
	Index  int
	Instrs []*Instr
}

// Terminator returns the block's final instruction, or nil if the block is
// not yet terminated (only legal during construction).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the indices of the successor blocks.
func (b *Block) Succs() []int {
	return b.AppendSuccs(nil)
}

// AppendSuccs appends the successor block indices to dst and returns the
// extended slice. Callers building whole-function CFGs use this with a
// shared backing array so successor lists cost one allocation per
// function instead of one per block.
func (b *Block) AppendSuccs(dst []int) []int {
	t := b.Terminator()
	if t == nil {
		return dst
	}
	switch t.Op {
	case OpBranch:
		return append(dst, t.Target)
	case OpBranchCond:
		if t.True == t.False {
			return append(dst, t.True)
		}
		return append(dst, t.True, t.False)
	}
	return dst
}

// NumSuccs returns the number of successor blocks without allocating.
func (b *Block) NumSuccs() int {
	t := b.Terminator()
	if t == nil {
		return 0
	}
	switch t.Op {
	case OpBranch:
		return 1
	case OpBranchCond:
		if t.True == t.False {
			return 1
		}
		return 2
	}
	return 0
}

// Func is a function in the abstract program. Block 0 is the entry.
type Func struct {
	Name     string
	Params   []string
	Blocks   []*Block
	HasRet   bool // declared with a non-void result
	Pos      token.Pos
	SrcFile  string
	NumConds int // number of conditional branches (category-2 gating, §5.2)
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends an empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(f.Params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.Index)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}

// Callees returns the set of function names called by f, in first-call
// order without duplicates.
func (f *Func) Callees() []string {
	seen := make(map[string]bool)
	var out []string
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall && !seen[in.Fn] {
				seen[in.Fn] = true
				out = append(out, in.Fn)
			}
		}
	}
	return out
}

// Program is a set of functions indexed by name, plus the list of extern
// declarations for which no body exists.
type Program struct {
	Funcs   map[string]*Func
	Order   []string // deterministic iteration order (definition order)
	Externs map[string]bool
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func), Externs: make(map[string]bool)}
}

// Add inserts a function definition. A redefinition replaces the previous
// body (last definition wins, matching the linker's weak-symbol handling
// described in §5.3 of the paper).
func (p *Program) Add(f *Func) {
	if _, exists := p.Funcs[f.Name]; !exists {
		p.Order = append(p.Order, f.Name)
	}
	p.Funcs[f.Name] = f
	delete(p.Externs, f.Name)
}

// AddExtern records a function declared but not defined.
func (p *Program) AddExtern(name string) {
	if _, exists := p.Funcs[name]; !exists {
		p.Externs[name] = true
	}
}

// Merge folds other into p (multi-file analysis). Definitions win over
// externs; duplicate definitions follow last-wins.
func (p *Program) Merge(other *Program) {
	for _, name := range other.Order {
		p.Add(other.Funcs[name])
	}
	for name := range other.Externs {
		p.AddExtern(name)
	}
}

// Validate checks structural invariants: entry block exists, every block
// is terminated, and branch targets are in range. It returns the first
// violation found.
func (p *Program) Validate() error {
	for _, name := range p.Order {
		f := p.Funcs[name]
		if len(f.Blocks) == 0 {
			return fmt.Errorf("function %s has no blocks", name)
		}
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil {
				return fmt.Errorf("function %s: block b%d not terminated", name, b.Index)
			}
			for i, in := range b.Instrs {
				if in.IsTerminator() && i != len(b.Instrs)-1 {
					return fmt.Errorf("function %s: block b%d has terminator mid-block", name, b.Index)
				}
			}
			for _, s := range b.Succs() {
				if s < 0 || s >= len(f.Blocks) {
					return fmt.Errorf("function %s: block b%d branches to out-of-range b%d", name, b.Index, s)
				}
			}
		}
	}
	return nil
}
