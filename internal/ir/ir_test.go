package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/frontend/token"
)

func TestPredNegate(t *testing.T) {
	pairs := map[Pred]Pred{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for p, want := range pairs {
		if got := p.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", p, got, want)
		}
		if got := p.Negate().Negate(); got != p {
			t.Errorf("double negation of %s = %s", p, got)
		}
	}
}

func TestPredFlip(t *testing.T) {
	pairs := map[Pred]Pred{EQ: EQ, NE: NE, LT: GT, LE: GE, GT: LT, GE: LE}
	for p, want := range pairs {
		if got := p.Flip(); got != want {
			t.Errorf("%s.Flip() = %s, want %s", p, got, want)
		}
	}
}

// Property: p.Eval(a,b) == p.Flip().Eval(b,a) and p.Eval == !p.Negate().Eval.
func TestPredEvalLaws(t *testing.T) {
	preds := []Pred{EQ, NE, LT, LE, GT, GE}
	f := func(a, b int8) bool {
		x, y := int64(a), int64(b)
		for _, p := range preds {
			if p.Eval(x, y) != p.Flip().Eval(y, x) {
				return false
			}
			if p.Eval(x, y) == p.Negate().Eval(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredFromToken(t *testing.T) {
	for tok, want := range map[token.Kind]Pred{
		token.EQ: EQ, token.NE: NE, token.LT: LT,
		token.LE: LE, token.GT: GT, token.GE: GE,
	} {
		got, ok := PredFromToken(tok)
		if !ok || got != want {
			t.Errorf("PredFromToken(%s) = %s, %t", tok, got, ok)
		}
	}
	if _, ok := PredFromToken(token.PLUS); ok {
		t.Error("PLUS is not a predicate")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Var("dev"), "dev"},
		{Int(-3), "-3"},
		{Bool(true), "true"},
		{Null(), "null"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAssign, Dst: "x", Val: Int(5)}, "x = 5"},
		{Instr{Op: OpLoadField, Dst: "t", Obj: Var("dev"), Field: "pm"}, "t = dev.pm"},
		{Instr{Op: OpRandom, Dst: "r"}, "r = random"},
		{Instr{Op: OpCall, Dst: "v", Fn: "f", Args: []Value{Var("a"), Int(1)}}, "v = f(a, 1)"},
		{Instr{Op: OpCall, Fn: "g"}, "g()"},
		{Instr{Op: OpReturn, Val: Int(0), HasVal: true}, "return 0"},
		{Instr{Op: OpReturn}, "return"},
		{Instr{Op: OpCompare, Dst: "c", Pred: LT, A: Var("a"), B: Int(0)}, "c = a < 0"},
		{Instr{Op: OpBranchCond, Cond: Var("c"), True: 1, False: 2}, "branch c, b1, b2"},
		{Instr{Op: OpBranch, Target: 3}, "branch b3"},
		{Instr{Op: OpAssume, Cond: Var("c")}, "assume c"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func buildFunc() *Func {
	f := &Func{Name: "f", Params: []string{"a"}}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Instrs = append(b0.Instrs,
		&Instr{Op: OpCompare, Dst: "c", Pred: GT, A: Var("a"), B: Int(0)},
		&Instr{Op: OpBranchCond, Cond: Var("c"), True: b1.Index, False: b2.Index},
	)
	b1.Instrs = append(b1.Instrs,
		&Instr{Op: OpCall, Dst: "x", Fn: "g", Args: []Value{Var("a")}},
		&Instr{Op: OpBranch, Target: b2.Index},
	)
	b2.Instrs = append(b2.Instrs, &Instr{Op: OpReturn, Val: Int(0), HasVal: true})
	return f
}

func TestBlockSuccs(t *testing.T) {
	f := buildFunc()
	if got := f.Blocks[0].Succs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("b0 succs: %v", got)
	}
	if got := f.Blocks[1].Succs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("b1 succs: %v", got)
	}
	if got := f.Blocks[2].Succs(); got != nil {
		t.Errorf("return block succs: %v", got)
	}
}

func TestBranchCondSameTargets(t *testing.T) {
	in := Instr{Op: OpBranchCond, Cond: Var("c"), True: 1, False: 1}
	b := &Block{Instrs: []*Instr{&in}}
	if got := b.Succs(); len(got) != 1 {
		t.Errorf("degenerate branch succs: %v", got)
	}
}

func TestCallees(t *testing.T) {
	f := buildFunc()
	if got := f.Callees(); len(got) != 1 || got[0] != "g" {
		t.Errorf("callees: %v", got)
	}
}

func TestProgramAddAndExterns(t *testing.T) {
	p := NewProgram()
	p.AddExtern("g")
	if !p.Externs["g"] {
		t.Fatal("extern not recorded")
	}
	p.Add(buildFunc())
	g := &Func{Name: "g"}
	g.NewBlock().Instrs = []*Instr{{Op: OpReturn}}
	p.Add(g)
	if p.Externs["g"] {
		t.Error("definition must clear extern mark")
	}
	// Last definition wins (weak-symbol behavior).
	g2 := &Func{Name: "g", Params: []string{"x"}}
	g2.NewBlock().Instrs = []*Instr{{Op: OpReturn}}
	p.Add(g2)
	if len(p.Funcs["g"].Params) != 1 {
		t.Error("redefinition should replace")
	}
	if len(p.Order) != 2 {
		t.Errorf("order: %v", p.Order)
	}
}

func TestValidateCatchesUnterminated(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "bad"}
	f.NewBlock() // empty block, no terminator
	p.Add(f)
	if err := p.Validate(); err == nil {
		t.Error("unterminated block must fail validation")
	}
}

func TestValidateCatchesOutOfRangeBranch(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "bad"}
	b := f.NewBlock()
	b.Instrs = []*Instr{{Op: OpBranch, Target: 7}}
	p.Add(f)
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch must fail validation")
	}
}

func TestValidateCatchesMidBlockTerminator(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "bad"}
	b := f.NewBlock()
	b.Instrs = []*Instr{
		{Op: OpReturn},
		{Op: OpAssign, Dst: "x", Val: Int(1)},
		{Op: OpReturn},
	}
	p.Add(f)
	if err := p.Validate(); err == nil {
		t.Error("mid-block terminator must fail validation")
	}
}

func TestFuncString(t *testing.T) {
	text := buildFunc().String()
	for _, want := range []string{"func f(a):", "b0:", "branch c, b1, b2", "return 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}
