package serve

import "sync"

// resultCache memoizes analyze responses by request digest, FIFO-bounded.
// Entries are immutable once stored; get returns a copy so handlers can
// stamp per-request fields (Cached, ElapsedMS) without racing.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]AnalyzeResponse
	order   []string // insertion order, for eviction
}

// newResultCache returns a cache holding at most max responses; a
// negative max disables caching (every method is a nil-safe no-op).
func newResultCache(max int) *resultCache {
	if max < 0 {
		return nil
	}
	return &resultCache{max: max, entries: map[string]AnalyzeResponse{}}
}

func (c *resultCache) get(key string) *AnalyzeResponse {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if !ok {
		return nil
	}
	return &v
}

func (c *resultCache) put(key string, v *AnalyzeResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	if c.max == 0 {
		return
	}
	c.entries[key] = *v
	c.order = append(c.order, key)
}
