package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/internal/store/storetest"
)

// TestSummaryLookupOrder pins the /v1/summary tier order the serve.go
// comment promises: with both -cache-dir and -cache-url configured, the
// local store is always consulted first — a digest the replica has
// computed locally is answered with zero wire traffic — and only a local
// miss falls through to the fleet store.
func TestSummaryLookupOrder(t *testing.T) {
	// Fleet store server, fronted by a pass-through proxy whose request
	// counter is the wire-traffic oracle.
	remoteDir := t.TempDir()
	rsrv, err := remote.NewServer(remote.ServerConfig{Dir: remoteDir})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := rsrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx) //nolint:errcheck // teardown
	})
	proxy := storetest.NewFlakyProxy(t, "http://"+addr)

	// One digest only the local tier holds, one only the fleet holds.
	localDir := t.TempDir()
	localOnly, remoteOnly := "lookup_local_fn", "lookup_remote_fn"
	var dLocal, dRemote store.Digest
	dLocal[0], dRemote[0] = 0x11, 0x22
	lst, err := store.Open(localDir, store.Fingerprint{}, nil)
	if err != nil {
		t.Fatalf("open local store: %v", err)
	}
	if err := lst.Save(localOnly, dLocal, storetest.Entry(localOnly)); err != nil {
		t.Fatalf("seed local store: %v", err)
	}
	rst, err := store.Open(remoteDir, store.Fingerprint{}, nil)
	if err != nil {
		t.Fatalf("open remote store dir: %v", err)
	}
	if err := rst.Save(remoteOnly, dRemote, storetest.Entry(remoteOnly)); err != nil {
		t.Fatalf("seed remote store: %v", err)
	}

	cfg := Config{}
	cfg.Options.CacheDir = localDir
	cfg.Options.CacheURL = proxy.URL()
	_, ts := newTestServer(t, cfg)

	lookup := func(d store.Digest) (int, SummaryResponse) {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/summary/" + d.String())
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		data, _ := io.ReadAll(r.Body)
		var sr SummaryResponse
		if r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatalf("bad summary response %s: %v", data, err)
			}
		}
		return r.StatusCode, sr
	}

	// Locally-held digest: served without touching the fleet store.
	before := proxy.Served()
	status, sr := lookup(dLocal)
	if status != http.StatusOK || sr.Fn != localOnly {
		t.Fatalf("local-tier lookup: status %d fn %q, want 200 %q", status, sr.Fn, localOnly)
	}
	if n := proxy.Served() - before; n != 0 {
		t.Fatalf("local-tier lookup crossed the wire %d times; local must be consulted first", n)
	}

	// Fleet-only digest: a local miss falls through to the remote tier.
	before = proxy.Served()
	status, sr = lookup(dRemote)
	if status != http.StatusOK || sr.Fn != remoteOnly {
		t.Fatalf("remote-tier lookup: status %d fn %q, want 200 %q", status, sr.Fn, remoteOnly)
	}
	if proxy.Served() == before {
		t.Fatal("remote-tier lookup produced no wire traffic; the fleet store was never consulted")
	}

	// Unknown digest: miss in both tiers, clean 404.
	var dNone store.Digest
	dNone[0] = 0x33
	if status, _ := lookup(dNone); status != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", status)
	}
}
