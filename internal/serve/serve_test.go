package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

const buggyDriver = `
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int do_transfer(struct device *dev);

int drv_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postAnalyze(t *testing.T, url string, req *AnalyzeRequest) (*http.Response, *AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, body)
}

func postRaw(t *testing.T, url string, body []byte) (*http.Response, *AnalyzeResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatalf("status %d: body is not an AnalyzeResponse (%v): %s", resp.StatusCode, err, data)
	}
	return resp, &ar
}

func getHealth(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAnalyzeFindsBug(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, ar)
	}
	if ar.Bugs != 1 || !strings.Contains(ar.Report, "drv_op") {
		t.Fatalf("response: %+v", ar)
	}
	if ar.Cached {
		t.Fatal("first request must not be cached")
	}
	if h := getHealth(t, ts.URL); h.Served != 1 || h.Inflight != 0 {
		t.Fatalf("health after one request: %+v", h)
	}
}

func TestAnalyzeMalformedInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"truncated json", `{"files": {`, "malformed"},
		{"unknown field", `{"files":{"a.c":""},"bogus":1}`, "malformed"},
		{"no sources", `{}`, "no sources"},
		{"files and corpus", `{"files":{"a.c":""},"corpus":true}`, "mutually exclusive"},
		{"corpus without dir", `{"corpus":true}`, "no resident corpus"},
		{"bad format", `{"files":{"a.c":""},"format":"xml"}`, "unknown format"},
		{"bad spec", `{"files":{"a.c":""},"spec":"bsd"}`, "unknown spec"},
		{"bad source", `{"files":{"a.c":"int f( {"}}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (want 400): %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.want) {
				t.Fatalf("error body %q missing %q", data, tc.want)
			}
		})
	}
}

func TestAnalyzeDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{
		Files:      experiments.ServeCorpus(1, 1),
		DeadlineMS: 1,
		NoCache:    true,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %+v", resp.StatusCode, ar)
	}
	if !strings.Contains(ar.Error, "deadline exceeded") {
		t.Fatalf("504 body must carry the deadline diagnostic, got: %+v", ar)
	}
	if h := getHealth(t, ts.URL); h.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded counter: %+v", h)
	}

	// A deadline-degraded outcome must never be memoized: the same
	// request with budget succeeds from a real run, not the cache.
	resp2, ar2 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, DeadlineMS: 1})
	if resp2.StatusCode != http.StatusGatewayTimeout && resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp2.StatusCode, ar2)
	}
	if resp2.StatusCode == http.StatusGatewayTimeout {
		resp3, ar3 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
		if resp3.StatusCode != http.StatusOK || ar3.Cached || ar3.Bugs != 1 {
			t.Fatalf("degraded outcome leaked into the cache: status=%d %+v", resp3.StatusCode, ar3)
		}
	}
}

func TestAnalyzeAdmissionRejected429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: -1, QueueWait: 50 * time.Millisecond})

	// Occupy the only inflight slot; with no queue the next request must
	// be rejected immediately.
	release, _, err := srv.gate.Admit(context.Background())
	if err != nil {
		t.Fatalf("occupying the inflight slot: %v", err)
	}
	resp, _ := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (want 429)", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 must carry a positive Retry-After, got %q", ra)
	}
	if h := getHealth(t, ts.URL); h.Rejected != 1 || h.Inflight != 1 {
		t.Fatalf("health under overload: %+v", h)
	}

	// Freeing the slot restores service.
	release()
	resp2, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if resp2.StatusCode != http.StatusOK || ar.Bugs != 1 {
		t.Fatalf("after release: status %d %+v", resp2.StatusCode, ar)
	}
}

func TestAnalyzeResultCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}}
	_, cold := postAnalyze(t, ts.URL, req)
	_, warm := postAnalyze(t, ts.URL, req)
	if !warm.Cached {
		t.Fatal("identical repeat request must be served from the result cache")
	}
	if warm.Report != cold.Report || warm.Bugs != cold.Bugs {
		t.Fatal("cached response differs from the original")
	}
	// Workers is excluded from the key: determinism makes one entry serve
	// every setting.
	_, w4 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, Workers: 4})
	if !w4.Cached || w4.Report != cold.Report {
		t.Fatalf("workers=4 repeat: cached=%t", w4.Cached)
	}
	// NoCache bypasses it.
	_, nc := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, NoCache: true})
	if nc.Cached {
		t.Fatal("no_cache request served from cache")
	}
	if nc.Report != cold.Report {
		t.Fatal("uncached rerun produced different bytes")
	}
	if h := getHealth(t, ts.URL); h.ResultCacheHits != 2 {
		t.Fatalf("result_cache_hits: %+v", h)
	}
}

func TestExplainEndpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "drv.c"), []byte(buggyDriver), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CorpusDir: dir})

	resp, err := http.Get(ts.URL + "/v1/explain/drv_op")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	s := string(data)
	if !strings.Contains(s, "drv_op") || !strings.Contains(s, "path") {
		t.Fatalf("explain body: %s", s)
	}

	// Unknown function.
	resp2, _ := http.Get(ts.URL + "/v1/explain/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fn: status %d (want 404)", resp2.StatusCode)
	}
}

func TestExplainWithoutCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/explain/drv_op")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d (want 404 without -dir)", resp.StatusCode)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := Config{}
	cfg.Options.CacheDir = cacheDir
	_, ts := newTestServer(t, cfg)

	// Populate the store through a real analysis.
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if resp.StatusCode != http.StatusOK || ar.Bugs != 1 {
		t.Fatalf("analyze: status %d %+v", resp.StatusCode, ar)
	}

	digest := anyStoredDigest(t, cacheDir)
	r2, err := http.Get(ts.URL + "/v1/summary/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	data, _ := io.ReadAll(r2.Body)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("summary lookup: status %d: %s", r2.StatusCode, data)
	}
	var sr SummaryResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Fn == "" || sr.Digest != digest {
		t.Fatalf("summary response: %+v", sr)
	}

	for path, want := range map[string]int{
		"/v1/summary/zz":                         http.StatusBadRequest,
		"/v1/summary/" + strings.Repeat("0", 64): http.StatusNotFound,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Fatalf("GET %s: status %d (want %d)", path, r.StatusCode, want)
		}
	}
}

func TestSummaryWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := http.Get(ts.URL + "/v1/summary/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d (want 404 without -cache-dir)", r.StatusCode)
	}
}

// anyStoredDigest reads one entry header from the persistent store and
// returns its content digest (header field 3, see internal/store).
func anyStoredDigest(t *testing.T, dir string) string {
	t.Helper()
	var digest string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || digest != "" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		line, _, _ := strings.Cut(string(data), "\n")
		fields := strings.Fields(line)
		if len(fields) == 7 && fields[0] == "RIDSUM" {
			digest = fields[3]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" {
		t.Fatal("no store entries were published by the analysis")
	}
	return digest
}

// TestConcurrentClientsByteIdentical is the shared-analyzer safety net:
// N concurrent clients — different worker counts, cached and uncached —
// against one daemon must all receive byte-identical reports. Run under
// -race via `make race`.
func TestConcurrentClientsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 4})
	corpus := experiments.ServeCorpus(1, 317)

	baselineReq := &AnalyzeRequest{Files: corpus, NoCache: true}
	resp, baseline := postAnalyze(t, ts.URL, baselineReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d: %+v", resp.StatusCode, baseline)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &AnalyzeRequest{
				Files:   corpus,
				Workers: 1 + i%3,  // 1, 2, 3
				NoCache: i%2 == 0, // alternate real runs and memoized hits
			}
			body, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			r, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer r.Body.Close()
			var ar AnalyzeResponse
			if err := json.NewDecoder(r.Body).Decode(&ar); err != nil {
				errs <- fmt.Errorf("client %d: decode: %v", i, err)
				return
			}
			if r.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", i, r.StatusCode, ar.Error)
				return
			}
			if ar.Report != baseline.Report {
				errs <- fmt.Errorf("client %d (workers=%d, nocache=%t): report differs from single-client baseline", i, req.Workers, req.NoCache)
				return
			}
			if ar.Bugs != baseline.Bugs {
				errs <- fmt.Errorf("client %d: bugs %d != baseline %d", i, ar.Bugs, baseline.Bugs)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if h := getHealth(t, ts.URL); h.Inflight != 0 || h.Queued != 0 {
		t.Fatalf("slots leaked after the run: %+v", h)
	}
}
