package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
)

// LoadConfig drives one concurrency level of the saturation benchmark
// (cmd/ridload): Clients goroutines issue Requests total POST /v1/analyze
// calls with the given body against BaseURL.
type LoadConfig struct {
	BaseURL  string
	Body     []byte
	Clients  int
	Requests int
	// Timeout is the per-request client-side timeout (default 5m — the
	// server's own deadline should fire first; the client timeout only
	// catches a wedged daemon).
	Timeout time.Duration
}

// RunLoad executes one load level and folds the latencies into a
// ServePoint. Transport errors and unexpected statuses are counted, not
// fatal — saturation behavior (429s under overload) is a result, not a
// failure. The returned error is non-nil only for setup mistakes.
func RunLoad(ctx context.Context, cfg LoadConfig) (experiments.ServePoint, error) {
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return experiments.ServePoint{}, fmt.Errorf("load: need at least 1 client and 1 request")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	client := &http.Client{Timeout: cfg.Timeout}
	url := cfg.BaseURL + "/v1/analyze"

	var (
		next     atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
		rejected int
		errors   int
		firstErr string
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if next.Add(1) > int64(cfg.Requests) || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				status, err := postOnce(ctx, client, url, cfg.Body)
				d := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil || (status != http.StatusOK && status != http.StatusTooManyRequests):
					errors++
					if firstErr == "" {
						if err != nil {
							firstErr = err.Error()
						} else {
							firstErr = fmt.Sprintf("unexpected status %d", status)
						}
					}
				case status == http.StatusTooManyRequests:
					rejected++
				default:
					lats = append(lats, d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	pt := experiments.LatencyPoint(cfg.Clients, lats, rejected, errors, time.Since(start))
	pt.FirstError = firstErr
	return pt, nil
}

func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reused across the run.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode, nil
}

// AnalyzeOnce issues a single analyze request and decodes the response;
// used by ridload's warm-check and by the CI smoke job.
func AnalyzeOnce(ctx context.Context, baseURL string, body []byte, timeout time.Duration) (*AnalyzeResponse, time.Duration, error) {
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	client := &http.Client{Timeout: timeout}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	d := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, d, fmt.Errorf("analyze: status %d: %s", resp.StatusCode, b)
	}
	var ar AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return nil, d, fmt.Errorf("analyze: decode response: %w", err)
	}
	return &ar, d, nil
}
