package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/promtext"
)

func scrapeMetrics(t *testing.T, url string) promtext.Families {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition rejected by parser: %v", err)
	}
	return fams
}

// TestMetricsGoldenShape pins the exposition's family set: every
// serve-level family and a sample of registry families must be present
// with the right type, whatever the traffic so far. New families may be
// added (append-only), but the ones listed here must never disappear or
// change type.
func TestMetricsGoldenShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %+v", resp.StatusCode, ar)
	}
	fams := scrapeMetrics(t, ts.URL)

	golden := []struct{ name, typ string }{
		{"rid_serve_requests_total", "counter"},
		{"rid_serve_inflight", "gauge"},
		{"rid_serve_inflight_limit", "gauge"},
		{"rid_serve_queued", "gauge"},
		{"rid_serve_queue_limit", "gauge"},
		{"rid_serve_rejected_total", "counter"},
		{"rid_serve_deadline_exceeded_total", "counter"},
		{"rid_serve_result_cache_hits_total", "counter"},
		{"rid_serve_result_cache_misses_total", "counter"},
		{"rid_serve_slow_traces_total", "counter"},
		{"rid_serve_queue_wait_seconds", "histogram"},
		{"rid_serve_request_duration_seconds", "histogram"},
		{"rid_funcs_analyzed_total", "counter"},
		{"rid_solver_queries_total", "counter"},
		{"rid_store_hits_total", "counter"},
		{"rid_phase_duration_seconds", "histogram"},
	}
	for _, g := range golden {
		f := fams[g.name]
		if f == nil {
			t.Errorf("family %s missing", g.name)
			continue
		}
		if f.Type != g.typ {
			t.Errorf("family %s typed %q, want %q", g.name, f.Type, g.typ)
		}
	}
	if v, ok := fams.Value("rid_serve_requests_total", map[string]string{"route": "analyze", "code": "200"}); !ok || v != 1 {
		t.Errorf("requests_total{analyze,200} = %v, %t; want 1", v, ok)
	}
	if v, _ := fams.Value("rid_funcs_analyzed_total", nil); v < 1 {
		t.Errorf("funcs_analyzed_total = %v after an analyze", v)
	}
	if v, _ := fams.Value("rid_serve_request_duration_seconds_count", map[string]string{"route": "analyze"}); v != 1 {
		t.Errorf("request_duration_count{analyze} = %v, want 1", v)
	}
	if v, _ := fams.Value("rid_serve_queue_wait_seconds_count", nil); v != 1 {
		t.Errorf("queue_wait_count = %v, want 1 (one admitted analyze)", v)
	}
}

// TestMetricsSelfCheck: the daemon's own exposition round-trips through
// the validating parser (the -check-metrics path), traffic or not.
func TestMetricsSelfCheck(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if err := srv.CheckMetrics(); err != nil {
		t.Fatalf("empty-server self-check: %v", err)
	}
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if err := srv.CheckMetrics(); err != nil {
		t.Fatalf("post-traffic self-check: %v", err)
	}
}

// TestMetricsMonotonicUnderConcurrentScrapes is the tentpole race test:
// 8 scrapers hammer /metrics while analyzes run; every scrape must
// parse, and no counter series may ever decrease between consecutive
// scrapes by the same scraper. Run with -race in CI.
func TestMetricsMonotonicUnderConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 4})

	stop := make(chan struct{})
	var analyzers sync.WaitGroup
	for i := 0; i < 3; i++ {
		analyzers.Add(1)
		go func() {
			defer analyzers.Done()
			body, _ := json.Marshal(&AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, NoCache: true})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}

	isCounter := func(fams promtext.Families, fam string) bool {
		f := fams[fam]
		return f != nil && (f.Type == "counter" || f.Type == "histogram")
	}
	var scrapers sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			prev := map[string]float64{}
			for n := 0; n < 12; n++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				fams, err := promtext.Parse(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for famName, f := range fams {
					if !isCounter(fams, famName) {
						continue
					}
					for _, s := range f.Samples {
						key := s.Name + "|" + labelString(s.Labels)
						if old, ok := prev[key]; ok && s.Value < old {
							errs <- &monotonicityError{series: key, old: old, new: s.Value}
							return
						}
						prev[key] = s.Value
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	analyzers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

type monotonicityError struct {
	series   string
	old, new float64
}

func (e *monotonicityError) Error() string {
	return "counter " + e.series + " decreased between scrapes"
}

func labelString(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	// order-insensitive join is fine for map keys in one process run
	b := append([]string(nil), parts...)
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j] < b[j-1]; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
	return strings.Join(b, ",")
}

// TestRequestIDs: generated IDs are deterministic under IDSeed, inbound
// IDs are honored when sane and replaced when not, and every response
// carries the header.
func TestRequestIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{IDSeed: 7})

	get := func(hdr string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if hdr != "" {
			req.Header.Set("X-Rid-Request-Id", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Rid-Request-Id")
	}

	first := get("")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(first) {
		t.Fatalf("generated id %q not 16 hex digits", first)
	}
	if got := get("my-trace-id_01"); got != "my-trace-id_01" {
		t.Fatalf("sane inbound id replaced: %q", got)
	}
	if got := get("../../etc/passwd"); got == "../../etc/passwd" || got == "" {
		t.Fatalf("path-hostile inbound id must be replaced, got %q", got)
	}

	// Determinism: a second server with the same seed mints the same
	// first id.
	_, ts2 := newTestServer(t, Config{IDSeed: 7})
	resp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Rid-Request-Id"); got != first {
		t.Fatalf("seeded id stream not deterministic: %q vs %q", got, first)
	}
}

// syncBuf is a goroutine-safe writer: the middleware finishes the access
// log line after the response reaches the client.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := strings.Split(strings.TrimSpace(s.b.String()), "\n")
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

// accessLine pins the access-log schema: fixed key order, append-only.
var accessLine = regexp.MustCompile(`^\{"id":"[^"]+","route":"[a-z]+","status":\d+,"queue_wait_us":\d+,"elapsed_us":\d+,` +
	`"phases":\{"classify":\d+,"enumerate":\d+,"exec":\d+,"ipp":\d+,"solver":\d+,"cacheio":\d+,"replay":\d+\},` +
	`"memo_hit":(true|false),"store_hits":\d+,"store_misses":\d+,"degraded":(true|false),"diags":\[[^\]]*\]\}$`)

// waitLines polls until the access log holds want lines (the middleware
// writes after the response is on the wire).
func waitLines(t *testing.T, buf *syncBuf, want int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ls := buf.lines()
		if len(ls) >= want {
			return ls
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log has %d lines, want %d:\n%s", len(ls), want, strings.Join(ls, "\n"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAccessLog: one line per request — any route, any outcome — in the
// pinned key order; memo hits marked; analyze lines carry a real exec
// phase.
func TestAccessLog(t *testing.T) {
	var buf syncBuf
	_, ts := newTestServer(t, Config{AccessLog: &buf, IDSeed: 3})

	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}}) // memo hit
	getHealth(t, ts.URL)

	lines := waitLines(t, &buf, 3)
	if len(lines) != 3 {
		t.Fatalf("want exactly 3 lines, got %d:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for i, l := range lines {
		if !accessLine.MatchString(l) {
			t.Fatalf("line %d breaks the pinned schema:\n%s", i, l)
		}
	}
	if !strings.Contains(lines[0], `"route":"analyze"`) || !strings.Contains(lines[0], `"memo_hit":false`) {
		t.Fatalf("first analyze line: %s", lines[0])
	}
	var first struct {
		Phases map[string]int64 `json:"phases"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Phases["exec"] == 0 && first.Phases["enumerate"] == 0 {
		t.Fatalf("analyze line shows no pipeline time: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"memo_hit":true`) {
		t.Fatalf("repeat request not marked memo hit: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"route":"healthz"`) {
		t.Fatalf("third line: %s", lines[2])
	}
}

// TestPhaseBreakdownAndServerTiming: the response carries the exact
// per-request phase breakdown in fixed order, mirrored in the
// Server-Timing header; a concurrent-workers run keeps it exact
// (per-request child registry, not a share of global counters).
func TestPhaseBreakdownAndServerTiming(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Prime the shared registry with another run so bleed-through would
	// be visible as inflated counts.
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, NoCache: true})

	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{
		Files: map[string]string{"drv.c": buggyDriver}, Workers: 4, NoCache: true,
	})
	want := []string{"classify", "enumerate", "exec", "ipp", "solver", "cacheio", "replay"}
	if len(ar.Phases) != len(want) {
		t.Fatalf("phases = %+v, want %d entries", ar.Phases, len(want))
	}
	for i, name := range want {
		if ar.Phases[i].Phase != name {
			t.Fatalf("phase[%d] = %q, want %q (fixed order)", i, ar.Phases[i].Phase, name)
		}
	}
	// Exactness: one function analyzed → exactly one exec span and one
	// enumerate span, regardless of the earlier run or Workers=4.
	byName := map[string]PhaseMS{}
	for _, p := range ar.Phases {
		byName[p.Phase] = p
	}
	if byName["exec"].Count != 1 || byName["enumerate"].Count != 1 {
		t.Fatalf("per-request phase counts bleed: %+v", ar.Phases)
	}
	st := resp.Header.Get("Server-Timing")
	if st == "" {
		t.Fatal("no Server-Timing header")
	}
	for _, name := range want {
		if !strings.Contains(st, name+";dur=") {
			t.Fatalf("Server-Timing missing %s: %q", name, st)
		}
	}
}

// TestSlowTraceSampling: with a microscopic threshold every analyze
// flushes a trace named for its request ID; with a huge threshold none
// do; non-analyze routes never buffer at all.
func TestSlowTraceSampling(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{SlowTraceDir: dir, SlowThreshold: time.Nanosecond, IDSeed: 9})

	resp, _ := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	id := resp.Header.Get("X-Rid-Request-Id")
	getHealth(t, ts.URL)

	path := filepath.Join(dir, id+".jsonl")
	waitForFile(t, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly 1 trace file, dir has %d", len(entries))
	}
	validateTraceFile(t, path, id)

	slow := t.TempDir()
	_, ts2 := newTestServer(t, Config{SlowTraceDir: slow, SlowThreshold: time.Hour})
	postAnalyze(t, ts2.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	time.Sleep(50 * time.Millisecond)
	if entries, _ := os.ReadDir(slow); len(entries) != 0 {
		t.Fatalf("fast request flushed a trace: %v", entries)
	}
}

func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace file %s never appeared", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// validateTraceFile checks the flushed JSONL: a header line naming the
// request, then well-formed span lines with strictly increasing seq.
func validateTraceFile(t *testing.T, path, id string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty trace file")
	}
	var hdr struct {
		RequestID string `json:"request_id"`
		Status    int    `json:"status"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.RequestID != id {
		t.Fatalf("header line %q (err %v), want request_id %q", sc.Text(), err, id)
	}
	last, spans := int64(0), 0
	for sc.Scan() {
		var span struct {
			Seq   int64  `json:"seq"`
			Phase string `json:"phase"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("span line %q: %v", sc.Text(), err)
		}
		if span.Seq <= last || span.Phase == "" {
			t.Fatalf("bad span seq=%d phase=%q after seq=%d", span.Seq, span.Phase, last)
		}
		last = span.Seq
		spans++
	}
	if spans == 0 {
		t.Fatal("trace has no spans")
	}
}

// TestSlowSampler504Trigger unit-tests the failure trigger: a 504'd
// request flushes even when it was not slow by threshold.
func TestSlowSampler504Trigger(t *testing.T) {
	dir := t.TempDir()
	s := newSlowSampler(dir, time.Hour)
	buf := s.buffer()
	buf.Write([]byte(`{"seq":1,"phase":"classify","fn":"","start_us":1,"dur_us":2}` + "\n"))
	rec := &reqRecord{id: "deadbeef00000000", route: routeAnalyze, status: http.StatusGatewayTimeout,
		elapsed: time.Millisecond, trace: buf}
	srv := &Server{}
	s.finish(rec, &srv.metrics.slowTraces, srv)
	if _, err := os.Stat(filepath.Join(dir, "deadbeef00000000.jsonl")); err != nil {
		t.Fatalf("504 request did not flush: %v", err)
	}
	if srv.metrics.slowTraces.Load() != 1 {
		t.Fatal("slow trace counter not incremented")
	}

	// Same shape, 200 and fast: no flush.
	buf2 := s.buffer()
	buf2.Write([]byte(`{"seq":1,"phase":"classify","fn":"","start_us":1,"dur_us":2}` + "\n"))
	rec2 := &reqRecord{id: "cafe000000000000", route: routeAnalyze, status: http.StatusOK,
		elapsed: time.Millisecond, trace: buf2}
	s.finish(rec2, &srv.metrics.slowTraces, srv)
	if _, err := os.Stat(filepath.Join(dir, "cafe000000000000.jsonl")); err == nil {
		t.Fatal("fast OK request flushed a trace")
	}
}

// TestHealthzObservabilityCounters: the appended healthz fields move.
func TestHealthzObservabilityCounters(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{SlowTraceDir: dir, SlowThreshold: time.Nanosecond})
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := getHealth(t, ts.URL)
		if h.ResultCacheMisses == 1 && h.ResultCacheHits == 1 && h.SlowTraces >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz counters never converged: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBoundedBuf: the trace buffer caps at maxTraceBuf and counts what
// it drops, never failing the write.
func TestBoundedBuf(t *testing.T) {
	var b boundedBuf
	chunk := bytes.Repeat([]byte("x"), 1<<20)
	var total int64
	for i := 0; i < 6; i++ {
		n, err := b.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		total += int64(n)
	}
	if len(b.b) != maxTraceBuf {
		t.Fatalf("kept %d bytes, want cap %d", len(b.b), maxTraceBuf)
	}
	if b.dropped != total-int64(maxTraceBuf) {
		t.Fatalf("dropped = %d, want %d", b.dropped, total-int64(maxTraceBuf))
	}
}

// TestCachedResponseKeepsContract: a memo hit still carries request ID,
// Server-Timing, and the phases of the producing run.
func TestCachedResponseKeepsContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}})
	if !ar.Cached {
		t.Fatal("second identical request not cached")
	}
	if resp.Header.Get("X-Rid-Request-Id") == "" {
		t.Fatal("cached response missing request id")
	}
	if resp.Header.Get("Server-Timing") == "" {
		t.Fatal("cached response missing Server-Timing")
	}
	if len(ar.Phases) == 0 {
		t.Fatal("cached response lost the producing run's phases")
	}
}
