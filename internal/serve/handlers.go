package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/rid"
)

// maxBodyBytes bounds an analyze request body (sources inline as JSON).
const maxBodyBytes = 32 << 20

// AnalyzeRequest is the POST /v1/analyze body. Exactly one of Files and
// Corpus selects the sources; everything else is optional.
type AnalyzeRequest struct {
	// Spec names a built-in specification pack ("fd", "linux-dpm",
	// "lock", "python-c"); empty uses the server default. SpecPacks merge
	// further built-in packs on top (conflicting API definitions are
	// rejected), and SpecSrc is additional summary-DSL source merged last.
	Spec      string   `json:"spec,omitempty"`
	SpecPacks []string `json:"spec_packs,omitempty"`
	SpecSrc   string   `json:"spec_src,omitempty"`
	// Files maps file names to mini-C sources. Corpus instead analyzes
	// the corpus the server loaded at startup (-dir).
	Files  map[string]string `json:"files,omitempty"`
	Corpus bool              `json:"corpus,omitempty"`
	// Format ("text", "json", "sarif") and Verbose mirror the CLI flags;
	// the response's report field is byte-identical to `rid` stdout with
	// the same settings.
	Format  string `json:"format,omitempty"`
	Verbose bool   `json:"verbose,omitempty"`
	// Analysis budget overrides; zero keeps the server defaults.
	Workers     int      `json:"workers,omitempty"`
	MaxPaths    int      `json:"max_paths,omitempty"`
	MaxSubcases int      `json:"max_subcases,omitempty"`
	Cat2Conds   int      `json:"cat2_conds,omitempty"`
	Suppress    []string `json:"suppress,omitempty"`
	// DeadlineMS shortens this request's deadline below the server's
	// RequestTimeout (it can never extend it).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Metrics includes the run's exact per-request metrics snapshot in
	// the response (the run then uses a private registry so concurrent
	// requests don't bleed into it). Trace includes the run's JSONL span
	// trace. Either one bypasses the result cache.
	Metrics bool `json:"metrics,omitempty"`
	Trace   bool `json:"trace,omitempty"`
	// NoCache bypasses the in-memory result cache (load generators use
	// it to measure analysis, not memoization).
	NoCache bool `json:"no_cache,omitempty"`
}

// Diag mirrors rid.Diagnostic on the wire.
type Diag struct {
	Function string `json:"function,omitempty"`
	Kind     string `json:"kind"`
	Cause    string `json:"cause"`
}

// AnalyzeResponse is the POST /v1/analyze reply. On 504 (deadline
// exceeded) Error is set and Report holds the partial report, mirroring
// the CLI's exit-3 partial-results contract.
type AnalyzeResponse struct {
	Report        string          `json:"report"`
	Bugs          int             `json:"bugs"`
	FuncsTotal    int             `json:"funcs_total"`
	FuncsAnalyzed int             `json:"funcs_analyzed"`
	Paths         int             `json:"paths"`
	Degraded      bool            `json:"degraded"`
	Diagnostics   []Diag          `json:"diagnostics,omitempty"`
	Cached        bool            `json:"cached"`
	ElapsedMS     float64         `json:"elapsed_ms"`
	Phases        []PhaseMS       `json:"phases,omitempty"`
	Metrics       json.RawMessage `json:"metrics,omitempty"`
	Trace         string          `json:"trace,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// PhaseMS is one pipeline phase's share of the request: spans completed
// and total wall-clock in milliseconds. The slice is in fixed phase
// order (classify, enumerate, exec, ipp, solver, cacheio, replay) and
// exact for this request alone at any Workers setting — the run counts
// into a private child of the server registry, so concurrent requests
// never bleed into each other's breakdown. A cached response replays
// the phases of the run that produced it. The same numbers ride the
// Server-Timing response header.
type PhaseMS struct {
	Phase string  `json:"phase"`
	Count int64   `json:"count"`
	MS    float64 `json:"ms"`
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.Corpus && len(req.Files) > 0 {
		errorJSON(w, http.StatusBadRequest, "files and corpus are mutually exclusive")
		return
	}
	if !req.Corpus && len(req.Files) == 0 {
		errorJSON(w, http.StatusBadRequest, "no sources: pass files, or corpus=true for the resident corpus")
		return
	}
	if req.Corpus && s.corpus == nil {
		errorJSON(w, http.StatusBadRequest, "no resident corpus: the server was started without -dir")
		return
	}
	specs, err := s.resolveSpecs(req.Spec, req.SpecPacks, req.SpecSrc)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch req.Format {
	case "", "text", "json", "sarif":
	default:
		errorJSON(w, http.StatusBadRequest, "unknown format %q (want text, json or sarif)", req.Format)
		return
	}

	// Admission before any expensive work.
	rec := recordOf(w)
	release, qwait, err := s.admit(r.Context())
	if rec != nil {
		rec.queueWait = qwait
	}
	if err != nil {
		if err == errOverloaded {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			errorJSON(w, http.StatusTooManyRequests, "overloaded: %d analyses running, %d queued", s.gate.Inflight(), s.gate.Queued())
			return
		}
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer release()

	// Memoization: a repeat of an identical request is served from
	// memory. Trace/metrics runs bypass it — their payloads are
	// wall-clock-dependent by nature.
	cacheable := !req.NoCache && !req.Trace && !req.Metrics
	key := ""
	if cacheable {
		key = requestKey(&req)
		if resp := s.rcache.get(key); resp != nil {
			s.cacheHits.Add(1)
			resp.Cached = true
			s.served.Add(1)
			if rec != nil {
				rec.memoHit = true
			}
			w.Header().Set("Server-Timing", serverTiming(resp.Phases))
			writeJSON(w, http.StatusOK, resp)
			return
		}
		s.metrics.cacheMiss.Add(1)
	}

	ctx, cancel := s.requestContext(r.Context(), req.DeadlineMS)
	defer cancel()

	t0 := time.Now()
	resp, status, runErr := s.runAnalyze(ctx, specs, &req, rec)
	if runErr != nil {
		errorJSON(w, status, "%v", runErr)
		return
	}
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	if status == http.StatusOK {
		s.served.Add(1)
		if cacheable && cachable(resp) {
			s.rcache.put(key, resp)
		}
	} else if status == http.StatusGatewayTimeout {
		s.deadlineExceeded.Add(1)
	}
	s.logf("analyze files=%d corpus=%t status=%d cached=%t elapsed=%.1fms",
		len(req.Files), req.Corpus, status, resp.Cached, resp.ElapsedMS)
	w.Header().Set("Server-Timing", serverTiming(resp.Phases))
	writeJSON(w, status, resp)
}

// runAnalyze performs one admitted, deadline-bounded analysis and shapes
// the response. It returns a non-nil error only for client mistakes
// (unparsable sources); degradation is reported in-band. rec, when
// non-nil, is annotated with the run's phase breakdown, store traffic,
// and degradation outcome for the access log and slow-trace sampler.
func (s *Server) runAnalyze(ctx context.Context, specs rid.Specs, req *AnalyzeRequest, rec *reqRecord) (*AnalyzeResponse, int, error) {
	// Every request runs on a child of the server registry: its own
	// counters are an exact per-request delta (the phase breakdown and
	// the Metrics snapshot are this run's alone, at any Workers
	// setting) while every event still rolls up into the shared
	// registry behind /metrics and /debug/vars.
	a := s.base.NewRequestChild()
	a.SetSpecs(specs)
	opts := s.cfg.Options
	if req.Workers != 0 {
		opts.Workers = req.Workers
	}
	if req.MaxPaths != 0 {
		opts.MaxPaths = req.MaxPaths
	}
	if req.MaxSubcases != 0 {
		opts.MaxSubcases = req.MaxSubcases
	}
	if req.Cat2Conds != 0 {
		opts.MaxCat2Conds = req.Cat2Conds
	}
	if len(req.Suppress) > 0 {
		opts.Suppress = req.Suppress
	}
	if len(req.SpecPacks) > 0 {
		// Request packs stack on the server's -spec-pack defaults;
		// identical redefinitions merge cleanly, conflicts are a 400.
		opts.SpecPacks = append(append([]string(nil), opts.SpecPacks...), req.SpecPacks...)
	}
	opts.QueryTiming = req.Metrics
	// Trace sinks: the client's inline trace (req.Trace) and the slow
	// sampler's bounded buffer (rec.trace) share one JSONL stream.
	// Attaching either implies per-query timing, the documented cost of
	// tracing.
	var traceBuf bytes.Buffer
	var sink io.Writer
	if req.Trace {
		sink = &traceBuf
	}
	if rec != nil && rec.trace != nil {
		if sink != nil {
			sink = io.MultiWriter(sink, rec.trace)
		} else {
			sink = rec.trace
		}
	}
	if sink != nil {
		opts.TraceWriter = sink
	}
	a.SetOptions(opts)

	files := req.Files
	if req.Corpus {
		files = s.corpus
	}
	if err := addSources(a, files); err != nil {
		return nil, http.StatusBadRequest, err
	}
	res, err := a.RunContext(ctx)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	format := req.Format
	if format == "" {
		format = "text"
	}
	var report bytes.Buffer
	if err := res.WriteReports(&report, format, req.Verbose); err != nil {
		return nil, http.StatusBadRequest, err
	}
	resp := &AnalyzeResponse{
		Report:        report.String(),
		Bugs:          len(res.Bugs),
		FuncsTotal:    res.FuncsTotal,
		FuncsAnalyzed: res.FuncsAnalyzed,
		Paths:         res.PathsEnumerated,
		Degraded:      res.Degraded(),
		Trace:         traceBuf.String(),
	}
	timings := res.PhaseTimings()
	for _, name := range accessPhases {
		for _, t := range timings {
			if t.Phase == name {
				resp.Phases = append(resp.Phases, PhaseMS{
					Phase: name,
					Count: t.Count,
					MS:    float64(t.Total.Microseconds()) / 1000,
				})
			}
		}
	}
	for _, d := range res.Diagnostics {
		resp.Diagnostics = append(resp.Diagnostics, Diag{Function: d.Function, Kind: d.Kind, Cause: d.Cause})
	}
	if rec != nil {
		rec.phases = append(rec.phases[:0], timings...)
		rec.storeHit = res.MetricValue("store_hits")
		rec.storeMiss = res.MetricValue("store_misses")
		rec.degraded = res.Degraded()
		rec.diags = diagKinds(rec.diags[:0], res.Diagnostics)
		for _, k := range rec.diags {
			if k == "panic" {
				rec.panicked = true
			}
		}
	}
	if req.Metrics {
		var mbuf bytes.Buffer
		if err := res.WriteMetrics(&mbuf, "json"); err == nil {
			resp.Metrics = json.RawMessage(mbuf.Bytes())
		}
	}
	if ctx.Err() != nil {
		resp.Error = fmt.Sprintf("deadline exceeded (%v); results are partial", ctx.Err())
		return resp, http.StatusGatewayTimeout, nil
	}
	return resp, http.StatusOK, nil
}

// diagKinds appends the distinct diagnostic kinds, sorted, onto dst.
func diagKinds(dst []string, diags []rid.Diagnostic) []string {
	for _, d := range diags {
		seen := false
		for _, k := range dst {
			if k == d.Kind {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, d.Kind)
		}
	}
	sort.Strings(dst)
	return dst
}

// requestContext derives the per-request deadline: the server cap, or the
// client's deadline_ms when sooner.
func (s *Server) requestContext(parent context.Context, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if deadlineMS > 0 {
		if c := time.Duration(deadlineMS) * time.Millisecond; c < d {
			d = c
		}
	}
	return context.WithTimeout(parent, d)
}

// resolveSpecs maps a request's spec fields onto a specification set.
// Extra packs are validated here (rejected before admission) but merged
// later via Options.SpecPacks, so conflicts surface with the same
// wording as the CLI.
func (s *Server) resolveSpecs(name string, packs []string, src string) (rid.Specs, error) {
	specs := s.cfg.Specs
	if name != "" {
		var err error
		if specs, err = rid.SpecPack(name); err != nil {
			return rid.Specs{}, fmt.Errorf("unknown spec %q (want fd, linux-dpm, lock or python-c)", name)
		}
	}
	for _, p := range packs {
		if _, err := rid.SpecPack(p); err != nil {
			return rid.Specs{}, err
		}
	}
	if src != "" {
		var err error
		specs, err = specs.Parse("request spec_src", src)
		if err != nil {
			return rid.Specs{}, fmt.Errorf("spec_src: %v", err)
		}
	}
	return specs, nil
}

// cachable reports whether a completed response may be memoized: only
// runs whose every degradation is deterministic (budget truncation,
// solver give-ups). Wall-clock degradations — timeouts, panics,
// cancellation — must not be replayed to later requests.
func cachable(resp *AnalyzeResponse) bool {
	if resp.Error != "" {
		return false
	}
	for _, d := range resp.Diagnostics {
		switch d.Kind {
		case "timeout", "panic", "canceled", "cache-remote":
			// cache-remote is transient too: it records that the fleet
			// store was unreachable during THIS run, which must not be
			// replayed to requests served after the remote recovers.
			return false
		}
	}
	return true
}

// requestKey is the result-cache key: a digest over every field that can
// change the response bytes. Workers is deliberately absent — report
// output is byte-identical at any worker count (pinned by the scheduler
// determinism tests), so one cache entry serves every setting.
func requestKey(req *AnalyzeRequest) string {
	h := sha256.New()
	put := func(ss ...string) {
		for _, x := range ss {
			fmt.Fprintf(h, "%d:%s\x00", len(x), x)
		}
	}
	put("spec", req.Spec, "specsrc", req.SpecSrc, "format", req.Format)
	put("specpacks")
	put(req.SpecPacks...) // order matters: merge order is load order
	fmt.Fprintf(h, "verbose=%t corpus=%t maxpaths=%d maxsub=%d cat2=%d\x00",
		req.Verbose, req.Corpus, req.MaxPaths, req.MaxSubcases, req.Cat2Conds)
	sup := append([]string(nil), req.Suppress...)
	sort.Strings(sup)
	put(sup...)
	names := make([]string, 0, len(req.Files))
	for n := range req.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		put(n, req.Files[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is client's problem
}

// ---------------------------------------------------------------------------
// GET /v1/explain/{fn}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("fn")
	if s.corpus == nil {
		errorJSON(w, http.StatusNotFound, "no resident corpus: the server was started without -dir")
		return
	}
	if s.base.FunctionCFG(fn) == "" {
		errorJSON(w, http.StatusNotFound, "function %q not defined in the resident corpus", fn)
		return
	}
	release, qwait, err := s.admit(r.Context())
	if rec := recordOf(w); rec != nil {
		rec.queueWait = qwait
	}
	if err != nil {
		if err == errOverloaded {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			errorJSON(w, http.StatusTooManyRequests, "overloaded")
			return
		}
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r.Context(), 0)
	defer cancel()
	res, err := s.explainResult(ctx)
	if err != nil {
		if ctx.Err() != nil {
			s.deadlineExceeded.Add(1)
			errorJSON(w, http.StatusGatewayTimeout, "%v", err)
			return
		}
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	filtered := res.FilterFunctions(fn)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(filtered.Bugs) == 0 {
		fmt.Fprintln(w, "no inconsistent path pairs found")
		return
	}
	filtered.WriteExplain(w) //nolint:errcheck // client gone is client's problem
}

// explainResult runs the provenance analysis over the resident corpus
// once and keeps it; a run cut short by ctx is not kept, so a later
// request with more budget retries.
func (s *Server) explainResult(ctx context.Context) (*rid.Result, error) {
	s.explainMu.Lock()
	defer s.explainMu.Unlock()
	if s.explainRes != nil {
		return s.explainRes, nil
	}
	a := s.base.NewRequest()
	opts := s.cfg.Options
	opts.Provenance = true
	a.SetOptions(opts)
	if err := addSources(a, s.corpus); err != nil {
		return nil, err
	}
	res, err := a.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("provenance run exceeded the deadline; retry with more budget")
	}
	s.explainRes = res
	return res, nil
}

// ---------------------------------------------------------------------------
// GET /v1/summary/{digest}

// SummaryResponse is the GET /v1/summary/{digest} reply: the stored
// analysis outcome published under one content digest.
type SummaryResponse struct {
	Fn      string `json:"fn"`
	Digest  string `json:"digest"`
	Summary string `json:"summary"`
	Paths   int    `json:"paths"`
	Reports int    `json:"reports"`
	Diags   []Diag `json:"diags,omitempty"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if s.lookup == nil {
		errorJSON(w, http.StatusNotFound, "no persistent store: the server was started without -cache-dir or -cache-url")
		return
	}
	raw, err := hex.DecodeString(r.PathValue("digest"))
	if err != nil || len(raw) != sha256.Size {
		errorJSON(w, http.StatusBadRequest, "digest must be %d hex digits", sha256.Size*2)
		return
	}
	var d store.Digest
	copy(d[:], raw)
	e, err := s.lookup.LookupDigest(d)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if e == nil {
		errorJSON(w, http.StatusNotFound, "no entry for digest %s", d)
		return
	}
	resp := &SummaryResponse{
		Fn:      e.Fn,
		Digest:  d.String(),
		Summary: e.Summary.String(),
		Paths:   e.Paths,
		Reports: len(e.Reports),
	}
	for _, dg := range e.Diags {
		resp.Diags = append(resp.Diags, Diag{Function: e.Fn, Kind: dg.Kind, Cause: dg.Cause})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// GET /healthz

// Health is the GET /healthz reply: liveness plus the admission gauges
// and counters CI smoke checks assert on (goroutine stability across a
// load run, zero stuck inflight after drain). The schema is versioned
// by accretion: fields are only ever appended, never renamed or
// removed, so checks written against an older daemon keep working. The
// full schema is documented in DESIGN.md §10.
type Health struct {
	Spec              string `json:"spec"`
	CorpusFuncs       int    `json:"corpus_funcs"`
	Inflight          int    `json:"inflight"`
	MaxInflight       int    `json:"max_inflight"`
	Queued            int64  `json:"queued"`
	QueueDepth        int    `json:"queue_depth"`
	Served            int64  `json:"served"`
	Rejected          int64  `json:"rejected"`
	DeadlineExceeded  int64  `json:"deadline_exceeded"`
	ResultCacheHits   int64  `json:"result_cache_hits"`
	Goroutines        int    `json:"goroutines"`
	ResultCacheMisses int64  `json:"result_cache_misses"`
	StoreHits         int64  `json:"store_hits"`
	StoreMisses       int64  `json:"store_misses"`
	SlowTraces        int64  `json:"slow_traces"`
	// Fleet-cache tier (-cache-url). RemoteState is "" without a remote,
	// else the circuit-breaker state: "closed" (healthy), "open"
	// (degraded to local, probe pending) or "probing".
	RemoteHits      int64  `json:"remote_hits"`
	RemoteMisses    int64  `json:"remote_misses"`
	RemoteErrors    int64  `json:"remote_errors"`
	RemoteIntegrity int64  `json:"remote_integrity_errors"`
	RemoteState     string `json:"remote_state"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	remoteState := ""
	if s.cfg.Options.CacheURL != "" {
		remoteState = remote.CircuitState(s.cfg.Options.CacheURL)
	}
	writeJSON(w, http.StatusOK, Health{
		Spec:              s.cfg.SpecName,
		CorpusFuncs:       s.base.NumFunctions(),
		Inflight:          s.gate.Inflight(),
		MaxInflight:       s.cfg.MaxInflight,
		Queued:            s.gate.Queued(),
		QueueDepth:        s.cfg.QueueDepth,
		Served:            s.served.Load(),
		Rejected:          s.gate.Rejected(),
		DeadlineExceeded:  s.deadlineExceeded.Load(),
		ResultCacheHits:   s.cacheHits.Load(),
		Goroutines:        runtime.NumGoroutine(),
		ResultCacheMisses: s.metrics.cacheMiss.Load(),
		StoreHits:         s.base.LiveMetricValue("store_hits"),
		StoreMisses:       s.base.LiveMetricValue("store_misses"),
		SlowTraces:        s.metrics.slowTraces.Load(),
		RemoteHits:        s.base.LiveMetricValue("remote_hits"),
		RemoteMisses:      s.base.LiveMetricValue("remote_misses"),
		RemoteErrors:      s.base.LiveMetricValue("remote_errors"),
		RemoteIntegrity:   s.base.LiveMetricValue("remote_integrity_errors"),
		RemoteState:       remoteState,
	})
}
