// Client-side /metrics scraping for the load generator and CI: fetch a
// daemon's Prometheus exposition, validate it with the promtext parser
// (every scrape doubles as a well-formedness gate), and digest the
// series the saturation benchmark folds into its sweep points.
package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs/promtext"
)

// Scraper polls one daemon's GET /metrics endpoint.
type Scraper struct {
	url    string
	client *http.Client
}

// NewScraper returns a scraper for the daemon at baseURL.
func NewScraper(baseURL string, timeout time.Duration) *Scraper {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Scraper{url: baseURL + "/metrics", client: &http.Client{Timeout: timeout}}
}

// Scrape fetches and parses one exposition. A parse failure is an error:
// a daemon emitting text Prometheus would reject is a bug, whatever the
// values say.
func (s *Scraper) Scrape(ctx context.Context) (promtext.Families, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("scrape: status %d: %s", resp.StatusCode, b)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape: malformed exposition: %w", err)
	}
	return fams, nil
}

// ScrapeSnapshot digests one scrape into the counters and gauges the
// saturation benchmark works with.
type ScrapeSnapshot struct {
	AnalyzeRequests int64 // rid_serve_requests_total{route="analyze"}, all codes
	Queued          int64 // rid_serve_queued gauge
	Inflight        int64 // rid_serve_inflight gauge
	MemoHits        int64
	MemoMisses      int64
	StoreHits       int64
	StoreMisses     int64
}

// Snapshot reduces parsed families to a ScrapeSnapshot. Absent series
// read as zero, so it works against older daemons too.
func Snapshot(fams promtext.Families) ScrapeSnapshot {
	var snap ScrapeSnapshot
	if f := fams["rid_serve_requests_total"]; f != nil {
		for _, s := range f.Samples {
			if s.Labels["route"] == "analyze" {
				snap.AnalyzeRequests += int64(s.Value)
			}
		}
	}
	intOf := func(name string) int64 {
		v, _ := fams.Value(name, nil)
		return int64(v)
	}
	snap.Queued = intOf("rid_serve_queued")
	snap.Inflight = intOf("rid_serve_inflight")
	snap.MemoHits = intOf("rid_serve_result_cache_hits_total")
	snap.MemoMisses = intOf("rid_serve_result_cache_misses_total")
	snap.StoreHits = intOf("rid_store_hits_total")
	snap.StoreMisses = intOf("rid_store_misses_total")
	return snap
}

// PollStats summarizes a background polling run over one load level.
type PollStats struct {
	Samples     int   // successful scrapes
	MaxQueued   int64 // peak rid_serve_queued observed
	MaxInflight int64 // peak rid_serve_inflight observed
}

// Poll scrapes every interval until the returned stop function is
// called, tracking peak admission gauges. stop reports the aggregate
// and the first scrape error, if any — one malformed exposition fails
// the poll even if later scrapes recover.
func (s *Scraper) Poll(ctx context.Context, interval time.Duration) (stop func() (PollStats, error)) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	done := make(chan struct{})
	var (
		wg       sync.WaitGroup
		st       PollStats
		firstErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			fams, err := s.Scrape(ctx)
			if err != nil {
				if firstErr == nil && ctx.Err() == nil {
					firstErr = err
				}
				continue
			}
			snap := Snapshot(fams)
			st.Samples++
			if snap.Queued > st.MaxQueued {
				st.MaxQueued = snap.Queued
			}
			if snap.Inflight > st.MaxInflight {
				st.MaxInflight = snap.Inflight
			}
		}
	}()
	return func() (PollStats, error) {
		close(done)
		wg.Wait()
		return st, firstErr
	}
}
