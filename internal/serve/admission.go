package serve

import (
	"context"
	"errors"
	"time"
)

// errOverloaded means the server declined to start the work: every
// inflight slot is busy and either the queue is full or the queue wait
// expired. The caller maps it to 429 + Retry-After.
var errOverloaded = errors.New("server overloaded")

// admit acquires one inflight slot, queueing for at most cfg.QueueWait
// behind at most cfg.QueueDepth other waiters. On success the returned
// release must be called exactly once when the work completes. Admission
// is deliberately in front of everything expensive: a request the server
// has no capacity for costs it one channel operation and an atomic, which
// is what keeps overload from compounding.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return s.release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, errOverloaded
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return s.release, nil
	case <-t.C:
		s.rejected.Add(1)
		return nil, errOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// retryAfter is the Retry-After hint on a 429: the queue wait rounded up
// to whole seconds — by then either a slot freed or the client should
// back off harder.
func (s *Server) retryAfter() int {
	secs := int((s.cfg.QueueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
