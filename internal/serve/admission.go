package serve

import (
	"context"
	"time"

	"repro/internal/admit"
)

// errOverloaded means the server declined to start the work: every
// inflight slot is busy and either the queue is full or the queue wait
// expired. The caller maps it to 429 + Retry-After. It aliases the shared
// gate's sentinel so handler code can compare against one value.
var errOverloaded = admit.ErrOverloaded

// admit acquires one inflight slot through the shared admission gate
// (internal/admit — the same gate `rid storeserve` uses). On success the
// returned release must be called exactly once when the work completes,
// and wait is how long the request queued (0 on the fast path) — it lands
// in the rid_serve_queue_wait_seconds histogram and the access log.
func (s *Server) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	return s.gate.Admit(ctx)
}

// retryAfter is the Retry-After hint on a 429.
func (s *Server) retryAfter() int { return s.gate.RetryAfter() }
