package serve

import (
	"context"
	"errors"
	"time"
)

// errOverloaded means the server declined to start the work: every
// inflight slot is busy and either the queue is full or the queue wait
// expired. The caller maps it to 429 + Retry-After.
var errOverloaded = errors.New("server overloaded")

// admit acquires one inflight slot, queueing for at most cfg.QueueWait
// behind at most cfg.QueueDepth other waiters. On success the returned
// release must be called exactly once when the work completes, and wait
// is how long the request queued (0 on the fast path) — it lands in the
// rid_serve_queue_wait_seconds histogram and the access log. Admission
// is deliberately in front of everything expensive: a request the server
// has no capacity for costs it one channel operation and an atomic, which
// is what keeps overload from compounding.
func (s *Server) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	select {
	case s.sem <- struct{}{}:
		s.metrics.queueWait.Observe(0)
		return s.release, 0, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, 0, errOverloaded
	}
	defer s.queued.Add(-1)
	t0 := time.Now()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		wait = time.Since(t0)
		s.metrics.queueWait.Observe(wait)
		return s.release, wait, nil
	case <-t.C:
		s.rejected.Add(1)
		return nil, time.Since(t0), errOverloaded
	case <-ctx.Done():
		return nil, time.Since(t0), ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// retryAfter is the Retry-After hint on a 429: the queue wait rounded up
// to whole seconds — by then either a slot freed or the client should
// back off harder.
func (s *Server) retryAfter() int {
	secs := int((s.cfg.QueueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
