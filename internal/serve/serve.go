// Package serve implements the analysis daemon behind `rid serve`: a
// long-lived HTTP/JSON service that keeps the analyzer's hot state —
// parsed IR for a resident corpus, the expression interner, the solver
// cache, and the persistent summary store — resident across requests,
// instead of paying cold-start per CLI invocation.
//
// The API surface (all JSON unless noted):
//
//	POST /v1/analyze          analyze sources in the request body, or the
//	                          resident corpus; the "report" field is
//	                          byte-identical to `rid` stdout
//	GET  /v1/explain/{fn}     provenance derivation for one function of
//	                          the resident corpus (text/plain, the
//	                          `rid explain` format)
//	GET  /v1/summary/{digest} look a summary up in the persistent store
//	                          by content digest
//	GET  /healthz             admission gauges, request counters,
//	                          goroutine count (leak checks in CI)
//	GET  /metrics             Prometheus text exposition v0.0.4:
//	                          serve-level series (requests by route and
//	                          status, queue wait, durations, memoization)
//	                          plus the shared analysis registry
//	                          (counters, per-phase histograms)
//	GET  /debug/...           net/http/pprof + /debug/vars with the live
//	                          shared metrics registry
//
// Two mechanisms keep the daemon well-behaved under heavy traffic, both
// reusing the context/budget plumbing the pipeline already has:
//
//   - Admission control: at most MaxInflight analyses run concurrently;
//     up to QueueDepth more wait at most QueueWait for a slot, and
//     everything beyond that is rejected immediately with 429 and a
//     Retry-After header. An analysis is never started that the server
//     has no capacity to finish.
//
//   - Per-request deadlines: every request runs under a context bounded
//     by RequestTimeout (and by the client's own deadline_ms if sooner).
//     A run that exceeds it degrades exactly like `rid -deadline`: the
//     response is 504 with the partial report and the run's degradation
//     diagnostics in the body, not a severed connection.
package serve

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/rid"
)

// Config tunes the daemon. The zero value of every field has a usable
// default; Specs defaults to the Linux DPM specifications.
type Config struct {
	// Specs is the default specification set for requests that don't name
	// one. SpecName is its flag-style name ("linux-dpm", "python-c"),
	// echoed in /healthz.
	Specs    rid.Specs
	SpecName string
	// CorpusDir, when non-empty, is loaded at startup and kept resident:
	// requests with "corpus": true analyze it without shipping sources,
	// and /v1/explain runs against it.
	CorpusDir string
	// Options are the default analysis options for every request
	// (overridable per request where the API allows). Options.CacheDir
	// additionally enables /v1/summary lookups against the same store.
	Options rid.Options
	// MaxInflight bounds concurrently running analyses (default 2).
	MaxInflight int
	// QueueDepth bounds requests waiting for a slot (default
	// 4*MaxInflight); beyond it requests are rejected with 429.
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// 429 (default 2s).
	QueueWait time.Duration
	// RequestTimeout caps every request's analysis wall-clock (default
	// 60s). Clients can only shorten it (deadline_ms), never extend it.
	RequestTimeout time.Duration
	// ResultCacheEntries bounds the in-memory memoization of analyze
	// responses (default 128; 0 = default, negative = disabled). A
	// repeated request — same sources, same options — is served from
	// memory without re-analysis, byte-identical.
	ResultCacheEntries int
	// Log receives one line per served request; nil logs nothing.
	Log *log.Logger
	// AccessLog, when non-nil, receives one structured JSONL line per
	// HTTP request (fixed key order; see accessLogger). This is the
	// machine-readable counterpart of Log.
	AccessLog io.Writer
	// SlowTraceDir, when non-empty, enables tail-sampled trace capture:
	// every analyze request buffers its span trace in memory, and
	// requests that were slow (over SlowThreshold or the sliding-window
	// p99) or ended badly (504, panic diagnostic) flush it to
	// <dir>/<request-id>.jsonl — ready for `rid explain -trace`.
	// Buffering implies per-query timing on every analyze request, the
	// documented cost of the flag.
	SlowTraceDir string
	// SlowThreshold is the fixed slow-request trigger (default 0: only
	// the p99 and failure triggers fire).
	SlowThreshold time.Duration
	// IDSeed, when nonzero, makes generated request IDs a deterministic
	// stream (tests); 0 uses crypto/rand.
	IDSeed int64
}

func (c Config) withDefaults() Config {
	if c.Specs == (rid.Specs{}) {
		c.Specs, c.SpecName = rid.LinuxDPMSpecs(), "linux-dpm"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 128
	}
	return c
}

// Server is one daemon instance. Create with New, expose with Handler or
// Start, stop with Shutdown.
type Server struct {
	cfg     Config
	base    *rid.Analyzer // resident corpus + shared metrics registry
	mux     *http.ServeMux
	handler http.Handler // mux behind the instrumentation middleware

	metrics serveMetrics
	ids     *idSource
	access  *accessLogger // nil without Config.AccessLog
	sampler *slowSampler  // nil without Config.SlowTraceDir

	corpus map[string]string // resident sources, nil when none loaded

	gate *admit.Gate // inflight slots + bounded queue (shared admission plumbing)

	served           atomic.Int64 // analyze requests answered 200
	deadlineExceeded atomic.Int64 // 504s
	cacheHits        atomic.Int64 // result-cache hits

	rcache *resultCache

	// lookup answers /v1/summary digest lookups: the local store when the
	// server has -cache-dir, layered over the fleet store when it also has
	// -cache-url (local is always consulted first; see TestSummaryLookupOrder).
	lookup store.Backend

	explainMu  sync.Mutex
	explainRes *rid.Result

	srv      *http.Server
	listener net.Listener
}

// New builds a server: the resident corpus (if any) is parsed and lowered
// once, here, and every later request reuses the warm state.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	base := rid.New(cfg.Specs)
	base.SetOptions(cfg.Options)
	s := &Server{
		cfg:    cfg,
		base:   base,
		rcache: newResultCache(cfg.ResultCacheEntries),
		ids:    newIDSource(cfg.IDSeed),
	}
	s.gate = admit.New(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait, s.metrics.queueWait.Observe)
	if cfg.AccessLog != nil {
		s.access = newAccessLogger(cfg.AccessLog)
	}
	if cfg.SlowTraceDir != "" {
		if err := os.MkdirAll(cfg.SlowTraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: slow-trace dir: %w", err)
		}
		s.sampler = newSlowSampler(cfg.SlowTraceDir, cfg.SlowThreshold)
	}
	if cfg.CorpusDir != "" {
		files, err := loadCorpus(cfg.CorpusDir)
		if err != nil {
			return nil, fmt.Errorf("serve: load corpus: %w", err)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("serve: corpus dir %s holds no .c files", cfg.CorpusDir)
		}
		s.corpus = files
		if err := addSources(base, files); err != nil {
			return nil, fmt.Errorf("serve: corpus: %w", err)
		}
	}
	if cfg.Options.CacheDir != "" || cfg.Options.CacheURL != "" {
		// Digest-lookup backend for /v1/summary. The zero fingerprint is
		// fine: digest lookups don't consult it (see store.LookupDigest).
		// With both tiers configured, lookups try the local store first and
		// only then the fleet store — replicas answer from the shared cache
		// for digests they have never computed locally.
		var local *store.Store
		if cfg.Options.CacheDir != "" {
			st, err := store.Open(cfg.Options.CacheDir, store.Fingerprint{}, nil)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			local = st
			s.lookup = st
		}
		if cfg.Options.CacheURL != "" {
			client, err := remote.NewClient(remote.Config{URL: cfg.Options.CacheURL})
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			if local != nil {
				s.lookup = remote.NewTiered(local, client)
			} else {
				s.lookup = client
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/explain/{fn}", s.handleExplain)
	mux.HandleFunc("GET /v1/summary/{digest}", s.handleSummary)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/", base.DebugHandler())
	s.mux = mux
	s.handler = s.instrument(mux)
	return s, nil
}

// Handler returns the daemon's full HTTP surface (for tests and for
// embedding; Start serves the same handler). Every request passes
// through the instrumentation middleware: request-ID assignment, the
// route×status counters behind /metrics, access logging and slow-trace
// sampling when configured.
func (s *Server) Handler() http.Handler { return s.handler }

// Start listens on addr (port 0 picks a free one) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.srv = &http.Server{Handler: s.handler}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown returns ErrServerClosed here
	return ln.Addr().String(), nil
}

// Shutdown stops accepting connections and waits for in-flight requests
// to drain, up to ctx's deadline; it then severs whatever remains.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close() //nolint:errcheck // the Shutdown error is the one to report
		return err
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// loadCorpus reads every *.c file under dir into memory, keyed by path.
func loadCorpus(dir string) (map[string]string, error) {
	files := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".c") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[path] = string(data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return files, nil
}

// addSources loads files into a in sorted name order — the same
// deterministic order the CLI's -dir walk and AnalyzeFiles use, so
// last-wins duplicate merging behaves identically.
func addSources(a *rid.Analyzer, files map[string]string) error {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := a.AddSource(n, files[n]); err != nil {
			return err
		}
	}
	return nil
}
