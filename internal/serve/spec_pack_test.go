package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/corpus/lockgen"
	"repro/rid"
)

// cliReport runs the given sources through the public rid pipeline —
// exactly what cmd/rid does for -spec/-spec-pack — and returns the text
// report.
func cliReport(t *testing.T, files map[string]string, specs rid.Specs, opts rid.Options) string {
	t.Helper()
	a := rid.New(specs)
	a.SetOptions(opts)
	if err := addSources(a, files); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReports(&buf, "text", false); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAnalyzeSpecPackMatchesCLI pins the daemon's two pack-selection
// routes to the CLI: a request naming the lock pack via "spec", and one
// merging it via "spec_packs", must both return a report byte-identical
// to `rid -spec lock` / `rid -spec-pack lock` over the same sources.
func TestAnalyzeSpecPackMatchesCLI(t *testing.T) {
	files := lockgen.Generate(lockgen.Config{Seed: 41, Mix: lockgen.DefaultMix()}).Files

	lockSpecs, err := rid.SpecPack("lock")
	if err != nil {
		t.Fatal(err)
	}
	asBase := cliReport(t, files, lockSpecs, rid.Options{})
	asPack := cliReport(t, files, rid.Specs{}, rid.Options{SpecPacks: []string{"lock"}})
	if asBase != asPack {
		t.Fatalf("CLI baseline disagreement: -spec lock and -spec-pack lock differ:\n%s\n---\n%s", asBase, asPack)
	}
	if !strings.Contains(asBase, "lock") {
		t.Fatalf("baseline found no lock reports; the oracle is vacuous:\n%s", asBase)
	}

	_, ts := newTestServer(t, Config{})
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: files, Spec: "lock"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec=lock: status %d: %+v", resp.StatusCode, ar)
	}
	if ar.Report != asBase {
		t.Errorf("spec=lock report differs from CLI:\n--- serve ---\n%s--- cli ---\n%s", ar.Report, asBase)
	}

	resp2, ar2 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: files, SpecPacks: []string{"lock"}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("spec_packs=[lock]: status %d: %+v", resp2.StatusCode, ar2)
	}
	if ar2.Report != asBase {
		t.Errorf("spec_packs=[lock] report differs from CLI:\n--- serve ---\n%s--- cli ---\n%s", ar2.Report, asBase)
	}
	if ar2.Cached {
		t.Error("spec_packs=[lock] was served from the spec=lock cache entry: the memo key must separate the routes")
	}
}

// TestAnalyzeSpecPackMemoKey pins cache safety at the daemon layer: the
// same sources analyzed under different packs must never share a memo
// entry, while an exact repeat still hits.
func TestAnalyzeSpecPackMemoKey(t *testing.T) {
	files := lockgen.Generate(lockgen.Config{Seed: 43, Mix: lockgen.DefaultMix()}).Files
	_, ts := newTestServer(t, Config{})

	_, lock1 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: files, SpecPacks: []string{"lock"}})
	if lock1.Cached || lock1.Bugs == 0 {
		t.Fatalf("cold lock run: cached=%t bugs=%d", lock1.Cached, lock1.Bugs)
	}

	// Same files, different pack: a fresh run, not the lock entry.
	_, fd := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: files, SpecPacks: []string{"fd"}})
	if fd.Cached {
		t.Fatal("fd-pack request was served from the lock-pack cache entry")
	}
	if fd.Report == lock1.Report {
		t.Fatal("fd-pack report identical to lock-pack report; the differential is vacuous")
	}

	// Exact repeat: memoized, byte-identical.
	_, lock2 := postAnalyze(t, ts.URL, &AnalyzeRequest{Files: files, SpecPacks: []string{"lock"}})
	if !lock2.Cached {
		t.Fatal("identical lock-pack repeat must be served from the result cache")
	}
	if lock2.Report != lock1.Report {
		t.Fatal("cached lock-pack response differs from the original")
	}
}

// TestAnalyzeUnknownSpecPack rejects a bad pack name before admission,
// with the CLI's wording.
func TestAnalyzeUnknownSpecPack(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, ar := postAnalyze(t, ts.URL, &AnalyzeRequest{
		Files:     map[string]string{"a.c": "int f(void) { return 0; }"},
		SpecPacks: []string{"bsd"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (want 400): %+v", resp.StatusCode, ar)
	}
	if !strings.Contains(ar.Error, "unknown spec pack") {
		t.Fatalf("error %q missing pack diagnostic", ar.Error)
	}
}
