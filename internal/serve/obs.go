// Request-scoped observability for the daemon: request identity,
// per-route counters and duration histograms, the Prometheus /metrics
// endpoint, JSONL access logs, and tail-sampled slow-request traces.
//
// Everything on the per-request hot path is fixed-size atomics (route ×
// status-class counter matrix, lock-free histograms) so instrumentation
// adds no locks and no allocations beyond the one request record, which
// is pooled. The expensive artifacts — access-log lines, trace buffers —
// exist only when the corresponding Config field is set.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"io"
	mrand "math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/promtext"
	"repro/rid"
)

// ---------------------------------------------------------------------------
// Routes and status buckets

// route is the daemon's fixed endpoint taxonomy — the label set of
// rid_serve_requests_total. Derived from the URL path, not the mux
// pattern, so unknown paths land in routeOther instead of exploding the
// label space.
type route uint8

const (
	routeAnalyze route = iota
	routeExplain
	routeSummary
	routeHealthz
	routeMetrics
	routeDebug
	routeOther
	numRoutes
)

var routeNames = [numRoutes]string{
	routeAnalyze: "analyze",
	routeExplain: "explain",
	routeSummary: "summary",
	routeHealthz: "healthz",
	routeMetrics: "metrics",
	routeDebug:   "debug",
	routeOther:   "other",
}

func routeOf(path string) route {
	switch {
	case path == "/v1/analyze":
		return routeAnalyze
	case len(path) >= len("/v1/explain/") && path[:len("/v1/explain/")] == "/v1/explain/":
		return routeExplain
	case len(path) >= len("/v1/summary/") && path[:len("/v1/summary/")] == "/v1/summary/":
		return routeSummary
	case path == "/healthz":
		return routeHealthz
	case path == "/metrics":
		return routeMetrics
	case len(path) >= len("/debug/") && path[:len("/debug/")] == "/debug/":
		return routeDebug
	}
	return routeOther
}

// statusCodes is the fixed set of status codes the daemon emits; anything
// else folds into the final "other" bucket. Fixed so the counter matrix
// is a lock-free array and exposition order is deterministic.
var statusCodes = [...]int{200, 400, 404, 429, 500, 503, 504}

const numStatus = len(statusCodes) + 1 // + other

func statusIdx(code int) int {
	for i, c := range statusCodes {
		if c == code {
			return i
		}
	}
	return len(statusCodes)
}

// ---------------------------------------------------------------------------
// Serve-level metrics

// serveMetrics is the daemon's own metric store, beside (not inside) the
// analysis registry: request counts by route and status, and wall-clock
// histograms for queue wait and request duration. All fields are
// lock-free; exposition iterates them in fixed order.
type serveMetrics struct {
	requests   [numRoutes][numStatus]atomic.Int64
	queueWait  obs.Histogram
	duration   [numRoutes]obs.Histogram
	slowTraces atomic.Int64
	cacheMiss  atomic.Int64
}

func (m *serveMetrics) record(rt route, code int, dur time.Duration) {
	m.requests[rt][statusIdx(code)].Add(1)
	m.duration[rt].Observe(dur)
}

// ---------------------------------------------------------------------------
// Request identity

// idSource mints request IDs: 16 hex digits, either crypto-random or —
// when seeded, for reproducible tests — from a deterministic stream.
type idSource struct {
	mu  sync.Mutex
	rng *mrand.Rand // nil = crypto/rand
}

func newIDSource(seed int64) *idSource {
	s := &idSource{}
	if seed != 0 {
		s.rng = mrand.New(mrand.NewSource(seed))
	}
	return s
}

func (s *idSource) next() string {
	var b [8]byte
	s.mu.Lock()
	if s.rng != nil {
		u := s.rng.Uint64()
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
	} else {
		rand.Read(b[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	}
	s.mu.Unlock()
	return hex.EncodeToString(b[:])
}

// requestIDHeader names the request on the wire: honored inbound (so a
// proxy can stitch its own IDs through), always echoed on the response.
const requestIDHeader = "X-Rid-Request-Id"

// validInboundID gates inbound IDs: path-safe (the ID can become a
// slow-trace file name) and bounded.
func validInboundID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return id != "." && id != ".."
}

// ---------------------------------------------------------------------------
// Per-request record

// reqRecord accumulates what one request did, for the access log and the
// slow-trace sampling decision. Records are pooled; handlers reach theirs
// through the response writer (see instrumented).
type reqRecord struct {
	id        string
	route     route
	status    int
	queueWait time.Duration
	elapsed   time.Duration
	memoHit   bool
	storeHit  int64
	storeMiss int64
	degraded  bool
	panicked  bool
	diags     []string // degradation kinds, deduplicated, sorted
	phases    []rid.PhaseTiming
	trace     *boundedBuf // per-request JSONL span buffer, nil unless sampling
}

func (rec *reqRecord) reset() {
	*rec = reqRecord{diags: rec.diags[:0], phases: rec.phases[:0]}
}

var recordPool = sync.Pool{New: func() any { return new(reqRecord) }}

// instrumented is the response writer wrapper carrying the request
// record; handlers retrieve it with recordOf to annotate the request.
type instrumented struct {
	http.ResponseWriter
	rec *reqRecord
}

func (iw *instrumented) WriteHeader(code int) {
	iw.rec.status = code
	iw.ResponseWriter.WriteHeader(code)
}

func (iw *instrumented) Write(b []byte) (int, error) {
	if iw.rec.status == 0 {
		iw.rec.status = http.StatusOK
	}
	return iw.ResponseWriter.Write(b)
}

// recordOf returns the request record behind w, or nil when the handler
// runs outside the instrumentation middleware (direct Handler() tests).
func recordOf(w http.ResponseWriter) *reqRecord {
	if iw, ok := w.(*instrumented); ok {
		return iw.rec
	}
	return nil
}

// instrument wraps the daemon's mux: assigns the request ID, times the
// request, counts it into the route×status matrix, emits the access-log
// line, and feeds the slow-trace sampler. One wrapper for every route so
// the accounting can't drift from the mux table.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := recordPool.Get().(*reqRecord)
		rec.reset()
		rec.route = routeOf(r.URL.Path)
		if id := r.Header.Get(requestIDHeader); validInboundID(id) {
			rec.id = id
		} else {
			rec.id = s.ids.next()
		}
		w.Header().Set(requestIDHeader, rec.id)
		if s.sampler != nil && rec.route == routeAnalyze {
			rec.trace = s.sampler.buffer()
		}
		iw := &instrumented{ResponseWriter: w, rec: rec}
		t0 := time.Now()
		next.ServeHTTP(iw, r)
		rec.elapsed = time.Since(t0)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.record(rec.route, rec.status, rec.elapsed)
		if s.access != nil {
			s.access.log(rec)
		}
		if s.sampler != nil && rec.route == routeAnalyze {
			s.sampler.finish(rec, &s.metrics.slowTraces, s)
		}
		recordPool.Put(rec)
	})
}

// ---------------------------------------------------------------------------
// Access log

// accessPhases is the per-request phase breakdown the access log and
// Server-Timing header carry: the pipeline stages a single request
// exercises (run-level and scheduler-internal phases are omitted).
var accessPhases = []string{"classify", "enumerate", "exec", "ipp", "solver", "cacheio", "replay"}

// accessLogger writes one JSONL line per request with a fixed key order:
//
//	{"id":...,"route":...,"status":...,"queue_wait_us":...,"elapsed_us":...,
//	 "phases":{"classify":...,...},"memo_hit":...,"store_hits":...,
//	 "store_misses":...,"degraded":...,"diags":[...]}
//
// The schema is append-only, like the trace format: keys never move,
// change meaning, or disappear. Writes are serialized and the line
// buffer reused, mirroring obs.JSONLTracer.
type accessLogger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

func newAccessLogger(w io.Writer) *accessLogger { return &accessLogger{w: w} }

func (l *accessLogger) log(rec *reqRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	b := l.buf[:0]
	b = append(b, `{"id":`...)
	b = strconv.AppendQuote(b, rec.id)
	b = append(b, `,"route":"`...)
	b = append(b, routeNames[rec.route]...)
	b = append(b, `","status":`...)
	b = strconv.AppendInt(b, int64(rec.status), 10)
	b = append(b, `,"queue_wait_us":`...)
	b = strconv.AppendInt(b, rec.queueWait.Microseconds(), 10)
	b = append(b, `,"elapsed_us":`...)
	b = strconv.AppendInt(b, rec.elapsed.Microseconds(), 10)
	b = append(b, `,"phases":{`...)
	for i, name := range accessPhases {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, name...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, phaseTotal(rec.phases, name).Microseconds(), 10)
	}
	b = append(b, `},"memo_hit":`...)
	b = strconv.AppendBool(b, rec.memoHit)
	b = append(b, `,"store_hits":`...)
	b = strconv.AppendInt(b, rec.storeHit, 10)
	b = append(b, `,"store_misses":`...)
	b = strconv.AppendInt(b, rec.storeMiss, 10)
	b = append(b, `,"degraded":`...)
	b = strconv.AppendBool(b, rec.degraded)
	b = append(b, `,"diags":[`...)
	for i, d := range rec.diags {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, d)
	}
	b = append(b, ']', '}', '\n')
	l.buf = b
	_, l.err = l.w.Write(b)
}

func phaseTotal(phases []rid.PhaseTiming, name string) time.Duration {
	for _, p := range phases {
		if p.Phase == name {
			return p.Total
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Tail-sampled slow traces

// maxTraceBuf bounds one request's in-memory span buffer (4 MiB of JSONL
// is tens of thousands of spans); a request exceeding it keeps its first
// maxTraceBuf bytes and the flushed file notes the truncation.
const maxTraceBuf = 4 << 20

// boundedBuf is an io.Writer that keeps the first cap bytes and drops
// (but counts) the rest — the per-request trace sink. Never fails, so a
// huge run can't fail its own analysis by tracing.
type boundedBuf struct {
	b       []byte
	dropped int64
}

func (t *boundedBuf) Write(p []byte) (int, error) {
	if room := maxTraceBuf - len(t.b); room > 0 {
		if len(p) <= room {
			t.b = append(t.b, p...)
		} else {
			t.b = append(t.b, p[:room]...)
			t.dropped += int64(len(p) - room)
		}
	} else {
		t.dropped += int64(len(p))
	}
	return len(p), nil
}

// slowWindow is the sliding sample of recent analyze durations backing
// the p99 trigger; slowWindowMin is how many samples must accumulate
// before the p99 trigger arms (below it only the fixed threshold, 504,
// and panic triggers fire, so a cold server doesn't flush its first
// requests as "slow").
const (
	slowWindow    = 256
	slowWindowMin = 64
)

// slowSampler decides which requests leave a trace on disk: every
// analyze request buffers its spans in memory (bounded, pooled), and the
// buffer is flushed to <dir>/<request-id>.jsonl only when the request
// was slow — over the fixed threshold, over the sliding-window p99 — or
// ended badly (504, panic diagnostic). Everything else returns its
// buffer to the pool and costs no I/O.
type slowSampler struct {
	dir       string
	threshold time.Duration

	mu     sync.Mutex
	window [slowWindow]int64
	n      int // total recorded (ring is full once n >= slowWindow)

	pool sync.Pool
}

func newSlowSampler(dir string, threshold time.Duration) *slowSampler {
	s := &slowSampler{dir: dir, threshold: threshold}
	s.pool.New = func() any { return new(boundedBuf) }
	return s
}

func (s *slowSampler) buffer() *boundedBuf {
	b := s.pool.Get().(*boundedBuf)
	b.b = b.b[:0]
	b.dropped = 0
	return b
}

// slow reports whether dur trips a sampling trigger, and records dur in
// the sliding window either way.
func (s *slowSampler) slow(dur time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	trip := s.threshold > 0 && dur >= s.threshold
	if !trip && s.n >= slowWindowMin {
		var tmp [slowWindow]int64
		m := copy(tmp[:], s.window[:min(s.n, slowWindow)])
		sorted := tmp[:m]
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p99 := sorted[(m*99+99)/100-1]
		trip = int64(dur) > p99
	}
	s.window[s.n%slowWindow] = int64(dur)
	s.n++
	return trip
}

// finish makes the sampling decision for one completed request and
// either flushes its trace file or recycles the buffer.
func (s *slowSampler) finish(rec *reqRecord, flushed *atomic.Int64, srv *Server) {
	buf := rec.trace
	if buf == nil {
		return
	}
	rec.trace = nil
	bad := rec.status == http.StatusGatewayTimeout || rec.panicked
	slow := s.slow(rec.elapsed)
	if (bad || slow) && len(buf.b) > 0 {
		if err := s.flush(rec, buf); err != nil {
			srv.logf("slow-trace flush %s: %v", rec.id, err)
		} else {
			flushed.Add(1)
		}
	}
	if cap(buf.b) <= maxTraceBuf {
		s.pool.Put(buf)
	}
}

// flush writes the trace file. The first line is a header object (same
// append-only JSONL discipline) identifying the request; span lines
// follow verbatim. rec.id is validated path-safe at ingress.
func (s *slowSampler) flush(rec *reqRecord, buf *boundedBuf) error {
	var hdr []byte
	hdr = append(hdr, `{"request_id":`...)
	hdr = strconv.AppendQuote(hdr, rec.id)
	hdr = append(hdr, `,"status":`...)
	hdr = strconv.AppendInt(hdr, int64(rec.status), 10)
	hdr = append(hdr, `,"elapsed_us":`...)
	hdr = strconv.AppendInt(hdr, rec.elapsed.Microseconds(), 10)
	hdr = append(hdr, `,"dropped_bytes":`...)
	hdr = strconv.AppendInt(hdr, buf.dropped, 10)
	hdr = append(hdr, '}', '\n')

	path := filepath.Join(s.dir, rec.id+".jsonl")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(buf.b)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	return os.Rename(tmp, path)
}

// ---------------------------------------------------------------------------
// GET /metrics

// WriteMetrics renders the daemon's full Prometheus exposition: the
// serve-level families first (requests, admission gauges, queue-wait and
// duration histograms, memoization and slow-trace counters), then the
// shared analysis registry via rid's exposition. Families are disjoint,
// so the concatenation is one valid text-format document — `rid serve
// -check-metrics` and the CI smoke test round-trip it through
// promtext.Parse.
func (s *Server) WriteMetrics(w io.Writer) error {
	pw := promtext.NewWriter(w)

	pw.Family("rid_serve_requests_total", "counter", "HTTP requests served, by route and status code")
	for rt := route(0); rt < numRoutes; rt++ {
		for si := 0; si < numStatus; si++ {
			v := s.metrics.requests[rt][si].Load()
			if v == 0 {
				continue // keep the exposition small; absent = 0 to Prometheus
			}
			code := "other"
			if si < len(statusCodes) {
				code = strconv.Itoa(statusCodes[si])
			}
			pw.Int("rid_serve_requests_total", []promtext.Label{
				{Name: "route", Value: routeNames[rt]},
				{Name: "code", Value: code},
			}, v)
		}
	}

	pw.Family("rid_serve_inflight", "gauge", "analyses running now")
	pw.Int("rid_serve_inflight", nil, int64(s.gate.Inflight()))
	pw.Family("rid_serve_inflight_limit", "gauge", "MaxInflight setting")
	pw.Int("rid_serve_inflight_limit", nil, int64(s.cfg.MaxInflight))
	pw.Family("rid_serve_queued", "gauge", "requests waiting for an inflight slot")
	pw.Int("rid_serve_queued", nil, s.gate.Queued())
	pw.Family("rid_serve_queue_limit", "gauge", "QueueDepth setting")
	pw.Int("rid_serve_queue_limit", nil, int64(s.cfg.QueueDepth))

	pw.Family("rid_serve_rejected_total", "counter", "requests rejected 429 by admission control")
	pw.Int("rid_serve_rejected_total", nil, s.gate.Rejected())
	pw.Family("rid_serve_deadline_exceeded_total", "counter", "requests answered 504 with partial results")
	pw.Int("rid_serve_deadline_exceeded_total", nil, s.deadlineExceeded.Load())
	pw.Family("rid_serve_result_cache_hits_total", "counter", "analyze requests served from the in-memory result cache")
	pw.Int("rid_serve_result_cache_hits_total", nil, s.cacheHits.Load())
	pw.Family("rid_serve_result_cache_misses_total", "counter", "cacheable analyze requests that required analysis")
	pw.Int("rid_serve_result_cache_misses_total", nil, s.metrics.cacheMiss.Load())
	pw.Family("rid_serve_slow_traces_total", "counter", "slow-request trace files flushed by tail sampling")
	pw.Int("rid_serve_slow_traces_total", nil, s.metrics.slowTraces.Load())

	pw.Family("rid_serve_queue_wait_seconds", "histogram", "admission queue wait per admitted analyze request")
	s.metrics.queueWait.AppendProm(pw, "rid_serve_queue_wait_seconds")
	pw.Family("rid_serve_request_duration_seconds", "histogram", "wall-clock per HTTP request, by route")
	for rt := route(0); rt < numRoutes; rt++ {
		s.metrics.duration[rt].AppendProm(pw, "rid_serve_request_duration_seconds",
			promtext.Label{Name: "route", Value: routeNames[rt]})
	}

	if err := pw.Flush(); err != nil {
		return err
	}
	return s.base.WritePrometheus(w)
}

// CheckMetrics renders the exposition to memory and feeds it back
// through the validating parser — the self-check behind `rid serve
// -check-metrics` and the CI well-formedness gate.
func (s *Server) CheckMetrics() error {
	var sb sb512
	if err := s.WriteMetrics(&sb); err != nil {
		return err
	}
	_, err := promtext.Parse(&sb)
	return err
}

// sb512 is a tiny grow-only buffer (bytes.Buffer without the import
// cycle temptation); Read drains what Write stored.
type sb512 struct {
	b   []byte
	off int
}

func (s *sb512) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *sb512) Read(p []byte) (int, error) {
	if s.off >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.off:])
	s.off += n
	return n, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		s.logf("metrics: %v", err)
	}
}

// serverTiming renders the phase breakdown as a Server-Timing header
// value: `classify;dur=0.1, exec;dur=42.3, ...` (dur in milliseconds,
// phases in fixed order, zero phases included so the set is stable).
func serverTiming(phases []PhaseMS) string {
	var b []byte
	for i, name := range accessPhases {
		if i > 0 {
			b = append(b, ',', ' ')
		}
		b = append(b, name...)
		b = append(b, ";dur="...)
		var ms float64
		for _, p := range phases {
			if p.Phase == name {
				ms = p.MS
				break
			}
		}
		b = strconv.AppendFloat(b, ms, 'f', 3, 64)
	}
	return string(b)
}
