package report

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ipp"
	"repro/internal/lower"
	"repro/internal/spec"
)

func sampleReports(t *testing.T) []*ipp.Report {
	t.Helper()
	src := `
int zz_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
int aa_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`
	prog, err := lower.SourceString("drv.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
	if len(res.Reports) != 2 {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	// Deliberately misordered input.
	return []*ipp.Report{res.Reports[1], res.Reports[0]}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "JSON", "Sarif"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("%q: %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml must be rejected")
	}
}

func TestTextDeterministicOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Text, sampleReports(t), false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aa_op") || !strings.Contains(out, "zz_op") {
		t.Fatalf("output: %s", out)
	}
	if strings.Index(out, "aa_op") > strings.Index(out, "zz_op") {
		t.Error("reports not sorted by function")
	}
}

func TestTextVerboseIncludesEvidence(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Text, sampleReports(t), true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "path 0 entry:") {
		t.Errorf("verbose output missing evidence:\n%s", buf.String())
	}
}

func TestJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, JSON, sampleReports(t), false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	var jr jsonReport
	if err := json.Unmarshal([]byte(lines[0]), &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Function != "aa_op" || jr.Refcount != "[dev].pm" || jr.File != "drv.c" {
		t.Errorf("first report: %+v", jr)
	}
	if jr.DeltaA == jr.DeltaB {
		t.Errorf("deltas: %+v", jr)
	}
	if len(jr.Witness) == 0 || jr.Evidence == "" {
		t.Errorf("witness/evidence missing: %+v", jr)
	}
}

func TestSARIFWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, SARIF, sampleReports(t), false); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Errorf("version: %v", log["version"])
	}
	runs := log["runs"].([]any)
	run := runs[0].(map[string]any)
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "RID001" || first["level"] != "warning" {
		t.Errorf("result: %v", first)
	}
	loc := first["locations"].([]any)[0].(map[string]any)
	phys := loc["physicalLocation"].(map[string]any)
	if phys["artifactLocation"].(map[string]any)["uri"] != "drv.c" {
		t.Errorf("location: %v", phys)
	}
}

func TestSARIFEmptyRunsHaveResultsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, SARIF, nil, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty results array required by SARIF consumers:\n%s", buf.String())
	}
}

func TestWriteDiags(t *testing.T) {
	diags := []Diag{
		{Function: "", Kind: "canceled", Cause: "context deadline exceeded; 3 of 9 functions analyzed"},
		{Function: "drv_op", Kind: "path-budget", Cause: "path enumeration truncated at MaxPaths=100"},
	}
	var text strings.Builder
	if err := WriteDiags(&text, Text, diags); err != nil {
		t.Fatal(err)
	}
	want := "(run): canceled: context deadline exceeded; 3 of 9 functions analyzed\n" +
		"drv_op: path-budget: path enumeration truncated at MaxPaths=100\n"
	if text.String() != want {
		t.Errorf("text diags:\n%q\nwant:\n%q", text.String(), want)
	}

	var buf strings.Builder
	if err := WriteDiags(&buf, JSON, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("json diag lines: %d", len(lines))
	}
	var d Diag
	if err := json.Unmarshal([]byte(lines[1]), &d); err != nil {
		t.Fatal(err)
	}
	if d != diags[1] {
		t.Errorf("json round-trip: %+v", d)
	}
	// Run-level events omit the function field entirely.
	var raw map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["function"]; ok {
		t.Errorf("run-level diag carries a function key: %s", lines[0])
	}

	// SARIF has no diagnostics section; text fallback keeps -diag usable.
	var sb strings.Builder
	if err := WriteDiags(&sb, SARIF, diags); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("sarif fallback: %q", sb.String())
	}
}
