package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ipp"
)

// WriteExplain renders the full provenance of every report to w as text:
// the inconsistency and its witness, the replay verdict, the deciding
// solver query, and — per path — the constraint before and after the
// existential projection of locals, the applied callee summary entries,
// and the CFG blocks with source positions and instructions. Reports are
// emitted in deterministic (function, refcount) order.
//
// Reports analyzed without provenance fall back to the Figure-2 detail
// plus a note; `rid explain` always enables provenance, so this is only
// reachable through the library API.
func WriteExplain(w io.Writer, reports []*ipp.Report) error {
	sorted := make([]*ipp.Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Fn != sorted[j].Fn {
			return sorted[i].Fn < sorted[j].Fn
		}
		return sorted[i].Refcount.Key() < sorted[j].Refcount.Key()
	})
	for i, r := range sorted {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := explainOne(w, r); err != nil {
			return err
		}
	}
	return nil
}

func explainOne(w io.Writer, r *ipp.Report) error {
	var b strings.Builder
	fmt.Fprintf(&b, "function %s (%s)\n", r.Fn, r.Pos)
	fmt.Fprintf(&b, "  refcount: %s\n", r.Refcount)
	fmt.Fprintf(&b, "  inconsistency: path %d changes %+d, path %d changes %+d\n",
		r.PathA, r.DeltaA, r.PathB, r.DeltaB)
	if len(r.Witness) > 0 {
		keys := make([]string, 0, len(r.Witness))
		for k := range r.Witness {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  witness: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %d", k, r.Witness[k])
		}
		b.WriteString("\n")
	}
	ev := r.Evidence
	if ev == nil {
		b.WriteString("  (no provenance recorded; enable Options.Provenance)\n")
		for _, line := range strings.Split(strings.TrimRight(r.Detail(), "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		_, err := io.WriteString(w, b.String())
		return err
	}
	if ev.Replay != nil {
		fmt.Fprintf(&b, "  replay: %s\n", ev.Replay)
	}
	if ev.Query.Index > 0 {
		fmt.Fprintf(&b, "  deciding query: solver query #%d", ev.Query.Index)
		if ev.Query.TraceSeq > 0 {
			fmt.Fprintf(&b, " (trace seq %d)", ev.Query.TraceSeq)
		}
		b.WriteString("\n")
	}
	explainPath(&b, "A", r.DeltaA, ev.PathA)
	explainPath(&b, "B", r.DeltaB, ev.PathB)
	_, err := io.WriteString(w, b.String())
	return err
}

func explainPath(b *strings.Builder, side string, delta int, pe ipp.PathEvidence) {
	fmt.Fprintf(b, "  path %s = path %d (delta %+d):\n", side, pe.PathIndex, delta)
	if pe.RawCons != "" && pe.RawCons != pe.Cons {
		fmt.Fprintf(b, "    constraint (before projection): %s\n", pe.RawCons)
	}
	if pe.Cons != "" {
		fmt.Fprintf(b, "    constraint: %s\n", pe.Cons)
	}
	if len(pe.Callees) > 0 {
		b.WriteString("    callee entries applied:\n")
		for _, app := range pe.Callees {
			fmt.Fprintf(b, "      %s entry %d", app.Callee, app.EntryIndex)
			if app.Pos.IsValid() {
				fmt.Fprintf(b, " at %s", app.Pos)
			}
			fmt.Fprintf(b, ": %s\n", app.Cons)
		}
	}
	if len(pe.Blocks) > 0 {
		b.WriteString("    blocks:\n")
		for _, blk := range pe.Blocks {
			fmt.Fprintf(b, "      b%d", blk.Index)
			if blk.Pos.IsValid() {
				fmt.Fprintf(b, " (%s)", blk.Pos)
			}
			b.WriteString("\n")
			for _, in := range blk.Instrs {
				fmt.Fprintf(b, "        %s\n", in)
			}
		}
	}
}
