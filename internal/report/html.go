package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"repro/internal/ipp"
)

// WriteExplainHTML renders the reports' provenance as one self-contained
// HTML document (inline CSS, no external resources) — the `rid explain
// -html` output. dot, when non-nil, supplies a Graphviz source per report
// with the two paths overlaid (cfg.DotPaths); it is embedded in a
// <details> block so `dot -Tsvg` can be run on it directly.
func WriteExplainHTML(w io.Writer, reports []*ipp.Report, dot func(*ipp.Report) string) error {
	sorted := make([]*ipp.Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Fn != sorted[j].Fn {
			return sorted[i].Fn < sorted[j].Fn
		}
		return sorted[i].Refcount.Key() < sorted[j].Refcount.Key()
	})

	var b strings.Builder
	b.WriteString(htmlHeader)
	fmt.Fprintf(&b, "<p class=count>%d report(s)</p>\n", len(sorted))
	for i, r := range sorted {
		htmlReport(&b, i+1, r, dot)
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

const htmlHeader = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rid evidence report</title>
<style>
body { font-family: sans-serif; margin: 2em auto; max-width: 72em; color: #1b1f24; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
code, pre { font-family: ui-monospace, monospace; font-size: 0.92em; }
pre { background: #f6f8fa; padding: 0.8em; border-radius: 6px; overflow-x: auto; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #d0d7de; padding: 0.3em 0.7em; text-align: left; vertical-align: top; }
.verdict { display: inline-block; padding: 0.1em 0.6em; border-radius: 1em; font-size: 0.85em; }
.confirmed-by-replay { background: #d5f5d5; color: #1a5e1a; }
.replay-diverged { background: #fff3cd; color: #6d5200; }
.not-replayable { background: #eceff1; color: #455a64; }
.path-a { border-left: 4px solid #1f6feb; padding-left: 0.8em; }
.path-b { border-left: 4px solid #d9480f; padding-left: 0.8em; }
details { margin: 0.6em 0; } summary { cursor: pointer; }
</style>
</head>
<body>
<h1>rid evidence report</h1>
`

func htmlReport(b *strings.Builder, n int, r *ipp.Report, dot func(*ipp.Report) string) {
	esc := html.EscapeString
	fmt.Fprintf(b, "<h2>%d. <code>%s</code> — inconsistent path pair on <code>%s</code></h2>\n",
		n, esc(r.Fn), esc(r.Refcount.Key()))
	fmt.Fprintf(b, "<p><code>%s</code>: path %d changes <b>%+d</b>, path %d changes <b>%+d</b>.",
		esc(fmt.Sprint(r.Pos)), r.PathA, r.DeltaA, r.PathB, r.DeltaB)
	ev := r.Evidence
	if ev != nil && ev.Replay != nil {
		fmt.Fprintf(b, " <span class=\"verdict %s\">%s</span>", esc(ev.Replay.Verdict), esc(ev.Replay.Verdict))
	}
	b.WriteString("</p>\n")
	if len(r.Witness) > 0 {
		keys := make([]string, 0, len(r.Witness))
		for k := range r.Witness {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("<p>witness: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "<code>%s = %d</code>", esc(k), r.Witness[k])
		}
		b.WriteString("</p>\n")
	}
	if ev == nil {
		fmt.Fprintf(b, "<pre>%s</pre>\n", esc(r.Detail()))
		return
	}
	if ev.Replay != nil && (ev.Replay.DeltaA != "" || ev.Replay.DeltaB != "") {
		fmt.Fprintf(b, "<p>replayed deltas: path A <code>%s</code>, path B <code>%s</code> (%d attempts)</p>\n",
			esc(ev.Replay.DeltaA), esc(ev.Replay.DeltaB), ev.Replay.Attempts)
	}
	if ev.Query.Index > 0 {
		fmt.Fprintf(b, "<p>deciding solver query #%d", ev.Query.Index)
		if ev.Query.TraceSeq > 0 {
			fmt.Fprintf(b, " (trace seq %d)", ev.Query.TraceSeq)
		}
		b.WriteString("</p>\n")
	}
	htmlPath(b, "a", fmt.Sprintf("Path A = path %d (delta %+d)", ev.PathA.PathIndex, r.DeltaA), ev.PathA)
	htmlPath(b, "b", fmt.Sprintf("Path B = path %d (delta %+d)", ev.PathB.PathIndex, r.DeltaB), ev.PathB)
	if dot != nil {
		if d := dot(r); d != "" {
			b.WriteString("<details><summary>CFG with both paths overlaid (Graphviz source; render with <code>dot -Tsvg</code>)</summary>\n")
			fmt.Fprintf(b, "<pre>%s</pre></details>\n", html.EscapeString(d))
		}
	}
}

func htmlPath(b *strings.Builder, side, title string, pe ipp.PathEvidence) {
	esc := html.EscapeString
	fmt.Fprintf(b, "<div class=\"path-%s\">\n<h3>%s</h3>\n", side, esc(title))
	if pe.RawCons != "" && pe.RawCons != pe.Cons {
		fmt.Fprintf(b, "<p>constraint before projection: <code>%s</code></p>\n", esc(pe.RawCons))
	}
	if pe.Cons != "" {
		fmt.Fprintf(b, "<p>constraint: <code>%s</code></p>\n", esc(pe.Cons))
	}
	if len(pe.Callees) > 0 {
		b.WriteString("<table><tr><th>callee</th><th>entry</th><th>at</th><th>instantiated constraint</th></tr>\n")
		for _, app := range pe.Callees {
			pos := ""
			if app.Pos.IsValid() {
				pos = fmt.Sprint(app.Pos)
			}
			fmt.Fprintf(b, "<tr><td><code>%s</code></td><td>%d</td><td>%s</td><td><code>%s</code></td></tr>\n",
				esc(app.Callee), app.EntryIndex, esc(pos), esc(app.Cons))
		}
		b.WriteString("</table>\n")
	}
	if len(pe.Blocks) > 0 {
		var pb strings.Builder
		for _, blk := range pe.Blocks {
			fmt.Fprintf(&pb, "b%d", blk.Index)
			if blk.Pos.IsValid() {
				fmt.Fprintf(&pb, "  (%s)", blk.Pos)
			}
			pb.WriteString("\n")
			for _, in := range blk.Instrs {
				fmt.Fprintf(&pb, "    %s\n", in)
			}
		}
		fmt.Fprintf(b, "<pre>%s</pre>\n", esc(pb.String()))
	}
	b.WriteString("</div>\n")
}
