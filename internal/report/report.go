// Package report renders IPP reports in the output formats a production
// static analyzer is expected to ship: human-readable text, line-oriented
// JSON, and a minimal SARIF 2.1.0 log that code-review UIs (GitHub, VS
// Code, ...) ingest directly.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ipp"
	"repro/internal/obs"
)

// Format selects an output renderer.
type Format string

// Supported formats.
const (
	Text  Format = "text"
	JSON  Format = "json"
	SARIF Format = "sarif"
)

// ParseFormat validates a user-supplied format name.
func ParseFormat(s string) (Format, error) {
	switch Format(strings.ToLower(s)) {
	case Text:
		return Text, nil
	case JSON:
		return JSON, nil
	case SARIF:
		return SARIF, nil
	}
	return "", fmt.Errorf("unknown report format %q (want text, json or sarif)", s)
}

// Write renders the reports to w in the given format. Reports are emitted
// in deterministic (function, refcount) order regardless of input order.
func Write(w io.Writer, f Format, reports []*ipp.Report, verbose bool) error {
	sorted := make([]*ipp.Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Fn != sorted[j].Fn {
			return sorted[i].Fn < sorted[j].Fn
		}
		return sorted[i].Refcount.Key() < sorted[j].Refcount.Key()
	})
	switch f {
	case Text:
		return writeText(w, sorted, verbose)
	case JSON:
		return writeJSON(w, sorted)
	case SARIF:
		return writeSARIF(w, sorted)
	}
	return fmt.Errorf("unhandled format %q", f)
}

func writeText(w io.Writer, reports []*ipp.Report, verbose bool) error {
	for _, r := range reports {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
		if verbose {
			for _, line := range strings.Split(strings.TrimRight(r.Detail(), "\n"), "\n") {
				if _, err := fmt.Fprintf(w, "    %s\n", line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonReport is the line-JSON wire format.
type jsonReport struct {
	Function string           `json:"function"`
	File     string           `json:"file,omitempty"`
	Line     int              `json:"line,omitempty"`
	Refcount string           `json:"refcount"`
	DeltaA   int              `json:"delta_a"`
	DeltaB   int              `json:"delta_b"`
	PathA    int              `json:"path_a"`
	PathB    int              `json:"path_b"`
	Witness  map[string]int64 `json:"witness,omitempty"`
	Evidence string           `json:"evidence"`
}

func writeJSON(w io.Writer, reports []*ipp.Report) error {
	enc := json.NewEncoder(w)
	for _, r := range reports {
		jr := jsonReport{
			Function: r.Fn,
			File:     r.Pos.File,
			Line:     r.Pos.Line,
			Refcount: r.Refcount.Key(),
			DeltaA:   r.DeltaA,
			DeltaB:   r.DeltaB,
			PathA:    r.PathA,
			PathB:    r.PathB,
			Witness:  r.Witness,
			Evidence: r.Detail(),
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// Diag is one degradation diagnostic for rendering: a place where the
// analysis traded precision for progress (budget truncation, solver
// give-up, per-function timeout, recovered panic, cancellation).
type Diag struct {
	Function string `json:"function,omitempty"` // empty for run-level events
	Kind     string `json:"kind"`
	Cause    string `json:"cause"`
}

// WriteDiags renders degradation diagnostics to w. Text mode emits one
// "fn: kind: cause" line per event; JSON mode one object per line. SARIF
// has no natural home for run-health records, so it falls back to text —
// diagnostics are operator output, not code-review findings.
func WriteDiags(w io.Writer, f Format, diags []Diag) error {
	switch f {
	case JSON:
		enc := json.NewEncoder(w)
		for _, d := range diags {
			if err := enc.Encode(d); err != nil {
				return err
			}
		}
		return nil
	case Text, SARIF:
		for _, d := range diags {
			fn := d.Function
			if fn == "" {
				fn = "(run)"
			}
			if _, err := fmt.Fprintf(w, "%s: %s: %s\n", fn, d.Kind, d.Cause); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unhandled format %q", f)
}

// WriteMetrics renders a metrics registry snapshot to w. Text mode uses
// the snapshot's stable fixed-order layout (one line per counter, then one
// per phase); JSON mode emits a single object. SARIF has no natural home
// for run metrics, so it falls back to text, as WriteDiags does.
func WriteMetrics(w io.Writer, f Format, s obs.Snapshot) error {
	switch f {
	case JSON:
		return s.WriteJSON(w)
	case Text, SARIF:
		return s.WriteText(w)
	}
	return fmt.Errorf("unhandled format %q", f)
}

// Minimal SARIF 2.1.0 structures (stdlib-only; only the fields consumers
// require).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

// codeFlows/threadFlows carry the two recorded paths of a report when the
// run captured provenance: one threadFlow per path, one location per CFG
// block that has a source position, the block's instructions as the
// location message. GitHub code scanning renders these as step-through
// path listings.
type sarifCodeFlow struct {
	Message     sarifMessage      `json:"message"`
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

const ruleID = "RID001"

func writeSARIF(w io.Writer, reports []*ipp.Report) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "rid",
			InformationURI: "https://doi.org/10.1145/2872362.2872389",
			Rules: []sarifRule{{
				ID:               ruleID,
				ShortDescription: sarifMessage{Text: "Inconsistent path pair: two caller-indistinguishable paths change a reference count differently"},
			}},
		}},
		Results: []sarifResult{},
	}
	for _, r := range reports {
		res := sarifResult{
			RuleID: ruleID,
			Level:  "warning",
			Message: sarifMessage{Text: fmt.Sprintf(
				"function %s: inconsistent path pair on %s %s (%+d vs %+d)",
				r.Fn, r.ResourceWord(), r.Refcount.Key(), r.DeltaA, r.DeltaB)},
		}
		if r.Pos.IsValid() && r.Pos.File != "" {
			res.Locations = []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: r.Pos.File},
				Region:           sarifRegion{StartLine: r.Pos.Line},
			}}}
		}
		if cf, ok := sarifFlows(r); ok {
			res.CodeFlows = []sarifCodeFlow{cf}
		}
		run.Results = append(run.Results, res)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifFlows converts a report's Evidence into one codeFlow with two
// threadFlows (path A, then path B). Blocks without a source position
// are skipped — SARIF thread flow locations need a physicalLocation to
// render; ok is false when the report carries no renderable step.
func sarifFlows(r *ipp.Report) (sarifCodeFlow, bool) {
	ev := r.Evidence
	if ev == nil {
		return sarifCodeFlow{}, false
	}
	flow := func(side string, pe ipp.PathEvidence) (sarifThreadFlow, bool) {
		var tf sarifThreadFlow
		for _, blk := range pe.Blocks {
			if !blk.Pos.IsValid() || blk.Pos.File == "" {
				continue
			}
			msg := fmt.Sprintf("path %s (path %d), block b%d", side, pe.PathIndex, blk.Index)
			if len(blk.Instrs) > 0 {
				msg += ": " + strings.Join(blk.Instrs, "; ")
			}
			tf.Locations = append(tf.Locations, sarifThreadFlowLocation{Location: sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: blk.Pos.File},
					Region:           sarifRegion{StartLine: blk.Pos.Line},
				},
				Message: &sarifMessage{Text: msg},
			}})
		}
		return tf, len(tf.Locations) > 0
	}
	fa, okA := flow("A", ev.PathA)
	fb, okB := flow("B", ev.PathB)
	if !okA || !okB {
		return sarifCodeFlow{}, false
	}
	msg := fmt.Sprintf("two caller-indistinguishable paths of %s change %s by %+d and %+d",
		r.Fn, r.Refcount.Key(), r.DeltaA, r.DeltaB)
	if ev.Replay != nil {
		msg += " [" + ev.Replay.Verdict + "]"
	}
	return sarifCodeFlow{
		Message:     sarifMessage{Text: msg},
		ThreadFlows: []sarifThreadFlow{fa, fb},
	}, true
}
