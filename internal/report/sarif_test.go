package report

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ipp"
	"repro/internal/lower"
	"repro/internal/spec"
)

// sampleReportsProv is sampleReports with provenance capture on, so the
// reports carry Evidence and the SARIF output gains codeFlows.
func sampleReportsProv(t *testing.T) []*ipp.Report {
	t.Helper()
	src := `
int zz_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`
	prog, err := lower.SourceString("drv.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{Provenance: true})
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	return res.Reports
}

// validateSARIF is a strict JSON-schema-shaped structural check of the
// emitted log, modeled on the required/optional property sets of the
// SARIF 2.1.0 schema for the object kinds rid emits. It rejects unknown
// keys, so any field-name drift (e.g. informationURI for informationUri)
// fails here rather than in a consumer.
func validateSARIF(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	checkKeys(t, "log", log, []string{"$schema", "version", "runs"}, nil)
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); s == "" {
		t.Error("$schema missing")
	}
	for i, rv := range log["runs"].([]any) {
		run := asObj(t, fmt.Sprintf("runs[%d]", i), rv)
		checkKeys(t, "run", run, []string{"tool", "results"}, nil)
		tool := asObj(t, "tool", run["tool"])
		checkKeys(t, "tool", tool, []string{"driver"}, nil)
		driver := asObj(t, "driver", tool["driver"])
		checkKeys(t, "driver", driver, []string{"name"}, []string{"informationUri", "rules"})
		ruleIDs := map[string]bool{}
		if rules, ok := driver["rules"].([]any); ok {
			for _, rv := range rules {
				rule := asObj(t, "rule", rv)
				checkKeys(t, "rule", rule, []string{"id"}, []string{"shortDescription"})
				ruleIDs[rule["id"].(string)] = true
				if sd, ok := rule["shortDescription"]; ok {
					checkKeys(t, "shortDescription", asObj(t, "shortDescription", sd), []string{"text"}, nil)
				}
			}
		}
		results, ok := run["results"].([]any)
		if !ok {
			t.Fatalf("run.results missing or not an array")
		}
		for j, resv := range results {
			res := asObj(t, fmt.Sprintf("results[%d]", j), resv)
			checkKeys(t, "result", res, []string{"ruleId", "level", "message"},
				[]string{"locations", "codeFlows"})
			if !ruleIDs[res["ruleId"].(string)] {
				t.Errorf("result references undeclared rule %v", res["ruleId"])
			}
			switch res["level"] {
			case "none", "note", "warning", "error":
			default:
				t.Errorf("result.level = %v not a SARIF level", res["level"])
			}
			validateMessage(t, res["message"])
			if locs, ok := res["locations"].([]any); ok {
				for _, lv := range locs {
					validateLocation(t, lv)
				}
			}
			if flows, ok := res["codeFlows"].([]any); ok {
				for _, fv := range flows {
					flow := asObj(t, "codeFlow", fv)
					checkKeys(t, "codeFlow", flow, []string{"threadFlows"}, []string{"message"})
					if m, ok := flow["message"]; ok {
						validateMessage(t, m)
					}
					tfs := flow["threadFlows"].([]any)
					if len(tfs) == 0 {
						t.Error("codeFlow.threadFlows must be non-empty")
					}
					for _, tfv := range tfs {
						tf := asObj(t, "threadFlow", tfv)
						checkKeys(t, "threadFlow", tf, []string{"locations"}, nil)
						tfls := tf["locations"].([]any)
						if len(tfls) == 0 {
							t.Error("threadFlow.locations must be non-empty")
						}
						for _, tflv := range tfls {
							tfl := asObj(t, "threadFlowLocation", tflv)
							checkKeys(t, "threadFlowLocation", tfl, []string{"location"}, nil)
							validateLocation(t, tfl["location"])
						}
					}
				}
			}
		}
	}
	return log
}

func validateLocation(t *testing.T, v any) {
	t.Helper()
	loc := asObj(t, "location", v)
	checkKeys(t, "location", loc, []string{"physicalLocation"}, []string{"message"})
	if m, ok := loc["message"]; ok {
		validateMessage(t, m)
	}
	phys := asObj(t, "physicalLocation", loc["physicalLocation"])
	checkKeys(t, "physicalLocation", phys, []string{"artifactLocation", "region"}, nil)
	art := asObj(t, "artifactLocation", phys["artifactLocation"])
	checkKeys(t, "artifactLocation", art, []string{"uri"}, nil)
	if u, _ := art["uri"].(string); u == "" {
		t.Error("artifactLocation.uri empty")
	}
	region := asObj(t, "region", phys["region"])
	checkKeys(t, "region", region, []string{"startLine"}, nil)
	if n, _ := region["startLine"].(float64); n < 1 {
		t.Errorf("region.startLine = %v, want >= 1", region["startLine"])
	}
}

func validateMessage(t *testing.T, v any) {
	t.Helper()
	msg := asObj(t, "message", v)
	checkKeys(t, "message", msg, []string{"text"}, nil)
	if s, _ := msg["text"].(string); s == "" {
		t.Error("message.text empty")
	}
}

func asObj(t *testing.T, what string, v any) map[string]any {
	t.Helper()
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("%s: not an object: %T", what, v)
	}
	return m
}

// checkKeys requires every key in required, and rejects keys outside
// required ∪ optional.
func checkKeys(t *testing.T, what string, obj map[string]any, required, optional []string) {
	t.Helper()
	allowed := map[string]bool{}
	for _, k := range required {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: required key %q missing", what, k)
		}
		allowed[k] = true
	}
	for _, k := range optional {
		allowed[k] = true
	}
	for k := range obj {
		if !allowed[k] {
			t.Errorf("%s: unexpected key %q (field-name drift?)", what, k)
		}
	}
}

// TestSARIFStructuralWithoutCodeFlows validates the default-path output
// (no provenance → no codeFlows) against the structural schema check.
func TestSARIFStructuralWithoutCodeFlows(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, SARIF, sampleReports(t), false); err != nil {
		t.Fatal(err)
	}
	log := validateSARIF(t, buf.Bytes())
	run := log["runs"].([]any)[0].(map[string]any)
	for _, rv := range run["results"].([]any) {
		if _, ok := rv.(map[string]any)["codeFlows"]; ok {
			t.Error("codeFlows emitted without provenance")
		}
	}
}

// TestSARIFStructuralWithCodeFlows validates the provenance-enriched
// output: every result carries one codeFlow with exactly two threadFlows
// (path A, path B), and the whole log still passes the structural check.
func TestSARIFStructuralWithCodeFlows(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, SARIF, sampleReportsProv(t), false); err != nil {
		t.Fatal(err)
	}
	log := validateSARIF(t, buf.Bytes())
	run := log["runs"].([]any)[0].(map[string]any)
	results := run["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for i, rv := range results {
		res := rv.(map[string]any)
		flows, ok := res["codeFlows"].([]any)
		if !ok || len(flows) != 1 {
			t.Fatalf("results[%d]: want exactly one codeFlow, got %v", i, res["codeFlows"])
		}
		tfs := flows[0].(map[string]any)["threadFlows"].([]any)
		if len(tfs) != 2 {
			t.Errorf("results[%d]: want 2 threadFlows (path A, path B), got %d", i, len(tfs))
		}
	}
}
