// Package ast defines the abstract syntax tree for the mini-C language.
//
// The tree deliberately stays close to C's surface syntax; all analysis-
// oriented simplification (short-circuit lowering, abstraction of
// unsupported operators, assert handling) happens in internal/lower.
package ast

import (
	"strings"

	"repro/internal/frontend/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types

// Type is a parsed type specifier. The analysis is essentially untyped
// (everything is an integer or a pointer treated as an integer), so Type
// only records what is needed for diagnostics and for distinguishing
// pointers from scalars.
type Type struct {
	Name    string // "int", "void", "long", struct tag, ...
	Struct  bool   // declared with the struct keyword
	Pointer int    // number of '*'
}

// IsVoid reports whether the type is exactly void (no pointers).
func (t Type) IsVoid() bool { return t.Name == "void" && t.Pointer == 0 }

// IsPointer reports whether the type has pointer depth at least one.
func (t Type) IsPointer() bool { return t.Pointer > 0 }

// String renders the type in C syntax.
func (t Type) String() string {
	var b strings.Builder
	if t.Struct {
		b.WriteString("struct ")
	}
	b.WriteString(t.Name)
	if t.Pointer > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Repeat("*", t.Pointer))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Declarations

// File is a parsed translation unit.
type File struct {
	Name    string
	Decls   []Decl
	Structs []*StructDecl
}

// Pos returns the start of the file, making File a Node for Inspect.
func (f *File) Pos() token.Pos { return token.Pos{File: f.Name, Line: 1, Column: 1} }

// Funcs returns the function definitions (bodies present) in the file.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// Param is a single function parameter.
type Param struct {
	Type Type
	Name string
	P    token.Pos
}

// Pos returns the parameter position.
func (p *Param) Pos() token.Pos { return p.P }

// FuncDecl is a function definition or (when Body is nil) a prototype /
// extern declaration.
type FuncDecl struct {
	Result Type
	Name   string
	Params []*Param
	Body   *BlockStmt // nil for prototypes
	Extern bool
	Static bool
	P      token.Pos
}

func (d *FuncDecl) declNode() {}

// Pos returns the declaration position.
func (d *FuncDecl) Pos() token.Pos { return d.P }

// StructDecl is a struct declaration. Field types are recorded but the
// analysis treats fields as uninterpreted symbols.
type StructDecl struct {
	Tag    string
	Fields []*Param
	P      token.Pos
}

func (d *StructDecl) declNode() {}

// Pos returns the declaration position.
func (d *StructDecl) Pos() token.Pos { return d.P }

// VarDecl is a top-level variable declaration; the analysis treats global
// variables as havoc (unknown) values, so only the name is significant.
type VarDecl struct {
	Type Type
	Name string
	Init Expr // may be nil
	P    token.Pos
}

func (d *VarDecl) declNode() {}

// Pos returns the declaration position.
func (d *VarDecl) Pos() token.Pos { return d.P }

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a { ... } block.
type BlockStmt struct {
	Stmts []Stmt
	P     token.Pos
}

// DeclStmt is a local variable declaration, possibly with initializer.
type DeclStmt struct {
	Type Type
	Name string
	Init Expr // may be nil
	P    token.Pos
}

// ExprStmt is an expression evaluated for effect (calls, assignments).
type ExprStmt struct {
	X Expr
	P token.Pos
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	P    token.Pos
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	P    token.Pos
}

// DoWhileStmt is do Body while (Cond);.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	P    token.Pos
}

// ForStmt is for (Init; Cond; Post) Body; any of the three may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	P    token.Pos
}

// GotoStmt is goto Label;.
type GotoStmt struct {
	Label string
	P     token.Pos
}

// LabeledStmt is Label: Stmt.
type LabeledStmt struct {
	Label string
	Stmt  Stmt
	P     token.Pos
}

// ReturnStmt is return [X];.
type ReturnStmt struct {
	X Expr // may be nil
	P token.Pos
}

// BreakStmt is break;.
type BreakStmt struct{ P token.Pos }

// ContinueStmt is continue;.
type ContinueStmt struct{ P token.Pos }

// AssertStmt is assert(X); — lowered to an assume on the analyzed path,
// mirroring the paper's treatment of Figure 1 ("the exception path handling
// assertion failure is ignored").
type AssertStmt struct {
	X Expr
	P token.Pos
}

// AsmStmt is asm("...") — an opaque operation; reads through it are
// modeled as random() by the lowering.
type AsmStmt struct {
	Text string
	P    token.Pos
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ P token.Pos }

// SwitchStmt is switch (Tag) { case ...: ... } — lowered to an if chain.
type SwitchStmt struct {
	Tag   Expr
	Cases []*CaseClause
	P     token.Pos
}

// CaseClause is one case (or default, when IsDefault) of a switch.
type CaseClause struct {
	Value     Expr // nil for default
	IsDefault bool
	Body      []Stmt
	P         token.Pos
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*GotoStmt) stmtNode()     {}
func (*LabeledStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*AssertStmt) stmtNode()   {}
func (*AsmStmt) stmtNode()      {}
func (*EmptyStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()   {}

// Pos implementations.
func (s *BlockStmt) Pos() token.Pos    { return s.P }
func (s *DeclStmt) Pos() token.Pos     { return s.P }
func (s *ExprStmt) Pos() token.Pos     { return s.P }
func (s *IfStmt) Pos() token.Pos       { return s.P }
func (s *WhileStmt) Pos() token.Pos    { return s.P }
func (s *DoWhileStmt) Pos() token.Pos  { return s.P }
func (s *ForStmt) Pos() token.Pos      { return s.P }
func (s *GotoStmt) Pos() token.Pos     { return s.P }
func (s *LabeledStmt) Pos() token.Pos  { return s.P }
func (s *ReturnStmt) Pos() token.Pos   { return s.P }
func (s *BreakStmt) Pos() token.Pos    { return s.P }
func (s *ContinueStmt) Pos() token.Pos { return s.P }
func (s *AssertStmt) Pos() token.Pos   { return s.P }
func (s *AsmStmt) Pos() token.Pos      { return s.P }
func (s *EmptyStmt) Pos() token.Pos    { return s.P }
func (s *SwitchStmt) Pos() token.Pos   { return s.P }
func (s *CaseClause) Pos() token.Pos   { return s.P }

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable or function name use.
type Ident struct {
	Name string
	P    token.Pos
}

// IntLit is an integer literal; Value is the parsed value.
type IntLit struct {
	Value int64
	Text  string
	P     token.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	P     token.Pos
}

// NullLit is NULL.
type NullLit struct{ P token.Pos }

// UnaryExpr is Op X for prefix operators (!, -, ~, *, &).
type UnaryExpr struct {
	Op token.Kind
	X  Expr
	P  token.Pos
}

// BinaryExpr is X Op Y.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
	P    token.Pos
}

// AssignExpr is LHS = RHS (also +=, -= forms, recorded via Op).
type AssignExpr struct {
	Op  token.Kind // ASSIGN, PLUSASSIGN, MINUSASSIGN
	LHS Expr
	RHS Expr
	P   token.Pos
}

// IncDecExpr is X++ / X-- / ++X / --X.
type IncDecExpr struct {
	Op token.Kind // PLUSPLUS or MINUSMINUS
	X  Expr
	P  token.Pos
}

// CallExpr is Fun(Args...).
type CallExpr struct {
	Fun  string
	Args []Expr
	P    token.Pos
}

// FieldExpr is X->Name or X.Name (Arrow records which was written).
type FieldExpr struct {
	X     Expr
	Name  string
	Arrow bool
	P     token.Pos
}

// IndexExpr is X[Index]; the analysis havocs loads through it.
type IndexExpr struct {
	X     Expr
	Index Expr
	P     token.Pos
}

// RandomExpr is the random() builtin of the Figure-3 abstraction: a
// non-deterministic integer (e.g. a device register read).
type RandomExpr struct{ P token.Pos }

// CondExpr is the ternary Cond ? Then : Else.
type CondExpr struct {
	Cond, Then, Else Expr
	P                token.Pos
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*AssignExpr) exprNode() {}
func (*IncDecExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*FieldExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*RandomExpr) exprNode() {}
func (*CondExpr) exprNode()   {}

// Pos implementations.
func (e *Ident) Pos() token.Pos      { return e.P }
func (e *IntLit) Pos() token.Pos     { return e.P }
func (e *BoolLit) Pos() token.Pos    { return e.P }
func (e *NullLit) Pos() token.Pos    { return e.P }
func (e *UnaryExpr) Pos() token.Pos  { return e.P }
func (e *BinaryExpr) Pos() token.Pos { return e.P }
func (e *AssignExpr) Pos() token.Pos { return e.P }
func (e *IncDecExpr) Pos() token.Pos { return e.P }
func (e *CallExpr) Pos() token.Pos   { return e.P }
func (e *FieldExpr) Pos() token.Pos  { return e.P }
func (e *IndexExpr) Pos() token.Pos  { return e.P }
func (e *RandomExpr) Pos() token.Pos { return e.P }
func (e *CondExpr) Pos() token.Pos   { return e.P }
