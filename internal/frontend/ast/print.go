package ast

import (
	"fmt"
	"strings"

	"repro/internal/frontend/token"
)

// Print renders a file back to mini-C source. The output is not guaranteed
// to be byte-identical to the input, but re-parsing it yields an
// equivalent tree (the property the printer tests pin down); it is used
// for diagnostics and corpus debugging.
func Print(f *File) string {
	var p printer
	for _, sd := range f.Structs {
		p.structDecl(sd)
	}
	for _, d := range f.Decls {
		p.decl(d)
	}
	return p.b.String()
}

// PrintStmt renders one statement (for tests and error messages).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.b.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("    ")
	}
}

func (p *printer) structDecl(sd *StructDecl) {
	if len(sd.Fields) == 0 {
		fmt.Fprintf(&p.b, "struct %s;\n", sd.Tag)
		return
	}
	fmt.Fprintf(&p.b, "struct %s {\n", sd.Tag)
	for _, f := range sd.Fields {
		fmt.Fprintf(&p.b, "    %s %s;\n", f.Type, f.Name)
	}
	p.b.WriteString("};\n")
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *FuncDecl:
		if d.Extern {
			p.b.WriteString("extern ")
		}
		if d.Static {
			p.b.WriteString("static ")
		}
		params := make([]string, len(d.Params))
		for i, prm := range d.Params {
			params[i] = strings.TrimSpace(fmt.Sprintf("%s %s", prm.Type, prm.Name))
		}
		if len(params) == 0 {
			params = []string{"void"}
		}
		fmt.Fprintf(&p.b, "%s %s(%s)", d.Result, d.Name, strings.Join(params, ", "))
		if d.Body == nil {
			p.b.WriteString(";\n")
			return
		}
		p.b.WriteString(" ")
		p.stmt(d.Body)
		p.b.WriteString("\n")
	case *VarDecl:
		fmt.Fprintf(&p.b, "%s %s", d.Type, d.Name)
		if d.Init != nil {
			p.b.WriteString(" = ")
			p.expr(d.Init)
		}
		p.b.WriteString(";\n")
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.b.WriteString("{\n")
		p.indent++
		for _, st := range s.Stmts {
			p.ws()
			p.stmt(st)
			p.b.WriteString("\n")
		}
		p.indent--
		p.ws()
		p.b.WriteString("}")
	case *DeclStmt:
		fmt.Fprintf(&p.b, "%s %s", s.Type, s.Name)
		if s.Init != nil {
			p.b.WriteString(" = ")
			p.expr(s.Init)
		}
		p.b.WriteString(";")
	case *ExprStmt:
		p.expr(s.X)
		p.b.WriteString(";")
	case *IfStmt:
		p.b.WriteString("if (")
		p.expr(s.Cond)
		p.b.WriteString(") ")
		p.stmt(s.Then)
		if s.Else != nil {
			p.b.WriteString(" else ")
			p.stmt(s.Else)
		}
	case *WhileStmt:
		p.b.WriteString("while (")
		p.expr(s.Cond)
		p.b.WriteString(") ")
		p.stmt(s.Body)
	case *DoWhileStmt:
		p.b.WriteString("do ")
		p.stmt(s.Body)
		p.b.WriteString(" while (")
		p.expr(s.Cond)
		p.b.WriteString(");")
	case *ForStmt:
		p.b.WriteString("for (")
		if s.Init != nil {
			switch init := s.Init.(type) {
			case *DeclStmt:
				fmt.Fprintf(&p.b, "%s %s", init.Type, init.Name)
				if init.Init != nil {
					p.b.WriteString(" = ")
					p.expr(init.Init)
				}
			case *ExprStmt:
				p.expr(init.X)
			}
		}
		p.b.WriteString("; ")
		if s.Cond != nil {
			p.expr(s.Cond)
		}
		p.b.WriteString("; ")
		if s.Post != nil {
			p.expr(s.Post)
		}
		p.b.WriteString(") ")
		p.stmt(s.Body)
	case *GotoStmt:
		fmt.Fprintf(&p.b, "goto %s;", s.Label)
	case *LabeledStmt:
		fmt.Fprintf(&p.b, "%s:\n", s.Label)
		p.ws()
		p.stmt(s.Stmt)
	case *ReturnStmt:
		p.b.WriteString("return")
		if s.X != nil {
			p.b.WriteString(" ")
			p.expr(s.X)
		}
		p.b.WriteString(";")
	case *BreakStmt:
		p.b.WriteString("break;")
	case *ContinueStmt:
		p.b.WriteString("continue;")
	case *AssertStmt:
		p.b.WriteString("assert(")
		p.expr(s.X)
		p.b.WriteString(");")
	case *AsmStmt:
		fmt.Fprintf(&p.b, "asm(%q);", s.Text)
	case *EmptyStmt:
		p.b.WriteString(";")
	case *SwitchStmt:
		p.b.WriteString("switch (")
		p.expr(s.Tag)
		p.b.WriteString(") {\n")
		p.indent++
		for _, c := range s.Cases {
			p.ws()
			if c.IsDefault {
				p.b.WriteString("default:\n")
			} else {
				p.b.WriteString("case ")
				p.expr(c.Value)
				p.b.WriteString(":\n")
			}
			p.indent++
			for _, st := range c.Body {
				p.ws()
				p.stmt(st)
				p.b.WriteString("\n")
			}
			p.indent--
		}
		p.indent--
		p.ws()
		p.b.WriteString("}")
	}
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *Ident:
		p.b.WriteString(e.Name)
	case *IntLit:
		fmt.Fprintf(&p.b, "%d", e.Value)
	case *BoolLit:
		fmt.Fprintf(&p.b, "%t", e.Value)
	case *NullLit:
		p.b.WriteString("NULL")
	case *UnaryExpr:
		p.b.WriteString(unarySpelling(e.Op))
		p.b.WriteString("(")
		p.expr(e.X)
		p.b.WriteString(")")
	case *BinaryExpr:
		p.b.WriteString("(")
		p.expr(e.X)
		fmt.Fprintf(&p.b, " %s ", e.Op)
		p.expr(e.Y)
		p.b.WriteString(")")
	case *AssignExpr:
		p.expr(e.LHS)
		fmt.Fprintf(&p.b, " %s ", e.Op)
		p.expr(e.RHS)
	case *IncDecExpr:
		p.expr(e.X)
		p.b.WriteString(e.Op.String())
	case *CallExpr:
		p.b.WriteString(e.Fun)
		p.b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a)
		}
		p.b.WriteString(")")
	case *FieldExpr:
		p.expr(e.X)
		if e.Arrow {
			p.b.WriteString("->")
		} else {
			p.b.WriteString(".")
		}
		p.b.WriteString(e.Name)
	case *IndexExpr:
		p.expr(e.X)
		p.b.WriteString("[")
		p.expr(e.Index)
		p.b.WriteString("]")
	case *RandomExpr:
		p.b.WriteString("random()")
	case *CondExpr:
		p.b.WriteString("(")
		p.expr(e.Cond)
		p.b.WriteString(" ? ")
		p.expr(e.Then)
		p.b.WriteString(" : ")
		p.expr(e.Else)
		p.b.WriteString(")")
	}
}

func unarySpelling(k token.Kind) string {
	switch k {
	case token.NOT:
		return "!"
	case token.MINUS:
		return "-"
	case token.TILDE:
		return "~"
	case token.STAR:
		return "*"
	case token.AMP:
		return "&"
	}
	return k.String()
}
