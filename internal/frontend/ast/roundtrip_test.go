package ast_test

import (
	"testing"

	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/pycgen"
	"repro/internal/frontend/ast"
	"repro/internal/frontend/parser"
	"repro/internal/lower"
)

// Corpus-wide printer property: every generated source file survives
// print → re-parse → lower with identical IR. This sweeps the whole
// grammar surface the generators exercise (wrappers, gotos, loops,
// switches never appear here but are covered by the targeted tests).
func TestPrintRoundTripKernelCorpus(t *testing.T) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 500,
		Mix: kernelgen.Mix{
			CorrectBalanced: 3, CorrectErrHandled: 3, CorrectWrapperUse: 3,
			CorrectHeld: 2, BugGetErrReturn: 3, BugWrapperErrPath: 3,
			BugWrapperMisuse: 2, BugDoublePut: 2, BugIRQStyle: 2,
			BugAsymmetricErr: 2, BugLoopErrPath: 2, CorrectLoop: 2, FPBitmask: 3,
		},
		SimpleHelpers: 3, ComplexHelpers: 2, OtherFuncs: 10,
	})
	roundTripFiles(t, c.Files)
}

func TestPrintRoundTripPythonCCorpus(t *testing.T) {
	m := pycgen.Generate(pycgen.Config{Name: "rt", Seed: 501, Mix: pycgen.Mix{
		Common: 4, RIDOnly: 4, CpyOnly: 4, Correct: 6,
	}})
	roundTripFiles(t, m.Files)
}

func roundTripFiles(t *testing.T, files map[string]string) {
	t.Helper()
	for name, src := range files {
		f1, err := parser.ParseFile(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		printed := ast.Print(f1)
		f2, err := parser.ParseFile(name+".printed", printed)
		if err != nil {
			t.Fatalf("re-parse %s: %v\n--- printed ---\n%s", name, err, printed)
		}
		p1, err := lower.File(f1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := lower.File(f2)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1.Order) != len(p2.Order) {
			t.Fatalf("%s: function counts differ after round trip", name)
		}
		for _, fn := range p1.Order {
			if p1.Funcs[fn].String() != p2.Funcs[fn].String() {
				t.Errorf("%s: function %s IR changed after print/re-parse", name, fn)
			}
		}
	}
}
