package ast_test

import (
	"testing"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/parser"
)

const walkSrc = `
int f(struct device *dev, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (check(dev) < 0)
            continue;
        switch (i) {
        case 1:
            work(dev, i);
            break;
        default:
            idle(dev);
        }
    }
    while (n > 0)
        n = shrink(n);
    do {
        poll(dev);
    } while (busy(dev));
    assert(dev != NULL);
    return finish(dev);
}
`

func TestInspectVisitsEverything(t *testing.T) {
	f, err := parser.ParseFile("w.c", walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	var calls, idents, stmts int
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr:
			calls++
		case *ast.Ident:
			idents++
		case ast.Stmt:
			stmts++
		}
		return true
	})
	if calls != 7 {
		t.Errorf("calls visited: %d, want 7", calls)
	}
	if idents == 0 || stmts == 0 {
		t.Errorf("idents=%d stmts=%d", idents, stmts)
	}
}

func TestInspectPruning(t *testing.T) {
	f, err := parser.ParseFile("w.c", walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Skip every for-statement subtree: the calls inside it disappear.
	var calls int
	ast.Inspect(f, func(n ast.Node) bool {
		if _, isFor := n.(*ast.ForStmt); isFor {
			return false
		}
		if _, isCall := n.(*ast.CallExpr); isCall {
			calls++
		}
		return true
	})
	if calls != 4 { // shrink, poll, busy, finish — check/work/idle pruned
		t.Errorf("calls outside for: %d, want 4", calls)
	}
}

func TestCalledFunctions(t *testing.T) {
	f, err := parser.ParseFile("w.c", walkSrc)
	if err != nil {
		t.Fatal(err)
	}
	got := ast.CalledFunctions(f)
	want := []string{"check", "work", "idle", "shrink", "poll", "busy", "finish"}
	if len(got) != len(want) {
		t.Fatalf("called: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order: %v", got)
			break
		}
	}
}

func TestInspectNilSafe(t *testing.T) {
	ast.Inspect(nil, func(ast.Node) bool { return true })
	var empty *ast.ReturnStmt
	_ = empty
	// A return with no value and an if with no else.
	f, err := parser.ParseFile("w.c", `void f(int a) { if (a > 0) return; }`)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ast.Inspect(f, func(ast.Node) bool { count++; return true })
	if count == 0 {
		t.Error("nothing visited")
	}
}
