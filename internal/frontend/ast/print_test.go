package ast_test

import (
	"strings"
	"testing"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
)

// reparseEquivalent checks the printer's core property: printing and
// re-parsing yields a program whose lowered IR is identical.
func reparseEquivalent(t *testing.T, src string) {
	t.Helper()
	f1, err := parser.ParseFile("orig.c", src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	printed := ast.Print(f1)
	f2, err := parser.ParseFile("printed.c", printed)
	if err != nil {
		t.Fatalf("re-parse printed output: %v\n--- printed ---\n%s", err, printed)
	}
	p1, err := lower.File(f1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lower.File(f2)
	if err != nil {
		t.Fatalf("lower printed: %v\n--- printed ---\n%s", err, printed)
	}
	if len(p1.Order) != len(p2.Order) {
		t.Fatalf("function counts differ: %v vs %v", p1.Order, p2.Order)
	}
	for _, name := range p1.Order {
		a, b := irText(p1, name), irText(p2, name)
		if a != b {
			t.Errorf("function %s IR differs after print/re-parse:\n--- original ---\n%s--- printed ---\n%s", name, a, b)
		}
	}
}

func irText(p *ir.Program, name string) string {
	return p.Funcs[name].String()
}

func TestPrintRoundTripBasics(t *testing.T) {
	reparseEquivalent(t, `
extern int pm_runtime_get_sync(struct device *dev);

struct usb_interface {
    struct device dev;
    int flags;
};

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 84);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`)
}

func TestPrintRoundTripControlFlow(t *testing.T) {
	reparseEquivalent(t, `
int f(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (i == 3)
            continue;
        if (i > 10)
            break;
        acc = g(i);
    }
    while (acc > 0)
        acc = h(acc);
    do {
        acc = g(acc);
    } while (acc != 0);
    switch (n) {
    case 1:
        return 1;
    case 2:
        acc = 2;
        break;
    default:
        acc = 0;
    }
    return acc;
}
`)
}

func TestPrintRoundTripExpressions(t *testing.T) {
	reparseEquivalent(t, `
int f(struct usb_interface *intf, int a, int b) {
    int x = a + b;
    int y = !a;
    int z = -5;
    int w = intf->dev.flags;
    if ((a > 0 && b < 5) || a == b)
        x = pm_runtime_get_sync(&intf->dev);
    return x;
}
`)
}

func TestPrintStmtAndExpr(t *testing.T) {
	f, err := parser.ParseFile("t.c", `int f(int a) { return a + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Funcs()[0]
	text := ast.PrintStmt(fn.Body)
	if !strings.Contains(text, "return (a + 1);") {
		t.Errorf("PrintStmt: %s", text)
	}
	ret := fn.Body.Stmts[0].(*ast.ReturnStmt)
	if got := ast.PrintExpr(ret.X); got != "(a + 1)" {
		t.Errorf("PrintExpr: %s", got)
	}
}

func TestPrintOpaqueStruct(t *testing.T) {
	f, err := parser.ParseFile("t.c", "struct device;\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.Print(f); !strings.Contains(got, "struct device;") {
		t.Errorf("opaque struct: %s", got)
	}
}
