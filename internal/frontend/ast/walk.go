package ast

// Inspect traverses the statement/expression tree rooted at n in depth-
// first order, calling f for every node. If f returns false for a node,
// its children are skipped. Nil children are never visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *File:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	case *FuncDecl:
		if n.Body != nil {
			Inspect(n.Body, f)
		}
	case *VarDecl:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *BlockStmt:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *ExprStmt:
		Inspect(n.X, f)
	case *IfStmt:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *DoWhileStmt:
		Inspect(n.Body, f)
		Inspect(n.Cond, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *LabeledStmt:
		Inspect(n.Stmt, f)
	case *ReturnStmt:
		if n.X != nil {
			Inspect(n.X, f)
		}
	case *AssertStmt:
		Inspect(n.X, f)
	case *SwitchStmt:
		Inspect(n.Tag, f)
		for _, c := range n.Cases {
			if c.Value != nil {
				Inspect(c.Value, f)
			}
			for _, s := range c.Body {
				Inspect(s, f)
			}
		}
	case *UnaryExpr:
		Inspect(n.X, f)
	case *BinaryExpr:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *AssignExpr:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *IncDecExpr:
		Inspect(n.X, f)
	case *CallExpr:
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *FieldExpr:
		Inspect(n.X, f)
	case *IndexExpr:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *CondExpr:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	}
}

// CalledFunctions returns the distinct function names called anywhere
// under n, in first-occurrence order.
func CalledFunctions(n Node) []string {
	seen := make(map[string]bool)
	var out []string
	Inspect(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok && !seen[c.Fun] {
			seen[c.Fun] = true
			out = append(out, c.Fun)
		}
		return true
	})
	return out
}
