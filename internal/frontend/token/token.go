// Package token defines the lexical tokens of the mini-C source language
// accepted by the RID frontend, together with source positions.
//
// The language is a small C subset sufficient to express the programs the
// RID paper analyzes: function definitions, extern declarations, struct
// pointer types, integer locals, control flow (if/else, while, for,
// goto/label), assertions, calls, field accesses and linear comparisons.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The zero value is ILLEGAL so that an uninitialized token is
// never mistaken for a valid one.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // foo, dev, pm_runtime_get_sync
	INT    // 12345, 0x54
	STRING // "..." (accepted and ignored in asm/attribute positions)

	// Operators and delimiters.
	ASSIGN  // =
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &
	PIPE    // |
	CARET   // ^
	SHL     // <<
	SHR     // >>
	NOT     // !
	TILDE   // ~

	EQ // ==
	NE // !=
	LT // <
	LE // <=
	GT // >
	GE // >=

	LAND // &&
	LOR  // ||

	ARROW  // ->
	DOT    // .
	COMMA  // ,
	SEMI   // ;
	COLON  // :
	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LBRACK // [
	RBRACK // ]

	PLUSPLUS    // ++
	MINUSMINUS  // --
	PLUSASSIGN  // +=
	MINUSASSIGN // -=

	// Keywords.
	KwInt
	KwLong
	KwChar
	KwVoid
	KwBool
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwGoto
	KwReturn
	KwBreak
	KwContinue
	KwExtern
	KwStatic
	KwConst
	KwUnsigned
	KwNull
	KwTrue
	KwFalse
	KwAssert
	KwRandom
	KwAsm
	KwSizeof
	KwSwitch
	KwCase
	KwDefault
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", COMMENT: "COMMENT",
	IDENT: "IDENT", INT: "INT", STRING: "STRING",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>", NOT: "!", TILDE: "~",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	LAND: "&&", LOR: "||",
	ARROW: "->", DOT: ".", COMMA: ",", SEMI: ";", COLON: ":",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	PLUSPLUS: "++", MINUSMINUS: "--", PLUSASSIGN: "+=", MINUSASSIGN: "-=",
	KwInt: "int", KwLong: "long", KwChar: "char", KwVoid: "void", KwBool: "bool",
	KwStruct: "struct", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwDo: "do", KwGoto: "goto", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwExtern: "extern",
	KwStatic: "static", KwConst: "const", KwUnsigned: "unsigned",
	KwNull: "NULL", KwTrue: "true", KwFalse: "false",
	KwAssert: "assert", KwRandom: "random", KwAsm: "asm", KwSizeof: "sizeof",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
}

// String returns a human-readable name for the kind: the literal spelling
// for operators and keywords, the class name for variable-content tokens.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds. NULL is uppercase as in C.
var Keywords = map[string]Kind{
	"int": KwInt, "long": KwLong, "char": KwChar, "void": KwVoid,
	"bool": KwBool, "struct": KwStruct, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "do": KwDo, "goto": KwGoto,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"extern": KwExtern, "static": KwStatic, "const": KwConst,
	"unsigned": KwUnsigned, "NULL": KwNull, "true": KwTrue, "false": KwFalse,
	"assert": KwAssert, "random": KwRandom, "asm": KwAsm,
	"__asm__": KwAsm, "sizeof": KwSizeof,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// Pos is a position in a source file. Line and Column are 1-based; a zero
// Pos means "no position".
type Pos struct {
	File   string
	Line   int
	Column int
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:column, omitting empty parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
}

// Token is a single lexical token with its source position and, for
// variable-content kinds (IDENT, INT, STRING, COMMENT), its literal text.
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, COMMENT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsComparison reports whether the kind is one of the six relational
// operators that the Figure-3 abstraction preserves as predicates.
func (k Kind) IsComparison() bool {
	switch k {
	case EQ, NE, LT, LE, GT, GE:
		return true
	}
	return false
}

// IsTypeKeyword reports whether the kind can begin a type specifier.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KwInt, KwLong, KwChar, KwVoid, KwBool, KwStruct, KwConst, KwUnsigned, KwStatic, KwExtern:
		return true
	}
	return false
}
