package token

import "testing"

func TestKindString(t *testing.T) {
	tests := map[Kind]string{
		EQ:       "==",
		ARROW:    "->",
		KwStruct: "struct",
		KwNull:   "NULL",
		IDENT:    "IDENT",
		EOF:      "EOF",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind: %q", got)
	}
}

func TestKeywordsRoundTrip(t *testing.T) {
	for spelling, kind := range Keywords {
		if spelling == "__asm__" {
			continue // alias of asm
		}
		if kind.String() != spelling {
			t.Errorf("keyword %q renders as %q", spelling, kind)
		}
	}
}

func TestIsComparison(t *testing.T) {
	for _, k := range []Kind{EQ, NE, LT, LE, GT, GE} {
		if !k.IsComparison() {
			t.Errorf("%s must be a comparison", k)
		}
	}
	for _, k := range []Kind{ASSIGN, LAND, PLUS, IDENT} {
		if k.IsComparison() {
			t.Errorf("%s must not be a comparison", k)
		}
	}
}

func TestIsTypeKeyword(t *testing.T) {
	for _, k := range []Kind{KwInt, KwVoid, KwStruct, KwConst, KwStatic, KwExtern} {
		if !k.IsTypeKeyword() {
			t.Errorf("%s must start a type", k)
		}
	}
	if IDENT.IsTypeKeyword() || KwReturn.IsTypeKeyword() {
		t.Error("non-type keywords misclassified")
	}
}

func TestPos(t *testing.T) {
	var zero Pos
	if zero.IsValid() || zero.String() != "-" {
		t.Errorf("zero pos: %q", zero.String())
	}
	p := Pos{File: "a.c", Line: 3, Column: 7}
	if !p.IsValid() || p.String() != "a.c:3:7" {
		t.Errorf("pos: %q", p.String())
	}
	q := Pos{Line: 2, Column: 1}
	if q.String() != "2:1" {
		t.Errorf("file-less pos: %q", q.String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "dev"}
	if tok.String() != `IDENT("dev")` {
		t.Errorf("token: %q", tok.String())
	}
	op := Token{Kind: ARROW}
	if op.String() != "->" {
		t.Errorf("operator token: %q", op.String())
	}
}
