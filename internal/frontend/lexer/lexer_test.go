package lexer

import (
	"testing"

	"repro/internal/frontend/token"
)

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestScanOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []token.Kind
	}{
		{"= == != < <= > >=", []token.Kind{token.ASSIGN, token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE, token.EOF}},
		{"&& || & |", []token.Kind{token.LAND, token.LOR, token.AMP, token.PIPE, token.EOF}},
		{"-> - -- -=", []token.Kind{token.ARROW, token.MINUS, token.MINUSMINUS, token.MINUSASSIGN, token.EOF}},
		{"+ ++ +=", []token.Kind{token.PLUS, token.PLUSPLUS, token.PLUSASSIGN, token.EOF}},
		{"<< >> ^ ~ %", []token.Kind{token.SHL, token.SHR, token.CARET, token.TILDE, token.PERCENT, token.EOF}},
		{"( ) { } [ ] ; : , .", []token.Kind{token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.LBRACK, token.RBRACK, token.SEMI, token.COLON, token.COMMA, token.DOT, token.EOF}},
	}
	for _, tt := range tests {
		got := kinds(New("t.c", tt.src).All())
		if len(got) != len(tt.want) {
			t.Fatalf("%q: got %v, want %v", tt.src, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q token %d: got %s, want %s", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	l := New("t.c", "int foo struct device NULL return goto assert random")
	ts := l.All()
	want := []token.Kind{token.KwInt, token.IDENT, token.KwStruct, token.IDENT,
		token.KwNull, token.KwReturn, token.KwGoto, token.KwAssert, token.KwRandom, token.EOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if ts[1].Lit != "foo" || ts[3].Lit != "device" {
		t.Errorf("ident literals wrong: %q %q", ts[1].Lit, ts[3].Lit)
	}
}

func TestScanNumbers(t *testing.T) {
	tests := []struct {
		src, lit string
	}{
		{"12345", "12345"},
		{"0x54", "0x54"},
		{"0xDEADbeef", "0xDEADbeef"},
		{"42UL", "42UL"},
		{"0", "0"},
	}
	for _, tt := range tests {
		ts := New("t.c", tt.src).All()
		if ts[0].Kind != token.INT || ts[0].Lit != tt.lit {
			t.Errorf("%q: got %v", tt.src, ts[0])
		}
	}
}

func TestScanCharLiteral(t *testing.T) {
	ts := New("t.c", "'a' '\\n' '\\0'").All()
	if ts[0].Kind != token.INT || ts[0].Lit != "97" {
		t.Errorf("'a': got %v", ts[0])
	}
	if ts[1].Lit != "10" {
		t.Errorf("'\\n': got %v", ts[1])
	}
	if ts[2].Lit != "0" {
		t.Errorf("'\\0': got %v", ts[2])
	}
}

func TestScanString(t *testing.T) {
	ts := New("t.c", `asm("mov eax, ebx")`).All()
	if ts[0].Kind != token.KwAsm {
		t.Fatalf("asm keyword: got %v", ts[0])
	}
	if ts[2].Kind != token.STRING || ts[2].Lit != "mov eax, ebx" {
		t.Errorf("string: got %v", ts[2])
	}
}

func TestCommentsAndPreprocessor(t *testing.T) {
	src := `// line comment
#include <linux/pm_runtime.h>
/* block
   comment */ int x;
`
	ts := New("t.c", src).All()
	want := []token.Kind{token.KwInt, token.IDENT, token.SEMI, token.EOF}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	src := "int\nfoo;"
	ts := New("f.c", src).All()
	if ts[0].Pos.Line != 1 || ts[0].Pos.Column != 1 {
		t.Errorf("int pos: %v", ts[0].Pos)
	}
	if ts[1].Pos.Line != 2 || ts[1].Pos.Column != 1 {
		t.Errorf("foo pos: %v", ts[1].Pos)
	}
	if ts[1].Pos.File != "f.c" {
		t.Errorf("file: %q", ts[1].Pos.File)
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("t.c", "/* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected error for unterminated comment")
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New("t.c", `"abc`)
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected error for unterminated string")
	}
}

func TestIllegalRune(t *testing.T) {
	l := New("t.c", "int @ x;")
	ts := l.All()
	found := false
	for _, tk := range ts {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(l.Errors()) == 0 {
		t.Error("expected ILLEGAL token and error for @")
	}
}

func TestEOFForever(t *testing.T) {
	l := New("t.c", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if got := l.Next(); got.Kind != token.EOF {
			t.Fatalf("call %d after end: got %v, want EOF", i, got)
		}
	}
}
