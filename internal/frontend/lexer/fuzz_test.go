package lexer

import (
	"testing"

	"repro/internal/frontend/token"
)

// FuzzLexer checks the scanner's structural invariants on arbitrary input:
// it never panics, always terminates, produces exactly one EOF token (at
// the end), and keeps every token's position inside the source bounds.
// Invalid bytes must surface as Errors(), not as crashes.
func FuzzLexer(f *testing.F) {
	for _, seed := range []string{
		"",
		"int f(int a) { return a; }",
		"if (x != NULL && y->f <= 0x10) goto out;",
		"/* comment */ struct device { int pm; }; // eol",
		"a += b << 2; c = ~d % 'x';",
		"\"unterminated",
		"'\\n' \"str\\\"esc\" 0x 123abc $ @ #",
		"int \xff\xfe bad bytes \x00 here",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l := New("fuzz.c", src)
		toks := l.All()
		if len(toks) == 0 {
			t.Fatal("All returned no tokens; want at least EOF")
		}
		if last := toks[len(toks)-1]; last.Kind != token.EOF {
			t.Fatalf("last token is %v, want EOF", last.Kind)
		}
		for i, tok := range toks[:len(toks)-1] {
			if tok.Kind == token.EOF {
				t.Fatalf("EOF at index %d of %d, before end of stream", i, len(toks))
			}
			if tok.Pos.Line < 1 || tok.Pos.Column < 1 {
				t.Fatalf("token %d (%v) has invalid position %v", i, tok.Kind, tok.Pos)
			}
		}
		_ = l.Errors() // must be callable; contents are input-dependent
	})
}
