// Package lexer implements a hand-written scanner for the mini-C source
// language. It produces the token stream consumed by the parser and keeps
// accurate line/column positions for diagnostics and bug reports.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/frontend/token"
)

// Lexer scans a single source buffer. It is not safe for concurrent use.
type Lexer struct {
	file   string
	src    string
	off    int // byte offset of the next rune
	line   int
	col    int
	errors []error
}

// New returns a lexer over src; file is used in positions only.
func New(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Errors returns the scan errors encountered so far, in order.
func (l *Lexer) Errors() []error { return l.errors }

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Column: l.col}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errors = append(l.errors, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

// peek returns the next rune without consuming it, or -1 at EOF.
func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

// peek2 returns the rune after the next one, or -1.
func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments, and
// preprocessor-style lines (# ...), which the frontend treats as blank.
func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '#' && l.col == 1:
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			p := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != -1 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns EOF
// tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	p := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return token.Token{Kind: token.EOF, Pos: p}
	case isIdentStart(r):
		return l.scanIdent(p)
	case unicode.IsDigit(r):
		return l.scanNumber(p)
	case r == '"':
		return l.scanString(p)
	case r == '\'':
		return l.scanChar(p)
	}
	l.advance()
	two := func(next rune, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: p}
		}
		return token.Token{Kind: k1, Pos: p}
	}
	switch r {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NE, token.NOT)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: p}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: p}
		}
		return two('=', token.GE, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.PLUSPLUS, Pos: p}
		}
		return two('=', token.PLUSASSIGN, token.PLUS)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.MINUSMINUS, Pos: p}
		}
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: p}
		}
		return two('=', token.MINUSASSIGN, token.MINUS)
	case '*':
		return token.Token{Kind: token.STAR, Pos: p}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: p}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: p}
	case '^':
		return token.Token{Kind: token.CARET, Pos: p}
	case '~':
		return token.Token{Kind: token.TILDE, Pos: p}
	case '.':
		return token.Token{Kind: token.DOT, Pos: p}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: p}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: p}
	case ':':
		return token.Token{Kind: token.COLON, Pos: p}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: p}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: p}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: p}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: p}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: p}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: p}
	}
	l.errorf(p, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: p}
}

func (l *Lexer) scanIdent(p token.Pos) token.Token {
	start := l.off
	for isIdentPart(l.peek()) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: p}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: p}
}

func (l *Lexer) scanNumber(p token.Pos) token.Token {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	// Swallow integer suffixes (U, L, UL, LL...) so kernel-style literals lex.
	for l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L' {
		l.advance()
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: p}
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

func (l *Lexer) scanString(p token.Pos) token.Token {
	l.advance() // opening quote
	start := l.off
	for {
		r := l.peek()
		if r == -1 || r == '\n' {
			l.errorf(p, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: p}
		}
		if r == '\\' {
			l.advance()
			l.advance()
			continue
		}
		if r == '"' {
			lit := l.src[start:l.off]
			l.advance()
			return token.Token{Kind: token.STRING, Lit: lit, Pos: p}
		}
		l.advance()
	}
}

// scanChar scans a character literal and yields it as an INT token holding
// the code point value, matching C semantics closely enough for branches.
func (l *Lexer) scanChar(p token.Pos) token.Token {
	l.advance() // opening quote
	r := l.advance()
	if r == '\\' {
		esc := l.advance()
		switch esc {
		case 'n':
			r = '\n'
		case 't':
			r = '\t'
		case '0':
			r = 0
		case '\\', '\'':
			r = esc
		default:
			r = esc
		}
	}
	if l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(p, "unterminated character literal")
	}
	return token.Token{Kind: token.INT, Lit: fmt.Sprintf("%d", r), Pos: p}
}

// All scans the entire input and returns every token up to and including
// the first EOF. It is a convenience for tests and tools.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
