// Package parser implements a recursive-descent parser for the mini-C
// language. It is resilient: on a syntax error it records a diagnostic,
// resynchronizes at the next statement or declaration boundary, and keeps
// going, so a large generated corpus parses in one pass.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/frontend/ast"
	"repro/internal/frontend/lexer"
	"repro/internal/frontend/token"
)

// Parser parses one translation unit.
type Parser struct {
	toks   []token.Token
	pos    int
	file   string
	errs   []error
	panics int // consecutive resync count, to guarantee progress
}

// ParseFile lexes and parses src, returning the AST and any accumulated
// syntax errors (the AST is still usable when errors are non-nil, covering
// the declarations that parsed cleanly).
func ParseFile(filename, src string) (*ast.File, error) {
	lx := lexer.New(filename, src)
	p := &Parser{toks: lx.All(), file: filename}
	f := p.parseFile()
	errs := append(lx.Errors(), p.errs...)
	if len(errs) > 0 {
		return f, errors.Join(errs...)
	}
	return f, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

// sync skips tokens until a likely statement/declaration boundary: a
// semicolon or closing brace at the current nesting level, or — since brace
// counting is unreliable after a syntax error — a type keyword at the start
// of a line, which in this corpus always begins a new top-level declaration.
func (p *Parser) sync() {
	p.panics++
	depth := 0
	first := true
	for {
		t := p.cur()
		if !first && t.Pos.Column == 1 && t.Kind.IsTypeKeyword() {
			return
		}
		first = false
		switch t.Kind {
		case token.EOF:
			return
		case token.LBRACE:
			depth++
		case token.RBRACE:
			if depth == 0 {
				return
			}
			depth--
		case token.SEMI:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Name: p.file}
	for !p.at(token.EOF) {
		before := p.pos
		d := p.parseTopDecl(f)
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == before { // no progress: drop a token to avoid livelock
			p.errorf("unexpected token %s", p.cur())
			p.next()
		}
	}
	return f
}

// parseTopDecl parses one top-level declaration. Struct declarations are
// stored on the file and nil is returned for them.
func (p *Parser) parseTopDecl(f *ast.File) ast.Decl {
	pos := p.cur().Pos
	extern := p.accept(token.KwExtern)
	static := p.accept(token.KwStatic)
	// A struct declaration: struct tag { ... };
	if p.at(token.KwStruct) && p.peek().Kind == token.IDENT {
		// Lookahead for "struct tag {" or "struct tag ;"
		if p.toks[p.pos+2].Kind == token.LBRACE || p.toks[p.pos+2].Kind == token.SEMI {
			sd := p.parseStructDecl()
			if sd != nil {
				f.Structs = append(f.Structs, sd)
			}
			return nil
		}
	}
	typ, ok := p.parseType()
	if !ok {
		p.errorf("expected declaration, found %s", p.cur())
		p.sync()
		return nil
	}
	name := p.expect(token.IDENT).Lit
	if p.at(token.LPAREN) {
		return p.parseFuncRest(typ, name, pos, extern, static)
	}
	// Top-level variable.
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return &ast.VarDecl{Type: typ, Name: name, Init: init, P: pos}
}

func (p *Parser) parseStructDecl() *ast.StructDecl {
	pos := p.expect(token.KwStruct).Pos
	tag := p.expect(token.IDENT).Lit
	sd := &ast.StructDecl{Tag: tag, P: pos}
	if p.accept(token.SEMI) { // opaque forward declaration
		return sd
	}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		ft, ok := p.parseType()
		if !ok {
			p.errorf("expected field type, found %s", p.cur())
			p.sync()
			break
		}
		fname := p.expect(token.IDENT).Lit
		sd.Fields = append(sd.Fields, &ast.Param{Type: ft, Name: fname, P: pos})
		p.expect(token.SEMI)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return sd
}

// parseType parses a type specifier; reports ok=false if the current token
// cannot begin a type.
func (p *Parser) parseType() (ast.Type, bool) {
	var t ast.Type
	// Skip qualifiers.
	for p.at(token.KwConst) || p.at(token.KwUnsigned) || p.at(token.KwStatic) {
		p.next()
	}
	switch p.cur().Kind {
	case token.KwInt, token.KwLong, token.KwChar, token.KwVoid, token.KwBool:
		t.Name = p.next().Kind.String()
		// long long, unsigned long ...
		for p.at(token.KwLong) || p.at(token.KwInt) {
			p.next()
		}
	case token.KwStruct:
		p.next()
		t.Struct = true
		t.Name = p.expect(token.IDENT).Lit
	case token.IDENT:
		// Typedef-style names used by corpora: irqreturn_t, PyObject, size_t...
		// Accepted only when followed by '*' or an identifier, to avoid
		// swallowing expression identifiers.
		if p.peek().Kind == token.STAR || p.peek().Kind == token.IDENT {
			t.Name = p.next().Lit
		} else {
			return t, false
		}
	default:
		return t, false
	}
	for p.at(token.KwConst) {
		p.next()
	}
	for p.accept(token.STAR) {
		t.Pointer++
		for p.at(token.KwConst) {
			p.next()
		}
	}
	return t, true
}

func (p *Parser) parseFuncRest(result ast.Type, name string, pos token.Pos, extern, static bool) ast.Decl {
	p.expect(token.LPAREN)
	fd := &ast.FuncDecl{Result: result, Name: name, Extern: extern, Static: static, P: pos}
	if !p.at(token.RPAREN) {
		if p.at(token.KwVoid) && p.peek().Kind == token.RPAREN {
			p.next() // f(void)
		} else {
			for {
				ppos := p.cur().Pos
				pt, ok := p.parseType()
				if !ok {
					p.errorf("expected parameter type, found %s", p.cur())
					p.sync()
					return fd
				}
				pname := ""
				if p.at(token.IDENT) {
					pname = p.next().Lit
				}
				fd.Params = append(fd.Params, &ast.Param{Type: pt, Name: pname, P: ppos})
				if !p.accept(token.COMMA) {
					break
				}
			}
		}
	}
	p.expect(token.RPAREN)
	if p.accept(token.SEMI) {
		return fd // prototype
	}
	fd.Body = p.parseBlock()
	return fd
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.BlockStmt {
	b := &ast.BlockStmt{P: p.cur().Pos}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.errorf("unexpected token %s in block", p.cur())
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		p.next()
		return &ast.EmptyStmt{P: pos}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwGoto:
		p.next()
		lbl := p.expect(token.IDENT).Lit
		p.expect(token.SEMI)
		return &ast.GotoStmt{Label: lbl, P: pos}
	case token.KwReturn:
		p.next()
		var x ast.Expr
		if !p.at(token.SEMI) {
			x = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{X: x, P: pos}
	case token.KwBreak:
		p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{P: pos}
	case token.KwContinue:
		p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{P: pos}
	case token.KwAssert:
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.AssertStmt{X: x, P: pos}
	case token.KwAsm:
		p.next()
		p.expect(token.LPAREN)
		txt := ""
		if p.at(token.STRING) {
			txt = p.next().Lit
		}
		// Swallow any extended-asm operand soup up to the closing paren.
		depth := 1
		for depth > 0 && !p.at(token.EOF) {
			switch p.cur().Kind {
			case token.LPAREN:
				depth++
			case token.RPAREN:
				depth--
				if depth == 0 {
					p.next()
					p.expect(token.SEMI)
					return &ast.AsmStmt{Text: txt, P: pos}
				}
			}
			p.next()
		}
		return &ast.AsmStmt{Text: txt, P: pos}
	case token.IDENT:
		// Either a label, a typedef-name declaration, or an expression.
		if p.peek().Kind == token.COLON {
			name := p.next().Lit
			p.next() // ':'
			var inner ast.Stmt
			if p.at(token.RBRACE) {
				inner = &ast.EmptyStmt{P: pos} // label at end of block
			} else {
				inner = p.parseStmt()
			}
			return &ast.LabeledStmt{Label: name, Stmt: inner, P: pos}
		}
		if p.looksLikeDecl() {
			return p.parseDeclStmt()
		}
		return p.parseExprStmt()
	default:
		if p.cur().Kind.IsTypeKeyword() {
			return p.parseDeclStmt()
		}
		return p.parseExprStmt()
	}
}

// looksLikeDecl reports whether "IDENT IDENT" or "IDENT *" begins a
// declaration with a typedef-style type name.
func (p *Parser) looksLikeDecl() bool {
	if p.cur().Kind != token.IDENT {
		return false
	}
	k := p.peek().Kind
	if k == token.IDENT {
		return true
	}
	if k == token.STAR {
		// "x * y;" is ambiguous in C; in this corpus a multiplication
		// statement is meaningless, so treat as declaration only when the
		// token after the stars is IDENT followed by ';' or '='.
		i := p.pos + 1
		for i < len(p.toks) && p.toks[i].Kind == token.STAR {
			i++
		}
		if i < len(p.toks) && p.toks[i].Kind == token.IDENT {
			j := p.toks[i+1].Kind
			return j == token.SEMI || j == token.ASSIGN || j == token.COMMA
		}
	}
	return false
}

func (p *Parser) parseDeclStmt() ast.Stmt {
	pos := p.cur().Pos
	typ, ok := p.parseType()
	if !ok {
		p.errorf("expected type in declaration, found %s", p.cur())
		p.sync()
		return nil
	}
	// Possibly several declarators: int a = 1, b;
	var stmts []ast.Stmt
	for {
		name := p.expect(token.IDENT).Lit
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.parseExpr()
		}
		stmts = append(stmts, &ast.DeclStmt{Type: typ, Name: name, Init: init, P: pos})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	if len(stmts) == 1 {
		return stmts[0]
	}
	return &ast.BlockStmt{Stmts: stmts, P: pos}
}

func (p *Parser) parseExprStmt() ast.Stmt {
	pos := p.cur().Pos
	x := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: x, P: pos}
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, P: pos}
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.WhileStmt{Cond: cond, Body: body, P: pos}
}

func (p *Parser) parseDoWhile() ast.Stmt {
	pos := p.expect(token.KwDo).Pos
	body := p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return &ast.DoWhileStmt{Body: body, Cond: cond, P: pos}
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	p.expect(token.LPAREN)
	f := &ast.ForStmt{P: pos}
	if !p.at(token.SEMI) {
		if p.cur().Kind.IsTypeKeyword() || p.looksLikeDecl() {
			f.Init = p.parseDeclStmt() // consumes the ';'
		} else {
			x := p.parseExpr()
			f.Init = &ast.ExprStmt{X: x, P: pos}
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	if !p.at(token.SEMI) {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		f.Post = p.parseExpr()
	}
	p.expect(token.RPAREN)
	f.Body = p.parseStmt()
	return f
}

func (p *Parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.KwSwitch).Pos
	p.expect(token.LPAREN)
	tag := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	sw := &ast.SwitchStmt{Tag: tag, P: pos}
	var cur *ast.CaseClause
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		switch {
		case p.accept(token.KwCase):
			v := p.parseExpr()
			p.expect(token.COLON)
			cur = &ast.CaseClause{Value: v, P: pos}
			sw.Cases = append(sw.Cases, cur)
		case p.accept(token.KwDefault):
			p.expect(token.COLON)
			cur = &ast.CaseClause{IsDefault: true, P: pos}
			sw.Cases = append(sw.Cases, cur)
		default:
			s := p.parseStmt()
			if cur == nil {
				p.errorf("statement before first case in switch")
				cur = &ast.CaseClause{IsDefault: true, P: pos}
				sw.Cases = append(sw.Cases, cur)
			}
			if s != nil {
				cur.Body = append(cur.Body, s)
			}
		}
	}
	p.expect(token.RBRACE)
	return sw
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// parseExpr parses an expression including assignment (lowest precedence,
// right-associative).
func (p *Parser) parseExpr() ast.Expr {
	lhs := p.parseTernary()
	switch p.cur().Kind {
	case token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN:
		op := p.next().Kind
		rhs := p.parseExpr()
		return &ast.AssignExpr{Op: op, LHS: lhs, RHS: rhs, P: lhs.Pos()}
	}
	return lhs
}

// parseTernary parses the conditional-expression level. The mini-C grammar
// has no '?:' operator (generated corpora use explicit if/else), so this is
// currently the binary-expression level; the hook keeps the precedence
// ladder explicit for future extension.
func (p *Parser) parseTernary() ast.Expr {
	return p.parseBinary(0)
}

// binary operator precedence, loosest (0) to tightest.
var precedence = map[token.Kind]int{
	token.LOR:  1,
	token.LAND: 2,
	token.PIPE: 3, token.CARET: 4, token.AMP: 5,
	token.EQ: 6, token.NE: 6,
	token.LT: 7, token.LE: 7, token.GT: 7, token.GE: 7,
	token.SHL: 8, token.SHR: 8,
	token.PLUS: 9, token.MINUS: 9,
	token.STAR: 10, token.SLASH: 10, token.PERCENT: 10,
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		prec, ok := precedence[op]
		if !ok || prec < minPrec {
			return lhs
		}
		pos := p.next().Pos
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{Op: op, X: lhs, Y: rhs, P: pos}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.NOT, token.MINUS, token.TILDE, token.STAR, token.AMP, token.PLUS:
		op := p.next().Kind
		x := p.parseUnary()
		if op == token.PLUS {
			return x
		}
		return &ast.UnaryExpr{Op: op, X: x, P: pos}
	case token.PLUSPLUS, token.MINUSMINUS:
		op := p.next().Kind
		x := p.parseUnary()
		return &ast.IncDecExpr{Op: op, X: x, P: pos}
	case token.KwSizeof:
		p.next()
		if p.accept(token.LPAREN) {
			// sizeof(type) or sizeof(expr): swallow to matching paren.
			depth := 1
			for depth > 0 && !p.at(token.EOF) {
				switch p.cur().Kind {
				case token.LPAREN:
					depth++
				case token.RPAREN:
					depth--
				}
				p.next()
			}
		} else {
			p.parseUnary()
		}
		// Abstract sizeof as an unknown positive — a random value.
		return &ast.RandomExpr{P: pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case token.ARROW:
			p.next()
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldExpr{X: x, Name: name, Arrow: true, P: pos}
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldExpr{X: x, Name: name, P: pos}
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.IndexExpr{X: x, Index: idx, P: pos}
		case token.PLUSPLUS, token.MINUSMINUS:
			op := p.next().Kind
			x = &ast.IncDecExpr{Op: op, X: x, P: pos}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.IDENT:
		name := p.next().Lit
		if p.accept(token.LPAREN) {
			call := &ast.CallExpr{Fun: name, P: pos}
			if !p.at(token.RPAREN) {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			return call
		}
		return &ast.Ident{Name: name, P: pos}
	case token.INT:
		t := p.next()
		v, err := parseIntLit(t.Lit)
		if err != nil {
			p.errs = append(p.errs, fmt.Errorf("%s: bad integer literal %q", t.Pos, t.Lit))
		}
		return &ast.IntLit{Value: v, Text: t.Lit, P: pos}
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, P: pos}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, P: pos}
	case token.KwNull:
		p.next()
		return &ast.NullLit{P: pos}
	case token.KwRandom:
		p.next()
		if p.accept(token.LPAREN) {
			p.expect(token.RPAREN)
		}
		return &ast.RandomExpr{P: pos}
	case token.LPAREN:
		p.next()
		// Cast: (type) expr — the analysis is untyped, drop the cast.
		if p.cur().Kind.IsTypeKeyword() || (p.cur().Kind == token.IDENT && castLookahead(p)) {
			if _, ok := p.parseType(); ok && p.accept(token.RPAREN) {
				return p.parseUnary()
			}
		}
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.STRING:
		t := p.next()
		// String literals appear only as opaque arguments (e.g. dev_err);
		// model as a random value.
		_ = t
		return &ast.RandomExpr{P: pos}
	}
	p.errorf("expected expression, found %s", p.cur())
	p.next()
	return &ast.IntLit{Value: 0, Text: "0", P: pos}
}

// castLookahead reports whether "( IDENT ..." is a pointer cast such as
// "(PyObject *)x". Only pointer casts are recognized for typedef-style
// names; "(x)" stays an expression.
func castLookahead(p *Parser) bool {
	return p.peek().Kind == token.STAR
}

func parseIntLit(s string) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseInt(s[2:], 16, 64)
	}
	return strconv.ParseInt(s, 10, 64)
}
