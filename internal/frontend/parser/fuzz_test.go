package parser

import (
	"testing"

	"repro/internal/frontend/ast"
)

// FuzzParser checks the parser and printer against each other on
// arbitrary input. Invalid sources must fail with an error, never a
// panic. For any source that parses, the printed form is the parser's own
// normalization of the program, so it must (a) parse again without error
// and (b) print identically the second time — print∘parse is idempotent.
// A violation means the printer emits syntax the grammar rejects, or
// loses/invents structure on the way through.
func FuzzParser(f *testing.F) {
	for _, seed := range []string{
		"",
		"int f(int a) { return a; }",
		`int drv_op(struct device *dev) {
    int ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    pm_runtime_put(dev);
    return 0;
}`,
		`void g(struct s *p) {
    int i;
    for (i = 0; i < 4; i++) {
        if (p->cnt != 0 && i % 2 == 0)
            continue;
        p->cnt += i;
    }
    while (p->cnt > 0)
        p->cnt--;
}`,
		`int h(int x) {
    switch (x) {
    case 0:
        return 1;
    case 1:
        break;
    default:
        goto out;
    }
out:
    return -1;
}`,
		"struct device { int pm; };\nextern int probe(struct device *d);",
		"int bad( { ; } }",
		"assert(p != NULL); int",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile("fuzz.c", src)
		if err != nil {
			return // rejected input: cleanly failing is all that's required
		}
		p1 := ast.Print(file)
		file2, err := ParseFile("fuzz.c", p1)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nsource:\n%s\nprinted:\n%s", err, src, p1)
		}
		if p2 := ast.Print(file2); p1 != p2 {
			t.Fatalf("print/parse not idempotent\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	})
}
