package parser

import (
	"strings"
	"testing"

	"repro/internal/frontend/ast"
)

// mustParse parses src and fails the test on any syntax error.
func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := ParseFile("test.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func TestParseFigure1Foo(t *testing.T) {
	src := `
int reg_read(struct device *d, int reg);
void inc_pmcount(struct device *d);

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`
	f := mustParse(t, src)
	if len(f.Decls) != 3 {
		t.Fatalf("decls: got %d, want 3", len(f.Decls))
	}
	funcs := f.Funcs()
	if len(funcs) != 1 || funcs[0].Name != "foo" {
		t.Fatalf("definitions: got %v", funcs)
	}
	foo := funcs[0]
	if len(foo.Params) != 1 || foo.Params[0].Name != "dev" {
		t.Fatalf("params: %+v", foo.Params)
	}
	if !foo.Params[0].Type.IsPointer() || foo.Params[0].Type.Name != "device" {
		t.Errorf("param type: %s", foo.Params[0].Type)
	}
	// Prototypes have nil bodies.
	proto := f.Decls[0].(*ast.FuncDecl)
	if proto.Body != nil || proto.Name != "reg_read" {
		t.Errorf("prototype: %+v", proto)
	}
}

func TestParseStructDecl(t *testing.T) {
	src := `
struct device;
struct usb_interface {
    struct device dev;
    int flags;
};
`
	f := mustParse(t, src)
	if len(f.Structs) != 2 {
		t.Fatalf("structs: got %d, want 2", len(f.Structs))
	}
	if f.Structs[0].Tag != "device" || len(f.Structs[0].Fields) != 0 {
		t.Errorf("opaque struct: %+v", f.Structs[0])
	}
	usb := f.Structs[1]
	if usb.Tag != "usb_interface" || len(usb.Fields) != 2 {
		t.Fatalf("usb_interface: %+v", usb)
	}
	if usb.Fields[0].Name != "dev" || usb.Fields[1].Name != "flags" {
		t.Errorf("fields: %+v", usb.Fields)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int n) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i++) {
        if (i == 3) continue;
        if (i > 10) break;
        acc = g(i);
    }
    while (acc > 0)
        acc = h(acc);
    do {
        acc = g(acc);
    } while (acc != 0);
    switch (n) {
    case 1:
        return 1;
    case 2:
        acc = 2;
        break;
    default:
        acc = 0;
    }
    return acc;
}
`
	f := mustParse(t, src)
	fn := f.Funcs()[0]
	kinds := map[string]bool{}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			kinds["block"] = true
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.ForStmt:
			kinds["for"] = true
			walk(s.Body)
		case *ast.WhileStmt:
			kinds["while"] = true
			walk(s.Body)
		case *ast.DoWhileStmt:
			kinds["dowhile"] = true
			walk(s.Body)
		case *ast.SwitchStmt:
			kinds["switch"] = true
			for _, c := range s.Cases {
				for _, st := range c.Body {
					walk(st)
				}
			}
		case *ast.IfStmt:
			kinds["if"] = true
			walk(s.Then)
		case *ast.BreakStmt:
			kinds["break"] = true
		case *ast.ContinueStmt:
			kinds["continue"] = true
		case *ast.ReturnStmt:
			kinds["return"] = true
		}
	}
	walk(fn.Body)
	for _, want := range []string{"for", "while", "dowhile", "switch", "if", "break", "continue", "return"} {
		if !kinds[want] {
			t.Errorf("missing statement kind %q", want)
		}
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
int f(struct device *dev, int a, int b) {
    int x = a + b * 3;
    int y = (a < b) && (b != 0);
    int z = !a || b >= 2;
    int w = dev->parent->flags;
    int v = -5;
    x = reg_read(dev, 0x10);
    x += 2;
    x++;
    return x;
}
`
	f := mustParse(t, src)
	if len(f.Funcs()) != 1 {
		t.Fatal("expected one function")
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `int f(int a, int b, int c) { int x = a + b < c; return x; }`
	f := mustParse(t, src)
	body := f.Funcs()[0].Body
	decl := body.Stmts[0].(*ast.DeclStmt)
	be, ok := decl.Init.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("init: %T", decl.Init)
	}
	// a+b < c: top node must be the comparison.
	if be.Op.String() != "<" {
		t.Errorf("top operator: %s, want <", be.Op)
	}
}

func TestParseAddressOfField(t *testing.T) {
	src := `
int g(struct usb_interface *intf) {
    return pm_runtime_get_sync(&intf->dev);
}
`
	f := mustParse(t, src)
	ret := f.Funcs()[0].Body.Stmts[0].(*ast.ReturnStmt)
	call := ret.X.(*ast.CallExpr)
	if call.Fun != "pm_runtime_get_sync" || len(call.Args) != 1 {
		t.Fatalf("call: %+v", call)
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok {
		t.Fatalf("arg: %T", call.Args[0])
	}
	fe, ok := un.X.(*ast.FieldExpr)
	if !ok || fe.Name != "dev" || !fe.Arrow {
		t.Fatalf("field: %+v", un.X)
	}
}

func TestParseTypedefNames(t *testing.T) {
	src := `
irqreturn_t handler(int irq, void *data) {
    PyObject *obj;
    obj = PyList_New(2);
    if (obj == NULL)
        return IRQ_NONE;
    return IRQ_HANDLED;
}
`
	f := mustParse(t, src)
	fn := f.Funcs()[0]
	if fn.Result.Name != "irqreturn_t" {
		t.Errorf("result type: %s", fn.Result)
	}
	if len(fn.Params) != 2 {
		t.Errorf("params: %+v", fn.Params)
	}
}

func TestParseRecoversFromErrors(t *testing.T) {
	src := `
int broken( { nonsense!!;
int good(int a) { return a; }
`
	f, err := ParseFile("bad.c", src)
	if err == nil {
		t.Fatal("expected syntax errors")
	}
	// The good function after the bad one must still be found.
	names := []string{}
	for _, fn := range f.Funcs() {
		names = append(names, fn.Name)
	}
	if !strings.Contains(strings.Join(names, ","), "good") {
		t.Errorf("recovery failed; parsed funcs: %v", names)
	}
}

func TestParseLabelsAndGotos(t *testing.T) {
	src := `
int f(int a) {
    if (a < 0)
        goto error;
    a = g(a);
error:
    return a;
}
`
	f := mustParse(t, src)
	var labels, gotos int
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.LabeledStmt:
			labels++
			if s.Label != "error" {
				t.Errorf("label name: %q", s.Label)
			}
			walk(s.Stmt)
		case *ast.GotoStmt:
			gotos++
		case *ast.IfStmt:
			walk(s.Then)
		}
	}
	walk(f.Funcs()[0].Body)
	if labels != 1 || gotos != 1 {
		t.Errorf("labels=%d gotos=%d, want 1 and 1", labels, gotos)
	}
}

func TestParseLabelAtEndOfBlock(t *testing.T) {
	src := `
void f(int a) {
    if (a) goto out;
    g();
out:
}
`
	f := mustParse(t, src)
	if len(f.Funcs()) != 1 {
		t.Fatal("expected one function")
	}
}

func TestParseMultipleDeclarators(t *testing.T) {
	src := `int f(void) { int a = 1, b, c = 3; return a; }`
	f := mustParse(t, src)
	fn := f.Funcs()[0]
	if len(fn.Params) != 0 {
		t.Errorf("f(void) params: %+v", fn.Params)
	}
	blk, ok := fn.Body.Stmts[0].(*ast.BlockStmt)
	if !ok {
		t.Fatalf("multi-declarator statement: %T", fn.Body.Stmts[0])
	}
	if len(blk.Stmts) != 3 {
		t.Errorf("declarators: %d, want 3", len(blk.Stmts))
	}
}

func TestParseAsmAndAssert(t *testing.T) {
	src := `
int reg_read(struct device *d, int reg) {
    if (d) {
        int ret;
        asm("read");
        ret = random();
        if (ret >= 0)
            return ret;
    }
    return -1;
}
`
	f := mustParse(t, src)
	if len(f.Funcs()) != 1 {
		t.Fatal("expected one function")
	}
}

func TestParseExternAndStatic(t *testing.T) {
	src := `
extern int pm_runtime_get_sync(struct device *dev);
static int helper(int a) { return a; }
`
	f := mustParse(t, src)
	ext := f.Decls[0].(*ast.FuncDecl)
	if !ext.Extern || ext.Body != nil {
		t.Errorf("extern: %+v", ext)
	}
	st := f.Decls[1].(*ast.FuncDecl)
	if !st.Static || st.Body == nil {
		t.Errorf("static: %+v", st)
	}
}

func TestParseCastAndSizeof(t *testing.T) {
	src := `
void f(void *p) {
    PyObject *o;
    o = (PyObject *)p;
    int n = sizeof(struct device);
    g(n, o);
}
`
	f := mustParse(t, src)
	if len(f.Funcs()) != 1 {
		t.Fatal("expected one function")
	}
}

func TestParseGlobalVar(t *testing.T) {
	src := `
int debug_level = 3;
int counter;
`
	f := mustParse(t, src)
	if len(f.Decls) != 2 {
		t.Fatalf("decls: %d", len(f.Decls))
	}
	v := f.Decls[0].(*ast.VarDecl)
	if v.Name != "debug_level" || v.Init == nil {
		t.Errorf("global: %+v", v)
	}
}
