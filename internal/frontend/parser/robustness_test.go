package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestNeverPanics feeds the parser adversarial inputs: random token soup,
// truncated real programs, and deeply nested expressions. The contract is
// total: any input produces an (AST, error) pair, never a panic.
func TestNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	pieces := []string{
		"int", "void", "struct", "if", "else", "while", "goto", "return",
		"(", ")", "{", "}", ";", ",", "->", ".", "=", "==", "&&", "||",
		"foo", "bar", "42", "0x1F", `"str"`, "'c'", "!", "&", "*", "+",
		"assert", "random", "NULL", "case", "switch", "default", ":",
	}
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
			if rng.Intn(10) == 0 {
				b.WriteByte('\n')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", src, r)
				}
			}()
			ParseFile("fuzz.c", src)
		}()
	}
}

func TestTruncatedPrograms(t *testing.T) {
	full := `
int foo(struct device *dev) {
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`
	for i := 0; i <= len(full); i += 3 {
		src := full[:i]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", i, r)
				}
			}()
			ParseFile("trunc.c", src)
		}()
	}
}

func TestDeepNesting(t *testing.T) {
	// 200 nested parens and blocks must not blow the stack or livelock.
	src := "int f(int a) { return " + strings.Repeat("(", 200) + "a" + strings.Repeat(")", 200) + "; }"
	if _, err := ParseFile("deep.c", src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	src2 := "void g(int a) " + strings.Repeat("{ if (a > 0) ", 150) + ";" + strings.Repeat("}", 150)
	ParseFile("deep2.c", src2) // errors are fine; panics are not
}

func TestEmptyAndWhitespaceOnly(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\n\n", "// only a comment\n", "/* block */"} {
		f, err := ParseFile("empty.c", src)
		if err != nil {
			t.Errorf("input %q: %v", src, err)
		}
		if len(f.Decls) != 0 {
			t.Errorf("input %q produced decls", src)
		}
	}
}
