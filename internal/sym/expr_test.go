package sym

import (
	"testing"

	"repro/internal/ir"
)

func TestKeyCanonical(t *testing.T) {
	tests := []struct {
		e    *Expr
		want string
	}{
		{Arg("dev"), "[dev]"},
		{Ret(), "[0]"},
		{Local("v"), "v"},
		{Fresh("r1"), "$r1"},
		{Field(Arg("dev"), "pm"), "[dev].pm"},
		{Field(Field(Arg("intf"), "dev"), "pm"), "[intf].dev.pm"},
		{Const(42), "42"},
		{Null(), "null"},
		{Cond(Arg("a"), ir.LT, Const(0)), "([a] < 0)"},
	}
	for _, tt := range tests {
		if got := tt.e.Key(); got != tt.want {
			t.Errorf("Key() = %q, want %q", got, tt.want)
		}
	}
}

func TestCondConstantFolding(t *testing.T) {
	if !Cond(Const(3), ir.GT, Const(1)).IsTrue() {
		t.Error("3 > 1 should fold to true")
	}
	if !Cond(Const(0), ir.EQ, Null()).IsTrue() {
		t.Error("0 == null should fold to true")
	}
	if !Cond(Const(5), ir.LT, Const(2)).IsFalse() {
		t.Error("5 < 2 should fold to false")
	}
}

func TestCondReflexiveFolding(t *testing.T) {
	a := Arg("x")
	if !Cond(a, ir.EQ, a).IsTrue() || !Cond(a, ir.LE, a).IsTrue() {
		t.Error("x == x and x <= x should fold true")
	}
	if !Cond(a, ir.NE, a).IsFalse() || !Cond(a, ir.LT, a).IsFalse() {
		t.Error("x != x and x < x should fold false")
	}
}

func TestCondBooleanContext(t *testing.T) {
	c := Cond(Arg("a"), ir.LT, Const(0)) // [a] < 0
	// (c == 0) is ¬c.
	n := Cond(c, ir.EQ, Const(0))
	if n.Kind != KCond || n.Pred != ir.GE {
		t.Errorf("(c == 0): got %s", n)
	}
	// (c != 0) is c.
	same := Cond(c, ir.NE, Const(0))
	if !same.Equal(c) {
		t.Errorf("(c != 0): got %s", same)
	}
}

func TestNegateCond(t *testing.T) {
	c := Cond(Arg("a"), ir.LE, Const(0))
	n := c.NegateCond()
	if n.Pred != ir.GT {
		t.Errorf("negate <=: got %s", n)
	}
	// Negating a plain term x gives x == 0.
	nt := Arg("x").NegateCond()
	if nt.Kind != KCond || nt.Pred != ir.EQ {
		t.Errorf("negate term: got %s", nt)
	}
}

func TestAsCond(t *testing.T) {
	// A raw term t used as a condition becomes t != 0.
	c := Arg("p").AsCond()
	if c.Kind != KCond || c.Pred != ir.NE {
		t.Errorf("AsCond(term): %s", c)
	}
	// Conditions pass through.
	orig := Cond(Arg("a"), ir.GT, Const(2))
	if !orig.AsCond().Equal(orig) {
		t.Error("AsCond(cond) should be identity")
	}
	if !Const(7).AsCond().IsTrue() || !Const(0).AsCond().IsFalse() {
		t.Error("const truthiness")
	}
}

func TestSymmetricCanonicalOrder(t *testing.T) {
	a, b := Arg("a"), Arg("b")
	if Cond(a, ir.EQ, b).Key() != Cond(b, ir.EQ, a).Key() {
		t.Error("EQ should canonicalize operand order")
	}
	if Cond(a, ir.NE, b).Key() != Cond(b, ir.NE, a).Key() {
		t.Error("NE should canonicalize operand order")
	}
}

func TestHasLocal(t *testing.T) {
	if Arg("a").HasLocal() || Ret().HasLocal() {
		t.Error("args and ret are observable")
	}
	if !Local("v").HasLocal() || !Fresh("r").HasLocal() {
		t.Error("locals and fresh are unobservable")
	}
	if !Field(Fresh("r"), "rc").HasLocal() {
		t.Error("field of fresh is unobservable")
	}
	if !Cond(Local("v"), ir.GT, Const(0)).HasLocal() {
		t.Error("cond mentioning local")
	}
}

func TestSubst(t *testing.T) {
	// Instantiate [d].pm with d := [intf].dev (wrapper instantiation).
	rc := Field(Arg("d"), "pm")
	m := map[string]*Expr{Arg("d").Key(): Field(Arg("intf"), "dev")}
	got := rc.Subst(m)
	if got.Key() != "[intf].dev.pm" {
		t.Errorf("subst: %s", got)
	}
	// Substitution inside conditions.
	c := Cond(Arg("d"), ir.NE, Null())
	gc := c.Subst(m)
	// Null canonicalizes to 0 inside conditions; symmetric predicates
	// canonicalize operand order.
	if gc.Key() != "(0 != [intf].dev)" {
		t.Errorf("cond subst: %s", gc)
	}
}

func TestSetAndDedup(t *testing.T) {
	s := True()
	c := Cond(Arg("a"), ir.GT, Const(0))
	s = s.And(c).And(c).And(BoolConst(true))
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestSetHasFalse(t *testing.T) {
	s := True().And(BoolConst(false))
	if !s.HasFalse() {
		t.Error("false constant must be detected")
	}
}

func TestWithoutLocalsProjection(t *testing.T) {
	// [0] = v ∧ v ≥ 0 ∧ [dev] ≠ null  →  [0] ≥ 0 ∧ [dev] ≠ null
	v := Fresh("r1")
	s := True().
		And(Cond(Ret(), ir.EQ, v)).
		And(Cond(v, ir.GE, Const(0))).
		And(Cond(Arg("dev"), ir.NE, Null()))
	got := s.WithoutLocals()
	if got.Len() != 2 {
		t.Fatalf("projected set: %s", got)
	}
	text := got.String()
	if !contains(text, "[0]") || !contains(text, "[dev]") {
		t.Errorf("projection lost information: %s", text)
	}
	for _, c := range got.Conds() {
		if c.HasLocal() {
			t.Errorf("local survived projection: %s", c)
		}
	}
}

func TestWithoutLocalsDropsUnpinned(t *testing.T) {
	// v > 0 with no link to observables must vanish.
	s := True().And(Cond(Fresh("v"), ir.GT, Const(0)))
	if got := s.WithoutLocals(); got.Len() != 0 {
		t.Errorf("unpinned local condition survived: %s", got)
	}
}

func TestWithoutLocalsChainedEqualities(t *testing.T) {
	// [0] = a ∧ a = b ∧ b ≥ 3  →  [0] ≥ 3 (two substitution rounds).
	a, b := Fresh("a"), Fresh("b")
	s := True().
		And(Cond(Ret(), ir.EQ, a)).
		And(Cond(a, ir.EQ, b)).
		And(Cond(b, ir.GE, Const(3)))
	got := s.WithoutLocals()
	found := false
	for _, c := range got.Conds() {
		if c.HasRet() && c.Pred == ir.GE {
			found = true
		}
	}
	if !found {
		t.Errorf("chained equality lost: %s", got)
	}
}

func TestSetKeyOrderIndependent(t *testing.T) {
	c1 := Cond(Arg("a"), ir.GT, Const(0))
	c2 := Cond(Arg("b"), ir.LT, Const(5))
	s1 := True().And(c1).And(c2)
	s2 := True().And(c2).And(c1)
	if s1.Key() != s2.Key() {
		t.Errorf("keys differ: %q vs %q", s1.Key(), s2.Key())
	}
}

func TestSetImmutability(t *testing.T) {
	base := True().And(Cond(Arg("a"), ir.GT, Const(0)))
	_ = base.And(Cond(Arg("b"), ir.LT, Const(1)))
	if base.Len() != 1 {
		t.Error("And mutated the receiver")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
