package sym

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// genExpr builds a random expression of bounded depth.
func genExpr(rng *rand.Rand, depth int) *Expr {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return Const(int64(rng.Intn(7) - 3))
		case 1:
			return Null()
		case 2:
			return Arg([]string{"a", "b", "dev"}[rng.Intn(3)])
		case 3:
			return Ret()
		case 4:
			return Local([]string{"v", "w"}[rng.Intn(2)])
		default:
			return Fresh([]string{"r1", "r2"}[rng.Intn(2)])
		}
	}
	switch rng.Intn(3) {
	case 0:
		return Field(genExpr(rng, depth-1), []string{"pm", "rc", "dev"}[rng.Intn(3)])
	case 1:
		preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
		return Cond(genExpr(rng, depth-1), preds[rng.Intn(len(preds))], genExpr(rng, depth-1))
	default:
		return genExpr(rng, 0)
	}
}

// Property: Key() is injective enough — structurally distinct productions
// with equal keys must be Equal, and Subst with an empty map is identity.
func TestPropertyEmptySubstIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 3)
		if got := e.Subst(nil); got != e {
			t.Fatalf("Subst(nil) changed %s", e)
		}
		if got := e.Subst(map[string]*Expr{}); got != e {
			t.Fatalf("Subst(empty) changed %s", e)
		}
	}
}

// Property: substituting x↦x is a no-op up to keys.
func TestPropertyIdentitySubstitution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 3)
		m := map[string]*Expr{
			Arg("a").Key():   Arg("a"),
			Local("v").Key(): Local("v"),
		}
		if got := e.Subst(m); got.Key() != e.Key() {
			t.Fatalf("identity substitution changed %s to %s", e, got)
		}
	}
}

// Property: substitution commutes with Key-equality — two expressions with
// the same key substitute to the same key.
func TestPropertySubstRespectsEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := map[string]*Expr{
		Arg("a").Key():    Field(Arg("intf"), "dev"),
		Fresh("r1").Key(): Ret(),
	}
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 3)
		e2 := genExpr(rng, 3)
		if e.Key() == e2.Key() && e.Subst(m).Key() != e2.Subst(m).Key() {
			t.Fatalf("equal keys substituted differently: %s vs %s", e, e2)
		}
	}
}

// Property: double negation of a condition is the original condition.
func TestPropertyDoubleNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 2).AsCond()
		if e.Kind != KCond {
			continue
		}
		if got := e.NegateCond().NegateCond(); got.Key() != e.Key() {
			t.Fatalf("¬¬%s = %s", e, got)
		}
	}
}

// Property: HasLocal is monotone under Field and Cond construction.
func TestPropertyHasLocalMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 3)
		if e.HasLocal() && !Field(e, "x").HasLocal() {
			t.Fatalf("Field lost locality of %s", e)
		}
		c := Cond(e, ir.LT, Const(0))
		if c.Kind == KCond && e.HasLocal() && !c.HasLocal() {
			t.Fatalf("Cond lost locality of %s", e)
		}
	}
}

// Property: And is idempotent and order-insensitive w.r.t. Set.Key().
func TestPropertySetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		var conds []*Expr
		for j := 0; j < 4; j++ {
			c := genExpr(rng, 2).AsCond()
			if c.Kind == KCond {
				conds = append(conds, c)
			}
		}
		fwd, rev := True(), True()
		for _, c := range conds {
			fwd = fwd.And(c)
		}
		for j := len(conds) - 1; j >= 0; j-- {
			rev = rev.And(conds[j])
		}
		if fwd.Key() != rev.Key() {
			t.Fatalf("order sensitivity: %q vs %q", fwd.Key(), rev.Key())
		}
		again := fwd
		for _, c := range conds {
			again = again.And(c)
		}
		if again.Key() != fwd.Key() || again.Len() != fwd.Len() {
			t.Fatalf("And not idempotent")
		}
	}
}

// Property: WithoutLocals never leaves a local behind and never invents
// conditions.
func TestPropertyProjectionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		s := True()
		for j := 0; j < 5; j++ {
			c := genExpr(rng, 2).AsCond()
			if c.Kind == KCond {
				s = s.And(c)
			}
		}
		p := s.WithoutLocals()
		for _, c := range p.Conds() {
			if c.HasLocal() {
				t.Fatalf("local survived projection: %s in %s", c, p)
			}
		}
		if p.Len() > s.Len() {
			t.Fatalf("projection grew the set: %d > %d", p.Len(), s.Len())
		}
	}
}

// quick.Check-based property: BoolConst/IsTrue/IsFalse coherence.
func TestPropertyBoolConst(t *testing.T) {
	f := func(b bool) bool {
		e := BoolConst(b)
		return e.IsTrue() == b && e.IsFalse() == !b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// quick.Check-based property: Const round-trips through IsConst.
func TestPropertyConstRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, ok := Const(v).IsConst()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
