package sym

import (
	"testing"

	"repro/internal/ir"
)

func TestInterningPointerIdentity(t *testing.T) {
	if !InterningEnabled() {
		t.Fatal("interning must be on by default")
	}
	a1 := Field(Arg("dev"), "pm")
	a2 := Field(Arg("dev"), "pm")
	if a1 != a2 {
		t.Error("structurally equal field chains are not pointer-identical")
	}
	c1 := Cond(a1, ir.LT, Const(0))
	c2 := Cond(a2, ir.LT, Const(0))
	if c1 != c2 {
		t.Error("structurally equal conditions are not pointer-identical")
	}
	if c1.ID() == 0 {
		t.Error("interned node has no ID")
	}
	if c1.Key() != "([dev].pm < 0)" {
		t.Errorf("precomputed key wrong: %q", c1.Key())
	}
}

func TestInterningDistinctNodesDistinctIDs(t *testing.T) {
	a := Arg("a")
	b := Arg("b")
	if a == b || a.ID() == b.ID() {
		t.Error("distinct expressions share identity")
	}
}

func TestInterningToggleFallsBack(t *testing.T) {
	prev := SetInterning(false)
	defer SetInterning(prev)

	x1 := Field(Arg("x"), "cnt")
	x2 := Field(Arg("x"), "cnt")
	if x1 == x2 {
		t.Error("interning off must allocate fresh nodes")
	}
	if x1.ID() != 0 || x2.ID() != 0 {
		t.Error("uninterned nodes must carry ID 0")
	}
	// Equality, flags, and keys still work via the canonical-key fallback.
	if !x1.Equal(x2) {
		t.Error("uninterned structural equality broken")
	}
	if x1.Key() != x2.Key() {
		t.Error("uninterned keys differ")
	}
	// A parent built (with interning back on) over an uninterned child must
	// itself stay uninterned: its child has no identity to key on.
	SetInterning(true)
	c := Cond(x1, ir.EQ, Const(0))
	if c.ID() != 0 {
		t.Error("parent over uninterned child must not be interned")
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := Cond(Arg("a"), ir.GE, Const(0))
	b := Cond(Arg("b"), ir.LT, Const(5))
	s1 := True().And(a).And(b)
	s2 := True().And(b).And(a)
	if s1.CacheKey() != s2.CacheKey() {
		t.Error("CacheKey is order-sensitive")
	}
	if s1.CacheKey()[0] != 0 {
		t.Error("interned CacheKey must be NUL-prefixed (collision guard)")
	}
	s3 := True().And(a)
	if s1.CacheKey() == s3.CacheKey() {
		t.Error("different sets share a CacheKey")
	}
}

func TestCacheKeyFallsBackWhenUninterned(t *testing.T) {
	prev := SetInterning(false)
	c := Cond(Arg("z"), ir.NE, Const(0))
	SetInterning(prev)
	s := True().And(c)
	if s.CacheKey() != s.Key() {
		t.Error("uninterned sets must fall back to the textual key")
	}
}

func TestNewSetMatchesAndFold(t *testing.T) {
	conds := []*Expr{
		Cond(Arg("a"), ir.GE, Const(0)),
		Cond(Arg("b"), ir.LT, Const(3)),
		Cond(Arg("a"), ir.GE, Const(0)), // duplicate
		BoolConst(true),                 // dropped
		Cond(Arg("c"), ir.EQ, Arg("d")),
	}
	bulk := NewSet(conds)
	folded := True()
	for _, c := range conds {
		folded = folded.And(c)
	}
	if bulk.Key() != folded.Key() {
		t.Errorf("NewSet key %q != And-fold key %q", bulk.Key(), folded.Key())
	}
	if bulk.Len() != folded.Len() {
		t.Errorf("NewSet len %d != And-fold len %d", bulk.Len(), folded.Len())
	}
	for i, c := range bulk.Conds() {
		if folded.Conds()[i] != c {
			t.Fatalf("insertion order diverges at %d", i)
		}
	}
}
