// Package sym implements the symbolic expression language of the RID paper
// (Figure 5) used by path summaries and function summaries:
//
//	e := const | e1 p e2 | [arg] | [0] | local | e.field
//
// plus fresh symbols, which model the random generator of the Figure-3
// abstraction and call results. Fresh symbols and locals share the key
// property that they are unobservable outside the function and are
// existentially projected away when a path summary is finalized.
//
// Expressions are immutable and hash-consed (see intern.go): structurally
// equal expressions are pointer-identical, Key() is a string computed once
// per distinct node, and HasLocal/HasRet are precomputed flags.
package sym

import (
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Kind discriminates Expr.
type Kind int

// Expression kinds.
const (
	KConst Kind = iota // integer constant (booleans are 0/1, null is KNull)
	KNull              // the null pointer
	KArg               // [name]: a formal argument of the summarized function
	KRet               // [0]: the value returned by the summarized function
	KLocal             // a local variable never assigned before use
	KFresh             // a random value or call result, unique per creation
	KField             // Base.Name: an uninterpreted field of an object
	KCond              // A Pred B: a boolean condition
)

// Derived-property flag bits.
const (
	flagComputed = 1 << iota // initDerived ran (distinguishes zero value)
	flagHasLocal
	flagHasRet
)

// Expr is an immutable symbolic expression.
type Expr struct {
	Kind Kind
	Int  int64   // KConst
	Name string  // KArg, KLocal, KFresh, KField (field name)
	Base *Expr   // KField
	Pred ir.Pred // KCond
	A, B *Expr   // KCond

	id    uint64 // interned identity; 0 when built with interning off
	key   string // canonical form, computed once at construction
	flags uint8
}

// Constructors.

// Const returns an integer constant expression.
func Const(v int64) *Expr { return intern(KConst, v, "", nil, 0, nil, nil) }

// BoolConst returns 1 for true and 0 for false, the integer encoding used
// throughout the analysis.
func BoolConst(b bool) *Expr {
	if b {
		return Const(1)
	}
	return Const(0)
}

// Null returns the null-pointer expression.
func Null() *Expr { return intern(KNull, 0, "", nil, 0, nil, nil) }

// Arg returns the expression for formal argument name, written [name].
func Arg(name string) *Expr { return intern(KArg, 0, name, nil, 0, nil, nil) }

// Ret returns [0], the summarized function's return value.
func Ret() *Expr { return intern(KRet, 0, "", nil, 0, nil, nil) }

// Local returns the expression for a local variable read before assignment.
func Local(name string) *Expr { return intern(KLocal, 0, name, nil, 0, nil, nil) }

// Fresh returns a fresh symbol; callers must ensure name uniqueness (the
// symbolic executor uses a per-path counter).
func Fresh(name string) *Expr { return intern(KFresh, 0, name, nil, 0, nil, nil) }

// Field returns base.name.
func Field(base *Expr, name string) *Expr {
	return intern(KField, 0, name, base, 0, nil, nil)
}

// Cond returns the condition a pred b, folding constants and boolean
// comparisons where possible. The result is either a KCond expression or a
// KConst 0/1 when the condition is decided structurally.
func Cond(a *Expr, pred ir.Pred, b *Expr) *Expr {
	// Null is the integer 0 throughout the analysis; canonicalize it here
	// so "x != null" and "0 != x" build the same condition (one solver
	// variable, one dedup key).
	if a.Kind == KNull {
		a = Const(0)
	}
	if b.Kind == KNull {
		b = Const(0)
	}
	// Constant folding.
	av, aok := a.constValue()
	bv, bok := b.constValue()
	if aok && bok {
		return BoolConst(pred.Eval(av, bv))
	}
	// Boolean-context folding: (C == 0) is ¬C, (C != 0) is C, and the
	// 1-valued duals, where C is itself a condition.
	if a.Kind == KCond && bok {
		switch {
		case bv == 0 && pred == ir.EQ, bv == 1 && pred == ir.NE:
			return a.NegateCond()
		case bv == 0 && pred == ir.NE, bv == 1 && pred == ir.EQ:
			return a
		}
	}
	if b.Kind == KCond && aok {
		switch {
		case av == 0 && pred == ir.EQ, av == 1 && pred == ir.NE:
			return b.NegateCond()
		case av == 0 && pred == ir.NE, av == 1 && pred == ir.EQ:
			return b
		}
	}
	// Identical terms decide reflexive predicates.
	if a.Equal(b) {
		switch pred {
		case ir.EQ, ir.LE, ir.GE:
			return BoolConst(true)
		case ir.NE, ir.LT, ir.GT:
			return BoolConst(false)
		}
	}
	// Canonical operand order for symmetric predicates keeps keys stable.
	if (pred == ir.EQ || pred == ir.NE) && a.Key() > b.Key() {
		a, b = b, a
	}
	return intern(KCond, 0, "", nil, pred, a, b)
}

// constValue returns the integer value of constants and null.
func (e *Expr) constValue() (int64, bool) {
	switch e.Kind {
	case KConst:
		return e.Int, true
	case KNull:
		return 0, true
	}
	return 0, false
}

// IsConst reports whether e is an integer constant (or null) and returns
// its value.
func (e *Expr) IsConst() (int64, bool) { return e.constValue() }

// IsTrue reports whether e is the constant 1 (a decided-true condition).
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Int == 1 }

// IsFalse reports whether e is the constant 0 or null.
func (e *Expr) IsFalse() bool {
	v, ok := e.constValue()
	return ok && v == 0
}

// NegateCond negates a boolean expression: conditions flip their
// predicate, constants invert, and any other expression e becomes e == 0
// (the C truth-value convention).
func (e *Expr) NegateCond() *Expr {
	switch e.Kind {
	case KCond:
		return Cond(e.A, e.Pred.Negate(), e.B)
	case KConst, KNull:
		v, _ := e.constValue()
		return BoolConst(v == 0)
	}
	return Cond(e, ir.EQ, Const(0))
}

// AsCond coerces e to a boolean condition: conditions pass through and any
// other expression e becomes e != 0.
func (e *Expr) AsCond() *Expr {
	switch e.Kind {
	case KCond, KConst, KNull:
		if e.Kind != KCond {
			v, _ := e.constValue()
			return BoolConst(v != 0)
		}
		return e
	}
	return Cond(e, ir.NE, Const(0))
}

// initDerived computes the canonical key and the derived flags exactly
// once, at construction, before the node can be shared across goroutines.
func (e *Expr) initDerived() {
	e.key = e.buildKey()
	e.flags = flagComputed
	switch e.Kind {
	case KLocal, KFresh:
		e.flags |= flagHasLocal
	case KRet:
		e.flags |= flagHasRet
	case KField:
		e.flags |= e.Base.flags & (flagHasLocal | flagHasRet)
	case KCond:
		e.flags |= (e.A.flags | e.B.flags) & (flagHasLocal | flagHasRet)
	}
}

// Key returns the canonical string form of e. Two expressions are
// structurally equal iff their keys are equal.
func (e *Expr) Key() string {
	if e.key == "" {
		// Only reachable for Expr literals built outside the constructors
		// (none in this repository); constructed nodes precompute the key.
		e.key = e.buildKey()
	}
	return e.key
}

func (e *Expr) buildKey() string {
	switch e.Kind {
	case KConst:
		return strconv.FormatInt(e.Int, 10)
	case KNull:
		return "null"
	case KArg:
		return "[" + e.Name + "]"
	case KRet:
		return "[0]"
	case KLocal:
		return e.Name
	case KFresh:
		return "$" + e.Name
	case KField:
		return e.Base.Key() + "." + e.Name
	case KCond:
		ak, pk, bk := e.A.Key(), e.Pred.String(), e.B.Key()
		var b strings.Builder
		b.Grow(len(ak) + len(pk) + len(bk) + 4)
		b.WriteByte('(')
		b.WriteString(ak)
		b.WriteByte(' ')
		b.WriteString(pk)
		b.WriteByte(' ')
		b.WriteString(bk)
		b.WriteByte(')')
		return b.String()
	}
	return "?"
}

// String renders the expression in the paper's notation.
func (e *Expr) String() string { return e.Key() }

// Equal reports structural equality. Interned expressions compare by
// identity; everything else falls back to canonical keys.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil {
		return false
	}
	if e.id != 0 && o.id != 0 {
		return false // both interned and not the same node
	}
	return e.Key() == o.Key()
}

// ID returns the interned identity of e (0 when e was built with
// interning disabled). Stable for the lifetime of the process.
func (e *Expr) ID() uint64 { return e.id }

// HasLocal reports whether e mentions a local variable or fresh symbol —
// i.e. anything unobservable outside the function.
func (e *Expr) HasLocal() bool {
	if e.flags&flagComputed != 0 {
		return e.flags&flagHasLocal != 0
	}
	switch e.Kind {
	case KLocal, KFresh:
		return true
	case KField:
		return e.Base.HasLocal()
	case KCond:
		return e.A.HasLocal() || e.B.HasLocal()
	}
	return false
}

// HasRet reports whether e mentions [0].
func (e *Expr) HasRet() bool {
	if e.flags&flagComputed != 0 {
		return e.flags&flagHasRet != 0
	}
	switch e.Kind {
	case KRet:
		return true
	case KField:
		return e.Base.HasRet()
	case KCond:
		return e.A.HasRet() || e.B.HasRet()
	}
	return false
}

// Subst returns e with every maximal subexpression whose Key appears in m
// replaced by the mapped expression. The substitution is simultaneous.
// Untouched subtrees are returned as-is, and rebuilt nodes are interned,
// so instantiating a summary reuses existing subtrees instead of
// reallocating them.
func (e *Expr) Subst(m map[string]*Expr) *Expr {
	if len(m) == 0 {
		return e
	}
	if r, ok := m[e.Key()]; ok {
		return r
	}
	switch e.Kind {
	case KField:
		nb := e.Base.Subst(m)
		if nb == e.Base {
			return e
		}
		return Field(nb, e.Name)
	case KCond:
		na, nbb := e.A.Subst(m), e.B.Subst(m)
		if na == e.A && nbb == e.B {
			return e
		}
		return Cond(na, e.Pred, nbb)
	}
	return e
}

// Atoms appends to out the non-constant leaf terms of e (args, ret, locals,
// fresh symbols, and whole field chains) and returns the result. Field
// chains are treated as single uninterpreted terms.
func (e *Expr) Atoms(out []*Expr) []*Expr {
	switch e.Kind {
	case KConst, KNull:
		return out
	case KCond:
		out = e.A.Atoms(out)
		return e.B.Atoms(out)
	default:
		return append(out, e)
	}
}

// ---------------------------------------------------------------------------
// Constraint sets

// Set is a conjunction of boolean conditions. The zero value is the empty
// (true) constraint. Sets are treated as immutable: And returns a new Set.
// Alongside the insertion-order condition list, a Set maintains the same
// conditions sorted by canonical key, which makes duplicate checks a
// binary search, Key() a join of precomputed strings, and CacheKey() an
// O(n) join of interned IDs.
type Set struct {
	conds  []*Expr // insertion order
	sorted []*Expr // the same conditions, ordered by Key(), unique
}

// True returns the empty constraint.
func True() Set { return Set{} }

// NewSet returns the conjunction of conds, exactly as if And were folded
// over them: conditions are coerced via AsCond, decided-true conditions
// and duplicates are dropped (first occurrence wins).
func NewSet(conds []*Expr) Set {
	// conds and sorted are carved from one backing array: sets are
	// allocated once per path constraint rebuild, so halving the object
	// count here is measurable on large corpora. Both slices are full-cap
	// limited, and a Set is immutable after construction, so the shared
	// backing is never appended into or written again.
	n := len(conds)
	back := make([]*Expr, 2*n)
	s := Set{
		conds:  back[0:0:n],
		sorted: back[n:n:2*n],
	}
	for _, cond := range conds {
		c := cond.AsCond()
		if c.IsTrue() {
			continue
		}
		idx, found := s.search(c)
		if found {
			continue
		}
		s.conds = append(s.conds, c)
		s.sorted = append(s.sorted, nil)
		copy(s.sorted[idx+1:], s.sorted[idx:])
		s.sorted[idx] = c
	}
	return s
}

// search locates c's key in the sorted slice, returning the insertion
// index and whether an equal condition is already present.
func (s Set) search(c *Expr) (int, bool) {
	key := c.Key()
	lo, hi := 0, len(s.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.sorted[mid].Key() < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.sorted) && s.sorted[lo].Key() == key
}

// And returns s extended with cond (coerced via AsCond). Decided-true
// conditions are dropped; duplicates are dropped; a decided-false condition
// is recorded as the single constant-false condition.
func (s Set) And(cond *Expr) Set {
	c := cond.AsCond()
	if c.IsTrue() {
		return s
	}
	idx, found := s.search(c)
	if found {
		return s
	}
	ln := len(s.conds) + 1
	back := make([]*Expr, 2*ln)
	n := Set{
		conds:  back[0:0:ln],
		sorted: back[ln:ln:2*ln],
	}
	n.conds = append(append(n.conds, s.conds...), c)
	n.sorted = append(n.sorted, s.sorted[:idx]...)
	n.sorted = append(n.sorted, c)
	n.sorted = append(n.sorted, s.sorted[idx:]...)
	return n
}

// AndSet returns the conjunction of s and o.
func (s Set) AndSet(o Set) Set {
	if len(o.conds) == 0 {
		return s
	}
	if len(s.conds) == 0 {
		return o
	}
	merged := make([]*Expr, 0, len(s.conds)+len(o.conds))
	merged = append(merged, s.conds...)
	merged = append(merged, o.conds...)
	return NewSet(merged)
}

// Conds returns the conditions in insertion order. The slice must not be
// modified.
func (s Set) Conds() []*Expr { return s.conds }

// Len returns the number of conditions.
func (s Set) Len() int { return len(s.conds) }

// HasFalse reports whether the set contains a syntactically false
// condition.
func (s Set) HasFalse() bool {
	for _, c := range s.conds {
		if c.IsFalse() {
			return true
		}
	}
	return false
}

// Subst applies an expression substitution to every condition.
func (s Set) Subst(m map[string]*Expr) Set {
	if len(m) == 0 {
		return s
	}
	// Allocate only once a condition actually changes; a substitution
	// that touches nothing (entries with argument-free constraints are
	// the common case at call sites) returns the receiver as-is.
	var subbed []*Expr
	for i, c := range s.conds {
		nc := c.Subst(m)
		if subbed == nil {
			if nc == c {
				continue
			}
			subbed = make([]*Expr, i, len(s.conds))
			copy(subbed, s.conds[:i])
		}
		subbed = append(subbed, nc)
	}
	if subbed == nil {
		return s
	}
	return NewSet(subbed)
}

// WithoutLocals returns the set with every condition that mentions a local
// or fresh symbol removed — the existential projection of §3.3.3 ("remove
// conditions on local variables"). Before projecting, equalities that pin a
// local to an observable expression are used to rewrite that local away, so
// information such as "[0] = v ∧ v ≥ 0" survives as "[0] ≥ 0".
func (s Set) WithoutLocals() Set {
	out, _ := s.ProjectLocals()
	return out
}

// ProjectLocals performs the local projection of WithoutLocals and also
// returns the accumulated substitution that pinned locals to observable
// expressions. Callers (the symbolic executor) apply the same substitution
// to refcount keys and return expressions so that, e.g., the refcount of an
// object held in a returned local becomes the refcount of [0].
func (s Set) ProjectLocals() (Set, map[string]*Expr) {
	// Fast path: nothing mentions a local, so there is nothing to project
	// and nothing to pin.
	anyLocal := false
	for _, c := range s.conds {
		if c.HasLocal() {
			anyLocal = true
			break
		}
	}
	if !anyLocal {
		return s, nil
	}
	conds := s.conds
	pins := make(map[string]*Expr)
	// Fixpoint: substitute locals that are pinned by an equality to a
	// local-free expression.
	for iter := 0; iter < 8; iter++ {
		m := make(map[string]*Expr)
		for _, c := range conds {
			if c.Kind != KCond || c.Pred != ir.EQ {
				continue
			}
			a, b := c.A, c.B
			if isProjectable(a) && !b.HasLocal() {
				if _, dup := m[a.Key()]; !dup {
					m[a.Key()] = b
				}
			} else if isProjectable(b) && !a.HasLocal() {
				if _, dup := m[b.Key()]; !dup {
					m[b.Key()] = a
				}
			}
		}
		if len(m) == 0 {
			break
		}
		// Compose: earlier pins must see this round's substitutions so a
		// single application of pins is equivalent to the whole chain.
		for k, v := range pins {
			pins[k] = v.Subst(m)
		}
		for k, v := range m {
			if _, dup := pins[k]; !dup {
				pins[k] = v
			}
		}
		subbed := make([]*Expr, len(conds))
		for i, c := range conds {
			subbed[i] = c.Subst(m)
		}
		conds = NewSet(subbed).conds
	}
	keep := make([]*Expr, 0, len(conds))
	for _, c := range conds {
		if !c.HasLocal() {
			keep = append(keep, c)
		}
	}
	return NewSet(keep), pins
}

// isProjectable reports whether e is a term whose only unobservable part is
// itself: a bare local/fresh symbol, or a field chain rooted at one.
func isProjectable(e *Expr) bool {
	switch e.Kind {
	case KLocal, KFresh:
		return true
	}
	return false
}

// Key returns a canonical string for the whole conjunction (sorted), used
// for display and as the order-insensitive identity of the set.
func (s Set) Key() string {
	switch len(s.sorted) {
	case 0:
		return ""
	case 1:
		return s.sorted[0].Key()
	}
	n := 0
	for _, c := range s.sorted {
		n += len(c.Key()) + 3
	}
	var b strings.Builder
	b.Grow(n)
	for i, c := range s.sorted {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(c.Key())
	}
	return b.String()
}

// CacheKey returns a compact canonical identity for the conjunction, used
// by the solver cache. When every condition is interned it is a join of
// 8-byte interned IDs (prefixed with a NUL so it can never collide with a
// textual Key); otherwise it falls back to Key().
func (s Set) CacheKey() string {
	return string(s.AppendCacheKey(nil))
}

// AppendCacheKey appends the bytes of CacheKey to b and returns the
// extended slice. Callers that reuse b across queries avoid the per-query
// string allocation; the appended bytes are identical to CacheKey().
func (s Set) AppendCacheKey(b []byte) []byte {
	for _, c := range s.sorted {
		if c.id == 0 {
			return append(b, s.Key()...)
		}
	}
	b = append(b, 0)
	for _, c := range s.sorted {
		b = appendID(b, c.id)
	}
	return b
}

func appendID(b []byte, id uint64) []byte {
	return append(b,
		byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
		byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
}

// AppendMergedCacheKey appends the CacheKey of s.AndSet(o) to b without
// materializing the conjunction: the two sorted condition lists are merged
// with duplicates dropped, which is exactly the canonical order AndSet
// produces. n is the number of distinct conditions in the merge. ok is
// false — and b is returned unchanged — when either set carries an
// uninterned condition; callers then fall back to building the set.
func AppendMergedCacheKey(b []byte, s, o Set) (out []byte, n int, ok bool) {
	for _, c := range s.sorted {
		if c.id == 0 {
			return b, 0, false
		}
	}
	for _, c := range o.sorted {
		if c.id == 0 {
			return b, 0, false
		}
	}
	b = append(b, 0)
	i, j := 0, 0
	for i < len(s.sorted) && j < len(o.sorted) {
		a, bb := s.sorted[i], o.sorted[j]
		switch {
		case a == bb: // interned: pointer equality is structural equality
			b = appendID(b, a.id)
			i++
			j++
		case a.Key() < bb.Key():
			b = appendID(b, a.id)
			i++
		default:
			b = appendID(b, bb.id)
			j++
		}
		n++
	}
	for ; i < len(s.sorted); i++ {
		b = appendID(b, s.sorted[i].id)
		n++
	}
	for ; j < len(o.sorted); j++ {
		b = appendID(b, o.sorted[j].id)
		n++
	}
	return b, n, true
}

// String renders the conjunction in the paper's ∧ notation.
func (s Set) String() string {
	if len(s.conds) == 0 {
		return "true"
	}
	parts := make([]string, len(s.conds))
	for i, c := range s.conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}
