// Package sym implements the symbolic expression language of the RID paper
// (Figure 5) used by path summaries and function summaries:
//
//	e := const | e1 p e2 | [arg] | [0] | local | e.field
//
// plus fresh symbols, which model the random generator of the Figure-3
// abstraction and call results. Fresh symbols and locals share the key
// property that they are unobservable outside the function and are
// existentially projected away when a path summary is finalized.
//
// Expressions are immutable once built; Key() provides a canonical string
// used for structural equality, hashing and as the solver's variable name.
package sym

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Kind discriminates Expr.
type Kind int

// Expression kinds.
const (
	KConst Kind = iota // integer constant (booleans are 0/1, null is KNull)
	KNull              // the null pointer
	KArg               // [name]: a formal argument of the summarized function
	KRet               // [0]: the value returned by the summarized function
	KLocal             // a local variable never assigned before use
	KFresh             // a random value or call result, unique per creation
	KField             // Base.Name: an uninterpreted field of an object
	KCond              // A Pred B: a boolean condition
)

// Expr is an immutable symbolic expression.
type Expr struct {
	Kind Kind
	Int  int64   // KConst
	Name string  // KArg, KLocal, KFresh, KField (field name)
	Base *Expr   // KField
	Pred ir.Pred // KCond
	A, B *Expr   // KCond

	key string // memoized canonical form
}

// Constructors.

// Const returns an integer constant expression.
func Const(v int64) *Expr { return &Expr{Kind: KConst, Int: v} }

// BoolConst returns 1 for true and 0 for false, the integer encoding used
// throughout the analysis.
func BoolConst(b bool) *Expr {
	if b {
		return Const(1)
	}
	return Const(0)
}

// Null returns the null-pointer expression.
func Null() *Expr { return &Expr{Kind: KNull} }

// Arg returns the expression for formal argument name, written [name].
func Arg(name string) *Expr { return &Expr{Kind: KArg, Name: name} }

// Ret returns [0], the summarized function's return value.
func Ret() *Expr { return &Expr{Kind: KRet} }

// Local returns the expression for a local variable read before assignment.
func Local(name string) *Expr { return &Expr{Kind: KLocal, Name: name} }

// Fresh returns a fresh symbol; callers must ensure name uniqueness (the
// symbolic executor uses a per-path counter).
func Fresh(name string) *Expr { return &Expr{Kind: KFresh, Name: name} }

// Field returns base.name.
func Field(base *Expr, name string) *Expr {
	return &Expr{Kind: KField, Base: base, Name: name}
}

// Cond returns the condition a pred b, folding constants and boolean
// comparisons where possible. The result is either a KCond expression or a
// KConst 0/1 when the condition is decided structurally.
func Cond(a *Expr, pred ir.Pred, b *Expr) *Expr {
	// Null is the integer 0 throughout the analysis; canonicalize it here
	// so "x != null" and "0 != x" build the same condition (one solver
	// variable, one dedup key).
	if a.Kind == KNull {
		a = Const(0)
	}
	if b.Kind == KNull {
		b = Const(0)
	}
	// Constant folding.
	av, aok := a.constValue()
	bv, bok := b.constValue()
	if aok && bok {
		return BoolConst(pred.Eval(av, bv))
	}
	// Boolean-context folding: (C == 0) is ¬C, (C != 0) is C, and the
	// 1-valued duals, where C is itself a condition.
	if a.Kind == KCond && bok {
		switch {
		case bv == 0 && pred == ir.EQ, bv == 1 && pred == ir.NE:
			return a.NegateCond()
		case bv == 0 && pred == ir.NE, bv == 1 && pred == ir.EQ:
			return a
		}
	}
	if b.Kind == KCond && aok {
		switch {
		case av == 0 && pred == ir.EQ, av == 1 && pred == ir.NE:
			return b.NegateCond()
		case av == 0 && pred == ir.NE, av == 1 && pred == ir.EQ:
			return b
		}
	}
	// Identical terms decide reflexive predicates.
	if a.Key() == b.Key() {
		switch pred {
		case ir.EQ, ir.LE, ir.GE:
			return BoolConst(true)
		case ir.NE, ir.LT, ir.GT:
			return BoolConst(false)
		}
	}
	// Canonical operand order for symmetric predicates keeps keys stable.
	if (pred == ir.EQ || pred == ir.NE) && a.Key() > b.Key() {
		a, b = b, a
	}
	return &Expr{Kind: KCond, Pred: pred, A: a, B: b}
}

// constValue returns the integer value of constants and null.
func (e *Expr) constValue() (int64, bool) {
	switch e.Kind {
	case KConst:
		return e.Int, true
	case KNull:
		return 0, true
	}
	return 0, false
}

// IsConst reports whether e is an integer constant (or null) and returns
// its value.
func (e *Expr) IsConst() (int64, bool) { return e.constValue() }

// IsTrue reports whether e is the constant 1 (a decided-true condition).
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Int == 1 }

// IsFalse reports whether e is the constant 0 or null.
func (e *Expr) IsFalse() bool {
	v, ok := e.constValue()
	return ok && v == 0
}

// NegateCond negates a boolean expression: conditions flip their
// predicate, constants invert, and any other expression e becomes e == 0
// (the C truth-value convention).
func (e *Expr) NegateCond() *Expr {
	switch e.Kind {
	case KCond:
		return Cond(e.A, e.Pred.Negate(), e.B)
	case KConst, KNull:
		v, _ := e.constValue()
		return BoolConst(v == 0)
	}
	return Cond(e, ir.EQ, Const(0))
}

// AsCond coerces e to a boolean condition: conditions pass through and any
// other expression e becomes e != 0.
func (e *Expr) AsCond() *Expr {
	switch e.Kind {
	case KCond, KConst, KNull:
		if e.Kind != KCond {
			v, _ := e.constValue()
			return BoolConst(v != 0)
		}
		return e
	}
	return Cond(e, ir.NE, Const(0))
}

// Key returns the canonical string form of e. Two expressions are
// structurally equal iff their keys are equal.
func (e *Expr) Key() string {
	if e.key == "" {
		e.key = e.buildKey()
	}
	return e.key
}

func (e *Expr) buildKey() string {
	switch e.Kind {
	case KConst:
		return fmt.Sprintf("%d", e.Int)
	case KNull:
		return "null"
	case KArg:
		return "[" + e.Name + "]"
	case KRet:
		return "[0]"
	case KLocal:
		return e.Name
	case KFresh:
		return "$" + e.Name
	case KField:
		return e.Base.Key() + "." + e.Name
	case KCond:
		return "(" + e.A.Key() + " " + e.Pred.String() + " " + e.B.Key() + ")"
	}
	return "?"
}

// String renders the expression in the paper's notation.
func (e *Expr) String() string { return e.Key() }

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	return e.Key() == o.Key()
}

// HasLocal reports whether e mentions a local variable or fresh symbol —
// i.e. anything unobservable outside the function.
func (e *Expr) HasLocal() bool {
	switch e.Kind {
	case KLocal, KFresh:
		return true
	case KField:
		return e.Base.HasLocal()
	case KCond:
		return e.A.HasLocal() || e.B.HasLocal()
	}
	return false
}

// HasRet reports whether e mentions [0].
func (e *Expr) HasRet() bool {
	switch e.Kind {
	case KRet:
		return true
	case KField:
		return e.Base.HasRet()
	case KCond:
		return e.A.HasRet() || e.B.HasRet()
	}
	return false
}

// Subst returns e with every maximal subexpression whose Key appears in m
// replaced by the mapped expression. The substitution is simultaneous.
func (e *Expr) Subst(m map[string]*Expr) *Expr {
	if len(m) == 0 {
		return e
	}
	if r, ok := m[e.Key()]; ok {
		return r
	}
	switch e.Kind {
	case KField:
		nb := e.Base.Subst(m)
		if nb == e.Base {
			return e
		}
		return Field(nb, e.Name)
	case KCond:
		na, nbb := e.A.Subst(m), e.B.Subst(m)
		if na == e.A && nbb == e.B {
			return e
		}
		return Cond(na, e.Pred, nbb)
	}
	return e
}

// Atoms appends to out the non-constant leaf terms of e (args, ret, locals,
// fresh symbols, and whole field chains) and returns the result. Field
// chains are treated as single uninterpreted terms.
func (e *Expr) Atoms(out []*Expr) []*Expr {
	switch e.Kind {
	case KConst, KNull:
		return out
	case KCond:
		out = e.A.Atoms(out)
		return e.B.Atoms(out)
	default:
		return append(out, e)
	}
}

// ---------------------------------------------------------------------------
// Constraint sets

// Set is a conjunction of boolean conditions. The zero value is the empty
// (true) constraint. Sets are treated as immutable: And returns a new Set.
type Set struct {
	conds []*Expr
	keys  map[string]bool
}

// True returns the empty constraint.
func True() Set { return Set{} }

// And returns s extended with cond (coerced via AsCond). Decided-true
// conditions are dropped; duplicates are dropped; a decided-false condition
// is recorded as the single constant-false condition.
func (s Set) And(cond *Expr) Set {
	c := cond.AsCond()
	if c.IsTrue() {
		return s
	}
	if s.keys[c.Key()] {
		return s
	}
	n := Set{conds: make([]*Expr, len(s.conds), len(s.conds)+1), keys: make(map[string]bool, len(s.conds)+1)}
	copy(n.conds, s.conds)
	for k := range s.keys {
		n.keys[k] = true
	}
	n.conds = append(n.conds, c)
	n.keys[c.Key()] = true
	return n
}

// AndSet returns the conjunction of s and o.
func (s Set) AndSet(o Set) Set {
	out := s
	for _, c := range o.conds {
		out = out.And(c)
	}
	return out
}

// Conds returns the conditions in insertion order. The slice must not be
// modified.
func (s Set) Conds() []*Expr { return s.conds }

// Len returns the number of conditions.
func (s Set) Len() int { return len(s.conds) }

// HasFalse reports whether the set contains a syntactically false
// condition.
func (s Set) HasFalse() bool {
	for _, c := range s.conds {
		if c.IsFalse() {
			return true
		}
	}
	return false
}

// Subst applies an expression substitution to every condition.
func (s Set) Subst(m map[string]*Expr) Set {
	out := True()
	for _, c := range s.conds {
		out = out.And(c.Subst(m))
	}
	return out
}

// WithoutLocals returns the set with every condition that mentions a local
// or fresh symbol removed — the existential projection of §3.3.3 ("remove
// conditions on local variables"). Before projecting, equalities that pin a
// local to an observable expression are used to rewrite that local away, so
// information such as "[0] = v ∧ v ≥ 0" survives as "[0] ≥ 0".
func (s Set) WithoutLocals() Set {
	out, _ := s.ProjectLocals()
	return out
}

// ProjectLocals performs the local projection of WithoutLocals and also
// returns the accumulated substitution that pinned locals to observable
// expressions. Callers (the symbolic executor) apply the same substitution
// to refcount keys and return expressions so that, e.g., the refcount of an
// object held in a returned local becomes the refcount of [0].
func (s Set) ProjectLocals() (Set, map[string]*Expr) {
	conds := s.conds
	pins := make(map[string]*Expr)
	// Fixpoint: substitute locals that are pinned by an equality to a
	// local-free expression.
	for iter := 0; iter < 8; iter++ {
		m := make(map[string]*Expr)
		for _, c := range conds {
			if c.Kind != KCond || c.Pred != ir.EQ {
				continue
			}
			a, b := c.A, c.B
			if isProjectable(a) && !b.HasLocal() {
				if _, dup := m[a.Key()]; !dup {
					m[a.Key()] = b
				}
			} else if isProjectable(b) && !a.HasLocal() {
				if _, dup := m[b.Key()]; !dup {
					m[b.Key()] = a
				}
			}
		}
		if len(m) == 0 {
			break
		}
		// Compose: earlier pins must see this round's substitutions so a
		// single application of pins is equivalent to the whole chain.
		for k, v := range pins {
			pins[k] = v.Subst(m)
		}
		for k, v := range m {
			if _, dup := pins[k]; !dup {
				pins[k] = v
			}
		}
		next := True()
		for _, c := range conds {
			next = next.And(c.Subst(m))
		}
		conds = next.conds
	}
	out := True()
	for _, c := range conds {
		if !c.HasLocal() {
			out = out.And(c)
		}
	}
	return out, pins
}

// isProjectable reports whether e is a term whose only unobservable part is
// itself: a bare local/fresh symbol, or a field chain rooted at one.
func isProjectable(e *Expr) bool {
	switch e.Kind {
	case KLocal, KFresh:
		return true
	}
	return false
}

// Key returns a canonical string for the whole conjunction (sorted), used
// for solver caching.
func (s Set) Key() string {
	ks := make([]string, len(s.conds))
	for i, c := range s.conds {
		ks[i] = c.Key()
	}
	sortStrings(ks)
	return strings.Join(ks, " & ")
}

// String renders the conjunction in the paper's ∧ notation.
func (s Set) String() string {
	if len(s.conds) == 0 {
		return "true"
	}
	parts := make([]string, len(s.conds))
	for i, c := range s.conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

func sortStrings(s []string) {
	// Insertion sort: sets are small and this avoids importing sort just
	// for a hot path that profiles as negligible.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
