// Hash-consing for symbolic expressions.
//
// Every constructor routes through intern(), which deduplicates
// structurally equal nodes in a sharded global table: two expressions
// built from the same parts are the same pointer. Because children are
// interned before their parents, a node's identity is fully described by
// its kind, scalar payload, and the interned IDs of its children — the
// table key is a small comparable struct, never a rebuilt string. Each
// interned node carries a unique nonzero ID and a canonical key string
// computed exactly once, so expression equality is pointer (or ID)
// comparison and Set/solver cache keys are O(n) ID joins instead of
// O(tree) string construction.
//
// Interning can be switched off (SetInterning) for ablation benchmarks
// and equivalence tests; constructors then allocate fresh nodes with
// ID 0, and every consumer falls back to canonical-key comparison, which
// is what the pre-interning implementation did everywhere.
package sym

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// interningOff is the ablation switch. The zero value (false) means
// hash-consing is ON, which is the production configuration.
var interningOff atomic.Bool

// SetInterning enables or disables hash-consing for subsequently built
// expressions and reports the previous setting. Already-interned nodes
// remain valid either way; expressions created while interning is off
// simply carry no ID and compare by canonical key.
func SetInterning(on bool) bool {
	prev := !interningOff.Load()
	interningOff.Store(!on)
	return prev
}

// InterningEnabled reports whether constructors hash-cons new nodes.
func InterningEnabled() bool { return !interningOff.Load() }

// nodeKey identifies an expression up to structural equality, given that
// all children are interned: child identity is their interned ID.
type nodeKey struct {
	kind Kind
	num  int64
	name string
	pred ir.Pred
	base uint64 // Base.id for KField
	a, b uint64 // A.id, B.id for KCond
}

const internShardCount = 64

type internShard struct {
	mu sync.Mutex
	m  map[nodeKey]*Expr
}

var (
	internTab    [internShardCount]internShard
	internNextID atomic.Uint64
)

func init() {
	for i := range internTab {
		internTab[i].m = make(map[nodeKey]*Expr, 256)
	}
}

// shardOf hashes the node key (FNV-1a over its scalar fields and name)
// to spread lock traffic across shards under parallel analysis.
func shardOf(k nodeKey) *internShard {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.kind))
	mix(uint64(k.num))
	mix(uint64(k.pred))
	mix(k.base)
	mix(k.a)
	mix(k.b)
	for i := 0; i < len(k.name); i++ {
		mix(uint64(k.name[i]))
	}
	return &internTab[h%internShardCount]
}

// InternedCount returns the number of distinct expressions currently in
// the table (diagnostics and tests).
func InternedCount() int {
	n := 0
	for i := range internTab {
		internTab[i].mu.Lock()
		n += len(internTab[i].m)
		internTab[i].mu.Unlock()
	}
	return n
}

// freshByName memoizes Fresh symbols for byte-slice lookup, so the hot
// site-symbol path of the executor (same site, same occurrence → same
// symbol, re-derived on every path) costs no allocation after the first
// construction. Entries are interned nodes, so the memo stays consistent
// with the main table.
var freshByName = struct {
	sync.RWMutex
	m map[string]*Expr
}{m: make(map[string]*Expr)}

// FreshBytes returns Fresh(string(name)) without allocating when a fresh
// symbol of that name was built before. With interning disabled it
// degrades to Fresh (a new uninterned node per call), preserving the
// ablation semantics.
func FreshBytes(name []byte) *Expr {
	if interningOff.Load() {
		return Fresh(string(name))
	}
	freshByName.RLock()
	e := freshByName.m[string(name)] // no allocation: compiler-recognized lookup
	freshByName.RUnlock()
	if e != nil {
		return e
	}
	s := string(name)
	e = Fresh(s)
	freshByName.Lock()
	freshByName.m[s] = e
	freshByName.Unlock()
	return e
}

// intern builds (or retrieves) the node for the given parts. Children
// must already be constructed. When interning is disabled, or when any
// child predates it (ID 0), a fresh uninterned node is returned.
func intern(kind Kind, num int64, name string, base *Expr, pred ir.Pred, a, b *Expr) *Expr {
	if interningOff.Load() ||
		(base != nil && base.id == 0) ||
		(a != nil && a.id == 0) || (b != nil && b.id == 0) {
		e := &Expr{Kind: kind, Int: num, Name: name, Base: base, Pred: pred, A: a, B: b}
		e.initDerived()
		return e
	}
	k := nodeKey{kind: kind, num: num, name: name, pred: pred}
	if base != nil {
		k.base = base.id
	}
	if a != nil {
		k.a = a.id
	}
	if b != nil {
		k.b = b.id
	}
	s := shardOf(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.mu.Unlock()
		return e
	}
	e := &Expr{Kind: kind, Int: num, Name: name, Base: base, Pred: pred, A: a, B: b}
	e.initDerived()
	e.id = internNextID.Add(1)
	s.m[k] = e
	s.mu.Unlock()
	return e
}
