package core

import (
	"context"
	"hash/fnv"

	"repro/internal/interp"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/spec"
)

// replayTrials bounds the interpreter runs spent steering execution onto
// each recorded path. Extern callees execute a randomly chosen summary
// entry (and defined callees draw havoc internally), so reproducing a
// specific path is stochastic; 256 seeds per path steers even two-level
// callee chains reliably while keeping the post-pass a few milliseconds
// per report.
const replayTrials = 256

// replayReports closes the provenance loop: for every report carrying an
// Evidence record, it drives the concrete interpreter down the two
// recorded paths under the report's witness assignment and annotates the
// evidence confirmed-by-replay / replay-diverged / not-replayable.
//
// The pass runs sequentially after reports are sorted, and every seed is
// derived from the function name alone, so verdicts are byte-identical
// at any Workers setting. Reports from the same inconsistent pair share
// one *Evidence; the pair is replayed once.
func replayReports(ctx context.Context, prog *ir.Program, specs *spec.Specs, res *Result, o *obs.Obs) {
	done := make(map[*ipp.Evidence]bool)
	for _, rep := range res.Reports {
		ev := rep.Evidence
		if ev == nil || done[ev] {
			continue
		}
		done[ev] = true
		if ctx.Err() != nil {
			ev.Replay = &ipp.ReplayResult{Verdict: ipp.ReplayNotReplayable}
			o.Count(obs.MReplayUnreplayed, 1)
			continue
		}
		sp := o.Start(obs.PhaseReplay, rep.Fn)
		ev.Replay = replayOne(prog, specs, rep)
		sp.End()
		switch ev.Replay.Verdict {
		case ipp.ReplayConfirmed:
			o.Count(obs.MReplayConfirmed, 1)
		case ipp.ReplayDiverged:
			o.Count(obs.MReplayDiverged, 1)
		default:
			o.Count(obs.MReplayUnreplayed, 1)
		}
	}
}

// replayOne replays both recorded paths of one report and derives the
// verdict: confirmed when both paths reproduce (same witness arguments,
// recorded block trajectories, witness return value) with *different*
// normalized refcount delta signatures — a dynamic IPP witness — and
// diverged when both reproduce but the deltas agree.
func replayOne(prog *ir.Program, specs *spec.Specs, rep *ipp.Report) *ipp.ReplayResult {
	ev := rep.Evidence
	blocksA := blockIndexes(ev.PathA)
	blocksB := blockIndexes(ev.PathB)
	if len(blocksA) == 0 || len(blocksB) == 0 {
		// Symexec ran without provenance capture (or the path records
		// were lost): nothing to steer toward.
		return &ipp.ReplayResult{Verdict: ipp.ReplayNotReplayable}
	}
	seed := int64(fnvHash(rep.Fn))
	ra, errA := interp.ReplayPath(prog, specs, rep.Fn, rep.Witness, blocksA, replayTrials, seed)
	rb, errB := interp.ReplayPath(prog, specs, rep.Fn, rep.Witness, blocksB, replayTrials, seed+1_000_003)
	out := &ipp.ReplayResult{Attempts: ra.Attempts + rb.Attempts}
	if errA != nil || errB != nil || !ra.Reproduced || !rb.Reproduced {
		out.Verdict = ipp.ReplayNotReplayable
		return out
	}
	out.DeltaA = ra.Outcome.DeltaSignature()
	out.DeltaB = rb.Outcome.DeltaSignature()
	if out.DeltaA != out.DeltaB {
		out.Verdict = ipp.ReplayConfirmed
	} else {
		out.Verdict = ipp.ReplayDiverged
	}
	return out
}

func blockIndexes(pe ipp.PathEvidence) []int {
	if len(pe.Blocks) == 0 {
		return nil
	}
	out := make([]int, len(pe.Blocks))
	for i, b := range pe.Blocks {
		out[i] = b.Index
	}
	return out
}

// fnvHash seeds replay deterministically from the function name, so the
// verdict does not depend on report order, worker count, or wall clock.
func fnvHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
