package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/spec"
)

// giveUpSrc builds n functions whose IPP checks issue solver queries with
// two disequality conditions each, so a MaxSplits=1 budget forces the slow
// path to give up (answer SAT conservatively) at least once per function.
func giveUpSrc(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
int f%d(struct device *d, int a, int b) {
    int ret = pm_runtime_get_sync(d);
    if (a != %d) {
        if (b != %d) {
            return -1;
        }
    }
    pm_runtime_put(d);
    return 0;
}
`, i, i, i+1)
	}
	return b.String()
}

// TestStatsSolverExactUnderWorkers is the regression test for the
// Stats.Solver aggregation: solver counters are now incremented in the
// shared registry at query time and read back as a delta after all workers
// exit and diagnostics are finalized, so the totals must be exact (and
// identical across worker counts when caching is off), and the
// per-function solver-give-up diagnostics must add up to the total.
// Previously the stats were snapshotted per scheduler before the
// diagnostics pass, which under Workers>1 could race with late workers.
func TestStatsSolverExactUnderWorkers(t *testing.T) {
	prog, err := lower.SourceString("giveup.c", giveUpSrc(12))
	if err != nil {
		t.Fatalf("lower: %v", err)
	}

	run := func(workers int) *Result {
		return Analyze(context.Background(), prog, spec.LinuxDPM(), Options{
			Workers:      workers,
			NoCache:      true, // per-function query counts become scheduling-independent
			SolverLimits: solver.Limits{MaxSplits: 1},
		})
	}
	seq := run(1)
	par := run(4)

	for _, tc := range []struct {
		name string
		res  *Result
	}{{"workers=1", seq}, {"workers=4", par}} {
		s := tc.res.Stats.Solver
		if s.Queries == 0 {
			t.Fatalf("%s: no solver queries issued", tc.name)
		}
		if s.GaveUp == 0 {
			t.Fatalf("%s: expected give-ups under MaxSplits=1", tc.name)
		}
		// Every query is answered exactly once: from the cache, SAT, or
		// UNSAT. Give-ups answer SAT, so they are a subset of Sat.
		if s.Queries != s.CacheHits+s.Sat+s.Unsat {
			t.Errorf("%s: queries=%d != cachehits=%d + sat=%d + unsat=%d",
				tc.name, s.Queries, s.CacheHits, s.Sat, s.Unsat)
		}
		if s.GaveUp > s.Sat {
			t.Errorf("%s: gaveup=%d > sat=%d", tc.name, s.GaveUp, s.Sat)
		}
		// The per-function give-up diagnostics must account for every
		// give-up in the totals.
		diagGiveUps := 0
		for _, d := range tc.res.Diagnostics {
			if d.Kind != DegradeSolverGiveUp {
				continue
			}
			var n int
			if _, err := fmt.Sscanf(d.Cause, "%d solver queries", &n); err != nil {
				t.Fatalf("%s: unparseable give-up cause %q: %v", tc.name, d.Cause, err)
			}
			diagGiveUps += n
		}
		if diagGiveUps != s.GaveUp {
			t.Errorf("%s: per-function give-up diagnostics sum to %d, Stats.Solver.GaveUp = %d",
				tc.name, diagGiveUps, s.GaveUp)
		}
	}

	// With the cache off, each function is analyzed exactly once with the
	// same budgets regardless of scheduling, so the totals must agree
	// exactly between sequential and parallel runs.
	if seq.Stats.Solver != par.Stats.Solver {
		t.Errorf("solver stats diverge across worker counts:\nworkers=1: %+v\nworkers=4: %+v",
			seq.Stats.Solver, par.Stats.Solver)
	}
}

// TestStatsSolverMatchesRegistry checks that a caller-supplied registry
// sees exactly what Stats.Solver reports (the stats are read back from the
// registry, and a fresh registry starts at zero, so the two views must be
// identical).
func TestStatsSolverMatchesRegistry(t *testing.T) {
	prog, err := lower.SourceString("giveup.c", giveUpSrc(6))
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	reg := obs.NewRegistry()
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{
		Workers: 4,
		Obs:     obs.New(nil, reg),
	})
	got := solver.Stats{
		Queries:   int(reg.Counter(obs.MSolverQueries)),
		CacheHits: int(reg.Counter(obs.MSolverCacheHits)),
		Sat:       int(reg.Counter(obs.MSolverSat)),
		Unsat:     int(reg.Counter(obs.MSolverUnsat)),
		GaveUp:    int(reg.Counter(obs.MSolverGaveUp)),
	}
	if got != res.Stats.Solver {
		t.Errorf("registry view %+v != Stats.Solver %+v", got, res.Stats.Solver)
	}
	if res.Stats.Solver.Queries == 0 {
		t.Error("no solver queries recorded")
	}
	// The pipeline counters must be coherent with the run stats, too.
	if n := int(reg.Counter(obs.MFuncsAnalyzed)); n != res.Stats.FuncsAnalyzed {
		t.Errorf("funcs_analyzed counter = %d, Stats.FuncsAnalyzed = %d", n, res.Stats.FuncsAnalyzed)
	}
	if n := int(reg.Counter(obs.MPathsEnumerated)); n != res.Stats.PathsEnumerated {
		t.Errorf("paths_enumerated counter = %d, Stats.PathsEnumerated = %d", n, res.Stats.PathsEnumerated)
	}
	if n := reg.Counter(obs.MIPPConfirmed); int(n) != len(res.Reports) {
		t.Errorf("ipp_confirmed counter = %d, reports = %d", n, len(res.Reports))
	}
}

// TestObsOverheadAllocFree is the pipeline-level allocation guard for the
// no-tracer observability hooks: an analysis run with a caller-supplied
// registry (counters + phase histograms on, per-query timing off) must
// allocate no more than the same run with no observer at all. The hooks
// are atomic adds on pre-sized arrays, so any regression here means a
// hook started boxing, capturing, or formatting on the hot path.
func TestObsOverheadAllocFree(t *testing.T) {
	prog, err := lower.SourceString("giveup.c", giveUpSrc(4))
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	ctx := context.Background()
	// NoCache keeps per-run work identical; Workers=1 keeps it
	// deterministic so AllocsPerRun gets stable samples.
	run := func(o *obs.Obs) {
		Analyze(ctx, prog, specs, Options{Workers: 1, NoCache: true, Obs: o})
	}
	reg := obs.NewRegistry()
	withObs := testing.AllocsPerRun(10, func() { run(obs.New(nil, reg)) })
	// Per-request child registries (the daemon's exact-delta path) forward
	// every Count/Observe to the parent with plain atomic adds; the chain
	// walk must stay just as allocation-free as the flat registry.
	child := reg.Child()
	withChild := testing.AllocsPerRun(10, func() { run(obs.New(nil, child)) })
	baseline := testing.AllocsPerRun(10, func() { run(nil) })
	// The nil-obs run allocates its own private registry inside Analyze, so
	// the instrumented run should be at or below baseline; a small slack
	// absorbs runtime noise (map growth timing, GC assists). Under the race
	// detector sync.Pool drops puts at random, so per-run alloc counts are
	// nondeterministic and only the non-race build can compare them.
	if !raceEnabled && withObs > baseline+5 {
		t.Errorf("observed run allocates %.0f/op vs %.0f/op baseline; hooks are allocating",
			withObs, baseline)
	}
	if !raceEnabled && withChild > baseline+5 {
		t.Errorf("child-registry run allocates %.0f/op vs %.0f/op baseline; parent forwarding is allocating",
			withChild, baseline)
	}
}
