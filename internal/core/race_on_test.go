//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector. Under race, sync.Pool deliberately drops puts at random to
// diversify interleavings, so pooled hot paths have nondeterministic
// allocation counts and exact-count assertions must be skipped.
const raceEnabled = true
