/* A realistic composite driver file: several subsystem layers, mixed
 * correct and buggy runtime-PM usage. Expected reports are pinned by
 * TestGoldenRealisticDriver. */

struct device;
struct rtl_priv { struct device dev; int flags; };
struct sk_buff;

extern int pm_runtime_get(struct device *dev);
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int pm_runtime_put_sync(struct device *dev);
extern int pm_runtime_put_noidle(struct device *dev);
extern int pm_runtime_put_autosuspend(struct device *dev);
extern int dev_err(struct device *dev);
extern int rtl_hw_init(struct device *dev);
extern int rtl_dma_map(struct device *dev, struct sk_buff *skb);
extern int rtl_fw_load(struct device *dev);

/* Layer 1: conditional wrapper, usb_autopm style. Correct. */
int rtl_pm_get(struct rtl_priv *priv) {
    int status;
    status = pm_runtime_get_sync(&priv->dev);
    if (status < 0)
        pm_runtime_put_sync(&priv->dev);
    if (status > 0)
        status = 0;
    return status;
}

void rtl_pm_put(struct rtl_priv *priv) {
    pm_runtime_put_sync(&priv->dev);
}

/* Layer 2: open wrapper over layer 1. Correct (conditional again). */
int rtl_open_hw(struct rtl_priv *priv) {
    int err;
    err = rtl_pm_get(priv);
    if (err)
        return err;
    err = rtl_hw_init(&priv->dev);
    if (err < 0) {
        rtl_pm_put(priv);
        return err;
    }
    return 0;
}

/* Status helper: category 2, one branch. */
int rtl_link_ok(struct device *dev) {
    int v;
    v = rtl_fw_load(dev);
    if (v > 0)
        return 0;
    return -1;
}

/* BUG 1 (Figure-8 class): error return leaks the unconditional +1. */
int rtl_resume(struct rtl_priv *priv) {
    int ret;
    ret = pm_runtime_get_sync(&priv->dev);
    if (ret < 0)
        return ret;
    ret = rtl_hw_init(&priv->dev);
    pm_runtime_put_autosuspend(&priv->dev);
    return ret;
}

/* BUG 2 (Figure-9 class): second error exit leaks the wrapper's +1. */
int rtl_xmit(struct rtl_priv *priv, struct sk_buff *skb) {
    int rc;
    rc = rtl_open_hw(priv);
    if (rc)
        goto out;
    rc = rtl_dma_map(&priv->dev, skb);
    if (rc)
        goto out;
    rtl_pm_put(priv);
out:
    return rc;
}

/* Correct: helper-guarded, balanced on every path. */
int rtl_poll(struct rtl_priv *priv) {
    int st;
    st = rtl_link_ok(&priv->dev);
    if (st < 0)
        return st;
    pm_runtime_get(&priv->dev);
    if (rtl_fw_load(&priv->dev) < 0)
        dev_err(&priv->dev);
    pm_runtime_put(&priv->dev);
    return 0;
}

/* Real bug RID cannot see (Figure-10 class): distinct returns. */
int rtl_irq(int irq, struct rtl_priv *priv) {
    int ret;
    ret = pm_runtime_get_sync(&priv->dev);
    if (ret < 0) {
        dev_err(&priv->dev);
        return 0;
    }
    pm_runtime_put(&priv->dev);
    return 1;
}
