package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus/kernelgen"
	"repro/internal/lower"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/symexec"
)

// faultSrc holds three independent buggy driver ops plus one clean helper.
// victim_op is the fault-injection target; the other two must be analyzed
// and reported identically whether or not the victim misbehaves.
const faultSrc = `
int victim_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int alpha_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int beta_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int clean_op(struct device *dev) {
    pm_runtime_get(dev);
    do_transfer(dev);
    pm_runtime_put(dev);
    return 0;
}
`

// renderReportsExcept renders the canonical report form with every report
// of function fn removed, for comparing a degraded run against a clean one.
func renderReportsExcept(res *Result, fn string) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		if r.Fn == fn {
			continue
		}
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	return b.String()
}

func hasDiag(diags []Diagnostic, fn string, kind DegradeKind) bool {
	for _, d := range diags {
		if d.Fn == fn && d.Kind == kind {
			return true
		}
	}
	return false
}

// TestPanicIsolation injects a panic into one function's symbolic
// execution and requires, at every Workers setting: a completed run, a
// default summary for the victim, a DegradePanic diagnostic, a counted
// FuncsPanicked, and byte-identical reports for every other function.
func TestPanicIsolation(t *testing.T) {
	prog, err := lower.SourceString("t.c", faultSrc)
	if err != nil {
		t.Fatal(err)
	}
	clean := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	if len(clean.Reports) == 0 {
		t.Fatal("clean run found no reports; source not exercising the pipeline")
	}
	want := renderReportsExcept(clean, "victim_op")

	for _, workers := range []int{1, 4} {
		opts := Options{Workers: workers}
		opts.Exec.OnFunction = func(fn string) {
			if fn == "victim_op" {
				panic("injected fault")
			}
		}
		res := Analyze(context.Background(), prog, spec.LinuxDPM(), opts)

		if res.Stats.FuncsPanicked != 1 {
			t.Errorf("workers=%d: FuncsPanicked = %d, want 1", workers, res.Stats.FuncsPanicked)
		}
		if !hasDiag(res.Diagnostics, "victim_op", DegradePanic) {
			t.Errorf("workers=%d: no DegradePanic diagnostic for victim_op: %v", workers, res.Diagnostics)
		}
		s := res.DB.Get("victim_op")
		if s == nil || !s.HasDefault {
			t.Errorf("workers=%d: panicked function must carry a default summary: %v", workers, s)
		}
		if got := renderReportsExcept(res, "victim_op"); got != want {
			t.Errorf("workers=%d: panic in victim_op changed other functions' reports\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
		for _, r := range res.Reports {
			if r.Fn == "victim_op" {
				t.Errorf("workers=%d: panicked function must not report (its analysis never completed)", workers)
			}
		}
	}
}

// TestFuncTimeoutDegrades gives one function an impossible wall-clock
// budget and requires the run to finish with a default summary, a
// DegradeTimeout diagnostic, and a FuncsTimedOut count — not an abort.
func TestFuncTimeoutDegrades(t *testing.T) {
	prog, err := lower.SourceString("t.c", faultSrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{FuncTimeout: 2 * time.Millisecond}
	opts.Exec.OnFunction = func(fn string) {
		if fn == "victim_op" {
			time.Sleep(30 * time.Millisecond)
		}
	}
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), opts)

	if res.Stats.FuncsTimedOut != 1 {
		t.Fatalf("FuncsTimedOut = %d, want 1; diags: %v", res.Stats.FuncsTimedOut, res.Diagnostics)
	}
	if !hasDiag(res.Diagnostics, "victim_op", DegradeTimeout) {
		t.Errorf("no DegradeTimeout diagnostic for victim_op: %v", res.Diagnostics)
	}
	s := res.DB.Get("victim_op")
	if s == nil || !s.HasDefault {
		t.Errorf("timed-out function must carry a default summary: %v", s)
	}
	// The budget is per-function: the rest of the run is unaffected.
	if res.Stats.FuncsAnalyzed != 4 {
		t.Errorf("FuncsAnalyzed = %d, want 4 (timeout must not stop the run)", res.Stats.FuncsAnalyzed)
	}
}

// TestCancellationReturnsPartialResults runs a §6.5-style generated corpus
// under a 1ms deadline and requires a prompt return carrying partial
// results and a run-level DegradeCanceled diagnostic.
func TestCancellationReturnsPartialResults(t *testing.T) {
	kc := kernelgen.Generate(kernelgen.Config{
		Seed: 11, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 50,
	})
	prog := buildCorpus(t, kc.Files)

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		opts := Options{Workers: workers}
		// Slow each function slightly so the 1ms deadline reliably lands
		// mid-run regardless of machine speed.
		opts.Exec.OnFunction = func(string) { time.Sleep(300 * time.Microsecond) }

		start := time.Now()
		res := Analyze(ctx, prog, spec.LinuxDPM(), opts)
		elapsed := time.Since(start)
		cancel()

		if elapsed > 5*time.Second {
			t.Errorf("workers=%d: cancellation not prompt: run took %v", workers, elapsed)
		}
		if res.Stats.FuncsAnalyzed >= res.Stats.FuncsTotal {
			t.Errorf("workers=%d: expected a partial run, analyzed %d of %d",
				workers, res.Stats.FuncsAnalyzed, res.Stats.FuncsTotal)
		}
		if !hasDiag(res.Diagnostics, "", DegradeCanceled) {
			t.Errorf("workers=%d: no run-level DegradeCanceled diagnostic: %v", workers, res.Diagnostics)
		}
	}
}

// TestCanceledContextStopsImmediately hands Analyze an already-dead
// context: nothing may be analyzed, and the cancellation must still be
// diagnosed.
func TestCanceledContextStopsImmediately(t *testing.T) {
	prog, err := lower.SourceString("t.c", faultSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Analyze(ctx, prog, spec.LinuxDPM(), Options{})
	if res.Stats.FuncsAnalyzed != 0 {
		t.Errorf("FuncsAnalyzed = %d on a canceled context, want 0", res.Stats.FuncsAnalyzed)
	}
	if !hasDiag(res.Diagnostics, "", DegradeCanceled) {
		t.Errorf("no DegradeCanceled diagnostic: %v", res.Diagnostics)
	}
}

// splitHeavySrc puts two disequality conditions on every refcount path so
// a MaxSplits=1 solver budget is guaranteed to be exceeded during
// infeasible-path pruning and IPP checking.
const splitHeavySrc = `
int split_a(struct device *dev, int a, int b) {
    if (a != 0) {
        if (b != 1) {
            pm_runtime_get(dev);
            do_transfer(dev);
            pm_runtime_put(dev);
            return 0;
        }
    }
    return -1;
}

int split_b(struct device *dev, int a, int b) {
    if (a != 2) {
        if (b != 3) {
            pm_runtime_get(dev);
            do_transfer(dev);
            pm_runtime_put(dev);
            return 0;
        }
    }
    return -1;
}

int split_c(struct device *dev, int a, int b) {
    if (a != 4) {
        if (b != 5) {
            pm_runtime_get(dev);
            do_transfer(dev);
            pm_runtime_put(dev);
            return 0;
        }
    }
    return -1;
}
`

// TestSolverLimitsReachWorkers sets a give-up-inducing split budget in
// Options and requires that parallel workers actually inherit it: the
// merged Stats.Solver counts give-ups and each gave-up function gets a
// DegradeSolverGiveUp diagnostic.
func TestSolverLimitsReachWorkers(t *testing.T) {
	prog, err := lower.SourceString("t.c", splitHeavySrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{
			Workers:      workers,
			SolverLimits: solver.Limits{MaxSplits: 1},
		})
		if res.Stats.Solver.GaveUp == 0 {
			t.Errorf("workers=%d: MaxSplits=1 produced no give-ups; limits not threaded through", workers)
		}
		giveUps := 0
		for _, d := range res.Diagnostics {
			if d.Kind == DegradeSolverGiveUp {
				giveUps++
			}
		}
		if giveUps == 0 {
			t.Errorf("workers=%d: give-ups counted in stats but not diagnosed: %v", workers, res.Diagnostics)
		}
		// Generous limits on the same program must not give up.
		clean := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: workers})
		if clean.Stats.Solver.GaveUp != 0 {
			t.Errorf("workers=%d: default limits gave up %d times", workers, clean.Stats.Solver.GaveUp)
		}
	}
}

// TestTruncationDiagnosed checks that §5.2 budget truncation is surfaced
// as structured diagnostics, not just a counter.
func TestTruncationDiagnosed(t *testing.T) {
	prog, err := lower.SourceString("t.c", figure8Src)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{
		Exec: symexec.Config{MaxPaths: 1, MaxSubcases: 1},
	})
	if res.Stats.FuncsTruncated == 0 {
		t.Fatal("tight budgets truncated nothing")
	}
	if !hasDiag(res.Diagnostics, "radeon_crtc_set_config", DegradePathBudget) {
		t.Errorf("no DegradePathBudget diagnostic: %v", res.Diagnostics)
	}
}

// TestDiagnosticsDeterministic requires the diagnostics slice to be in
// the documented (Fn, Kind, Cause) order regardless of worker scheduling.
func TestDiagnosticsDeterministic(t *testing.T) {
	prog, err := lower.SourceString("t.c", splitHeavySrc)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 4, SolverLimits: solver.Limits{MaxSplits: 1}}
	first := Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
	for i := 0; i < 3; i++ {
		again := Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
		if len(again.Diagnostics) != len(first.Diagnostics) {
			t.Fatalf("diagnostic count varies: %d vs %d", len(again.Diagnostics), len(first.Diagnostics))
		}
		for j := range again.Diagnostics {
			if again.Diagnostics[j] != first.Diagnostics[j] {
				t.Fatalf("diagnostic order varies at %d: %v vs %v", j, again.Diagnostics[j], first.Diagnostics[j])
			}
		}
	}
}
