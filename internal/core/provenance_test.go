package core

import (
	"context"
	"testing"

	"repro/internal/ipp"
	"repro/internal/lower"
	"repro/internal/spec"
)

// TestProvenanceEvidence runs the Figure 2 example with provenance on and
// checks the whole evidence chain: both CFG paths with block positions,
// the applied callee summary entries, the raw-vs-projected constraints,
// the deciding-query reference, and a replay verdict.
func TestProvenanceEvidence(t *testing.T) {
	prog, err := lower.SourceString("fig1.c", figure1Src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	specs.Merge(spec.MustParse("inc_pmcount", incPMCountSpec))
	res := Analyze(context.Background(), prog, specs, Options{Provenance: true})

	if len(res.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	ev := res.Reports[0].Evidence
	if ev == nil {
		t.Fatal("report has no Evidence with Options.Provenance set")
	}
	for side, pe := range map[string]ipp.PathEvidence{"A": ev.PathA, "B": ev.PathB} {
		if len(pe.Blocks) == 0 {
			t.Fatalf("path %s: no recorded blocks", side)
		}
		posSeen := false
		for _, b := range pe.Blocks {
			if b.Pos.IsValid() {
				posSeen = true
			}
		}
		if !posSeen {
			t.Errorf("path %s: no block carries a source position", side)
		}
		if pe.RawCons == "" || pe.Cons == "" {
			t.Errorf("path %s: missing constraint history (raw %q, projected %q)", side, pe.RawCons, pe.Cons)
		}
		if len(pe.Callees) == 0 {
			t.Errorf("path %s: no applied callee entries recorded", side)
		}
		for _, app := range pe.Callees {
			if app.Callee != "reg_read" && app.Callee != "inc_pmcount" {
				t.Errorf("path %s: unexpected callee %q", side, app.Callee)
			}
			if app.Cons == "" {
				t.Errorf("path %s: callee %s entry %d has no instantiated constraint", side, app.Callee, app.EntryIndex)
			}
		}
	}
	// The paths of an IPP differ by construction.
	if ev.PathA.PathIndex == ev.PathB.PathIndex {
		t.Errorf("both sides record path %d", ev.PathA.PathIndex)
	}
	if ev.Query.Index == 0 {
		t.Errorf("deciding query ordinal not captured")
	}
	if ev.Replay == nil {
		t.Fatal("replay post-pass did not run")
	}
	// foo's IPP is concretely reproducible: inc_pmcount's +1 lands on one
	// path and not the other, under the witness arguments.
	if ev.Replay.Verdict != ipp.ReplayConfirmed {
		t.Errorf("replay verdict = %s (deltas %q vs %q, %d attempts), want %s",
			ev.Replay.Verdict, ev.Replay.DeltaA, ev.Replay.DeltaB, ev.Replay.Attempts, ipp.ReplayConfirmed)
	}
}

// TestProvenanceOffAllocFree is the hot-path guard for provenance
// capture (the companion of TestObsOverheadAllocFree): with
// Options.Provenance=false the pipeline must allocate exactly what it
// allocated before the feature existed. In-tree that is pinned two ways:
// the disabled run's allocation count is stable across measurements
// (every provenance allocation is behind the Config.Provenance gate, so
// none can leak into the default path nondeterministically), and
// enabling provenance strictly increases allocations — i.e. the gate,
// not the surrounding code, owns every capture-side allocation. A gate
// regression (say, an unconditional apps/Paths append) shows up as the
// two modes converging.
func TestProvenanceOffAllocFree(t *testing.T) {
	prog, err := lower.SourceString("giveup.c", giveUpSrc(4))
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	ctx := context.Background()
	run := func(prov bool) {
		Analyze(ctx, prog, specs, Options{Workers: 1, NoCache: true, Provenance: prov})
	}
	off1 := testing.AllocsPerRun(10, func() { run(false) })
	off2 := testing.AllocsPerRun(10, func() { run(false) })
	on := testing.AllocsPerRun(10, func() { run(true) })
	// Small slack absorbs runtime noise (map growth timing, GC assists).
	// Under the race detector sync.Pool drops puts at random, so the
	// pooled path-state counts are nondeterministic and the stability
	// check is meaningless; the gating check below still holds.
	if diff := off1 - off2; !raceEnabled && (diff > 5 || diff < -5) {
		t.Errorf("provenance-off allocations unstable: %.0f vs %.0f per run", off1, off2)
	}
	// giveUpSrc(4) reports 4 IPPs: with provenance on, every analyzed
	// path retains its derivation and every report builds an Evidence and
	// replays — far more than the slack above. If this margin collapses,
	// capture allocations moved outside the gate.
	if on < off1+20 {
		t.Errorf("provenance on allocates %.0f/op vs %.0f/op off; capture is no longer gated", on, off1)
	}
}

// TestProvenanceOffNoEvidence pins that the default configuration carries
// no evidence: provenance is strictly opt-in.
func TestProvenanceOffNoEvidence(t *testing.T) {
	res := analyze(t, figure1Src, Options{})
	for _, r := range res.Reports {
		if r.Evidence != nil {
			t.Errorf("report %s carries Evidence without Options.Provenance", r.Fn)
		}
	}
}
