// Two-level work-stealing scheduler (§5.3 refined): the outer level keeps
// the SCC DAG discipline of analyzeParallel — an SCC becomes ready only
// when every callee SCC has completed — but the inner unit of scheduled
// work is one enumerated path of one function, not a whole function. The
// worker that takes an SCC ("owner") runs Step I, publishes the path
// tasks to its own deque, and any idle worker steals from the top while
// the owner drains from the bottom. Steps I and III stay on the owner, so
// per-function state (cache load/save interleaving, summary DB ordering
// within an SCC) is exactly what the sequential scheduler produces.
//
// Determinism: task results land in per-index slots and Job.Finish merges
// them in path order; per-task solver give-ups are accumulated into the
// function's job and the panic cause is chosen by minimum task index, so
// reports, diagnostics, and stats are byte-identical at any Workers
// setting and under any steal interleaving (Options.StealSeed exists so
// the property test can drive many interleavings).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/callgraph"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/symexec"
)

// pathTask is the unit of stealable work: execute path idx of fj's job.
type pathTask struct {
	fj     *funcJob
	idx    int
	queued obs.Span // opened at enqueue, ended when execution starts
}

// funcJob tracks one function's in-flight path tasks across workers.
type funcJob struct {
	fn        string
	job       *symexec.Job
	remaining atomic.Int64  // open tasks; the closer of the last one closes done
	done      chan struct{} // closed when every task has finished
	gaveUp    atomic.Int64  // summed per-task solver give-up deltas

	mu         sync.Mutex
	panicked   bool
	panicIdx   int // minimum panicking task index (-1: Step I itself)
	panicCause string
}

// notePanic records a recovered task panic. When several tasks panic, the
// one with the minimum index wins, which is the panic a sequential run
// would have surfaced — so the DegradePanic cause is schedule-independent.
func (fj *funcJob) notePanic(idx int, r any) {
	fj.mu.Lock()
	if !fj.panicked || idx < fj.panicIdx {
		fj.panicked = true
		fj.panicIdx = idx
		fj.panicCause = fmt.Sprintf("recovered panic: %v", r)
	}
	fj.mu.Unlock()
}

func (fj *funcJob) panicCauseMin() (string, bool) {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.panicCause, fj.panicked
}

// stealWorker is one worker's private state: its solver (shared query
// cache, private counters), its seeded victim-selection RNG, and its
// utilization record.
type stealWorker struct {
	id  int
	slv *solver.Solver
	rng *sched.RNG
	wc  *obs.WorkerCounters
}

// stealRun is the shared state of one scheduling run.
type stealRun struct {
	ctx       context.Context
	prog      *ir.Program
	db        *summary.DB
	toAnalyze func(string) bool
	cache     *cacheState
	opts      Options
	res       *Result

	sccs [][]string

	mu         sync.Mutex // guards waiting/dependents/ready/pending and res
	waiting    []int
	dependents [][]int
	ready      []int
	pending    int

	deques []sched.Deque[pathTask]

	// Eventcount parking: publishers bump events and broadcast; a worker
	// that found nothing re-checks events against the value it read before
	// hunting and sleeps only if nothing was published in between.
	events   atomic.Int64
	allDone  atomic.Bool
	parkMu   sync.Mutex
	parkCond *sync.Cond
}

// analyzeSteal runs the two-level work-stealing scheduler. It replaces
// the function-granularity analyzeParallel: same SCC DAG, same shared
// solver cache, same cancellation drain, but Workers > 1 now helps inside
// a single expensive function instead of idling beside it.
func analyzeSteal(ctx context.Context, prog *ir.Program, g *callgraph.Graph, db *summary.DB, toAnalyze func(string) bool, cache *cacheState, opts Options, res *Result) {
	sccs := g.SCCs()
	n := len(sccs)
	s := &stealRun{
		ctx: ctx, prog: prog, db: db, toAnalyze: toAnalyze,
		cache: cache, opts: opts, res: res,
		sccs: sccs, pending: n,
	}
	s.parkCond = sync.NewCond(&s.parkMu)
	s.waiting = make([]int, n)
	s.dependents = make([][]int, n)
	for i := 0; i < n; i++ {
		for _, dep := range g.SCCSuccs(i) {
			s.waiting[i]++
			s.dependents[dep] = append(s.dependents[dep], i)
		}
	}
	for i := 0; i < n; i++ {
		if s.waiting[i] == 0 {
			s.ready = append(s.ready, i)
		}
	}
	if n == 0 {
		s.allDone.Store(true)
	}

	// One cache for the whole run: every worker shares solved sub-results,
	// so a constraint set solved anywhere in the sweep is a hit everywhere
	// else. (nil under NoCache: queries always run.)
	var scache *solver.Cache
	if !opts.NoCache {
		scache = solver.NewCache()
	}

	workers := opts.Workers
	s.deques = make([]sched.Deque[pathTask], workers)
	reg := opts.Obs.Registry()
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(id int) {
			defer wg.Done()
			w := &stealWorker{
				id:  id,
				slv: solver.NewWithCache(opts.SolverLimits, scache),
				rng: sched.NewRNG(uint64(opts.StealSeed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
				wc:  reg.Worker(id),
			}
			w.slv.SetObs(opts.Obs)
			s.worker(w)
		}(i)
	}
	wg.Wait()
}

// worker is the scheduling loop: own deque first (depth-first on the
// function this worker is driving), then a ready SCC (widen parallelism),
// then a steal (help someone else's function), then park.
func (s *stealRun) worker(w *stealWorker) {
	for {
		if t, ok := s.deques[w.id].PopBottom(); ok {
			s.runTask(t, w, false)
			continue
		}
		ev := s.events.Load()
		if i, ok := s.takeSCC(); ok {
			s.driveSCC(i, w)
			continue
		}
		hunt := s.opts.Obs.Start(obs.PhaseSteal, "")
		if t, ok := s.trySteal(w); ok {
			hunt.End()
			s.runTask(t, w, true)
			continue
		}
		// Failed hunt: the span is dropped — PhaseSteal records only
		// successful steals.
		if s.allDone.Load() {
			return
		}
		s.park(ev)
	}
}

// takeSCC pops a ready SCC, if any.
func (s *stealRun) takeSCC() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ready) == 0 {
		return 0, false
	}
	i := s.ready[len(s.ready)-1]
	s.ready = s.ready[:len(s.ready)-1]
	return i, true
}

// complete marks SCC i done, readies its dependents, and wakes hunters.
func (s *stealRun) complete(i int) {
	s.mu.Lock()
	for _, d := range s.dependents[i] {
		s.waiting[d]--
		if s.waiting[d] == 0 {
			s.ready = append(s.ready, d)
		}
	}
	s.pending--
	last := s.pending == 0
	s.mu.Unlock()
	if last {
		s.allDone.Store(true)
	}
	s.publish()
}

// trySteal scans the other deques from a seeded random start and takes
// the oldest task of the first non-empty one.
func (s *stealRun) trySteal(w *stealWorker) (pathTask, bool) {
	n := len(s.deques)
	start := w.rng.Intn(n)
	for k := 0; k < n; k++ {
		v := start + k
		if v >= n {
			v -= n
		}
		if v == w.id {
			continue
		}
		if t, ok := s.deques[v].StealTop(); ok {
			return t, true
		}
	}
	return pathTask{}, false
}

// publish signals that new work may exist (task pushed, SCC readied, or
// the run finished).
func (s *stealRun) publish() {
	s.events.Add(1)
	s.parkMu.Lock()
	s.parkCond.Broadcast()
	s.parkMu.Unlock()
}

// park sleeps until something is published after the caller read seen.
func (s *stealRun) park(seen int64) {
	s.parkMu.Lock()
	for s.events.Load() == seen && !s.allDone.Load() {
		s.parkCond.Wait()
	}
	s.parkMu.Unlock()
}

// runTask executes one path task on w's solver, with per-task panic
// recovery and give-up attribution to the task's function.
func (s *stealRun) runTask(t pathTask, w *stealWorker, stolen bool) {
	t.queued.End()
	fj := t.fj
	start := time.Now()
	w.slv.SetFunction(fj.fn)
	g0 := w.slv.Stats().GaveUp
	func() {
		defer func() {
			if r := recover(); r != nil {
				fj.notePanic(t.idx, r)
			}
		}()
		fj.job.RunTask(t.idx, w.slv)
	}()
	fj.gaveUp.Add(int64(w.slv.Stats().GaveUp - g0))
	s.opts.Obs.Count(obs.MTasksExecuted, 1)
	if stolen {
		s.opts.Obs.Count(obs.MTasksStolen, 1)
	}
	w.wc.AddTask(stolen, time.Since(start))
	if fj.remaining.Add(-1) == 0 {
		close(fj.done)
	}
}

// driveSCC analyzes the members of SCC i in order (the same sorted order
// the sequential scheduler uses, preserving cache load/save interleaving
// and sibling-summary visibility), then completes the SCC. After
// cancellation it still completes, so dependents unblock and the run
// drains promptly.
func (s *stealRun) driveSCC(i int, w *stealWorker) {
	if s.ctx.Err() == nil {
		for _, fn := range s.sccs[i] {
			if !s.toAnalyze(fn) {
				continue
			}
			if s.cache != nil {
				out, hit, diag := s.cache.load(fn)
				if diag != nil {
					s.mu.Lock()
					s.res.Diagnostics = append(s.res.Diagnostics, *diag)
					s.mu.Unlock()
				}
				if hit {
					s.db.Put(out.sum)
					s.mu.Lock()
					s.res.absorb(out)
					s.mu.Unlock()
					continue
				}
			}
			out := s.analyzeOneStealing(s.prog.Funcs[fn], w)
			s.db.Put(out.sum)
			s.mu.Lock()
			s.res.absorb(out)
			s.mu.Unlock()
			if s.cache != nil {
				if diag := s.cache.save(fn, out); diag != nil {
					s.mu.Lock()
					s.res.Diagnostics = append(s.res.Diagnostics, *diag)
					s.mu.Unlock()
				}
			}
			if out.canceled {
				break
			}
		}
	}
	s.complete(i)
}

// analyzeOneStealing is analyzeOne restructured over the Job seam: the
// owner enumerates (Step I), fans the paths out as stealable tasks (Step
// II), helps the rest of the run while stolen tasks drain, then merges
// and checks (Step III) on its own solver. Outcome fields, diagnostic
// causes, and give-up totals match analyzeOne byte for byte.
func (s *stealRun) analyzeOneStealing(fn *ir.Func, w *stealWorker) funcOutcome {
	opts := s.opts
	var out funcOutcome
	fctx := s.ctx
	if opts.FuncTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(s.ctx, opts.FuncTimeout)
		defer cancel()
	}

	fj := &funcJob{fn: fn.Name, done: make(chan struct{})}
	w.slv.SetFunction(fn.Name)

	// Step I on the owner; a panic here (e.g. from an OnFunction hook) is
	// recorded as index -1 so it outranks any task panic, exactly as it
	// preempts them in a sequential run.
	tPrep := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				fj.notePanic(-1, r)
			}
		}()
		ex := symexec.New(s.db, w.slv, opts.Exec)
		fj.job = ex.Prepare(fctx, fn)
	}()
	w.wc.AddBusy(time.Since(tPrep))

	if fj.job != nil {
		if n := fj.job.NumTasks(); n > 0 {
			fj.remaining.Store(int64(n))
			if n > 1 {
				// Push tasks n-1..1 (reverse, so the owner's LIFO pops
				// ascending) and run task 0 inline; thieves steal from the
				// top, i.e. the highest indices — the ones the owner would
				// reach last.
				for i := n - 1; i >= 1; i-- {
					s.deques[w.id].PushBottom(pathTask{
						fj: fj, idx: i,
						queued: opts.Obs.Start(obs.PhaseQueue, fn.Name),
					})
				}
				s.publish()
			}
			s.runTask(pathTask{fj: fj, idx: 0}, w, false)
			for {
				t, ok := s.deques[w.id].PopBottom()
				if !ok {
					break
				}
				s.runTask(t, w, false)
			}
			// Stolen tasks may still be in flight. Help other functions
			// while waiting rather than idling; when no work is available
			// anywhere, block until the last task closes done.
			for fj.remaining.Load() > 0 {
				if t, ok := s.trySteal(w); ok {
					s.runTask(t, w, true)
					continue
				}
				<-fj.done
			}
		}
	}

	if cause, panicked := fj.panicCauseMin(); panicked {
		out.panicked = true
		out.sum = summary.Default(fn.Name)
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradePanic,
			Cause: cause,
		})
		return out
	}

	// Step III on the owner's solver. Stolen tasks may have relabeled it.
	tCheck := time.Now()
	w.slv.SetFunction(fn.Name)
	g0 := w.slv.Stats().GaveUp
	var sres symexec.Result
	stepPanicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				stepPanicked = true
				out.panicked = true
				out.reports = nil
				out.paths = 0
				out.sum = summary.Default(fn.Name)
				out.diags = append(out.diags[:0], Diagnostic{
					Fn:    fn.Name,
					Kind:  DegradePanic,
					Cause: fmt.Sprintf("recovered panic: %v", r),
				})
			}
		}()
		sres = fj.job.Finish()
		out.reports, out.sum = ipp.CheckWith(fctx, sres, w.slv, ipp.Options{NoBucketing: opts.NoBucketing, Obs: opts.Obs, Provenance: opts.Provenance, FieldKinds: opts.fieldKinds})
		out.paths = sres.NumPaths
	}()
	w.wc.AddBusy(time.Since(tCheck))
	if stepPanicked {
		return out
	}

	if s.ctx.Err() != nil {
		// The whole run is being canceled; the run-level diagnostic is
		// recorded once by analyzeWithDB.
		out.canceled = true
	} else if fctx.Err() != nil {
		out.timedOut = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeTimeout,
			Cause: fmt.Sprintf("function budget %v exceeded after %d paths; default entry added", opts.FuncTimeout, sres.NumPaths),
		})
	}
	if sres.TruncatedPaths {
		out.trunc = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradePathBudget,
			Cause: fmt.Sprintf("path enumeration truncated at MaxPaths=%d", opts.Exec.MaxPaths),
		})
	}
	if sres.TruncatedSubcases {
		out.trunc = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeSubcaseBudget,
			Cause: fmt.Sprintf("sub-case set truncated at MaxSubcases=%d", opts.Exec.MaxSubcases),
		})
	}
	// A function's give-up total is the sum of its tasks' deltas (each
	// measured on whichever solver ran the task) plus the owner's Step III
	// delta. The cache replays give-ups on hits, so the total is the same
	// one analyzeOne computes on a single solver.
	if d := fj.gaveUp.Load() + int64(w.slv.Stats().GaveUp-g0); d > 0 {
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeSolverGiveUp,
			Cause: fmt.Sprintf("%d solver queries exceeded limits and answered SAT conservatively", d),
		})
	}
	return out
}
