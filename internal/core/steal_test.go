package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus/kernelgen"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/symexec"
)

// renderOutcome flattens everything the scheduler determinism contract
// covers to one canonical byte string: rendered reports (with witnesses),
// sorted diagnostics, degradation counters, and the solver totals. Any
// schedule-dependence anywhere in the pipeline shows up as a byte diff.
func renderOutcome(res *Result) string {
	var b strings.Builder
	b.WriteString(renderReports(res))
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	st := res.Stats
	fmt.Fprintf(&b, "analyzed=%d paths=%d trunc=%d timeout=%d panic=%d\n",
		st.FuncsAnalyzed, st.PathsEnumerated, st.FuncsTruncated, st.FuncsTimedOut, st.FuncsPanicked)
	fmt.Fprintf(&b, "solver=%+v\n", st.Solver)
	return b.String()
}

// TestStealDeterminismProperty is the scheduler's determinism property
// test: the work-stealing scheduler, driven through many injected steal
// orders (StealSeed seeds the victim-selection RNG) and worker counts,
// must produce byte-identical reports, diagnostics, and stats to the
// sequential scheduler. NoCache keeps the solver verdict counters
// schedule-independent (with a shared cache, which worker populates an
// entry first legitimately shifts the CacheHits/Sat/Unsat split), so the
// oracle can cover the full stats, not just reports. Budgets are set
// tight enough that truncation and give-up diagnostics — the outputs most
// exposed to per-task accounting bugs — actually occur.
func TestStealDeterminismProperty(t *testing.T) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 23, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 8, ComplexHelpers: 8, OtherFuncs: 30,
	})
	prog := buildCorpus(t, c.Files)

	opts := func(workers int, seed int64) Options {
		return Options{
			Workers:      workers,
			StealSeed:    seed,
			NoCache:      true,
			Exec:         symexec.Config{MaxPaths: 6, MaxSubcases: 4},
			SolverLimits: solver.Limits{MaxSplits: 2},
		}
	}
	want := renderOutcome(Analyze(context.Background(), prog, spec.LinuxDPM(), opts(1, 0)))
	if !strings.Contains(want, "truncated") {
		t.Fatal("corpus produced no truncation diagnostics; oracle too weak")
	}

	for _, workers := range []int{2, 4, 8} {
		for seed := int64(0); seed < 4; seed++ {
			got := renderOutcome(Analyze(context.Background(), prog, spec.LinuxDPM(), opts(workers, seed)))
			if got != want {
				t.Fatalf("workers=%d seed=%d diverged from sequential\n--- got ---\n%s\n--- want ---\n%s",
					workers, seed, got, want)
			}
		}
	}
}

// TestStealSchedulerCountsTasks pins that the scheduler feeds the
// observability layer: a parallel run must count every executed path task
// and register per-worker utilization records.
func TestStealSchedulerCountsTasks(t *testing.T) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 23, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 8, ComplexHelpers: 8, OtherFuncs: 30,
	})
	prog := buildCorpus(t, c.Files)

	reg := obs.NewRegistry()
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: 4, Obs: obs.New(nil, reg)})
	if res.Stats.PathsEnumerated == 0 {
		t.Fatal("corpus enumerated no paths")
	}
	// Every enumerated path of every cold-analyzed function is exactly one
	// task.
	if got := reg.Counter(obs.MTasksExecuted); got != int64(res.Stats.PathsEnumerated) {
		t.Errorf("tasks_executed = %d, want %d (one per enumerated path)", got, res.Stats.PathsEnumerated)
	}
	if reg.NumWorkers() != 4 {
		t.Errorf("registered worker records = %d, want 4", reg.NumWorkers())
	}
	// tasks_stolen is schedule-dependent (may legitimately be zero on a
	// fast corpus), but can never exceed tasks_executed.
	if stolen, tasks := reg.Counter(obs.MTasksStolen), reg.Counter(obs.MTasksExecuted); stolen > tasks {
		t.Errorf("tasks_stolen = %d exceeds tasks_executed = %d", stolen, tasks)
	}
}
