package core

import (
	"context"
	"testing"

	"repro/internal/lower"
	"repro/internal/spec"
)

func TestAnalyzeFilesMatchesLinked(t *testing.T) {
	files := map[string]string{
		"wrapper.c": `
int ss_get(struct ss_iface *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}
void ss_put(struct ss_iface *intf) {
    pm_runtime_put_sync(&intf->dev);
}
`,
		"driver.c": `
int op(struct ss_iface *intf, struct device *aux) {
    int result;
    result = ss_get(intf);
    if (result)
        goto error;
    result = create_thing(aux);
    if (result)
        goto error;
    ss_put(intf);
error:
    return result;
}
`,
	}
	multi, err := AnalyzeFiles(context.Background(), files, spec.LinuxDPM(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Linked analysis for comparison.
	linked := files["wrapper.c"] + files["driver.c"]
	prog, err := lower.SourceString("all.c", linked)
	if err != nil {
		t.Fatal(err)
	}
	full := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})

	if len(multi.Reports) != len(full.Reports) {
		t.Fatalf("multi %d reports, linked %d", len(multi.Reports), len(full.Reports))
	}
	for i := range multi.Reports {
		if multi.Reports[i].Key() != full.Reports[i].Key() {
			t.Errorf("report %d: %s vs %s", i, multi.Reports[i], full.Reports[i])
		}
	}
	// The wrapper's summary was computed in its own group and carried.
	if !multi.DB.Has("ss_get") {
		t.Error("wrapper summary missing from the shared database")
	}
}

func TestAnalyzeFilesMutualDependency(t *testing.T) {
	// a.c and b.c call into each other: one SCC, linked and analyzed
	// together without error.
	files := map[string]string{
		"a.c": `
int af(struct device *dev, int n) {
    if (n == 0) {
        pm_runtime_get(dev);
        pm_runtime_put(dev);
        return 0;
    }
    return bf(dev, n);
}
`,
		"b.c": `
int bf(struct device *dev, int n) {
    if (n == 0)
        return 0;
    return af(dev, n);
}
`,
	}
	res, err := AnalyzeFiles(context.Background(), files, spec.LinuxDPM(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FuncsTotal != 2 {
		t.Errorf("functions: %d", res.Stats.FuncsTotal)
	}
}

func TestAnalyzeFilesParseError(t *testing.T) {
	if _, err := AnalyzeFiles(context.Background(), map[string]string{"x.c": "int broken("}, spec.LinuxDPM(), Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestIncrementalEquivalence(t *testing.T) {
	buggy := `
int wrapper_get(struct device *dev) {
    return pm_runtime_get_sync(dev);
}

int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int unrelated(struct device *dev) {
    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	prog, err := lower.SourceString("v1.c", buggy)
	if err != nil {
		t.Fatal(err)
	}
	first := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	if len(first.Reports) != 1 || first.Reports[0].Fn != "op" {
		t.Fatalf("v1 reports: %v", first.Reports)
	}

	// Fix op (balance the error path); wrapper_get and unrelated are
	// untouched.
	fixed := `
int wrapper_get(struct device *dev) {
    return pm_runtime_get_sync(dev);
}

int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}

int unrelated(struct device *dev) {
    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	prog2, err := lower.SourceString("v2.c", fixed)
	if err != nil {
		t.Fatal(err)
	}
	inc := Incremental(context.Background(), prog2, spec.LinuxDPM(), Options{}, first.DB, []string{"op"})
	full := Analyze(context.Background(), prog2, spec.LinuxDPM(), Options{})

	if len(inc.Reports) != len(full.Reports) {
		t.Fatalf("incremental %d reports, full %d", len(inc.Reports), len(full.Reports))
	}
	// Only op was affected: one function re-analyzed instead of three.
	if inc.Stats.FuncsAnalyzed != 1 {
		t.Errorf("re-analyzed %d functions, want 1", inc.Stats.FuncsAnalyzed)
	}
	if full.Stats.FuncsAnalyzed != 3 {
		t.Errorf("full analysis covered %d, want 3", full.Stats.FuncsAnalyzed)
	}
}

func TestIncrementalCallerReanalyzed(t *testing.T) {
	// Changing the wrapper must re-analyze its caller too (the §5.4
	// recheck of callers once a summary changes).
	src := `
int wrapper_get(struct device *dev) {
    return pm_runtime_get_sync(dev);
}

int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`
	prog, err := lower.SourceString("v1.c", src)
	if err != nil {
		t.Fatal(err)
	}
	first := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})

	// "Fix" the wrapper to conditional semantics: op, written for the
	// transparent contract, is now clean — the incremental recheck of the
	// caller must clear the report.
	fixedSrc := `
int wrapper_get(struct device *dev) {
    int status;
    status = pm_runtime_get_sync(dev);
    if (status < 0)
        pm_runtime_put_noidle(dev);
    return status;
}

int op(struct device *dev) {
    int ret;
    ret = wrapper_get(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`
	prog2, err := lower.SourceString("v2.c", fixedSrc)
	if err != nil {
		t.Fatal(err)
	}
	inc := Incremental(context.Background(), prog2, spec.LinuxDPM(), Options{}, first.DB, []string{"wrapper_get"})
	if inc.Stats.FuncsAnalyzed != 2 {
		t.Errorf("re-analyzed %d, want 2 (wrapper and its caller)", inc.Stats.FuncsAnalyzed)
	}
	for _, r := range inc.Reports {
		t.Errorf("fixed program reported: %s", r)
	}
}
