package core

import (
	"context"

	"repro/internal/callgraph"
	"repro/internal/ir"
	"repro/internal/spec"
	"repro/internal/summary"
)

// Incremental re-analyzes prog after the named functions changed, reusing
// the previous run's summaries for every function whose behavior cannot
// have changed — the incremental recheck of §5.4: once an inconsistency in
// a function is fixed, only that function and its transitive callers need
// re-analysis; "previously calculated summaries of unaffected functions"
// are taken from prev as-is.
//
// The returned result contains reports only for the re-analyzed functions;
// combine with the previous run's reports for untouched code as needed.
func Incremental(ctx context.Context, prog *ir.Program, specs *spec.Specs, opts Options, prev *summary.DB, changed []string) *Result {
	opts = opts.withDefaults()

	// Affected = changed ∪ transitive callers of changed.
	g := callgraph.Build(prog)
	affected := make(map[string]bool, len(changed))
	var queue []string
	for _, fn := range changed {
		if !affected[fn] {
			affected[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, caller := range g.In[fn] {
			if !affected[caller] {
				affected[caller] = true
				queue = append(queue, caller)
			}
		}
	}

	// Seed the database with predefined specs and the previous summaries
	// of unaffected functions.
	db := summary.NewDB()
	if specs != nil {
		specs.ApplyTo(db)
	}
	if prev != nil {
		for _, name := range prev.Names() {
			if !affected[name] && !db.Has(name) {
				db.Put(prev.Get(name))
			}
		}
	}

	return analyzeWithDB(ctx, prog, specs, db, opts, func(fn string) bool { return affected[fn] })
}
