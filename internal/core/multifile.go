package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
	"repro/internal/summary"
)

// AnalyzeFiles implements the separate-compilation mode of §5.3: each
// source file is lowered on its own, a dependency graph over files is
// built (A depends on B when A uses a symbol B defines), strongly
// connected file groups are linked into one unit, and the groups are
// analyzed in reverse topological order with a shared summary database —
// summaries computed for one group are reused, not recomputed, when later
// groups call into it.
//
// Cancellation stops between (and within) file groups: groups analyzed so
// far contribute their reports and diagnostics, later groups are skipped.
func AnalyzeFiles(ctx context.Context, files map[string]string, specs *spec.Specs, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// One registry for the whole multi-file run: per-group Stats.Solver is
	// delta-based, so sharing keeps the Add below exact while -metrics and
	// /debug/vars see a single live view.
	opts.Obs = opts.Obs.EnsureRegistry()

	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)

	// Per-file programs and symbol tables.
	progs := make(map[string]*ir.Program, len(names))
	definedIn := make(map[string]string) // symbol → file
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", n, err)
		}
		p, err := lower.File(f)
		if err != nil {
			return nil, fmt.Errorf("lower %s: %w", n, err)
		}
		progs[n] = p
		for _, fn := range p.Order {
			definedIn[fn] = n
		}
	}

	// File dependency edges.
	deps := make(map[string]map[string]bool, len(names))
	for _, n := range names {
		deps[n] = make(map[string]bool)
		for _, fn := range progs[n].Order {
			for _, callee := range progs[n].Funcs[fn].Callees() {
				if m, ok := definedIn[callee]; ok && m != n {
					deps[n][m] = true
				}
			}
		}
	}

	groups := fileSCCs(names, deps)

	// Shared state across groups.
	db := summary.NewDB()
	if specs != nil {
		specs.ApplyTo(db)
	}
	total := &Result{DB: db, Classification: &Classification{
		Category: make(map[string]Category),
		Analyzed: make(map[string]bool),
	}}

	for _, group := range groups {
		if ctx.Err() != nil {
			// The group during which cancellation fired already recorded
			// the run-level diagnostic; skip the remaining groups.
			break
		}
		linked := ir.NewProgram()
		for _, n := range group {
			linked.Merge(progs[n])
		}
		if err := linked.Validate(); err != nil {
			return nil, err
		}
		res := analyzeWithDB(ctx, linked, specs, db, opts, nil)
		total.Reports = append(total.Reports, res.Reports...)
		total.Diagnostics = append(total.Diagnostics, res.Diagnostics...)
		total.Stats.FuncsTotal += res.Stats.FuncsTotal
		total.Stats.FuncsAnalyzed += res.Stats.FuncsAnalyzed
		total.Stats.PathsEnumerated += res.Stats.PathsEnumerated
		total.Stats.ClassifyTime += res.Stats.ClassifyTime
		total.Stats.AnalyzeTime += res.Stats.AnalyzeTime
		total.Stats.FuncsTruncated += res.Stats.FuncsTruncated
		total.Stats.FuncsTimedOut += res.Stats.FuncsTimedOut
		total.Stats.FuncsPanicked += res.Stats.FuncsPanicked
		total.Stats.Solver.Add(res.Stats.Solver)
		for fn, cat := range res.Classification.Category {
			total.Classification.Category[fn] = cat
		}
		for fn, a := range res.Classification.Analyzed {
			total.Classification.Analyzed[fn] = a
		}
		total.Classification.NumRefcount += res.Classification.NumRefcount
		total.Classification.NumAffectingAnalyzed += res.Classification.NumAffectingAnalyzed
		total.Classification.NumAffectingUnanalyzed += res.Classification.NumAffectingUnanalyzed
		total.Classification.NumOther += res.Classification.NumOther
	}
	sortDiagnostics(total.Diagnostics)
	sortReports(total)
	return total, nil
}

// fileSCCs computes strongly connected file groups in reverse topological
// order (dependencies first) with a deterministic tie-break.
func fileSCCs(names []string, deps map[string]map[string]bool) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0

	succs := func(n string) []string {
		var s []string
		for d := range deps[n] {
			s = append(s, d)
		}
		sort.Strings(s)
		return s
	}

	type frame struct {
		node string
		ei   int
		ss   []string
	}
	var visit func(root string)
	visit = func(root string) {
		var frames []frame
		push := func(v string) {
			index[v] = next
			low[v] = next
			next++
			stack = append(stack, v)
			onStack[v] = true
			frames = append(frames, frame{node: v, ss: succs(v)})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(f.ss) {
				w := f.ss[f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.node] {
					low[p.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				out = append(out, comp)
			}
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return out
}
