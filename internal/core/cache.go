package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/internal/summary"
)

// cacheState binds an open persistent summary store to one analyzeWithDB
// call: the per-function content digests computed for this program plus a
// latch that keeps one disk problem from flooding the diagnostics. With
// Options.CacheURL set, the store is the local directory tiered over the
// fleet store (read-through, write-behind); tiered is non-nil exactly
// then, and finish drains its write-behind queue and reports whether the
// fleet degraded.
type cacheState struct {
	store    store.Backend
	tiered   *remote.Tiered
	digests  map[string]store.Digest
	saveFail atomic.Bool
}

// openCache opens opts.CacheDir (tiered over opts.CacheURL when set) and
// computes the program's digests. On failure it appends a run-level
// cache-invalid diagnostic to res and returns nil — the run proceeds
// cold, it never dies over the cache. A fleet store that cannot even be
// configured (a malformed URL) likewise only costs a cache-remote
// diagnostic, not the local tier.
func openCache(opts Options, g *callgraph.Graph, db *summary.DB, res *Result) *cacheState {
	fp := cacheFingerprint(opts)
	st, err := store.Open(opts.CacheDir, fp, opts.Obs)
	if err != nil {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			Kind:  DegradeCacheInvalid,
			Cause: fmt.Sprintf("summary store disabled for this run: %v", err),
		})
		return nil
	}
	sp := opts.Obs.Start(obs.PhaseCacheIO, "")
	digests := store.Digests(g, db, fp)
	sp.End()
	c := &cacheState{store: st, digests: digests}
	if opts.CacheURL != "" {
		client, err := remote.NewClient(remote.Config{
			URL:         opts.CacheURL,
			Fingerprint: fp.Hash(),
			Obs:         opts.Obs,
		})
		if err != nil {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Kind:  DegradeCacheRemote,
				Cause: fmt.Sprintf("fleet store disabled for this run: %v", err),
			})
			return c
		}
		t := remote.NewTiered(st, client)
		fns := make([]string, 0, len(digests))
		for fn := range digests {
			fns = append(fns, fn)
		}
		t.Prime(fns)
		c.store, c.tiered = t, t
	}
	return c
}

// finish closes out the run's cache use: the write-behind queue is
// drained (so a completed run's summaries really are on the fleet store
// before the process exits) and any remote degradation surfaces as one
// run-level cache-remote diagnostic. Results are never affected — the
// diagnostic records that fleet warmth was lost, not that anything is
// wrong with the report.
func (c *cacheState) finish(res *Result) {
	if c == nil || c.tiered == nil {
		return
	}
	c.tiered.Close()
	if cause := c.tiered.DegradedCause(); cause != "" {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			Kind:  DegradeCacheRemote,
			Cause: fmt.Sprintf("fleet store unavailable, ran from local tier: %s", cause),
		})
	}
}

// cacheFingerprint projects the result-determining options into the
// store's Fingerprint. opts must already be withDefaults()-normalized, so
// every field here holds its effective (not zero) value.
func cacheFingerprint(opts Options) store.Fingerprint {
	lim := opts.SolverLimits.Normalized()
	return store.Fingerprint{
		MaxPaths:             opts.Exec.MaxPaths,
		MaxSubcases:          opts.Exec.MaxSubcases,
		NoPrune:              opts.Exec.NoPrune,
		KeepLocalConds:       opts.Exec.KeepLocalConds,
		MaxCat2Conds:         opts.MaxCat2Conds,
		AnalyzeAll:           opts.AnalyzeAll,
		NoBucketing:          opts.NoBucketing,
		SolverMaxConstraints: lim.MaxConstraints,
		SolverMaxSplits:      lim.MaxSplits,
		SpecDigest:           opts.specDigest,
	}
}

// load looks fn up in the store. hit means out replays a previous run's
// outcome verbatim (including its deterministic diagnostics). A non-nil
// diag reports an invalid entry; the caller appends it and analyzes cold.
func (c *cacheState) load(fn string) (out funcOutcome, hit bool, diag *Diagnostic) {
	d, ok := c.digests[fn]
	if !ok {
		return out, false, nil
	}
	e, err := c.store.Load(fn, d)
	if err != nil {
		return out, false, &Diagnostic{Fn: fn, Kind: DegradeCacheInvalid,
			Cause: fmt.Sprintf("stored entry unusable, analyzed cold: %v", err)}
	}
	if e == nil {
		return out, false, nil
	}
	out.sum = e.Summary
	out.reports = e.Reports
	out.paths = e.Paths
	for _, dg := range e.Diags {
		k, ok := ParseDegradeKind(dg.Kind)
		if !ok || k == DegradeCacheRemote {
			// A kind this build doesn't know means the entry came from an
			// incompatible writer despite the version check; don't trust
			// the rest of it either. cache-remote is equally disqualifying:
			// it is a run-level wall-clock event that save() never
			// persists, so an entry carrying it was not written by us.
			return funcOutcome{}, false, &Diagnostic{Fn: fn, Kind: DegradeCacheInvalid,
				Cause: fmt.Sprintf("stored entry has unexpected diagnostic kind %q, analyzed cold", dg.Kind)}
		}
		out.diags = append(out.diags, Diagnostic{Fn: fn, Kind: k, Cause: dg.Cause})
		if k == DegradePathBudget || k == DegradeSubcaseBudget {
			out.trunc = true
		}
	}
	return out, true, nil
}

// save persists one freshly computed outcome. Outcomes shaped by
// wall-clock events — timeouts, recovered panics, cancellation — are
// never stored: replaying them would pin a transient degradation into
// every future run. Budget truncations and solver give-ups ARE stored;
// they are deterministic given the fingerprinted options. A non-nil diag
// reports the run's first write failure (later ones are suppressed).
func (c *cacheState) save(fn string, out funcOutcome) *Diagnostic {
	if out.timedOut || out.panicked || out.canceled || out.sum == nil {
		return nil
	}
	e := &store.Entry{Fn: fn, Summary: out.sum, Reports: out.reports, Paths: out.paths}
	for _, dg := range out.diags {
		e.Diags = append(e.Diags, store.Diag{Kind: dg.Kind.String(), Cause: dg.Cause})
	}
	if err := c.store.Save(fn, c.digests[fn], e); err != nil {
		if c.saveFail.CompareAndSwap(false, true) {
			return &Diagnostic{Fn: fn, Kind: DegradeCacheInvalid,
				Cause: fmt.Sprintf("store write failed (further write failures suppressed): %v", err)}
		}
	}
	return nil
}
