package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/lower"
	"repro/internal/spec"
	"repro/internal/symexec"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxCat2Conds != 3 || o.Workers != 1 {
		t.Errorf("defaults: %+v", o)
	}
	if o.Exec.MaxPaths != 100 || o.Exec.MaxSubcases != 10 || o.Exec.NoPrune {
		t.Errorf("exec defaults: %+v", o.Exec)
	}
	if w := (Options{Workers: -1}).withDefaults().Workers; w < 1 {
		t.Errorf("all-cores workers: %d", w)
	}
}

// TestWorkersClamp pins the documented -workers contract end to end:
// 0 defaults to 1 (sequential), positive values pass through, and any
// negative value — not just -1 — means runtime.GOMAXPROCS(0).
func TestWorkersClamp(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, 1},
		{1, 1},
		{6, 6},
		{-1, cores},
		{-8, cores},
	}
	for _, c := range cases {
		if got := (Options{Workers: c.in}).withDefaults().Workers; got != c.want {
			t.Errorf("Workers=%d clamps to %d, want %d", c.in, got, c.want)
		}
	}
}

// TestOptionsPartialExecDefaults is the regression test for the old
// withDefaults bug: a partially-populated Exec config used to be replaced
// wholesale whenever MaxPaths was zero, silently discarding the fields the
// caller did set. Each field must now default independently.
func TestOptionsPartialExecDefaults(t *testing.T) {
	o := Options{Exec: symexec.Config{MaxSubcases: 5}}.withDefaults()
	if o.Exec.MaxSubcases != 5 {
		t.Errorf("explicit MaxSubcases overwritten: %+v", o.Exec)
	}
	if o.Exec.MaxPaths != 100 {
		t.Errorf("unset MaxPaths not defaulted: %+v", o.Exec)
	}
	o2 := Options{Exec: symexec.Config{MaxPaths: 7, NoPrune: true}}.withDefaults()
	if o2.Exec.MaxPaths != 7 || o2.Exec.MaxSubcases != 10 || !o2.Exec.NoPrune {
		t.Errorf("partial exec defaults: %+v", o2.Exec)
	}
}

func TestAnalyzeAllCoversEverything(t *testing.T) {
	src := `
int unrelated_math(int a) {
    int v = random();
    if (v > a)
        return v;
    return a;
}

int driver(struct device *dev) {
    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	normal := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	all := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{AnalyzeAll: true})
	if normal.Stats.FuncsAnalyzed != 1 {
		t.Errorf("selective analysis covered %d, want 1", normal.Stats.FuncsAnalyzed)
	}
	if all.Stats.FuncsAnalyzed != 2 {
		t.Errorf("AnalyzeAll covered %d, want 2", all.Stats.FuncsAnalyzed)
	}
	if !all.DB.Has("unrelated_math") {
		t.Error("AnalyzeAll must summarize category-3 functions too")
	}
}

func TestNoCacheSameReports(t *testing.T) {
	prog, err := lower.SourceString("t.c", figure8Src)
	if err != nil {
		t.Fatal(err)
	}
	with := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	without := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{NoCache: true})
	if len(with.Reports) != len(without.Reports) {
		t.Errorf("cache changed results: %d vs %d", len(with.Reports), len(without.Reports))
	}
	if without.Stats.Solver.CacheHits != 0 {
		t.Errorf("NoCache run had %d cache hits", without.Stats.Solver.CacheHits)
	}
}

func TestReportsByFunctionSorted(t *testing.T) {
	src := `
int zz_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
int aa_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	byFn := res.ReportsByFunction()
	if len(byFn) != 2 || byFn[0].Fn != "aa_op" || byFn[1].Fn != "zz_op" {
		t.Errorf("order: %v", byFn)
	}
}

func TestCustomBudgetsRespected(t *testing.T) {
	prog, err := lower.SourceString("t.c", figure8Src)
	if err != nil {
		t.Fatal(err)
	}
	// Pathologically tight budgets still terminate; the truncated function
	// gets a default summary entry.
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{
		Exec: symexec.Config{MaxPaths: 1, MaxSubcases: 1},
	})
	s := res.DB.Get("radeon_crtc_set_config")
	if s == nil || !s.HasDefault {
		t.Errorf("truncated function must carry a default entry: %v", s)
	}
}

// TestPreserveBitTestsKillsFalsePositives exercises the paper's future-work
// extension: with bit tests preserved as stable terms, the §6.4
// false-positive pattern becomes distinguishable and disappears, while real
// bugs are still reported.
func TestPreserveBitTestsKillsFalsePositives(t *testing.T) {
	src := `
void fp_pattern(struct device *dev, struct dpm_opts *o) {
    if (o->flags & 2) {
        pm_runtime_get(dev);
    }
    do_transfer(dev);
    if (o->flags & 2) {
        pm_runtime_put(dev);
    }
}
` + figure8Src
	// Paper-faithful abstraction: the FP fires.
	prog1, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res1 := Analyze(context.Background(), prog1, spec.LinuxDPM(), Options{})
	hit1 := map[string]bool{}
	for _, r := range res1.Reports {
		hit1[r.Fn] = true
	}
	if !hit1["fp_pattern"] || !hit1["radeon_crtc_set_config"] {
		t.Fatalf("baseline reports: %v", res1.Reports)
	}

	// Extended abstraction: the FP vanishes, the real bug stays.
	prog2, err := lower.SourceStringOpts("t.c", src, lower.Options{PreserveBitTests: true})
	if err != nil {
		t.Fatal(err)
	}
	res2 := Analyze(context.Background(), prog2, spec.LinuxDPM(), Options{})
	hit2 := map[string]bool{}
	for _, r := range res2.Reports {
		hit2[r.Fn] = true
	}
	if hit2["fp_pattern"] {
		t.Error("bit-test FP survived PreserveBitTests")
	}
	if !hit2["radeon_crtc_set_config"] {
		t.Error("real bug lost under PreserveBitTests")
	}
}
