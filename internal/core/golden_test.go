package core

import (
	"context"
	"os"
	"testing"

	"repro/internal/lower"
	"repro/internal/spec"
)

// TestGoldenRealisticDriver pins the exact reports on a realistic,
// multi-layer driver file (testdata/rtl_driver.c): the Figure-8-class and
// Figure-9-class bugs and nothing else — wrappers, helpers, the correct
// driver op and the Figure-10 handler all stay silent.
func TestGoldenRealisticDriver(t *testing.T) {
	data, err := os.ReadFile("testdata/rtl_driver.c")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.SourceString("rtl_driver.c", string(data))
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})

	want := map[string]string{
		"rtl_resume": "[priv].dev.pm",
		"rtl_xmit":   "[priv].dev.pm",
	}
	got := map[string]string{}
	for _, r := range res.Reports {
		got[r.Fn] = r.Refcount.Key()
	}
	for fn, rc := range want {
		if got[fn] != rc {
			t.Errorf("expected report on %s (%s), got %q", fn, rc, got[fn])
		}
	}
	for fn := range got {
		if _, ok := want[fn]; !ok {
			t.Errorf("unexpected report on %s", fn)
		}
	}
	// The two-layer wrapper must have a precise conditional summary.
	open := res.DB.Get("rtl_open_hw")
	if open == nil {
		t.Fatal("rtl_open_hw unsummarized")
	}
	var sawInc, sawZero bool
	for _, e := range open.Entries {
		if c, ok := e.Changes["[priv].dev.pm"]; ok && c.Delta == 1 {
			sawInc = true
		}
		if len(e.Changes) == 0 {
			sawZero = true
		}
	}
	if !sawInc || !sawZero {
		t.Errorf("imprecise two-layer wrapper summary:\n%s", open)
	}
	// Classification: the status helper is category 2 and analyzed.
	if res.Classification.Category["rtl_link_ok"] != CatAffecting {
		t.Errorf("rtl_link_ok: %s", res.Classification.Category["rtl_link_ok"])
	}
}

// TestDeepRecursionChain stress-tests SCC handling on a 60-function cycle
// threaded through refcount code; the analysis must terminate and stay
// deterministic.
func TestDeepRecursionChain(t *testing.T) {
	src := "extern int pm_runtime_get(struct device *d);\nextern int pm_runtime_put(struct device *d);\n"
	src += "int hop0(struct device *d, int n);\n"
	for i := 0; i < 60; i++ {
		next := (i + 1) % 60
		src += `
int hop` + itoa(i) + `(struct device *d, int n) {
    if (n == 0) {
        pm_runtime_get(d);
        pm_runtime_put(d);
        return 0;
    }
    return hop` + itoa(next) + `(d, n);
}
`
	}
	prog, err := lower.SourceString("chain.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{})
	b := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: 4})
	if len(a.Reports) != len(b.Reports) {
		t.Errorf("recursion chain nondeterministic: %d vs %d", len(a.Reports), len(b.Reports))
	}
	if a.Stats.FuncsAnalyzed != 60 {
		t.Errorf("analyzed: %d", a.Stats.FuncsAnalyzed)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
