package core

import (
	"fmt"
	"sort"
)

// DegradeKind classifies one graceful-degradation event: a place where the
// analysis gave up precision (or work) to keep the run alive, in the §5.2
// spirit of "partially analyzed functions get a default summary".
type DegradeKind int

const (
	// DegradePathBudget: path enumeration hit MaxPaths; unexplored paths
	// are covered by the default summary entry.
	DegradePathBudget DegradeKind = iota
	// DegradeSubcaseBudget: a path's sub-case fork set hit MaxSubcases.
	DegradeSubcaseBudget
	// DegradeSolverGiveUp: one or more solver queries exceeded
	// solver.Limits and answered SAT conservatively.
	DegradeSolverGiveUp
	// DegradeTimeout: the per-function wall-clock budget
	// (Options.FuncTimeout) expired; the function keeps whatever partial
	// summary was derived plus the default entry.
	DegradeTimeout
	// DegradePanic: symbolic execution of the function panicked; the
	// panic was recovered, the function got a plain default summary, and
	// the run continued.
	DegradePanic
	// DegradeCanceled: the run's context was canceled; remaining
	// functions were skipped and partial results returned.
	DegradeCanceled
	// DegradeCacheInvalid: a persistent summary-store entry (or the store
	// itself) was unreadable — corrupt, truncated, version-skewed, or
	// fingerprint-mismatched — and the affected function was analyzed
	// cold. Results are unaffected; only warm-start time was lost.
	DegradeCacheInvalid
	// DegradeCacheRemote: the fleet summary store (-cache-url) was dead,
	// slow, or served bytes that failed validation, and the run fell back
	// to the local tier. Results are unaffected; only fleet warmth was
	// lost. Always run-level, and never persisted in store entries — it
	// describes this run's wall-clock environment, not the function.
	DegradeCacheRemote
)

// String names the kind for diagnostics output.
func (k DegradeKind) String() string {
	switch k {
	case DegradePathBudget:
		return "path-budget"
	case DegradeSubcaseBudget:
		return "subcase-budget"
	case DegradeSolverGiveUp:
		return "solver-give-up"
	case DegradeTimeout:
		return "timeout"
	case DegradePanic:
		return "panic"
	case DegradeCanceled:
		return "canceled"
	case DegradeCacheInvalid:
		return "cache-invalid"
	case DegradeCacheRemote:
		return "cache-remote"
	}
	return fmt.Sprintf("DegradeKind(%d)", int(k))
}

// ParseDegradeKind maps a DegradeKind.String() form back to the kind. The
// persistent summary store serializes diagnostics by their string names,
// so loading an entry round-trips through this.
func ParseDegradeKind(s string) (DegradeKind, bool) {
	for k := DegradePathBudget; k <= DegradeCacheRemote; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Diagnostic records one degradation event. Fn is empty for run-level
// events (cancellation).
type Diagnostic struct {
	Fn    string
	Kind  DegradeKind
	Cause string
}

// String renders the diagnostic as one line.
func (d Diagnostic) String() string {
	fn := d.Fn
	if fn == "" {
		fn = "(run)"
	}
	return fmt.Sprintf("%s: %s: %s", fn, d.Kind, d.Cause)
}

// sortDiagnostics orders diagnostics deterministically: run-level first,
// then by function, kind, cause — so parallel schedules render
// identically.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Cause < b.Cause
	})
}
