package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/summary"
)

// cacheSrc has one real IPP bug (drv_op's error path returns with the
// count still elevated, indistinguishable from a do_transfer failure on
// the balanced path) plus correct neighbors reached through helpers, so
// warm runs must reproduce both the report and its absence, across
// multiple digest levels.
const cacheSrc = `
extern int do_transfer(struct device *dev);

int helper_get(struct device *d) { return pm_runtime_get_sync(d); }
void helper_put(struct device *d) { pm_runtime_put(d); }

int ok_balanced(struct device *d) {
    int ret = helper_get(d);
    if (ret < 0) {
        helper_put(d);
        return ret;
    }
    helper_put(d);
    return 0;
}

int drv_op(struct device *d) {
    int ret;
    ret = pm_runtime_get_sync(d);
    if (ret < 0)
        return ret;
    ret = do_transfer(d);
    pm_runtime_put(d);
    return ret;
}
`

// analyzeCached runs cacheSrc with a cache directory and returns the
// result plus the run's registry.
func analyzeCached(t *testing.T, dir string, opts Options) (*Result, *obs.Registry) {
	t.Helper()
	prog, err := lower.SourceString("cache.c", cacheSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	reg := obs.NewRegistry()
	opts.CacheDir = dir
	opts.Obs = obs.New(nil, reg)
	return Analyze(context.Background(), prog, spec.LinuxDPM(), opts), reg
}

// renderRun flattens the externally visible outcome for byte comparison.
func renderRun(res *Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// entryFiles lists every committed store entry under dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	if _, err := os.Stat(filepath.Join(dir, "entries")); os.IsNotExist(err) {
		return nil // the store was never opened
	}
	err := filepath.WalkDir(filepath.Join(dir, "entries"), func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".sum") {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk store: %v", err)
	}
	return out
}

func TestCacheWarmRunIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, creg := analyzeCached(t, dir, Options{})
	if h := creg.Counter(obs.MStoreHits); h != 0 {
		t.Fatalf("cold run had %d store hits", h)
	}
	if len(entryFiles(t, dir)) == 0 {
		t.Fatal("cold run saved no entries")
	}
	warm, wreg := analyzeCached(t, dir, Options{})
	if got, want := renderRun(warm), renderRun(cold); got != want {
		t.Errorf("warm output differs from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
	if warm.Stats.PathsEnumerated != cold.Stats.PathsEnumerated || warm.Stats.FuncsAnalyzed != cold.Stats.FuncsAnalyzed {
		t.Errorf("warm stats differ: %+v vs %+v", warm.Stats, cold.Stats)
	}
	h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses)
	if h == 0 || m != 0 {
		t.Errorf("warm run hits/misses = %d/%d, want all hits", h, m)
	}
	if wreg.Snapshot().Phase(obs.PhaseCacheIO).Count == 0 {
		t.Error("warm run recorded no cacheio spans")
	}
}

func TestCacheCorruptEntriesFallBackCold(t *testing.T) {
	dir := t.TempDir()
	cold, _ := analyzeCached(t, dir, Options{})
	for _, p := range entryFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-2] ^= 0x20 // flip a payload byte; checksum catches it
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, wreg := analyzeCached(t, dir, Options{})
	if got, want := reportsOnly(warm), reportsOnly(cold); got != want {
		t.Errorf("reports changed after corruption:\n--- corrupt-warm ---\n%s--- cold ---\n%s", got, want)
	}
	if h := wreg.Counter(obs.MStoreHits); h != 0 {
		t.Errorf("corrupt entries produced %d hits", h)
	}
	var invalid int
	for _, d := range warm.Diagnostics {
		if d.Kind == DegradeCacheInvalid {
			invalid++
			if !strings.Contains(d.Cause, "checksum") {
				t.Errorf("cache-invalid cause = %q, want checksum mention", d.Cause)
			}
		}
	}
	if invalid == 0 {
		t.Error("no cache-invalid diagnostics for corrupted entries")
	}
	// The cold re-analysis repaired the store in place.
	again, areg := analyzeCached(t, dir, Options{})
	if areg.Counter(obs.MStoreMisses) != 0 {
		t.Error("store not repaired by the fallback run")
	}
	if reportsOnly(again) != reportsOnly(cold) {
		t.Error("repaired run differs from cold")
	}
}

func reportsOnly(res *Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestCacheVersionSkewFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	cold, _ := analyzeCached(t, dir, Options{})
	for _, p := range entryFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		skewed := strings.Replace(string(data),
			fmt.Sprintf("RIDSUM %d ", store.FormatVersion), "RIDSUM 99 ", 1)
		if err := os.WriteFile(p, []byte(skewed), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, _ := analyzeCached(t, dir, Options{})
	if reportsOnly(warm) != reportsOnly(cold) {
		t.Error("reports changed under version skew")
	}
	var invalid int
	for _, d := range warm.Diagnostics {
		if d.Kind == DegradeCacheInvalid {
			invalid++
			if !strings.Contains(d.Cause, "version") {
				t.Errorf("cause = %q, want version mention", d.Cause)
			}
		}
	}
	if invalid == 0 {
		t.Error("no cache-invalid diagnostics under version skew")
	}
}

func TestCacheOptionsChangeIsCleanMiss(t *testing.T) {
	dir := t.TempDir()
	analyzeCached(t, dir, Options{})
	// Scheduling options do NOT change digests: a Workers=4 run hits the
	// Workers=1 run's entries.
	_, preg := analyzeCached(t, dir, Options{Workers: 4})
	if h, m := preg.Counter(obs.MStoreHits), preg.Counter(obs.MStoreMisses); h == 0 || m != 0 {
		t.Errorf("Workers=4 warm run hits/misses = %d/%d, want all hits", h, m)
	}
	// Different result-determining options: the fingerprint folds into the
	// digests, so every lookup is an ordinary miss — no diagnostic spam.
	warm, wreg := analyzeCached(t, dir, Options{MaxCat2Conds: 7})
	if h := wreg.Counter(obs.MStoreHits); h != 0 {
		t.Errorf("options change still hit %d entries", h)
	}
	for _, d := range warm.Diagnostics {
		if d.Kind == DegradeCacheInvalid {
			t.Errorf("options change produced a cache-invalid diagnostic: %s", d)
		}
	}
}

func TestCacheParallelWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, _ := analyzeCached(t, dir, Options{Workers: 4})
	warm, wreg := analyzeCached(t, dir, Options{Workers: 4})
	if renderRun(warm) != renderRun(cold) {
		t.Error("parallel warm run differs from parallel cold run")
	}
	if h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses); h == 0 || m != 0 {
		t.Errorf("parallel warm run hits/misses = %d/%d, want all hits", h, m)
	}
}

func TestCacheProvenanceBypassesStore(t *testing.T) {
	dir := t.TempDir()
	res, reg := analyzeCached(t, dir, Options{Provenance: true})
	if h, m := reg.Counter(obs.MStoreHits), reg.Counter(obs.MStoreMisses); h != 0 || m != 0 {
		t.Errorf("provenance run touched the store: hits=%d misses=%d", h, m)
	}
	if len(entryFiles(t, dir)) != 0 {
		t.Error("provenance run wrote store entries")
	}
	var withEvidence int
	for _, r := range res.Reports {
		if r.Evidence != nil {
			withEvidence++
		}
	}
	if withEvidence == 0 {
		t.Error("provenance run produced no evidence")
	}
}

func TestCacheTransientOutcomesNotStored(t *testing.T) {
	// Wall-clock-shaped outcomes (timeout, panic, cancellation) must never
	// be persisted: replaying them would pin a transient degradation.
	st, err := store.Open(t.TempDir(), store.Fingerprint{MaxPaths: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := store.Digest{5}
	c := &cacheState{store: st, digests: map[string]store.Digest{"f": d}}
	sum := summary.Default("f")
	for _, out := range []funcOutcome{
		{sum: sum, timedOut: true},
		{sum: sum, panicked: true},
		{sum: sum, canceled: true},
	} {
		if diag := c.save("f", out); diag != nil {
			t.Fatalf("save of transient outcome returned diagnostic: %v", diag)
		}
		if e, lerr := st.Load("f", d); e != nil || lerr != nil {
			t.Fatalf("transient outcome was persisted: (%v, %v)", e, lerr)
		}
	}
	// A truncated (budget-limited) outcome IS stored, diagnostics intact.
	out := funcOutcome{sum: sum, trunc: true, paths: 3,
		diags: []Diagnostic{{Fn: "f", Kind: DegradePathBudget, Cause: "truncated"}}}
	if diag := c.save("f", out); diag != nil {
		t.Fatalf("save returned diagnostic: %v", diag)
	}
	got, hit, diag := c.load("f")
	if diag != nil || !hit {
		t.Fatalf("load = hit=%v diag=%v, want hit", hit, diag)
	}
	if !got.trunc || len(got.diags) != 1 || got.diags[0].Kind != DegradePathBudget {
		t.Errorf("replayed outcome lost its truncation record: %+v", got)
	}
}

func TestParseDegradeKindRoundTrip(t *testing.T) {
	for k := DegradePathBudget; k <= DegradeCacheInvalid; k++ {
		got, ok := ParseDegradeKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseDegradeKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseDegradeKind("warp-core-breach"); ok {
		t.Error("unknown kind parsed")
	}
}
