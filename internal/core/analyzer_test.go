package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

// analyze lowers src and runs the full pipeline with Linux DPM specs.
func analyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := lower.SourceString("test.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Analyze(context.Background(), prog, spec.LinuxDPM(), opts)
}

// figure1Src is the running example of the paper (Figures 1 and 2),
// including the reg_read implementation given in Figure 2.
const figure1Src = `
void inc_pmcount(struct device *d);

int reg_read(struct device *d, int reg) {
    if (d) {
        int ret;
        ret = random();
        if (ret >= 0)
            return ret;
    }
    return -1;
}

int foo(struct device *dev) {
    assert(dev != NULL);
    int v = reg_read(dev, 0x54);
    if (v <= 0)
        goto exit;
    inc_pmcount(dev);
exit:
    return 0;
}
`

// inc_pmcount has no body above; give it the paper's predefined summary via
// the DSL so the example is self-contained.
const incPMCountSpec = `
summary inc_pmcount(d) {
  entry { cons: [d] != null; changes: [d].pm += 1; return: ; }
  entry { cons: [d] == null; changes: ; return: ; }
}
`

func TestFigure2Foo(t *testing.T) {
	prog, err := lower.SourceString("fig1.c", figure1Src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	specs.Merge(spec.MustParse("inc_pmcount", incPMCountSpec))
	res := Analyze(context.Background(), prog, specs, Options{})

	// Exactly one IPP: foo's paths disagree on [dev].pm.
	if len(res.Reports) != 1 {
		for _, r := range res.Reports {
			t.Logf("report: %s", r)
		}
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	r := res.Reports[0]
	if r.Fn != "foo" {
		t.Errorf("report function = %s, want foo", r.Fn)
	}
	if r.Refcount.Key() != "[dev].pm" {
		t.Errorf("refcount = %s, want [dev].pm", r.Refcount)
	}
	if r.DeltaA == r.DeltaB {
		t.Errorf("deltas must differ: %d vs %d", r.DeltaA, r.DeltaB)
	}
	// The deltas are +1 and 0 in some order.
	if !(r.DeltaA == 1 && r.DeltaB == 0 || r.DeltaA == 0 && r.DeltaB == 1) {
		t.Errorf("deltas = %d, %d; want {0, +1}", r.DeltaA, r.DeltaB)
	}

	// reg_read must have been summarized precisely: an entry with
	// [0] >= 0 under [d] != null, and an entry returning -1.
	rr := res.DB.Get("reg_read")
	if rr == nil {
		t.Fatal("reg_read has no summary")
	}
	text := rr.String()
	if !strings.Contains(text, "([0] >= 0)") {
		t.Errorf("reg_read summary lost [0] >= 0:\n%s", text)
	}
	if !strings.Contains(text, "-1") {
		t.Errorf("reg_read summary lost the -1 entry:\n%s", text)
	}
	if rr.ChangesRefcounts() {
		t.Errorf("reg_read must not change refcounts:\n%s", text)
	}
}

func TestFigure2FooSummaryAfterDrop(t *testing.T) {
	prog, err := lower.SourceString("fig1.c", figure1Src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	specs.Merge(spec.MustParse("inc_pmcount", incPMCountSpec))
	res := Analyze(context.Background(), prog, specs, Options{})

	// One side of the IPP was dropped: all remaining entries of foo must
	// have identical changes (mutually consistent).
	foo := res.DB.Get("foo")
	if foo == nil || len(foo.Entries) == 0 {
		t.Fatal("foo has no summary")
	}
	first := foo.Entries[0]
	for _, e := range foo.Entries[1:] {
		if !e.SameChanges(first) {
			t.Errorf("surviving entries disagree:\n%s", foo)
		}
	}
}

// Figure 8: pm_runtime_get_sync increments even on error; returning early
// on error without a put is an IPP.
const figure8Src = `
int drm_crtc_helper_set_config(struct drm_mode_set *set);

int radeon_crtc_set_config(struct drm_mode_set *set, struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}
`

func TestFigure8GetSyncErrorReturn(t *testing.T) {
	res := analyze(t, figure8Src, Options{})
	if len(res.Reports) != 1 {
		for _, r := range res.Reports {
			t.Logf("report: %s", r)
		}
		t.Fatalf("reports = %d, want 1", len(res.Reports))
	}
	r := res.Reports[0]
	if r.Fn != "radeon_crtc_set_config" || r.Refcount.Key() != "[dev].pm" {
		t.Errorf("got %s on %s", r.Fn, r.Refcount)
	}
}

// The corrected version balances the count on the error path: no IPP.
const figure8FixedSrc = `
int drm_crtc_helper_set_config(struct drm_mode_set *set);

int radeon_crtc_set_config(struct drm_mode_set *set, struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
    ret = drm_crtc_helper_set_config(set);
    pm_runtime_put_autosuspend(dev);
    return ret;
}
`

func TestFigure8FixedIsClean(t *testing.T) {
	res := analyze(t, figure8FixedSrc, Options{})
	if len(res.Reports) != 0 {
		for _, r := range res.Reports {
			t.Errorf("unexpected report: %s", r)
		}
	}
}

// Figure 9: the USB wrapper changes nothing on error; RID summarizes it
// precisely and then catches idmouse_open's missing put on the
// idmouse_create_image error path.
const figure9Src = `
int idmouse_create_image(struct device *dev);

int usb_autopm_get_interface(struct usb_interface *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}

void usb_autopm_put_interface(struct usb_interface *intf) {
    pm_runtime_put_sync(&intf->dev);
}

int idmouse_open(struct usb_interface *interface, struct device *dev) {
    int result;
    result = usb_autopm_get_interface(interface);
    if (result)
        goto error;
    result = idmouse_create_image(dev);
    if (result)
        goto error;
    usb_autopm_put_interface(interface);
error:
    return result;
}
`

func TestFigure9WrapperAndErrorPath(t *testing.T) {
	res := analyze(t, figure9Src, Options{})

	// The wrapper itself is consistent: on success (status >= 0 → return
	// 0 with +1) vs failure (status < 0 → return <0 with net 0), the
	// return value distinguishes the paths. No report on it.
	for _, r := range res.Reports {
		if r.Fn == "usb_autopm_get_interface" {
			t.Errorf("wrapper wrongly reported: %s", r)
		}
	}

	// Its summary must be precise: a +1 entry and a 0-change entry with
	// disjoint return constraints.
	w := res.DB.Get("usb_autopm_get_interface")
	if w == nil {
		t.Fatal("wrapper has no summary")
	}
	var sawInc, sawZero bool
	for _, e := range w.Entries {
		key := "[intf].dev.pm"
		if c, ok := e.Changes[key]; ok && c.Delta == 1 {
			sawInc = true
		}
		if len(e.Changes) == 0 {
			sawZero = true
		}
	}
	if !sawInc || !sawZero {
		t.Errorf("wrapper summary imprecise (inc=%t zero=%t):\n%s", sawInc, sawZero, w)
	}

	// idmouse_open must be reported: the idmouse_create_image error path
	// leaks the +1.
	found := false
	for _, r := range res.Reports {
		if r.Fn == "idmouse_open" && r.Refcount.Key() == "[interface].dev.pm" {
			found = true
		}
	}
	if !found {
		for _, r := range res.Reports {
			t.Logf("report: %s", r)
		}
		t.Error("idmouse_open bug not reported")
	}
}

// Figure 10: the inconsistency is only visible across functions connected
// by a function pointer; RID must NOT report it (documented false
// negative).
const figure10Src = `
int dev_err(struct device *d);

int arizona_irq_thread(int irq, struct arizona *arizona) {
    int ret;
    ret = pm_runtime_get_sync(arizona->dev);
    if (ret < 0) {
        dev_err(arizona->dev);
        return 0;
    }
    pm_runtime_put(arizona->dev);
    return 1;
}
`

func TestFigure10Missed(t *testing.T) {
	res := analyze(t, figure10Src, Options{})
	// One path returns IRQ_NONE(0) with +1, the other IRQ_HANDLED(1) with
	// net 0 — distinguishable by return value, hence no IPP.
	for _, r := range res.Reports {
		t.Errorf("Figure 10 must be a false negative, got: %s", r)
	}
}

// §6.4: a bitmask condition is outside the abstraction; the two paths look
// indistinguishable and RID raises a (false) positive.
const bitmaskFPSrc = `
void do_work(struct device *dev);

void maybe_get(struct device *dev, int flags) {
    if (flags & 4) {
        pm_runtime_get(dev);
        do_work(dev);
    }
}
`

func TestFalsePositiveBitmask(t *testing.T) {
	res := analyze(t, bitmaskFPSrc, Options{})
	if len(res.Reports) != 1 {
		t.Fatalf("expected the documented bitmask false positive, got %d reports", len(res.Reports))
	}
	if res.Reports[0].Fn != "maybe_get" {
		t.Errorf("report on %s", res.Reports[0].Fn)
	}
}

// A distinguishable pair via arguments: flag tested linearly. No report.
const linearGuardSrc = `
void do_work(struct device *dev);

void maybe_get(struct device *dev, int flags) {
    if (flags > 0) {
        pm_runtime_get(dev);
        do_work(dev);
        pm_runtime_put(dev);
    }
}
`

func TestLinearGuardClean(t *testing.T) {
	res := analyze(t, linearGuardSrc, Options{})
	if len(res.Reports) != 0 {
		for _, r := range res.Reports {
			t.Errorf("unexpected: %s", r)
		}
	}
}

// An argument-distinguished inconsistency is NOT an IPP either: the caller
// can tell the paths apart by the argument it passed.
const argGuardSrc = `
void get_if_positive(struct device *dev, int flags) {
    if (flags > 0)
        pm_runtime_get(dev);
}
`

func TestArgumentDistinguishedNoReport(t *testing.T) {
	res := analyze(t, argGuardSrc, Options{})
	if len(res.Reports) != 0 {
		for _, r := range res.Reports {
			t.Errorf("argument-guarded paths are distinguishable: %s", r)
		}
	}
}

func TestClassificationCategories(t *testing.T) {
	src := `
int helper_status(struct device *dev) {
    int v = random();
    if (v > 0)
        return 0;
    return -1;
}

int unrelated_math(int a) {
    int v = random();
    return v;
}

int driver_op(struct device *dev) {
    int st;
    st = helper_status(dev);
    if (st < 0)
        return st;
    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	res := analyze(t, src, Options{})
	cl := res.Classification
	if cl.Category["driver_op"] != CatRefcount {
		t.Errorf("driver_op: %s", cl.Category["driver_op"])
	}
	if cl.Category["helper_status"] != CatAffecting {
		t.Errorf("helper_status: %s", cl.Category["helper_status"])
	}
	if cl.Category["unrelated_math"] != CatOther {
		t.Errorf("unrelated_math: %s", cl.Category["unrelated_math"])
	}
	if !cl.Analyzed["helper_status"] {
		t.Error("helper_status has 1 branch, must pass the ≤3 gate")
	}
	if cl.NumRefcount != 1 || cl.NumAffectingAnalyzed != 1 || cl.NumOther != 1 {
		t.Errorf("counts: %+v", *cl)
	}
}

func TestCategory2GateExcludesComplexHelpers(t *testing.T) {
	src := `
int complex_helper(struct device *dev, int a, int b, int c, int d) {
    if (a > 0) { if (b > 0) { if (c > 0) { if (d > 0) return 1; } } }
    return -1;
}

int driver_op(struct device *dev, int a, int b, int c, int d) {
    int st;
    st = complex_helper(dev, a, b, c, d);
    if (st < 0)
        return st;
    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`
	res := analyze(t, src, Options{})
	cl := res.Classification
	if cl.Category["complex_helper"] != CatAffecting {
		t.Fatalf("complex_helper: %s", cl.Category["complex_helper"])
	}
	if cl.Analyzed["complex_helper"] {
		t.Error("4 branches must exceed the ≤3 gate")
	}
	if cl.NumAffectingUnanalyzed != 1 {
		t.Errorf("counts: %+v", *cl)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	src := figure1Src + figure8Src + figure9Src
	prog, err := lower.SourceString("all.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	specs := spec.LinuxDPM()
	specs.Merge(spec.MustParse("inc_pmcount", incPMCountSpec))

	seq := Analyze(context.Background(), prog, specs, Options{Workers: 1})
	par := Analyze(context.Background(), prog, specs, Options{Workers: 4})
	if len(seq.Reports) != len(par.Reports) {
		t.Fatalf("sequential %d reports, parallel %d", len(seq.Reports), len(par.Reports))
	}
	for i := range seq.Reports {
		if seq.Reports[i].Key() != par.Reports[i].Key() {
			t.Errorf("report %d differs: %s vs %s", i, seq.Reports[i], par.Reports[i])
		}
	}
}

func TestRecursionBroken(t *testing.T) {
	src := `
int even(struct device *dev, int n);

int odd(struct device *dev, int n) {
    if (n == 0)
        return 0;
    return even(dev, n);
}

int even(struct device *dev, int n) {
    if (n == 0) {
        pm_runtime_get(dev);
        pm_runtime_put(dev);
        return 1;
    }
    return odd(dev, n);
}
`
	// Must terminate and not panic; mutual recursion forms one SCC.
	res := analyze(t, src, Options{})
	_ = res
}

func TestLoopUnrollBounded(t *testing.T) {
	src := `
void poll_device(struct device *dev, int n) {
    int i = 0;
    while (i < n) {
        pm_runtime_get(dev);
        do_io(dev);
        pm_runtime_put(dev);
        i = step(i);
    }
}
`
	res := analyze(t, src, Options{})
	// Balanced in every iteration: no report.
	for _, r := range res.Reports {
		t.Errorf("unexpected: %s", r)
	}
}

func TestLoopLeakDetected(t *testing.T) {
	src := `
int try_io(struct device *dev);

int pump(struct device *dev, int n) {
    int i = 0;
    while (i < n) {
        pm_runtime_get(dev);
        if (try_io(dev) < 0)
            return -1;
        pm_runtime_put(dev);
        i = step(i);
    }
    return -1;
}
`
	res := analyze(t, src, Options{})
	// The early return leaks +1 while the clean exit returns -1 too:
	// indistinguishable, so RID reports it.
	found := false
	for _, r := range res.Reports {
		if r.Fn == "pump" {
			found = true
		}
	}
	if !found {
		t.Error("loop error-path leak not reported")
	}
}

func TestVoidFunctionPairs(t *testing.T) {
	src := `
void balanced(struct device *dev, int a) {
    pm_runtime_get(dev);
    if (a > 0)
        do_thing(dev);
    pm_runtime_put(dev);
}
`
	res := analyze(t, src, Options{})
	for _, r := range res.Reports {
		t.Errorf("unexpected: %s", r)
	}
}

func TestStatsPopulated(t *testing.T) {
	res := analyze(t, figure8Src, Options{})
	if res.Stats.FuncsTotal != 1 || res.Stats.FuncsAnalyzed != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if res.Stats.PathsEnumerated < 2 {
		t.Errorf("paths: %d", res.Stats.PathsEnumerated)
	}
	if res.Stats.Solver.Queries == 0 {
		t.Error("solver stats empty")
	}
}

func TestValidateIRBeforeAnalyze(t *testing.T) {
	prog := ir.NewProgram()
	res := Analyze(context.Background(), prog, nil, Options{})
	if len(res.Reports) != 0 || res.Stats.FuncsTotal != 0 {
		t.Error("empty program must analyze to nothing")
	}
}
