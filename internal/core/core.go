package core
