package core

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/pycgen"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
	"repro/internal/sym"
)

// buildCorpus parses and lowers a generated file set in deterministic
// order (the test-local twin of experiments.BuildProgram, which cannot be
// imported here without a cycle).
func buildCorpus(t *testing.T, files map[string]string) *ir.Program {
	t.Helper()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	prog := ir.NewProgram()
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			t.Fatalf("parse %s: %v", n, err)
		}
		if err := lower.IntoOpts(prog, f, lower.Options{}); err != nil {
			t.Fatalf("lower %s: %v", n, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog
}

// renderReports flattens an analysis result to a canonical byte form:
// every report's one-line diagnostic plus its full Detail() evidence
// (entries, deltas, witness), in the deterministic sorted order.
func renderReports(res *Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestOptimizationsAreReportPreserving runs the full pipeline over seeded
// kernelgen and pycgen corpora twice — once with every performance layer
// enabled (hash-consing, shared solver cache, Step III bucketing and its
// pre-filter) and once with all three disabled — and requires byte-identical
// rendered reports, witnesses included.
func TestOptimizationsAreReportPreserving(t *testing.T) {
	type corpus struct {
		name  string
		prog  *ir.Program
		specs *spec.Specs
	}
	kc := kernelgen.Generate(kernelgen.Config{
		Seed: 9, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 50,
	})
	pm := pycgen.Generate(pycgen.Config{
		Name: "equiv", Seed: 4,
		Mix: pycgen.Mix{Common: 12, RIDOnly: 10, CpyOnly: 4, Correct: 15},
	})
	corpora := []corpus{
		{"kernelgen", buildCorpus(t, kc.Files), spec.LinuxDPM()},
		{"pycgen", buildCorpus(t, pm.Files), spec.PythonC()},
	}

	for _, c := range corpora {
		t.Run(c.name, func(t *testing.T) {
			optimized := renderReports(Analyze(context.Background(), c.prog, c.specs, Options{}))

			prev := sym.SetInterning(false)
			defer sym.SetInterning(prev)
			plain := renderReports(Analyze(context.Background(), c.prog, c.specs, Options{
				NoCache:     true,
				NoBucketing: true,
			}))

			if optimized == "" {
				t.Fatal("no reports rendered; corpus not exercising the pipeline")
			}
			if optimized != plain {
				t.Errorf("optimizations changed the reports\n--- optimized ---\n%s\n--- plain ---\n%s",
					optimized, plain)
			}
		})
	}
}

// TestSharedCacheDeterministicAcrossWorkers analyzes the same corpus with
// Workers=1 and Workers=GOMAXPROCS (at least 4, so the SCC scheduler
// really interleaves) and requires identical ordered reports: the shared
// solver cache must never make the outcome depend on which worker solved
// a constraint set first.
func TestSharedCacheDeterministicAcrossWorkers(t *testing.T) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 11, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 8, ComplexHelpers: 6, OtherFuncs: 40,
	})
	prog := buildCorpus(t, c.Files)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	seq := renderReports(Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: 1}))
	if seq == "" {
		t.Fatal("no reports rendered; corpus not exercising the pipeline")
	}
	for round := 0; round < 3; round++ {
		par := renderReports(Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: workers}))
		if par != seq {
			t.Fatalf("round %d: workers=%d reports differ from workers=1\n--- parallel ---\n%s\n--- sequential ---\n%s",
				round, workers, par, seq)
		}
	}
}

// TestParallelSolverStatsAggregated pins the satellite fix: per-worker
// solver counters must survive into Result.Stats when Workers > 1, and the
// shared cache must actually be consulted across workers.
func TestParallelSolverStatsAggregated(t *testing.T) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 11, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 8, ComplexHelpers: 6, OtherFuncs: 40,
	})
	prog := buildCorpus(t, c.Files)

	res := Analyze(context.Background(), prog, spec.LinuxDPM(), Options{Workers: 4})
	st := res.Stats.Solver
	if st.Queries == 0 {
		t.Fatal("parallel analysis dropped solver stats (Queries == 0)")
	}
	if st.Sat+st.Unsat+st.CacheHits == 0 {
		t.Error("parallel analysis dropped solver verdict counters")
	}
	// No CacheHits assertion: single-variable queries bypass the cache by
	// design, so a corpus may legally produce zero hits.
}
