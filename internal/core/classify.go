package core

import (
	"repro/internal/callgraph"
	"repro/internal/slice"
	"repro/internal/summary"
)

// Category classifies a function per §5.2 of the paper.
type Category int

// Categories.
const (
	// CatOther: no effect on any refcount; ignored by the analysis.
	CatOther Category = iota
	// CatRefcount: the function (transitively) changes a refcount.
	CatRefcount
	// CatAffecting: the function's return value can affect how a
	// category-1 function changes refcounts.
	CatAffecting
)

func (c Category) String() string {
	switch c {
	case CatRefcount:
		return "refcount-changing"
	case CatAffecting:
		return "affecting"
	default:
		return "other"
	}
}

// Classification is the result of the two-phase call-graph analysis.
type Classification struct {
	Category map[string]Category
	// Analyzed reports, for category-2 functions, whether the complexity
	// gate (≤ MaxCat2Conds conditional branches) admits them.
	Analyzed map[string]bool

	// Counts in the layout of Table 1.
	NumRefcount            int
	NumAffectingAnalyzed   int
	NumAffectingUnanalyzed int
	NumOther               int
}

// classify runs the two-phase classification. Predefined refcount APIs in
// db seed phase 1; maxCat2Conds is the §5.2 complexity gate (3 in the
// paper).
func classify(g *callgraph.Graph, db *summary.DB, maxCat2Conds int) *Classification {
	cl := &Classification{
		Category: make(map[string]Category),
		Analyzed: make(map[string]bool),
	}

	// A callee "has refcount changes" if a summary in the database says so:
	// predefined refcount APIs always, and — in the multi-file and
	// incremental modes — summaries computed for earlier groups.
	isAPI := func(name string) bool {
		s := db.Get(name)
		return s != nil && s.ChangesRefcounts()
	}

	// Phase 1: reverse topological propagation of "changes refcounts".
	hasRC := make(map[string]bool)
	for _, fn := range g.ReverseTopo() {
		for _, c := range g.All[fn] {
			if hasRC[c] || isAPI(c) {
				hasRC[fn] = true
				break
			}
		}
	}
	for _, fn := range g.Nodes {
		if hasRC[fn] {
			cl.Category[fn] = CatRefcount
		}
	}

	// Phase 2: topological traversal with backward slicing. Processing
	// callers first lets a freshly marked category-2 function be sliced in
	// turn when its own position in the order is reached.
	affectsRC := func(callee string) bool { return hasRC[callee] || isAPI(callee) }
	for _, fn := range g.Topo() {
		cat := cl.Category[fn]
		if cat != CatRefcount && cat != CatAffecting {
			continue
		}
		res := slice.Compute(g.Prog.Funcs[fn], slice.Criteria{
			ReturnValue:   true,
			ArgsOfCallsTo: affectsRC,
		})
		for callee := range res.CalleesInSlice {
			if _, defined := g.Prog.Funcs[callee]; !defined {
				continue
			}
			if cl.Category[callee] == CatOther {
				cl.Category[callee] = CatAffecting
			}
		}
	}

	// Counts and the category-2 complexity gate.
	for _, fn := range g.Nodes {
		switch cl.Category[fn] {
		case CatRefcount:
			cl.NumRefcount++
		case CatAffecting:
			if g.Prog.Funcs[fn].NumConds <= maxCat2Conds {
				cl.Analyzed[fn] = true
				cl.NumAffectingAnalyzed++
			} else {
				cl.NumAffectingUnanalyzed++
			}
		default:
			cl.NumOther++
		}
	}
	return cl
}
