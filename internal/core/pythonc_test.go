package core

import (
	"context"
	"testing"

	"repro/internal/lower"
	"repro/internal/spec"
)

func analyzePyC(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := lower.SourceString("mod.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Analyze(context.Background(), prog, spec.PythonC(), opts)
}

// Error-path leak: the PyList_New failure path and the do_fill failure path
// both return NULL, but only the latter holds a +1 on the list — an IPP on
// the locally created object.
const pyLeakSrc = `
int do_fill(PyObject *lst, PyObject *a);

PyObject *make_list(PyObject *a) {
    PyObject *lst;
    lst = PyList_New(2);
    if (lst == NULL)
        return NULL;
    if (do_fill(lst, a) < 0)
        return NULL;
    return lst;
}
`

func TestPyCErrorPathLeak(t *testing.T) {
	res := analyzePyC(t, pyLeakSrc, Options{})
	found := false
	for _, r := range res.Reports {
		if r.Fn == "make_list" {
			found = true
			if r.DeltaA == r.DeltaB {
				t.Errorf("deltas equal: %s", r)
			}
		}
	}
	if !found {
		for _, r := range res.Reports {
			t.Logf("report: %s", r)
		}
		t.Error("error-path leak not reported")
	}
}

const pyLeakFixedSrc = `
int do_fill(PyObject *lst, PyObject *a);

PyObject *make_list(PyObject *a) {
    PyObject *lst;
    lst = PyList_New(2);
    if (lst == NULL)
        return NULL;
    if (do_fill(lst, a) < 0) {
        Py_DECREF(lst);
        return NULL;
    }
    return lst;
}
`

func TestPyCErrorPathFixed(t *testing.T) {
	res := analyzePyC(t, pyLeakFixedSrc, Options{})
	for _, r := range res.Reports {
		t.Errorf("fixed code reported: %s", r)
	}
}

// The exported summary of an allocation wrapper must expose the +1 on [0]
// so callers are checked against it.
const pyWrapperSrc = `
PyObject *my_new_list(int n) {
    return PyList_New(n);
}

int use_list(PyObject *unused) {
    PyObject *l;
    l = my_new_list(3);
    if (l == NULL)
        return -1;
    if (random() < 0)
        return -1;
    Py_DECREF(l);
    return -1;
}
`

func TestPyCWrapperSummaryAndCallerBug(t *testing.T) {
	res := analyzePyC(t, pyWrapperSrc, Options{})
	w := res.DB.Get("my_new_list")
	if w == nil {
		t.Fatal("wrapper unsummarized")
	}
	sawNewRef := false
	for _, e := range w.Entries {
		if c, ok := e.Changes["[0].rc"]; ok && c.Delta == 1 {
			sawNewRef = true
		}
	}
	if !sawNewRef {
		t.Errorf("wrapper summary lost the new reference:\n%s", w)
	}
	// use_list leaks l on the random()<0 path; both error paths return -1.
	found := false
	for _, r := range res.Reports {
		if r.Fn == "use_list" {
			found = true
		}
	}
	if !found {
		t.Error("caller leak through wrapper not reported")
	}
}

// Same-return, different-changes on arguments (the PyErr_SetObject shape).
const pyArgIncSrc = `
int set_error(PyObject *t, PyObject *v, int code) {
    if (code < 0) {
        PyErr_SetObject(t, v);
        return -1;
    }
    return -1;
}
`

func TestPyCArgumentRefcountIPP(t *testing.T) {
	res := analyzePyC(t, pyArgIncSrc, Options{})
	// code is an argument, so the paths ARE distinguishable by arguments —
	// wait: condition is on code, an argument. Per the IPP definition the
	// pair must be feasible "given the same arguments"; code < 0 and
	// code >= 0 cannot hold together, so NO report is correct here.
	for _, r := range res.Reports {
		t.Errorf("argument-distinguished paths reported: %s", r)
	}
}

// The same shape with the guard on a non-argument (register read) IS an IPP.
const pyRandIncSrc = `
int set_error_rand(PyObject *t, PyObject *v) {
    int code = random();
    if (code < 0) {
        PyErr_SetObject(t, v);
        return -1;
    }
    return -1;
}
`

func TestPyCUnobservableGuardIPP(t *testing.T) {
	res := analyzePyC(t, pyRandIncSrc, Options{})
	if len(res.Reports) == 0 {
		t.Fatal("expected IPP on [t].rc / [v].rc")
	}
	keys := map[string]bool{}
	for _, r := range res.Reports {
		keys[r.Refcount.Key()] = true
	}
	if !keys["[t].rc"] || !keys["[v].rc"] {
		t.Errorf("refcounts reported: %v", keys)
	}
}

// Py_XDECREF's two entries must both instantiate: null-ness of the
// argument selects the entry.
const pyXDecrefSrc = `
void drop(PyObject *o) {
    Py_XDECREF(o);
}
`

func TestPyCXDecrefSummary(t *testing.T) {
	res := analyzePyC(t, pyXDecrefSrc, Options{})
	for _, r := range res.Reports {
		t.Errorf("Py_XDECREF wrapper reported: %s", r)
	}
	d := res.DB.Get("drop")
	if d == nil {
		t.Fatal("drop unsummarized")
	}
	var sawDec, sawNone bool
	for _, e := range d.Entries {
		if c, ok := e.Changes["[o].rc"]; ok && c.Delta == -1 {
			sawDec = true
		}
		if len(e.Changes) == 0 {
			sawNone = true
		}
	}
	if !sawDec || !sawNone {
		t.Errorf("drop summary entries (dec=%t none=%t):\n%s", sawDec, sawNone, d)
	}
}

// A consistent leak — every path increments and nothing ever balances it —
// has no inconsistent pair: RID stays silent (the documented weakness the
// escape-rule baseline covers; Table 2 "Cpychecker-specific").
const pyConsistentLeakSrc = `
void always_leak(PyObject *o) {
    Py_INCREF(o);
}
`

func TestPyCConsistentLeakMissed(t *testing.T) {
	res := analyzePyC(t, pyConsistentLeakSrc, Options{})
	for _, r := range res.Reports {
		t.Errorf("consistent change must not be an IPP: %s", r)
	}
}
