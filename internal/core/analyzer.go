// Package core orchestrates the complete RID analysis: predefined-summary
// installation, call-graph construction, the two-phase function
// classification of §5.2, and summary-based inter-procedural IPP checking
// in reverse topological order (optionally SCC-parallel, §5.3).
package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/internal/symexec"
)

// Options configures an analysis run. The zero value selects the paper's
// evaluation settings.
type Options struct {
	Exec         symexec.Config
	MaxCat2Conds int  // §5.2 complexity gate; default 3
	Workers      int  // parallel SCC workers; default 1, <0 means GOMAXPROCS
	NoCache      bool // disable solver memoization (ablation)
	// NoBucketing disables Step III's changes-signature bucketing and the
	// syntactic contradiction pre-filter (ablation).
	NoBucketing bool
	// AnalyzeAll disables the §5.2 selective analysis and summarizes every
	// function (ablation; expensive on large corpora).
	AnalyzeAll bool
}

func (o Options) withDefaults() Options {
	if o.MaxCat2Conds == 0 {
		o.MaxCat2Conds = 3
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Exec.MaxPaths == 0 {
		o.Exec = symexec.Config{
			MaxPaths:        100,
			MaxSubcases:     10,
			PruneInfeasible: true,
			KeepLocalConds:  o.Exec.KeepLocalConds,
		}
	}
	return o
}

// Stats aggregates run metrics.
type Stats struct {
	FuncsTotal      int
	FuncsAnalyzed   int
	PathsEnumerated int
	ClassifyTime    time.Duration
	AnalyzeTime     time.Duration
	Solver          solver.Stats
}

// Result is the outcome of Analyze.
type Result struct {
	Reports        []*ipp.Report
	DB             *summary.DB
	Classification *Classification
	Stats          Stats
}

// ReportsByFunction returns the reports grouped and sorted by function
// name, for deterministic output.
func (r *Result) ReportsByFunction() []*ipp.Report {
	out := make([]*ipp.Report, len(r.Reports))
	copy(out, r.Reports)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Refcount.Key() < out[j].Refcount.Key()
	})
	return out
}

// Analyze runs RID over prog with the given API specifications.
func Analyze(prog *ir.Program, specs *spec.Specs, opts Options) *Result {
	opts = opts.withDefaults()
	db := summary.NewDB()
	if specs != nil {
		specs.ApplyTo(db)
	}
	return analyzeWithDB(prog, db, opts, nil)
}

// analyzeWithDB runs the pipeline against an existing summary database
// (multi-file and incremental modes carry summaries across calls). When
// only is non-nil, functions it rejects keep their existing summaries and
// are not re-analyzed.
func analyzeWithDB(prog *ir.Program, db *summary.DB, opts Options, only func(string) bool) *Result {
	g := callgraph.Build(prog)

	t0 := time.Now()
	cl := classify(g, db, opts.MaxCat2Conds)
	classifyTime := time.Since(t0)

	// Which functions get summarized?
	toAnalyze := func(fn string) bool {
		if s := db.Get(fn); s != nil && s.Predefined {
			return false // predefined summaries are never re-derived
		}
		if only != nil && !only(fn) {
			return false
		}
		if opts.AnalyzeAll {
			return true
		}
		switch cl.Category[fn] {
		case CatRefcount:
			return true
		case CatAffecting:
			return cl.Analyzed[fn]
		}
		return false
	}

	res := &Result{DB: db, Classification: cl}
	res.Stats.FuncsTotal = len(g.Nodes)
	res.Stats.ClassifyTime = classifyTime

	t1 := time.Now()
	if opts.Workers <= 1 {
		analyzeSequential(prog, g, db, toAnalyze, opts, res)
	} else {
		analyzeParallel(prog, g, db, toAnalyze, opts, res)
	}
	res.Stats.AnalyzeTime = time.Since(t1)

	sortReports(res)
	return res
}

// sortReports orders reports by function then refcount for deterministic
// output.
func sortReports(res *Result) {
	sort.Slice(res.Reports, func(i, j int) bool {
		a, b := res.Reports[i], res.Reports[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Refcount.Key() < b.Refcount.Key()
	})
}

// analyzeOne summarizes a single function and checks its path entries.
func analyzeOne(fn *ir.Func, db *summary.DB, slv *solver.Solver, opts Options) ([]*ipp.Report, *summary.Summary, int) {
	ex := symexec.New(db, slv, opts.Exec)
	sres := ex.Summarize(fn)
	reports, sum := ipp.CheckWith(sres, slv, ipp.Options{NoBucketing: opts.NoBucketing})
	return reports, sum, sres.NumPaths
}

func analyzeSequential(prog *ir.Program, g *callgraph.Graph, db *summary.DB, toAnalyze func(string) bool, opts Options, res *Result) {
	slv := solver.New()
	if opts.NoCache {
		slv.DisableCache()
	}
	for _, fn := range g.ReverseTopo() {
		if !toAnalyze(fn) {
			continue
		}
		reports, sum, paths := analyzeOne(prog.Funcs[fn], db, slv, opts)
		db.Put(sum)
		res.Reports = append(res.Reports, reports...)
		res.Stats.FuncsAnalyzed++
		res.Stats.PathsEnumerated += paths
	}
	res.Stats.Solver = slv.Stats()
}

// analyzeParallel schedules SCCs across workers once their callee SCCs are
// done (§5.3: "Multiple SCCs can be analyzed in parallel as long as the
// SCCs they depend on have been analyzed").
func analyzeParallel(prog *ir.Program, g *callgraph.Graph, db *summary.DB, toAnalyze func(string) bool, opts Options, res *Result) {
	sccs := g.SCCs()
	n := len(sccs)
	// Dependency counts over the SCC DAG.
	waiting := make([]int, n)
	dependents := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, dep := range g.SCCSuccs(i) {
			waiting[i]++
			dependents[dep] = append(dependents[dep], i)
		}
	}

	var (
		mu      sync.Mutex
		ready   = make(chan int, n)
		done    sync.WaitGroup
		pending = n
	)
	for i := 0; i < n; i++ {
		if waiting[i] == 0 {
			ready <- i
		}
	}

	complete := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range dependents[i] {
			waiting[d]--
			if waiting[d] == 0 {
				ready <- d
			}
		}
		pending--
		if pending == 0 {
			close(ready)
		}
	}

	// One cache for the whole run: every SCC worker (and the path workers
	// forked from it) shares solved sub-results, so a constraint set solved
	// anywhere in the sweep is a hit everywhere else.
	var cache *solver.Cache
	if !opts.NoCache {
		cache = solver.NewCache()
	}

	workers := opts.Workers
	done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer done.Done()
			slv := solver.NewWithCache(solver.Limits{}, cache)
			for i := range ready {
				for _, fn := range sccs[i] {
					if !toAnalyze(fn) {
						continue
					}
					reports, sum, paths := analyzeOne(prog.Funcs[fn], db, slv, opts)
					db.Put(sum)
					mu.Lock()
					res.Reports = append(res.Reports, reports...)
					res.Stats.FuncsAnalyzed++
					res.Stats.PathsEnumerated += paths
					mu.Unlock()
				}
				complete(i)
			}
			mu.Lock()
			res.Stats.Solver.Add(slv.Stats())
			mu.Unlock()
		}()
	}
	done.Wait()
}
