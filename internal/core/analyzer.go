// Package core orchestrates the complete RID analysis: predefined-summary
// installation, call-graph construction, the two-phase function
// classification of §5.2, and summary-based inter-procedural IPP checking
// in reverse topological order (optionally SCC-parallel, §5.3).
//
// The pipeline degrades rather than dies: every entry point takes a
// context.Context, a per-function wall-clock budget and per-query solver
// limits can be set in Options, and a panic inside any single function's
// analysis is recovered into a default summary for that function. Every
// such event is recorded in Result.Diagnostics, so callers always get
// partial results plus an exact account of what was degraded.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/callgraph"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/internal/symexec"
)

// Options configures an analysis run. The zero value selects the paper's
// evaluation settings.
type Options struct {
	Exec         symexec.Config
	MaxCat2Conds int // §5.2 complexity gate; default 3
	// Workers is the number of scheduler workers: default 1 (sequential);
	// any negative value means runtime.GOMAXPROCS(0). With Workers > 1 the
	// two-level work-stealing scheduler runs: SCCs are distributed in
	// reverse topological order and, within a function, per-path tasks are
	// stolen between workers. Output is byte-identical at any setting.
	Workers int
	// StealSeed seeds the per-worker victim-selection RNG of the
	// work-stealing scheduler. Any seed produces identical reports,
	// diagnostics, and stats — the determinism property test sweeps seeds
	// to prove it; the knob exists for that test and for reproducing a
	// particular steal interleaving. 0 is fine.
	StealSeed int64
	NoCache   bool // disable solver memoization (ablation)
	// NoBucketing disables Step III's changes-signature bucketing and the
	// syntactic contradiction pre-filter (ablation).
	NoBucketing bool
	// AnalyzeAll disables the §5.2 selective analysis and summarizes every
	// function (ablation; expensive on large corpora).
	AnalyzeAll bool
	// FuncTimeout bounds the wall-clock time spent analyzing any single
	// function (symbolic execution plus IPP checking). When the budget
	// expires the function keeps its partial entries plus the §5.2
	// default entry and the run continues; 0 means unlimited.
	FuncTimeout time.Duration
	// SolverLimits bounds the work of each satisfiability query, for every
	// solver in the run — sequential, SCC workers, and the path workers
	// forked from them. Zero values select the solver's defaults.
	SolverLimits solver.Limits
	// Obs, when non-nil, observes the run: phase spans go to its tracer
	// and event counters to its registry. The pipeline always counts into
	// a registry — a private one is created when Obs carries none — and
	// Stats.Solver is read back from it, so solver totals are exact under
	// any worker count and at any snapshot instant.
	Obs *obs.Obs
	// CacheDir, when non-empty, enables the persistent summary store: a
	// disk-backed, content-addressed cache of per-function outcomes keyed
	// by Merkle-style digests over each function's canonical IR and its
	// callees' digests (internal/store). Functions whose digest matches a
	// stored entry skip Steps I–III and replay the stored summary,
	// reports, and deterministic diagnostics; everything else is analyzed
	// cold and saved back. Unreadable or version-skewed entries fall back
	// to cold analysis with a cache-invalid diagnostic. Ignored when
	// Provenance is set: evidence is never serialized, so `rid explain`
	// always re-derives.
	CacheDir string
	// CacheURL, when non-empty alongside CacheDir, layers a fleet summary
	// store (`rid storeserve`) behind the local one: local misses are
	// fetched from the fleet (validated, then written through to
	// CacheDir), and freshly computed entries are shipped back
	// write-behind. A dead, slow, or corrupt fleet store degrades the run
	// to the local tier with a run-level cache-remote diagnostic — it can
	// never change results and never hang the run. Ignored without
	// CacheDir.
	CacheURL string
	// Provenance records, per report, the full derivation as an
	// ipp.Evidence object (CFG paths with positions, constraint history,
	// applied callee entries, the deciding solver query) and then runs
	// the witness-replay post-pass, annotating each report
	// confirmed-by-replay / replay-diverged / not-replayable. Off by
	// default; the disabled path does no extra work and no extra
	// allocations (TestProvenanceOffAllocFree).
	Provenance bool

	// fieldKinds and specDigest are derived from the run's specs inside
	// analyzeWithDB: the field→resource-kind map tags reports with their
	// resource kind, and the spec fingerprint keys the summary store so
	// caches never cross-contaminate between spec packs.
	fieldKinds map[string]string
	specDigest string
}

// withDefaults normalizes each option independently: an explicitly set
// field is never overwritten just because a sibling field was left zero.
func (o Options) withDefaults() Options {
	if o.MaxCat2Conds == 0 {
		o.MaxCat2Conds = 3
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Exec.MaxPaths == 0 {
		o.Exec.MaxPaths = 100
	}
	if o.Exec.MaxSubcases == 0 {
		o.Exec.MaxSubcases = 10
	}
	return o
}

// Stats aggregates run metrics.
type Stats struct {
	FuncsTotal      int
	FuncsAnalyzed   int
	PathsEnumerated int
	ClassifyTime    time.Duration
	AnalyzeTime     time.Duration
	Solver          solver.Stats

	// Degradation counters (each function is counted at most once per
	// category; see Result.Diagnostics for the per-function detail).
	FuncsTruncated int // path or sub-case budget hit
	FuncsTimedOut  int // per-function FuncTimeout expired
	FuncsPanicked  int // panic recovered into a default summary
}

// Result is the outcome of Analyze.
type Result struct {
	Reports        []*ipp.Report
	DB             *summary.DB
	Classification *Classification
	Stats          Stats
	// Diagnostics records every degradation event of the run in
	// deterministic order: budget truncations, solver give-ups, function
	// timeouts, recovered panics, and run cancellation.
	Diagnostics []Diagnostic
}

// ReportsByFunction returns the reports grouped and sorted by function
// name, for deterministic output.
func (r *Result) ReportsByFunction() []*ipp.Report {
	out := make([]*ipp.Report, len(r.Reports))
	copy(out, r.Reports)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Refcount.Key() < out[j].Refcount.Key()
	})
	return out
}

// Analyze runs RID over prog with the given API specifications. When ctx
// is canceled (or its deadline passes) the run stops promptly at the next
// function or path boundary and returns the partial result, with a
// DegradeCanceled diagnostic recording how far it got.
func Analyze(ctx context.Context, prog *ir.Program, specs *spec.Specs, opts Options) *Result {
	opts = opts.withDefaults()
	db := summary.NewDB()
	if specs != nil {
		specs.ApplyTo(db)
	}
	return analyzeWithDB(ctx, prog, specs, db, opts, nil)
}

// analyzeWithDB runs the pipeline against an existing summary database
// (multi-file and incremental modes carry summaries across calls). When
// only is non-nil, functions it rejects keep their existing summaries and
// are not re-analyzed. specs is used only by the provenance replay
// post-pass (extern callees execute their predefined summaries); nil is
// fine without Options.Provenance.
func analyzeWithDB(ctx context.Context, prog *ir.Program, specs *spec.Specs, db *summary.DB, opts Options, only func(string) bool) *Result {
	// Every run counts into a registry (a private one when the caller did
	// not attach an observer) so Stats.Solver can be read back as the
	// counter delta across this call — exact under Workers>1, and immune
	// to the old snapshot-before-diagnostics ordering hazard. Multi-file
	// runs call this repeatedly against a shared registry; the delta keeps
	// per-call stats additive.
	opts.Obs = opts.Obs.EnsureRegistry()
	opts.Exec.Obs = opts.Obs
	if opts.Provenance {
		opts.Exec.Provenance = true
	}
	if specs != nil {
		opts.fieldKinds = specs.FieldKinds()
		opts.specDigest = specs.Fingerprint()
	}
	reg := opts.Obs.Registry()
	solverBase := solverCounters(reg)
	runSpan := opts.Obs.Start(obs.PhaseRun, "")

	g := callgraph.Build(prog)

	t0 := time.Now()
	classifySpan := opts.Obs.Start(obs.PhaseClassify, "")
	cl := classify(g, db, opts.MaxCat2Conds)
	classifySpan.End()
	classifyTime := time.Since(t0)

	// Which functions get summarized?
	toAnalyze := func(fn string) bool {
		if s := db.Get(fn); s != nil && s.Predefined {
			return false // predefined summaries are never re-derived
		}
		if only != nil && !only(fn) {
			return false
		}
		if opts.AnalyzeAll {
			return true
		}
		switch cl.Category[fn] {
		case CatRefcount:
			return true
		case CatAffecting:
			return cl.Analyzed[fn]
		}
		return false
	}

	res := &Result{DB: db, Classification: cl}
	res.Stats.FuncsTotal = len(g.Nodes)
	res.Stats.ClassifyTime = classifyTime

	// The persistent summary store replays whole per-function outcomes, so
	// it engages after classification (always cheap, always fresh) and
	// before the summarization sweep. Provenance runs bypass it: evidence
	// is never serialized, and explain must observe a real derivation.
	var cache *cacheState
	if opts.CacheDir != "" && !opts.Provenance {
		cache = openCache(opts, g, db, res)
	}

	t1 := time.Now()
	if opts.Workers <= 1 {
		analyzeSequential(ctx, prog, g, db, toAnalyze, cache, opts, res)
	} else {
		analyzeSteal(ctx, prog, g, db, toAnalyze, cache, opts, res)
	}
	res.Stats.AnalyzeTime = time.Since(t1)
	// Drain the fleet write-behind queue and surface any remote
	// degradation before diagnostics are sorted into their final order.
	cache.finish(res)

	if err := ctx.Err(); err != nil {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			Kind: DegradeCanceled,
			Cause: fmt.Sprintf("%v; %d of %d functions analyzed",
				err, res.Stats.FuncsAnalyzed, res.Stats.FuncsTotal),
		})
	}
	sortDiagnostics(res.Diagnostics)
	sortReports(res)
	if opts.Provenance {
		// Replay runs after sorting, sequentially, with seeds derived
		// from function names only — verdicts are identical at any
		// Workers setting (TestReplayDeterministicAcrossWorkers).
		replayReports(ctx, prog, specs, res, opts.Obs)
	}
	// Read the solver totals back from the registry only now, after every
	// worker has exited and all diagnostics are finalized.
	res.Stats.Solver = solverCounters(reg).Sub(solverBase)
	runSpan.End()
	return res
}

// solverCounters reads the registry's solver counters as a solver.Stats.
func solverCounters(r *obs.Registry) solver.Stats {
	return solver.Stats{
		Queries:   int(r.Counter(obs.MSolverQueries)),
		CacheHits: int(r.Counter(obs.MSolverCacheHits)),
		Sat:       int(r.Counter(obs.MSolverSat)),
		Unsat:     int(r.Counter(obs.MSolverUnsat)),
		GaveUp:    int(r.Counter(obs.MSolverGaveUp)),
	}
}

// sortReports orders reports by function then refcount for deterministic
// output.
func sortReports(res *Result) {
	sort.Slice(res.Reports, func(i, j int) bool {
		a, b := res.Reports[i], res.Reports[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Refcount.Key() < b.Refcount.Key()
	})
}

// funcOutcome is everything analyzing one function produced, including
// its degradation record, so sequential and parallel schedulers merge
// results identically.
type funcOutcome struct {
	reports  []*ipp.Report
	sum      *summary.Summary
	paths    int
	diags    []Diagnostic
	trunc    bool // a path or sub-case budget was hit
	timedOut bool // the per-function budget expired
	panicked bool // a panic was recovered
	canceled bool // the run context (not the per-function budget) expired
}

// analyzeOne summarizes a single function and checks its path entries.
// It never panics: a panic anywhere in symbolic execution or IPP checking
// is recovered into a default summary plus a DegradePanic diagnostic, so
// one pathological function cannot take down the run. Solver give-ups are
// attributed to the function by differencing the worker solver's counters
// (each worker owns its solver, so the delta is exact).
func analyzeOne(ctx context.Context, fn *ir.Func, db *summary.DB, slv *solver.Solver, opts Options) funcOutcome {
	var out funcOutcome
	fctx := ctx
	if opts.FuncTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, opts.FuncTimeout)
		defer cancel()
	}
	gaveUp0 := slv.Stats().GaveUp

	var sres symexec.Result
	func() {
		defer func() {
			if r := recover(); r != nil {
				out.panicked = true
				out.reports = nil
				out.paths = 0
				out.sum = summary.Default(fn.Name)
				out.diags = append(out.diags, Diagnostic{
					Fn:    fn.Name,
					Kind:  DegradePanic,
					Cause: fmt.Sprintf("recovered panic: %v", r),
				})
			}
		}()
		ex := symexec.New(db, slv, opts.Exec)
		sres = ex.Summarize(fctx, fn)
		out.reports, out.sum = ipp.CheckWith(fctx, sres, slv, ipp.Options{NoBucketing: opts.NoBucketing, Obs: opts.Obs, Provenance: opts.Provenance, FieldKinds: opts.fieldKinds})
		out.paths = sres.NumPaths
	}()
	if out.panicked {
		return out
	}

	if ctx.Err() != nil {
		// The whole run is being canceled; the run-level diagnostic is
		// recorded once by analyzeWithDB.
		out.canceled = true
	} else if fctx.Err() != nil {
		out.timedOut = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeTimeout,
			Cause: fmt.Sprintf("function budget %v exceeded after %d paths; default entry added", opts.FuncTimeout, sres.NumPaths),
		})
	}
	if sres.TruncatedPaths {
		out.trunc = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradePathBudget,
			Cause: fmt.Sprintf("path enumeration truncated at MaxPaths=%d", opts.Exec.MaxPaths),
		})
	}
	if sres.TruncatedSubcases {
		out.trunc = true
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeSubcaseBudget,
			Cause: fmt.Sprintf("sub-case set truncated at MaxSubcases=%d", opts.Exec.MaxSubcases),
		})
	}
	if d := slv.Stats().GaveUp - gaveUp0; d > 0 {
		out.diags = append(out.diags, Diagnostic{
			Fn:    fn.Name,
			Kind:  DegradeSolverGiveUp,
			Cause: fmt.Sprintf("%d solver queries exceeded limits and answered SAT conservatively", d),
		})
	}
	return out
}

// absorb folds one function's outcome into the result. Callers in
// parallel mode must hold the result lock.
func (res *Result) absorb(out funcOutcome) {
	res.Reports = append(res.Reports, out.reports...)
	res.Diagnostics = append(res.Diagnostics, out.diags...)
	res.Stats.FuncsAnalyzed++
	res.Stats.PathsEnumerated += out.paths
	if out.trunc {
		res.Stats.FuncsTruncated++
	}
	if out.timedOut {
		res.Stats.FuncsTimedOut++
	}
	if out.panicked {
		res.Stats.FuncsPanicked++
	}
}

func analyzeSequential(ctx context.Context, prog *ir.Program, g *callgraph.Graph, db *summary.DB, toAnalyze func(string) bool, cache *cacheState, opts Options, res *Result) {
	slv := solver.NewWithLimits(opts.SolverLimits)
	slv.SetObs(opts.Obs)
	if opts.NoCache {
		slv.DisableCache()
	}
	for _, fn := range g.ReverseTopo() {
		if ctx.Err() != nil {
			break
		}
		if !toAnalyze(fn) {
			continue
		}
		if cache != nil {
			out, hit, diag := cache.load(fn)
			if diag != nil {
				res.Diagnostics = append(res.Diagnostics, *diag)
			}
			if hit {
				db.Put(out.sum)
				res.absorb(out)
				continue
			}
		}
		slv.SetFunction(fn)
		out := analyzeOne(ctx, prog.Funcs[fn], db, slv, opts)
		db.Put(out.sum)
		res.absorb(out)
		if cache != nil {
			if diag := cache.save(fn, out); diag != nil {
				res.Diagnostics = append(res.Diagnostics, *diag)
			}
		}
		if out.canceled {
			break
		}
	}
}
