// Package summary defines function summaries (§4.3 of the RID paper): sets
// of entries (cons, changes, return) describing how a function changes
// refcounts and what it returns under constraints on its arguments and
// return value. It also provides the summary database shared across the
// inter-procedural analysis and JSON persistence for the multi-file mode
// of §5.3.
package summary

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sym"
)

// Entry is one summary entry: under constraint Cons, the function applies
// Changes to refcounts and returns Ret (nil when no value is returned or
// the function is void).
type Entry struct {
	Cons    sym.Set
	Changes map[string]Change // keyed by Change.RC.Key()
	Ret     *sym.Expr
}

// Change is a net delta to one refcount, identified by a symbolic
// expression over the function's arguments and return value (e.g.
// [dev].pm or [0].rc).
type Change struct {
	RC    *sym.Expr
	Delta int
}

// NewEntry returns an entry with no changes. The Changes map is allocated
// lazily by AddChange: most entries in real corpora never change a
// refcount, and entries are the highest-volume allocation of Step II.
func NewEntry(cons sym.Set, ret *sym.Expr) *Entry {
	return &Entry{Cons: cons, Ret: ret}
}

// AddChange accumulates delta onto the refcount rc; a zero net change is
// removed from the map.
func (e *Entry) AddChange(rc *sym.Expr, delta int) {
	if e.Changes == nil {
		e.Changes = make(map[string]Change, 4)
	}
	key := rc.Key()
	c := e.Changes[key]
	c.RC = rc
	c.Delta += delta
	if c.Delta == 0 {
		delete(e.Changes, key)
	} else {
		e.Changes[key] = c
	}
}

// Clone returns a deep-enough copy (constraint sets are immutable).
func (e *Entry) Clone() *Entry {
	n := &Entry{Cons: e.Cons, Ret: e.Ret}
	if len(e.Changes) > 0 {
		n.Changes = make(map[string]Change, len(e.Changes))
		for k, v := range e.Changes {
			n.Changes[k] = v
		}
	}
	return n
}

// SameChanges reports whether two entries have identical refcount changes
// (the consistency test of §4.5: inconsistent iff some refcount differs,
// with absent keys counting as zero).
func (e *Entry) SameChanges(o *Entry) bool {
	if len(e.Changes) != len(o.Changes) {
		return false
	}
	for k, c := range e.Changes {
		if oc, ok := o.Changes[k]; !ok || oc.Delta != c.Delta {
			return false
		}
	}
	return true
}

// DifferingRefcounts returns the refcount expressions whose deltas differ
// between the entries, sorted by key for determinism.
func (e *Entry) DifferingRefcounts(o *Entry) []*sym.Expr {
	seen := make(map[string]*sym.Expr)
	for k, c := range e.Changes {
		if oc := o.Changes[k]; oc.Delta != c.Delta {
			seen[k] = c.RC
		}
	}
	for k, c := range o.Changes {
		if ec := e.Changes[k]; ec.Delta != c.Delta {
			seen[k] = c.RC
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*sym.Expr, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// Instantiate returns the entry with formal arguments and [0] replaced
// according to m (Algorithm 1: "formal arguments are replaced by the
// expressions of actual arguments and [0] is replaced by the variable
// holding the return value").
func (e *Entry) Instantiate(m map[string]*sym.Expr) *Entry {
	return e.InstantiateInto(&Entry{}, m)
}

// InstantiateInto is Instantiate writing the result into dst, reusing
// dst's Changes map. It returns dst. The symbolic executor calls this
// with a per-task scratch entry: an instantiated entry is fully consumed
// (conditions folded into the path state, changes accumulated) before the
// next instantiation reuses the scratch, and everything the consumer
// keeps — interned expressions, the substituted constraint Set — is
// immutable, so reuse never aliases live state.
func (e *Entry) InstantiateInto(dst *Entry, m map[string]*sym.Expr) *Entry {
	dst.Cons = e.Cons.Subst(m)
	dst.Ret = nil
	if e.Ret != nil {
		dst.Ret = e.Ret.Subst(m)
	}
	clear(dst.Changes)
	if len(e.Changes) > 0 {
		if dst.Changes == nil {
			dst.Changes = make(map[string]Change, len(e.Changes))
		}
		for _, c := range e.Changes {
			rc := c.RC.Subst(m)
			nc := dst.Changes[rc.Key()]
			nc.RC = rc
			nc.Delta += c.Delta
			dst.Changes[rc.Key()] = nc
		}
	}
	return dst
}

// ChangesSignature returns a canonical string identifying the entry's
// refcount changes: the sorted (refcount key, delta) pairs. Two entries
// have equal signatures iff SameChanges holds, so Step III can bucket
// entries by signature and only cross-bucket pairs can form an IPP.
func (e *Entry) ChangesSignature() string {
	if len(e.Changes) == 0 {
		return ""
	}
	keys := make([]string, 0, len(e.Changes))
	n := 0
	for k := range e.Changes {
		keys = append(keys, k)
		n += len(k) + 24
	}
	sort.Strings(keys)
	var b strings.Builder
	b.Grow(n)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(e.Changes[k].Delta))
		b.WriteByte(';')
	}
	return b.String()
}

// SortedChanges returns the changes sorted by refcount key.
func (e *Entry) SortedChanges() []Change {
	keys := make([]string, 0, len(e.Changes))
	for k := range e.Changes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Change, len(keys))
	for i, k := range keys {
		out[i] = e.Changes[k]
	}
	return out
}

// String renders the entry in the paper's (cons, changes, return) layout.
func (e *Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cons: %s; changes:", e.Cons)
	if len(e.Changes) == 0 {
		b.WriteString(" -")
	}
	for _, c := range e.SortedChanges() {
		fmt.Fprintf(&b, " %s:%+d", c.RC, c.Delta)
	}
	b.WriteString("; return: ")
	if e.Ret == nil {
		b.WriteString("-")
	} else {
		b.WriteString(e.Ret.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------

// Summary is the summary of one function.
type Summary struct {
	Fn         string
	Params     []string // formal parameter names the entries' [arg] terms use
	Entries    []*Entry
	HasDefault bool // carries a default entry (§5.2: partial analysis)
	Predefined bool // given as an API specification, not computed
}

// New returns an empty summary for fn.
func New(fn string) *Summary { return &Summary{Fn: fn} }

// Default returns the default summary used for functions that are unknown
// or not (fully) analyzed: no refcount changes and no conditions on the
// return value.
func Default(fn string) *Summary {
	s := New(fn)
	s.HasDefault = true
	s.Entries = append(s.Entries, NewEntry(sym.True(), sym.Ret()))
	return s
}

// ChangesRefcounts reports whether any entry changes any refcount — the
// category-1 test of §5.2.
func (s *Summary) ChangesRefcounts() bool {
	for _, e := range s.Entries {
		if len(e.Changes) > 0 {
			return true
		}
	}
	return false
}

// String renders all entries, one per line.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary %s:\n", s.Fn)
	for i, e := range s.Entries {
		fmt.Fprintf(&b, "  entry %d: %s\n", i+1, e)
	}
	return b.String()
}

// ---------------------------------------------------------------------------

// DB is the function summary database. All methods are safe for concurrent
// use; stored summaries themselves are treated as immutable after Put.
type DB struct {
	mu sync.RWMutex
	m  map[string]*Summary
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{m: make(map[string]*Summary)} }

// Get returns the summary for fn, or nil.
func (db *DB) Get(fn string) *Summary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.m[fn]
}

// Put stores a summary, replacing any previous one.
func (db *DB) Put(s *Summary) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.m[s.Fn] = s
}

// Has reports whether fn has a summary.
func (db *DB) Has(fn string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.m[fn]
	return ok
}

// Len returns the number of summaries stored.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.m)
}

// Names returns the summarized function names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.m))
	for k := range db.m {
		out = append(out, k)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Merge copies every summary from other into db (other wins on conflict).
func (db *DB) Merge(other *DB) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	for k, v := range other.m {
		db.m[k] = v
	}
}
