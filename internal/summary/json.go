package summary

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/sym"
)

// The wire format deliberately mirrors the paper's entry triple so saved
// databases are human-readable. Expressions serialize structurally rather
// than as strings, avoiding a re-parser.

type exprDTO struct {
	Kind string   `json:"kind"`
	Int  int64    `json:"int,omitempty"`
	Name string   `json:"name,omitempty"`
	Base *exprDTO `json:"base,omitempty"`
	Pred string   `json:"pred,omitempty"`
	A    *exprDTO `json:"a,omitempty"`
	B    *exprDTO `json:"b,omitempty"`
}

type changeDTO struct {
	RC    *exprDTO `json:"rc"`
	Delta int      `json:"delta"`
}

type entryDTO struct {
	Cons    []*exprDTO  `json:"cons"`
	Changes []changeDTO `json:"changes,omitempty"`
	Ret     *exprDTO    `json:"return,omitempty"`
}

type summaryDTO struct {
	Fn         string      `json:"fn"`
	Params     []string    `json:"params,omitempty"`
	Entries    []*entryDTO `json:"entries"`
	HasDefault bool        `json:"has_default,omitempty"`
	Predefined bool        `json:"predefined,omitempty"`
}

type dbDTO struct {
	Summaries []*summaryDTO `json:"summaries"`
}

var kindNames = map[sym.Kind]string{
	sym.KConst: "const", sym.KNull: "null", sym.KArg: "arg", sym.KRet: "ret",
	sym.KLocal: "local", sym.KFresh: "fresh", sym.KField: "field", sym.KCond: "cond",
}

var kindByName = func() map[string]sym.Kind {
	m := make(map[string]sym.Kind, len(kindNames))
	for k, v := range kindNames {
		m[v] = k
	}
	return m
}()

var predByName = map[string]ir.Pred{
	"==": ir.EQ, "!=": ir.NE, "<": ir.LT, "<=": ir.LE, ">": ir.GT, ">=": ir.GE,
}

func exprToDTO(e *sym.Expr) *exprDTO {
	if e == nil {
		return nil
	}
	d := &exprDTO{Kind: kindNames[e.Kind]}
	switch e.Kind {
	case sym.KConst:
		d.Int = e.Int
	case sym.KArg, sym.KLocal, sym.KFresh:
		d.Name = e.Name
	case sym.KField:
		d.Name = e.Name
		d.Base = exprToDTO(e.Base)
	case sym.KCond:
		d.Pred = e.Pred.String()
		d.A = exprToDTO(e.A)
		d.B = exprToDTO(e.B)
	}
	return d
}

func exprFromDTO(d *exprDTO) (*sym.Expr, error) {
	if d == nil {
		return nil, nil
	}
	kind, ok := kindByName[d.Kind]
	if !ok {
		return nil, fmt.Errorf("unknown expression kind %q", d.Kind)
	}
	switch kind {
	case sym.KConst:
		return sym.Const(d.Int), nil
	case sym.KNull:
		return sym.Null(), nil
	case sym.KArg:
		return sym.Arg(d.Name), nil
	case sym.KRet:
		return sym.Ret(), nil
	case sym.KLocal:
		return sym.Local(d.Name), nil
	case sym.KFresh:
		return sym.Fresh(d.Name), nil
	case sym.KField:
		base, err := exprFromDTO(d.Base)
		if err != nil {
			return nil, err
		}
		return sym.Field(base, d.Name), nil
	case sym.KCond:
		pred, ok := predByName[d.Pred]
		if !ok {
			return nil, fmt.Errorf("unknown predicate %q", d.Pred)
		}
		a, err := exprFromDTO(d.A)
		if err != nil {
			return nil, err
		}
		b, err := exprFromDTO(d.B)
		if err != nil {
			return nil, err
		}
		return sym.Cond(a, pred, b), nil
	}
	return nil, fmt.Errorf("unhandled kind %q", d.Kind)
}

func entryToDTO(e *Entry) *entryDTO {
	d := &entryDTO{Ret: exprToDTO(e.Ret)}
	for _, c := range e.Cons.Conds() {
		d.Cons = append(d.Cons, exprToDTO(c))
	}
	for _, c := range e.SortedChanges() {
		d.Changes = append(d.Changes, changeDTO{RC: exprToDTO(c.RC), Delta: c.Delta})
	}
	return d
}

func entryFromDTO(d *entryDTO) (*Entry, error) {
	ret, err := exprFromDTO(d.Ret)
	if err != nil {
		return nil, err
	}
	e := NewEntry(sym.True(), ret)
	for _, cd := range d.Cons {
		c, err := exprFromDTO(cd)
		if err != nil {
			return nil, err
		}
		e.Cons = e.Cons.And(c)
	}
	for _, cd := range d.Changes {
		rc, err := exprFromDTO(cd.RC)
		if err != nil {
			return nil, err
		}
		e.AddChange(rc, cd.Delta)
	}
	return e, nil
}

// MarshalExpr encodes one symbolic expression in the structural wire
// format of DB.Save (nil encodes as JSON null). The persistent summary
// store uses it for report refcount expressions.
func MarshalExpr(e *sym.Expr) ([]byte, error) {
	return json.Marshal(exprToDTO(e))
}

// UnmarshalExpr decodes an expression written by MarshalExpr. The result
// is rebuilt through the sym constructors, so it is hash-consed: loading
// restores the pointer-equality invariants of interned expressions.
func UnmarshalExpr(data []byte) (*sym.Expr, error) {
	var d *exprDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return exprFromDTO(d)
}

// MarshalEntry encodes one summary entry in the DB.Save wire format.
func MarshalEntry(e *Entry) ([]byte, error) {
	return json.Marshal(entryToDTO(e))
}

// UnmarshalEntry decodes an entry written by MarshalEntry, re-interning
// every expression it contains.
func UnmarshalEntry(data []byte) (*Entry, error) {
	var d entryDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return entryFromDTO(&d)
}

// MarshalSummary encodes one function summary in the DB.Save wire format.
func MarshalSummary(s *Summary) ([]byte, error) {
	return json.Marshal(summaryToDTO(s))
}

// UnmarshalSummary decodes a summary written by MarshalSummary,
// re-interning every expression it contains.
func UnmarshalSummary(data []byte) (*Summary, error) {
	var d summaryDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return summaryFromDTO(&d)
}

func summaryToDTO(s *Summary) *summaryDTO {
	sd := &summaryDTO{Fn: s.Fn, Params: s.Params, HasDefault: s.HasDefault, Predefined: s.Predefined}
	for _, e := range s.Entries {
		sd.Entries = append(sd.Entries, entryToDTO(e))
	}
	return sd
}

func summaryFromDTO(sd *summaryDTO) (*Summary, error) {
	s := New(sd.Fn)
	s.Params = sd.Params
	s.HasDefault = sd.HasDefault
	s.Predefined = sd.Predefined
	for _, ed := range sd.Entries {
		e, err := entryFromDTO(ed)
		if err != nil {
			return nil, fmt.Errorf("summary %s: %w", sd.Fn, err)
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	dto := dbDTO{}
	for _, name := range db.Names() {
		dto.Summaries = append(dto.Summaries, summaryToDTO(db.Get(name)))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dto)
}

// Load reads a database previously written by Save and merges it into db.
func (db *DB) Load(r io.Reader) error {
	var dto dbDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("decode summary database: %w", err)
	}
	for _, sd := range dto.Summaries {
		s, err := summaryFromDTO(sd)
		if err != nil {
			return err
		}
		db.Put(s)
	}
	return nil
}
