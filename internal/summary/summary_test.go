package summary

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

func cond(a *sym.Expr, p ir.Pred, b *sym.Expr) sym.Set {
	return sym.True().And(sym.Cond(a, p, b))
}

func TestAddChangeAccumulatesAndCancels(t *testing.T) {
	e := NewEntry(sym.True(), nil)
	rc := sym.Field(sym.Arg("dev"), "pm")
	e.AddChange(rc, 1)
	e.AddChange(rc, 1)
	if e.Changes[rc.Key()].Delta != 2 {
		t.Errorf("delta: %d", e.Changes[rc.Key()].Delta)
	}
	e.AddChange(rc, -2)
	if _, ok := e.Changes[rc.Key()]; ok {
		t.Error("zero net change must be removed")
	}
}

func TestSameChangesAndDiffering(t *testing.T) {
	rc1 := sym.Field(sym.Arg("a"), "pm")
	rc2 := sym.Field(sym.Arg("b"), "pm")
	e1 := NewEntry(sym.True(), nil)
	e1.AddChange(rc1, 1)
	e2 := NewEntry(sym.True(), nil)
	e2.AddChange(rc1, 1)
	if !e1.SameChanges(e2) {
		t.Error("identical changes reported different")
	}
	e2.AddChange(rc2, -1)
	if e1.SameChanges(e2) {
		t.Error("different changes reported same")
	}
	diff := e1.DifferingRefcounts(e2)
	if len(diff) != 1 || diff[0].Key() != rc2.Key() {
		t.Errorf("differing: %v", diff)
	}
	// Absent keys count as zero in both directions.
	diff2 := e2.DifferingRefcounts(e1)
	if len(diff2) != 1 || diff2[0].Key() != rc2.Key() {
		t.Errorf("differing (reverse): %v", diff2)
	}
}

func TestInstantiate(t *testing.T) {
	// Summary of wrapper(d): changes [d].pm under cons [d] != null,
	// returns [0]. Instantiate d := [intf].dev, [0] := $r.
	e := NewEntry(cond(sym.Arg("d"), ir.NE, sym.Null()), sym.Ret())
	e.AddChange(sym.Field(sym.Arg("d"), "pm"), 1)
	m := map[string]*sym.Expr{
		sym.Arg("d").Key(): sym.Field(sym.Arg("intf"), "dev"),
		sym.Ret().Key():    sym.Fresh("r"),
	}
	inst := e.Instantiate(m)
	if _, ok := inst.Changes["[intf].dev.pm"]; !ok {
		t.Errorf("changes not instantiated: %v", inst.Changes)
	}
	if inst.Ret.Key() != "$r" {
		t.Errorf("ret: %s", inst.Ret)
	}
	if strings.Contains(inst.Cons.String(), "[d]") {
		t.Errorf("cons not instantiated: %s", inst.Cons)
	}
	// The original entry is untouched.
	if _, ok := e.Changes["[d].pm"]; !ok {
		t.Error("instantiate mutated the receiver")
	}
}

func TestInstantiateMergesCollidingKeys(t *testing.T) {
	// changes on [a].rc and [b].rc where both instantiate to the same
	// object must merge their deltas.
	e := NewEntry(sym.True(), nil)
	e.AddChange(sym.Field(sym.Arg("a"), "rc"), 1)
	e.AddChange(sym.Field(sym.Arg("b"), "rc"), 1)
	obj := sym.Arg("o")
	m := map[string]*sym.Expr{
		sym.Arg("a").Key(): obj,
		sym.Arg("b").Key(): obj,
	}
	inst := e.Instantiate(m)
	if c := inst.Changes["[o].rc"]; c.Delta != 2 {
		t.Errorf("merged delta: %d, want 2", c.Delta)
	}
}

func TestDefaultSummary(t *testing.T) {
	s := Default("mystery")
	if !s.HasDefault || len(s.Entries) != 1 {
		t.Fatalf("default: %+v", s)
	}
	e := s.Entries[0]
	if e.Cons.Len() != 0 || len(e.Changes) != 0 || e.Ret.Kind != sym.KRet {
		t.Errorf("default entry: %s", e)
	}
	if s.ChangesRefcounts() {
		t.Error("default summary must not change refcounts")
	}
}

func TestEntryString(t *testing.T) {
	e := NewEntry(cond(sym.Ret(), ir.EQ, sym.Const(0)), sym.Const(0))
	e.AddChange(sym.Field(sym.Arg("dev"), "pm"), 1)
	got := e.String()
	for _, want := range []string{"[dev].pm:+1", "return: 0"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	s := New("f")
	s.Entries = append(s.Entries, NewEntry(sym.True(), nil))
	db.Put(s)
	if !db.Has("f") || db.Get("f") != s || db.Len() != 1 {
		t.Error("put/get/has/len broken")
	}
	if db.Get("missing") != nil {
		t.Error("missing should be nil")
	}
	other := NewDB()
	o := New("g")
	other.Put(o)
	db.Merge(other)
	if db.Len() != 2 || db.Names()[0] != "f" || db.Names()[1] != "g" {
		t.Errorf("merge/names: %v", db.Names())
	}
}

func TestDBConcurrentAccess(t *testing.T) {
	db := NewDB()
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				s := New("f")
				s.Entries = append(s.Entries, NewEntry(sym.True(), nil))
				db.Put(s)
				db.Get("f")
				db.Has("g")
				db.Len()
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := NewDB()
	s := New("wrapper")
	s.Params = []string{"intf"}
	s.Predefined = false
	s.HasDefault = true
	e1 := NewEntry(cond(sym.Ret(), ir.LT, sym.Const(0)), sym.Ret())
	e2 := NewEntry(cond(sym.Field(sym.Arg("intf"), "dev"), ir.NE, sym.Const(0)), sym.Const(0))
	e2.AddChange(sym.Field(sym.Field(sym.Arg("intf"), "dev"), "pm"), 1)
	e2.AddChange(sym.Field(sym.Fresh("o"), "rc"), -1)
	s.Entries = append(s.Entries, e1, e2)
	db.Put(s)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := db2.Get("wrapper")
	if got == nil {
		t.Fatal("summary lost")
	}
	if got.String() != s.String() {
		t.Errorf("round trip changed summary:\nbefore: %s\nafter:  %s", s, got)
	}
	if len(got.Params) != 1 || got.Params[0] != "intf" || !got.HasDefault {
		t.Errorf("metadata lost: %+v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if err := db.Load(strings.NewReader(`{"summaries":[{"fn":"f","entries":[{"cons":[{"kind":"alien"}]}]}]}`)); err == nil {
		t.Error("expected unknown-kind error")
	}
}

func TestCloneIsolation(t *testing.T) {
	e := NewEntry(sym.True(), nil)
	rc := sym.Field(sym.Arg("a"), "pm")
	e.AddChange(rc, 1)
	c := e.Clone()
	c.AddChange(rc, 5)
	if e.Changes[rc.Key()].Delta != 1 {
		t.Error("clone shares the changes map")
	}
}
