package summary

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

// genEntry builds a random entry over a fixed parameter alphabet.
func genEntry(rng *rand.Rand) *Entry {
	params := []string{"a", "b", "dev"}
	cons := sym.True()
	for i := rng.Intn(3); i > 0; i-- {
		a := sym.Arg(params[rng.Intn(len(params))])
		preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
		cons = cons.And(sym.Cond(a, preds[rng.Intn(len(preds))], sym.Const(int64(rng.Intn(5)-2))))
	}
	var ret *sym.Expr
	switch rng.Intn(3) {
	case 0:
		ret = sym.Ret()
	case 1:
		ret = sym.Const(int64(rng.Intn(3) - 1))
	}
	e := NewEntry(cons, ret)
	for i := rng.Intn(3); i > 0; i-- {
		rc := sym.Field(sym.Arg(params[rng.Intn(len(params))]), "pm")
		e.AddChange(rc, rng.Intn(3)-1)
	}
	return e
}

// identityMap maps every alphabet symbol to itself.
func identityMap() map[string]*sym.Expr {
	return map[string]*sym.Expr{
		sym.Arg("a").Key():   sym.Arg("a"),
		sym.Arg("b").Key():   sym.Arg("b"),
		sym.Arg("dev").Key(): sym.Arg("dev"),
		sym.Ret().Key():      sym.Ret(),
	}
}

// Property: instantiating with the identity substitution preserves the
// entry (up to rendering).
func TestPropertyInstantiateIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		e := genEntry(rng)
		got := e.Instantiate(identityMap())
		if got.String() != e.String() {
			t.Fatalf("identity instantiation changed entry:\n  %s\n  %s", e, got)
		}
	}
}

// Property: SameChanges is an equivalence relation on generated entries.
func TestPropertySameChangesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var entries []*Entry
	for i := 0; i < 30; i++ {
		entries = append(entries, genEntry(rng))
	}
	for _, a := range entries {
		if !a.SameChanges(a) {
			t.Fatalf("not reflexive: %s", a)
		}
		for _, b := range entries {
			if a.SameChanges(b) != b.SameChanges(a) {
				t.Fatalf("not symmetric: %s vs %s", a, b)
			}
			for _, c := range entries {
				if a.SameChanges(b) && b.SameChanges(c) && !a.SameChanges(c) {
					t.Fatalf("not transitive")
				}
			}
		}
	}
}

// Property: DifferingRefcounts is empty iff SameChanges.
func TestPropertyDifferingMatchesSame(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a, b := genEntry(rng), genEntry(rng)
		same := a.SameChanges(b)
		diff := a.DifferingRefcounts(b)
		if same != (len(diff) == 0) {
			t.Fatalf("SameChanges=%t but %d differing refcounts:\n  %s\n  %s", same, len(diff), a, b)
		}
	}
}

// Property: instantiation distributes over SameChanges — entries with the
// same changes still have the same changes after any substitution.
func TestPropertyInstantiatePreservesSameChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := map[string]*sym.Expr{
		sym.Arg("a").Key():   sym.Field(sym.Arg("intf"), "dev"),
		sym.Arg("b").Key():   sym.Arg("x"),
		sym.Arg("dev").Key(): sym.Arg("x"), // collide b and dev on purpose
		sym.Ret().Key():      sym.Fresh("r"),
	}
	for i := 0; i < 300; i++ {
		a, b := genEntry(rng), genEntry(rng)
		if a.SameChanges(b) && !a.Instantiate(m).SameChanges(b.Instantiate(m)) {
			t.Fatalf("substitution broke change equality:\n  %s\n  %s", a, b)
		}
	}
}
