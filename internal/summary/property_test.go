package summary

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/sym"
)

// genEntry builds a random entry over a fixed parameter alphabet.
func genEntry(rng *rand.Rand) *Entry {
	params := []string{"a", "b", "dev"}
	cons := sym.True()
	for i := rng.Intn(3); i > 0; i-- {
		a := sym.Arg(params[rng.Intn(len(params))])
		preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
		cons = cons.And(sym.Cond(a, preds[rng.Intn(len(preds))], sym.Const(int64(rng.Intn(5)-2))))
	}
	var ret *sym.Expr
	switch rng.Intn(3) {
	case 0:
		ret = sym.Ret()
	case 1:
		ret = sym.Const(int64(rng.Intn(3) - 1))
	}
	e := NewEntry(cons, ret)
	for i := rng.Intn(3); i > 0; i-- {
		rc := sym.Field(sym.Arg(params[rng.Intn(len(params))]), "pm")
		e.AddChange(rc, rng.Intn(3)-1)
	}
	return e
}

// identityMap maps every alphabet symbol to itself.
func identityMap() map[string]*sym.Expr {
	return map[string]*sym.Expr{
		sym.Arg("a").Key():   sym.Arg("a"),
		sym.Arg("b").Key():   sym.Arg("b"),
		sym.Arg("dev").Key(): sym.Arg("dev"),
		sym.Ret().Key():      sym.Ret(),
	}
}

// Property: instantiating with the identity substitution preserves the
// entry (up to rendering).
func TestPropertyInstantiateIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		e := genEntry(rng)
		got := e.Instantiate(identityMap())
		if got.String() != e.String() {
			t.Fatalf("identity instantiation changed entry:\n  %s\n  %s", e, got)
		}
	}
}

// Property: SameChanges is an equivalence relation on generated entries.
func TestPropertySameChangesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var entries []*Entry
	for i := 0; i < 30; i++ {
		entries = append(entries, genEntry(rng))
	}
	for _, a := range entries {
		if !a.SameChanges(a) {
			t.Fatalf("not reflexive: %s", a)
		}
		for _, b := range entries {
			if a.SameChanges(b) != b.SameChanges(a) {
				t.Fatalf("not symmetric: %s vs %s", a, b)
			}
			for _, c := range entries {
				if a.SameChanges(b) && b.SameChanges(c) && !a.SameChanges(c) {
					t.Fatalf("not transitive")
				}
			}
		}
	}
}

// Property: DifferingRefcounts is empty iff SameChanges.
func TestPropertyDifferingMatchesSame(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a, b := genEntry(rng), genEntry(rng)
		same := a.SameChanges(b)
		diff := a.DifferingRefcounts(b)
		if same != (len(diff) == 0) {
			t.Fatalf("SameChanges=%t but %d differing refcounts:\n  %s\n  %s", same, len(diff), a, b)
		}
	}
}

// genSummary wraps random entries in a summary with random flags.
func genSummary(rng *rand.Rand) *Summary {
	s := New("f")
	s.Params = []string{"a", "b", "dev"}
	for i := rng.Intn(4); i > 0; i-- {
		s.Entries = append(s.Entries, genEntry(rng))
	}
	s.HasDefault = rng.Intn(2) == 0
	s.Predefined = rng.Intn(2) == 0
	return s
}

// Property: Marshal/Unmarshal round-trips a summary exactly — rendering,
// per-entry change signatures and SameChanges relations all survive, and
// decoded expressions are re-interned into the shared hash-cons table
// (pointer-equal to freshly built ones).
func TestPropertyMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 300; i++ {
		s := genSummary(rng)
		data, err := MarshalSummary(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalSummary(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.String() != s.String() {
			t.Fatalf("round trip changed rendering:\n  %s\n  %s", s, got)
		}
		if got.Fn != s.Fn || got.HasDefault != s.HasDefault || got.Predefined != s.Predefined {
			t.Fatalf("round trip changed flags: %+v vs %+v", s, got)
		}
		if len(got.Entries) != len(s.Entries) {
			t.Fatalf("round trip changed entry count: %d vs %d", len(s.Entries), len(got.Entries))
		}
		for j, e := range s.Entries {
			g := got.Entries[j]
			if g.ChangesSignature() != e.ChangesSignature() {
				t.Fatalf("entry %d signature changed: %q vs %q", j, e.ChangesSignature(), g.ChangesSignature())
			}
			if !g.SameChanges(e) || !e.SameChanges(g) {
				t.Fatalf("entry %d lost change equality:\n  %s\n  %s", j, e, g)
			}
			for _, c := range g.SortedChanges() {
				if c.RC != UnmarshalInterned(t, c.RC) {
					t.Fatalf("entry %d refcount %s not re-interned", j, c.RC)
				}
			}
		}
	}
}

// UnmarshalInterned re-marshals and decodes one expression, returning the
// decoded pointer; with hash-consing it must be the identical pointer.
func UnmarshalInterned(t *testing.T, e *sym.Expr) *sym.Expr {
	t.Helper()
	data, err := MarshalExpr(e)
	if err != nil {
		t.Fatalf("marshal expr: %v", err)
	}
	got, err := UnmarshalExpr(data)
	if err != nil {
		t.Fatalf("unmarshal expr: %v", err)
	}
	return got
}

// Property: instantiation distributes over SameChanges — entries with the
// same changes still have the same changes after any substitution.
func TestPropertyInstantiatePreservesSameChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := map[string]*sym.Expr{
		sym.Arg("a").Key():   sym.Field(sym.Arg("intf"), "dev"),
		sym.Arg("b").Key():   sym.Arg("x"),
		sym.Arg("dev").Key(): sym.Arg("x"), // collide b and dev on purpose
		sym.Ret().Key():      sym.Fresh("r"),
	}
	for i := 0; i < 300; i++ {
		a, b := genEntry(rng), genEntry(rng)
		if a.SameChanges(b) && !a.Instantiate(m).SameChanges(b.Instantiate(m)) {
			t.Fatalf("substitution broke change equality:\n  %s\n  %s", a, b)
		}
	}
}
