// Package sched provides the building blocks of the two-level
// work-stealing scheduler in package core: a per-worker double-ended
// task queue (owner pushes and pops at the bottom, thieves steal from
// the top) and a small deterministic RNG for seeded victim selection.
//
// The deque is a mutex-protected ring-free slice with a moving head:
// owner operations and steals are O(1) amortized, storage is reused
// across fills, and vacated slots are zeroed so the deque never pins
// finished tasks. A mutex (rather than the classic lock-free
// Chase–Lev array) keeps the structure trivially correct under the
// ABA-prone owner/thief races; contention is negligible because the
// common case — the owner draining its own work — touches the lock for
// a few instructions, and steals only happen when a thief is otherwise
// idle.
package sched

import "sync"

// Deque is a double-ended work queue. The zero value is ready to use.
// All methods are safe for concurrent use.
type Deque[T any] struct {
	mu   sync.Mutex
	buf  []T
	head int // buf[head] is the top (steal end); buf[len(buf)-1] the bottom
}

// PushBottom appends v at the owner end.
func (d *Deque[T]) PushBottom(v T) {
	d.mu.Lock()
	d.buf = append(d.buf, v)
	d.mu.Unlock()
}

// PopBottom removes and returns the most recently pushed element
// (owner-side LIFO: the owner works depth-first on its own tasks).
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.head >= len(d.buf) {
		d.mu.Unlock()
		return zero, false
	}
	i := len(d.buf) - 1
	v := d.buf[i]
	d.buf[i] = zero
	d.buf = d.buf[:i]
	if d.head == len(d.buf) {
		d.head = 0
		d.buf = d.buf[:0]
	}
	d.mu.Unlock()
	return v, true
}

// StealTop removes and returns the oldest element (thief-side FIFO:
// thieves take the task the owner would reach last, minimizing
// owner/thief interference).
func (d *Deque[T]) StealTop() (T, bool) {
	var zero T
	d.mu.Lock()
	if d.head >= len(d.buf) {
		d.mu.Unlock()
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero
	d.head++
	if d.head == len(d.buf) {
		d.head = 0
		d.buf = d.buf[:0]
	}
	d.mu.Unlock()
	return v, true
}

// Len returns the current number of queued elements.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	n := len(d.buf) - d.head
	d.mu.Unlock()
	return n
}

// RNG is a splitmix64 generator: tiny, fast, and fully determined by
// its seed, which is what makes randomized steal order replayable (the
// determinism property test injects seeds and asserts byte-identical
// output).
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Next returns the next pseudo-random value.
func (r *RNG) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}
