package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFO(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 5; i++ {
		d.PushBottom(i)
	}
	for want := 5; want >= 1; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = %d,%v; want %d,true", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque returned ok")
	}
}

func TestDequeThiefFIFO(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 5; i++ {
		d.PushBottom(i)
	}
	for want := 1; want <= 5; want++ {
		v, ok := d.StealTop()
		if !ok || v != want {
			t.Fatalf("StealTop = %d,%v; want %d,true", v, ok, want)
		}
	}
	if _, ok := d.StealTop(); ok {
		t.Fatal("StealTop on empty deque returned ok")
	}
}

// TestDequeMixedEnds interleaves owner pops and thief steals: the thief
// always gets the oldest remaining element, the owner the newest, and
// every element comes out exactly once.
func TestDequeMixedEnds(t *testing.T) {
	var d Deque[int]
	for i := 1; i <= 6; i++ {
		d.PushBottom(i)
	}
	got := map[int]string{}
	for i := 0; i < 3; i++ {
		v, _ := d.StealTop()
		got[v] = "stolen"
		w, _ := d.PopBottom()
		got[w] = "popped"
	}
	want := map[int]string{1: "stolen", 2: "stolen", 3: "stolen", 6: "popped", 5: "popped", 4: "popped"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("element %d: got %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
	if d.Len() != 0 {
		t.Errorf("deque not drained: Len=%d", d.Len())
	}
}

// TestDequeStorageReuse checks that draining resets the ring so the
// backing array is reused instead of growing without bound.
func TestDequeStorageReuse(t *testing.T) {
	var d Deque[int]
	for round := 0; round < 100; round++ {
		for i := 0; i < 8; i++ {
			d.PushBottom(i)
		}
		for i := 0; i < 8; i++ {
			if _, ok := d.StealTop(); !ok {
				t.Fatal("premature empty")
			}
		}
	}
	if c := cap(d.buf); c > 16 {
		t.Errorf("backing array grew to %d despite drain-reset", c)
	}
}

// TestDequeConcurrentStealers hammers one owner against many thieves and
// checks conservation: every pushed element is consumed exactly once.
func TestDequeConcurrentStealers(t *testing.T) {
	const n = 10000
	const thieves = 4
	var d Deque[int]
	var sum atomic.Int64
	var consumed atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < thieves; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.StealTop(); ok {
					sum.Add(int64(v))
					consumed.Add(1)
				} else {
					select {
					case <-done:
						return
					default:
					}
				}
			}
		}()
	}
	want := int64(0)
	for i := 1; i <= n; i++ {
		d.PushBottom(i)
		want += int64(i)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				sum.Add(int64(v))
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < n {
		if v, ok := d.PopBottom(); ok {
			sum.Add(int64(v))
			consumed.Add(1)
		}
	}
	close(done)
	wg.Wait()
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d (lost or duplicated elements)", sum.Load(), want)
	}
}

// TestRNGDeterministic pins that equal seeds give equal sequences and
// different seeds diverge.
func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(317), NewRNG(317)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c, d := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) only produced %d distinct values in 1000 draws", len(seen))
	}
}
