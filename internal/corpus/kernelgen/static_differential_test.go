package kernelgen

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/spec"
)

// TestStaticCoversDynamicWitnesses differentially tests the static
// pipeline against the concrete interpreter over randomized corpora: a
// dynamic IPP witness is ground truth (two executions with the same
// arguments and return value but different refcount deltas were actually
// observed), so every function that has one must either appear in the
// static reports or carry a degradation diagnostic explaining why the
// analyzer backed off. A silent miss is a soundness bug in the pipeline —
// enumeration, symbolic execution, or the IPP check dropped a real pair.
// The run is repeated at Workers=1 and Workers=4 and the report sets must
// agree, so scheduling cannot mask or manufacture coverage.
func TestStaticCoversDynamicWitnesses(t *testing.T) {
	mix := Mix{
		CorrectBalanced:   3,
		CorrectErrHandled: 2,
		CorrectWrapperUse: 2,
		CorrectLoop:       2,
		CorrectSwitch:     2,
		BugGetErrReturn:   3,
		BugWrapperErrPath: 2,
		BugWrapperMisuse:  2,
		BugDoublePut:      2,
		BugIRQStyle:       2,
		BugAsymmetricErr:  2,
		BugLoopErrPath:    2,
		BugDeepWrapper:    2,
	}
	specs := spec.LinuxDPM()
	for _, seed := range []int64{7, 211} {
		c := Generate(Config{Seed: seed, Mix: mix})
		prog := buildProgram(t, c)

		seq := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 1})
		par := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 4})

		reported := map[string]bool{}
		for _, r := range seq.Reports {
			reported[r.Fn] = true
		}
		parReported := map[string]bool{}
		for _, r := range par.Reports {
			parReported[r.Fn] = true
		}
		for fn := range reported {
			if !parReported[fn] {
				t.Errorf("seed %d: %s reported at Workers=1 but not Workers=4", seed, fn)
			}
		}
		for fn := range parReported {
			if !reported[fn] {
				t.Errorf("seed %d: %s reported at Workers=4 but not Workers=1", seed, fn)
			}
		}

		explained := map[string]bool{}
		for _, d := range seq.Diagnostics {
			if d.Fn != "" {
				explained[d.Fn] = true
			}
		}

		for fn := range c.Truth {
			f := prog.Funcs[fn]
			if f == nil {
				t.Fatalf("seed %d: labeled function %s not in program", seed, fn)
			}
			w, err := interp.FindWitness(prog, specs, fn, ptrParams(f.Params), 600, seed*3+1)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, fn, err)
			}
			if w == nil {
				continue
			}
			if !reported[fn] && !explained[fn] {
				t.Errorf("seed %d: %s has a dynamic IPP witness but no static report and no diagnostic\n  A: %s\n  B: %s",
					seed, fn, w.A.Key(), w.B.Key())
			}
		}
	}
}
