package kernelgen

import (
	"context"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/ipp"
	"repro/internal/spec"
)

// replayVerdicts maps each report (function + refcount site) to its
// witness-replay verdict.
func replayVerdicts(t *testing.T, res *core.Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range res.Reports {
		if r.Evidence == nil || r.Evidence.Replay == nil {
			t.Fatalf("%s: report missing replay verdict with Provenance on", r.Fn)
		}
		key := r.Fn + "/" + r.Refcount.Key()
		if prev, ok := out[key]; ok && prev != r.Evidence.Replay.Verdict {
			t.Fatalf("%s: conflicting verdicts %s vs %s within one run", key, prev, r.Evidence.Replay.Verdict)
		}
		out[key] = r.Evidence.Replay.Verdict
	}
	return out
}

func confirmedSet(v map[string]string) []string {
	var out []string
	for k, verdict := range v {
		if verdict == ipp.ReplayConfirmed {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// TestReplayDeterministicAcrossWorkers pins the determinism contract of
// the replay post-pass (see core/provenance.go): replay runs
// sequentially after reports are sorted with seeds derived only from the
// function name, so over a randomized corpus the per-report verdicts —
// and in particular the confirmed-by-replay set — must be byte-identical
// at Workers=1 and Workers=4.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	mix := Mix{
		CorrectBalanced:   2,
		CorrectErrHandled: 1,
		BugGetErrReturn:   2,
		BugWrapperErrPath: 1,
		BugDoublePut:      1,
		BugAsymmetricErr:  1,
	}
	specs := spec.LinuxDPM()
	for _, seed := range []int64{7, 211} {
		c := Generate(Config{Seed: seed, Mix: mix})
		prog := buildProgram(t, c)

		seq := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 1, Provenance: true})
		par := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 4, Provenance: true})

		sv := replayVerdicts(t, seq)
		pv := replayVerdicts(t, par)
		for key, verdict := range sv {
			if got, ok := pv[key]; !ok {
				t.Errorf("seed %d: %s replayed at Workers=1 but absent at Workers=4", seed, key)
			} else if got != verdict {
				t.Errorf("seed %d: %s verdict %s at Workers=1 but %s at Workers=4", seed, key, verdict, got)
			}
		}
		for key := range pv {
			if _, ok := sv[key]; !ok {
				t.Errorf("seed %d: %s replayed at Workers=4 but absent at Workers=1", seed, key)
			}
		}

		confirmed := confirmedSet(sv)
		if len(confirmed) == 0 {
			t.Errorf("seed %d: no confirmed-by-replay reports; determinism check is vacuous", seed)
		}
		parConfirmed := confirmedSet(pv)
		if len(confirmed) != len(parConfirmed) {
			t.Errorf("seed %d: confirmed sets differ: %v vs %v", seed, confirmed, parConfirmed)
		}
	}
}
