// Package kernelgen generates a deterministic, Linux-like driver corpus in
// the mini-C language, with ground-truth labels. It stands in for the
// Linux 3.17 tree of the paper's evaluation (§6): the DPM APIs are extern
// declarations covered by predefined summaries; subsystems define wrapper
// pairs (including a faithful usb_autopm_get_interface clone); drivers
// instantiate the paper's bug patterns (Figures 8, 9, 10), correct
// patterns, and the documented false-positive patterns (§6.4); helper
// functions populate category 2 and a mass of utility functions populates
// category 3 (Table 1).
//
// Every generated function is labeled: whether it contains a real bug,
// whether that bug is within RID's reach (detectable), and whether a report
// on it would be a false positive. The §6.3 call-site census is labeled the
// same way.
package kernelgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern identifies a generation template.
type Pattern string

// Generation templates. "Bug*" patterns contain a real refcount bug;
// "FP*" patterns are correct code that RID's abstraction cannot prove
// consistent; "Correct*" patterns are clean.
const (
	CorrectBalanced   Pattern = "correct-balanced"     // get/put balanced, put on error
	CorrectErrHandled Pattern = "correct-err-handled"  // §6.3 clean call site
	CorrectWrapperUse Pattern = "correct-wrapper-use"  // conditional wrapper used right
	CorrectHeld       Pattern = "correct-held"         // +1 on all paths (open/close pair)
	BugGetErrReturn   Pattern = "bug-get-err-return"   // Figure 8; detectable
	BugWrapperErrPath Pattern = "bug-wrapper-err-path" // Figure 9; detectable
	BugWrapperMisuse  Pattern = "bug-wrapper-misuse"   // transparent wrapper misused; detectable
	BugDoublePut      Pattern = "bug-double-put"       // over-decrement; detectable
	BugIRQStyle       Pattern = "bug-irq-style"        // Figure 10; real bug, NOT detectable
	BugAsymmetricErr  Pattern = "bug-asymmetric-err"   // consistent +1 incl. error path; NOT detectable
	BugLoopErrPath    Pattern = "bug-loop-err-path"    // leak on a loop's error exit; detectable
	CorrectLoop       Pattern = "correct-loop"         // balanced get/put per iteration
	CorrectSwitch     Pattern = "correct-switch"       // mode switch, balanced per case
	BugDeepWrapper    Pattern = "bug-deep-wrapper"     // leak behind a depth-2 wrapper chain; detectable
	FPBitmask         Pattern = "fp-bitmask"           // §6.4 bit-operation false positive
)

// Mix sets how many driver operations of each pattern to generate.
type Mix struct {
	CorrectBalanced   int
	CorrectErrHandled int
	CorrectWrapperUse int
	CorrectHeld       int
	BugGetErrReturn   int
	BugWrapperErrPath int
	BugWrapperMisuse  int
	BugDoublePut      int
	BugIRQStyle       int
	BugAsymmetricErr  int
	BugLoopErrPath    int
	CorrectLoop       int
	CorrectSwitch     int
	BugDeepWrapper    int
	FPBitmask         int
}

// PaperMix returns the §6.2/§6.3-shaped mix: 96 error-handled direct
// pm_runtime_get* call sites, 67 of them missing the decrement, 40 of
// those within RID's reach — the exact ratios of the paper.
func PaperMix() Mix {
	return Mix{
		CorrectBalanced:   60,
		CorrectErrHandled: 24,
		CorrectWrapperUse: 20,
		CorrectHeld:       15,
		BugGetErrReturn:   40,
		BugWrapperErrPath: 12,
		BugWrapperMisuse:  8,
		BugDoublePut:      5,
		BugIRQStyle:       12,
		BugAsymmetricErr:  15,
		BugLoopErrPath:    6,
		CorrectLoop:       10,
		CorrectSwitch:     10,
		BugDeepWrapper:    6,
		FPBitmask:         60,
	}
}

// Config controls corpus generation.
type Config struct {
	Seed           int64
	Mix            Mix
	NumSubsystems  int // wrapper sets; default 4
	SimpleHelpers  int // category-2, ≤3 branches
	ComplexHelpers int // category-2, >3 branches (not analyzed)
	OtherFuncs     int // category-3 mass
	FuncsPerFile   int // default 12
}

func (c Config) withDefaults() Config {
	if c.NumSubsystems == 0 {
		c.NumSubsystems = 4
	}
	if c.FuncsPerFile == 0 {
		c.FuncsPerFile = 12
	}
	return c
}

// BugInfo labels one generated function.
type BugInfo struct {
	Pattern    Pattern
	Real       bool // a real refcount bug exists in the function
	Detectable bool // within RID's reach (IPP exists in the function)
	FPExpected bool // correct code on which RID is expected to report
}

// SiteTruth labels one direct pm_runtime_get* call site for §6.3.
type SiteTruth struct {
	Fn         string
	Handled    bool // result feeds an error check
	MissingPut bool // error path lacks the balancing decrement (the bug)
	Detectable bool // RID can flag the enclosing function
}

// Corpus is the generated source tree plus ground truth.
type Corpus struct {
	Files    map[string]string
	Truth    map[string]BugInfo // per generated driver-op function
	Sites    []SiteTruth
	Wrappers []string // wrapper function names (excluded in §6.3 counting)
	NumFuncs int
}

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{
		cfg: cfg,
		rng: rng,
		c: &Corpus{
			Files: make(map[string]string),
			Truth: make(map[string]BugInfo),
		},
	}
	g.consumed = make(map[string]bool)
	g.emitSubsystems()
	g.emitHelpers()
	g.emitDrivers()
	g.emitLeftoverConsumersAndUtils()
	g.flush()
	return g.c
}

type generator struct {
	cfg Config
	rng *rand.Rand
	c   *Corpus

	cur      strings.Builder
	curName  string
	curFuncs int
	fileSeq  int
	nameSeq  int

	subsystems []subsystem
	helperPool []string // all helper names, consumed round-robin by fillers
	helperIdx  int      // next helper to hand out
	consumed   map[string]bool
}

type subsystem struct {
	id          int
	ifaceType   string // struct tag with an embedded dev
	condGet     string // conditional wrapper (usb_autopm-style)
	condPut     string
	directGet   string // transparent wrapper (passes the +1 through)
	openDev     string // depth-2 wrapper over condGet (conditional again)
	headerDecls string
}

// verbs and nouns give generated functions kernel-flavored names.
var verbs = []string{"open", "probe", "start", "resume", "xmit", "read", "write", "config", "attach", "enable", "flush", "poll", "reset", "sync", "update"}
var nouns = []string{"ctrl", "ring", "queue", "chan", "port", "regs", "buf", "link", "phy", "dma", "irq", "clk", "fifo", "mbox", "node"}

func (g *generator) name(prefix string) string {
	g.nameSeq++
	v := verbs[g.rng.Intn(len(verbs))]
	n := nouns[g.rng.Intn(len(nouns))]
	return fmt.Sprintf("%s_%s_%s_%d", prefix, n, v, g.nameSeq)
}

// emit appends source text to the current file, opening a new one when the
// per-file function budget is exhausted.
func (g *generator) emit(src string) {
	if g.curName == "" {
		g.openFile()
	}
	g.cur.WriteString(src)
	g.cur.WriteString("\n")
	g.curFuncs++
	g.c.NumFuncs++
	if g.curFuncs >= g.cfg.FuncsPerFile {
		g.flush()
	}
}

func (g *generator) openFile() {
	g.fileSeq++
	g.curName = fmt.Sprintf("drivers/gen/file%04d.c", g.fileSeq)
	g.cur.WriteString(commonHeader)
	for _, ss := range g.subsystems {
		g.cur.WriteString(ss.headerDecls)
	}
}

func (g *generator) flush() {
	if g.curName == "" {
		return
	}
	g.c.Files[g.curName] = g.cur.String()
	g.cur.Reset()
	g.curName = ""
	g.curFuncs = 0
}

// commonHeader declares the DPM APIs and shared externs every file uses.
const commonHeader = `
struct device;
struct dpm_opts { int mode; int flags; };

extern int pm_runtime_get(struct device *dev);
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_get_noresume(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int pm_runtime_put_sync(struct device *dev);
extern int pm_runtime_put_autosuspend(struct device *dev);
extern int pm_runtime_put_noidle(struct device *dev);
extern int dev_err(struct device *dev);
extern int do_transfer(struct device *dev);
extern int hw_ready(struct device *dev);
`

// emitSubsystems generates per-subsystem wrapper pairs; the conditional
// wrapper is a faithful clone of usb_autopm_get_interface (Figure 9).
func (g *generator) emitSubsystems() {
	for i := 0; i < g.cfg.NumSubsystems; i++ {
		ss := subsystem{
			id:        i,
			ifaceType: fmt.Sprintf("ss%d_iface", i),
			condGet:   fmt.Sprintf("ss%d_autopm_get", i),
			condPut:   fmt.Sprintf("ss%d_autopm_put", i),
			directGet: fmt.Sprintf("ss%d_pm_get_direct", i),
			openDev:   fmt.Sprintf("ss%d_open_device", i),
		}
		ss.headerDecls = fmt.Sprintf(`
struct %s { struct device dev; int flags; };
extern int %s(struct %s *intf);
extern void %s(struct %s *intf);
extern int %s(struct %s *intf);
`, ss.ifaceType, ss.condGet, ss.ifaceType, ss.condPut, ss.ifaceType, ss.directGet, ss.ifaceType)
		g.subsystems = append(g.subsystems, ss)

		body := fmt.Sprintf(`
int %s(struct %s *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}

void %s(struct %s *intf) {
    pm_runtime_put_sync(&intf->dev);
}

int %s(struct %s *intf) {
    return pm_runtime_get_sync(&intf->dev);
}

int %s(struct %s *intf) {
    int err;
    err = %s(intf);
    if (err)
        return err;
    if (hw_ready(&intf->dev) < 0) {
        %s(intf);
        return -1;
    }
    return 0;
}
`, ss.condGet, ss.ifaceType, ss.condPut, ss.ifaceType, ss.directGet, ss.ifaceType,
			ss.openDev, ss.ifaceType, ss.condGet, ss.condPut)
		g.emit(body)
		g.c.Wrappers = append(g.c.Wrappers, ss.condGet, ss.condPut, ss.directGet, ss.openDev)
	}
	g.flush()
}

func (g *generator) subsystem() subsystem {
	return g.subsystems[g.rng.Intn(len(g.subsystems))]
}

// filler returns a few harmless statements to vary function bodies. Up to
// maxHelpers of them route a status check through a generated helper,
// which is what places the helpers into category 2 (their results feed
// branch conditions that control refcount-changing code).
func (g *generator) filler(dev string) string {
	var b strings.Builder
	for i := g.rng.Intn(3); i > 0; i-- {
		switch g.rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "    do_transfer(%s);\n", dev)
		case 1:
			fmt.Fprintf(&b, "    if (hw_ready(%s) < 0)\n        dev_err(%s);\n", dev, dev)
		case 2:
			fmt.Fprintf(&b, "    dev_err(%s);\n", dev)
		}
	}
	const maxHelpers = 3
	for i := 0; i < maxHelpers && g.helperIdx < len(g.helperPool); i++ {
		h := g.helperPool[g.helperIdx]
		g.helperIdx++
		g.consumed[h] = true
		fmt.Fprintf(&b, "    if (%s(%s) < 0)\n        dev_err(%s);\n", h, dev, dev)
	}
	return b.String()
}

func (g *generator) emitDrivers() {
	type job struct {
		p Pattern
		n int
	}
	m := g.cfg.Mix
	jobs := []job{
		{CorrectBalanced, m.CorrectBalanced},
		{CorrectErrHandled, m.CorrectErrHandled},
		{CorrectWrapperUse, m.CorrectWrapperUse},
		{CorrectHeld, m.CorrectHeld},
		{BugGetErrReturn, m.BugGetErrReturn},
		{BugWrapperErrPath, m.BugWrapperErrPath},
		{BugWrapperMisuse, m.BugWrapperMisuse},
		{BugDoublePut, m.BugDoublePut},
		{BugIRQStyle, m.BugIRQStyle},
		{BugAsymmetricErr, m.BugAsymmetricErr},
		{BugLoopErrPath, m.BugLoopErrPath},
		{CorrectLoop, m.CorrectLoop},
		{CorrectSwitch, m.CorrectSwitch},
		{BugDeepWrapper, m.BugDeepWrapper},
		{FPBitmask, m.FPBitmask},
	}
	// Interleave patterns across files for realism.
	var seq []Pattern
	for _, j := range jobs {
		for i := 0; i < j.n; i++ {
			seq = append(seq, j.p)
		}
	}
	g.rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	for _, p := range seq {
		g.emitDriverOp(p)
	}
	g.flush()
}

func (g *generator) emitDriverOp(p Pattern) {
	name := g.name(fmt.Sprintf("drv%02d", g.rng.Intn(90)))
	info := BugInfo{Pattern: p}
	var src string
	switch p {
	case CorrectBalanced:
		// The get's return value is ignored — a very common correct kernel
		// style. Not a §6.3 census site (no error handling to inspect).
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    pm_runtime_get_sync(dev);
%s    pm_runtime_put(dev);
    return do_transfer(dev);
}
`, name, g.filler("dev"))
	case CorrectErrHandled:
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    int err;
    err = pm_runtime_get_sync(dev);
    if (err < 0) {
        pm_runtime_put_noidle(dev);
        dev_err(dev);
        return err;
    }
%s    pm_runtime_put_autosuspend(dev);
    return 0;
}
`, name, g.filler("dev"))
		g.site(name, true, false, false)
	case CorrectWrapperUse:
		ss := g.subsystem()
		src = fmt.Sprintf(`
int %s(struct %s *intf) {
    int ret;
    ret = %s(intf);
    if (ret)
        return ret;
%s    %s(intf);
    return 0;
}
`, name, ss.ifaceType, ss.condGet, g.filler("&intf->dev"), ss.condPut)
	case CorrectHeld:
		// Open/close style: the +1 is held intentionally on every exit.
		// Consistent, so RID stays silent — as it should.
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    pm_runtime_get_noresume(dev);
%s    return 0;
}
`, name, g.filler("dev"))
	case BugGetErrReturn:
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
%s    ret = do_transfer(dev);
    pm_runtime_put_autosuspend(dev);
    return ret;
}
`, name, g.filler("dev"))
		g.site(name, true, true, true)
	case BugWrapperErrPath:
		info.Real, info.Detectable = true, true
		ss := g.subsystem()
		src = fmt.Sprintf(`
int %s(struct %s *intf, struct device *aux) {
    int result;
    result = %s(intf);
    if (result)
        goto error;
    result = do_transfer(aux);
    if (result)
        goto error;
    %s(intf);
error:
    return result;
}
`, name, ss.ifaceType, ss.condGet, ss.condPut)
	case BugWrapperMisuse:
		// The transparent wrapper passes pm_runtime_get_sync's "+1 even on
		// error" through; treating it like the conditional wrapper leaks.
		info.Real, info.Detectable = true, true
		ss := g.subsystem()
		src = fmt.Sprintf(`
int %s(struct %s *intf) {
    int ret;
    ret = %s(intf);
    if (ret < 0)
        return ret;
%s    ret = do_transfer(&intf->dev);
    %s(intf);
    return ret;
}
`, name, ss.ifaceType, ss.directGet, g.filler("&intf->dev"), ss.condPut)
	case BugDoublePut:
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        pm_runtime_put_noidle(dev);
        return ret;
    }
%s    ret = do_transfer(dev);
    pm_runtime_put(dev);
    pm_runtime_put(dev);
    return ret;
}
`, name, g.filler("dev"))
		g.site(name, true, false, true)
	case BugIRQStyle:
		// Real bug, outside RID's reach (Figure 10): the paths are
		// distinguished by their constant return values.
		info.Real, info.Detectable = true, false
		src = fmt.Sprintf(`
int %s(int irq, struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0) {
        dev_err(dev);
        return 0;
    }
%s    pm_runtime_put(dev);
    return 1;
}
`, name, g.filler("dev"))
		g.site(name, true, true, false)
	case BugAsymmetricErr:
		// get-side of an open/close pair that forgets to drop the count
		// when open fails: every path carries +1 (consistent), so RID
		// cannot see it — but the §6.3 census can.
		info.Real, info.Detectable = true, false
		src = fmt.Sprintf(`
int %s(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return -1;
%s    return 0;
}
`, name, g.filler("dev"))
		g.site(name, true, true, false)
	case BugLoopErrPath:
		// The per-iteration error exit leaks the iteration's +1; the clean
		// exhausted-loop exit returns the same value. Only triggered by
		// executing the loop body, so the ≤1 unrolling is what finds it.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct device *dev, int n) {
    int i = 0;
    while (i < n) {
        pm_runtime_get(dev);
        if (do_transfer(dev) < 0)
            return -1;
        pm_runtime_put(dev);
        i = hw_ready(dev);
    }
    return -1;
}
`, name)
	case CorrectLoop:
		src = fmt.Sprintf(`
int %s(struct device *dev, int n) {
    int i = 0;
    while (i < n) {
        pm_runtime_get(dev);
        if (do_transfer(dev) < 0) {
            pm_runtime_put(dev);
            return -1;
        }
        pm_runtime_put(dev);
        i = hw_ready(dev);
    }
    return -1;
}
`, name)
	case CorrectSwitch:
		src = fmt.Sprintf(`
int %s(struct device *dev, int mode) {
    int ret = 0;
    switch (mode) {
    case 1:
        pm_runtime_get(dev);
        do_transfer(dev);
        pm_runtime_put(dev);
        break;
    case 2:
        ret = do_transfer(dev);
        break;
    default:
        ret = -1;
    }
    return ret;
}
`, name)
	case BugDeepWrapper:
		// The leak hides behind a two-level wrapper chain: detecting it
		// requires precise summaries propagated through both levels
		// (pm_runtime_get_sync → autopm_get → open_device → here).
		info.Real, info.Detectable = true, true
		ss := g.subsystem()
		src = fmt.Sprintf(`
int %s(struct %s *intf) {
    int ret;
    ret = %s(intf);
    if (ret)
        return ret;
    if (do_transfer(&intf->dev) < 0)
        return -1;
    %s(intf);
    return 0;
}
`, name, ss.ifaceType, ss.openDev, ss.condPut)
	case FPBitmask:
		info.FPExpected = true
		mask := 1 << g.rng.Intn(5)
		src = fmt.Sprintf(`
void %s(struct device *dev, struct dpm_opts *o) {
    if (o->flags & %d) {
        pm_runtime_get(dev);
%s    }
    do_transfer(dev);
    if (o->flags & %d) {
        pm_runtime_put(dev);
    }
}
`, name, mask, g.filler("dev"), mask)
	}
	g.c.Truth[name] = info
	g.emit(src)
}

// site records a §6.3 direct pm_runtime_get* call-site label.
func (g *generator) site(fn string, handled, missingPut, detectable bool) {
	g.c.Sites = append(g.c.Sites, SiteTruth{
		Fn: fn, Handled: handled, MissingPut: missingPut, Detectable: detectable,
	})
}

// emitHelpers generates the category-2 population: simple helpers pass
// the §5.2 complexity gate (1 branch), complex helpers exceed it (5
// branches). Their bodies come first; drivers consume them round-robin
// via filler(), which is what places them into category 2 (their results
// feed branch conditions controlling refcount-changing code).
func (g *generator) emitHelpers() {
	for i := 0; i < g.cfg.SimpleHelpers; i++ {
		name := fmt.Sprintf("helper_status_%03d", i)
		g.helperPool = append(g.helperPool, name)
		g.emit(fmt.Sprintf(`
int %s(struct device *dev) {
    int v;
    v = hw_ready(dev);
    if (v > 0)
        return 0;
    return -1;
}
`, name))
	}
	for i := 0; i < g.cfg.ComplexHelpers; i++ {
		name := fmt.Sprintf("helper_complex_%03d", i)
		g.helperPool = append(g.helperPool, name)
		g.emit(fmt.Sprintf(`
int %s(struct device *dev) {
    int v;
    int a;
    int b;
    v = hw_ready(dev);
    a = random();
    b = random();
    if (v < 0)
        return -1;
    if (a > 0) {
        if (b > 0)
            return 1;
        if (b < 0)
            return 2;
    }
    if (v > 8)
        return 3;
    return 0;
}
`, name))
	}
	// Interleave helper kinds so drivers consume a mix of both.
	g.rng.Shuffle(len(g.helperPool), func(i, j int) {
		g.helperPool[i], g.helperPool[j] = g.helperPool[j], g.helperPool[i]
	})
	g.flush()
}

// emitLeftoverConsumersAndUtils gives every helper the driver fillers did
// not reach a dedicated consumer (so all helpers land in category 2), then
// generates the category-3 utility mass.
func (g *generator) emitLeftoverConsumersAndUtils() {
	for g.helperIdx < len(g.helperPool) {
		name := g.name("drvh")
		g.c.Truth[name] = BugInfo{Pattern: CorrectBalanced}
		var checks strings.Builder
		for i := 0; i < 6 && g.helperIdx < len(g.helperPool); i++ {
			h := g.helperPool[g.helperIdx]
			g.helperIdx++
			g.consumed[h] = true
			fmt.Fprintf(&checks, "    if (%s(dev) < 0)\n        return -1;\n", h)
		}
		g.emit(fmt.Sprintf(`
int %s(struct device *dev) {
%s    pm_runtime_get(dev);
    pm_runtime_put(dev);
    return 0;
}
`, name, checks.String()))
	}
	// Category-3 mass: utility chains that never touch refcounts.
	for i := 0; i < g.cfg.OtherFuncs; i++ {
		name := fmt.Sprintf("util_calc_%05d", i)
		callee := "hw_ready"
		if i > 0 && g.rng.Intn(2) == 0 {
			callee = fmt.Sprintf("util_calc_%05d", g.rng.Intn(i))
		}
		var body string
		if strings.HasPrefix(callee, "util_") {
			body = fmt.Sprintf(`
int %s(int a, int b) {
    int v;
    v = random();
    if (v > a)
        return b;
    return %s(v, b);
}
`, name, callee)
		} else {
			body = fmt.Sprintf(`
int %s(int a, int b) {
    int v;
    v = random();
    if (v > a)
        return b;
    return v;
}
`, name)
		}
		g.emit(body)
	}
	g.flush()
}

// helperComplexConds is documented for tests: complex helpers have 5
// conditional branches, exceeding the §5.2 gate of 3.
const helperComplexConds = 5
