package kernelgen

import (
	"context"
	"testing"

	"repro/internal/baseline/grepscan"
	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

// buildProgram parses and lowers every generated file into one program.
func buildProgram(t testing.TB, c *Corpus) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	for name, src := range c.Files {
		f, err := parser.ParseFile(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", name, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

func smallMix() Mix {
	return Mix{
		CorrectBalanced:   6,
		CorrectErrHandled: 4,
		CorrectWrapperUse: 4,
		CorrectHeld:       3,
		BugGetErrReturn:   5,
		BugWrapperErrPath: 3,
		BugWrapperMisuse:  3,
		BugDoublePut:      2,
		BugIRQStyle:       3,
		BugAsymmetricErr:  3,
		BugLoopErrPath:    2,
		CorrectLoop:       2,
		CorrectSwitch:     2,
		BugDeepWrapper:    2,
		FPBitmask:         4,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Mix: smallMix(), OtherFuncs: 5})
	b := Generate(Config{Seed: 7, Mix: smallMix(), OtherFuncs: 5})
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file counts differ: %d vs %d", len(a.Files), len(b.Files))
	}
	for name, src := range a.Files {
		if b.Files[name] != src {
			t.Fatalf("file %s differs between runs with the same seed", name)
		}
	}
}

func TestGeneratedCorpusParses(t *testing.T) {
	c := Generate(Config{Seed: 11, Mix: smallMix(), SimpleHelpers: 3, ComplexHelpers: 2, OtherFuncs: 10})
	prog := buildProgram(t, c)
	if len(prog.Funcs) == 0 {
		t.Fatal("no functions lowered")
	}
}

// TestDetectionMatrix is the central soundness check: RID must flag every
// detectable bug, must stay silent on undetectable-by-design bugs, must
// fire on the FP patterns (that is what makes them FP patterns), and the
// only reports on correct code must be those FPs.
func TestDetectionMatrix(t *testing.T) {
	c := Generate(Config{Seed: 42, Mix: smallMix(), SimpleHelpers: 4, ComplexHelpers: 2, OtherFuncs: 20})
	prog := buildProgram(t, c)
	res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})

	reported := make(map[string]bool)
	for _, r := range res.Reports {
		reported[r.Fn] = true
	}

	for fn, info := range c.Truth {
		switch {
		case info.Real && info.Detectable:
			if !reported[fn] {
				t.Errorf("missed detectable bug %s (%s)", fn, info.Pattern)
			}
		case info.Real && !info.Detectable:
			if reported[fn] {
				t.Errorf("undetectable-by-design bug %s (%s) was reported", fn, info.Pattern)
			}
		case info.FPExpected:
			if !reported[fn] {
				t.Errorf("FP pattern %s (%s) not reported", fn, info.Pattern)
			}
		default:
			if reported[fn] {
				t.Errorf("false positive on correct %s (%s)", fn, info.Pattern)
			}
		}
	}
	// No reports outside labeled functions (wrappers, helpers, utils must
	// all be clean).
	for fn := range reported {
		if _, ok := c.Truth[fn]; !ok {
			t.Errorf("report on unlabeled function %s", fn)
		}
	}
}

func TestClassificationShape(t *testing.T) {
	c := Generate(Config{Seed: 5, Mix: smallMix(), SimpleHelpers: 5, ComplexHelpers: 3, OtherFuncs: 50})
	prog := buildProgram(t, c)
	res := core.Analyze(context.Background(), prog, spec.LinuxDPM(), core.Options{})
	cl := res.Classification

	// All driver ops and wrappers are category 1.
	for fn := range c.Truth {
		if cl.Category[fn] != core.CatRefcount {
			t.Errorf("%s classified %s, want refcount-changing", fn, cl.Category[fn])
		}
	}
	for _, w := range c.Wrappers {
		if cl.Category[w] != core.CatRefcount {
			t.Errorf("wrapper %s classified %s", w, cl.Category[w])
		}
	}
	// Helpers called by drivers land in category 2; the complex ones are
	// excluded by the ≤3 gate.
	if cl.NumAffectingAnalyzed == 0 {
		t.Error("no analyzed category-2 functions")
	}
	if cl.NumAffectingUnanalyzed == 0 {
		t.Error("no unanalyzed category-2 functions")
	}
	// The utility mass is category 3.
	if cl.NumOther < 40 {
		t.Errorf("category-3 count %d, want ≥ 40", cl.NumOther)
	}
}

func TestGrepScanMatchesSiteTruth(t *testing.T) {
	c := Generate(Config{Seed: 13, Mix: smallMix(), OtherFuncs: 5})
	wrapperSet := make(map[string]bool)
	for _, w := range c.Wrappers {
		wrapperSet[w] = true
	}
	sc := &grepscan.Scanner{ExcludeFn: func(fn string) bool { return wrapperSet[fn] }}
	sites, stats := sc.ScanAll(c.Files)

	wantHandled, wantMissing := 0, 0
	for _, s := range c.Sites {
		if s.Handled {
			wantHandled++
			if s.MissingPut {
				wantMissing++
			}
		}
	}
	if stats.WithHandling != wantHandled {
		t.Errorf("handled sites: scanner %d, truth %d", stats.WithHandling, wantHandled)
	}
	if stats.MissingPut != wantMissing {
		t.Errorf("missing-put sites: scanner %d, truth %d", stats.MissingPut, wantMissing)
	}
	// Per-site agreement.
	truthByFn := make(map[string]SiteTruth)
	for _, s := range c.Sites {
		truthByFn[s.Fn] = s
	}
	for _, got := range sites {
		want, ok := truthByFn[got.EnclosingFn]
		if !ok {
			t.Errorf("scanner found unlabeled site in %s", got.EnclosingFn)
			continue
		}
		if got.PutOnError != !want.MissingPut {
			t.Errorf("site %s: scanner putOnError=%t, truth missing=%t", got.EnclosingFn, got.PutOnError, want.MissingPut)
		}
	}
}

func TestPaperMixRatios(t *testing.T) {
	m := PaperMix()
	handled := m.CorrectErrHandled + m.BugGetErrReturn + m.BugDoublePut + m.BugIRQStyle + m.BugAsymmetricErr
	missing := m.BugGetErrReturn + m.BugIRQStyle + m.BugAsymmetricErr
	detectableMissing := m.BugGetErrReturn
	if handled != 96 {
		t.Errorf("handled sites = %d, want 96 (§6.3)", handled)
	}
	if missing != 67 {
		t.Errorf("missing-put sites = %d, want 67 (§6.3)", missing)
	}
	if detectableMissing != 40 {
		t.Errorf("RID-detectable missing sites = %d, want 40 (§6.3)", detectableMissing)
	}
}
