package kernelgen

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/spec"
)

// ptrParams guesses which parameters hold object pointers from the
// generator's naming conventions.
func ptrParams(params []string) []bool {
	out := make([]bool, len(params))
	for i, p := range params {
		switch {
		case strings.Contains(p, "dev"), strings.Contains(p, "intf"),
			strings.Contains(p, "aux"), p == "o", p == "set":
			out[i] = true
		}
	}
	return out
}

// TestDifferentialGroundTruth validates the corpus labels dynamically: a
// pattern marked as a *detectable* bug must admit a dynamic IPP witness
// (two executions, same arguments and return value, different refcount
// deltas), while correct patterns and the undetectable-by-design bug
// classes must not. FP patterns are excluded: their indistinguishability
// is an artifact of the abstraction (havocked bit operations), which the
// interpreter shares, so they are not dynamically decidable.
func TestDifferentialGroundTruth(t *testing.T) {
	mix := Mix{
		CorrectBalanced:   2,
		CorrectErrHandled: 2,
		CorrectWrapperUse: 2,
		CorrectHeld:       2,
		BugGetErrReturn:   2,
		BugWrapperErrPath: 2,
		BugWrapperMisuse:  2,
		BugDoublePut:      2,
		BugIRQStyle:       2,
		BugAsymmetricErr:  2,
		BugLoopErrPath:    2,
		CorrectLoop:       2,
		CorrectSwitch:     2,
		BugDeepWrapper:    2,
	}
	c := Generate(Config{Seed: 33, Mix: mix})
	realProg := buildProgram(t, c)
	specs := spec.LinuxDPM()

	for fn, info := range c.Truth {
		f := realProg.Funcs[fn]
		if f == nil {
			t.Fatalf("labeled function %s not in program", fn)
		}
		w, werr := interp.FindWitness(realProg, specs, fn, ptrParams(f.Params), 800, 101)
		if werr != nil {
			t.Fatalf("%s: %v", fn, werr)
		}
		switch {
		case info.Real && info.Detectable:
			if w == nil {
				t.Errorf("%s (%s): detectable bug has no dynamic witness", fn, info.Pattern)
			}
		case info.FPExpected:
			// Not decidable dynamically under the shared abstraction.
		default:
			// Correct patterns and undetectable bug classes: the runtime
			// must never produce same-return different-delta executions.
			if w != nil {
				t.Errorf("%s (%s): unexpected dynamic witness\n  A: %s\n  B: %s",
					fn, info.Pattern, w.A.Key(), w.B.Key())
			}
		}
	}
}
