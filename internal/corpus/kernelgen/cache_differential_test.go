package kernelgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/spec"
)

// buildFiles lowers a raw file map (deterministic order) into a program.
func buildFiles(t testing.TB, files map[string]string) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			t.Fatalf("parse %s: %v", n, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", n, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

func analyzeFiles(t testing.TB, files map[string]string, cacheDir string, workers int) (*core.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res := core.Analyze(context.Background(), buildFiles(t, files), spec.LinuxDPM(),
		core.Options{Workers: workers, CacheDir: cacheDir, Obs: obs.New(nil, reg)})
	return res, reg
}

// renderOutcome flattens reports (with full detail) and diagnostics for
// byte comparison.
func renderOutcome(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// mutateFiles returns base with a random subset of files replaced by the
// same-named files of variant (generated from the same Config at another
// seed, so the file name partition is identical but bodies — and driver
// names — differ). At least one file is replaced and at least one kept.
func mutateFiles(t *testing.T, base, variant map[string]string, rngSeed int64) map[string]string {
	t.Helper()
	if len(base) != len(variant) {
		t.Fatalf("file sets differ in size: %d vs %d", len(base), len(variant))
	}
	names := make([]string, 0, len(base))
	for n := range base {
		if _, ok := variant[n]; !ok {
			t.Fatalf("variant corpus lacks file %s", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(rngSeed))
	out := make(map[string]string, len(base))
	replaced := 0
	for _, n := range names {
		if rng.Intn(100) < 40 && base[n] != variant[n] {
			out[n] = variant[n]
			replaced++
		} else {
			out[n] = base[n]
		}
	}
	if replaced == 0 || replaced == len(names) {
		t.Fatalf("degenerate mutation: %d of %d files replaced", replaced, len(names))
	}
	t.Logf("mutated %d of %d files", replaced, len(names))
	return out
}

// TestCacheWarmStartDifferential is the randomized warm-start oracle: a
// cold run populates the store from corpus A, a random subset of A's
// files is then replaced with differently-seeded bodies, and the
// warm-start run over the mutated corpus must be byte-identical — reports
// and diagnostics — to a from-scratch run, at one worker and at four.
// The warm run must also actually exercise the partial-hit path: some
// functions served from the store, some re-analyzed.
func TestCacheWarmStartDifferential(t *testing.T) {
	cfgA := Config{Seed: 71, Mix: smallMix(), SimpleHelpers: 8, ComplexHelpers: 5, OtherFuncs: 30}
	cfgB := cfgA
	cfgB.Seed = 72
	a := Generate(cfgA)
	b := Generate(cfgB)
	mutated := mutateFiles(t, a.Files, b.Files, 1)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			cold, _ := analyzeFiles(t, a.Files, dir, workers)
			if len(cold.Reports) == 0 {
				t.Fatal("cold corpus produced no reports; the oracle is vacuous")
			}

			warm, wreg := analyzeFiles(t, mutated, dir, workers)
			scratch, _ := analyzeFiles(t, mutated, "", workers)

			if got, want := renderOutcome(warm), renderOutcome(scratch); got != want {
				t.Errorf("warm-start output differs from from-scratch:\n--- warm ---\n%s--- scratch ---\n%s", got, want)
			}
			h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses)
			if h == 0 || m == 0 {
				t.Errorf("warm run hits/misses = %d/%d; the mutation should hit some entries and miss others", h, m)
			}
		})
	}
}

// TestCacheExplainUnaffected pins that provenance capture (`rid explain`)
// bypasses the store: the rendered evidence over the mutated corpus is
// byte-identical whether or not a populated cache directory is
// configured.
func TestCacheExplainUnaffected(t *testing.T) {
	cfgA := Config{Seed: 71, Mix: smallMix(), SimpleHelpers: 8, ComplexHelpers: 5, OtherFuncs: 30}
	cfgB := cfgA
	cfgB.Seed = 72
	a := Generate(cfgA)
	mutated := mutateFiles(t, a.Files, Generate(cfgB).Files, 1)

	dir := t.TempDir()
	analyzeFiles(t, a.Files, dir, 1) // populate the store

	explain := func(cacheDir string) string {
		res := core.Analyze(context.Background(), buildFiles(t, mutated), spec.LinuxDPM(),
			core.Options{CacheDir: cacheDir, Provenance: true})
		var buf bytes.Buffer
		if err := report.WriteExplain(&buf, res.ReportsByFunction()); err != nil {
			t.Fatalf("WriteExplain: %v", err)
		}
		return buf.String()
	}
	withCache := explain(dir)
	without := explain("")
	if withCache == "" {
		t.Fatal("explain produced no output; the oracle is vacuous")
	}
	if withCache != without {
		t.Error("explain output differs when a cache directory is configured")
	}
}
