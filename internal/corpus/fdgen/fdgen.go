// Package fdgen generates a deterministic file-handle lifecycle corpus in
// the mini-C language, with ground-truth labels, for the fd-leak spec
// pack (spec.FD). It covers the pack's whole API surface: allocation
// (fd_open/fd_dup with null-checked failure entries), balance
// (fd_get/fd_put, fd_close), and ownership transfer (fd_send drops the
// caller's handle only on success).
//
// Detectable bugs recycle their return values so the leaking path and a
// clean path are co-satisfiable; the consistent-leak and disjoint-return
// patterns are real bugs deliberately outside RID's reach.
package fdgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern identifies a generation template.
type Pattern string

// Generation templates. "Bug*" patterns contain a real handle-lifecycle
// bug; "FP*" patterns are correct code the abstraction cannot prove
// consistent; "Correct*" patterns are clean.
const (
	CorrectOpenClose   Pattern = "correct-open-close"   // open, use, close
	CorrectReturnOwner Pattern = "correct-return-owner" // handle escapes to the caller
	CorrectGetPut      Pattern = "correct-get-put"      // pinned around work, both exits
	CorrectSendCleanup Pattern = "correct-send-cleanup" // close only when the send failed
	BugOpenErrLeak     Pattern = "bug-open-err-leak"    // error exit drops the handle; detectable
	BugDupLeak         Pattern = "bug-dup-leak"         // dup'd handle leaks on error; detectable
	BugDoubleClose     Pattern = "bug-double-close"     // closed twice on the tail; detectable
	BugGetErrReturn    Pattern = "bug-get-err-return"   // pin kept on the error exit; detectable
	BugSendOwnership   Pattern = "bug-send-ownership"   // close-on-send-failure vs keep-on-early-error; detectable
	BugConsistentLeak  Pattern = "bug-consistent-leak"  // leaked on the only success path; real, NOT detectable
	FPFlagGuard        Pattern = "fp-flag-guard"        // flag-guarded get/put false positive
)

// Mix sets how many functions of each pattern to generate.
type Mix struct {
	CorrectOpenClose   int
	CorrectReturnOwner int
	CorrectGetPut      int
	CorrectSendCleanup int
	BugOpenErrLeak     int
	BugDupLeak         int
	BugDoubleClose     int
	BugGetErrReturn    int
	BugSendOwnership   int
	BugConsistentLeak  int
	FPFlagGuard        int
}

// DefaultMix is a small corpus with every pattern represented and a
// TP:FP ratio that keeps precision above 0.9 at full recall.
func DefaultMix() Mix {
	return Mix{
		CorrectOpenClose:   4,
		CorrectReturnOwner: 3,
		CorrectGetPut:      3,
		CorrectSendCleanup: 3,
		BugOpenErrLeak:     3,
		BugDupLeak:         3,
		BugDoubleClose:     2,
		BugGetErrReturn:    2,
		BugSendOwnership:   2,
		BugConsistentLeak:  2,
		FPFlagGuard:        1,
	}
}

// Config controls corpus generation.
type Config struct {
	Seed         int64
	Mix          Mix
	FuncsPerFile int // default 10
}

// BugInfo labels one generated function.
type BugInfo struct {
	Pattern    Pattern
	Real       bool // a real handle-lifecycle bug exists in the function
	Detectable bool // within RID's reach (an IPP on [f].fd exists)
	FPExpected bool // correct code on which RID is expected to report
}

// Corpus is the generated source tree plus ground truth.
type Corpus struct {
	Files    map[string]string
	Truth    map[string]BugInfo
	NumFuncs int
}

// header declares the fd APIs (covered by spec.FD) and the havocked
// externs the bodies branch on.
const header = `
struct file;
struct sock;
struct req { int flags; int mode; };

extern struct file *fd_open(struct req *p);
extern struct file *fd_dup(struct file *f);
extern void fd_close(struct file *f);
extern void fd_get(struct file *f);
extern void fd_put(struct file *f);
extern int fd_send(struct sock *s, struct file *f);
extern int req_setup(struct req *r, struct file *f);
extern int req_check(struct file *f);
`

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	if cfg.FuncsPerFile == 0 {
		cfg.FuncsPerFile = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Files: make(map[string]string),
		Truth: make(map[string]BugInfo),
	}
	var seq []Pattern
	add := func(p Pattern, n int) {
		for i := 0; i < n; i++ {
			seq = append(seq, p)
		}
	}
	m := cfg.Mix
	add(CorrectOpenClose, m.CorrectOpenClose)
	add(CorrectReturnOwner, m.CorrectReturnOwner)
	add(CorrectGetPut, m.CorrectGetPut)
	add(CorrectSendCleanup, m.CorrectSendCleanup)
	add(BugOpenErrLeak, m.BugOpenErrLeak)
	add(BugDupLeak, m.BugDupLeak)
	add(BugDoubleClose, m.BugDoubleClose)
	add(BugGetErrReturn, m.BugGetErrReturn)
	add(BugSendOwnership, m.BugSendOwnership)
	add(BugConsistentLeak, m.BugConsistentLeak)
	add(FPFlagGuard, m.FPFlagGuard)
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	var b strings.Builder
	b.WriteString(header)
	fileIdx := 1
	funcsInFile := 0
	flush := func() {
		if funcsInFile == 0 {
			return
		}
		c.Files[fmt.Sprintf("fds/mod%02d.c", fileIdx)] = b.String()
		b.Reset()
		b.WriteString(header)
		fileIdx++
		funcsInFile = 0
	}
	for i, p := range seq {
		name := fmt.Sprintf("fd_%s_%d", slug(p), i+1)
		info, src := genFunc(rng, name, p)
		c.Truth[name] = info
		b.WriteString(src)
		c.NumFuncs++
		funcsInFile++
		if funcsInFile >= cfg.FuncsPerFile {
			flush()
		}
	}
	flush()
	return c
}

func slug(p Pattern) string {
	return strings.NewReplacer("correct-", "ok_", "bug-", "b_", "fp-", "fp_", "-", "_").Replace(string(p))
}

func genFunc(rng *rand.Rand, name string, p Pattern) (BugInfo, string) {
	info := BugInfo{Pattern: p}
	var src string
	switch p {
	case CorrectOpenClose:
		src = fmt.Sprintf(`
int %s(struct req *p) {
    struct file *f;
    f = fd_open(p);
    if (f == NULL)
        return -1;
    req_check(f);
    fd_close(f);
    return 0;
}
`, name)
	case CorrectReturnOwner:
		src = fmt.Sprintf(`
struct file *%s(struct req *p, struct req *r) {
    struct file *f;
    f = fd_open(p);
    if (f == NULL)
        return NULL;
    if (req_setup(r, f) < 0) {
        fd_close(f);
        return NULL;
    }
    return f;
}
`, name)
	case CorrectGetPut:
		src = fmt.Sprintf(`
int %s(struct file *f, struct req *r) {
    int ret;
    fd_get(f);
    ret = req_setup(r, f);
    if (ret < 0) {
        fd_put(f);
        return ret;
    }
    fd_put(f);
    return 0;
}
`, name)
	case CorrectSendCleanup:
		// Success transfers ownership (net -1), failure closes (net -1):
		// consistent on every path.
		src = fmt.Sprintf(`
int %s(struct sock *s, struct file *f) {
    int ret;
    ret = fd_send(s, f);
    if (ret < 0)
        fd_close(f);
    return ret;
}
`, name)
	case BugOpenErrLeak:
		// Both NULL returns are co-satisfiable; only the second still
		// holds the handle — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
struct file *%s(struct req *p, struct req *r) {
    struct file *f;
    f = fd_open(p);
    if (f == NULL)
        return NULL;
    if (req_setup(r, f) < 0)
        return NULL;
    return f;
}
`, name)
	case BugDupLeak:
		// The dup-failure exit returns -1 with net 0; the error exit
		// recycles req_setup's result (which can be -1) holding the
		// dup'd handle — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct file *f0, struct req *r) {
    struct file *f;
    int ret;
    f = fd_dup(f0);
    if (f == NULL)
        return -1;
    ret = req_setup(r, f);
    if (ret < 0)
        return ret;
    fd_close(f);
    return 0;
}
`, name)
	case BugDoubleClose:
		// The tail closes twice (net -1) and recycles req_setup's result;
		// the open-failure exit returns the same -1 with net 0 — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct req *p, struct req *r) {
    struct file *f;
    int ret;
    f = fd_open(p);
    if (f == NULL)
        return -1;
    ret = req_setup(r, f);
    fd_close(f);
    fd_close(f);
    return ret;
}
`, name)
	case BugGetErrReturn:
		// The early error exit keeps the pin and returns -1; the balanced
		// tail recycles req_setup's result, which can also be -1 —
		// detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct file *f, struct req *r) {
    int ret;
    fd_get(f);
    if (req_check(f) < 0)
        return -1;
    ret = req_setup(r, f);
    fd_put(f);
    return ret;
}
`, name)
	case BugSendOwnership:
		// On the early error the caller keeps the handle (net 0); on a
		// failed send it is closed (net -1). Both exits can return -1, so
		// the caller cannot know whether it still owns f — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct sock *s, struct file *f, struct req *r) {
    int ret;
    ret = req_setup(r, f);
    if (ret < 0)
        return ret;
    ret = fd_send(s, f);
    if (ret < 0) {
        fd_close(f);
        return ret;
    }
    return 0;
}
`, name)
	case BugConsistentLeak:
		// Leaked on the only success path, but the two exits return
		// disjoint constants: no co-satisfiable pair. Real bug, outside
		// RID's reach.
		info.Real, info.Detectable = true, false
		src = fmt.Sprintf(`
int %s(struct req *p, struct req *r) {
    struct file *f;
    f = fd_open(p);
    if (f == NULL)
        return -1;
    req_setup(r, f);
    return 0;
}
`, name)
	case FPFlagGuard:
		// Correct flag-guarded pinning: the abstraction havocs the bit
		// test, so the (pinned, not-released) combination looks feasible.
		info.FPExpected = true
		mask := 1 << rng.Intn(5)
		src = fmt.Sprintf(`
void %s(struct file *f, struct req *r) {
    if (r->flags & %d) {
        fd_get(f);
    }
    req_setup(r, f);
    if (r->flags & %d) {
        fd_put(f);
    }
}
`, name, mask, mask)
	}
	return info, src
}
