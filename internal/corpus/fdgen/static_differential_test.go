package fdgen

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/spec"
)

// TestStaticCoversDynamicWitnessesFD differentially tests the static
// pipeline under the fd-leak pack against the concrete interpreter: any
// function the interpreter can exhibit an IPP witness for (two
// executions, same arguments and return value, different net [f].fd)
// must be statically reported or carry a degradation diagnostic.
// Workers=1 and Workers=4 must produce the same report set.
func TestStaticCoversDynamicWitnessesFD(t *testing.T) {
	specs := spec.FD()
	for _, seed := range []int64{7, 211} {
		c := Generate(Config{Seed: seed, Mix: DefaultMix()})
		prog := buildProgram(t, c)

		seq := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 1})
		par := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 4})

		reported := map[string]bool{}
		for _, r := range seq.Reports {
			reported[r.Fn] = true
		}
		parReported := map[string]bool{}
		for _, r := range par.Reports {
			parReported[r.Fn] = true
		}
		for fn := range reported {
			if !parReported[fn] {
				t.Errorf("seed %d: %s reported at Workers=1 but not Workers=4", seed, fn)
			}
		}
		for fn := range parReported {
			if !reported[fn] {
				t.Errorf("seed %d: %s reported at Workers=4 but not Workers=1", seed, fn)
			}
		}

		explained := map[string]bool{}
		for _, d := range seq.Diagnostics {
			if d.Fn != "" {
				explained[d.Fn] = true
			}
		}

		for fn, info := range c.Truth {
			f := prog.Funcs[fn]
			if f == nil {
				t.Fatalf("seed %d: labeled function %s not in program", seed, fn)
			}
			w, err := interp.FindWitness(prog, specs, fn, ptrParams(f.Params), 800, seed*3+1)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, fn, err)
			}
			if info.Real && info.Detectable && w == nil {
				t.Errorf("seed %d: %s (%s): detectable bug has no dynamic witness", seed, fn, info.Pattern)
			}
			if w == nil {
				continue
			}
			if !reported[fn] && !explained[fn] {
				t.Errorf("seed %d: %s has a dynamic IPP witness but no static report and no diagnostic\n  A: %s\n  B: %s",
					seed, fn, w.A.Key(), w.B.Key())
			}
		}
	}
}
