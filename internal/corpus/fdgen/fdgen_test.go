package fdgen

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

func buildProgram(t testing.TB, c *Corpus) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	for name, src := range c.Files {
		f, err := parser.ParseFile(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", name, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

// ptrParams marks the generator's pointer parameters by name.
func ptrParams(params []string) []bool {
	out := make([]bool, len(params))
	for i, p := range params {
		switch p {
		case "p", "r", "f", "f0", "s":
			out[i] = true
		}
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 5, Mix: DefaultMix()})
	b := Generate(Config{Seed: 5, Mix: DefaultMix()})
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file counts differ: %d vs %d", len(a.Files), len(b.Files))
	}
	for n, src := range a.Files {
		if b.Files[n] != src {
			t.Errorf("file %s differs between identical-seed runs", n)
		}
	}
}

// TestDetectionMatrix pins the pack's reach statically: detectable bugs
// and FP patterns are reported, everything else is silent.
func TestDetectionMatrix(t *testing.T) {
	c := Generate(Config{Seed: 11, Mix: DefaultMix()})
	prog := buildProgram(t, c)
	res := core.Analyze(context.Background(), prog, spec.FD(), core.Options{})

	reported := map[string]bool{}
	for _, r := range res.Reports {
		reported[r.Fn] = true
		if r.Resource != "fd" {
			t.Errorf("%s: report resource = %q, want \"fd\"", r.Fn, r.Resource)
		}
	}
	for fn, info := range c.Truth {
		want := info.Detectable || info.FPExpected
		if reported[fn] != want {
			t.Errorf("%s (%s): reported=%t, want %t", fn, info.Pattern, reported[fn], want)
		}
	}
}
