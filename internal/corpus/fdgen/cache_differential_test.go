package fdgen

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spec"
)

func analyzeCorpus(t testing.TB, c *Corpus, specs *spec.Specs, cacheDir string, workers int) (*core.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res := core.Analyze(context.Background(), buildProgram(t, c), specs,
		core.Options{Workers: workers, CacheDir: cacheDir, Obs: obs.New(nil, reg)})
	return res, reg
}

func renderOutcome(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCacheWarmStartDifferentialFD is the fd-pack warm-start oracle: a
// cold run populates the store and a warm run over the same corpus must
// be byte-identical with every lookup a hit, at one worker and at four.
func TestCacheWarmStartDifferentialFD(t *testing.T) {
	c := Generate(Config{Seed: 23, Mix: DefaultMix()})
	specs := spec.FD()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			cold, _ := analyzeCorpus(t, c, specs, dir, workers)
			if len(cold.Reports) == 0 {
				t.Fatal("cold run produced no reports; the oracle is vacuous")
			}
			warm, wreg := analyzeCorpus(t, c, specs, dir, workers)
			if got, want := renderOutcome(warm), renderOutcome(cold); got != want {
				t.Errorf("warm output differs from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
			}
			h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses)
			if h == 0 || m != 0 {
				t.Errorf("warm run hits/misses = %d/%d, want all hits", h, m)
			}
		})
	}
}

// TestCacheSpecPackIsolation pins cache safety from the fd side: an
// fd-pack store is invisible to a refcount run on the same directory,
// and fd entries replay byte-identically afterwards.
func TestCacheSpecPackIsolation(t *testing.T) {
	c := Generate(Config{Seed: 29, Mix: DefaultMix()})
	dir := t.TempDir()

	cold, _ := analyzeCorpus(t, c, spec.FD(), dir, 1)
	if len(cold.Reports) == 0 {
		t.Fatal("cold fd run produced no reports; the oracle is vacuous")
	}

	_, oreg := analyzeCorpus(t, c, spec.PythonC(), dir, 1)
	if h := oreg.Counter(obs.MStoreHits); h != 0 {
		t.Fatalf("python-c run hit %d fd-pack entries", h)
	}

	warm, wreg := analyzeCorpus(t, c, spec.FD(), dir, 1)
	if h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses); h == 0 || m != 0 {
		t.Errorf("fd warm run hits/misses = %d/%d, want all hits", h, m)
	}
	if got, want := renderOutcome(warm), renderOutcome(cold); got != want {
		t.Errorf("fd warm output differs from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}
