package pycgen

import (
	"context"
	"testing"

	"repro/internal/baseline/cpyrule"
	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/spec"
)

func buildProgram(t testing.TB, m *Module) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	for name, src := range m.Files {
		f, err := parser.ParseFile(name, src)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", name, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

// detect runs both tools and returns per-function hit sets.
func detect(t testing.TB, m *Module) (rid, cpy map[string]bool) {
	t.Helper()
	prog := buildProgram(t, m)
	res := core.Analyze(context.Background(), prog, spec.PythonC(), core.Options{})
	rid = make(map[string]bool)
	for _, r := range res.Reports {
		rid[r.Fn] = true
	}
	cpy = make(map[string]bool)
	for _, r := range cpyrule.New(spec.PythonC(), cpyrule.Config{}).Check(prog) {
		cpy[r.Fn] = true
	}
	return rid, cpy
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "m", Seed: 9, Mix: Mix{Common: 3, RIDOnly: 3, CpyOnly: 2, Correct: 4}}
	a, b := Generate(cfg), Generate(cfg)
	for name, src := range a.Files {
		if b.Files[name] != src {
			t.Fatalf("file %s differs across runs", name)
		}
	}
}

// TestClassMatrix checks that each bug class is detected by exactly the
// tools Table 2 attributes it to.
func TestClassMatrix(t *testing.T) {
	m := Generate(Config{Name: "probe", Seed: 21, Mix: Mix{Common: 8, RIDOnly: 8, CpyOnly: 8, Correct: 10}})
	rid, cpy := detect(t, m)

	for fn, cls := range m.Truth {
		switch cls {
		case ClassCommon:
			if !rid[fn] {
				t.Errorf("RID missed common bug %s", fn)
			}
			if !cpy[fn] {
				t.Errorf("cpyrule missed common bug %s", fn)
			}
		case ClassRIDOnly:
			if !rid[fn] {
				t.Errorf("RID missed RID-only bug %s", fn)
			}
			if cpy[fn] {
				t.Errorf("cpyrule unexpectedly caught RID-only bug %s", fn)
			}
		case ClassCpyOnly:
			if rid[fn] {
				t.Errorf("RID unexpectedly caught cpy-only bug %s", fn)
			}
			if !cpy[fn] {
				t.Errorf("cpyrule missed cpy-only bug %s", fn)
			}
		case ClassCorrect:
			if rid[fn] {
				t.Errorf("RID false positive on %s", fn)
			}
			if cpy[fn] {
				t.Errorf("cpyrule false positive on %s", fn)
			}
		}
	}
}

func TestPaperConfigsShape(t *testing.T) {
	cfgs := PaperConfigs()
	if len(cfgs) != 3 {
		t.Fatalf("modules: %d", len(cfgs))
	}
	// Table 2 totals: common 86, RID-specific 114, Cpychecker-specific 16.
	var common, ridOnly, cpyOnly int
	for _, c := range cfgs {
		common += c.Mix.Common
		ridOnly += c.Mix.RIDOnly
		cpyOnly += c.Mix.CpyOnly
	}
	if common != 86 || ridOnly != 114 || cpyOnly != 16 {
		t.Errorf("class totals = %d/%d/%d, want 86/114/16", common, ridOnly, cpyOnly)
	}
}
