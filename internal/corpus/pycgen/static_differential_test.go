package pycgen

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/spec"
)

// TestStaticCoversDynamicWitnessesPythonC is the Python/C counterpart of
// the kernelgen differential: over randomized modules, any function the
// concrete interpreter can exhibit an IPP witness for must be statically
// reported or carry a degradation diagnostic naming it. Workers=1 and
// Workers=4 must produce the same report set.
func TestStaticCoversDynamicWitnessesPythonC(t *testing.T) {
	specs := spec.PythonC()
	for _, seed := range []int64{19, 404} {
		m := Generate(Config{
			Name: fmt.Sprintf("diff%d", seed),
			Seed: seed,
			Mix:  Mix{Common: 3, RIDOnly: 3, CpyOnly: 3, Correct: 5},
		})
		prog := buildProgram(t, m)

		seq := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 1})
		par := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 4})

		reported := map[string]bool{}
		for _, r := range seq.Reports {
			reported[r.Fn] = true
		}
		parReported := map[string]bool{}
		for _, r := range par.Reports {
			parReported[r.Fn] = true
		}
		for fn := range reported {
			if !parReported[fn] {
				t.Errorf("seed %d: %s reported at Workers=1 but not Workers=4", seed, fn)
			}
		}
		for fn := range parReported {
			if !reported[fn] {
				t.Errorf("seed %d: %s reported at Workers=4 but not Workers=1", seed, fn)
			}
		}

		explained := map[string]bool{}
		for _, d := range seq.Diagnostics {
			if d.Fn != "" {
				explained[d.Fn] = true
			}
		}

		for fn := range m.Truth {
			f := prog.Funcs[fn]
			if f == nil {
				t.Fatalf("seed %d: %s missing", seed, fn)
			}
			ptr := make([]bool, len(f.Params))
			for i := range ptr {
				ptr[i] = true
			}
			w, err := interp.FindWitness(prog, specs, fn, ptr, 600, seed*5+3)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, fn, err)
			}
			if w == nil {
				continue
			}
			if !reported[fn] && !explained[fn] {
				t.Errorf("seed %d: %s has a dynamic IPP witness but no static report and no diagnostic\n  A: %s\n  B: %s",
					seed, fn, w.A.Key(), w.B.Key())
			}
		}
	}
}
