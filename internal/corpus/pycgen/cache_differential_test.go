package pycgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/spec"
)

// buildRawFiles lowers a raw file map in deterministic order.
func buildRawFiles(t testing.TB, files map[string]string) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			t.Fatalf("parse %s: %v", n, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", n, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

func analyzeRawFiles(t testing.TB, files map[string]string, cacheDir string, workers int) (*core.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res := core.Analyze(context.Background(), buildRawFiles(t, files), spec.PythonC(),
		core.Options{Workers: workers, CacheDir: cacheDir, Obs: obs.New(nil, reg)})
	return res, reg
}

func renderRawOutcome(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// mutateModule replaces a random subset of base's files with the
// same-named files of variant. Same Config at a different seed yields the
// same file-name partition but reshuffled classes and different function
// names, so replaced files both drop old entries and demand new ones.
func mutateModule(t *testing.T, base, variant map[string]string, rngSeed int64) map[string]string {
	t.Helper()
	if len(base) != len(variant) {
		t.Fatalf("file sets differ in size: %d vs %d", len(base), len(variant))
	}
	names := make([]string, 0, len(base))
	for n := range base {
		if _, ok := variant[n]; !ok {
			t.Fatalf("variant module lacks file %s", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(rngSeed))
	out := make(map[string]string, len(base))
	replaced := 0
	for _, n := range names {
		if rng.Intn(100) < 40 && base[n] != variant[n] {
			out[n] = variant[n]
			replaced++
		} else {
			out[n] = base[n]
		}
	}
	if replaced == 0 || replaced == len(names) {
		t.Fatalf("degenerate mutation: %d of %d files replaced", replaced, len(names))
	}
	t.Logf("mutated %d of %d files", replaced, len(names))
	return out
}

// TestCacheWarmStartDifferentialPythonC is the Python/C twin of the
// kernelgen warm-start oracle: cold run over module A populates the
// store, a random subset of A's files is swapped for differently-seeded
// bodies, and the warm-start run over the mutated module must be
// byte-identical to a from-scratch run at one worker and at four, while
// actually exercising both store hits and misses.
func TestCacheWarmStartDifferentialPythonC(t *testing.T) {
	mix := Mix{Common: 12, RIDOnly: 12, CpyOnly: 8, Correct: 18}
	a := Generate(Config{Name: "krbV", Seed: 71, Mix: mix})
	b := Generate(Config{Name: "krbV", Seed: 72, Mix: mix})
	mutated := mutateModule(t, a.Files, b.Files, 5)

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			cold, _ := analyzeRawFiles(t, a.Files, dir, workers)
			if len(cold.Reports) == 0 {
				t.Fatal("cold module produced no reports; the oracle is vacuous")
			}

			warm, wreg := analyzeRawFiles(t, mutated, dir, workers)
			scratch, _ := analyzeRawFiles(t, mutated, "", workers)

			if got, want := renderRawOutcome(warm), renderRawOutcome(scratch); got != want {
				t.Errorf("warm-start output differs from from-scratch:\n--- warm ---\n%s--- scratch ---\n%s", got, want)
			}
			h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses)
			if h == 0 || m == 0 {
				t.Errorf("warm run hits/misses = %d/%d; the mutation should hit some entries and miss others", h, m)
			}
		})
	}
}
