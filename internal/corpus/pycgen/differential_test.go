package pycgen

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/spec"
)

// TestDifferentialPythonC validates the Table 2 class labels dynamically:
// the classes RID is credited with (common and RID-only) must produce
// runtime IPP witnesses — two executions with the same arguments and
// return value but different refcount deltas — while the Cpychecker-only
// class (consistent leaks) and correct code must not.
func TestDifferentialPythonC(t *testing.T) {
	m := Generate(Config{Name: "dyn", Seed: 77, Mix: Mix{Common: 4, RIDOnly: 4, CpyOnly: 4, Correct: 6}})
	prog := buildProgram(t, m)
	specs := spec.PythonC()

	for fn, cls := range m.Truth {
		f := prog.Funcs[fn]
		if f == nil {
			t.Fatalf("%s missing", fn)
		}
		// All generated Python/C functions take object pointers.
		ptr := make([]bool, len(f.Params))
		for i := range ptr {
			ptr[i] = true
		}
		w, err := interp.FindWitness(prog, specs, fn, ptr, 800, 909)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		switch cls {
		case ClassCommon, ClassRIDOnly:
			if w == nil {
				t.Errorf("%s (%s): no dynamic witness for an IPP-class bug", fn, cls)
			}
		case ClassCpyOnly, ClassCorrect:
			if w != nil {
				t.Errorf("%s (%s): unexpected witness\n  A: %s\n  B: %s", fn, cls, w.A.Key(), w.B.Key())
			}
		}
	}
}
