package pycgen

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/ipp"
	"repro/internal/spec"
)

// TestReplayDeterministicAcrossWorkersPythonC is the Python/C counterpart
// of kernelgen's replay determinism differential: with provenance on,
// every report over a randomized module carries a replay verdict, and
// the per-report verdicts — in particular the confirmed-by-replay set —
// are identical at Workers=1 and Workers=4.
func TestReplayDeterministicAcrossWorkersPythonC(t *testing.T) {
	specs := spec.PythonC()
	for _, seed := range []int64{19, 404} {
		m := Generate(Config{
			Name: fmt.Sprintf("replaydiff%d", seed),
			Seed: seed,
			Mix:  Mix{Common: 2, RIDOnly: 2, CpyOnly: 2, Correct: 3},
		})
		prog := buildProgram(t, m)

		seq := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 1, Provenance: true})
		par := core.Analyze(context.Background(), prog, specs, core.Options{Workers: 4, Provenance: true})

		sv := verdictMap(t, seq)
		pv := verdictMap(t, par)
		for key, verdict := range sv {
			if got, ok := pv[key]; !ok {
				t.Errorf("seed %d: %s replayed at Workers=1 but absent at Workers=4", seed, key)
			} else if got != verdict {
				t.Errorf("seed %d: %s verdict %s at Workers=1 but %s at Workers=4", seed, key, verdict, got)
			}
		}
		for key := range pv {
			if _, ok := sv[key]; !ok {
				t.Errorf("seed %d: %s replayed at Workers=4 but absent at Workers=1", seed, key)
			}
		}
		if c1, c4 := confirmedKeys(sv), confirmedKeys(pv); fmt.Sprint(c1) != fmt.Sprint(c4) {
			t.Errorf("seed %d: confirmed-by-replay sets differ:\n  Workers=1: %v\n  Workers=4: %v", seed, c1, c4)
		}
	}
}

func verdictMap(t *testing.T, res *core.Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, r := range res.Reports {
		if r.Evidence == nil || r.Evidence.Replay == nil {
			t.Fatalf("%s: report missing replay verdict with Provenance on", r.Fn)
		}
		key := r.Fn + "/" + r.Refcount.Key()
		if prev, ok := out[key]; ok && prev != r.Evidence.Replay.Verdict {
			t.Fatalf("%s: conflicting verdicts %s vs %s within one run", key, prev, r.Evidence.Replay.Verdict)
		}
		out[key] = r.Evidence.Replay.Verdict
	}
	return out
}

func confirmedKeys(v map[string]string) []string {
	var out []string
	for k, verdict := range v {
		if verdict == ipp.ReplayConfirmed {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
