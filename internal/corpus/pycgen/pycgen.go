// Package pycgen generates Python/C-style native modules in the mini-C
// language, standing in for the krbV, ldap and pyaudio extensions of the
// paper's Table 2. Each module is seeded and labeled with ground truth.
//
// Bug classes mirror the causes behind Table 2's three columns:
//
//   - ClassCommon: an error-path leak both RID and the escape-rule
//     baseline can see (single assignment, co-satisfiable return values).
//   - ClassRIDOnly: a leak hidden behind variable reassignment — the
//     non-SSA escape-rule checker gets confused, RID's path-pair check
//     does not (the paper attributes RID's advantage to SSA handling).
//   - ClassCpyOnly: a consistent leak — every path carries the same
//     imbalance, so no inconsistent pair exists and RID is silent, while
//     the escape rule flags it.
//   - ClassCorrect: clean code, flagged by neither.
package pycgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Class labels a generated function.
type Class string

// Bug classes.
const (
	ClassCommon  Class = "common"
	ClassRIDOnly Class = "rid-only"
	ClassCpyOnly Class = "cpy-only"
	ClassCorrect Class = "correct"
)

// Mix sets how many functions of each class to generate.
type Mix struct {
	Common  int
	RIDOnly int
	CpyOnly int
	Correct int
}

// Config describes one module.
type Config struct {
	Name string
	Seed int64
	Mix  Mix
}

// PaperConfigs returns the three modules with Table 2's exact class
// counts: common / RID-specific / Cpychecker-specific.
func PaperConfigs() []Config {
	return []Config{
		{Name: "krbV", Seed: 1, Mix: Mix{Common: 48, RIDOnly: 86, CpyOnly: 14, Correct: 40}},
		{Name: "ldap", Seed: 2, Mix: Mix{Common: 7, RIDOnly: 13, CpyOnly: 1, Correct: 20}},
		{Name: "pyaudio", Seed: 3, Mix: Mix{Common: 31, RIDOnly: 15, CpyOnly: 1, Correct: 25}},
	}
}

// Module is a generated module with ground truth.
type Module struct {
	Name  string
	Files map[string]string
	Truth map[string]Class // per generated function
}

const header = `
extern int do_build(PyObject *o, PyObject *a);
extern int do_register(PyObject *o);
extern int do_seed(PyObject *o);
extern int do_emit(PyObject *o, int n);
`

var allocAPIs = []struct {
	call string // %s receives the argument expression
	arg  string
}{
	{"PyList_New(%s)", "2"},
	{"PyTuple_New(%s)", "3"},
	{"PyDict_New(%s)", ""},
	{"PyInt_FromLong(%s)", "7"},
	{"PyLong_FromLong(%s)", "42"},
	{"Py_BuildValue(%s)", "fmt"},
}

// Generate builds one module.
func Generate(cfg Config) *Module {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Module{
		Name:  cfg.Name,
		Files: make(map[string]string),
		Truth: make(map[string]Class),
	}
	var seq []Class
	add := func(c Class, n int) {
		for i := 0; i < n; i++ {
			seq = append(seq, c)
		}
	}
	add(ClassCommon, cfg.Mix.Common)
	add(ClassRIDOnly, cfg.Mix.RIDOnly)
	add(ClassCpyOnly, cfg.Mix.CpyOnly)
	add(ClassCorrect, cfg.Mix.Correct)
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	var b strings.Builder
	b.WriteString(header)
	fileIdx := 1
	funcsInFile := 0
	nameSeq := 0
	flushFile := func() {
		if funcsInFile == 0 {
			return
		}
		m.Files[fmt.Sprintf("%s/mod%02d.c", cfg.Name, fileIdx)] = b.String()
		b.Reset()
		b.WriteString(header)
		fileIdx++
		funcsInFile = 0
	}
	for _, cls := range seq {
		nameSeq++
		name := fmt.Sprintf("%s_%s_%d", cfg.Name, classSlug(cls), nameSeq)
		m.Truth[name] = cls
		b.WriteString(genFunc(rng, name, cls))
		funcsInFile++
		if funcsInFile >= 10 {
			flushFile()
		}
	}
	flushFile()
	return m
}

func classSlug(c Class) string {
	switch c {
	case ClassCommon:
		return "cb"
	case ClassRIDOnly:
		return "rb"
	case ClassCpyOnly:
		return "pb"
	}
	return "ok"
}

func alloc(rng *rand.Rand, dst string) string {
	a := allocAPIs[rng.Intn(len(allocAPIs))]
	return fmt.Sprintf("    %s = "+a.call+";\n", dst, a.arg)
}

func genFunc(rng *rand.Rand, name string, cls Class) string {
	switch cls {
	case ClassCommon:
		// Error-path leak: both error exits return NULL, only the second
		// holds the reference.
		return fmt.Sprintf(`
PyObject *%s(PyObject *fmt, PyObject *a) {
    PyObject *obj;
%s    if (obj == NULL)
        return NULL;
    if (do_build(obj, a) < 0)
        return NULL;
    return obj;
}
`, name, alloc(rng, "obj"))
	case ClassRIDOnly:
		// Reassignment leak: the first object is dropped on the floor when
		// obj is re-bound; a non-SSA tracker loses both objects.
		return fmt.Sprintf(`
PyObject *%s(PyObject *fmt, PyObject *a) {
    PyObject *obj;
%s    if (obj == NULL)
        return NULL;
%s    if (obj == NULL)
        return NULL;
    return obj;
}
`, name, alloc(rng, "obj"), alloc(rng, "obj"))
	case ClassCpyOnly:
		if rng.Intn(2) == 0 {
			// Consistent +1 on an argument, never balanced.
			return fmt.Sprintf(`
int %s(PyObject *a) {
    Py_INCREF(a);
    do_register(a);
    return 0;
}
`, name)
		}
		// Leaked temporary with distinct return codes per path: no
		// co-satisfiable pair for RID, a clear escape-rule violation.
		return fmt.Sprintf(`
int %s(PyObject *fmt) {
    PyObject *tmp;
%s    if (tmp == NULL)
        return -1;
    do_seed(tmp);
    return 0;
}
`, name, alloc(rng, "tmp"))
	default: // ClassCorrect
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf(`
PyObject *%s(PyObject *fmt, PyObject *a) {
    PyObject *obj;
%s    if (obj == NULL)
        return NULL;
    if (do_build(obj, a) < 0) {
        Py_DECREF(obj);
        return NULL;
    }
    return obj;
}
`, name, alloc(rng, "obj"))
		case 1:
			return fmt.Sprintf(`
int %s(PyObject *a) {
    Py_INCREF(a);
    do_register(a);
    Py_DECREF(a);
    return 0;
}
`, name)
		case 2:
			return fmt.Sprintf(`
int %s(PyObject *fmt) {
    PyObject *tmp;
%s    if (tmp == NULL)
        return -1;
    do_seed(tmp);
    Py_DECREF(tmp);
    return 0;
}
`, name, alloc(rng, "tmp"))
		case 3:
			// Borrowed getter: no ownership, nothing to balance.
			return fmt.Sprintf(`
int %s(PyObject *lst) {
    PyObject *item;
    item = PyList_GetItem(lst, 0);
    if (item == NULL)
        return -1;
    do_register(item);
    return 0;
}
`, name)
		default:
			// Build-and-store: the element's reference is stolen by the
			// list, balancing the allocation.
			return fmt.Sprintf(`
PyObject *%s(void) {
    PyObject *lst;
    PyObject *v;
    lst = PyList_New(1);
    if (lst == NULL)
        return NULL;
    v = PyInt_FromLong(7);
    if (v == NULL) {
        Py_DECREF(lst);
        return NULL;
    }
    PyList_SetItem(lst, 0, v);
    return lst;
}
`, name)
		}
	}
}
