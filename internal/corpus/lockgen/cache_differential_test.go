package lockgen

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spec"
)

func analyzeCorpus(t testing.TB, c *Corpus, specs *spec.Specs, cacheDir string, workers int) (*core.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res := core.Analyze(context.Background(), buildProgram(t, c), specs,
		core.Options{Workers: workers, CacheDir: cacheDir, Obs: obs.New(nil, reg)})
	return res, reg
}

func renderOutcome(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCacheWarmStartDifferentialLock is the lock-pack warm-start oracle:
// a cold run populates the store and a warm run over the same corpus must
// be byte-identical with every lookup a hit, at one worker and at four.
func TestCacheWarmStartDifferentialLock(t *testing.T) {
	c := Generate(Config{Seed: 23, Mix: DefaultMix()})
	specs := spec.Lock()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			cold, _ := analyzeCorpus(t, c, specs, dir, workers)
			if len(cold.Reports) == 0 {
				t.Fatal("cold run produced no reports; the oracle is vacuous")
			}
			warm, wreg := analyzeCorpus(t, c, specs, dir, workers)
			if got, want := renderOutcome(warm), renderOutcome(cold); got != want {
				t.Errorf("warm output differs from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
			}
			h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses)
			if h == 0 || m != 0 {
				t.Errorf("warm run hits/misses = %d/%d, want all hits", h, m)
			}
		})
	}
}

// TestCacheSpecPackIsolation pins the cache-safety contract: two spec
// packs sharing one cache directory must never share summaries. A warm
// run under a different pack sees only misses, and the original pack's
// entries still replay byte-identically afterwards.
func TestCacheSpecPackIsolation(t *testing.T) {
	c := Generate(Config{Seed: 29, Mix: DefaultMix()})
	dir := t.TempDir()

	cold, creg := analyzeCorpus(t, c, spec.Lock(), dir, 1)
	if h := creg.Counter(obs.MStoreHits); h != 0 {
		t.Fatalf("cold lock run had %d hits", h)
	}
	if len(cold.Reports) == 0 {
		t.Fatal("cold lock run produced no reports; the oracle is vacuous")
	}

	// Same corpus, same cache dir, refcount pack: the spec digest differs,
	// so every lookup must miss — a hit would replay lock summaries into a
	// refcount run.
	other, oreg := analyzeCorpus(t, c, spec.LinuxDPM(), dir, 1)
	if h := oreg.Counter(obs.MStoreHits); h != 0 {
		t.Fatalf("linux-dpm run hit %d lock-pack entries", h)
	}
	for _, r := range other.Reports {
		if r.Resource == "lock" {
			t.Errorf("refcount run replayed a lock report in %s", r.Fn)
		}
	}

	// The lock entries survived: a lock warm run is all hits and
	// byte-identical to its cold run.
	warm, wreg := analyzeCorpus(t, c, spec.Lock(), dir, 1)
	if h, m := wreg.Counter(obs.MStoreHits), wreg.Counter(obs.MStoreMisses); h == 0 || m != 0 {
		t.Errorf("lock warm run hits/misses = %d/%d, want all hits", h, m)
	}
	if got, want := renderOutcome(warm), renderOutcome(cold); got != want {
		t.Errorf("lock warm output differs from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}
