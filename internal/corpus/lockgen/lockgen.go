// Package lockgen generates a deterministic lock-discipline corpus in the
// mini-C language, with ground-truth labels, for the lock-imbalance spec
// pack (spec.Lock). It is the lock-world twin of kernelgen: the lock APIs
// are extern declarations covered by the pack's summaries; a wrapper pair
// (trylock-style conditional acquire plus unconditional release) exercises
// summary propagation; and the bug patterns are the acquire/release
// analogs of the paper's Figures 8–10 — error paths that forget the
// unlock, double unlocks, and the constant-return shape RID cannot reach.
//
// Every generated function is labeled with whether it contains a real
// bug, whether that bug is within RID's reach (an inconsistent path pair
// on [l].held exists), and whether a report on it would be a false
// positive. Detectable patterns recycle their return values so the two
// paths stay co-satisfiable; the undetectable patterns return disjoint
// constants or are imbalanced on every path.
package lockgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pattern identifies a generation template.
type Pattern string

// Generation templates. "Bug*" patterns contain a real lock-balance bug;
// "FP*" patterns are correct code the abstraction cannot prove
// consistent; "Correct*" patterns are clean.
const (
	CorrectBalanced      Pattern = "correct-balanced"       // lock/unlock around work
	CorrectTrylock       Pattern = "correct-trylock"        // conditional acquire used right
	CorrectInterruptible Pattern = "correct-interruptible"  // -EINTR path handled
	CorrectWrapperUse    Pattern = "correct-wrapper-use"    // wrapper pair used right
	BugErrPathNoUnlock   Pattern = "bug-err-path-no-unlock" // second acquire fails, first stays held; detectable
	BugDoubleUnlock      Pattern = "bug-double-unlock"      // over-release on the error path; detectable
	BugTrylockLeak       Pattern = "bug-trylock-leak"       // error exit skips the unlock; detectable
	BugWrapperErrPath    Pattern = "bug-wrapper-err-path"   // leak behind the wrapper pair; detectable
	BugHeldAllPaths      Pattern = "bug-held-all-paths"     // never released; real, NOT detectable
	BugConstRet          Pattern = "bug-const-ret"          // Figure-10 analog; real, NOT detectable
	FPBitmask            Pattern = "fp-bitmask"             // flag-guarded lock/unlock false positive
)

// Mix sets how many functions of each pattern to generate.
type Mix struct {
	CorrectBalanced      int
	CorrectTrylock       int
	CorrectInterruptible int
	CorrectWrapperUse    int
	BugErrPathNoUnlock   int
	BugDoubleUnlock      int
	BugTrylockLeak       int
	BugWrapperErrPath    int
	BugHeldAllPaths      int
	BugConstRet          int
	FPBitmask            int
}

// DefaultMix is a small corpus with every pattern represented and a
// TP:FP ratio that keeps precision above 0.9 at full recall.
func DefaultMix() Mix {
	return Mix{
		CorrectBalanced:      4,
		CorrectTrylock:       3,
		CorrectInterruptible: 3,
		CorrectWrapperUse:    3,
		BugErrPathNoUnlock:   3,
		BugDoubleUnlock:      3,
		BugTrylockLeak:       3,
		BugWrapperErrPath:    3,
		BugHeldAllPaths:      2,
		BugConstRet:          2,
		FPBitmask:            1,
	}
}

// Config controls corpus generation.
type Config struct {
	Seed         int64
	Mix          Mix
	FuncsPerFile int // default 10
}

// BugInfo labels one generated function.
type BugInfo struct {
	Pattern    Pattern
	Real       bool // a real lock-balance bug exists in the function
	Detectable bool // within RID's reach (an IPP on [l].held exists)
	FPExpected bool // correct code on which RID is expected to report
}

// Corpus is the generated source tree plus ground truth.
type Corpus struct {
	Files    map[string]string
	Truth    map[string]BugInfo // per generated function (wrappers excluded)
	Wrappers []string
	NumFuncs int
}

// header declares the lock APIs (covered by spec.Lock) and the havocked
// externs the bodies branch on.
const header = `
struct lock;
struct devc { struct lock mtx; int flags; };

extern void spin_lock(struct lock *l);
extern void spin_unlock(struct lock *l);
extern int spin_trylock(struct lock *l);
extern void mutex_lock(struct lock *l);
extern void mutex_unlock(struct lock *l);
extern int mutex_trylock(struct lock *l);
extern int mutex_lock_interruptible(struct lock *l);
extern int dev_io(struct devc *d);
extern void log_warn(struct devc *d);
`

// wrappers is the devc acquire/release pair: a trylock-style conditional
// acquire (0 held, -1 not) and its release. Callers only see them through
// their computed summaries.
const wrappers = `
int devc_trylock(struct devc *d) {
    int ok;
    ok = mutex_trylock(&d->mtx);
    if (ok)
        return 0;
    return -1;
}

void devc_unlock(struct devc *d) {
    mutex_unlock(&d->mtx);
}
`

// Generate builds the corpus.
func Generate(cfg Config) *Corpus {
	if cfg.FuncsPerFile == 0 {
		cfg.FuncsPerFile = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Files:    make(map[string]string),
		Truth:    make(map[string]BugInfo),
		Wrappers: []string{"devc_trylock", "devc_unlock"},
	}
	var seq []Pattern
	add := func(p Pattern, n int) {
		for i := 0; i < n; i++ {
			seq = append(seq, p)
		}
	}
	m := cfg.Mix
	add(CorrectBalanced, m.CorrectBalanced)
	add(CorrectTrylock, m.CorrectTrylock)
	add(CorrectInterruptible, m.CorrectInterruptible)
	add(CorrectWrapperUse, m.CorrectWrapperUse)
	add(BugErrPathNoUnlock, m.BugErrPathNoUnlock)
	add(BugDoubleUnlock, m.BugDoubleUnlock)
	add(BugTrylockLeak, m.BugTrylockLeak)
	add(BugWrapperErrPath, m.BugWrapperErrPath)
	add(BugHeldAllPaths, m.BugHeldAllPaths)
	add(BugConstRet, m.BugConstRet)
	add(FPBitmask, m.FPBitmask)
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

	var b strings.Builder
	fileIdx := 1
	funcsInFile := 0
	open := func() {
		b.Reset()
		b.WriteString(header)
		if fileIdx == 1 {
			b.WriteString(wrappers)
			c.NumFuncs += 2
		}
	}
	flush := func() {
		if funcsInFile == 0 && fileIdx != 1 {
			return
		}
		c.Files[fmt.Sprintf("locks/mod%02d.c", fileIdx)] = b.String()
		fileIdx++
		funcsInFile = 0
		open()
	}
	open()
	for i, p := range seq {
		name := fmt.Sprintf("lk_%s_%d", slug(p), i+1)
		info, src := genFunc(rng, name, p)
		c.Truth[name] = info
		b.WriteString(src)
		c.NumFuncs++
		funcsInFile++
		if funcsInFile >= cfg.FuncsPerFile {
			flush()
		}
	}
	flush()
	return c
}

func slug(p Pattern) string {
	return strings.NewReplacer("correct-", "ok_", "bug-", "b_", "fp-", "fp_", "-", "_").Replace(string(p))
}

func genFunc(rng *rand.Rand, name string, p Pattern) (BugInfo, string) {
	info := BugInfo{Pattern: p}
	var src string
	switch p {
	case CorrectBalanced:
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int ret;
    spin_lock(l);
    ret = dev_io(d);
    spin_unlock(l);
    return ret;
}
`, name)
	case CorrectTrylock:
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int got;
    got = spin_trylock(l);
    if (got == 0)
        return -1;
    dev_io(d);
    spin_unlock(l);
    return 0;
}
`, name)
	case CorrectInterruptible:
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int ret;
    ret = mutex_lock_interruptible(l);
    if (ret < 0)
        return ret;
    ret = dev_io(d);
    mutex_unlock(l);
    return ret;
}
`, name)
	case CorrectWrapperUse:
		src = fmt.Sprintf(`
int %s(struct devc *d) {
    int ret;
    ret = devc_trylock(d);
    if (ret < 0)
        return ret;
    dev_io(d);
    devc_unlock(d);
    return 0;
}
`, name)
	case BugErrPathNoUnlock:
		// Double-acquire error path: when m fails, l stays held. Both the
		// l-failure and m-failure paths return -EINTR, so they are
		// co-satisfiable and differ in net [l].held — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct lock *l, struct lock *m, struct devc *d) {
    int ret;
    ret = mutex_lock_interruptible(l);
    if (ret < 0)
        return ret;
    ret = mutex_lock_interruptible(m);
    if (ret < 0)
        return ret;
    dev_io(d);
    mutex_unlock(m);
    mutex_unlock(l);
    return 0;
}
`, name)
	case BugDoubleUnlock:
		// The trylock-failure exit returns -1 with net 0; the error exit
		// releases twice (net -1) and recycles dev_io's result, which can
		// also be -1 — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int got;
    int ret;
    got = spin_trylock(l);
    if (got == 0)
        return -1;
    ret = dev_io(d);
    if (ret < 0) {
        spin_unlock(l);
        spin_unlock(l);
        return ret;
    }
    spin_unlock(l);
    return 0;
}
`, name)
	case BugTrylockLeak:
		// The error exit forgets the unlock and recycles dev_io's result;
		// the not-acquired exit returns the same -1 with net 0 — detectable.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int got;
    int ret;
    got = spin_trylock(l);
    if (got == 0)
        return -1;
    ret = dev_io(d);
    if (ret < 0)
        return ret;
    spin_unlock(l);
    return 0;
}
`, name)
	case BugWrapperErrPath:
		// Same leak, but both the acquire and the release are behind the
		// devc wrapper pair: detecting it needs their computed summaries.
		info.Real, info.Detectable = true, true
		src = fmt.Sprintf(`
int %s(struct devc *d) {
    int ret;
    ret = devc_trylock(d);
    if (ret < 0)
        return ret;
    ret = dev_io(d);
    if (ret < 0)
        return ret;
    devc_unlock(d);
    return 0;
}
`, name)
	case BugHeldAllPaths:
		// Never released: every path carries +1, so no inconsistent pair
		// exists. Real bug, outside RID's reach.
		info.Real, info.Detectable = true, false
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    mutex_lock(l);
    dev_io(d);
    return 0;
}
`, name)
	case BugConstRet:
		// Figure-10 analog: the leaking path and the clean path return
		// distinct constants, so no co-satisfiable pair exists.
		info.Real, info.Detectable = true, false
		src = fmt.Sprintf(`
int %s(struct lock *l, struct devc *d) {
    int ret;
    ret = mutex_lock_interruptible(l);
    if (ret < 0) {
        log_warn(d);
        return 0;
    }
    dev_io(d);
    return 1;
}
`, name)
	case FPBitmask:
		// Correct flag-guarded locking: the abstraction havocs the bit
		// test, so the (locked, not-unlocked) combination looks feasible.
		info.FPExpected = true
		mask := 1 << rng.Intn(5)
		src = fmt.Sprintf(`
void %s(struct devc *d) {
    if (d->flags & %d) {
        mutex_lock(&d->mtx);
    }
    dev_io(d);
    if (d->flags & %d) {
        mutex_unlock(&d->mtx);
    }
}
`, name, mask, mask)
	}
	return info, src
}
