// Package ipp implements Step III of the RID analysis (§3.3.4, §4.5):
// pairwise consistency checking of path summary entries, reporting of
// inconsistent path pairs, and construction of the final function summary
// from the consistent entries.
package ipp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/frontend/token"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/sym"
	"repro/internal/symexec"
)

// Report is one detected inconsistent path pair: two entries of the same
// function whose constraints are co-satisfiable (same arguments and same
// return value are possible) but whose changes to Refcount differ.
type Report struct {
	Fn       string
	SrcFile  string
	Pos      token.Pos
	Refcount *sym.Expr
	// Resource is the declared resource kind of the tracked expression
	// ("lock", "fd", ...) when a non-refcount spec pack claims its field.
	// Empty for refcount packs, keeping their rendering and encodings
	// byte-identical to the refcount-only analyzer.
	Resource string
	EntryA   *summary.Entry
	EntryB   *summary.Entry
	PathA    int
	PathB    int
	DeltaA   int
	DeltaB   int
	// Witness, when non-nil, is a concrete assignment to arguments and the
	// return value under which both paths are feasible — direct evidence
	// of the runtime indistinguishability the IPP definition requires.
	Witness map[string]int64
	// Evidence, when non-nil, is the recorded derivation of the pair
	// (Options.Provenance): CFG paths, constraint history, applied
	// callee entries, the deciding solver query, and — once core's
	// post-pass has run — the witness-replay verdict. Reports from the
	// same pair share one Evidence object.
	Evidence *Evidence
}

// Key identifies the report for deduplication: one report per function and
// refcount, as in the paper ("each refcount with different changes in the
// IPP is reported as a bug").
func (r *Report) Key() string { return r.Fn + "\x00" + r.Refcount.Key() }

// ResourceWord is the noun used when rendering the report: the declared
// resource kind, or "refcount" when none was tagged.
func (r *Report) ResourceWord() string {
	if r.Resource == "" {
		return "refcount"
	}
	return r.Resource
}

// String renders a human-readable one-line diagnostic.
func (r *Report) String() string {
	return fmt.Sprintf("%s: function %s: inconsistent path pair on %s %s (path %d: %+d, path %d: %+d)",
		r.Pos, r.Fn, r.ResourceWord(), r.Refcount, r.PathA, r.DeltaA, r.PathB, r.DeltaB)
}

// Detail renders the full two-entry evidence, in the layout of Figure 2,
// including a concrete witness assignment when one was found.
func (r *Report) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "function %s (%s)\n", r.Fn, r.Pos)
	fmt.Fprintf(&b, "  %s: %s\n", r.ResourceWord(), r.Refcount)
	fmt.Fprintf(&b, "  path %d entry: %s\n", r.PathA, r.EntryA)
	fmt.Fprintf(&b, "  path %d entry: %s\n", r.PathB, r.EntryB)
	if len(r.Witness) > 0 {
		keys := make([]string, 0, len(r.Witness))
		for k := range r.Witness {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  witness: ")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %d", k, r.Witness[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Options tune Step III. The zero value is the production configuration.
type Options struct {
	// NoBucketing disables the changes-signature bucketing and the
	// syntactic contradiction pre-filter (ablation support): every kept
	// pair goes through SameChanges and the solver, as the original
	// implementation did.
	NoBucketing bool

	// Obs, when non-nil, receives the per-function ipp span and the Step
	// III counters: ipp_candidates (pairs that reached the solver — i.e.
	// survived bucketing and the bounds pre-filter) and ipp_confirmed
	// (reports emitted after deduplication).
	Obs *obs.Obs

	// Provenance attaches an Evidence record to every report. Requires
	// the symexec pass to have run with Config.Provenance (otherwise
	// the evidence carries only projected constraints and no paths).
	Provenance bool

	// FieldKinds maps tracked field names to their declared resource
	// kinds (spec.Specs.FieldKinds). Reports on fields of a non-refcount
	// kind are tagged with it; nil or unknown fields default to refcount.
	FieldKinds map[string]string
}

// resourceKind resolves the resource tag for a tracked expression from
// the outermost field name, returning "" for the default refcount kind.
func resourceKind(rc *sym.Expr, kinds map[string]string) string {
	if kinds == nil || rc.Kind != sym.KField {
		return ""
	}
	if k, ok := kinds[rc.Name]; ok && k != "refcount" {
		return k
	}
	return ""
}

// Check runs the consistency check over the per-path entries of one
// function and builds its final summary, with default options and no
// cancellation.
func Check(res symexec.Result, slv *solver.Solver) ([]*Report, *summary.Summary) {
	return CheckWith(context.Background(), res, slv, Options{})
}

// CheckWith runs the consistency check over the per-path entries of one
// function and builds its final summary.
//
// Entries are admitted in order; a candidate inconsistent with an already
// admitted entry produces one report per differing refcount and is dropped
// (the paper drops one side "randomly"; dropping the later one keeps runs
// deterministic). The returned summary is the set of admitted entries,
// plus a default entry when the executor hit a budget (§5.2).
//
// Two pruning layers cut pairwise solver traffic without changing any
// report. Entries are bucketed by changes-signature: signature equality is
// exactly SameChanges, so a same-bucket pair can never be an IPP and the
// O(changes) map comparison becomes a string compare. And before the
// solver runs, a syntactic pre-filter intersects the interval bounds each
// entry's constraints place on shared terms (conjuncts of the form
// term ⋈ const); disjoint bounds on any shared term — e.g. x ≤ k in one
// entry, x ≥ k+1 in the other — prove the conjunction UNSAT, which is the
// same verdict Fourier–Motzkin would reach, so the pair is skipped.
//
// ctx bounds the pairwise sweep: when it expires, entries not yet
// admitted are dropped and the summary gets the §5.2 default entry, the
// same degradation as a budget-truncated function.
func CheckWith(ctx context.Context, res symexec.Result, slv *solver.Solver, opts Options) ([]*Report, *summary.Summary) {
	fn := res.Fn
	sp := opts.Obs.Start(obs.PhaseIPP, fn.Name)
	defer sp.End()
	sum := summary.New(fn.Name)
	sum.Params = fn.Params

	var reports []*Report
	var seen map[string]bool // report dedup per (fn, refcount); lazy — most functions report nothing
	var kept []symexec.PathEntry

	// Per-entry precomputation, indexed in parallel with res.Entries /
	// kept: changes-signature and interval bounds.
	var sigs, keptSigs []string
	var bounds, keptBounds []map[string]interval
	if !opts.NoBucketing {
		sigs = make([]string, len(res.Entries))
		bounds = make([]map[string]interval, len(res.Entries))
		for i, e := range res.Entries {
			sigs[i] = e.ChangesSignature()
			bounds[i] = consBounds(e.Cons)
		}
	}

	canceled := false
	for ci, cand := range res.Entries {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		inconsistent := false
		// The candidate's constraints are the fixed side of every pair in
		// this sweep, so the queries run as one batch: the conjunction key
		// is assembled in a reused buffer, the shared cache is probed once
		// per distinct kept-constraint (entries inside a signature bucket
		// often repeat constraint sets), and the conjunction Set is only
		// materialized on a cache miss. Verdicts and counters are identical
		// to the unbatched slv.Sat(k.Cons ∧ cand.Cons).
		pairs := slv.Pairs(cand.Cons)
		for ki, k := range kept {
			if opts.NoBucketing {
				if k.SameChanges(cand.Entry) {
					continue
				}
			} else {
				if keptSigs[ki] == sigs[ci] {
					continue // same bucket: identical changes, never an IPP
				}
				if disjointBounds(keptBounds[ki], bounds[ci]) {
					continue // syntactically contradictory: Sat would say no
				}
			}
			// Different changes: IPP iff constraints are co-satisfiable.
			opts.Obs.Count(obs.MIPPCandidates, 1)
			if !pairs.Sat(k.Cons) {
				continue
			}
			inconsistent = true
			var ev *Evidence
			if opts.Provenance {
				// Capture the query ordinal before Model issues
				// further queries for the witness search.
				ev = buildEvidence(fn, res, k, cand, queryRef(opts.Obs))
			}
			witness, _ := slv.Model(k.Cons.AndSet(cand.Cons))
			for _, rc := range k.DifferingRefcounts(cand.Entry) {
				rep := &Report{
					Fn:       fn.Name,
					SrcFile:  fn.SrcFile,
					Pos:      fn.Pos,
					Refcount: rc,
					Resource: resourceKind(rc, opts.FieldKinds),
					EntryA:   k.Entry,
					EntryB:   cand.Entry,
					PathA:    k.PathIndex,
					PathB:    cand.PathIndex,
					DeltaA:   k.Changes[rc.Key()].Delta,
					DeltaB:   cand.Changes[rc.Key()].Delta,
					Witness:  witness,
					Evidence: ev,
				}
				if !seen[rep.Key()] {
					if seen == nil {
						seen = make(map[string]bool, 4)
					}
					seen[rep.Key()] = true
					reports = append(reports, rep)
					opts.Obs.Count(obs.MIPPConfirmed, 1)
				}
			}
			break
		}
		if !inconsistent {
			kept = append(kept, cand)
			if !opts.NoBucketing {
				keptSigs = append(keptSigs, sigs[ci])
				keptBounds = append(keptBounds, bounds[ci])
			}
		}
	}

	for _, k := range kept {
		sum.Entries = append(sum.Entries, exportable(k.Entry))
	}
	if res.Truncated || canceled || len(sum.Entries) == 0 {
		// Partially analyzed (or fully infeasible): add the default entry
		// so callers can still be analyzed (§5.2).
		sum.HasDefault = true
		sum.Entries = append(sum.Entries, summary.NewEntry(sym.True(), sym.Ret()))
	}
	return reports, sum
}

// exportable strips refcount changes keyed by local or fresh symbols from
// an entry before it enters the function summary. Such refcounts (objects
// created inside the function that never escaped) are compared across the
// function's own path pairs above, but a caller can neither observe nor
// balance them, so exporting them would only manufacture spurious IPPs at
// every call site.
func exportable(e *summary.Entry) *summary.Entry {
	hasLocal := false
	for _, c := range e.Changes {
		if c.RC.HasLocal() {
			hasLocal = true
			break
		}
	}
	if !hasLocal {
		return e
	}
	n := e.Clone()
	for k, c := range n.Changes {
		if c.RC.HasLocal() {
			delete(n.Changes, k)
		}
	}
	return n
}
