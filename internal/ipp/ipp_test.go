package ipp

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/sym"
	"repro/internal/symexec"
)

// entry builds a path entry with the given constraint conditions and one
// optional change.
func entry(path int, ret *sym.Expr, delta int, rc *sym.Expr, conds ...*sym.Expr) symexec.PathEntry {
	cons := sym.True()
	for _, c := range conds {
		cons = cons.And(c)
	}
	e := summary.NewEntry(cons, ret)
	if rc != nil && delta != 0 {
		e.AddChange(rc, delta)
	}
	return symexec.PathEntry{Entry: e, PathIndex: path}
}

func result(fn string, entries ...symexec.PathEntry) symexec.Result {
	f := &ir.Func{Name: fn, Params: []string{"dev"}}
	f.NewBlock().Instrs = []*ir.Instr{{Op: ir.OpReturn}}
	return symexec.Result{Fn: f, Entries: entries, NumPaths: len(entries)}
}

var pm = sym.Field(sym.Arg("dev"), "pm")

func TestInconsistentPairReported(t *testing.T) {
	retZero := sym.Cond(sym.Ret(), ir.EQ, sym.Const(0))
	res := result("foo",
		entry(0, sym.Const(0), 1, pm, retZero),
		entry(1, sym.Const(0), 0, nil, retZero),
	)
	reports, sum := Check(res, solver.New())
	if len(reports) != 1 {
		t.Fatalf("reports: %d", len(reports))
	}
	r := reports[0]
	if r.Refcount.Key() != "[dev].pm" || r.PathA != 0 || r.PathB != 1 {
		t.Errorf("report: %+v", r)
	}
	if r.DeltaA != 1 || r.DeltaB != 0 {
		t.Errorf("deltas: %d %d", r.DeltaA, r.DeltaB)
	}
	// The later entry is dropped; the summary holds the first.
	if len(sum.Entries) != 1 || len(sum.Entries[0].Changes) != 1 {
		t.Errorf("summary: %s", sum)
	}
}

func TestDistinguishableByReturnNotReported(t *testing.T) {
	res := result("f",
		entry(0, sym.Const(0), 1, pm, sym.Cond(sym.Ret(), ir.EQ, sym.Const(0))),
		entry(1, sym.Const(1), 0, nil, sym.Cond(sym.Ret(), ir.EQ, sym.Const(1))),
	)
	reports, sum := Check(res, solver.New())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
	if len(sum.Entries) != 2 {
		t.Errorf("summary entries: %d", len(sum.Entries))
	}
}

func TestDistinguishableByArgumentNotReported(t *testing.T) {
	a := sym.Arg("a")
	res := result("f",
		entry(0, nil, 1, pm, sym.Cond(a, ir.GT, sym.Const(0))),
		entry(1, nil, 0, nil, sym.Cond(a, ir.LE, sym.Const(0))),
	)
	reports, _ := Check(res, solver.New())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
}

func TestSameChangesNeverReported(t *testing.T) {
	res := result("f",
		entry(0, nil, 1, pm),
		entry(1, nil, 1, pm),
	)
	reports, sum := Check(res, solver.New())
	if len(reports) != 0 {
		t.Fatalf("reports: %v", reports)
	}
	if len(sum.Entries) != 2 {
		t.Errorf("entries: %d", len(sum.Entries))
	}
}

func TestReportDedupPerRefcount(t *testing.T) {
	// Three no-change entries against one +1 entry: one report, not three.
	res := result("f",
		entry(0, nil, 1, pm),
		entry(1, nil, 0, nil),
		entry(2, nil, 0, nil),
		entry(3, nil, 0, nil),
	)
	reports, _ := Check(res, solver.New())
	if len(reports) != 1 {
		t.Fatalf("reports: %d, want 1 (dedup per refcount)", len(reports))
	}
}

func TestMultipleRefcountsMultipleReports(t *testing.T) {
	rc2 := sym.Field(sym.Arg("dev"), "usage")
	e1 := entry(0, nil, 1, pm)
	e1.AddChange(rc2, -1)
	res := result("f", e1, entry(1, nil, 0, nil))
	reports, _ := Check(res, solver.New())
	if len(reports) != 2 {
		t.Fatalf("reports: %d, want 2", len(reports))
	}
}

func TestTruncatedGetsDefaultEntry(t *testing.T) {
	res := result("f", entry(0, nil, 1, pm))
	res.Truncated = true
	_, sum := Check(res, solver.New())
	if !sum.HasDefault {
		t.Fatal("truncated result must carry a default entry")
	}
	last := sum.Entries[len(sum.Entries)-1]
	if last.Cons.Len() != 0 || len(last.Changes) != 0 {
		t.Errorf("default entry: %s", last)
	}
}

func TestEmptyResultGetsDefaultEntry(t *testing.T) {
	res := result("f")
	_, sum := Check(res, solver.New())
	if !sum.HasDefault || len(sum.Entries) != 1 {
		t.Errorf("summary: %s", sum)
	}
}

func TestLocalKeyedChangesComparedButNotExported(t *testing.T) {
	obj := sym.Field(sym.Fresh("alloc@f#0.1"), "rc")
	retNull := sym.Cond(sym.Ret(), ir.EQ, sym.Const(0))
	res := result("f",
		entry(0, sym.Null(), 1, obj, retNull),
		entry(1, sym.Null(), 0, nil, retNull),
	)
	reports, sum := Check(res, solver.New())
	if len(reports) != 1 {
		t.Fatalf("local-keyed IPP not reported: %d", len(reports))
	}
	for _, e := range sum.Entries {
		for k := range e.Changes {
			if strings.Contains(k, "$") {
				t.Errorf("unobservable refcount exported: %s", k)
			}
		}
	}
}

func TestSummaryKeepsParams(t *testing.T) {
	_, sum := Check(result("f"), solver.New())
	if len(sum.Params) != 1 || sum.Params[0] != "dev" {
		t.Errorf("params: %v", sum.Params)
	}
}

func TestReportRendering(t *testing.T) {
	res := result("foo",
		entry(0, nil, 1, pm),
		entry(1, nil, 0, nil),
	)
	reports, _ := Check(res, solver.New())
	if len(reports) != 1 {
		t.Fatal("need one report")
	}
	line := reports[0].String()
	if !strings.Contains(line, "foo") || !strings.Contains(line, "[dev].pm") {
		t.Errorf("line: %s", line)
	}
	detail := reports[0].Detail()
	if !strings.Contains(detail, "path 0 entry:") || !strings.Contains(detail, "path 1 entry:") {
		t.Errorf("detail: %s", detail)
	}
	if reports[0].Key() == "" {
		t.Error("empty key")
	}
}
