package ipp

import (
	"math"

	"repro/internal/ir"
	"repro/internal/sym"
)

// interval is a saturating integer range [lo, hi].
type interval struct {
	lo, hi int64
}

func fullInterval() interval {
	return interval{lo: math.MinInt64, hi: math.MaxInt64}
}

// intersect narrows i by o and reports whether the result is non-empty.
func (i interval) intersect(o interval) (interval, bool) {
	if o.lo > i.lo {
		i.lo = o.lo
	}
	if o.hi < i.hi {
		i.hi = o.hi
	}
	return i, i.lo <= i.hi
}

// consBounds extracts, from the conjuncts of cs that have the shape
// term ⋈ const (either orientation), the interval each term is confined
// to. The expression language has no arithmetic, so any non-constant
// comparison operand is a single uninterpreted term — exactly one solver
// variable — which makes these bounds sound: if two entries confine a
// shared term to disjoint intervals, their conjunction is UNSAT and
// Fourier–Motzkin would return the same verdict. Disequalities and
// term-vs-term comparisons contribute nothing (interval stays full).
// Returns nil when no conjunct yields a bound.
func consBounds(cs sym.Set) map[string]interval {
	var out map[string]interval
	for _, c := range cs.Conds() {
		if c.Kind != sym.KCond {
			continue
		}
		term, pred := c.A, c.Pred
		k, ok := c.B.IsConst()
		if !ok {
			// Try the const ⋈ term orientation, flipping the predicate so
			// the term lands on the left.
			k, ok = c.A.IsConst()
			if !ok {
				continue
			}
			if _, bothConst := c.B.IsConst(); bothConst {
				continue // constant-folded elsewhere; nothing to learn
			}
			term, pred = c.B, pred.Flip()
		}
		var iv interval
		switch pred {
		case ir.EQ:
			iv = interval{lo: k, hi: k}
		case ir.LE:
			iv = interval{lo: math.MinInt64, hi: k}
		case ir.LT:
			if k == math.MinInt64 {
				continue
			}
			iv = interval{lo: math.MinInt64, hi: k - 1}
		case ir.GE:
			iv = interval{lo: k, hi: math.MaxInt64}
		case ir.GT:
			if k == math.MaxInt64 {
				continue
			}
			iv = interval{lo: k + 1, hi: math.MaxInt64}
		default: // NE carries no interval information
			continue
		}
		if out == nil {
			out = make(map[string]interval, 4)
		}
		key := term.Key()
		cur, have := out[key]
		if !have {
			cur = fullInterval()
		}
		// An empty within-entry intersection means the entry itself is
		// UNSAT; keep the empty interval — it makes every pairing with a
		// bounded shared term disjoint, matching the solver's verdict.
		cur, _ = cur.intersect(iv)
		out[key] = cur
	}
	return out
}

// disjointBounds reports whether some term bounded in both maps has
// disjoint intervals — a syntactic proof that the conjunction of the two
// constraint sets is unsatisfiable.
func disjointBounds(a, b map[string]interval) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	for key, ia := range a {
		ib, ok := b[key]
		if !ok {
			continue
		}
		if _, nonEmpty := ia.intersect(ib); !nonEmpty {
			return true
		}
	}
	return false
}
