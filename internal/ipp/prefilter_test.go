package ipp

import (
	"context"
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/solver"
	"repro/internal/sym"
)

func boundsOf(conds ...*sym.Expr) map[string]interval {
	return consBounds(sym.NewSet(conds))
}

func TestConsBoundsExtraction(t *testing.T) {
	a := sym.Arg("a")
	b := boundsOf(
		sym.Cond(a, ir.GE, sym.Const(2)),
		sym.Cond(a, ir.LT, sym.Const(10)),
	)
	iv, ok := b["[a]"]
	if !ok {
		t.Fatal("no bound for [a]")
	}
	if iv.lo != 2 || iv.hi != 9 {
		t.Errorf("interval [%d,%d], want [2,9]", iv.lo, iv.hi)
	}
}

func TestConsBoundsFlippedOrientation(t *testing.T) {
	// const ⋈ term: 5 < a means a ≥ 6.
	b := boundsOf(sym.Cond(sym.Const(5), ir.LT, sym.Arg("a")))
	iv := b["[a]"]
	if iv.lo != 6 || iv.hi != math.MaxInt64 {
		t.Errorf("interval [%d,%d], want [6,max]", iv.lo, iv.hi)
	}
}

func TestConsBoundsSkipsUninformative(t *testing.T) {
	a, c := sym.Arg("a"), sym.Arg("c")
	b := boundsOf(
		sym.Cond(a, ir.NE, sym.Const(3)), // disequality: no interval
		sym.Cond(a, ir.EQ, c),            // term-vs-term: no interval
	)
	if len(b) != 0 {
		t.Errorf("expected no bounds, got %v", b)
	}
}

func TestDisjointBounds(t *testing.T) {
	a := sym.Arg("a")
	le := boundsOf(sym.Cond(a, ir.LE, sym.Const(4)))
	ge := boundsOf(sym.Cond(a, ir.GE, sym.Const(5)))
	if !disjointBounds(le, ge) {
		t.Error("a ≤ 4 vs a ≥ 5 must be disjoint")
	}
	touching := boundsOf(sym.Cond(a, ir.GE, sym.Const(4)))
	if disjointBounds(le, touching) {
		t.Error("a ≤ 4 vs a ≥ 4 overlap at 4")
	}
	other := boundsOf(sym.Cond(sym.Arg("b"), ir.GE, sym.Const(9)))
	if disjointBounds(le, other) {
		t.Error("bounds on different terms are never disjoint")
	}
	if disjointBounds(le, nil) || disjointBounds(nil, nil) {
		t.Error("empty bound maps are never disjoint")
	}
}

// TestPrefilterAgreesWithSolver cross-checks the pre-filter against the
// decision procedure: whenever disjointBounds fires, the solver must find
// the conjunction UNSAT.
func TestPrefilterAgreesWithSolver(t *testing.T) {
	a := sym.Arg("a")
	slv := solver.New()
	consts := []int64{-2, 0, 1, 4}
	preds := []ir.Pred{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE}
	for _, p1 := range preds {
		for _, k1 := range consts {
			for _, p2 := range preds {
				for _, k2 := range consts {
					c1 := sym.Cond(a, p1, sym.Const(k1))
					c2 := sym.Cond(a, p2, sym.Const(k2))
					s1, s2 := sym.NewSet([]*sym.Expr{c1}), sym.NewSet([]*sym.Expr{c2})
					if disjointBounds(consBounds(s1), consBounds(s2)) && slv.Sat(s1.AndSet(s2)) {
						t.Errorf("prefilter claims UNSAT but solver says SAT: %s ∧ %s", c1, c2)
					}
				}
			}
		}
	}
}

// TestBucketingPreservesReports runs Step III with and without bucketing
// over entry mixes that exercise both the same-signature skip and the
// contradiction pre-filter, and requires identical reports and summaries.
func TestBucketingPreservesReports(t *testing.T) {
	a := sym.Arg("dev")
	ret := sym.Ret()
	res := result("f",
		entry(0, nil, 1, pm, sym.Cond(a, ir.LE, sym.Const(4)), sym.Cond(ret, ir.EQ, sym.Const(0))),
		entry(1, nil, 1, pm, sym.Cond(a, ir.GE, sym.Const(0))),  // same signature as 0
		entry(2, nil, 0, nil, sym.Cond(a, ir.GE, sym.Const(5))), // prefilter vs 0, solver vs 1
		entry(3, nil, -1, pm, sym.Cond(ret, ir.EQ, sym.Const(0))),
	)
	repOn, sumOn := CheckWith(context.Background(), res, solver.New(), Options{})
	repOff, sumOff := CheckWith(context.Background(), res, solver.New(), Options{NoBucketing: true})
	if len(repOn) != len(repOff) {
		t.Fatalf("report counts differ: bucketing %d, plain %d", len(repOn), len(repOff))
	}
	for i := range repOn {
		if repOn[i].String() != repOff[i].String() || repOn[i].Detail() != repOff[i].Detail() {
			t.Errorf("report %d differs:\n%s\nvs\n%s", i, repOn[i].Detail(), repOff[i].Detail())
		}
	}
	if sumOn.String() != sumOff.String() {
		t.Errorf("summaries differ:\n%s\nvs\n%s", sumOn, sumOff)
	}
	if len(repOn) == 0 {
		t.Error("expected at least one report from the inconsistent mix")
	}
}
