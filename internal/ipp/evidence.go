package ipp

import (
	"fmt"
	"strings"

	"repro/internal/frontend/token"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/symexec"
)

// Evidence is the recorded derivation of one Report: the two CFG paths
// with source positions, the entry constraints before and after the
// existential projection of locals, every callee summary entry applied
// during Step II forking, and a reference to the Step III solver query
// that decided co-satisfiability. It is captured only under
// Options.Provenance (plumbed from symexec.Config.Provenance), so the
// default pipeline pays nothing for it.
//
// Reports produced by the same inconsistent pair share one *Evidence:
// the pair has one derivation regardless of how many refcounts differ.
// The replay verdict (Replay) is filled in by core's provenance
// post-pass after the analysis completes.
type Evidence struct {
	PathA PathEvidence `json:"path_a"`
	PathB PathEvidence `json:"path_b"`
	// Query identifies the co-satisfiability query of Step III.
	Query QueryRef `json:"query"`
	// Replay is the witness-replay verdict; nil until replay runs.
	Replay *ReplayResult `json:"replay,omitempty"`
}

// PathEvidence is the derivation of one side of the pair: the Step I
// path as a CFG block sequence and the Step II constraint history.
type PathEvidence struct {
	PathIndex int         `json:"path_index"`
	Blocks    []BlockStep `json:"blocks"`
	// RawCons is the path constraint at the return, before locals were
	// existentially projected; Cons is the projected (exported) form.
	// Both are empty when symexec ran without provenance capture.
	RawCons string `json:"raw_cons,omitempty"`
	Cons    string `json:"cons"`
	// Callees lists every callee summary entry applied while executing
	// the path, in application order (Algorithm 1 forking).
	Callees []symexec.CalleeApp `json:"callees,omitempty"`
}

// BlockStep is one CFG block of a recorded path, with the position of
// its first located instruction and the instructions it executes.
type BlockStep struct {
	Index  int       `json:"index"`
	Pos    token.Pos `json:"pos"`
	Instrs []string  `json:"instrs,omitempty"`
}

// QueryRef cross-links the deciding Step III solver query to the obs
// layer. Index is the value of the solver_queries counter just after
// the query was issued (a 1-based global query ordinal); TraceSeq is
// the JSONL trace sequence number at the same moment when a tracer is
// attached (0 otherwise). Both are exact at Workers=1; under
// concurrent workers other workers may interleave queries, so they are
// lower bounds that locate the relevant window of a trace.
type QueryRef struct {
	Index    int64 `json:"index,omitempty"`
	TraceSeq int64 `json:"trace_seq,omitempty"`
}

// Replay verdicts. Confirmed means the interpreter reproduced both
// recorded paths under the report's witness assignment and observed
// differing refcount deltas — the static claim checked dynamically.
// Diverged means both paths were reproduced but the observed deltas
// did not differ (the claim did not materialize concretely).
// NotReplayable means at least one recorded path could not be driven
// to reproduce within the replay budget (typically a callee's summary
// entry admits several concrete behaviors and the sampled ones never
// steered execution down the recorded blocks).
const (
	ReplayConfirmed     = "confirmed-by-replay"
	ReplayDiverged      = "replay-diverged"
	ReplayNotReplayable = "not-replayable"
)

// ReplayResult is the outcome of driving internal/interp with the
// report's witness down the two recorded paths.
type ReplayResult struct {
	Verdict string `json:"verdict"`
	// DeltaA/DeltaB are the normalized refcount delta signatures
	// observed on the two replayed paths (empty for a path that was
	// not reproduced).
	DeltaA string `json:"delta_a,omitempty"`
	DeltaB string `json:"delta_b,omitempty"`
	// Attempts is the number of interpreter runs spent steering
	// execution onto the recorded paths.
	Attempts int `json:"attempts"`
}

// String renders the replay verdict with its observed deltas.
func (r *ReplayResult) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(r.Verdict)
	if r.DeltaA != "" || r.DeltaB != "" {
		fmt.Fprintf(&b, " (path A deltas %q, path B deltas %q, %d attempts)",
			r.DeltaA, r.DeltaB, r.Attempts)
	} else {
		fmt.Fprintf(&b, " (%d attempts)", r.Attempts)
	}
	return b.String()
}

// buildEvidence assembles the Evidence for the pair (k, cand) at the
// moment the deciding query returned SAT. qref must be captured by the
// caller immediately after that query (before Model issues more).
func buildEvidence(fn *ir.Func, res symexec.Result, k, cand symexec.PathEntry, qref QueryRef) *Evidence {
	return &Evidence{
		PathA: pathEvidence(fn, res, k),
		PathB: pathEvidence(fn, res, cand),
		Query: qref,
	}
}

func pathEvidence(fn *ir.Func, res symexec.Result, pe symexec.PathEntry) PathEvidence {
	ev := PathEvidence{PathIndex: pe.PathIndex, Cons: pe.Cons.String()}
	if pe.Prov != nil {
		ev.RawCons = pe.Prov.RawCons
		ev.Cons = pe.Prov.Cons
		ev.Callees = pe.Prov.Apps
	}
	if pe.PathIndex >= 0 && pe.PathIndex < len(res.Paths) {
		blocks := res.Paths[pe.PathIndex].Blocks
		ev.Blocks = make([]BlockStep, 0, len(blocks))
		for _, bi := range blocks {
			step := BlockStep{Index: bi}
			if bi >= 0 && bi < len(fn.Blocks) {
				blk := fn.Blocks[bi]
				step.Instrs = make([]string, len(blk.Instrs))
				for i, in := range blk.Instrs {
					step.Instrs[i] = in.String()
					if !step.Pos.IsValid() && in.Pos.IsValid() {
						step.Pos = in.Pos
					}
				}
			}
			ev.Blocks = append(ev.Blocks, step)
		}
	}
	return ev
}

// queryRef reads the current solver-query ordinal and trace sequence
// from the observer. Must be called right after the deciding Sat query.
func queryRef(o *obs.Obs) QueryRef {
	var q QueryRef
	if reg := o.Registry(); reg != nil {
		q.Index = reg.Counter(obs.MSolverQueries)
	}
	q.TraceSeq = o.TraceSeq()
	return q
}
