package symexec

import (
	"sync"

	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/sym"
)

// Step II allocates in two hot shapes: one pathRun per task (occurrence
// counters, scratch buffers) and one state per live sub-case (forked on
// every multi-entry call). Both are recycled through sync.Pools under an
// ownership contract:
//
//   - a state is uniquely owned by the goroutine executing its path;
//     clone() copies every mutable container (conds, changes, vmap, apps),
//     so the only storage shared between a state and its clones is
//     immutable — interned *sym.Expr values and the backing arrays of
//     sym.Set, which are never written after construction;
//   - putState returns a state to the pool when its path drops it (dead,
//     truncated by the sub-case budget, leftover at path end, or finalized
//     into an entry). From that point the state must be unreachable.
//   - st.apps escapes into EntryProv at finalize under Config.Provenance,
//     so resetForPut always drops the apps backing rather than reusing it.
//
// resetForPut is build-tagged: the normal build clears containers and
// keeps their capacity (pool_norace.go); the -race build poisons
// uniquely-owned storage and drops it (pool_race.go), so a retained alias
// fails loudly under the race/alloc-guard tests instead of silently
// reading recycled data.

var statePool = sync.Pool{New: func() any { return new(state) }}

// getState returns a reset state with usable (possibly recycled) maps.
func getState() *state {
	st := statePool.Get().(*state)
	if st.changes == nil {
		st.changes = make(map[string]summary.Change)
	}
	if st.vmap == nil {
		st.vmap = make(map[string]*sym.Expr)
	}
	return st
}

// putState recycles a dropped state. The caller must hold the only
// reference.
func putState(st *state) {
	st.resetForPut()
	statePool.Put(st)
}

var pathRunPool = sync.Pool{New: func() any { return new(pathRun) }}

// getPathRun returns a per-task execution context bound to job and slv,
// with occurrence counters sized to the function and cleared.
func getPathRun(j *Job, slv *solver.Solver) *pathRun {
	pr := pathRunPool.Get().(*pathRun)
	pr.Executor = j.ex
	pr.job = j
	pr.slv = slv
	pr.anon = 0
	if cap(pr.occ) < j.numSites {
		pr.occ = make([]int32, j.numSites)
	} else {
		pr.occ = pr.occ[:j.numSites]
		clear(pr.occ)
	}
	if pr.callArgs == nil {
		pr.callArgs = make(map[string]*sym.Expr, 8)
	}
	return pr
}

// putPathRun recycles a task context. Scratch buffers keep their capacity;
// references into the job are dropped so pooled contexts never pin a
// finished function.
func putPathRun(pr *pathRun) {
	pr.Executor = nil
	pr.job = nil
	pr.slv = nil
	pr.states = pr.states[:0]
	pr.nextStates = pr.nextStates[:0]
	pr.finished = pr.finished[:0]
	pr.outBuf = pr.outBuf[:0]
	pr.oneBuf[0] = nil
	clear(pr.callArgs)
	pr.instScratch.Cons = sym.Set{}
	pr.instScratch.Ret = nil
	clear(pr.instScratch.Changes) // keep the map's capacity
	pathRunPool.Put(pr)
}
