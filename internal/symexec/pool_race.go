//go:build race

package symexec

import "repro/internal/sym"

// resetForPut under -race poisons the state instead of recycling its
// storage: every uniquely-owned container is scribbled over and dropped,
// so an alias that escaped the ownership contract dereferences a nil
// condition or observes a concurrently-cleared map — a loud failure in
// the race-enabled test suites rather than a silent read of recycled
// data. Shared-immutable storage (interned *sym.Expr values, sym.Set
// backing arrays, an escaped apps slice) is never written: only the
// fields referencing it are zeroed.
func (st *state) resetForPut() {
	for i := range st.conds {
		st.conds[i] = taggedCond{} // nil cond: any later use panics
	}
	st.conds = nil
	clear(st.changes)
	st.changes = nil
	clear(st.vmap)
	st.vmap = nil
	st.ret = nil
	st.hasRet = false
	st.dead = false
	st.apps = nil
	st.cons = sym.Set{}
	st.consValid = false
	for i := range st.consScratch {
		st.consScratch[i] = nil
	}
	st.consScratch = nil
}
