//go:build !race

package symexec

import "repro/internal/sym"

// resetForPut clears the state for reuse, keeping the capacity of its
// uniquely-owned containers (conds, changes, vmap). cons only has its
// field zeroed: the Set's backing arrays may be shared with live clones
// and are immutable, so they are neither cleared nor reused in place.
// apps is always dropped — its backing can escape into an EntryProv.
func (st *state) resetForPut() {
	st.conds = st.conds[:0]
	clear(st.changes)
	clear(st.vmap)
	st.ret = nil
	st.hasRet = false
	st.dead = false
	st.apps = nil
	st.cons = sym.Set{}
	st.consValid = false
	st.consScratch = st.consScratch[:0]
}
