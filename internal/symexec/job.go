package symexec

import (
	"context"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/summary"
)

// Job is one function's Step I+II work split into independently runnable
// per-path tasks — the seam the work-stealing scheduler schedules at.
// Lifecycle:
//
//	j := ex.Prepare(ctx, fn)        // Step I: enumerate paths (owner only)
//	for i := range j.NumTasks() {   // Step II: any worker, any order,
//	    j.RunTask(i, someSolver)    //   distinct i safe concurrently
//	}
//	res := j.Finish()               // merge in path order (owner only)
//
// Results are written into per-task slots, so RunTask calls for distinct
// indices never contend, and Finish produces entries in path order
// regardless of which workers ran which tasks in which interleaving —
// that order independence is what makes reports byte-identical at any
// Workers setting. Summarize is implemented on this same seam, so the
// sequential, path-parallel, and work-stealing modes share one semantics.
type Job struct {
	ex   *Executor
	ctx  context.Context
	fn   *ir.Func
	enum cfg.EnumerateResult
	res  Result
	outs []pathOut

	siteIDs  map[*ir.Instr]int
	numSites int
	execSpan obs.Span
}

// pathOut is the result slot of one path task.
type pathOut struct {
	entries   []*summary.Entry
	provs     []*EntryProv
	truncated bool
	canceled  bool
}

// Prepare runs Step I for fn and returns the job whose tasks execute the
// enumerated paths. Must be called by the function's owner; the counters,
// hooks, and enumerate span fire here exactly as Summarize fired them.
func (ex *Executor) Prepare(ctx context.Context, fn *ir.Func) *Job {
	ex.cfg.Obs.Count(obs.MFuncsAnalyzed, 1)
	if ex.cfg.OnFunction != nil {
		ex.cfg.OnFunction(fn.Name)
	}
	j := &Job{ex: ex, ctx: ctx, fn: fn}
	j.siteIDs = make(map[*ir.Instr]int)
	id := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			j.siteIDs[in] = id
			id++
		}
	}
	j.numSites = id
	g := cfg.New(fn)
	j.enum = g.EnumerateObs(ctx, ex.cfg.MaxPaths, ex.cfg.Obs)
	j.res = Result{
		Fn:             fn,
		NumPaths:       len(j.enum.Paths),
		Truncated:      j.enum.Truncated,
		TruncatedPaths: j.enum.Truncated && !j.enum.Canceled,
		Canceled:       j.enum.Canceled,
	}
	if ex.cfg.Provenance {
		j.res.Paths = j.enum.Paths
	}
	j.outs = make([]pathOut, len(j.enum.Paths))
	j.execSpan = ex.cfg.Obs.Start(obs.PhaseExec, fn.Name)
	return j
}

// NumTasks returns the number of path tasks.
func (j *Job) NumTasks() int { return len(j.enum.Paths) }

// Fn returns the function under analysis.
func (j *Job) Fn() *ir.Func { return j.fn }

// RunTask symbolically executes path i using slv for satisfiability.
// Safe to call concurrently for distinct i; calling twice for the same i
// is a bug. The solver decides feasibility pruning and entry feasibility
// for this path only, so any solver with the job's limits produces the
// same verdicts (a shared cache changes cost, never answers).
func (j *Job) RunTask(i int, slv *solver.Solver) {
	if j.ctx.Err() != nil {
		j.outs[i].canceled = true
		return
	}
	pr := getPathRun(j, slv)
	o := &j.outs[i]
	o.entries, o.provs, o.truncated, o.canceled = pr.execPath(j.ctx, j.fn, j.enum.Paths[i])
	putPathRun(pr)
}

// Finish merges the task results in path order and returns the function's
// Result. Must be called once, after every task has completed, by a
// single goroutine.
func (j *Job) Finish() Result {
	res := j.res
	for i := range j.outs {
		o := &j.outs[i]
		if o.truncated {
			res.TruncatedSubcases = true
		}
		if o.canceled {
			res.Canceled = true
		}
		for k, e := range o.entries {
			pe := PathEntry{Entry: e, PathIndex: i}
			if o.provs != nil {
				pe.Prov = o.provs[k]
			}
			res.Entries = append(res.Entries, pe)
		}
	}
	if res.TruncatedSubcases || res.Canceled {
		res.Truncated = true
	}
	j.execSpan.End()
	j.ex.cfg.Obs.Count(obs.MSummaryEntries, int64(len(res.Entries)))
	return res
}
