//go:build race

package symexec

// raceEnabled reports whether this test binary was built with the race
// detector, selecting which half of the build-tagged resetForPut contract
// the pool tests assert (poison-and-drop vs clear-and-keep).
const raceEnabled = true
