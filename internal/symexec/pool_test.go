package symexec

import (
	"context"
	"testing"

	"repro/internal/lower"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/internal/sym"
)

// dirtyState fills every mutable field of a pooled state, standing in for
// a state at the end of a path.
func dirtyState() *state {
	st := getState()
	st.conds = append(st.conds, taggedCond{cond: sym.Arg("a")}, taggedCond{cond: sym.Arg("b")})
	st.changes["rc"] = summary.Change{RC: sym.Arg("dev"), Delta: 1}
	st.vmap["x"] = sym.Arg("x")
	st.ret = sym.Arg("r")
	st.hasRet = true
	st.dead = true
	st.apps = append(st.apps, CalleeApp{})
	st.cons = sym.NewSet([]*sym.Expr{sym.Arg("a")})
	st.consValid = true
	st.consScratch = append(st.consScratch, sym.Arg("a"))
	return st
}

// TestStatePoolNeverLeaksAcrossTasks is the alloc-guard for the state
// pool's reset contract: whatever a finished task left in a state, the
// next getState must observe a fully clean one — no conditions, changes,
// value bindings, return value, applied-entry log, or cached constraint
// set may survive recycling. (Whether the pool hands back the same object
// is the runtime's business; the contract is about what the receiver can
// observe.)
func TestStatePoolNeverLeaksAcrossTasks(t *testing.T) {
	putState(dirtyState())
	st := getState()
	if len(st.conds) != 0 {
		t.Errorf("recycled state carries %d conditions", len(st.conds))
	}
	if len(st.changes) != 0 {
		t.Errorf("recycled state carries %d changes", len(st.changes))
	}
	if len(st.vmap) != 0 {
		t.Errorf("recycled state carries %d value bindings", len(st.vmap))
	}
	if st.ret != nil || st.hasRet {
		t.Error("recycled state carries a return value")
	}
	if st.dead {
		t.Error("recycled state is dead")
	}
	if st.apps != nil {
		t.Error("recycled state carries applied callee entries")
	}
	if st.consValid || st.cons.Len() != 0 {
		t.Error("recycled state carries a cached constraint set")
	}
	if len(st.consScratch) != 0 {
		t.Error("recycled state carries constraint scratch")
	}
	putState(st)
}

// TestStateResetBuildContract pins the build-tagged halves of resetForPut:
// the normal build keeps the capacity of uniquely-owned containers (that
// retention is where the ~30% alloc reduction comes from), while the race
// build poisons the conds backing — a stale alias held across putState
// sees nil conditions and fails loudly — and drops every container.
func TestStateResetBuildContract(t *testing.T) {
	st := dirtyState()
	alias := st.conds
	condCap := cap(st.conds)
	st.resetForPut()
	if raceEnabled {
		if st.conds != nil || st.changes != nil || st.vmap != nil || st.consScratch != nil {
			t.Error("race build must drop poisoned containers")
		}
		for i := range alias {
			if alias[i].cond != nil {
				t.Errorf("race build left cond %d unpoisoned in a stale alias", i)
			}
		}
	} else {
		if cap(st.conds) != condCap {
			t.Errorf("conds capacity not retained: %d -> %d", condCap, cap(st.conds))
		}
		if st.changes == nil || st.vmap == nil {
			t.Error("normal build must keep maps for reuse")
		}
	}
	// Both builds: apps always dropped (its backing escapes into
	// EntryProv under provenance, so it can never be recycled).
	if st.apps != nil {
		t.Error("apps not dropped on put")
	}
}

// TestPathRunPoolDropsJobReferences checks the task-context half of the
// pooling contract: a recycled pathRun must not pin the finished job,
// executor, or solver, and all scratch must be observably empty on reuse.
func TestPathRunPoolDropsJobReferences(t *testing.T) {
	prog, err := lower.SourceString("t.c", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	db := summary.NewDB()
	spec.LinuxDPM().ApplyTo(db)
	slv := solver.New()
	ex := New(db, slv, Config{MaxPaths: 100, MaxSubcases: 10})
	j := ex.Prepare(context.Background(), prog.Funcs["f"])

	pr := getPathRun(j, slv)
	if pr.job != j || pr.slv != slv || pr.Executor != ex {
		t.Fatal("getPathRun did not bind the task context")
	}
	if len(pr.occ) != j.numSites {
		t.Fatalf("occ sized %d, want %d", len(pr.occ), j.numSites)
	}
	// Dirty the scratch as a task would.
	pr.occ[0] = 7
	pr.states = append(pr.states, getState())
	pr.callArgs["arg0"] = sym.Arg("v")
	pr.instScratch.Ret = sym.Arg("r")
	pr.instScratch.AddChange(sym.Arg("dev"), 1)

	putPathRun(pr)
	if pr.Executor != nil || pr.job != nil || pr.slv != nil {
		t.Error("recycled pathRun pins executor/job/solver")
	}
	if len(pr.states) != 0 || len(pr.nextStates) != 0 || len(pr.finished) != 0 || len(pr.outBuf) != 0 {
		t.Error("recycled pathRun carries state slices")
	}
	if pr.oneBuf[0] != nil {
		t.Error("recycled pathRun pins a state through oneBuf")
	}
	if len(pr.callArgs) != 0 {
		t.Error("recycled pathRun carries call arguments")
	}
	if pr.instScratch.Ret != nil || pr.instScratch.Cons.Len() != 0 || len(pr.instScratch.Changes) != 0 {
		t.Error("recycled pathRun carries instantiation scratch")
	}

	// A fresh acquisition against the same job must see cleared counters.
	pr2 := getPathRun(j, slv)
	for i, v := range pr2.occ {
		if v != 0 {
			t.Fatalf("occ[%d] = %d on reacquisition, want 0", i, v)
		}
	}
	putPathRun(pr2)
}
