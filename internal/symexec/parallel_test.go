package symexec

import (
	"context"
	"sort"
	"testing"

	"repro/internal/lower"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
)

// branchySrc has 2^5 = 32 paths, enough to exercise the worker pool.
const branchySrc = `
int f(struct device *dev, int a, int b, int c, int d, int e) {
    int acc = 0;
    if (a > 0) { pm_runtime_get(dev); acc = 1; pm_runtime_put(dev); }
    if (b > 0) acc = do_thing(dev);
    if (c > 0) { pm_runtime_get_sync(dev); acc = 2; }
    if (d > 0) acc = 3;
    if (e > 0) pm_runtime_put(dev);
    return acc;
}
`

func entriesKey(res Result) []string {
	var out []string
	for _, e := range res.Entries {
		out = append(out, e.Cons.Key()+"|"+e.String())
	}
	sort.Strings(out)
	return out
}

// TestParallelPathsDeterministic checks the §7 future-work feature: path
// summarization with multiple workers yields exactly the sequential
// entries, in the same per-path attribution.
func TestParallelPathsDeterministic(t *testing.T) {
	prog, err := lower.SourceString("t.c", branchySrc)
	if err != nil {
		t.Fatal(err)
	}
	db := summary.NewDB()
	spec.LinuxDPM().ApplyTo(db)

	run := func(workers int) Result {
		cfg := Config{MaxPaths: 100, MaxSubcases: 10, PathWorkers: workers}
		ex := New(db, solver.New(), cfg)
		return ex.Summarize(context.Background(), prog.Funcs["f"])
	}
	seq := run(1)
	if len(seq.Entries) < 8 {
		t.Fatalf("want a rich entry set, got %d", len(seq.Entries))
	}
	for _, workers := range []int{2, 4, 8} {
		par := run(workers)
		if len(par.Entries) != len(seq.Entries) {
			t.Fatalf("workers=%d: %d entries vs %d sequential", workers, len(par.Entries), len(seq.Entries))
		}
		a, b := entriesKey(seq), entriesKey(par)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: entry %d differs:\n  %s\n  %s", workers, i, a[i], b[i])
			}
		}
		// Path attribution must be identical, not merely the entry set.
		for i := range seq.Entries {
			if seq.Entries[i].PathIndex != par.Entries[i].PathIndex {
				t.Fatalf("workers=%d: path attribution differs at %d", workers, i)
			}
		}
	}
}

func TestParallelPathsSinglePathFallsBack(t *testing.T) {
	prog, err := lower.SourceString("t.c", `int g(struct device *d) { pm_runtime_get(d); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	db := summary.NewDB()
	spec.LinuxDPM().ApplyTo(db)
	cfg := Config{MaxPaths: 100, MaxSubcases: 10, PathWorkers: 8}
	res := New(db, solver.New(), cfg).Summarize(context.Background(), prog.Funcs["g"])
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
}
