// Package symexec implements Step II of the RID analysis (§3.3.3, §4.4):
// per-path symbolic execution that turns each enumerated path into a set of
// summary entries. Instruction semantics follow Figure 6; call instructions
// follow Algorithm 1 (one forked state per satisfiable callee summary
// entry); at each return an entry is produced and conditions on local
// variables are removed by existential projection.
package symexec

import (
	"context"
	"strconv"
	"sync"

	"repro/internal/cfg"
	"repro/internal/frontend/token"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/summary"
	"repro/internal/sym"
)

// Config controls the executor. Zero values select the paper's evaluation
// settings (§6.1): 100 paths per function, 10 sub-cases per path,
// infeasible forks pruned. Every field defaults independently, so a
// partially-populated Config (say, only MaxSubcases set) still gets the
// paper's values for the rest — identical to DefaultConfig() with that one
// field overridden.
type Config struct {
	MaxPaths    int
	MaxSubcases int

	// PathWorkers > 1 summarizes a function's paths concurrently (each
	// worker with its own solver) — the "symbolically executing multiple
	// paths in parallel" item of the paper's §7 future work. Results are
	// deterministic: entries are collected in path order regardless of
	// completion order.
	PathWorkers int

	// NoPrune disables the satisfiability check of Algorithm 1 line 6
	// when forking on callee summary entries (the
	// BenchmarkAblationNoPruning configuration). The zero value — pruning
	// enabled — is the paper's setting; the flag is inverted so that a
	// partially-populated Config cannot silently lose the default.
	NoPrune bool

	// KeepLocalConds disables the local-condition projection of §3.3.3
	// (ablation only; entries stop being caller-comparable).
	KeepLocalConds bool

	// OnFunction, when non-nil, is invoked with the function name at the
	// start of every Summarize call. It exists for instrumentation and
	// fault-injection testing: a panic raised here (or anywhere else in
	// symbolic execution) is isolated per-function by package core, which
	// degrades the function to a default summary instead of crashing the
	// run.
	OnFunction func(fn string)

	// Obs, when non-nil, receives enumerate/exec spans and the Step I/II
	// counters (paths enumerated, subcases forked, summary entries). All
	// hooks are nil-safe, so the zero Config observes nothing at no cost.
	Obs *obs.Obs

	// Provenance retains the derivation of every finalized entry: the
	// enumerated paths (Result.Paths), each callee summary entry applied
	// during Algorithm-1 forking, and the entry constraint before and after
	// the existential projection of locals (PathEntry.Prov). Off by
	// default; the disabled path performs no extra work and no extra
	// allocations (pinned by TestProvenanceOffAllocFree in package core).
	Provenance bool
}

// CalleeApp records one callee summary entry applied while forking on a
// call instruction (Algorithm 1, line 5): which callee, which of its
// entries, and the instantiated constraint that was folded into the path.
type CalleeApp struct {
	Callee     string
	EntryIndex int       // index into the callee summary's entry list
	Cons       string    // instantiated entry constraint (formals replaced)
	Pos        token.Pos // call site
}

// EntryProv is the recorded derivation of one finalized summary entry —
// the evidence Step III needs to explain a report without re-running the
// analysis.
type EntryProv struct {
	// RawCons is the full path constraint at the return, return-value
	// binding included, before locals are existentially projected.
	RawCons string
	// Cons is the exported constraint after projection (what the summary
	// entry carries).
	Cons string
	// Apps lists the callee summary entries applied along the path, in
	// application order.
	Apps []CalleeApp
}

// DefaultConfig returns the paper's evaluation configuration. It is the
// fixed point of defaulting: the zero Config normalizes to exactly this.
func DefaultConfig() Config {
	return Config{MaxPaths: 100, MaxSubcases: 10}
}

func (c Config) withDefaults() Config {
	if c.MaxPaths == 0 {
		c.MaxPaths = 100
	}
	if c.MaxSubcases == 0 {
		c.MaxSubcases = 10
	}
	return c
}

// PathEntry is a finalized summary entry tagged with the path it came from.
type PathEntry struct {
	*summary.Entry
	PathIndex int
	// Prov carries the entry's derivation when Config.Provenance is set;
	// nil otherwise.
	Prov *EntryProv
}

// Result is the outcome of summarizing one function.
type Result struct {
	Fn      *ir.Func
	Entries []PathEntry
	// Paths holds the enumerated paths (indexed by PathEntry.PathIndex)
	// when Config.Provenance is set; nil otherwise.
	Paths     []cfg.Path
	NumPaths  int
	Truncated bool // any budget or the deadline was hit (default entry needed)

	// Degradation detail behind Truncated, for diagnostics: which budget
	// was exhausted, and whether the context expired mid-function.
	TruncatedPaths    bool // path enumeration budget (MaxPaths)
	TruncatedSubcases bool // per-path sub-case budget (MaxSubcases)
	Canceled          bool // context canceled/deadline exceeded
}

// taggedCond is one conjunct of the path constraint, remembering which
// branch instruction produced it so that re-executing the branch (loop
// unrolling) replaces rather than accumulates it (Figure 6).
type taggedCond struct {
	cond *sym.Expr
	src  *ir.Instr // nil for non-branch conditions (assume, call entries)
}

type state struct {
	conds   []taggedCond
	changes map[string]summary.Change
	vmap    map[string]*sym.Expr
	ret     *sym.Expr
	hasRet  bool
	dead    bool
	// apps records the callee summary entries applied on this path, in
	// order. Only populated under Config.Provenance; nil otherwise.
	apps []CalleeApp
	// cons caches the constraint Set built from conds (Sets are immutable,
	// so clones share it). Maintained incrementally by addCond; invalidated
	// when a re-executed branch replaces its condition.
	cons      sym.Set
	consValid bool
	// consScratch is the reused staging slice for consSet rebuilds; NewSet
	// copies out of it, so it never escapes the state.
	consScratch []*sym.Expr
}

// clone forks the state, drawing the copy from the state pool. Every
// mutable container is copied; only immutable storage (interned
// expressions, Set backing arrays) is shared with the clone.
func (st *state) clone() *state {
	n := getState()
	n.conds = append(n.conds[:0], st.conds...)
	n.ret = st.ret
	n.hasRet = st.hasRet
	n.cons = st.cons
	n.consValid = st.consValid
	if st.apps != nil {
		n.apps = make([]CalleeApp, len(st.apps))
		copy(n.apps, st.apps)
	}
	for k, v := range st.changes {
		n.changes[k] = v
	}
	for k, v := range st.vmap {
		n.vmap[k] = v
	}
	return n
}

func (st *state) consSet() sym.Set {
	if !st.consValid {
		conds := st.consScratch[:0]
		for _, tc := range st.conds {
			conds = append(conds, tc.cond)
		}
		st.consScratch = conds
		st.cons = sym.NewSet(conds)
		st.consValid = true
	}
	return st.cons
}

// addCond appends a condition; returns false when the state became
// trivially infeasible.
func (st *state) addCond(c *sym.Expr, src *ir.Instr) bool {
	if c.IsTrue() {
		if src != nil {
			st.removeCondFrom(src)
		}
		return true
	}
	if c.IsFalse() {
		st.dead = true
		return false
	}
	if src != nil {
		st.removeCondFrom(src)
	}
	st.conds = append(st.conds, taggedCond{cond: c, src: src})
	if st.consValid {
		st.cons = st.cons.And(c)
	}
	return true
}

// removeCondFrom drops any condition previously added by the given branch
// instruction (Figure 6's replacement rule for re-executed branches).
func (st *state) removeCondFrom(src *ir.Instr) {
	out := st.conds[:0]
	for _, tc := range st.conds {
		if tc.src != src {
			out = append(out, tc)
		}
	}
	if len(out) != len(st.conds) {
		st.consValid = false // a condition was replaced; rebuild lazily
	}
	st.conds = out
}

// ---------------------------------------------------------------------------

// Executor summarizes functions against a summary database.
type Executor struct {
	cfg Config
	db  *summary.DB
	slv *solver.Solver
}

// pathRun is the per-task execution context: occurrence counters indexed
// by instruction site ID (fresh symbols are named by creation site and
// occurrence index so the "same" value — e.g. the object allocated by a
// given call — has one identity across all paths), the task's solver, and
// the scratch storage reused across tasks via pathRunPool.
type pathRun struct {
	*Executor
	job  *Job
	slv  *solver.Solver
	occ  []int32 // per-site occurrence counts, indexed by Job.siteIDs
	anon int

	symBuf      []byte               // siteSym name assembly
	states      []*state             // live sub-cases, current instruction
	nextStates  []*state             // live sub-cases, next instruction
	finished    []*state             // returned sub-cases awaiting finalize
	outBuf      []*state             // call() fork results
	oneBuf      [1]*state            // step() singleton result
	callArgs    map[string]*sym.Expr // Algorithm-1 instantiation map
	instScratch summary.Entry        // InstantiateInto target
}

// New returns an executor. db supplies callee summaries (predefined and
// previously computed); slv decides constraint satisfiability.
func New(db *summary.DB, slv *solver.Solver, cfg Config) *Executor {
	return &Executor{cfg: cfg.withDefaults(), db: db, slv: slv}
}

// siteSym returns the fresh symbol for the current execution of in: stable
// across paths (same site, same occurrence index → same symbol). The name
// is assembled in a reused buffer and interned through FreshBytes, so the
// common case — a symbol already seen on another path — allocates nothing.
func (pr *pathRun) siteSym(fn *ir.Func, in *ir.Instr, prefix string) *sym.Expr {
	id := pr.job.siteIDs[in]
	b := pr.symBuf[:0]
	b = append(b, prefix...)
	b = append(b, '@')
	b = append(b, fn.Name...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(pr.occ[id]), 10)
	pr.symBuf = b
	return sym.FreshBytes(b)
}

func (pr *pathRun) anonSym(prefix string) *sym.Expr {
	pr.anon++
	return sym.Fresh(prefix + strconv.Itoa(pr.anon))
}

// Summarize runs Steps I and II on fn: enumerate paths, symbolically
// execute each, and return the per-path entries (Step III — consistency
// checking and merging — lives in internal/ipp). It is Prepare + RunTask
// for every path + Finish; the work-stealing scheduler in package core
// drives the same seam with stolen tasks, so both modes share one
// semantics.
//
// ctx bounds the work: when it expires the executor stops at the next
// path (or block) boundary and returns whatever it has, with Canceled and
// Truncated set so the function degrades to a partial summary plus the
// §5.2 default entry rather than blocking the run.
func (ex *Executor) Summarize(ctx context.Context, fn *ir.Func) Result {
	j := ex.Prepare(ctx, fn)
	n := j.NumTasks()
	workers := ex.cfg.PathWorkers
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			j.RunTask(i, ex.slv)
		}
		return j.Finish()
	}
	var wg sync.WaitGroup
	work := make(chan int)
	forks := make([]*solver.Solver, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Each worker forks the executor's solver: same limits, shared
		// cache (one worker's verdict is every worker's cache hit),
		// private counters merged back below.
		forks[w] = ex.slv.Fork()
		go func(slv *solver.Solver) {
			defer wg.Done()
			for i := range work {
				// RunTask drains remaining work without executing once
				// the context expires, so close(work) is always reached.
				j.RunTask(i, slv)
			}
		}(forks[w])
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, f := range forks {
		ex.slv.AddStats(f.Stats())
	}
	return j.Finish()
}

// execPath symbolically executes one path and returns its summary
// entries (with a parallel provenance slice when capture is enabled, nil
// otherwise), plus whether the sub-case budget truncated the state set and
// whether the context expired mid-path.
func (pr *pathRun) execPath(ctx context.Context, fn *ir.Func, path cfg.Path) ([]*summary.Entry, []*EntryProv, bool, bool) {
	init := getState()
	for _, p := range fn.Params {
		init.vmap[p] = sym.Arg(p)
	}
	states := append(pr.states[:0], init)
	next := pr.nextStates[:0]
	finished := pr.finished[:0]
	truncated := false
	canceled := false

	for bi, b := range path.Blocks {
		if ctx.Err() != nil {
			canceled = true
			break
		}
		blk := fn.Blocks[b]
		nextBlock := -1
		if bi+1 < len(path.Blocks) {
			nextBlock = path.Blocks[bi+1]
		}
		for _, in := range blk.Instrs {
			pr.occ[pr.job.siteIDs[in]]++
			next = next[:0]
			for _, st := range states {
				if st.dead {
					putState(st)
					continue
				}
				res := pr.step(fn, st, in, nextBlock)
				for _, ns := range res {
					if ns.dead {
						putState(ns)
						continue
					}
					if ns.hasRet || in.Op == ir.OpReturn {
						finished = append(finished, ns)
					} else {
						next = append(next, ns)
					}
				}
			}
			states, next = next, states
			if len(states) > pr.cfg.MaxSubcases {
				for _, st := range states[pr.cfg.MaxSubcases:] {
					putState(st)
				}
				states = states[:pr.cfg.MaxSubcases]
				truncated = true
			}
			if len(states) == 0 {
				break
			}
		}
		if len(states) == 0 {
			break
		}
	}
	// States that never reached a return (dead path tail, cancellation)
	// are dropped; recycle them.
	for _, st := range states {
		putState(st)
	}

	var entries []*summary.Entry
	var provs []*EntryProv
	for _, st := range finished {
		e, prov := pr.finalize(fn, st)
		putState(st)
		if e == nil {
			continue
		}
		entries = append(entries, e)
		if pr.cfg.Provenance {
			provs = append(provs, prov)
		}
	}
	if len(entries) > pr.cfg.MaxSubcases {
		entries = entries[:pr.cfg.MaxSubcases]
		truncated = true
		if provs != nil {
			provs = provs[:pr.cfg.MaxSubcases]
		}
	}
	// Store the (possibly grown) scratch backings back for the next task.
	pr.states, pr.nextStates, pr.finished = states[:0], next[:0], finished[:0]
	return entries, provs, truncated, canceled
}

// step executes one instruction on st, returning the successor states
// (usually the same state mutated; calls may fork). The returned slice
// aliases pathRun scratch and is only valid until the next step call.
func (pr *pathRun) step(fn *ir.Func, st *state, in *ir.Instr, nextBlock int) []*state {
	pr.oneBuf[0] = st
	one := pr.oneBuf[:]
	switch in.Op {
	case ir.OpAssign:
		st.vmap[in.Dst] = pr.eval(st, in.Val)
	case ir.OpLoadField:
		st.vmap[in.Dst] = sym.Field(pr.eval(st, in.Obj), in.Field)
	case ir.OpRandom:
		st.vmap[in.Dst] = pr.siteSym(fn, in, "r")
	case ir.OpCompare:
		a := pr.eval(st, in.A)
		b := pr.eval(st, in.B)
		st.vmap[in.Dst] = sym.Cond(a, in.Pred, b)
	case ir.OpAssume:
		c := pr.eval(st, in.Cond).AsCond()
		st.addCond(c, nil)
	case ir.OpBranch:
		// Control transfer only; the path dictates the successor.
	case ir.OpBranchCond:
		if in.True == in.False || nextBlock < 0 {
			return one
		}
		c := pr.eval(st, in.Cond).AsCond()
		if nextBlock == in.False {
			c = c.NegateCond()
		} else if nextBlock != in.True {
			// Path and terminator disagree: malformed path; kill the state.
			st.dead = true
			return one
		}
		st.addCond(c, in)
	case ir.OpCall:
		return pr.call(fn, st, in)
	case ir.OpReturn:
		st.hasRet = true
		if in.HasVal {
			st.ret = pr.eval(st, in.Val)
		}
	}
	return one
}

// call implements Algorithm 1: fork one state per callee summary entry
// whose instantiated constraint is co-satisfiable with the path so far.
// The returned slice aliases pathRun scratch, valid until the next step.
func (pr *pathRun) call(fn *ir.Func, st *state, in *ir.Instr) []*state {
	sum := pr.db.Get(in.Fn)
	if sum == nil {
		// Unknown function: default summary (no changes, unconstrained
		// return) without registering it, matching §5.2's "assume these
		// functions can return any possible value".
		if in.Dst != "" {
			st.vmap[in.Dst] = pr.siteSym(fn, in, in.Fn)
		}
		pr.oneBuf[0] = st
		return pr.oneBuf[:]
	}

	// Build the instantiation map: formal args → actual expressions,
	// [0] → a fresh symbol for this call's result. The map is pathRun
	// scratch: Subst reads it without retaining it.
	m := pr.callArgs
	clear(m)
	for i, p := range sum.Params {
		if i < len(in.Args) {
			m[sym.Arg(p).Key()] = pr.eval(st, in.Args[i])
		}
	}
	result := pr.siteSym(fn, in, in.Fn)
	m[sym.Ret().Key()] = result

	out := pr.outBuf[:0]
	for idx, entry := range sum.Entries {
		// The instantiated entry lives in pathRun scratch and is fully
		// consumed below before the next iteration reuses it.
		inst := entry.InstantiateInto(&pr.instScratch, m)
		ns := st
		if idx < len(sum.Entries)-1 {
			ns = st.clone()
			pr.cfg.Obs.Count(obs.MSubcasesForked, 1)
		}
		if pr.cfg.Provenance {
			ns.apps = append(ns.apps, CalleeApp{
				Callee:     in.Fn,
				EntryIndex: idx,
				Cons:       inst.Cons.String(),
				Pos:        in.Pos,
			})
		}
		ok := true
		for _, c := range inst.Cons.Conds() {
			if !ns.addCond(c, nil) {
				ok = false
				break
			}
		}
		if !ok {
			putState(ns)
			continue
		}
		if !pr.cfg.NoPrune && inst.Cons.Len() > 0 {
			if !pr.slv.Sat(ns.consSet()) {
				putState(ns)
				continue
			}
		}
		for _, ch := range inst.Changes {
			c := ns.changes[ch.RC.Key()]
			c.RC = ch.RC
			c.Delta += ch.Delta
			if c.Delta == 0 {
				delete(ns.changes, ch.RC.Key())
			} else {
				ns.changes[ch.RC.Key()] = c
			}
		}
		if in.Dst != "" {
			if inst.Ret != nil {
				ns.vmap[in.Dst] = inst.Ret
			} else {
				ns.vmap[in.Dst] = result
			}
		}
		out = append(out, ns)
	}
	pr.outBuf = out
	return out
}

// eval maps an IR value to its symbolic expression in st.
func (pr *pathRun) eval(st *state, v ir.Value) *sym.Expr {
	switch v.Kind {
	case ir.ValVar:
		if e, ok := st.vmap[v.Var]; ok {
			return e
		}
		// Read before assignment: an (unobservable) local symbol.
		e := sym.Local(v.Var)
		st.vmap[v.Var] = e
		return e
	case ir.ValInt:
		return sym.Const(v.Int)
	case ir.ValBool:
		return sym.BoolConst(v.Bool)
	case ir.ValNull:
		return sym.Null()
	}
	return pr.anonSym("v")
}

// finalize turns a finished state into a summary entry: bind [0] to the
// returned expression, project local conditions, rewrite refcount keys and
// the return expression through the projection pins, and drop entries that
// are unsatisfiable or whose refcounts remain unobservable. Under
// Config.Provenance the returned EntryProv records the derivation (raw and
// projected constraints, applied callee entries); it is nil otherwise.
func (pr *pathRun) finalize(fn *ir.Func, st *state) (*summary.Entry, *EntryProv) {
	cons := st.consSet()
	retExpr := st.ret
	if retExpr != nil {
		cons = cons.And(sym.Cond(sym.Ret(), ir.EQ, retExpr))
	}

	// Feasibility must be decided on the full constraint, locals included:
	// a path can be infeasible purely through conditions on locals (e.g.
	// $c < 0 ∧ $c > 0 after the local was overwritten), and projecting
	// first would silently weaken an unsatisfiable system into a live one.
	if cons.HasFalse() || !pr.slv.Sat(cons) {
		return nil, nil
	}

	var prov *EntryProv
	if pr.cfg.Provenance {
		prov = &EntryProv{RawCons: cons.String(), Apps: st.apps}
	}

	var pins map[string]*sym.Expr
	if !pr.cfg.KeepLocalConds {
		cons, pins = cons.ProjectLocals()
	}

	e := summary.NewEntry(cons, nil)
	if prov != nil {
		prov.Cons = cons.String()
	}
	if retExpr != nil {
		r := retExpr
		if pins != nil {
			r = r.Subst(pins)
		}
		if r.HasLocal() {
			r = sym.Ret() // unconstrained: "can return anything"
		}
		e.Ret = r
	}
	for _, ch := range st.changes {
		rc := ch.RC
		if pins != nil {
			rc = rc.Subst(pins)
		}
		// Refcounts on unobservable (local) objects are kept here: their
		// site-stable names make them comparable across the function's own
		// path pairs, which is how allocation-failure/leak splits are
		// caught. They are stripped from the exported function summary by
		// ipp.Check, since callers can neither observe nor balance them.
		e.AddChange(rc, ch.Delta)
	}
	return e, prov
}
